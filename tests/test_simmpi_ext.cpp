// Tests for the extended simulated-MPI features: groups/communicators,
// nonblocking sends, gather/scatter/reduce-scatter, the ring-allreduce
// switch, and execution tracing.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

#include "arch/configs.h"
#include "simmpi/world.h"

namespace ctesim::mpi {
namespace {

World make_world(int nodes, double network_jitter = 0.0) {
  WorldOptions options;
  options.machine = arch::cte_arm();
  options.network_jitter = network_jitter;
  return World(std::move(options),
               Placement::per_node(arch::cte_arm().node, nodes));
}

TEST(Group, WorldGroupCoversAllRanks) {
  auto world = make_world(5);
  const Group& g = world.world_group();
  EXPECT_EQ(g.size(), 5);
  for (int r = 0; r < 5; ++r) {
    EXPECT_EQ(g.global(r), r);
    EXPECT_EQ(g.vrank_of(r), r);
  }
  EXPECT_EQ(g.context(), 0);
}

TEST(Group, CreateGroupMapsVranks) {
  auto world = make_world(8);
  const Group g = world.create_group({6, 2, 4});
  EXPECT_EQ(g.size(), 3);
  EXPECT_EQ(g.global(0), 6);
  EXPECT_EQ(g.vrank_of(4), 2);
  EXPECT_EQ(g.vrank_of(3), -1);
  EXPECT_FALSE(g.contains(0));
  EXPECT_GT(g.context(), 0);
}

TEST(Group, RejectsDuplicatesAndOutOfRange) {
  auto world = make_world(4);
  EXPECT_THROW(world.create_group({0, 0}), ContractError);
  EXPECT_THROW(world.create_group({7}), ContractError);
}

TEST(GroupCollectives, SubgroupBarrierOnlyInvolvesMembers) {
  auto world = make_world(6);
  const Group evens = world.create_group({0, 2, 4});
  int completions = 0;
  world.run([&](Rank& r) -> sim::Task<> {
    if (evens.contains(r.id())) {
      co_await r.barrier(evens);
      ++completions;
    }
    co_return;  // odd ranks exit immediately; no deadlock
  });
  EXPECT_EQ(completions, 3);
}

TEST(GroupCollectives, ConcurrentDisjointGroupsDoNotInterfere) {
  auto world = make_world(8);
  const Group low = world.create_group({0, 1, 2, 3});
  const Group high = world.create_group({4, 5, 6, 7});
  int completions = 0;
  world.run([&](Rank& r) -> sim::Task<> {
    const Group& mine = r.id() < 4 ? low : high;
    co_await r.allreduce(mine, 64);
    co_await r.bcast(mine, 0, 1024);
    co_await r.reduce(mine, 0, 1024);
    co_await r.allgather(mine, 128);
    co_await r.alltoall(mine, 32);
    ++completions;
  });
  EXPECT_EQ(completions, 8);
}

TEST(GroupCollectives, GatherScatterReduceScatterComplete) {
  for (int p : {2, 3, 4, 7, 8}) {
    auto world = make_world(p);
    int completions = 0;
    world.run([&](Rank& r) -> sim::Task<> {
      co_await r.gather(0, 4096);
      co_await r.scatter(0, 4096);
      co_await r.reduce_scatter(1 << 16);
      ++completions;
    });
    EXPECT_EQ(completions, p) << p;
  }
}

TEST(GroupCollectives, GatherConcentratesTrafficAtRoot) {
  // Gather must take longer than a single point-to-point of one share,
  // and complete for the root last-ish; we just sanity-check the time is
  // above one transfer and below p transfers of full size.
  const int p = 8;
  auto world = make_world(p);
  const double t = world.run([&](Rank& r) -> sim::Task<> {
    co_await r.gather(0, 64 * 1024);
  });
  auto single = make_world(2);
  const double t1 = single.run([&](Rank& r) -> sim::Task<> {
    if (r.id() == 0) {
      co_await r.send(1, 64 * 1024);
    } else {
      co_await r.recv(0);
    }
  });
  EXPECT_GT(t, t1);
  EXPECT_LT(t, p * 8 * t1);
}

TEST(RingAllreduce, LargePayloadsBeatRecursiveDoubling) {
  // For multi-megabyte payloads the ring (2(P-1) steps of bytes/P) must be
  // faster than recursive doubling (log P steps of full bytes).
  const std::uint64_t bytes = 8ull << 20;
  WorldOptions ring_opts;
  ring_opts.machine = arch::cte_arm();
  ring_opts.network_jitter = 0.0;
  World ring(std::move(ring_opts),
             Placement::per_node(arch::cte_arm().node, 16));
  const double t_ring = ring.run([&](Rank& r) -> sim::Task<> {
    co_await r.allreduce(bytes);
  });

  WorldOptions rd_opts;
  rd_opts.machine = arch::cte_arm();
  rd_opts.network_jitter = 0.0;
  rd_opts.allreduce_ring_threshold = ~0ull;  // force recursive doubling
  World rd(std::move(rd_opts),
           Placement::per_node(arch::cte_arm().node, 16));
  const double t_rd = rd.run([&](Rank& r) -> sim::Task<> {
    co_await r.allreduce(bytes);
  });
  EXPECT_LT(t_ring, t_rd);
}

TEST(Nonblocking, IsendOverlapsWithCompute) {
  // isend + compute + wait should take ~max(send, compute), not the sum.
  auto world_overlap = make_world(2);
  const double t_overlap = world_overlap.run([&](Rank& r) -> sim::Task<> {
    if (r.id() == 0) {
      Request req = r.isend(1, 4 << 20);  // rendezvous-sized
      co_await r.compute_seconds(5e-3);
      co_await r.wait(req);
    } else {
      co_await r.recv(0);
    }
  });
  auto world_serial = make_world(2);
  const double t_serial = world_serial.run([&](Rank& r) -> sim::Task<> {
    if (r.id() == 0) {
      co_await r.send(1, 4 << 20);
      co_await r.compute_seconds(5e-3);
    } else {
      co_await r.recv(0);
    }
  });
  EXPECT_LT(t_overlap, t_serial);
}

TEST(Nonblocking, WaitallSettlesLatestRequest) {
  auto world = make_world(4);
  int done = 0;
  world.run([&](Rank& r) -> sim::Task<> {
    if (r.id() == 0) {
      std::vector<Request> reqs;
      for (int dst = 1; dst < 4; ++dst) {
        reqs.push_back(r.isend(dst, 1 << 20));
      }
      co_await r.waitall(reqs);
      ++done;
    } else {
      co_await r.recv(0);
      ++done;
    }
  });
  EXPECT_EQ(done, 4);
}

TEST(Trace, RecordsComputeAndMessaging) {
  WorldOptions options;
  options.machine = arch::cte_arm();
  options.trace = true;
  World world(std::move(options),
              Placement::per_node(arch::cte_arm().node, 2));
  world.run([&](Rank& r) -> sim::Task<> {
    if (r.id() == 0) {
      co_await r.compute(roofline::KernelSig{.name = "work",
                                             .flops_per_elem = 2.0,
                                             .bytes_per_elem = 16.0},
                         1e6);
      co_await r.send(1, 1024);
    } else {
      co_await r.recv(0);
    }
  });
  ASSERT_NE(world.recorder(), nullptr);
  int computes = 0;
  int sends = 0;
  int recvs = 0;
  for (const auto& rec : world.recorder()->spans()) {
    EXPECT_GE(rec.end, rec.start);
    EXPECT_EQ(rec.track.kind, trace::TrackKind::kRank);
    if (rec.name == "compute") ++computes;
    if (rec.name == "send") ++sends;
    if (rec.name == "recv") ++recvs;
  }
  EXPECT_EQ(computes, 1);
  EXPECT_EQ(sends, 1);
  EXPECT_EQ(recvs, 1);

  const std::string path = ::testing::TempDir() + "ctesim_trace_test.csv";
  world.write_trace_csv(path);
  std::ifstream in(path);
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, "rank,start_s,end_s,kind,detail,bytes,peer");
  int lines = 0;
  for (std::string line; std::getline(in, line);) ++lines;
  EXPECT_EQ(lines, 3);
  std::remove(path.c_str());
}

TEST(World, RankExceptionPropagatesFromRun) {
  auto world = make_world(3);
  EXPECT_THROW(world.run([](Rank& r) -> sim::Task<> {
                 co_await r.compute_seconds(1e-6);
                 if (r.id() == 1) throw std::runtime_error("rank 1 died");
               }),
               std::runtime_error);
}

TEST(World, RunIsOneShot) {
  auto world = make_world(2);
  world.run([](Rank& r) -> sim::Task<> { co_await r.barrier(); });
  EXPECT_THROW(
      world.run([](Rank& r) -> sim::Task<> { co_await r.barrier(); }),
      ContractError);
}

TEST(Trace, DisabledByDefault) {
  auto world = make_world(2);
  world.run([&](Rank& r) -> sim::Task<> {
    co_await r.compute_seconds(1e-6);
  });
  EXPECT_EQ(world.recorder(), nullptr);
}

TEST(Trace, ExternalRecorderIsUsed) {
  trace::Recorder recorder;
  WorldOptions options;
  options.machine = arch::cte_arm();
  options.recorder = &recorder;
  World world(std::move(options),
              Placement::per_node(arch::cte_arm().node, 2));
  world.run([&](Rank& r) -> sim::Task<> {
    co_await r.compute_seconds(1e-6);
  });
  EXPECT_EQ(world.recorder(), &recorder);
  EXPECT_EQ(recorder.spans().size(), 2u);  // one compute span per rank
}

}  // namespace
}  // namespace ctesim::mpi
