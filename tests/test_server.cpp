// The capacity-planning server: protocol strictness, exact result caching,
// admission control / shedding, coalescing, deadlines, the TCP transport
// and cross-instance determinism of reply bytes.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "arch/configs.h"
#include "arch/machine_io.h"
#include "server/cache.h"
#include "server/client.h"
#include "server/protocol.h"
#include "server/service.h"
#include "server/tcp.h"
#include "util/json.h"

namespace ctesim::server {
namespace {

std::string simulate_line(int jobs, int seed,
                          const std::string& extra = "") {
  return "{\"op\":\"simulate\",\"machine\":\"cte-arm\",\"jobs\":" +
         std::to_string(jobs) + ",\"seed\":" + std::to_string(seed) + extra +
         "}";
}

ServiceConfig small_config() {
  ServiceConfig config;
  config.workers = 2;
  config.queue_capacity = 8;
  config.cache_capacity = 16;
  return config;
}

bool is_error(const std::string& reply, const std::string& code) {
  return reply.find("\"op\":\"error\"") != std::string::npos &&
         reply.find("\"code\":\"" + code + "\"") != std::string::npos;
}

// --- protocol parsing ------------------------------------------------------

TEST(Protocol, ParsesFullSimulateRequest) {
  const Request request = parse_request(
      "{\"op\":\"simulate\",\"machine\":\"cte-arm\",\"jobs\":250,"
      "\"mean_interarrival_s\":8.5,\"burst_fraction\":0.4,"
      "\"min_nodes\":2,\"max_nodes\":16,\"queue\":\"fcfs\","
      "\"placement\":\"random\",\"seed\":42,\"deadline_ms\":1500}");
  EXPECT_EQ(request.op, Op::kSimulate);
  EXPECT_EQ(request.sim.machine, "cte-arm");
  EXPECT_EQ(request.sim.workload.num_jobs, 250);
  EXPECT_DOUBLE_EQ(request.sim.workload.mean_interarrival_s, 8.5);
  EXPECT_EQ(request.sim.workload.min_nodes, 2);
  EXPECT_EQ(request.sim.workload.max_nodes, 16);
  EXPECT_EQ(request.sim.queue, batch::QueuePolicy::kFcfs);
  EXPECT_EQ(request.sim.placement, sched::Policy::kRandom);
  EXPECT_EQ(request.sim.seed, 42u);
  EXPECT_DOUBLE_EQ(request.sim.deadline_ms, 1500.0);
}

TEST(Protocol, RejectsMalformedJson) {
  EXPECT_THROW(parse_request("{\"op\":"), ProtocolError);
  EXPECT_THROW(parse_request("not json at all"), ProtocolError);
  EXPECT_THROW(parse_request(""), ProtocolError);
  EXPECT_THROW(parse_request("[1,2,3]"), ProtocolError);
}

TEST(Protocol, RejectsUnknownOpAndFields) {
  EXPECT_THROW(parse_request("{\"op\":\"shutdown\"}"), ProtocolError);
  EXPECT_THROW(parse_request("{}"), ProtocolError);
  // A typo'd field must not silently change a study.
  EXPECT_THROW(parse_request(simulate_line(10, 1, ",\"sede\":9")),
               ProtocolError);
  EXPECT_THROW(parse_request("{\"op\":\"ping\",\"extra\":1}"),
               ProtocolError);
}

TEST(Protocol, RejectsOutOfRangeValues) {
  EXPECT_THROW(parse_request(simulate_line(0, 1)), ProtocolError);
  EXPECT_THROW(parse_request(simulate_line(10, 1, ",\"burst_fraction\":1.5")),
               ProtocolError);
  EXPECT_THROW(parse_request(simulate_line(10, 1, ",\"queue\":\"sjf\"")),
               ProtocolError);
  EXPECT_THROW(parse_request(simulate_line(10, 1, ",\"seed\":1.25")),
               ProtocolError);
  EXPECT_THROW(
      parse_request(simulate_line(10, 1, ",\"deadline_ms\":-1")),
      ProtocolError);
  EXPECT_THROW(
      parse_request(
          simulate_line(10, 1, ",\"min_nodes\":8,\"max_nodes\":2")),
      ProtocolError);
  EXPECT_THROW(
      parse_request(simulate_line(10, 1, ",\"machine_ini\":\"x\"")),
      ProtocolError);  // machine + machine_ini together
}

TEST(Protocol, CanonicalWorkloadExcludesSeed) {
  Request a = parse_request(simulate_line(50, 1));
  Request b = parse_request(simulate_line(50, 999));
  EXPECT_EQ(canonical_workload(a.sim), canonical_workload(b.sim));
  Request c = parse_request(simulate_line(51, 1));
  EXPECT_NE(canonical_workload(a.sim), canonical_workload(c.sim));
}

TEST(Protocol, ParsesSamplingKnobs) {
  const Request request = parse_request(simulate_line(
      10, 1,
      ",\"sampling\":\"sampled\",\"sampling_k\":12,\"sampling_warmup\":3,"
      "\"sampling_phases\":4,\"sampling_seed\":9"));
  EXPECT_EQ(request.sim.sampling.mode, sampling::Mode::kSampled);
  EXPECT_EQ(request.sim.sampling.k, 12);
  EXPECT_EQ(request.sim.sampling.warmup, 3);
  EXPECT_EQ(request.sim.sampling.max_phases, 4);
  EXPECT_EQ(request.sim.sampling.seed, 9u);
}

TEST(Protocol, RejectsBadSamplingKnobs) {
  EXPECT_THROW(parse_request(simulate_line(10, 1, ",\"sampling\":\"maybe\"")),
               ProtocolError);
  EXPECT_THROW(parse_request(simulate_line(
                   10, 1, ",\"sampling\":\"sampled\",\"sampling_k\":0")),
               ProtocolError);
  EXPECT_THROW(parse_request(simulate_line(
                   10, 1, ",\"sampling\":\"sampled\",\"sampling_phases\":65")),
               ProtocolError);
  // Sub-knobs without opting into sampled mode are a contradiction, not a
  // silent no-op: the reply they configure would never be produced.
  EXPECT_THROW(parse_request(simulate_line(10, 1, ",\"sampling_k\":4")),
               ProtocolError);
}

TEST(Protocol, CanonicalWorkloadKeysSamplingOnlyWhenSampled) {
  // Exact requests — with or without the explicit spelling — must keep the
  // legacy cache key: old clients hit the same entries as before.
  Request legacy = parse_request(simulate_line(50, 1));
  Request exact =
      parse_request(simulate_line(50, 1, ",\"sampling\":\"exact\""));
  EXPECT_EQ(canonical_workload(legacy.sim), canonical_workload(exact.sim));
  EXPECT_EQ(canonical_workload(legacy.sim).find("sampling"),
            std::string::npos);
  // Sampled requests get their plan folded in so they never collide with
  // exact replies — and distinct plans never collide with each other.
  Request sampled =
      parse_request(simulate_line(50, 1, ",\"sampling\":\"sampled\""));
  EXPECT_NE(canonical_workload(legacy.sim), canonical_workload(sampled.sim));
  Request sampled_k = parse_request(simulate_line(
      50, 1, ",\"sampling\":\"sampled\",\"sampling_k\":12"));
  EXPECT_NE(canonical_workload(sampled.sim),
            canonical_workload(sampled_k.sim));
}

// --- result cache ----------------------------------------------------------

TEST(ResultCache, LruEvictionAndStats) {
  ResultCache cache(2);
  const auto reply = [](const char* s) {
    return std::make_shared<const std::string>(s);
  };
  const CacheKey k1{1, 1, 1}, k2{2, 2, 2}, k3{3, 3, 3};
  EXPECT_EQ(cache.get(k1), nullptr);
  cache.put(k1, reply("r1"));
  cache.put(k2, reply("r2"));
  EXPECT_EQ(*cache.get(k1), "r1");  // refreshes k1 -> k2 is now LRU
  cache.put(k3, reply("r3"));       // evicts k2
  EXPECT_EQ(cache.get(k2), nullptr);
  EXPECT_EQ(*cache.get(k1), "r1");
  EXPECT_EQ(*cache.get(k3), "r3");
  const auto stats = cache.stats();
  EXPECT_EQ(stats.size, 2u);
  EXPECT_EQ(stats.hits, 3u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.evictions, 1u);
}

TEST(ResultCache, CapacityZeroDisables) {
  ResultCache cache(0);
  cache.put(CacheKey{1, 1, 1}, std::make_shared<const std::string>("r"));
  EXPECT_EQ(cache.get(CacheKey{1, 1, 1}), nullptr);
  EXPECT_EQ(cache.stats().size, 0u);
}

// --- service ---------------------------------------------------------------

TEST(Service, PingAndStats) {
  Service service(small_config());
  EXPECT_EQ(service.handle("{\"op\":\"ping\"}"),
            "{\"op\":\"ping\",\"status\":\"ok\"}");
  const std::string stats = service.handle("{\"op\":\"stats\"}");
  EXPECT_NE(stats.find("\"op\":\"stats\""), std::string::npos);
  EXPECT_NE(stats.find("\"workers\":2"), std::string::npos);
  service.shutdown();
}

TEST(Service, MalformedAndInvalidRequestsGetTypedErrors) {
  Service service(small_config());
  EXPECT_TRUE(is_error(service.handle("{\"op\""), "bad_request"));
  EXPECT_TRUE(is_error(service.handle(simulate_line(10, 1, ",\"x\":1")),
                       "bad_request"));
  // marenostrum4 is a fat tree; the cluster model needs a torus.
  EXPECT_TRUE(is_error(
      service.handle(
          "{\"op\":\"simulate\",\"machine\":\"marenostrum4\",\"jobs\":5}"),
      "bad_request"));
  EXPECT_TRUE(is_error(
      service.handle(
          "{\"op\":\"simulate\",\"machine\":\"no-such-machine\",\"jobs\":5}"),
      "bad_request"));
  // Wider than the machine.
  EXPECT_TRUE(is_error(
      service.handle(simulate_line(5, 1, ",\"max_nodes\":100000")),
      "bad_request"));
  const auto stats = service.stats();
  EXPECT_EQ(stats.errors, 5u);
  service.shutdown();
}

TEST(Service, OversizedRequestIsRejectedUnparsed) {
  ServiceConfig config = small_config();
  config.max_request_bytes = 64;
  Service service(config);
  const std::string big = simulate_line(10, 1) + std::string(100, ' ');
  EXPECT_TRUE(is_error(service.handle(big), "oversized"));
  service.shutdown();
}

TEST(Service, CacheHitIsByteIdentical) {
  Service service(small_config());
  const std::string line = simulate_line(60, 7);
  const std::string first = service.handle(line);
  const std::string second = service.handle(line);
  EXPECT_NE(first.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_EQ(first, second);  // byte-identical, not just equivalent
  const auto stats = service.stats();
  EXPECT_EQ(stats.cache.hits, 1u);
  EXPECT_EQ(stats.cache.misses, 1u);
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.machines_built, 1u);
  EXPECT_EQ(stats.machines_reused, 1u);
  service.shutdown();
}

TEST(Service, RepliesAreDeterministicAcrossInstances) {
  const std::string line = simulate_line(40, 3);
  std::string a, b;
  {
    Service service(small_config());
    a = service.handle(line);
    service.shutdown();
  }
  {
    ServiceConfig config = small_config();
    config.workers = 1;  // concurrency level must not change results
    config.cache_capacity = 0;
    Service service(config);
    b = service.handle(line);
    service.shutdown();
  }
  EXPECT_EQ(a, b);
}

TEST(Service, DifferentSeedsDiffer) {
  Service service(small_config());
  const std::string a = service.handle(simulate_line(40, 1));
  const std::string b = service.handle(simulate_line(40, 2));
  EXPECT_NE(a, b);
  EXPECT_NE(a.find("\"seed\":1"), std::string::npos);
  EXPECT_NE(b.find("\"seed\":2"), std::string::npos);
  service.shutdown();
}

TEST(Service, SampledWhatIfCarriesCiFieldsExactStaysLegacy) {
  Service service(small_config());
  const std::string exact = service.handle(simulate_line(20, 5));
  // Legacy/exact replies must not grow new fields.
  EXPECT_EQ(exact.find("\"sampling\""), std::string::npos);
  const std::string sampled = service.handle(
      simulate_line(20, 5, ",\"sampling\":\"sampled\",\"sampling_k\":8"));
  EXPECT_NE(sampled.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(sampled.find("\"sampling\":{\"total_node_s\":"),
            std::string::npos);
  EXPECT_NE(sampled.find("\"ci_half_node_s\":"), std::string::npos);
  EXPECT_NE(sampled.find("\"steps_simulated\":"), std::string::npos);
  EXPECT_NE(sampled.find("\"speedup\":"), std::string::npos);
  // Same line again: served from cache, byte-identical.
  EXPECT_EQ(sampled,
            service.handle(simulate_line(
                20, 5, ",\"sampling\":\"sampled\",\"sampling_k\":8")));
  // The cluster-dynamics metrics are untouched by the sampling estimate:
  // both replies describe the same schedule.
  const auto metric = [](const std::string& reply, const char* key) {
    const auto at = reply.find(key);
    return at == std::string::npos ? std::string()
                                   : reply.substr(at, 40);
  };
  EXPECT_EQ(metric(exact, "\"makespan_s\":"),
            metric(sampled, "\"makespan_s\":"));
  service.shutdown();
}

TEST(Service, ConcurrentIdenticalRequestsOneExecution) {
  ServiceConfig config = small_config();
  config.workers = 2;
  Service service(config);
  constexpr int kThreads = 8;
  std::vector<std::future<std::string>> replies;
  replies.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    replies.push_back(std::async(std::launch::async, [&service] {
      return service.handle(simulate_line(50, 11));
    }));
  }
  std::set<std::string> distinct;
  for (auto& reply : replies) distinct.insert(reply.get());
  EXPECT_EQ(distinct.size(), 1u);
  const auto stats = service.stats();
  // Every request either ran once, coalesced onto the run, or hit the
  // cache after it finished — but the simulation executed exactly once.
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.coalesced + stats.cache.hits + stats.completed,
            static_cast<std::uint64_t>(kThreads));
  service.shutdown();
}

TEST(Service, ConcurrentMixedSeedsAllSucceed) {
  ServiceConfig config = small_config();
  config.workers = 4;
  config.queue_capacity = 64;
  Service service(config);
  constexpr int kThreads = 12;
  std::vector<std::future<std::string>> replies;
  replies.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    replies.push_back(std::async(std::launch::async, [&service, i] {
      return service.handle(simulate_line(30, 1 + (i % 4)));
    }));
  }
  for (auto& reply : replies) {
    EXPECT_NE(reply.get().find("\"status\":\"ok\""), std::string::npos);
  }
  EXPECT_EQ(service.stats().completed, 4u);  // one run per distinct seed
  service.shutdown();
}

TEST(Service, ShedsWithTypedOverloadedReply) {
  ServiceConfig config = small_config();
  config.queue_capacity = 0;  // no waiting room: every miss sheds
  config.cache_capacity = 0;
  Service service(config);
  const std::string reply = service.handle(simulate_line(10, 1));
  EXPECT_TRUE(is_error(reply, "overloaded"));
  EXPECT_EQ(service.stats().shed, 1u);
  service.shutdown();
}

TEST(Service, QueueWaitDeadlineTimesOut) {
  ServiceConfig config = small_config();
  config.workers = 1;
  Service service(config);
  // The hook runs on the worker after dequeue, before the deadline check:
  // stalling there guarantees the deadline has passed deterministically.
  service.set_worker_hook(
      [] { std::this_thread::sleep_for(std::chrono::milliseconds(20)); });
  const std::string reply =
      service.handle(simulate_line(10, 1, ",\"deadline_ms\":0.5"));
  EXPECT_TRUE(is_error(reply, "timeout"));
  EXPECT_EQ(service.stats().timeouts, 1u);
  service.shutdown();
}

TEST(Service, CoalescedRequestsShareOneFlight) {
  ServiceConfig config = small_config();
  config.workers = 1;
  Service service(config);
  std::promise<void> release;
  std::shared_future<void> released = release.get_future().share();
  std::atomic<int> stalls{0};
  service.set_worker_hook([&] {
    stalls.fetch_add(1);
    released.wait();
  });
  auto first = std::async(std::launch::async, [&service] {
    return service.handle(simulate_line(25, 5));
  });
  while (stalls.load() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // The run is now in flight and stalled; an identical request must attach
  // to it instead of executing again.
  auto second = std::async(std::launch::async, [&service] {
    return service.handle(simulate_line(25, 5));
  });
  while (service.stats().coalesced == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  release.set_value();
  EXPECT_EQ(first.get(), second.get());
  const auto stats = service.stats();
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.coalesced, 1u);
  service.shutdown();
}

TEST(Service, InlineMachineIniBuildsOnceAndCaches) {
  Service service(small_config());
  // Identical inline INI text must build the machine once (label memo) and
  // replay the second request from the cache, byte-identically. The study
  // itself matches the named model: same workload hash, same metrics.
  const std::string ini = arch::machine_to_string(arch::cte_arm());
  const std::string inline_line =
      "{\"op\":\"simulate\",\"machine_ini\":\"" + json::escape(ini) +
      "\",\"jobs\":30,\"seed\":2}";
  const std::string by_ini = service.handle(inline_line);
  ASSERT_NE(by_ini.find("\"status\":\"ok\""), std::string::npos) << by_ini;
  EXPECT_EQ(service.handle(inline_line), by_ini);
  const std::string by_name = service.handle(simulate_line(30, 2));
  // The INI round-trip can differ from the built-in model by float ULPs
  // (so the config hash may differ), but the simulated study is the same:
  // everything from the workload hash on must match.
  EXPECT_EQ(by_ini.substr(by_ini.find("\"workload_hash\"")),
            by_name.substr(by_name.find("\"workload_hash\"")));
  const auto stats = service.stats();
  EXPECT_EQ(stats.cache.hits, 1u);
  EXPECT_GE(stats.machines_reused, 1u);
  service.shutdown();
}

// --- TCP transport ---------------------------------------------------------

TEST(Tcp, RoundTripAndByteIdenticalReplies) {
  Service service(small_config());
  TcpServer tcp(service, TcpOptions{});
  tcp.start();
  ASSERT_GT(tcp.port(), 0);
  Client client("127.0.0.1", tcp.port());
  EXPECT_EQ(client.request("{\"op\":\"ping\"}"),
            "{\"op\":\"ping\",\"status\":\"ok\"}");
  const std::string line = simulate_line(30, 9);
  const std::string first = client.request(line);
  Client other("127.0.0.1", tcp.port());  // different connection
  EXPECT_EQ(other.request(line), first);
  tcp.stop();
  service.shutdown();
}

TEST(Tcp, ConcurrentClients) {
  Service service(small_config());
  TcpServer tcp(service, TcpOptions{});
  tcp.start();
  constexpr int kClients = 6;
  std::vector<std::future<std::string>> replies;
  replies.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    replies.push_back(std::async(std::launch::async, [&tcp, i] {
      Client client("127.0.0.1", tcp.port());
      return client.request(simulate_line(20, 1 + (i % 2)));
    }));
  }
  std::set<std::string> distinct;
  for (auto& reply : replies) distinct.insert(reply.get());
  EXPECT_EQ(distinct.size(), 2u);  // one reply per seed, shared bytes
  tcp.stop();
  service.shutdown();
}

TEST(Tcp, StopAfterEarlierClientDisconnects) {
  // Regression: deregistering a closed connection used to erase every fd
  // registered after it, so stop() never shut later connections down and
  // hung forever joining their recv()-blocked threads.
  Service service(small_config());
  TcpServer tcp(service, TcpOptions{});
  tcp.start();
  auto first = std::make_unique<Client>("127.0.0.1", tcp.port());
  Client second("127.0.0.1", tcp.port());  // accepted after `first`
  EXPECT_EQ(first->request("{\"op\":\"ping\"}"),
            "{\"op\":\"ping\",\"status\":\"ok\"}");
  first.reset();  // disconnect while `second` stays connected and idle
  // Give the server's connection thread time to observe the EOF and
  // deregister; the bug triggers only once that cleanup has run.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(second.request("{\"op\":\"ping\"}"),
            "{\"op\":\"ping\",\"status\":\"ok\"}");
  tcp.stop();  // must shut `second`'s socket down and return, not hang
  service.shutdown();
}

TEST(Tcp, OversizedLineGetsTypedError) {
  Service service(small_config());
  TcpOptions options;
  options.max_line_bytes = 128;
  TcpServer tcp(service, options);
  tcp.start();
  Client client("127.0.0.1", tcp.port());
  const std::string reply =
      client.request(simulate_line(10, 1) + std::string(200, ' '));
  EXPECT_TRUE(is_error(reply, "oversized"));
  tcp.stop();
  service.shutdown();
}

}  // namespace
}  // namespace ctesim::server
