// Tests for topologies and the network transfer model.
#include <gtest/gtest.h>

#include "arch/calibration.h"
#include "arch/configs.h"
#include "net/network.h"
#include "net/topology.h"

namespace ctesim::net {
namespace {

TEST(Torus, CoordinateRoundTrip) {
  TorusTopology t({4, 2, 2, 2, 3, 2});
  EXPECT_EQ(t.num_nodes(), 192);
  for (int n = 0; n < t.num_nodes(); ++n) {
    EXPECT_EQ(t.node_at(t.coordinates(n)), n);
  }
}

TEST(Torus, HopsAreShortestWithWraparound) {
  TorusTopology t({4});
  EXPECT_EQ(t.hops(0, 1), 1);
  EXPECT_EQ(t.hops(0, 2), 2);
  EXPECT_EQ(t.hops(0, 3), 1);  // wraps around
  TorusTopology t5({5});
  EXPECT_EQ(t5.hops(0, 3), 2);  // wrap shorter than direct
}

TEST(Torus, HopsMetricProperties) {
  TorusTopology t({4, 3, 2});
  for (int a = 0; a < t.num_nodes(); ++a) {
    EXPECT_EQ(t.hops(a, a), 0);
    for (int b = 0; b < t.num_nodes(); ++b) {
      EXPECT_EQ(t.hops(a, b), t.hops(b, a));  // symmetry
      if (a != b) {
        EXPECT_GE(t.hops(a, b), 1);
      }
    }
  }
  // Triangle inequality on a sample.
  for (int a = 0; a < 8; ++a) {
    for (int b = 0; b < 8; ++b) {
      for (int c = 0; c < 8; ++c) {
        EXPECT_LE(t.hops(a, c), t.hops(a, b) + t.hops(b, c));
      }
    }
  }
}

TEST(Torus, MaxHopsIsSumOfHalfDims) {
  TorusTopology t({4, 2, 2, 2, 3, 2});
  int max_hops = 0;
  for (int b = 1; b < t.num_nodes(); ++b) {
    max_hops = std::max(max_hops, t.hops(0, b));
  }
  EXPECT_EQ(max_hops, 2 + 1 + 1 + 1 + 1 + 1);
}

TEST(FatTree, HopsBySwitchLocality) {
  FatTreeTopology t(128, 32);
  EXPECT_EQ(t.hops(0, 0), 0);
  EXPECT_EQ(t.hops(0, 31), 1);   // same edge switch
  EXPECT_EQ(t.hops(0, 32), 3);   // via core
  EXPECT_EQ(t.hops(33, 34), 1);
}

Network cte_network() {
  return Network(arch::cte_arm().interconnect, 192);
}

TEST(Transfer, LatencyGrowsWithHops) {
  auto net = cte_network();
  net.set_jitter(0.0);
  const auto near = net.transfer(0, 1, 256);
  // Find a distant pair.
  int far_node = 1;
  for (int n = 1; n < 192; ++n) {
    if (net.topology().hops(0, n) > net.topology().hops(0, far_node)) {
      far_node = n;
    }
  }
  const auto far = net.transfer(0, far_node, 256);
  EXPECT_GT(far.hops, near.hops);
  EXPECT_GT(far.latency_s, near.latency_s);
  EXPECT_LT(far.bandwidth, near.bandwidth);
}

TEST(Transfer, BandwidthApproachesLinkPeakForLargeMessages) {
  auto net = cte_network();
  net.set_jitter(0.0);
  const auto t = net.transfer(0, 1, 64ull << 20);  // 64 MiB
  EXPECT_GT(t.bandwidth, 0.8 * 6.8e9);
  EXPECT_LE(t.bandwidth, 6.8e9);
}

TEST(Transfer, EagerRendezvousSwitch) {
  auto net = cte_network();
  const auto small = net.transfer(0, 1, 1024);
  const auto large = net.transfer(0, 1, 1 << 20);
  EXPECT_FALSE(small.rendezvous);
  EXPECT_TRUE(large.rendezvous);
}

TEST(Transfer, TimeMonotoneInSize) {
  auto net = cte_network();
  double prev = 0.0;
  for (std::uint64_t size = 1; size <= (1ull << 24); size <<= 1) {
    const auto t = net.transfer(3, 77, size);
    EXPECT_GE(t.time_s, prev);
    prev = t.time_s;
  }
}

TEST(Transfer, DeterministicJitterIsBounded) {
  auto net = cte_network();
  net.set_jitter(0.03);
  const auto a = net.transfer(5, 9, 4096);
  const auto b = net.transfer(5, 9, 4096);
  EXPECT_DOUBLE_EQ(a.time_s, b.time_s);  // same pair: same jitter
  // All pairs within +-3% of the no-jitter bandwidth for large messages.
  auto clean = cte_network();
  clean.set_jitter(0.0);
  for (int dst : {1, 17, 63, 101, 190}) {
    const auto j = net.transfer(0, dst, 16 << 20);
    const auto c = clean.transfer(0, dst, 16 << 20);
    EXPECT_NEAR(j.bandwidth / c.bandwidth, 1.0, 0.035);
  }
}

TEST(Fault, ReceiverDegradationIsAsymmetric) {
  auto net = cte_network();
  net.set_jitter(0.0);
  const int weak = arch::calib::kWeakNodeIndex;
  const auto before = net.transfer(0, weak, 1 << 20);
  net.set_recv_degradation(weak, arch::calib::kWeakNodeRecvFactor);
  const auto as_receiver = net.transfer(0, weak, 1 << 20);
  const auto as_sender = net.transfer(weak, 0, 1 << 20);
  // Receiving into the weak node is slow; sending from it is unaffected —
  // exactly the arms0b1-11c behaviour in Fig. 4.
  EXPECT_LT(as_receiver.bandwidth, 0.5 * before.bandwidth);
  EXPECT_NEAR(as_sender.bandwidth, before.bandwidth, 1e-3 * before.bandwidth);
  net.clear_faults();
  const auto after = net.transfer(0, weak, 1 << 20);
  EXPECT_DOUBLE_EQ(after.time_s, before.time_s);
}

TEST(Network, RejectsSelfTransfer) {
  auto net = cte_network();
  EXPECT_THROW(net.transfer(3, 3, 100), ContractError);
}

TEST(Network, OmniPathHasUniformishLatency) {
  Network net(arch::marenostrum4().interconnect, 192);
  net.set_jitter(0.0);
  // Across edge switches everything is 3 hops: equal latency.
  const auto a = net.transfer(0, 64, 256);
  const auto b = net.transfer(0, 191, 256);
  EXPECT_DOUBLE_EQ(a.latency_s, b.latency_s);
}

}  // namespace
}  // namespace ctesim::net
