// Property sweeps over the native numerical kernels: invariants that must
// hold across problem sizes and parameters, not just the cases the unit
// tests pin.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "kernels/dense.h"
#include "kernels/fft.h"
#include "kernels/md.h"
#include "kernels/multigrid.h"
#include "kernels/sparse.h"
#include "kernels/stencil.h"
#include "util/rng.h"

namespace ctesim::kernels {
namespace {

// ------------------------------------------------------------------ FFT --

class FftSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftSizes, LinearityHolds) {
  const std::size_t n = GetParam();
  Rng rng(n);
  std::vector<Complex> x(n), y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
    y[i] = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  }
  const Complex alpha(0.7, -0.3);
  // FFT(alpha*x + y) == alpha*FFT(x) + FFT(y)
  std::vector<Complex> combined(n);
  for (std::size_t i = 0; i < n; ++i) combined[i] = alpha * x[i] + y[i];
  auto fx = x;
  auto fy = y;
  fft(combined);
  fft(fx);
  fft(fy);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(std::abs(combined[i] - (alpha * fx[i] + fy[i])), 0.0,
                1e-9 * static_cast<double>(n));
  }
}

TEST_P(FftSizes, InverseIsExactInverse) {
  const std::size_t n = GetParam();
  Rng rng(n + 1);
  std::vector<Complex> x(n);
  for (auto& v : x) v = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  auto y = x;
  ifft(y);
  fft(y);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(std::abs(y[i] - x[i]), 0.0, 1e-10 * static_cast<double>(n));
  }
}

INSTANTIATE_TEST_SUITE_P(Pow2, FftSizes,
                         ::testing::Values(1, 2, 4, 8, 64, 512, 4096));

// --------------------------------------------------------------- sparse --

class GridSizes : public ::testing::TestWithParam<std::tuple<int, int, int>> {
};

TEST_P(GridSizes, Poisson27IsSymmetric) {
  const auto [nx, ny, nz] = GetParam();
  const auto a = build_poisson27(nx, ny, nz);
  // Verify A == A^T via y1 = A*x, comparing x^T A y == y^T A x for random
  // vectors (cheap symmetry witness).
  Rng rng(17);
  std::vector<double> x(a.rows), y(a.rows), ax, ay;
  for (std::size_t i = 0; i < a.rows; ++i) {
    x[i] = rng.uniform(-1, 1);
    y[i] = rng.uniform(-1, 1);
  }
  spmv(a, x, ax);
  spmv(a, y, ay);
  EXPECT_NEAR(dot(y, ax), dot(x, ay), 1e-9 * a.rows);
}

TEST_P(GridSizes, Poisson27IsPositiveDefiniteWitness) {
  const auto [nx, ny, nz] = GetParam();
  const auto a = build_poisson27(nx, ny, nz);
  Rng rng(23);
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<double> x(a.rows), ax;
    for (auto& v : x) v = rng.uniform(-1, 1);
    spmv(a, x, ax);
    EXPECT_GT(dot(x, ax), 0.0);
  }
}

TEST_P(GridSizes, CgIterationCountGrowsSlowlyWithMg) {
  const auto [nx, ny, nz] = GetParam();
  if (nx % 4 || ny % 4 || nz % 4 || nx < 8) GTEST_SKIP();
  const auto a = build_poisson27(nx, ny, nz);
  std::vector<double> ones(a.rows, 1.0), b;
  spmv(a, ones, b);
  const MultigridHierarchy mg(nx, ny, nz, 2);
  std::vector<double> x;
  const auto r = conjugate_gradient(
      a, b, x, 100, 1e-8,
      [&mg](const std::vector<double>& rr, std::vector<double>& z) {
        mg.v_cycle(rr, z);
      });
  EXPECT_TRUE(r.converged);
  EXPECT_LE(r.iterations, 30);  // MG keeps iterations ~size-independent
}

INSTANTIATE_TEST_SUITE_P(Shapes, GridSizes,
                         ::testing::Values(std::tuple{4, 4, 4},
                                           std::tuple{8, 8, 8},
                                           std::tuple{8, 4, 4},
                                           std::tuple{5, 7, 3},
                                           std::tuple{16, 8, 8}));

// ------------------------------------------------------------------- LU --

class LuProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LuProperty, SolveIsRightInverseForManyRhs) {
  const std::size_t n = GetParam();
  Rng rng(n * 7 + 1);
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) a.at(i, j) = rng.uniform(-1, 1);
    a.at(i, i) += 4.0;  // keep it comfortably nonsingular
  }
  Matrix lu = a;
  std::vector<std::size_t> pivots;
  ASSERT_TRUE(lu_factor(lu, pivots));
  for (int rhs = 0; rhs < 3; ++rhs) {
    std::vector<double> b(n);
    for (auto& v : b) v = rng.uniform(-1, 1);
    const auto x = lu_solve(lu, pivots, b);
    EXPECT_LT(hpl_residual(a, x, b), 16.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, LuProperty,
                         ::testing::Values(1, 2, 7, 31, 32, 33, 96));

// ------------------------------------------------------------------- MD --

class MdDensity : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MdDensity, PairCountTracksDensityEstimate) {
  const std::size_t particles = GetParam();
  const double box = 10.0;
  MdSystem md(MdConfig{.particles = particles, .box = box, .cutoff = 2.0});
  md.compute_forces();
  // Expected pairs ~ N * (4/3 pi rc^3 rho) / 2 for a uniform gas.
  const double rho = static_cast<double>(particles) / (box * box * box);
  const double expected = static_cast<double>(particles) * 4.0 / 3.0 *
                          std::numbers::pi * 8.0 * rho / 2.0;
  const double measured = static_cast<double>(md.last_pair_count());
  EXPECT_GT(measured, 0.5 * expected);
  EXPECT_LT(measured, 2.0 * expected);
}

INSTANTIATE_TEST_SUITE_P(Counts, MdDensity,
                         ::testing::Values(128, 256, 512, 1024));

// -------------------------------------------------------------- stencil --

class StencilAlpha : public ::testing::TestWithParam<double> {};

TEST_P(StencilAlpha, MaxPrincipleHolds) {
  // Explicit diffusion with alpha <= 1/6 cannot create new extrema.
  const double alpha = GetParam();
  Grid3D g(6, 6, 6);
  Rng rng(5);
  for (auto& v : g.raw()) v = rng.uniform(0.0, 1.0);
  double lo = 1e30, hi = -1e30;
  for (double v : g.raw()) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  diffuse(g, 25, alpha);
  for (double v : g.raw()) {
    EXPECT_GE(v, lo - 1e-12);
    EXPECT_LE(v, hi + 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Alphas, StencilAlpha,
                         ::testing::Values(0.02, 0.08, 1.0 / 6.0));

}  // namespace
}  // namespace ctesim::kernels
