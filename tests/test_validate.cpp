// Tests for machine-model validation.
#include <gtest/gtest.h>

#include "arch/configs.h"
#include "arch/machine_io.h"
#include "arch/validate.h"
#include "fault/validate.h"

namespace ctesim::arch {
namespace {

TEST(Validate, BuiltinMachinesAreValid) {
  EXPECT_TRUE(validate(cte_arm()).empty());
  EXPECT_TRUE(validate(marenostrum4()).empty());
  EXPECT_NO_THROW(validate_or_throw(cte_arm()));
}

TEST(Validate, CatchesZeroFrequency) {
  auto m = cte_arm();
  m.node.core.freq_ghz = 0.0;
  const auto problems = validate(m);
  ASSERT_EQ(problems.size(), 1u);
  EXPECT_NE(problems[0].find("freq_ghz"), std::string::npos);
}

TEST(Validate, CatchesNonPowerOfTwoVector) {
  auto m = cte_arm();
  m.node.core.vector_bits = 384;
  EXPECT_FALSE(validate(m).empty());
}

TEST(Validate, CatchesBadEfficiencies) {
  auto m = cte_arm();
  m.node.core.ooo_scalar_efficiency = 1.5;
  m.node.domain.eff_ceiling = 0.0;
  m.interconnect.eff_bw_factor = -0.1;
  EXPECT_EQ(validate(m).size(), 3u);
}

TEST(Validate, CatchesTorusSmallerThanMachine) {
  auto m = cte_arm();
  m.num_nodes = 500;  // torus only addresses 192
  const auto problems = validate(m);
  ASSERT_EQ(problems.size(), 1u);
  EXPECT_NE(problems[0].find("dims"), std::string::npos);
}

TEST(Validate, CatchesSingleThreadBwAbovePeak) {
  auto m = marenostrum4();
  m.node.domain.single_thread_bw = 2.0 * m.node.domain.peak_bw;
  EXPECT_FALSE(validate(m).empty());
}

TEST(Validate, CatchesNegativeNetworkLatencies) {
  auto m = cte_arm();
  m.interconnect.per_hop_latency_s = -1e-7;
  auto problems = validate(m);
  ASSERT_EQ(problems.size(), 1u);
  EXPECT_NE(problems[0].find("per_hop_latency"), std::string::npos);

  m = cte_arm();
  m.interconnect.base_latency_s = -1.0e-6;
  m.interconnect.rendezvous_latency_s = -2.0e-6;
  EXPECT_EQ(validate(m).size(), 2u);
}

TEST(Validate, CatchesNonPositiveLinkBandwidth) {
  auto m = cte_arm();
  m.interconnect.link_bw = 0.0;
  auto problems = validate(m);
  ASSERT_EQ(problems.size(), 1u);
  EXPECT_NE(problems[0].find("link_bw"), std::string::npos);
}

TEST(Validate, CatchesInsaneTorusDims) {
  auto m = cte_arm();
  ASSERT_FALSE(m.interconnect.dims.empty());
  m.interconnect.dims[0] = 0;
  const auto problems = validate(m);
  // Zero-sized dimension (the coverage check is skipped for broken dims).
  ASSERT_EQ(problems.size(), 1u);
  EXPECT_NE(problems[0].find("every size must be >= 1"), std::string::npos);
  m.interconnect.dims.clear();
  EXPECT_FALSE(validate(m).empty()) << "torus with no dims must be invalid";
}

TEST(Validate, CatchesNegativeNodeExtras) {
  auto m = cte_arm();
  m.node.single_process_bw_cap = -1.0;
  m.node.sp_thread_bw = -1.0;
  m.node.l2_total_mb = -1.0;
  m.node.l3_total_mb = -1.0;
  EXPECT_EQ(validate(m).size(), 4u);
}

TEST(Validate, FatTreeNeedsNoDims) {
  auto m = marenostrum4();
  m.interconnect.dims.clear();
  EXPECT_TRUE(validate(m).empty());
}

TEST(Validate, ThrowListsEveryProblem) {
  auto m = cte_arm();
  m.name.clear();
  m.num_nodes = 0;
  try {
    validate_or_throw(m);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("machine.name"), std::string::npos);
    EXPECT_NE(what.find("machine.nodes"), std::string::npos);
  }
}

TEST(Validate, ParsedSampleMachineFileIsValid) {
  // The shipped example machine must stay valid.
  const auto m = load_machine_file(
      std::string(CTESIM_SOURCE_DIR) + "/examples/machines/a64fx_successor.ini");
  EXPECT_TRUE(validate(m).empty()) << "a64fx_successor.ini became invalid";
}

// --- fault-model & checkpoint-policy parameters ----------------------------

TEST(Validate, DefaultFaultModelAndPolicyAreValid) {
  EXPECT_TRUE(fault::validate(fault::FaultModel{}).empty());
  EXPECT_TRUE(fault::validate(fault::CheckpointPolicy{}).empty());
  EXPECT_NO_THROW(fault::validate_or_throw(fault::FaultModel{}));
}

TEST(Validate, CatchesNegativeMtbfAndRepair) {
  fault::FaultModel m;
  m.node_failure.mtbf_s = -1.0;
  m.node_failure.mean_repair_s = -5.0;
  const auto problems = fault::validate(m);
  ASSERT_EQ(problems.size(), 2u);
  EXPECT_NE(problems[0].find("mtbf_s"), std::string::npos);
  EXPECT_NE(problems[1].find("mean_repair_s"), std::string::npos);
}

TEST(Validate, CatchesBadWeibullShape) {
  fault::FaultModel m;
  m.node_failure.dist = fault::FailureSpec::Dist::kWeibull;
  m.node_failure.weibull_shape = 0.0;
  const auto problems = fault::validate(m);
  ASSERT_EQ(problems.size(), 1u);
  EXPECT_NE(problems[0].find("weibull_shape"), std::string::npos);
}

TEST(Validate, CatchesDegradationFactorsOutsideUnitInterval) {
  fault::FaultModel m;
  m.link_degradation.mtbd_s = 3600.0;
  m.link_degradation.factor_min = 0.0;   // must be in (0, 1]
  m.link_degradation.factor_max = 1.5;   // must be in (0, 1]
  EXPECT_EQ(fault::validate(m).size(), 2u);
  m.link_degradation.factor_min = 0.9;
  m.link_degradation.factor_max = 0.5;   // min above max
  const auto problems = fault::validate(m);
  ASSERT_EQ(problems.size(), 1u);
  EXPECT_NE(problems[0].find("factor_min"), std::string::npos);
}

TEST(Validate, CatchesBadCheckpointPolicy) {
  fault::CheckpointPolicy p;
  p.interval_s = -10.0;
  p.state_bytes_per_node = -1.0;
  p.restart_s = -2.0;
  p.write_bw = -1e9;
  EXPECT_EQ(fault::validate(p).size(), 4u);
  EXPECT_THROW(fault::validate_or_throw(p), std::invalid_argument);
}

TEST(Validate, YoungDalyNeedsANodeMtbf) {
  fault::CheckpointPolicy p;
  p.young_daly = true;  // node_mtbf_s left at 0
  const auto problems = fault::validate(p);
  ASSERT_EQ(problems.size(), 1u);
  EXPECT_NE(problems[0].find("node_mtbf_s"), std::string::npos);
  p.node_mtbf_s = 24.0 * 3600.0;
  EXPECT_TRUE(fault::validate(p).empty());
}

}  // namespace
}  // namespace ctesim::arch
