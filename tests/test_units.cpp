// Tests for the strong-typed physical quantities in util/units.h: scaled
// constructors/extractors, derived-type arithmetic, and (via the detection
// idiom) the dimension mix-ups that must NOT compile.
#include <gtest/gtest.h>

#include <type_traits>
#include <utility>

#include "util/units.h"

namespace ctesim::units {
namespace {

// ---- compile-time: dimension algebra yields the right types -------------
static_assert(std::is_same_v<decltype(Bytes{1.0} / BytesPerSec{1.0}), Seconds>);
static_assert(std::is_same_v<decltype(Flops{1.0} / FlopsPerSec{1.0}), Seconds>);
static_assert(std::is_same_v<decltype(Bytes{1.0} / Seconds{1.0}), BytesPerSec>);
static_assert(std::is_same_v<decltype(Flops{1.0} / Seconds{1.0}), FlopsPerSec>);
static_assert(
    std::is_same_v<decltype(BytesPerSec{1.0} * Seconds{1.0}), Bytes>);
static_assert(
    std::is_same_v<decltype(Seconds{1.0} * FlopsPerSec{1.0}), Flops>);
// Power and energy close under the same algebra.
static_assert(std::is_same_v<decltype(Joules{1.0} / Seconds{1.0}), Watts>);
static_assert(std::is_same_v<decltype(Watts{1.0} * Seconds{1.0}), Joules>);
static_assert(std::is_same_v<decltype(Seconds{1.0} * Watts{1.0}), Joules>);
static_assert(std::is_same_v<decltype(Joules{1.0} / Watts{1.0}), Seconds>);
// Same-dimension ratios are dimensionless.
static_assert(std::is_same_v<decltype(Seconds{1.0} / Seconds{2.0}), double>);
static_assert(std::is_same_v<decltype(Watts{1.0} / Watts{2.0}), double>);
static_assert(std::is_same_v<decltype(Joules{1.0} / Joules{2.0}), double>);
static_assert(
    std::is_same_v<decltype(BytesPerSec{1.0} / BytesPerSec{2.0}), double>);
// Scaling by a raw double stays in the dimension.
static_assert(std::is_same_v<decltype(2.0 * Seconds{1.0}), Seconds>);
static_assert(std::is_same_v<decltype(Bytes{8.0} / 2.0), Bytes>);

// ---- compile-time: mix-ups must not compile -----------------------------
template <class A, class B, class = void>
struct CanAdd : std::false_type {};
template <class A, class B>
struct CanAdd<A, B,
              std::void_t<decltype(std::declval<A>() + std::declval<B>())>>
    : std::true_type {};

template <class A, class B, class = void>
struct CanMultiply : std::false_type {};
template <class A, class B>
struct CanMultiply<
    A, B, std::void_t<decltype(std::declval<A>() * std::declval<B>())>>
    : std::true_type {};

static_assert(CanAdd<Seconds, Seconds>::value);
static_assert(!CanAdd<Seconds, Bytes>::value,
              "adding different dimensions must not compile");
static_assert(!CanAdd<BytesPerSec, FlopsPerSec>::value,
              "bandwidth + compute rate must not compile");
static_assert(!CanAdd<Watts, Joules>::value,
              "power + energy must not compile");
static_assert(!CanAdd<Joules, Flops>::value,
              "energy + FP work must not compile");
static_assert(!CanMultiply<Watts, Watts>::value,
              "Watts * Watts has no dimension here and must not compile");
static_assert(!CanAdd<Seconds, double>::value,
              "quantity + raw double must not compile");
static_assert(!CanMultiply<Bytes, Bytes>::value,
              "Bytes * Bytes has no dimension here and must not compile");
static_assert(!std::is_convertible_v<double, Seconds>,
              "construction from raw double must stay explicit");
static_assert(!std::is_convertible_v<Seconds, double>,
              "extraction must go through .value()");

// ---- runtime behaviour --------------------------------------------------
TEST(Units, ScaledConstructorsAndExtractors) {
  EXPECT_DOUBLE_EQ(microseconds(12.5).value(), 12.5e-6);
  EXPECT_DOUBLE_EQ(milliseconds(3.0).value(), 3.0e-3);
  EXPECT_DOUBLE_EQ(gigabytes(32.0).value(), 32.0e9);
  EXPECT_DOUBLE_EQ(gibibytes(1.0).value(), 1024.0 * 1024.0 * 1024.0);
  EXPECT_DOUBLE_EQ(gigabytes_per_sec(292.0).value(), 292.0e9);
  EXPECT_DOUBLE_EQ(gigaflops(70.4).value(), 70.4e9);

  EXPECT_DOUBLE_EQ(to_us(microseconds(7.0)), 7.0);
  EXPECT_DOUBLE_EQ(to_gbs(gigabytes_per_sec(862.6)), 862.6);
  EXPECT_DOUBLE_EQ(to_gflops(gigaflops(3379.2)), 3379.2);
}

TEST(Units, DerivedTypeArithmetic) {
  // Transfer time: 1 GB at 256 GB/s.
  const Seconds t = gigabytes(1.0) / gigabytes_per_sec(256.0);
  EXPECT_NEAR(t.value(), 1.0 / 256.0, 1e-15);
  // Round trip back to volume.
  const Bytes back = gigabytes_per_sec(256.0) * t;
  EXPECT_NEAR(back.value(), 1.0e9, 1e-3);
  // Compute time and achieved rate.
  const Seconds tc = Flops{2.0e9} / gigaflops(4.0);
  EXPECT_DOUBLE_EQ(tc.value(), 0.5);
  EXPECT_DOUBLE_EQ((Flops{2.0e9} / tc).value(), 4.0e9);
}

TEST(Units, PowerEnergyArithmetic) {
  // 150 W held for 2 hours is 1.08 MJ.
  const Joules e = Watts{150.0} * Seconds{7200.0};
  EXPECT_DOUBLE_EQ(e.value(), 1.08e6);
  // Mean power over the interval recovers the draw.
  const Watts p = e / Seconds{7200.0};
  EXPECT_DOUBLE_EQ(p.value(), 150.0);
  // Time to burn a budget at that draw.
  const Seconds t = e / Watts{300.0};
  EXPECT_DOUBLE_EQ(t.value(), 3600.0);
}

TEST(Units, PowerEnergyFormatting) {
  EXPECT_EQ(format_power(Watts{850.0}), format_power(850.0));
  EXPECT_EQ(format_power(23400.0), "23.40 kW");
  EXPECT_EQ(format_energy(Joules{3.6e6}), format_energy(3.6e6));
  EXPECT_EQ(format_energy(3.6e6), "3.60 MJ");
}

TEST(Units, SameDimensionRatioIsEfficiency) {
  const double eff = gigabytes_per_sec(862.6) / gigabytes_per_sec(1024.0);
  EXPECT_NEAR(eff, 0.8424, 1e-4);
}

TEST(Units, InPlaceAndComparisonOperators) {
  Seconds t = milliseconds(1.0);
  t += milliseconds(2.0);
  t -= microseconds(500.0);
  t *= 2.0;
  t /= 4.0;
  EXPECT_DOUBLE_EQ(t.value(), (1e-3 + 2e-3 - 0.5e-3) * 2.0 / 4.0);
  EXPECT_LT(microseconds(1.0), milliseconds(1.0));
  EXPECT_GT(gigabytes(2.0), gigabytes(1.0));
  EXPECT_EQ(Seconds{0.25}, Seconds{0.25});
  EXPECT_DOUBLE_EQ((-Seconds{0.25}).value(), -0.25);
}

TEST(Units, DefaultConstructionIsZero) {
  EXPECT_DOUBLE_EQ(BytesPerSec{}.value(), 0.0);
  EXPECT_DOUBLE_EQ(Flops{}.value(), 0.0);
}

TEST(Units, TypedFormattingMatchesRawOverloads) {
  EXPECT_EQ(format_bandwidth(gigabytes_per_sec(862.6)),
            format_bandwidth(862.6e9));
  EXPECT_EQ(format_flops(gigaflops(70.40)), format_flops(70.40e9));
  EXPECT_EQ(format_seconds(microseconds(12.5)), format_seconds(12.5e-6));
}

}  // namespace
}  // namespace ctesim::units
