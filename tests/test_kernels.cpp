// Tests for the native numerical kernels: STREAM, FMA, dense LU, sparse
// CG, mini-HPCG multigrid, MD, stencil, FFT.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "kernels/dense.h"
#include "kernels/fft.h"
#include "kernels/fma.h"
#include "kernels/md.h"
#include "kernels/multigrid.h"
#include "kernels/sparse.h"
#include "kernels/stencil.h"
#include "kernels/stream.h"
#include "util/rng.h"

namespace ctesim::kernels {
namespace {

TEST(StreamKernel, VerifiesAgainstClosedForm) {
  Stream s(10000);
  EXPECT_LT(s.run_and_verify(3), 1e-13);
}

TEST(StreamKernel, BandwidthPositive) {
  Stream s(1 << 20);
  const double dt = s.triad();
  EXPECT_GT(s.bandwidth(24, dt), 0.0);
}

TEST(Fma, ChecksumMatchesClosedForm) {
  const auto r64 = fma_throughput_f64(10000);
  EXPECT_DOUBLE_EQ(r64.checksum, fma_expected_checksum_f64(10000));
  const auto r32 = fma_throughput_f32(10000);
  EXPECT_FLOAT_EQ(static_cast<float>(r32.checksum),
                  fma_expected_checksum_f32(10000));
}

TEST(Fma, ReportsThroughput) {
  const auto r = fma_throughput_f64(2'000'000);
  EXPECT_GT(r.gflops, 0.1);  // any host manages > 100 MFlop/s
}

TEST(Dense, GemmMatchesNaive) {
  Rng rng(5);
  const std::size_t m = 17, k = 23, n = 13;
  Matrix a(m, k), b(k, n), c(m, n), ref(m, n);
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < k; ++j) a.at(i, j) = rng.uniform(-1, 1);
  for (std::size_t i = 0; i < k; ++i)
    for (std::size_t j = 0; j < n; ++j) b.at(i, j) = rng.uniform(-1, 1);
  gemm_blocked(a, b, c, 8);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double s = 0.0;
      for (std::size_t p = 0; p < k; ++p) s += a.at(i, p) * b.at(p, j);
      ref.at(i, j) = s;
    }
  }
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j)
      EXPECT_NEAR(c.at(i, j), ref.at(i, j), 1e-12);
}

class LuTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LuTest, FactorSolveResidualSmall) {
  const std::size_t n = GetParam();
  Rng rng(n);
  Matrix a(n, n);
  std::vector<double> b(n);
  for (std::size_t i = 0; i < n; ++i) {
    b[i] = rng.uniform(-1, 1);
    for (std::size_t j = 0; j < n; ++j) a.at(i, j) = rng.uniform(-1, 1);
  }
  Matrix lu = a;
  std::vector<std::size_t> pivots;
  ASSERT_TRUE(lu_factor(lu, pivots, 16));
  const auto x = lu_solve(lu, pivots, b);
  // HPL acceptance: scaled residual below 16.
  EXPECT_LT(hpl_residual(a, x, b), 16.0);
}

INSTANTIATE_TEST_SUITE_P(Sizes, LuTest,
                         ::testing::Values(1, 2, 3, 5, 16, 33, 64, 100, 150));

TEST(Dense, LuDetectsSingularity) {
  Matrix a(3, 3, 0.0);  // all-zero matrix
  std::vector<std::size_t> pivots;
  EXPECT_FALSE(lu_factor(a, pivots));
}

TEST(Dense, LuNeedsPivoting) {
  // Zero on the leading diagonal: fails without pivoting, fine with it.
  Matrix a(2, 2);
  a.at(0, 0) = 0.0;
  a.at(0, 1) = 1.0;
  a.at(1, 0) = 1.0;
  a.at(1, 1) = 1.0;
  Matrix lu = a;
  std::vector<std::size_t> pivots;
  ASSERT_TRUE(lu_factor(lu, pivots));
  const auto x = lu_solve(lu, pivots, {1.0, 2.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 1.0, 1e-12);
}

TEST(Sparse, Poisson27Structure) {
  const auto a = build_poisson27(4, 4, 4);
  EXPECT_EQ(a.rows, 64u);
  // Interior row has 27 entries, corner has 8.
  std::int64_t min_row = 100, max_row = 0;
  for (std::size_t i = 0; i < a.rows; ++i) {
    const auto len = a.row_ptr[i + 1] - a.row_ptr[i];
    min_row = std::min(min_row, len);
    max_row = std::max(max_row, len);
  }
  EXPECT_EQ(min_row, 8);
  EXPECT_EQ(max_row, 27);
  // Row sums: diagonal 26 minus (entries-1) -> nonnegative (diag dominant).
  for (std::size_t i = 0; i < a.rows; ++i) {
    double sum = 0.0;
    for (auto k = a.row_ptr[i]; k < a.row_ptr[i + 1]; ++k)
      sum += a.val[static_cast<std::size_t>(k)];
    EXPECT_GE(sum, 0.0);
  }
}

TEST(Sparse, SpmvIdentityOnConstVector) {
  // A * ones: row sums; for the 7-point operator interior rows give 0.
  const auto a = build_poisson7(5, 5, 5);
  std::vector<double> ones(a.rows, 1.0);
  std::vector<double> y;
  spmv(a, ones, y);
  // Center row (2,2,2) is interior: 6 - 6 = 0.
  const std::size_t center = (2 * 5 + 2) * 5 + 2;
  EXPECT_NEAR(y[center], 0.0, 1e-14);
}

TEST(Sparse, CgSolvesPoisson) {
  const auto a = build_poisson27(8, 8, 8);
  std::vector<double> expected(a.rows);
  Rng rng(3);
  for (auto& v : expected) v = rng.uniform(-1, 1);
  std::vector<double> b;
  spmv(a, expected, b);
  std::vector<double> x;
  const auto r = conjugate_gradient(a, b, x, 500, 1e-10);
  EXPECT_TRUE(r.converged);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(x[i], expected[i], 1e-6);
  }
}

TEST(Sparse, PreconditionedCgConvergesFaster) {
  const auto a = build_poisson27(16, 16, 16);
  std::vector<double> ones(a.rows, 1.0);
  std::vector<double> b;
  spmv(a, ones, b);
  std::vector<double> x;
  const auto plain = conjugate_gradient(a, b, x, 500, 1e-9);
  const MultigridHierarchy mg(16, 16, 16, 3);
  const auto pre = conjugate_gradient(
      a, b, x, 500, 1e-9,
      [&mg](const std::vector<double>& r, std::vector<double>& z) {
        mg.v_cycle(r, z);
      });
  EXPECT_TRUE(plain.converged);
  EXPECT_TRUE(pre.converged);
  EXPECT_LT(pre.iterations, plain.iterations);
}

TEST(Multigrid, SymgsReducesResidual) {
  const auto a = build_poisson27(8, 8, 8);
  std::vector<double> ones(a.rows, 1.0);
  std::vector<double> b;
  spmv(a, ones, b);
  std::vector<double> x(a.rows, 0.0);
  auto residual = [&] {
    std::vector<double> ax;
    spmv(a, x, ax);
    double r2 = 0.0;
    for (std::size_t i = 0; i < b.size(); ++i) {
      r2 += (b[i] - ax[i]) * (b[i] - ax[i]);
    }
    return std::sqrt(r2);
  };
  const double r0 = residual();
  symgs_sweep(a, b, x);
  const double r1 = residual();
  symgs_sweep(a, b, x);
  const double r2 = residual();
  EXPECT_LT(r1, r0);
  EXPECT_LT(r2, r1);
}

TEST(Multigrid, MiniHpcgConverges) {
  const auto r = run_mini_hpcg(16, 16, 16, 50, 1e-9);
  EXPECT_TRUE(r.converged);
  EXPECT_GT(r.flops, 0.0);
  // MG-preconditioned CG on Poisson should converge in a handful of iters.
  EXPECT_LE(r.iterations, 25);
}

TEST(Md, EnergyConservedOverShortRun) {
  MdSystem md(MdConfig{.particles = 256, .box = 8.0, .cutoff = 2.5,
                       .dt = 0.001});
  const double e0 = md.total_energy();
  md.run(200);
  const double e1 = md.total_energy();
  // Velocity Verlet with a smooth-enough system: small relative drift.
  EXPECT_NEAR(e1, e0, 0.02 * std::fabs(e0) + 0.5);
}

TEST(Md, MomentumConserved) {
  MdSystem md(MdConfig{.particles = 128, .box = 7.0, .cutoff = 2.5,
                       .dt = 0.001});
  EXPECT_LT(md.momentum_norm(), 1e-10);
  md.run(100);
  EXPECT_LT(md.momentum_norm(), 1e-8);
}

TEST(Md, NewtonThirdLawForceSumZero) {
  MdSystem md(MdConfig{.particles = 64, .box = 6.0});
  md.compute_forces();
  // Momentum conservation over a step implies force sum ~ 0; verify via a
  // single step's momentum change instead of exposing forces.
  const double p0 = md.momentum_norm();
  md.step();
  EXPECT_NEAR(md.momentum_norm(), p0, 1e-9);
}

TEST(Md, PairCountPositiveAndBounded) {
  MdSystem md(MdConfig{.particles = 256, .box = 8.0});
  md.compute_forces();
  EXPECT_GT(md.last_pair_count(), 0u);
  EXPECT_LT(md.last_pair_count(), 256u * 255u / 2u);
}

TEST(Stencil, DiffusionConservesSum) {
  Grid3D g(8, 8, 8);
  Rng rng(17);
  for (auto& v : g.raw()) v = rng.uniform(0, 1);
  const double s0 = g.sum();
  diffuse(g, 10, 1.0 / 6.0);
  EXPECT_NEAR(g.sum(), s0, 1e-9 * std::fabs(s0));
}

TEST(Stencil, DiffusionSmoothsTowardMean) {
  Grid3D g(8, 8, 8);
  g.at(4, 4, 4) = 512.0;  // delta spike
  const double mean = g.sum() / static_cast<double>(g.size());
  // alpha strictly below the 1/6 stability limit: at exactly 1/6 the
  // checkerboard (Nyquist) mode has amplification factor -1 and never
  // decays on a periodic grid.
  diffuse(g, 600, 0.10);
  // Long-time limit of periodic diffusion is the uniform mean field.
  for (double v : g.raw()) EXPECT_NEAR(v, mean, 0.05 * mean);
}

TEST(Fft, RoundTripRestoresSignal) {
  Rng rng(23);
  std::vector<Complex> x(256);
  for (auto& v : x) v = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  auto y = x;
  fft(y);
  ifft(y);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(y[i].real(), x[i].real(), 1e-12);
    EXPECT_NEAR(y[i].imag(), x[i].imag(), 1e-12);
  }
}

TEST(Fft, TransformOfPureToneIsDelta) {
  const std::size_t n = 64;
  const std::size_t tone = 5;
  std::vector<Complex> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double phase =
        2.0 * std::numbers::pi * tone * static_cast<double>(i) / n;
    x[i] = {std::cos(phase), std::sin(phase)};
  }
  fft(x);
  for (std::size_t k = 0; k < n; ++k) {
    const double expected = k == tone ? static_cast<double>(n) : 0.0;
    EXPECT_NEAR(std::abs(x[k]), expected, 1e-9);
  }
}

TEST(Fft, ParsevalIdentity) {
  Rng rng(29);
  std::vector<Complex> x(128);
  double time_energy = 0.0;
  for (auto& v : x) {
    v = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
    time_energy += std::norm(v);
  }
  fft(x);
  double freq_energy = 0.0;
  for (const auto& v : x) freq_energy += std::norm(v);
  EXPECT_NEAR(freq_energy, time_energy * 128.0, 1e-9 * freq_energy);
}

TEST(Fft, RejectsNonPowerOfTwo) {
  std::vector<Complex> x(100);
  EXPECT_THROW(fft(x), ContractError);
  EXPECT_TRUE(is_power_of_two(64));
  EXPECT_FALSE(is_power_of_two(0));
  EXPECT_FALSE(is_power_of_two(96));
}

}  // namespace
}  // namespace ctesim::kernels
