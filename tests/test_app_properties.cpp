// Cross-application property sweeps: invariants every workload proxy must
// satisfy on both machines.
#include <gtest/gtest.h>

#include <functional>
#include <string>

#include "apps/alya.h"
#include "apps/gromacs.h"
#include "apps/nemo.h"
#include "apps/openifs.h"
#include "apps/wrf.h"
#include "arch/configs.h"

namespace ctesim::apps {
namespace {

struct AppCase {
  const char* name;
  int min_nodes;
  int max_nodes;
  /// Principal metric at `nodes` on `machine` (lower is better).
  std::function<double(const arch::MachineModel&, int)> metric;
};

std::vector<AppCase> cases() {
  return {
      {"alya", 12, 44,
       [](const arch::MachineModel& m, int n) {
         return run_alya(m, n).time_per_step;
       }},
      {"nemo", 8, 32,
       [](const arch::MachineModel& m, int n) {
         return run_nemo(m, n).total_time;
       }},
      {"gromacs", 1, 16,
       [](const arch::MachineModel& m, int n) {
         return run_gromacs(m, n * 8).days_per_ns;
       }},
      {"wrf", 1, 16,
       [](const arch::MachineModel& m, int n) {
         return run_wrf(m, n).total_time;
       }},
  };
}

class AppProperty : public ::testing::TestWithParam<int> {};

TEST_P(AppProperty, StrongScalingMonotoneOnBothMachines) {
  const AppCase app = cases()[static_cast<std::size_t>(GetParam())];
  for (const auto& machine : {arch::cte_arm(), arch::marenostrum4()}) {
    double prev = 1e300;
    for (int nodes = app.min_nodes; nodes <= app.max_nodes; nodes *= 2) {
      const double t = app.metric(machine, nodes);
      EXPECT_LT(t, prev) << app.name << " on " << machine.name << " at "
                         << nodes;
      prev = t;
    }
  }
}

TEST_P(AppProperty, DeterministicAcrossRepeatedRuns) {
  const AppCase app = cases()[static_cast<std::size_t>(GetParam())];
  const auto machine = arch::cte_arm();
  EXPECT_DOUBLE_EQ(app.metric(machine, app.min_nodes),
                   app.metric(machine, app.min_nodes))
      << app.name;
}

TEST_P(AppProperty, MareNostrumAlwaysWinsPerEqualNodes) {
  // The paper's blanket finding for all five untuned applications.
  const AppCase app = cases()[static_cast<std::size_t>(GetParam())];
  for (int nodes = app.min_nodes; nodes <= app.max_nodes; nodes *= 2) {
    EXPECT_GT(app.metric(arch::cte_arm(), nodes),
              app.metric(arch::marenostrum4(), nodes))
        << app.name << " at " << nodes;
  }
}

TEST_P(AppProperty, SlowdownWithinPaperEnvelope) {
  // Every application's slowdown lies in the paper's global 1.6x-4x band
  // at its smallest studied scale.
  const AppCase app = cases()[static_cast<std::size_t>(GetParam())];
  const double ratio = app.metric(arch::cte_arm(), app.min_nodes) /
                       app.metric(arch::marenostrum4(), app.min_nodes);
  EXPECT_GT(ratio, 1.5) << app.name;
  EXPECT_LT(ratio, 4.0) << app.name;
}

INSTANTIATE_TEST_SUITE_P(Apps, AppProperty, ::testing::Range(0, 4));

TEST(AppProperty, OpenIfsCoveredSeparately) {
  // OpenIFS single-node study (its multi-node minimum of 32 nodes makes
  // the doubling sweep above too expensive for a unit test).
  const double cte = run_openifs_ranks(arch::cte_arm(), 48).seconds_per_day;
  const double mn4 =
      run_openifs_ranks(arch::marenostrum4(), 48).seconds_per_day;
  EXPECT_GT(cte / mn4, 1.5);
  EXPECT_LT(cte / mn4, 4.0);
}

}  // namespace
}  // namespace ctesim::apps
