// Tests for the machine-file parser/writer.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "arch/configs.h"
#include "arch/machine_io.h"

namespace ctesim::arch {
namespace {

void expect_machines_equal(const MachineModel& a, const MachineModel& b) {
  EXPECT_EQ(a.name, b.name);
  EXPECT_EQ(a.integrator, b.integrator);
  EXPECT_EQ(a.cpu_name, b.cpu_name);
  EXPECT_EQ(a.num_nodes, b.num_nodes);
  EXPECT_EQ(a.node.core.isa_name, b.node.core.isa_name);
  EXPECT_EQ(a.node.core.uarch, b.node.core.uarch);
  EXPECT_DOUBLE_EQ(a.node.core.freq_ghz, b.node.core.freq_ghz);
  EXPECT_EQ(a.node.core.vector_bits, b.node.core.vector_bits);
  EXPECT_EQ(a.node.core.fp16_vector, b.node.core.fp16_vector);
  EXPECT_DOUBLE_EQ(a.node.core.ooo_scalar_efficiency,
                   b.node.core.ooo_scalar_efficiency);
  EXPECT_EQ(a.node.num_domains, b.node.num_domains);
  EXPECT_EQ(a.node.domain.cores, b.node.domain.cores);
  EXPECT_DOUBLE_EQ(a.node.domain.peak_bw, b.node.domain.peak_bw);
  EXPECT_DOUBLE_EQ(a.node.domain.eff_ceiling, b.node.domain.eff_ceiling);
  EXPECT_DOUBLE_EQ(a.node.single_process_bw_cap, b.node.single_process_bw_cap);
  EXPECT_DOUBLE_EQ(a.node.shm_bw, b.node.shm_bw);
  EXPECT_DOUBLE_EQ(a.node.l2_total_mb, b.node.l2_total_mb);
  EXPECT_EQ(a.interconnect.kind, b.interconnect.kind);
  EXPECT_EQ(a.interconnect.dims, b.interconnect.dims);
  EXPECT_DOUBLE_EQ(a.interconnect.link_bw, b.interconnect.link_bw);
  EXPECT_DOUBLE_EQ(a.interconnect.base_latency_s,
                   b.interconnect.base_latency_s);
  EXPECT_EQ(a.interconnect.eager_threshold, b.interconnect.eager_threshold);
  EXPECT_DOUBLE_EQ(a.interconnect.long_dim_bw_penalty,
                   b.interconnect.long_dim_bw_penalty);
}

TEST(MachineIo, RoundTripsCteArm) {
  const auto original = cte_arm();
  const auto parsed = parse_machine_string(machine_to_string(original));
  expect_machines_equal(original, parsed);
  // Derived quantities survive too.
  EXPECT_DOUBLE_EQ(parsed.node.peak_flops().value(), original.node.peak_flops().value());
  EXPECT_DOUBLE_EQ(parsed.node.single_process_bw(24).value(),
                   original.node.single_process_bw(24).value());
}

TEST(MachineIo, RoundTripsMareNostrum4) {
  const auto original = marenostrum4();
  const auto parsed = parse_machine_string(machine_to_string(original));
  expect_machines_equal(original, parsed);
}

TEST(MachineIo, ParsesCommentsAndWhitespace) {
  const auto m = parse_machine_string(
      "; a comment\n"
      "[machine]\n"
      "  name =   Boxy   # trailing comment\n"
      "nodes = 7\n"
      "\n"
      "[core]\n"
      "uarch = skylake\n"
      "freq_ghz = 3.5\n");
  EXPECT_EQ(m.name, "Boxy");
  EXPECT_EQ(m.num_nodes, 7);
  EXPECT_EQ(m.node.core.uarch, MicroArch::kSkylake);
  EXPECT_DOUBLE_EQ(m.node.core.freq_ghz, 3.5);
}

TEST(MachineIo, RejectsUnknownKey) {
  EXPECT_THROW(parse_machine_string("[machine]\nwheels = 4\n"),
               MachineParseError);
}

TEST(MachineIo, RejectsBadNumbers) {
  EXPECT_THROW(parse_machine_string("[core]\nfreq_ghz = fast\n"),
               MachineParseError);
  EXPECT_THROW(parse_machine_string("[machine]\nnodes = many\n"),
               MachineParseError);
  EXPECT_THROW(parse_machine_string("[core]\nfp16_vector = maybe\n"),
               MachineParseError);
}

TEST(MachineIo, RejectsMalformedStructure) {
  EXPECT_THROW(parse_machine_string("[machine\nname = x\n"),
               MachineParseError);
  EXPECT_THROW(parse_machine_string("[machine]\njust some text\n"),
               MachineParseError);
  EXPECT_THROW(parse_machine_string("[core]\nuarch = riscv\n"),
               MachineParseError);
}

TEST(MachineIo, ErrorsCarryLineNumbers) {
  try {
    parse_machine_string("[machine]\nname = ok\nbogus_key = 1\n");
    FAIL() << "expected MachineParseError";
  } catch (const MachineParseError& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

TEST(MachineIo, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "ctesim_machine_test.ini";
  save_machine_file(path, cte_arm());
  const auto loaded = load_machine_file(path);
  expect_machines_equal(cte_arm(), loaded);
  std::remove(path.c_str());
}

TEST(MachineIo, MissingFileThrows) {
  EXPECT_THROW(load_machine_file("/nonexistent/machine.ini"),
               MachineParseError);
}

TEST(MachineIo, TorusDimsParseAsList) {
  const auto m = parse_machine_string(
      "[interconnect]\nkind = torus\ndims = 4 2 2 2 3 2\n");
  EXPECT_EQ(m.interconnect.dims, (std::vector<int>{4, 2, 2, 2, 3, 2}));
}

}  // namespace
}  // namespace ctesim::arch
