// Determinism tests for the 4-ary event queue: the heap must order events
// exactly like the std::priority_queue it replaced — earliest time first,
// equal times in scheduling order — under arbitrary push/pop interleavings.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "core/event_queue.h"
#include "util/rng.h"

namespace ctesim::sim {
namespace {

struct Key {
  Time time;
  std::uint64_t seq;
  bool operator==(const Key&) const = default;
};

/// Reference ordering: stable sort by time only. Stability means equal
/// times keep insertion (= seq) order, which is exactly the engine's
/// equal-time-fires-in-scheduling-order contract.
std::vector<Key> oracle_order(std::vector<Key> keys) {
  std::stable_sort(keys.begin(), keys.end(),
                   [](const Key& a, const Key& b) { return a.time < b.time; });
  return keys;
}

TEST(EventQueue, DrainsInTimeThenSchedulingOrder) {
  EventQueue queue;
  std::uint64_t seq = 0;
  std::vector<Key> pushed;
  for (Time t : {30, 10, 20, 10, 30, 10, 20}) {
    pushed.push_back({t, seq});
    queue.push({t, seq++, [] {}});
  }
  const auto expected = oracle_order(pushed);
  std::vector<Key> drained;
  while (!queue.empty()) {
    auto event = queue.pop();
    drained.push_back({event.time, event.seq});
  }
  EXPECT_EQ(drained, expected);
}

TEST(EventQueue, RandomizedInterleavingMatchesStableSortOracle) {
  // Many trials of random push/pop interleavings over a tiny time domain
  // (lots of ties), checked against the stable-sort oracle. Any heap
  // implementation bug that reorders equal-time events — the bug class
  // that would silently break trace byte-identity — shows up here.
  Rng rng(20260809);
  for (int trial = 0; trial < 200; ++trial) {
    EventQueue queue;
    std::vector<Key> outstanding;  // mirrors queue contents
    std::vector<Key> popped;
    std::uint64_t seq = 0;
    for (int op = 0; op < 400; ++op) {
      const bool do_push =
          outstanding.empty() || rng.next_u64() % 100 < 60;
      if (do_push) {
        const Time t = static_cast<Time>(rng.next_u64() % 8);
        outstanding.push_back({t, seq});
        queue.push({t, seq++, [] {}});
      } else {
        auto event = queue.pop();
        popped.push_back({event.time, event.seq});
        // Remove the oracle's minimum (stable: first of the earliest time).
        auto sorted = oracle_order(outstanding);
        ASSERT_EQ(popped.back(), sorted.front())
            << "trial " << trial << " op " << op;
        outstanding.erase(std::find(outstanding.begin(), outstanding.end(),
                                    sorted.front()));
      }
      ASSERT_EQ(queue.size(), outstanding.size());
    }
    auto remaining = oracle_order(outstanding);
    for (const Key& expect : remaining) {
      auto event = queue.pop();
      ASSERT_EQ((Key{event.time, event.seq}), expect);
    }
    EXPECT_TRUE(queue.empty());
  }
}

TEST(EventQueue, PopMovesTheCallbackOut) {
  // The move-out pop is what makes dispatch copy-free; a move-only payload
  // (InlineFunction is move-only by design) would not even compile under
  // the old copy-then-pop, but assert the behaviour end to end anyway.
  EventQueue queue;
  int fired = 0;
  queue.push({5, 0, [&fired] { fired = 1; }});
  auto event = queue.pop();
  EXPECT_TRUE(queue.empty());
  ASSERT_TRUE(static_cast<bool>(event.fn));
  event.fn();
  EXPECT_EQ(fired, 1);
}

TEST(EventQueue, TopTimeTracksMinimum) {
  EventQueue queue;
  queue.push({70, 0, [] {}});
  EXPECT_EQ(queue.top_time(), 70);
  queue.push({40, 1, [] {}});
  EXPECT_EQ(queue.top_time(), 40);
  queue.push({55, 2, [] {}});
  EXPECT_EQ(queue.top_time(), 40);
  (void)queue.pop();
  EXPECT_EQ(queue.top_time(), 55);
}

TEST(EventQueue, ClearDropsEverything) {
  EventQueue queue;
  for (int i = 0; i < 10; ++i) {
    queue.push({i, static_cast<std::uint64_t>(i), [] {}});
  }
  queue.clear();
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.size(), 0u);
}

}  // namespace
}  // namespace ctesim::sim
