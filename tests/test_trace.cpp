// Tests for the observability subsystem (src/trace/): span nesting,
// counter monotonicity, deterministic (byte-identical) Chrome export and a
// full JSON round-trip through the bundled parser.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "arch/configs.h"
#include "batch/cluster.h"
#include "batch/workload.h"
#include "core/engine.h"
#include "trace/chrome.h"
#include "trace/recorder.h"
#include "util/json.h"
#include "util/check.h"

namespace ctesim::trace {
namespace {

TEST(Track, OrderingAndLabels) {
  EXPECT_EQ(Track::global(), Track::global());
  EXPECT_LT(Track::global(), Track::rank(0));
  EXPECT_LT(Track::rank(3), Track::rank(4));
  EXPECT_LT(Track::rank(99), Track::node(0));
  EXPECT_LT(Track::node(5), Track::job(0));
  EXPECT_EQ(label(Track::global()), "sim");
  EXPECT_EQ(label(Track::rank(3)), "rank 3");
  EXPECT_EQ(label(Track::node(7)), "node 7");
  EXPECT_EQ(label(Track::job(12)), "job 12");
}

TEST(Recorder, SpanNestingClosesInnermostFirst) {
  Recorder rec;
  const Track t = Track::job(1);
  rec.begin(t, "batch", "outer", "", sim::from_seconds(0.0));
  EXPECT_EQ(rec.open_depth(t), 1);
  rec.begin(t, "batch", "inner", "", sim::from_seconds(1.0));
  EXPECT_EQ(rec.open_depth(t), 2);
  rec.end(t, sim::from_seconds(2.0));
  rec.end(t, sim::from_seconds(3.0));
  EXPECT_EQ(rec.open_depth(t), 0);
  ASSERT_EQ(rec.spans().size(), 2u);
  // Completion order: the inner span closed (and was emitted) first.
  EXPECT_EQ(rec.spans()[0].name, "inner");
  EXPECT_EQ(rec.spans()[1].name, "outer");
  EXPECT_EQ(rec.spans()[0].start, sim::from_seconds(1.0));
  EXPECT_EQ(rec.spans()[0].end, sim::from_seconds(2.0));
  EXPECT_EQ(rec.spans()[1].end, sim::from_seconds(3.0));
}

TEST(Recorder, MismatchedEndThrows) {
  Recorder rec;
  EXPECT_THROW(rec.end(Track::job(9), 100), ContractError);
  rec.begin(Track::job(9), "batch", "run", "", 100);
  // An end() earlier than the span's begin is a contract violation too.
  EXPECT_THROW(rec.end(Track::job(9), 50), ContractError);
}

TEST(Recorder, DisabledRecordsNothingCheaply) {
  Recorder rec(/*enabled=*/false);
  rec.span(Track::rank(0), "mpi", "compute", "", 0, 100);
  rec.begin(Track::job(0), "batch", "queued", "", 0);
  rec.end(Track::job(0), 10);  // no-op, must not throw despite no begin
  rec.instant(Track::global(), "core", "tick", "", 5);
  rec.counter(Track::global(), "core", "x", 5, 1.0);
  EXPECT_TRUE(rec.spans().empty());
  EXPECT_TRUE(rec.instants().empty());
  EXPECT_TRUE(rec.counters().empty());
  EXPECT_TRUE(rec.tracks().empty());
}

TEST(Recorder, CounterSeriesFiltersByNameAndTrack) {
  Recorder rec;
  rec.counter(Track::global(), "batch", "queue_depth", 10, 3.0);
  rec.counter(Track::global(), "batch", "busy_nodes", 10, 8.0);
  rec.counter(Track::global(), "batch", "queue_depth", 20, 2.0);
  rec.counter(Track::node(1), "batch", "queue_depth", 30, 99.0);
  const auto series = rec.counter_series("queue_depth");
  ASSERT_EQ(series.size(), 2u);
  EXPECT_EQ(series[0].value, 3.0);
  EXPECT_EQ(series[1].value, 2.0);
  EXPECT_EQ(rec.counter_series("queue_depth", Track::node(1)).size(), 1u);
}

TEST(Engine, SamplesEventCounterMonotonically) {
  Recorder rec;
  sim::Engine engine;
  engine.set_recorder(&rec, /*sample_interval=*/8);
  for (int i = 0; i < 100; ++i) {
    engine.schedule_in(i, [] {});
  }
  engine.run();
  const auto series = rec.counter_series("events_processed");
  ASSERT_GE(series.size(), 10u);  // 100 events / every 8th
  double prev = 0.0;
  sim::Time prev_t = -1;
  for (const auto& sample : series) {
    EXPECT_EQ(sample.category, std::string("core"));
    EXPECT_GT(sample.value, prev);
    EXPECT_GE(sample.time, prev_t);
    prev = sample.value;
    prev_t = sample.time;
  }
}

TEST(Recorder, CountersCsvRoundTrip) {
  Recorder rec;
  rec.counter(Track::global(), "batch", "queue_depth", sim::from_seconds(1.5),
              3.0);
  rec.counter(Track::node(2), "net", "busy_links", sim::from_seconds(2.0),
              7.0);
  const std::string path = ::testing::TempDir() + "ctesim_counters.csv";
  rec.write_counters_csv(path);
  std::ifstream in(path);
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, "time_s,track,category,name,value");
  std::string line;
  std::getline(in, line);
  EXPECT_NE(line.find("queue_depth"), std::string::npos);
  EXPECT_NE(line.find("sim"), std::string::npos);
  std::getline(in, line);
  EXPECT_NE(line.find("node 2"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Json, EscapeHandlesControlAndQuotes) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb"), "a\\nb");
  EXPECT_EQ(json_escape(std::string("a\x01") + "b"), "a\\u0001b");
}

TEST(Json, ParsesScalarsArraysObjects) {
  const auto v = json::parse(
      R"({"a": [1, -2.5e2, true, null], "s": "x\né", "nested": {"k": 2}})");
  ASSERT_TRUE(v.is_object());
  const auto* a = v.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->array.size(), 4u);
  EXPECT_EQ(a->array[0].number, 1.0);
  EXPECT_EQ(a->array[1].number, -250.0);
  EXPECT_TRUE(a->array[2].boolean);
  EXPECT_EQ(a->array[3].type, json::Value::Type::kNull);
  EXPECT_EQ(v.find("s")->string, "x\n\xc3\xa9");
  EXPECT_EQ(v.find("nested")->find("k")->number, 2.0);
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_THROW(json::parse("{"), std::runtime_error);
  EXPECT_THROW(json::parse("[1,]"), std::runtime_error);
  EXPECT_THROW(json::parse("\"unterminated"), std::runtime_error);
  EXPECT_THROW(json::parse("{} trailing"), std::runtime_error);
  EXPECT_THROW(json::parse("nul"), std::runtime_error);
}

// A small batch workload used by the export tests: real scheduler, real
// placement, recorded end to end.
batch::ClusterResult traced_cluster(Recorder* rec) {
  const batch::RuntimeModel model(arch::cte_arm());
  batch::WorkloadConfig config;
  config.num_jobs = 24;
  config.mean_interarrival_s = 20.0;
  const auto jobs = batch::generate(config, model, 17);
  batch::ClusterOptions options;
  options.recorder = rec;
  return batch::run_cluster(model, jobs, options);
}

TEST(Chrome, ExportIsByteIdenticalForIdenticalRuns) {
  Recorder a;
  Recorder b;
  traced_cluster(&a);
  traced_cluster(&b);
  std::ostringstream oa;
  std::ostringstream ob;
  write_chrome_trace(a, oa);
  write_chrome_trace(b, ob);
  EXPECT_FALSE(oa.str().empty());
  EXPECT_EQ(oa.str(), ob.str());
}

TEST(Chrome, ExportRoundTripsThroughJsonParser) {
  Recorder rec;
  traced_cluster(&rec);
  std::ostringstream os;
  write_chrome_trace(rec, os);
  const auto doc = json::parse(os.str());
  ASSERT_TRUE(doc.is_object());
  const auto* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  int spans = 0;
  int counters = 0;
  int metadata = 0;
  for (const auto& ev : events->array) {
    ASSERT_TRUE(ev.is_object());
    const auto* ph = ev.find("ph");
    ASSERT_NE(ph, nullptr);
    if (ph->string == "X") {
      ++spans;
      EXPECT_EQ(ev.find("cat")->string, "batch");
      EXPECT_GE(ev.find("dur")->number, 0.0);
    } else if (ph->string == "C") {
      ++counters;
    } else if (ph->string == "M") {
      ++metadata;
    }
  }
  // Every job contributes a "queued" and a "run" span; counters sample the
  // machine state at every scheduling event.
  EXPECT_GE(spans, 2 * 24);
  EXPECT_GT(counters, 0);
  EXPECT_GT(metadata, 0);
  // The counters include the lanes the bench acceptance criteria name.
  EXPECT_FALSE(rec.counter_series("utilization").empty());
  EXPECT_FALSE(rec.counter_series("queue_depth").empty());
  EXPECT_FALSE(rec.counter_series("busy_nodes").empty());
}

TEST(Chrome, JobLifecycleSpansMatchRecords) {
  Recorder rec;
  const auto result = traced_cluster(&rec);
  int runs = 0;
  for (const auto& span : rec.spans()) {
    if (span.name != "run") continue;
    ++runs;
    ASSERT_EQ(span.track.kind, TrackKind::kJob);
    const auto& record = result.records[span.track.index];
    EXPECT_NEAR(sim::to_seconds(span.start), record.start_s, 1e-9);
    EXPECT_NEAR(sim::to_seconds(span.end), record.end_s, 1e-9);
  }
  EXPECT_EQ(runs, static_cast<int>(result.records.size()));
}

TEST(Chrome, WriteToUnopenablePathThrows) {
  Recorder rec;
  EXPECT_THROW(write_chrome_trace(rec, "/nonexistent-dir/trace.json"),
               std::runtime_error);
}

// --- per-worker recorder merging (the server's concurrency pattern) --------

namespace {

/// A little per-worker activity: one span, one instant, one counter sample.
void record_worker(Recorder& rec, int worker, sim::Time base) {
  const Track track = Track::worker(worker);
  rec.span(track, "request", "simulate", "seed " + std::to_string(worker),
           base, base + sim::kMillisecond);
  rec.instant(track, "cache", "hit", "", base + 2 * sim::kMillisecond);
  rec.counter(track, "queue", "depth", base, static_cast<double>(worker));
}

}  // namespace

TEST(Recorder, MergeFromIsOrderIndependent) {
  Recorder a, b, c;
  record_worker(a, 0, 5 * sim::kMillisecond);
  record_worker(b, 1, 1 * sim::kMillisecond);
  record_worker(c, 2, 3 * sim::kMillisecond);

  Recorder merged_abc;
  merged_abc.merge_from({&a, &b, &c});
  Recorder merged_cba;
  merged_cba.merge_from({&c, &b, &a});

  std::ostringstream out_abc, out_cba;
  write_chrome_trace(merged_abc, out_abc);
  write_chrome_trace(merged_cba, out_cba);
  EXPECT_EQ(out_abc.str(), out_cba.str());  // byte-identical either way
  EXPECT_EQ(merged_abc.spans().size(), 3u);
  EXPECT_EQ(merged_abc.instants().size(), 3u);
  EXPECT_EQ(merged_abc.counters().size(), 3u);
  // Canonical order: sorted by start time, so b (1ms) leads.
  EXPECT_EQ(merged_abc.spans()[0].detail, "seed 1");
}

TEST(Recorder, MergeFromKeepsOwnEventsAndSkipsOpenSpans) {
  Recorder own;
  own.span(Track::global(), "admission", "enqueue", "", 0, sim::kMillisecond);
  Recorder part;
  record_worker(part, 4, 2 * sim::kMillisecond);
  part.begin(Track::worker(4), "request", "unfinished", "",
             9 * sim::kMillisecond);  // still open: must not merge
  own.merge_from({&part, nullptr});
  EXPECT_EQ(own.spans().size(), 2u);
  EXPECT_EQ(own.open_depth(Track::worker(4)), 0);
}

TEST(Recorder, MergeFromThreadedWritersIsDeterministic) {
  // The real usage: each thread owns a private Recorder; after joining, a
  // merge produces one canonical trace regardless of thread scheduling.
  constexpr int kWorkers = 4;
  std::string first;
  for (int round = 0; round < 3; ++round) {
    std::vector<std::unique_ptr<Recorder>> recs;
    for (int w = 0; w < kWorkers; ++w) {
      recs.push_back(std::make_unique<Recorder>());
    }
    std::vector<std::thread> threads;
    for (int w = 0; w < kWorkers; ++w) {
      threads.emplace_back([&recs, w] {
        for (int i = 0; i < 20; ++i) {
          record_worker(*recs[w],
                        w, (1 + i) * sim::kMillisecond + w * sim::kMicrosecond);
        }
      });
    }
    for (auto& thread : threads) thread.join();
    Recorder merged;
    std::vector<const Recorder*> parts;
    for (const auto& rec : recs) parts.push_back(rec.get());
    merged.merge_from(parts);
    std::ostringstream out;
    write_chrome_trace(merged, out);
    if (round == 0) {
      first = out.str();
      EXPECT_EQ(merged.spans().size(), kWorkers * 20u);
    } else {
      EXPECT_EQ(out.str(), first);
    }
  }
}

}  // namespace
}  // namespace ctesim::trace
