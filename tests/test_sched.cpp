// Tests for the job-scheduler allocation policies.
#include <gtest/gtest.h>

#include <algorithm>

#include "arch/configs.h"
#include "net/topology.h"
#include "sched/allocator.h"

namespace ctesim::sched {
namespace {

net::TorusTopology cte_torus() {
  return net::TorusTopology(arch::cte_arm().interconnect.dims);
}

TEST(Allocator, TracksFreeNodes) {
  auto torus = cte_torus();
  Allocator alloc(torus);
  EXPECT_EQ(alloc.free_nodes(), 192);
  const auto job = alloc.allocate(16, Policy::kLinear);
  EXPECT_EQ(job.size(), 16u);
  EXPECT_EQ(alloc.free_nodes(), 176);
  for (int n : job) EXPECT_TRUE(alloc.is_busy(n));
  alloc.release(job);
  EXPECT_EQ(alloc.free_nodes(), 192);
}

TEST(Allocator, FailsGracefullyWhenFull) {
  auto torus = cte_torus();
  Allocator alloc(torus);
  EXPECT_EQ(alloc.allocate(192, Policy::kLinear).size(), 192u);
  EXPECT_TRUE(alloc.allocate(1, Policy::kLinear).empty());
}

TEST(Allocator, NoDoubleAllocation) {
  auto torus = cte_torus();
  Allocator alloc(torus);
  const auto a = alloc.allocate(64, Policy::kRandom, 1);
  const auto b = alloc.allocate(64, Policy::kRandom, 2);
  std::vector<int> overlap;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(overlap));
  EXPECT_TRUE(overlap.empty());
}

TEST(Allocator, ContiguousBeatsRandomOnProximity) {
  // The whole point of the topology-aware scheduler: the compact block has
  // a much smaller mean pairwise distance than a random scatter.
  for (int job_size : {8, 16, 32}) {
    auto torus = cte_torus();
    Allocator contiguous(torus);
    Allocator scattered(torus);
    const auto block = contiguous.allocate(job_size, Policy::kContiguous);
    const auto scatter = scattered.allocate(job_size, Policy::kRandom, 99);
    ASSERT_EQ(block.size(), static_cast<std::size_t>(job_size));
    EXPECT_LT(contiguous.mean_pairwise_hops(block),
              0.75 * scattered.mean_pairwise_hops(scatter))
        << job_size;
  }
}

TEST(Allocator, ContiguousWorksOnFragmentedMachine) {
  auto torus = cte_torus();
  Allocator alloc(torus);
  // Fragment: occupy every third node.
  std::vector<int> busy;
  for (int n = 0; n < 192; n += 3) busy.push_back(n);
  alloc.occupy(busy);
  const auto job = alloc.allocate(16, Policy::kContiguous);
  ASSERT_EQ(job.size(), 16u);
  for (int n : job) {
    EXPECT_NE(n % 3, 0) << "allocated busy node " << n;
  }
}

TEST(Allocator, RandomIsSeedDeterministic) {
  auto torus = cte_torus();
  Allocator a(torus);
  Allocator b(torus);
  EXPECT_EQ(a.allocate(24, Policy::kRandom, 7),
            b.allocate(24, Policy::kRandom, 7));
}

TEST(Allocator, OccupyRejectsDoubleBooking) {
  auto torus = cte_torus();
  Allocator alloc(torus);
  alloc.occupy({5});
  EXPECT_THROW(alloc.occupy({5}), ContractError);
  EXPECT_THROW(alloc.release({6}), ContractError);
}

TEST(Allocator, JobIdTrackedAllocation) {
  auto torus = cte_torus();
  Allocator alloc(torus);
  const auto job = alloc.allocate(7u, 16, Policy::kLinear);
  ASSERT_EQ(job.size(), 16u);
  EXPECT_TRUE(alloc.owns(7u));
  EXPECT_EQ(alloc.nodes_of(7u), job);
  EXPECT_EQ(alloc.free_nodes(), 176);
  alloc.release(7u);
  EXPECT_FALSE(alloc.owns(7u));
  EXPECT_EQ(alloc.free_nodes(), 192);
}

TEST(Allocator, JobIdRejectsForeignAndDoubleRelease) {
  auto torus = cte_torus();
  Allocator alloc(torus);
  ASSERT_FALSE(alloc.allocate(1u, 8, Policy::kLinear).empty());
  // A job id that owns nothing cannot release anything.
  EXPECT_THROW(alloc.release(2u), ContractError);
  EXPECT_THROW(alloc.nodes_of(2u), ContractError);
  // One allocation per job id at a time.
  EXPECT_THROW(alloc.allocate(1u, 4, Policy::kLinear), ContractError);
  alloc.release(1u);
  EXPECT_THROW(alloc.release(1u), ContractError);
}

TEST(Allocator, JobIdFailedAllocationRecordsNothing) {
  auto torus = cte_torus();
  Allocator alloc(torus);
  ASSERT_FALSE(alloc.allocate(1u, 192, Policy::kLinear).empty());
  EXPECT_TRUE(alloc.allocate(2u, 1, Policy::kLinear).empty());
  EXPECT_FALSE(alloc.owns(2u));
}

TEST(Allocator, ReleaseReuseCycle) {
  auto torus = cte_torus();
  Allocator alloc(torus);
  const auto a = alloc.allocate(1u, 96, Policy::kLinear);
  const auto b = alloc.allocate(2u, 96, Policy::kLinear);
  EXPECT_EQ(alloc.free_nodes(), 0);
  alloc.release(1u);
  // The freed block is reusable by a new job.
  const auto c = alloc.allocate(3u, 96, Policy::kLinear);
  EXPECT_EQ(c, a);
  alloc.release(2u);
  alloc.release(3u);
  EXPECT_EQ(alloc.free_nodes(), 192);
  (void)b;
}

TEST(Allocator, MeanPairwiseHopsEdgeCases) {
  auto torus = cte_torus();
  Allocator alloc(torus);
  EXPECT_EQ(alloc.mean_pairwise_hops({}), 0.0);
  EXPECT_EQ(alloc.mean_pairwise_hops({5}), 0.0);
  // Two adjacent nodes (last torus dimension has stride 1): exactly 1 hop.
  EXPECT_EQ(alloc.mean_pairwise_hops({0, 1}), 1.0);
}

TEST(Allocator, FragmentationHandChecked) {
  // 1-D ring of 8: occupying nodes 0 and 4 splits the free space into two
  // blocks of 3, so the largest block holds half the free nodes.
  net::TorusTopology ring({8});
  Allocator alloc(ring);
  EXPECT_EQ(alloc.largest_free_block(), 8);
  EXPECT_EQ(alloc.fragmentation(), 0.0);
  alloc.occupy({0, 4});
  EXPECT_EQ(alloc.largest_free_block(), 3);
  EXPECT_DOUBLE_EQ(alloc.fragmentation(), 0.5);
  // Full machine: nothing free, nothing fragmented by convention.
  alloc.occupy({1, 2, 3, 5, 6, 7});
  EXPECT_EQ(alloc.largest_free_block(), 0);
  EXPECT_EQ(alloc.fragmentation(), 0.0);
}

TEST(Allocator, FragmentationOnTorus) {
  auto torus = cte_torus();
  Allocator alloc(torus);
  // A compact 2x2x2... block leaves one big free region.
  const auto job = alloc.allocate(1u, 8, Policy::kContiguous);
  ASSERT_EQ(job.size(), 8u);
  const double compact_frag = alloc.fragmentation();
  alloc.release(1u);
  // The same capacity scattered leaves free space more broken up.
  const auto scatter = alloc.allocate(2u, 8, Policy::kRandom, 17);
  EXPECT_LE(compact_frag, alloc.fragmentation());
}

}  // namespace
}  // namespace ctesim::sched
