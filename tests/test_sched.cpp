// Tests for the job-scheduler allocation policies.
#include <gtest/gtest.h>

#include <algorithm>

#include "arch/configs.h"
#include "net/topology.h"
#include "sched/allocator.h"

namespace ctesim::sched {
namespace {

net::TorusTopology cte_torus() {
  return net::TorusTopology(arch::cte_arm().interconnect.dims);
}

TEST(Allocator, TracksFreeNodes) {
  auto torus = cte_torus();
  Allocator alloc(torus);
  EXPECT_EQ(alloc.free_nodes(), 192);
  const auto job = alloc.allocate(16, Policy::kLinear);
  EXPECT_EQ(job.size(), 16u);
  EXPECT_EQ(alloc.free_nodes(), 176);
  for (int n : job) EXPECT_TRUE(alloc.is_busy(n));
  alloc.release(job);
  EXPECT_EQ(alloc.free_nodes(), 192);
}

TEST(Allocator, FailsGracefullyWhenFull) {
  auto torus = cte_torus();
  Allocator alloc(torus);
  EXPECT_EQ(alloc.allocate(192, Policy::kLinear).size(), 192u);
  EXPECT_TRUE(alloc.allocate(1, Policy::kLinear).empty());
}

TEST(Allocator, NoDoubleAllocation) {
  auto torus = cte_torus();
  Allocator alloc(torus);
  const auto a = alloc.allocate(64, Policy::kRandom, 1);
  const auto b = alloc.allocate(64, Policy::kRandom, 2);
  std::vector<int> overlap;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(overlap));
  EXPECT_TRUE(overlap.empty());
}

TEST(Allocator, ContiguousBeatsRandomOnProximity) {
  // The whole point of the topology-aware scheduler: the compact block has
  // a much smaller mean pairwise distance than a random scatter.
  for (int job_size : {8, 16, 32}) {
    auto torus = cte_torus();
    Allocator contiguous(torus);
    Allocator scattered(torus);
    const auto block = contiguous.allocate(job_size, Policy::kContiguous);
    const auto scatter = scattered.allocate(job_size, Policy::kRandom, 99);
    ASSERT_EQ(block.size(), static_cast<std::size_t>(job_size));
    EXPECT_LT(contiguous.mean_pairwise_hops(block),
              0.75 * scattered.mean_pairwise_hops(scatter))
        << job_size;
  }
}

TEST(Allocator, ContiguousWorksOnFragmentedMachine) {
  auto torus = cte_torus();
  Allocator alloc(torus);
  // Fragment: occupy every third node.
  std::vector<int> busy;
  for (int n = 0; n < 192; n += 3) busy.push_back(n);
  alloc.occupy(busy);
  const auto job = alloc.allocate(16, Policy::kContiguous);
  ASSERT_EQ(job.size(), 16u);
  for (int n : job) {
    EXPECT_NE(n % 3, 0) << "allocated busy node " << n;
  }
}

TEST(Allocator, RandomIsSeedDeterministic) {
  auto torus = cte_torus();
  Allocator a(torus);
  Allocator b(torus);
  EXPECT_EQ(a.allocate(24, Policy::kRandom, 7),
            b.allocate(24, Policy::kRandom, 7));
}

TEST(Allocator, OccupyRejectsDoubleBooking) {
  auto torus = cte_torus();
  Allocator alloc(torus);
  alloc.occupy({5});
  EXPECT_THROW(alloc.occupy({5}), ContractError);
  EXPECT_THROW(alloc.release({6}), ContractError);
}

}  // namespace
}  // namespace ctesim::sched
