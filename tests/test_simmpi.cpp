// Unit tests for the simulated MPI runtime: placement, point-to-point
// timing semantics, and the collective algorithms.
#include <gtest/gtest.h>

#include <vector>

#include "arch/configs.h"
#include "roofline/kernel_library.h"
#include "simmpi/world.h"

namespace ctesim::mpi {
namespace {

WorldOptions cte_options() {
  WorldOptions o;
  o.machine = arch::cte_arm();
  o.network_jitter = 0.0;  // exact timing checks below
  return o;
}

TEST(Placement, PerCoreFillsDomainsInOrder) {
  const auto node = arch::cte_arm().node;
  const auto p = Placement::per_core(node, 96);
  EXPECT_EQ(p.num_ranks(), 96);
  EXPECT_EQ(p.nodes_used(), 2);
  EXPECT_EQ(p.slot(0).node, 0);
  EXPECT_EQ(p.slot(0).domain, 0);
  EXPECT_EQ(p.slot(12).domain, 1);   // 13th core is on CMG 1
  EXPECT_EQ(p.slot(47).domain, 3);
  EXPECT_EQ(p.slot(48).node, 1);
  EXPECT_EQ(p.slot(48).domain, 0);
  EXPECT_EQ(p.slot(0).cores, 1);
}

TEST(Placement, PerNodeOwnsAllCores) {
  const auto node = arch::marenostrum4().node;
  const auto p = Placement::per_node(node, 4);
  EXPECT_EQ(p.num_ranks(), 4);
  EXPECT_EQ(p.slot(2).node, 2);
  EXPECT_EQ(p.slot(2).cores, 48);
}

TEST(Placement, HybridLayout) {
  const auto node = arch::cte_arm().node;
  const auto p = Placement::hybrid(node, 16, 8, 6);  // Gromacs layout
  EXPECT_EQ(p.nodes_used(), 2);
  EXPECT_EQ(p.slot(0).cores, 6);
  EXPECT_EQ(p.slot(1).domain, 0);  // cores 6..11 still CMG 0
  EXPECT_EQ(p.slot(2).domain, 1);  // cores 12..17 on CMG 1
}

TEST(World, SendRecvAdvancesTimeByTransfer) {
  auto opts = cte_options();
  World world(std::move(opts), Placement::per_node(arch::cte_arm().node, 2));
  double recv_done = -1.0;
  world.run([&](Rank& r) -> sim::Task<> {
    if (r.id() == 0) {
      co_await r.send(1, 1024);
    } else {
      co_await r.recv(0);
      recv_done = r.now_s();
    }
  });
  // Transfer time = base latency + hops*per_hop + bytes/bw: strictly
  // positive and well below a millisecond for 1 KiB.
  EXPECT_GT(recv_done, 0.5e-6);
  EXPECT_LT(recv_done, 1e-4);
}

TEST(World, IntraNodeMessagesUseSharedMemory) {
  auto opts = cte_options();
  // Two ranks on the same node (2 ranks/node, 1 node used).
  World world(std::move(opts),
              Placement::fill_nodes(arch::cte_arm().node, 2, 2));
  double recv_done = -1.0;
  world.run([&](Rank& r) -> sim::Task<> {
    if (r.id() == 0) {
      co_await r.send(1, 1024);
    } else {
      co_await r.recv(0);
      recv_done = r.now_s();
    }
  });
  const auto& node = arch::cte_arm().node;
  const double expected = node.shm_latency + 1024.0 / node.shm_bw;
  EXPECT_NEAR(recv_done, expected, 1e-12);
}

TEST(World, RecvBlocksUntilMessageArrives) {
  auto opts = cte_options();
  World world(std::move(opts), Placement::per_node(arch::cte_arm().node, 2));
  double sent_at = -1.0;
  double recv_at = -1.0;
  world.run([&](Rank& r) -> sim::Task<> {
    if (r.id() == 0) {
      co_await r.compute_seconds(1.0);  // make the receiver wait
      sent_at = r.now_s();
      co_await r.send(1, 64);
    } else {
      co_await r.recv(0);
      recv_at = r.now_s();
    }
  });
  EXPECT_GE(recv_at, sent_at);
  EXPECT_NEAR(recv_at, 1.0, 1e-3);
}

TEST(World, MessagesMatchByTagInOrder) {
  auto opts = cte_options();
  World world(std::move(opts), Placement::per_node(arch::cte_arm().node, 2));
  std::vector<std::uint64_t> got;
  world.run([&](Rank& r) -> sim::Task<> {
    if (r.id() == 0) {
      co_await r.send(1, 100, /*tag=*/7);
      co_await r.send(1, 200, /*tag=*/9);
      co_await r.send(1, 300, /*tag=*/7);
    } else {
      got.push_back(co_await r.recv(0, 9));   // out-of-order tag pull
      got.push_back(co_await r.recv(0, 7));
      got.push_back(co_await r.recv(0, 7));
    }
  });
  EXPECT_EQ(got, (std::vector<std::uint64_t>{200, 100, 300}));
}

TEST(World, DeadlockIsReported) {
  auto opts = cte_options();
  World world(std::move(opts), Placement::per_node(arch::cte_arm().node, 2));
  EXPECT_THROW(world.run([&](Rank& r) -> sim::Task<> {
                 co_await r.recv(1 - r.id());  // both wait, nobody sends
               }),
               std::runtime_error);
}

// --- collectives --------------------------------------------------------

class CollectiveTest : public ::testing::TestWithParam<int> {};

TEST_P(CollectiveTest, BarrierCompletesForAllRankCounts) {
  const int nranks = GetParam();
  auto opts = cte_options();
  World world(std::move(opts),
              Placement::per_node(arch::cte_arm().node, nranks));
  int completions = 0;
  world.run([&](Rank& r) -> sim::Task<> {
    co_await r.barrier();
    ++completions;
  });
  EXPECT_EQ(completions, nranks);
}

TEST_P(CollectiveTest, BarrierSynchronizesSkewedRanks) {
  const int nranks = GetParam();
  auto opts = cte_options();
  World world(std::move(opts),
              Placement::per_node(arch::cte_arm().node, nranks));
  std::vector<double> after(static_cast<std::size_t>(nranks));
  world.run([&](Rank& r) -> sim::Task<> {
    // Rank i works i milliseconds before the barrier.
    co_await r.compute_seconds(1e-3 * r.id());
    co_await r.barrier();
    after[static_cast<std::size_t>(r.id())] = r.now_s();
  });
  // No rank may leave the barrier before the slowest entered it.
  const double slowest_entry = 1e-3 * (nranks - 1);
  for (double t : after) EXPECT_GE(t, slowest_entry);
}

TEST_P(CollectiveTest, AllreduceCompletesAndScalesWithLogP) {
  const int nranks = GetParam();
  auto opts = cte_options();
  World world(std::move(opts),
              Placement::per_node(arch::cte_arm().node, nranks));
  double t = world.run([&](Rank& r) -> sim::Task<> {
    co_await r.allreduce(8);
  });
  if (nranks == 1) {
    EXPECT_EQ(t, 0.0);  // single rank: no communication at all
    return;
  }
  EXPECT_GT(t, 0.0);
  // Latency-dominated small allreduce: within a small factor of
  // ceil(log2 P) + 2 network latencies.
  const auto& ic = arch::cte_arm().interconnect;
  int stages = 0;
  while ((1 << stages) < nranks) ++stages;
  const double bound = (stages + 2) * (ic.base_latency_s * 4 + 2e-6);
  EXPECT_LT(t, bound + 1e-5);
}

TEST_P(CollectiveTest, BcastReduceAllgatherAlltoallComplete) {
  const int nranks = GetParam();
  for (int variant = 0; variant < 4; ++variant) {
    auto opts = cte_options();
    World world(std::move(opts),
                Placement::per_node(arch::cte_arm().node, nranks));
    int completions = 0;
    world.run([&](Rank& r) -> sim::Task<> {
      switch (variant) {
        case 0:
          co_await r.bcast(0, 4096);
          break;
        case 1:
          co_await r.reduce(nranks - 1, 4096);
          break;
        case 2:
          co_await r.allgather(512);
          break;
        default:
          co_await r.alltoall(256);
          break;
      }
      ++completions;
    });
    EXPECT_EQ(completions, nranks) << "variant " << variant;
  }
}

INSTANTIATE_TEST_SUITE_P(RankCounts, CollectiveTest,
                         ::testing::Values(1, 2, 3, 4, 7, 8, 12, 16, 31, 48));

TEST(World, PhaseTimersTrackMaxAndAvg) {
  auto opts = cte_options();
  World world(std::move(opts), Placement::per_node(arch::cte_arm().node, 4));
  world.run([&](Rank& r) -> sim::Task<> {
    const double t0 = r.now_s();
    co_await r.compute_seconds(0.1 * (r.id() + 1));
    r.phase_add("work", r.now_s() - t0);
  });
  EXPECT_NEAR(world.phase_max("work"), 0.4, 1e-9);
  EXPECT_NEAR(world.phase_avg("work"), 0.25, 1e-9);
  EXPECT_EQ(world.phase_max("nonexistent"), 0.0);
}

TEST(World, ComputeJitterOnlySlowsDown) {
  for (int trial = 0; trial < 3; ++trial) {
    WorldOptions opts;
    opts.machine = arch::cte_arm();
    opts.compute_jitter = 0.05;
    opts.seed = 1000 + static_cast<std::uint64_t>(trial);
    World world(std::move(opts),
                Placement::per_node(arch::cte_arm().node, 2));
    const double t = world.run([&](Rank& r) -> sim::Task<> {
      co_await r.compute_seconds(0.0);  // jitter applies to model compute
      co_await r.compute(roofline::KernelSig{.name = "x",
                                             .flops_per_elem = 2.0,
                                             .bytes_per_elem = 16.0},
                         1e6);
    });
    EXPECT_GT(t, 0.0);
  }
}

TEST(World, DeterministicAcrossRuns) {
  auto run_once = [] {
    WorldOptions opts;
    opts.machine = arch::cte_arm();
    opts.compute_jitter = 0.02;
    World world(std::move(opts),
                Placement::per_node(arch::cte_arm().node, 8));
    return world.run([&](Rank& r) -> sim::Task<> {
      co_await r.compute(roofline::kernels::stream_triad(), 1e6 * (r.id() + 1));
      co_await r.allreduce(64);
      co_await r.alltoall(1024);
    });
  };
  EXPECT_DOUBLE_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace ctesim::mpi
