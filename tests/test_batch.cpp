// Tests for the batch-queue subsystem: workload generation, trace replay,
// queue policies (FCFS / EASY backfill) and hand-checked cluster metrics.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "arch/configs.h"
#include "batch/cluster.h"
#include "batch/metrics.h"
#include "batch/queue.h"
#include "batch/workload.h"
#include "power/power_model.h"

namespace ctesim::batch {
namespace {

// A 4-node toy machine (2x2 torus) with CTE-Arm nodes, for hand-checked
// scenarios.
arch::MachineModel tiny_machine() {
  arch::MachineModel m = arch::cte_arm();
  m.num_nodes = 4;
  m.interconnect.dims = {2, 2};
  return m;
}

// Fixed-runtime job: bypasses the roofline model entirely and (with
// comm_fraction 0) ignores placement, so timelines are exact.
Job fixed_job(int id, double arrival, int nodes, double walltime,
              double runtime) {
  Job job;
  job.id = id;
  job.arrival_s = arrival;
  job.nodes = nodes;
  job.walltime_s = walltime;
  job.fixed_runtime_s = runtime;
  job.profile = JobProfile{"fixed", {}, 0.0, 1, 0.0};
  return job;
}

TEST(Workload, DeterministicForFixedSeed) {
  const RuntimeModel model(arch::cte_arm());
  WorkloadConfig config;
  config.num_jobs = 64;
  config.burst_fraction = 0.3;
  const auto a = generate(config, model, 42);
  const auto b = generate(config, model, 42);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].arrival_s, b[i].arrival_s) << i;
    EXPECT_EQ(a[i].nodes, b[i].nodes) << i;
    EXPECT_EQ(a[i].walltime_s, b[i].walltime_s) << i;
    EXPECT_EQ(a[i].profile.iterations, b[i].profile.iterations) << i;
    EXPECT_STREQ(a[i].profile.name, b[i].profile.name) << i;
  }
  // A different seed gives a different stream.
  const auto c = generate(config, model, 43);
  bool any_different = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    any_different = any_different || a[i].arrival_s != c[i].arrival_s ||
                    a[i].nodes != c[i].nodes;
  }
  EXPECT_TRUE(any_different);
}

TEST(Workload, RespectsConfigBounds) {
  const RuntimeModel model(arch::cte_arm());
  WorkloadConfig config;
  config.num_jobs = 128;
  config.min_nodes = 2;
  config.max_nodes = 24;
  const auto jobs = generate(config, model, 7);
  double prev_arrival = 0.0;
  for (const Job& job : jobs) {
    EXPECT_GE(job.arrival_s, prev_arrival);
    prev_arrival = job.arrival_s;
    EXPECT_GE(job.nodes, config.min_nodes);
    EXPECT_LE(job.nodes, config.max_nodes);
    // The wall-time request pads the modeled runtime, never undercuts it.
    EXPECT_GE(job.walltime_s,
              model.reference_runtime(job) * config.walltime_pad_min * 0.999);
  }
}

TEST(Workload, TraceRoundTrips) {
  const RuntimeModel model(arch::cte_arm());
  WorkloadConfig config;
  config.num_jobs = 20;
  const auto jobs = generate(config, model, 11);
  const std::string path = "test_batch_trace.csv";
  write_trace(jobs, model, path);
  const auto replayed = load_trace(path);
  std::remove(path.c_str());
  ASSERT_EQ(replayed.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(replayed[i].id, jobs[i].id);
    EXPECT_EQ(replayed[i].nodes, jobs[i].nodes);
    EXPECT_STREQ(replayed[i].profile.name, jobs[i].profile.name);
    EXPECT_NEAR(replayed[i].arrival_s, jobs[i].arrival_s,
                1e-6 * (1.0 + jobs[i].arrival_s));
    EXPECT_NEAR(replayed[i].fixed_runtime_s,
                model.reference_runtime(jobs[i]),
                1e-6 * model.reference_runtime(jobs[i]));
  }
}

TEST(RuntimeModel, ScatterSlowsCommunicatingJobsOnly) {
  const RuntimeModel model(arch::cte_arm());
  Job chatty = fixed_job(0, 0.0, 16, 1000.0, 100.0);
  chatty.profile.comm_fraction = 0.4;
  const double ref = model.reference_hops(16);
  EXPECT_DOUBLE_EQ(model.slowdown(chatty, ref), 1.0);
  EXPECT_NEAR(model.slowdown(chatty, 2.0 * ref), 1.4, 1e-12);
  // Better-than-reference placement is not a speedup.
  EXPECT_DOUBLE_EQ(model.slowdown(chatty, 0.5 * ref), 1.0);
  // Zero communication share: placement-immune.
  const Job quiet = fixed_job(1, 0.0, 16, 1000.0, 100.0);
  EXPECT_DOUBLE_EQ(model.slowdown(quiet, 10.0 * ref), 1.0);
}

TEST(JobQueue, FcfsHeadBlocksEverything) {
  JobQueue queue(QueuePolicy::kFcfs, 4);
  queue.push(fixed_job(0, 0.0, 4, 100.0, 100.0));
  queue.push(fixed_job(1, 0.0, 1, 10.0, 10.0));
  // 3 free nodes: the head does not fit and FCFS never looks past it.
  EXPECT_EQ(queue.next_startable(0.0, 3, {{9, 50.0, 1}}), -1);
  EXPECT_EQ(queue.next_startable(0.0, 4, {}), 0);
}

TEST(JobQueue, EasyBackfillRespectsShadowTime) {
  JobQueue queue(QueuePolicy::kEasyBackfill, 4);
  queue.push(fixed_job(1, 0.0, 4, 100.0, 100.0));   // head, blocked
  queue.push(fixed_job(2, 0.0, 1, 90.0, 90.0));     // ends by shadow: ok
  queue.push(fixed_job(3, 0.0, 1, 200.0, 200.0));   // would delay head
  const std::vector<Reservation> running = {{0, 100.0, 3}};
  EXPECT_DOUBLE_EQ(queue.shadow_time(0.0, 1, running), 100.0);
  // Job 2 (position 1) may backfill; job 3 may not.
  EXPECT_EQ(queue.next_startable(0.0, 1, running), 1);
  queue.pop(1);
  EXPECT_EQ(queue.next_startable(0.0, 1, running), -1);
}

TEST(Cluster, EasyBackfillNeverDelaysHead) {
  const RuntimeModel model(tiny_machine());
  // J0 holds 3 of 4 nodes until t=100 (runtime == wall-time).
  // J1 (head) needs the whole machine: shadow time is 100.
  // J2 fits the free node and ends by 92 — backfills immediately.
  // J3 fits but would run past the shadow — must wait for the head.
  const std::vector<Job> jobs = {
      fixed_job(0, 0.0, 3, 100.0, 100.0),
      fixed_job(1, 1.0, 4, 100.0, 50.0),
      fixed_job(2, 2.0, 1, 90.0, 90.0),
      fixed_job(3, 3.0, 1, 200.0, 200.0),
  };
  ClusterOptions options;
  options.queue = QueuePolicy::kEasyBackfill;
  const auto result = run_cluster(model, jobs, options);
  const auto& r = result.records;
  EXPECT_NEAR(r[0].start_s, 0.0, 1e-9);
  // The head starts exactly when it would with no backfilling at all.
  EXPECT_NEAR(r[1].start_s, 100.0, 1e-9);
  // J2 backfilled the idle node instead of queueing behind the head.
  EXPECT_NEAR(r[2].start_s, 2.0, 1e-9);
  // J3 could not backfill and started only after the head finished.
  EXPECT_NEAR(r[3].start_s, 150.0, 1e-9);

  // Same stream under FCFS: the backfill job waits for the whole line.
  options.queue = QueuePolicy::kFcfs;
  const auto fcfs = run_cluster(model, jobs, options);
  EXPECT_NEAR(fcfs.records[1].start_s, 100.0, 1e-9);  // head: unchanged
  EXPECT_GT(fcfs.records[2].start_s, 100.0);
}

TEST(Cluster, HandCheckedMetricsOnTinyMachine) {
  const RuntimeModel model(tiny_machine());
  // Two whole-machine jobs arriving together: the second waits 100 s.
  const std::vector<Job> jobs = {
      fixed_job(0, 0.0, 4, 120.0, 100.0),
      fixed_job(1, 0.0, 4, 120.0, 100.0),
  };
  const auto result = run_cluster(model, jobs, {});
  const auto m = summarize(result, 4);
  EXPECT_EQ(m.jobs, 2);
  EXPECT_EQ(m.killed, 0);
  EXPECT_NEAR(m.makespan_s, 200.0, 1e-9);
  // 2 jobs x 4 nodes x 100 s on a 4-node machine over 200 s: fully busy.
  EXPECT_NEAR(m.utilization, 1.0, 1e-9);
  EXPECT_NEAR(m.mean_wait_s, 50.0, 1e-9);
  // Bounded slowdowns: 1 (ran at once) and (100+100)/100 = 2.
  EXPECT_NEAR(m.mean_bounded_slowdown, 1.5, 1e-9);
}

TEST(Cluster, PowerCapSerializesJobsTheNodesWouldAllow) {
  const RuntimeModel model(tiny_machine());
  const power::PowerModel pm = power::default_power(model.machine());
  const arch::NodeModel& node = model.machine().node;
  const double active_w = pm.node_active(node, power::dvfs_state(0)).value();
  const double idle_w = pm.node_idle(node).value();
  // Two 2-node jobs fit the 4 nodes together, but the cap only covers one
  // running job (2 active + 2 idle nodes, plus slack): the scheduler must
  // serialize them on watts, exactly as it would on nodes.
  const std::vector<Job> jobs = {
      fixed_job(0, 0.0, 2, 300.0, 100.0),
      fixed_job(1, 0.0, 2, 300.0, 100.0),
  };
  ClusterOptions options;
  options.power = &pm;
  options.power_cap_w = 2.0 * active_w + 2.0 * idle_w + 1.0;
  const auto result = run_cluster(model, jobs, options);
  const auto& r = result.records;
  EXPECT_NEAR(r[0].start_s, 0.0, 1e-9);
  EXPECT_NEAR(r[1].start_s, 100.0, 1e-9);  // waited for watts, not nodes
  EXPECT_GT(result.energy.capped_starts, 0);
  EXPECT_NEAR(result.makespan_s, 200.0, 1e-9);
  const auto m = summarize(result, 4);
  EXPECT_LE(m.peak_power_w, options.power_cap_w);

  // Without the cap the same stream runs both jobs at once.
  ClusterOptions uncapped;
  uncapped.power = &pm;
  const auto wide = run_cluster(model, jobs, uncapped);
  EXPECT_NEAR(wide.makespan_s, 100.0, 1e-9);
  EXPECT_GT(wide.energy.peak_w, options.power_cap_w);
}

TEST(Cluster, WalltimeLimitKillsOverrunningJobs) {
  const RuntimeModel model(tiny_machine());
  const std::vector<Job> jobs = {fixed_job(0, 0.0, 2, 50.0, 100.0)};
  const auto result = run_cluster(model, jobs, {});
  const auto& r = result.records[0];
  EXPECT_EQ(r.end_reason, EndReason::kWalltimeKilled);
  EXPECT_NEAR(r.runtime_s(), 50.0, 1e-9);
  EXPECT_EQ(summarize(result, 4).killed, 1);
}

TEST(Cluster, DeterministicAcrossRuns) {
  const RuntimeModel model(arch::cte_arm());
  WorkloadConfig config;
  config.num_jobs = 80;
  config.mean_interarrival_s = 10.0;
  const auto jobs = generate(config, model, 5);
  ClusterOptions options;
  options.placement = sched::Policy::kRandom;
  const auto a = run_cluster(model, jobs, options);
  const auto b = run_cluster(model, jobs, options);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].start_s, b.records[i].start_s) << i;
    EXPECT_EQ(a.records[i].end_s, b.records[i].end_s) << i;
    EXPECT_EQ(a.records[i].alloc_nodes, b.records[i].alloc_nodes) << i;
  }
  EXPECT_EQ(a.makespan_s, b.makespan_s);
}

TEST(Cluster, ContiguousBeatsRandomUnderLoad) {
  // The bench's acceptance criterion, in miniature: on a busy machine the
  // topology-aware placement yields a lower mean bounded slowdown.
  const RuntimeModel model(arch::cte_arm());
  WorkloadConfig config;
  config.num_jobs = 200;
  config.mean_interarrival_s = 12.0;
  config.burst_fraction = 0.3;
  const auto jobs = generate(config, model, 3);
  ClusterOptions options;
  options.placement = sched::Policy::kContiguous;
  const auto compact = summarize(run_cluster(model, jobs, options), 192);
  options.placement = sched::Policy::kRandom;
  const auto scatter = summarize(run_cluster(model, jobs, options), 192);
  EXPECT_LT(compact.mean_bounded_slowdown, scatter.mean_bounded_slowdown);
  EXPECT_LT(compact.mean_hops, scatter.mean_hops);
}

}  // namespace
}  // namespace ctesim::batch
