// Property-based sweeps (parameterized gtest) over the simulator's
// invariants: things that must hold for *every* configuration, not just
// the paper's.
#include <gtest/gtest.h>

#include <tuple>

#include "arch/configs.h"
#include "kernels/stream.h"
#include "net/network.h"
#include "roofline/exec_model.h"
#include "roofline/kernel_library.h"
#include "simmpi/world.h"

namespace ctesim {
namespace {

// ---------------------------------------------------------- collectives --

using CollectiveCase = std::tuple<int /*ranks*/, std::uint64_t /*bytes*/>;

class CollectiveProperty : public ::testing::TestWithParam<CollectiveCase> {};

TEST_P(CollectiveProperty, AllreduceTimeMonotoneInPayload) {
  const auto [ranks, bytes] = GetParam();
  auto run_bytes = [&, ranks = ranks](std::uint64_t payload) {
    mpi::WorldOptions options;
    options.machine = arch::cte_arm();
    options.network_jitter = 0.0;
    mpi::World world(std::move(options),
                     mpi::Placement::per_node(arch::cte_arm().node, ranks));
    return world.run([payload](mpi::Rank& r) -> sim::Task<> {
      co_await r.allreduce(payload);
    });
  };
  EXPECT_LE(run_bytes(bytes), run_bytes(bytes * 4) + 1e-12);
}

TEST_P(CollectiveProperty, BcastNoSlowerThanSequentialSends) {
  const auto [ranks, bytes] = GetParam();
  if (ranks < 3) GTEST_SKIP();
  auto run = [&, ranks = ranks, bytes = bytes](bool tree) {
    mpi::WorldOptions options;
    options.machine = arch::cte_arm();
    options.network_jitter = 0.0;
    mpi::World world(std::move(options),
                     mpi::Placement::per_node(arch::cte_arm().node, ranks));
    return world.run([tree, bytes = bytes](mpi::Rank& r) -> sim::Task<> {
      if (tree) {
        co_await r.bcast(0, bytes);
      } else if (r.id() == 0) {
        for (int dst = 1; dst < r.size(); ++dst) {
          co_await r.send(dst, bytes);
        }
      } else {
        co_await r.recv(0);
      }
    });
  };
  // The binomial tree must not lose to the naive linear broadcast.
  EXPECT_LE(run(true), run(false) * 1.05);
}

TEST_P(CollectiveProperty, GatherNoSlowerThanScatterAndBothBounded) {
  const auto [ranks, bytes] = GetParam();
  auto run = [&, ranks = ranks, bytes = bytes](bool is_gather) {
    mpi::WorldOptions options;
    options.machine = arch::cte_arm();
    options.network_jitter = 0.0;
    mpi::World world(std::move(options),
                     mpi::Placement::per_node(arch::cte_arm().node, ranks));
    return world.run([is_gather, bytes = bytes](mpi::Rank& r) -> sim::Task<> {
      if (is_gather) {
        co_await r.gather(0, bytes);
      } else {
        co_await r.scatter(0, bytes);
      }
    });
  };
  // Same tree and volumes, but gather pipelines concurrent senders while
  // scatter serializes at the root: gather must never be slower, and
  // neither may exceed `ranks` sequential full-size transfers.
  const double tg = run(true);
  const double ts = run(false);
  EXPECT_LE(tg, ts * 1.05);
  net::Network net(arch::cte_arm().interconnect, 192);
  net.set_jitter(0.0);
  const double one =
      net.transfer(0, 1, bytes * static_cast<std::uint64_t>(ranks)).time_s;
  EXPECT_LE(ts, ranks * one * 2.0);
  EXPECT_GT(tg, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CollectiveProperty,
    ::testing::Combine(::testing::Values(2, 3, 5, 8, 13, 16),
                       ::testing::Values(std::uint64_t{64},
                                         std::uint64_t{64} << 10)));

// -------------------------------------------------------------- network --

class HopProperty : public ::testing::TestWithParam<int> {};

TEST_P(HopProperty, TransferBandwidthNonIncreasingInHops) {
  const int size_pow = GetParam();
  net::Network network(arch::cte_arm().interconnect, 192);
  network.set_jitter(0.0);
  const std::uint64_t bytes = 1ull << size_pow;
  // Group all destinations by (hops, x-distance); within a group the
  // bandwidth is identical, across hop counts it must not increase.
  const auto* torus =
      dynamic_cast<const net::TorusTopology*>(&network.topology());
  ASSERT_NE(torus, nullptr);
  std::map<std::pair<int, int>, double> bw_by_class;
  for (int dst = 1; dst < 192; ++dst) {
    const auto t = network.transfer(0, dst, bytes);
    const auto key = std::make_pair(torus->dim_distance(0, dst, 0), t.hops);
    auto [it, inserted] = bw_by_class.emplace(key, t.bandwidth);
    if (!inserted) {
      EXPECT_NEAR(it->second, t.bandwidth, 1e-6 * it->second);
    }
  }
  // For fixed x-distance, more total hops => no more bandwidth.
  for (const auto& [key, bw] : bw_by_class) {
    const auto worse = bw_by_class.find({key.first, key.second + 1});
    if (worse != bw_by_class.end()) {
      EXPECT_LE(worse->second, bw * (1.0 + 1e-9));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, HopProperty,
                         ::testing::Values(8, 12, 16, 20, 24));

// ------------------------------------------------------------- roofline --

using RooflineCase = std::tuple<int /*kernel*/, int /*cores*/>;

class RooflineProperty : public ::testing::TestWithParam<RooflineCase> {};

roofline::KernelSig kernel_by_index(int idx) {
  using namespace roofline::kernels;
  switch (idx) {
    case 0:
      return stream_triad();
    case 1:
      return dgemm();
    case 2:
      return spmv_csr();
    case 3:
      return fem_assembly();
    case 4:
      return md_nonbonded();
    default:
      return stencil3d();
  }
}

TEST_P(RooflineProperty, TimePositiveAdditiveAndMonotone) {
  const auto [kernel_idx, cores] = GetParam();
  const auto sig = kernel_by_index(kernel_idx);
  for (const auto& machine : {arch::cte_arm(), arch::marenostrum4()}) {
    const roofline::ExecModel model(machine.node,
                                    arch::default_app_compiler(machine));
    const double t1 = model.time(sig, 1e6, cores).value();
    const double t2 = model.time(sig, 2e6, cores).value();
    EXPECT_GT(t1, 0.0);
    // Linearity in elements.
    EXPECT_NEAR(t2, 2.0 * t1, 1e-9 * t2);
    // The breakdown components bound the total.
    const auto b = model.analyze(sig, 1e6, cores);
    EXPECT_GE(b.total_s, std::max(b.compute_s, b.memory_s) - 1e-15);
    EXPECT_LE(b.total_s, b.compute_s + b.memory_s + 1e-15);
  }
}

TEST_P(RooflineProperty, BetterCompilerNeverSlower) {
  const auto [kernel_idx, cores] = GetParam();
  const auto sig = kernel_by_index(kernel_idx);
  const auto machine = arch::cte_arm();
  const roofline::ExecModel gnu(machine.node, arch::gnu_compiler());
  const roofline::ExecModel vendor(machine.node, arch::vendor_tuned());
  EXPECT_LE(vendor.time(sig, 1e6, cores).value(), gnu.time(sig, 1e6, cores).value() * 1.001);
}

INSTANTIATE_TEST_SUITE_P(Sweep, RooflineProperty,
                         ::testing::Combine(::testing::Range(0, 6),
                                            ::testing::Values(1, 12, 48)));

// ------------------------------------------------------- native kernels --

class StreamThreads : public ::testing::TestWithParam<int> {};

TEST_P(StreamThreads, ParallelTriadMatchesSerialResult) {
  // Run one canonical iteration, substituting the threaded triad for the
  // serial one; the closed-form check must still pass bit-for-bit.
  const int threads = GetParam();
  kernels::Stream stream(10000);
  stream.copy();
  stream.scale();
  stream.add();
  stream.triad_parallel(threads);
  EXPECT_LT(stream.verify_after(1), 1e-13);
}

INSTANTIATE_TEST_SUITE_P(Threads, StreamThreads,
                         ::testing::Values(1, 2, 3, 4, 7));

}  // namespace
}  // namespace ctesim
