// Tests for the link-congestion model.
#include <gtest/gtest.h>

#include "arch/configs.h"
#include "net/congestion.h"
#include "simmpi/world.h"

namespace ctesim::net {
namespace {

Network cte_network() {
  auto net = Network(arch::cte_arm().interconnect, 192);
  net.set_jitter(0.0);
  return net;
}

TEST(Route, FollowsDimensionOrder) {
  auto net = cte_network();
  CongestionModel model(net);
  const auto* torus = dynamic_cast<const TorusTopology*>(&net.topology());
  ASSERT_NE(torus, nullptr);
  for (int dst : {1, 5, 50, 191}) {
    const auto links = model.route(0, dst);
    EXPECT_EQ(static_cast<int>(links.size()), torus->hops(0, dst)) << dst;
    // The route starts at the source.
    EXPECT_EQ(links.front().node, 0);
  }
}

TEST(Route, FatTreeUsesEndpointLinks) {
  Network net(arch::marenostrum4().interconnect, 192);
  CongestionModel model(net);
  const auto links = model.route(3, 77);
  ASSERT_EQ(links.size(), 2u);
  EXPECT_EQ(links[0].node, 3);
  EXPECT_EQ(links[1].node, 77);
}

TEST(Congestion, SingleTransferMatchesContentionFreeModel) {
  auto net = cte_network();
  CongestionModel model(net);
  const std::uint64_t bytes = 1 << 20;
  const auto base = net.transfer(0, 1, bytes);
  const sim::Time arrival = model.transfer_at(0, 1, bytes, 0);
  EXPECT_GE(sim::to_seconds(arrival), base.time_s - 1e-12);
  EXPECT_LE(sim::to_seconds(arrival), base.time_s * 1.5);
  EXPECT_DOUBLE_EQ(model.total_queueing_seconds(), 0.0);
}

TEST(Congestion, SharedLinkSerializesTransfers) {
  auto net = cte_network();
  CongestionModel model(net);
  const std::uint64_t bytes = 8 << 20;
  // Two messages over the same first link at the same instant.
  const sim::Time first = model.transfer_at(0, 1, bytes, 0);
  const sim::Time second = model.transfer_at(0, 1, bytes, 0);
  EXPECT_GT(second, first);
  EXPECT_GT(model.total_queueing_seconds(), 0.0);
  // The second waits roughly one occupancy.
  const double occupancy = static_cast<double>(bytes) /
                           (net.spec().link_bw * net.spec().eff_bw_factor);
  EXPECT_NEAR(sim::to_seconds(second - first), occupancy, 0.25 * occupancy);
}

TEST(Congestion, DisjointRoutesDoNotInterfere) {
  auto net = cte_network();
  CongestionModel model(net);
  const std::uint64_t bytes = 8 << 20;
  const sim::Time a = model.transfer_at(0, 1, bytes, 0);
  model.reset();
  CongestionModel fresh(net);
  (void)fresh.transfer_at(100, 101, bytes, 0);  // elsewhere in the torus
  const sim::Time b = fresh.transfer_at(0, 1, bytes, 0);
  EXPECT_EQ(a, b);
  EXPECT_DOUBLE_EQ(fresh.total_queueing_seconds(), 0.0);
}

TEST(Congestion, ResetClearsState) {
  auto net = cte_network();
  CongestionModel model(net);
  (void)model.transfer_at(0, 1, 8 << 20, 0);
  (void)model.transfer_at(0, 1, 8 << 20, 0);
  EXPECT_GT(model.total_queueing_seconds(), 0.0);
  model.reset();
  EXPECT_DOUBLE_EQ(model.total_queueing_seconds(), 0.0);
}

TEST(Congestion, WorldOptionSlowsSharedLinkTraffic) {
  // Two concurrent X-dimension transfers whose dimension-order routes
  // share the link leaving x=1 (node stride along X is 192/4 = 48):
  //   node 0  -> node 96  uses (x=0,+1) then (x=1,+1)
  //   node 48 -> node 144 uses (x=1,+1) then (x=2,+1)
  auto run = [&](bool congestion) {
    mpi::WorldOptions options;
    options.machine = arch::cte_arm();
    options.network_jitter = 0.0;
    options.congestion = congestion;
    mpi::World world(std::move(options),
                     mpi::Placement::one_per_node_at(
                         arch::cte_arm().node, {0, 48, 96, 144}));
    const double t = world.run([](mpi::Rank& r) -> sim::Task<> {
      const std::uint64_t bytes = 32 << 20;
      if (r.id() == 0) {
        co_await r.send(2, bytes);
      } else if (r.id() == 1) {
        co_await r.send(3, bytes);
      } else {
        co_await r.recv(r.id() - 2);
      }
    });
    return std::make_pair(t, world.network_queueing_seconds());
  };
  const auto [t_free, q_free] = run(false);
  const auto [t_congested, q_congested] = run(true);
  EXPECT_GT(t_congested, 1.3 * t_free);
  EXPECT_GT(q_congested, 0.0);
  EXPECT_DOUBLE_EQ(q_free, 0.0);
}

TEST(Congestion, LightTrafficUnaffected) {
  auto run = [&](bool congestion) {
    mpi::WorldOptions options;
    options.machine = arch::cte_arm();
    options.network_jitter = 0.0;
    options.congestion = congestion;
    mpi::World world(std::move(options),
                     mpi::Placement::per_node(arch::cte_arm().node, 4));
    return world.run([](mpi::Rank& r) -> sim::Task<> {
      co_await r.allreduce(64);  // tiny, latency-bound
    });
  };
  EXPECT_NEAR(run(true), run(false), 0.15 * run(false));
}

}  // namespace
}  // namespace ctesim::net
