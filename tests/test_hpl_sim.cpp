// Cross-validation: the analytic HPL model vs the discrete-event execution
// of the same algorithm over simulated MPI (panel bcast on row groups,
// swaps on column groups, trailing update). Agreement pins the analytic
// comm terms to the runtime's actual collective semantics.
#include <gtest/gtest.h>

#include "arch/configs.h"
#include "hpcb/hpl.h"
#include "hpcb/hpl_sim.h"

namespace ctesim::hpcb {
namespace {

class HplSimNodes : public ::testing::TestWithParam<int> {};

TEST_P(HplSimNodes, DesMatchesAnalyticWithoutOverlap) {
  const int nodes = GetParam();
  for (const auto& machine : {arch::cte_arm(), arch::marenostrum4()}) {
    auto config = hpl_config_for(machine);
    config.comm_overlap = 0.0;  // the DES ranks do not overlap comm/compute
    HplModel analytic(machine, config);
    const auto a = analytic.run(nodes);
    const auto s = run_hpl_sim(machine, nodes, config, /*step_stride=*/16);
    EXPECT_NEAR(s.gflops / a.gflops, 1.0, 0.12)
        << machine.name << " at " << nodes << " nodes";
    EXPECT_GT(s.steps_simulated, 5);
  }
}

INSTANTIATE_TEST_SUITE_P(Nodes, HplSimNodes, ::testing::Values(1, 2, 4));

TEST(HplSim, FinerSamplingConverges) {
  const auto machine = arch::cte_arm();
  auto config = hpl_config_for(machine);
  config.comm_overlap = 0.0;
  const auto coarse = run_hpl_sim(machine, 2, config, 32);
  const auto fine = run_hpl_sim(machine, 2, config, 8);
  EXPECT_NEAR(coarse.gflops / fine.gflops, 1.0, 0.12);
}

}  // namespace
}  // namespace ctesim::hpcb
