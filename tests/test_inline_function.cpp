// util::InlineFunction: the SBO contract the engine's hot path depends on.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <memory>
#include <utility>

#include "util/inline_function.h"

namespace ctesim::util {
namespace {

using Fn = InlineFunction<void()>;

std::uint64_t spills() {
  return inline_function_spill_count().load(std::memory_order_relaxed);
}

TEST(InlineFunction, SmallClosureStaysInline) {
  int hits = 0;
  int* p = &hits;
  const auto before = spills();
  Fn fn([p] { ++*p; });  // 8 bytes: must never touch the heap
  EXPECT_EQ(spills(), before);
  fn();
  fn();
  EXPECT_EQ(hits, 2);
}

TEST(InlineFunction, CapacitySizedClosureStaysInline) {
  // Exactly kInlineFunctionCapacity bytes of captured state.
  std::array<std::uint8_t, kInlineFunctionCapacity> payload{};
  payload.fill(7);
  static_assert(Fn::fits_inline<decltype([payload] {
    (void)payload;
  })>);
  const auto before = spills();
  int sum = 0;
  int* out = &sum;
  std::array<std::uint8_t, kInlineFunctionCapacity - sizeof(int*)> pad{};
  pad.fill(3);
  Fn fn([out, pad] { *out = pad[0] + pad[pad.size() - 1]; });
  EXPECT_EQ(spills(), before);
  fn();
  EXPECT_EQ(sum, 6);
}

TEST(InlineFunction, OversizedClosureTakesCountedHeapFallback) {
  std::array<std::uint8_t, kInlineFunctionCapacity + 1> big{};
  big.fill(5);
  static_assert(!Fn::fits_inline<decltype([big] { (void)big; })>);
  const auto before = spills();
  int got = 0;
  int* out = &got;
  Fn fn([out, big] { *out = big[big.size() - 1]; });
  EXPECT_EQ(spills(), before + 1);  // the fallback is counted, not silent
  fn();
  EXPECT_EQ(got, 5);
}

TEST(InlineFunction, MoveTransfersInlineState) {
  int calls = 0;
  int* p = &calls;
  Fn a([p] { ++*p; });
  Fn b(std::move(a));
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  ASSERT_TRUE(static_cast<bool>(b));
  b();
  Fn c;
  c = std::move(b);
  c();
  EXPECT_EQ(calls, 2);
}

TEST(InlineFunction, MoveTransfersHeapState) {
  std::array<std::uint8_t, 128> big{};
  big.fill(9);
  int got = 0;
  int* out = &got;
  Fn a([out, big] { *out = big[0]; });
  const auto before = spills();
  Fn b(std::move(a));  // moving a spilled closure only moves the pointer
  EXPECT_EQ(spills(), before);
  b();
  EXPECT_EQ(got, 9);
}

TEST(InlineFunction, MoveOnlyCapturesWork) {
  // std::function required copyable callables; the engine never copies, so
  // InlineFunction must accept move-only captured state.
  auto owned = std::make_unique<int>(42);
  int got = 0;
  int* out = &got;
  Fn fn([out, owned = std::move(owned)] { *out = *owned; });
  Fn moved(std::move(fn));
  moved();
  EXPECT_EQ(got, 42);
}

TEST(InlineFunction, DestroysCapturedStateExactlyOnce) {
  struct Probe {
    int* dtors;
    explicit Probe(int* d) : dtors(d) {}
    Probe(Probe&& other) noexcept : dtors(std::exchange(other.dtors, nullptr)) {}
    ~Probe() {
      if (dtors != nullptr) ++*dtors;
    }
  };
  int dtors = 0;
  {
    Fn fn([probe = Probe(&dtors)] { (void)probe; });
    Fn moved(std::move(fn));
    EXPECT_EQ(dtors, 0);  // moved-from shells must not double-destroy
  }
  EXPECT_EQ(dtors, 1);
}

TEST(InlineFunction, EmptyByDefaultAndAfterReset) {
  Fn fn;
  EXPECT_FALSE(static_cast<bool>(fn));
  fn = Fn([] {});
  EXPECT_TRUE(static_cast<bool>(fn));
  fn.reset();
  EXPECT_FALSE(static_cast<bool>(fn));
  EXPECT_THROW(fn(), ContractError);
}

TEST(InlineFunction, ReturnsValuesAndTakesArguments) {
  InlineFunction<int(int, int)> add([](int a, int b) { return a + b; });
  EXPECT_EQ(add(2, 3), 5);
}

}  // namespace
}  // namespace ctesim::util
