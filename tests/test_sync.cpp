// Tests for the core synchronization primitives (Event, Semaphore).
#include <gtest/gtest.h>

#include <vector>

#include "core/engine.h"
#include "core/sync.h"
#include "core/task.h"

namespace ctesim::sim {
namespace {

Task<> waiter(Engine& engine, Event& event, std::vector<Time>* woke) {
  co_await event.wait();
  woke->push_back(engine.now());
}

TEST(Event, WakesAllWaitersWhenSet) {
  Engine engine;
  Event event(engine);
  std::vector<Time> woke;
  for (int i = 0; i < 3; ++i) engine.spawn(waiter(engine, event, &woke));
  engine.schedule_in(100, [&] { event.set(); });
  engine.run();
  ASSERT_EQ(woke.size(), 3u);
  for (Time t : woke) EXPECT_EQ(t, 100);
}

TEST(Event, WaitAfterSetCompletesImmediately) {
  Engine engine;
  Event event(engine);
  event.set();
  std::vector<Time> woke;
  engine.spawn(waiter(engine, event, &woke));
  engine.run();
  ASSERT_EQ(woke.size(), 1u);
  EXPECT_EQ(woke[0], 0);
}

TEST(Event, ResetReArms) {
  Engine engine;
  Event event(engine);
  event.set();
  event.reset();
  EXPECT_FALSE(event.is_set());
  std::vector<Time> woke;
  engine.spawn(waiter(engine, event, &woke));
  engine.schedule_in(50, [&] { event.set(); });
  engine.run();
  ASSERT_EQ(woke.size(), 1u);
  EXPECT_EQ(woke[0], 50);
}

Task<> acquirer(Engine& engine, Semaphore& sem, int id,
                std::vector<int>* order, Time hold) {
  co_await sem.acquire();
  order->push_back(id);
  co_await engine.delay(hold);
  sem.release();
}

TEST(Semaphore, SerializesCriticalSection) {
  Engine engine;
  Semaphore sem(engine, 1);
  std::vector<int> order;
  for (int i = 0; i < 4; ++i) {
    engine.spawn(acquirer(engine, sem, i, &order, 10));
  }
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));  // FIFO, no barging
  EXPECT_EQ(engine.now(), 40);                       // fully serialized
  EXPECT_EQ(sem.count(), 1);
}

TEST(Semaphore, AllowsConcurrencyUpToCount) {
  Engine engine;
  Semaphore sem(engine, 2);
  std::vector<int> order;
  for (int i = 0; i < 4; ++i) {
    engine.spawn(acquirer(engine, sem, i, &order, 10));
  }
  engine.run();
  // Two at a time: total time 20, not 40.
  EXPECT_EQ(engine.now(), 20);
  EXPECT_EQ(sem.count(), 2);
}

TEST(Semaphore, HandoffPermitIsNotStolen) {
  // A release that hands off to a waiter must not be consumable by a later
  // acquirer arriving in between.
  Engine engine;
  Semaphore sem(engine, 0);
  std::vector<int> order;
  engine.spawn(acquirer(engine, sem, 1, &order, 0));
  engine.schedule_in(10, [&] { sem.release(); });
  // A second acquirer arrives after the release was scheduled but holds
  // position 2 in FIFO order.
  engine.schedule_in(5, [&] {
    engine.spawn(acquirer(engine, sem, 2, &order, 0));
  });
  engine.schedule_in(20, [&] { sem.release(); });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(sem.count(), 2);  // both holders released
}

TEST(Semaphore, RejectsNegativeInitialCount) {
  Engine engine;
  EXPECT_THROW(Semaphore(engine, -1), ContractError);
}

}  // namespace
}  // namespace ctesim::sim
