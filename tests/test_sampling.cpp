// Tests for the representative-region sampling subsystem: signature
// ordering, deterministic phase detection, the exact-mode executor's
// byte-identity with the legacy sim_steps extrapolation (golden strings
// captured from the pre-sampling implementation), sampled estimates
// landing inside their reported confidence intervals across seeds for
// every app proxy, run-to-run determinism, and the batch RuntimeModel's
// sampled_runtime.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "apps/alya.h"
#include "apps/gromacs.h"
#include "apps/nemo.h"
#include "apps/openifs.h"
#include "apps/wrf.h"
#include "arch/configs.h"
#include "batch/runtime.h"
#include "batch/workload.h"
#include "sampling/executor.h"
#include "sampling/phases.h"
#include "sampling/plan.h"
#include "sampling/signature.h"
#include "util/check.h"

namespace ctesim::sampling {
namespace {

/// Shortest exact decimal spelling that round-trips a double — the
/// comparison currency of the byte-identity tests (equal strings iff equal
/// bits, without tripping float-equality lint).
std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

// --- signatures -----------------------------------------------------------

TEST(Signature, OrderingCoversEveryFeature) {
  const StepSignature base;
  StepSignature other = base;
  EXPECT_FALSE(signature_less(base, other));
  EXPECT_TRUE(signature_equal(base, other));
  other.tag = 1.0;
  EXPECT_TRUE(signature_less(base, other));
  EXPECT_FALSE(signature_equal(base, other));
  other = base;
  other.io_bytes = 1.0;
  EXPECT_TRUE(signature_less(base, other));
  other = base;
  other.flops = -1.0;
  EXPECT_TRUE(signature_less(other, base));
}

// --- phase detection ------------------------------------------------------

StepProfile periodic_profile(long long steps, long long period) {
  StepProfile p;
  p.total_steps = steps;
  p.signature = [period](long long s) {
    StepSignature sig;
    sig.flops = 100.0;
    if (s % period == 0) sig.collectives = 8.0;
    return sig;
  };
  return p;
}

TEST(Phases, ExactGroupingSeparatesStepKinds) {
  const auto phases = detect_phases(periodic_profile(100, 10), 8, 1);
  ASSERT_EQ(phases.size(), 2u);
  // Ordered by first occurrence: step 0 is the collective-heavy kind.
  EXPECT_EQ(phases[0].members.front(), 0);
  EXPECT_EQ(phases[0].members.size(), 10u);
  EXPECT_EQ(phases[1].members.size(), 90u);
  for (const auto& ph : phases) {
    for (std::size_t i = 1; i < ph.members.size(); ++i) {
      EXPECT_LT(ph.members[i - 1], ph.members[i]);
    }
  }
}

TEST(Phases, NullSignatureIsOnePhase) {
  StepProfile p;
  p.total_steps = 5;
  const auto phases = detect_phases(p, 8, 1);
  ASSERT_EQ(phases.size(), 1u);
  EXPECT_EQ(phases[0].members.size(), 5u);
}

TEST(Phases, KmeansMergeRespectsBudgetAndPartitions) {
  // 16 distinct signatures in two well-separated bands.
  StepProfile p;
  p.total_steps = 160;
  p.signature = [](long long s) {
    StepSignature sig;
    const long long kind = s % 16;
    sig.flops = kind < 8 ? 100.0 + static_cast<double>(kind)
                         : 1e6 + static_cast<double>(kind);
    return sig;
  };
  const auto phases = detect_phases(p, 2, /*seed=*/7);
  ASSERT_EQ(phases.size(), 2u);
  std::size_t total = 0;
  for (const auto& ph : phases) total += ph.members.size();
  EXPECT_EQ(total, 160u);
  // The bands must not be mixed: centroids sit in different decades.
  EXPECT_LT(phases[0].centroid.flops, 1000.0);
  EXPECT_GT(phases[1].centroid.flops, 1000.0);
}

TEST(Phases, DeterministicAcrossCalls) {
  const auto a = detect_phases(periodic_profile(200, 7), 3, 42);
  const auto b = detect_phases(periodic_profile(200, 7), 3, 42);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].members, b[i].members);
    EXPECT_EQ(fmt(a[i].centroid.flops), fmt(b[i].centroid.flops));
  }
}

// --- executor plumbing ----------------------------------------------------

TEST(Executor, StepKeySpellingIsStable) {
  EXPECT_EQ(step_key("step", 0), "step#0");
  EXPECT_EQ(step_key("solver", 12), "solver#12");
}

TEST(Executor, UnknownChannelIsAContractViolation) {
  Outcome out;
  out.channels.push_back({"step", 0.0, 0.0, 0.0, 0.0});
  EXPECT_NO_THROW(out.channel("step"));
  EXPECT_THROW(out.channel("nope"), ContractError);
}

TEST(Executor, SpeedupIsStepsRatio) {
  Outcome out;
  out.steps_total = 1000;
  out.steps_simulated = 40;
  EXPECT_EQ(fmt(out.speedup()), fmt(25.0));
}

// --- exact mode: byte-identity with the legacy extrapolation --------------
//
// Golden strings captured from the pre-sampling implementation (the apps'
// own phase_max/sim_steps multiply-out). The executor's exact mode must
// reproduce them bit for bit — equal %.17g spellings iff equal doubles.

TEST(ExactGolden, WrfCteArm4Nodes) {
  const auto r = apps::run_wrf(arch::cte_arm(), 4);
  EXPECT_EQ(fmt(r.total_time), "446.12595194810638");
  EXPECT_EQ(fmt(r.time_per_step), "0.052837278196499998");
  EXPECT_EQ(fmt(r.io_time), "2.2928150975063937");
}

TEST(ExactGolden, WrfMareNostrum2Nodes) {
  const auto r = apps::run_wrf(arch::marenostrum4(), 2);
  EXPECT_EQ(fmt(r.total_time), "412.63441933525712");
  EXPECT_EQ(fmt(r.time_per_step), "0.048893517448499998");
  EXPECT_EQ(fmt(r.io_time), "1.9288727678571429");
}

TEST(ExactGolden, NemoCteArm8Nodes) {
  const auto r = apps::run_nemo(arch::cte_arm(), 8);
  EXPECT_EQ(fmt(r.total_time), "23.3241143475");
  EXPECT_EQ(fmt(r.time_per_step), "0.023324114347500001");
}

TEST(ExactGolden, AlyaCteArm12Nodes) {
  const auto r = apps::run_alya(arch::cte_arm(), 12);
  EXPECT_EQ(fmt(r.time_per_step), "3.0591628886949991");
  EXPECT_EQ(fmt(r.assembly_per_step), "2.3266791336999999");
  EXPECT_EQ(fmt(r.solver_per_step), "0.73248375499499896");
}

TEST(ExactGolden, GromacsCteArm8Ranks) {
  const auto r = apps::run_gromacs(arch::cte_arm(), 8);
  EXPECT_EQ(fmt(r.time_per_step), "0.26428418236739998");
  EXPECT_EQ(fmt(r.days_per_ns), "1.5294223516631944");
}

TEST(ExactGolden, OpenIfsCteArm8Ranks) {
  const auto r = apps::run_openifs_ranks(arch::cte_arm(), 8);
  EXPECT_EQ(fmt(r.seconds_per_day), "74.487937882848001");
}

TEST(ExactGolden, OpenIfsCteArm32NodesTc0511) {
  apps::OpenIfsConfig config;
  config.input = apps::tc0511l91();
  const auto r = apps::run_openifs_nodes(arch::cte_arm(), 32, config);
  EXPECT_EQ(fmt(r.seconds_per_day), "14.160830876064001");
}

// --- sampled mode: CI coverage and determinism per app proxy --------------
//
// Each app: one full exact run (every step simulated) as ground truth,
// then sampled runs across three seeds must land inside their reported
// 95% intervals. Everything is deterministic, so these are fixed
// scenarios, not statistical coin flips.

struct Estimate {
  double total = 0.0;
  double ci = 0.0;
  Outcome outcome;
};

void expect_in_ci(const char* app, std::uint64_t seed, double full,
                  const Estimate& e) {
  const double err = e.total - full;
  EXPECT_LE(std::abs(err), e.ci)
      << app << " seed=" << seed << ": err " << err << " vs ci " << e.ci;
  EXPECT_GT(e.outcome.speedup(), 1.0) << app << " seed=" << seed;
}

SamplingPlan sampled_plan(std::uint64_t seed, long long k, long long warmup) {
  SamplingPlan plan;
  plan.mode = Mode::kSampled;
  plan.k = k;
  plan.warmup = warmup;
  plan.seed = seed;
  return plan;
}

TEST(SampledCi, Nemo) {
  apps::NemoConfig full;
  full.steps = 60;
  full.sim_steps = 60;
  full.diag_interval = 10;
  const auto f = apps::run_nemo(arch::cte_arm(), 8, full);
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    apps::NemoConfig s = full;
    s.sampling = sampled_plan(seed, 8, 2);
    const auto r = apps::run_nemo(arch::cte_arm(), 8, s);
    EXPECT_EQ(r.sampling.phase_count, 2u);
    expect_in_ci("nemo", seed, f.total_time,
                 {r.total_time, r.sampling.ci_half_s, r.sampling});
  }
}

TEST(SampledCi, Wrf) {
  apps::WrfConfig full;
  full.steps = 100;
  full.sim_steps = 100;
  full.frames = 5;
  full.io_in_step = true;
  const auto f = apps::run_wrf(arch::cte_arm(), 2, full);
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    apps::WrfConfig s = full;
    s.sampling = sampled_plan(seed, 6, 3);
    const auto r = apps::run_wrf(arch::cte_arm(), 2, s);
    EXPECT_GE(r.sampling.phase_count, 2u);
    expect_in_ci("wrf", seed, f.total_time,
                 {r.total_time, r.sampling.ci_half_s, r.sampling});
  }
}

TEST(SampledCi, Alya) {
  apps::AlyaConfig full;
  full.sim_steps = 19;  // the full 19 reported steps
  const auto f = apps::run_alya(arch::cte_arm(), 12, full);
  const double full_total = f.time_per_step * 19.0;
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    apps::AlyaConfig s = full;
    s.sampling = sampled_plan(seed, 6, 1);
    const auto r = apps::run_alya(arch::cte_arm(), 12, s);
    const double total = r.sampling.total_s;
    expect_in_ci("alya", seed, full_total,
                 {total, r.sampling.ci_half_s, r.sampling});
    // Both channels must be estimated.
    EXPECT_GT(r.assembly_per_step, 0.0);
    EXPECT_GT(r.solver_per_step, 0.0);
  }
}

TEST(SampledCi, Gromacs) {
  apps::GromacsConfig full;
  full.timestep_fs = 10000.0;  // 100-step nanosecond: full run is feasible
  full.sim_steps = 100;
  const auto f = apps::run_gromacs(arch::cte_arm(), 8, full);
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    apps::GromacsConfig s = full;
    s.sampling = sampled_plan(seed, 6, 2);
    const auto r = apps::run_gromacs(arch::cte_arm(), 8, s);
    EXPECT_EQ(r.sampling.phase_count, 2u);  // nstlist cadence detected
    expect_in_ci("gromacs", seed, f.sampling.total_s,
                 {r.sampling.total_s, r.sampling.ci_half_s, r.sampling});
  }
}

TEST(SampledCi, OpenIfs) {
  apps::OpenIfsConfig full;
  full.input.steps_per_day = 96;  // a finer-stepped forecast day
  full.sim_steps = 96;            // exact window covers every step
  full.radiation_interval = 4;
  const auto f = apps::run_openifs_ranks(arch::cte_arm(), 8, full);
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    apps::OpenIfsConfig s = full;
    s.sampling = sampled_plan(seed, 8, 1);
    const auto r = apps::run_openifs_ranks(arch::cte_arm(), 8, s);
    EXPECT_EQ(r.sampling.phase_count, 2u);  // radiation steps detected
    expect_in_ci("openifs", seed, f.seconds_per_day,
                 {r.seconds_per_day, r.sampling.ci_half_s, r.sampling});
  }
}

TEST(SampledDeterminism, IdenticalSeedAndPlanIsByteIdentical) {
  apps::NemoConfig config;
  config.steps = 60;
  config.diag_interval = 10;
  config.sampling = sampled_plan(7, 8, 2);
  const auto a = apps::run_nemo(arch::cte_arm(), 8, config);
  const auto b = apps::run_nemo(arch::cte_arm(), 8, config);
  EXPECT_EQ(fmt(a.total_time), fmt(b.total_time));
  EXPECT_EQ(fmt(a.sampling.ci_half_s), fmt(b.sampling.ci_half_s));
  EXPECT_EQ(a.sampling.steps_simulated, b.sampling.steps_simulated);
  EXPECT_EQ(a.sampling.phase_count, b.sampling.phase_count);
}

TEST(SampledDeterminism, DifferentSeedsDifferentWorlds) {
  // Sampled runs must not reuse the exact-mode world seed: mixing the plan
  // seed in keeps the sampled realization independent of the ground truth.
  const SamplingPlan exact;
  EXPECT_EQ(world_seed(123, exact), 123u);
  SamplingPlan sampled;
  sampled.mode = Mode::kSampled;
  sampled.seed = 1;
  const auto a = world_seed(123, sampled);
  sampled.seed = 2;
  const auto b = world_seed(123, sampled);
  EXPECT_NE(a, 123u);
  EXPECT_NE(a, b);
}

// --- batch RuntimeModel ---------------------------------------------------

TEST(BatchSampling, ExactPlanMatchesAnalyticRuntime) {
  const batch::RuntimeModel model(arch::cte_arm());
  batch::Job job;
  job.id = 11;
  job.nodes = 4;
  job.profile = batch::profile_by_name("stencil");
  job.profile.iterations = 200;
  const double analytic = model.runtime(job, model.reference_hops(4));
  const SamplingPlan exact;
  const auto out =
      model.sampled_runtime(job, model.reference_hops(4), exact);
  // The jittered steps average to the analytic mean to within the jitter
  // amplitude over 200 draws.
  EXPECT_NEAR(out.total_s, analytic,
              analytic * batch::RuntimeModel::kStepJitter);
  EXPECT_EQ(out.steps_simulated, 200);
}

TEST(BatchSampling, SampledPlanCoversExactAcrossSeeds) {
  const batch::RuntimeModel model(arch::cte_arm());
  batch::Job job;
  job.id = 3;
  job.nodes = 2;
  job.profile = batch::profile_by_name("spmv");
  job.profile.iterations = 500;
  const double hops = model.reference_hops(2);
  const SamplingPlan exact;
  const double full = model.sampled_runtime(job, hops, exact).total_s;
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    const auto out =
        model.sampled_runtime(job, hops, sampled_plan(seed, 16, 0));
    EXPECT_LE(std::abs(out.total_s - full), out.ci_half_s)
        << "seed " << seed;
    EXPECT_LT(out.steps_simulated, 50);
  }
}

TEST(BatchSampling, FixedRuntimeJobIsOneStep) {
  const batch::RuntimeModel model(arch::cte_arm());
  batch::Job job;
  job.id = 1;
  job.nodes = 1;
  job.fixed_runtime_s = 123.5;
  const auto out = model.sampled_runtime(job, 0.0, SamplingPlan{});
  EXPECT_EQ(out.steps_total, 1);
  // One step, jittered: within the jitter amplitude of the fixed runtime.
  EXPECT_NEAR(out.total_s, 123.5,
              123.5 * batch::RuntimeModel::kStepJitter);
}

}  // namespace
}  // namespace ctesim::sampling
