// Tests for the machine models: every number of Table I must come out of
// the model, and the memory curves must reproduce the paper's STREAM
// anchors.
#include <gtest/gtest.h>

#include "arch/calibration.h"
#include "arch/compiler.h"
#include "arch/configs.h"

namespace ctesim::arch {
namespace {

TEST(TableI, CteArmPeaks) {
  const auto m = cte_arm();
  // DP Peak / core = 70.40 GFlop/s.
  EXPECT_NEAR(m.node.core.peak_vector_flops(Precision::kDouble).value(), 70.40e9,
              1e6);
  // DP Peak / node = 3379.20 GFlop/s.
  EXPECT_NEAR(m.node.peak_flops().value(), 3379.20e9, 1e7);
  EXPECT_EQ(m.node.core_count(), 48);
  EXPECT_EQ(m.node.num_domains, 4);
  EXPECT_EQ(m.node.sockets, 1);
  EXPECT_NEAR(m.node.memory_gb(), 32.0, 1e-9);
  EXPECT_NEAR(m.node.peak_bw().value(), 1024.0e9, 1e-3);
  EXPECT_EQ(m.num_nodes, 192);
  EXPECT_NEAR(m.interconnect.link_bw, 6.8e9, 1e-3);
}

TEST(TableI, MareNostrum4Peaks) {
  const auto m = marenostrum4();
  // DP Peak / core = 67.20 GFlop/s.
  EXPECT_NEAR(m.node.core.peak_vector_flops(Precision::kDouble).value(), 67.20e9,
              1e6);
  // DP Peak / node = 3225.60 GFlop/s.
  EXPECT_NEAR(m.node.peak_flops().value(), 3225.60e9, 1e7);
  EXPECT_EQ(m.node.core_count(), 48);
  EXPECT_EQ(m.node.sockets, 2);
  EXPECT_NEAR(m.node.memory_gb(), 96.0, 1e-9);
  EXPECT_NEAR(m.node.peak_bw().value(), 256.0e9, 1e-3);
  EXPECT_EQ(m.num_nodes, 3456);
  EXPECT_NEAR(m.interconnect.link_bw, 12.0e9, 1e-3);
}

TEST(CoreModel, PrecisionScalingOnA64fx) {
  const auto core = cte_arm().node.core;
  const double dp = core.peak_vector_flops(Precision::kDouble).value();
  // SVE with native FP16: single = 2x double, half = 4x double.
  EXPECT_NEAR(core.peak_vector_flops(Precision::kSingle).value(), 2.0 * dp, 1.0);
  EXPECT_NEAR(core.peak_vector_flops(Precision::kHalf).value(), 4.0 * dp, 1.0);
}

TEST(CoreModel, HalfFallsBackToSingleOnSkylake) {
  const auto core = marenostrum4().node.core;
  // AVX-512 has no FP16 arithmetic: half runs at the single rate.
  EXPECT_DOUBLE_EQ(core.peak_vector_flops(Precision::kHalf).value(),
                   core.peak_vector_flops(Precision::kSingle).value());
}

TEST(CoreModel, ScalarPeakIndependentOfPrecision) {
  const auto core = cte_arm().node.core;
  // 2 scalar FMA/cycle * 2 flops * 2.2 GHz = 8.8 GFlop/s.
  EXPECT_NEAR(core.peak_scalar_flops().value(), 8.8e9, 1e3);
}

TEST(Memory, DomainBandwidthSaturates) {
  const auto domain = cte_arm().node.domain;
  // Monotone non-decreasing up to saturation; capped at the ceiling.
  double prev = 0.0;
  for (int t = 1; t <= domain.cores; ++t) {
    const double bw = domain.achieved_bw(t).value();
    EXPECT_GE(bw, prev - 1e-6);
    EXPECT_LE(bw, domain.ceiling_bw().value() + 1e-6);
    prev = bw;
  }
  EXPECT_DOUBLE_EQ(domain.achieved_bw(0).value(), 0.0);
}

TEST(Memory, Fig2AnchorsCteArm) {
  const auto node = cte_arm().node;
  // Paper: OpenMP STREAM saturates at 292.0 GB/s around 24 threads...
  EXPECT_NEAR(node.single_process_bw(24).value(), 292.0e9, 4.0e9);
  // ...and is only mildly lower at 48 threads.
  const double bw48 = node.single_process_bw(48).value();
  EXPECT_GT(bw48, 0.9 * 292.0e9);
  EXPECT_LE(bw48, 292.0e9);
}

TEST(Memory, Fig3AnchorsCteArm) {
  const auto node = cte_arm().node;
  // Hybrid 4 ranks x 12 threads reaches 862.6 GB/s = 84% of 1024.
  EXPECT_NEAR(node.hybrid_bw(4, 12).value(), 862.6e9, 2.0e9);
}

TEST(Memory, Fig2AnchorsMareNostrum4) {
  const auto node = marenostrum4().node;
  // Paper: best 201.2 GB/s = 66% of peak with 48 threads.
  EXPECT_NEAR(node.single_process_bw(48).value(), 201.2e9, 3.0e9);
  // MN4 keeps growing to the full node (max at 48, not before).
  EXPECT_GE(node.single_process_bw(48).value(), node.single_process_bw(24).value() - 1e6);
}

TEST(Memory, BestBwUsesAllDomains) {
  const auto node = cte_arm().node;
  EXPECT_NEAR(node.best_bw(48).value(), 862.6e9, 2.0e9);
  // Half the cores still drive all four CMGs at half strength or better.
  EXPECT_GT(node.best_bw(24).value(), 0.45 * node.best_bw(48).value());
}

TEST(Compiler, GnuCannotVectorizeAppsOnA64fx) {
  const auto core = cte_arm().node.core;
  const auto gnu = gnu_compiler();
  // The paper's central observation (Section VI).
  EXPECT_LT(gnu.vectorization(KernelClass::kFemAssembly, core), 0.10);
  EXPECT_LT(gnu.vectorization(KernelClass::kSparseSolver, core), 0.10);
  EXPECT_LT(gnu.vectorization(KernelClass::kPhysics, core), 0.10);
  // The hand-written FMA kernel always vectorizes.
  EXPECT_DOUBLE_EQ(gnu.vectorization(KernelClass::kFmaThroughput, core), 1.0);
}

TEST(Compiler, VendorBinariesVectorizeNearPerfectly) {
  const auto core = cte_arm().node.core;
  const auto vendor = vendor_tuned();
  EXPECT_GT(vendor.vectorization(KernelClass::kDenseLinAlg, core), 0.95);
}

TEST(Compiler, A64fxIndirectAccessStarvedWithoutPrefetch) {
  const auto a64 = cte_arm().node.core;
  const auto skx = marenostrum4().node.core;
  // GNU sparse code on A64FX sustains far less of STREAM bandwidth than
  // Intel sparse code on Skylake (HBM needs prefetch; Skylake OoO copes).
  EXPECT_LT(gnu_compiler().mem_efficiency(KernelClass::kSparseSolver, a64),
            0.25);
  EXPECT_GT(intel_compiler().mem_efficiency(KernelClass::kSparseSolver, skx),
            0.7);
}

TEST(Compiler, DefaultAppCompilerMatchesPaper) {
  EXPECT_EQ(default_app_compiler(cte_arm()).vendor(), CompilerVendor::kGnu);
  EXPECT_EQ(default_app_compiler(marenostrum4()).vendor(),
            CompilerVendor::kIntel);
}

TEST(Machine, TotalPeaks) {
  // 192 nodes: CTE-Arm 648.8 TFlop/s vs MN4-equivalent 619.3 TFlop/s.
  EXPECT_NEAR(cte_arm().peak_flops_total().value(), 192 * 3379.2e9, 1e9);
  const auto mn4 = marenostrum4();
  EXPECT_NEAR(mn4.node.peak_flops().value() * 192, 192 * 3225.6e9, 1e9);
}

TEST(Machine, LlcBytes) {
  EXPECT_NEAR(cte_arm().node.llc_bytes().value(), 32.0 * 1024 * 1024, 1.0);
  EXPECT_NEAR(marenostrum4().node.llc_bytes().value(), (66.0 + 48.0) * 1024 * 1024,
              1.0);
}

}  // namespace
}  // namespace ctesim::arch
