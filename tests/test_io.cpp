// Tests for the parallel-filesystem model.
#include <gtest/gtest.h>

#include "apps/wrf.h"
#include "arch/configs.h"
#include "io/filesystem.h"

namespace ctesim::io {
namespace {

FilesystemModel small_fs() {
  FilesystemConfig config;
  config.osts = 16;
  config.ost_bw = 1.0e9;
  config.default_stripe_count = 2;
  config.metadata_latency = 1.0e-3;
  return FilesystemModel(config, arch::cte_arm().interconnect);
}

TEST(Filesystem, StripeBandwidthCappedByPool) {
  const auto fs = small_fs();
  EXPECT_DOUBLE_EQ(fs.stripe_bw(1), 1.0e9);
  EXPECT_DOUBLE_EQ(fs.stripe_bw(3), 3.0e9);
  EXPECT_DOUBLE_EQ(fs.stripe_bw(100), 16.0e9);  // only 16 OSTs exist
}

TEST(Filesystem, SerialWriteDominatedBySlowestStage) {
  const auto fs = small_fs();
  const std::uint64_t gib = 1ull << 30;
  const double t = fs.serial_write_seconds(gib);
  // Gather at ~6.26 GB/s + drain at min(6.26, 2 x 1) = 2 GB/s + metadata.
  const double expect = 1e-3 + gib / 6.256e9 + gib / 2.0e9;
  EXPECT_NEAR(t, expect, 0.02 * expect);
}

TEST(Filesystem, ParallelWriteScalesUntilPoolLimit) {
  const auto fs = small_fs();
  const std::uint64_t gib = 1ull << 30;
  const double w1 = fs.parallel_write_seconds(gib, 1);
  const double w4 = fs.parallel_write_seconds(gib, 4);
  const double w64 = fs.parallel_write_seconds(gib, 64);
  EXPECT_LT(w4, w1);
  // Beyond pool saturation more writers stop helping.
  EXPECT_NEAR(w64, gib / 16.0e9 + 1e-3, 1e-6);
  EXPECT_NEAR(w64, fs.parallel_write_seconds(gib, 1000), 1e-9);
}

TEST(Filesystem, ParallelBeatsSerialForLargeFrames) {
  const auto fs = production_filesystem(arch::cte_arm());
  const std::uint64_t frame = 512ull << 20;
  EXPECT_LT(fs.parallel_write_seconds(frame, 32),
            fs.serial_write_seconds(frame));
}

TEST(Filesystem, MetadataFloorsSmallWrites) {
  const auto fs = production_filesystem(arch::cte_arm());
  EXPECT_GE(fs.serial_write_seconds(1), fs.config().metadata_latency);
  EXPECT_GE(fs.parallel_write_seconds(1, 64), fs.config().metadata_latency);
}

TEST(Filesystem, RejectsBadConfigs) {
  FilesystemConfig config;
  config.osts = 0;
  EXPECT_THROW(FilesystemModel(config, arch::cte_arm().interconnect),
               ContractError);
}

TEST(WrfIo, ParallelIoReducesIoShare) {
  apps::WrfConfig serial;
  apps::WrfConfig parallel;
  parallel.parallel_io = true;
  const auto machine = arch::cte_arm();
  const auto a = apps::run_wrf(machine, 16, serial);
  const auto b = apps::run_wrf(machine, 16, parallel);
  EXPECT_GT(a.io_time, b.io_time);
  EXPECT_LT(b.total_time, a.total_time);
}

}  // namespace
}  // namespace ctesim::io
