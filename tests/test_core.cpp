// Unit tests for the DES engine, coroutine tasks and channels.
#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/channel.h"
#include "core/engine.h"
#include "core/task.h"
#include "util/rng.h"

namespace ctesim::sim {
namespace {

TEST(Engine, StartsAtTimeZero) {
  Engine engine;
  EXPECT_EQ(engine.now(), 0);
}

TEST(Engine, RunsEventsInTimeOrder) {
  Engine engine;
  std::vector<int> order;
  engine.schedule_in(30, [&] { order.push_back(3); });
  engine.schedule_in(10, [&] { order.push_back(1); });
  engine.schedule_in(20, [&] { order.push_back(2); });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(engine.now(), 30);
}

TEST(Engine, EqualTimesFireInSchedulingOrder) {
  Engine engine;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    engine.schedule_in(5, [&order, i] { order.push_back(i); });
  }
  engine.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Engine, NestedSchedulingAdvancesTime) {
  Engine engine;
  Time inner_time = -1;
  engine.schedule_in(10, [&] {
    engine.schedule_in(15, [&] { inner_time = engine.now(); });
  });
  engine.run();
  EXPECT_EQ(inner_time, 25);
}

TEST(Engine, RejectsNegativeDelay) {
  Engine engine;
  EXPECT_THROW(engine.schedule_in(-1, [] {}), ContractError);
}

TEST(Engine, RunUntilStopsAtLimit) {
  Engine engine;
  int fired = 0;
  engine.schedule_in(10, [&] { ++fired; });
  engine.schedule_in(100, [&] { ++fired; });
  EXPECT_FALSE(engine.run_until(50));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(engine.now(), 50);
  EXPECT_TRUE(engine.run_until(200));
  EXPECT_EQ(fired, 2);
}

TEST(Engine, RandomizedScheduleMatchesStableSortOracle) {
  // The 4-ary heap must dispatch in exactly the order of a stable sort by
  // time over the scheduling sequence — same contract the old
  // std::priority_queue<Event> satisfied, so traces stay byte-identical.
  Rng rng(424242);
  for (int trial = 0; trial < 50; ++trial) {
    Engine engine;
    std::vector<std::pair<Time, int>> scheduled;
    std::vector<int> fired;
    for (int i = 0; i < 300; ++i) {
      // A tiny time domain forces long runs of equal-time events.
      const Time t = static_cast<Time>(rng.next_u64() % 5);
      scheduled.emplace_back(t, i);
      engine.schedule_in(t, [&fired, i] { fired.push_back(i); });
    }
    std::stable_sort(scheduled.begin(), scheduled.end(),
                     [](const auto& a, const auto& b) {
                       return a.first < b.first;
                     });
    engine.run();
    ASSERT_EQ(fired.size(), scheduled.size());
    for (std::size_t i = 0; i < fired.size(); ++i) {
      ASSERT_EQ(fired[i], scheduled[i].second) << "trial " << trial;
    }
  }
}

TEST(Engine, RunUntilBoundaryIsInclusive) {
  // run_until(limit) fires events scheduled exactly AT the limit — the
  // boundary is inclusive, and the engine lands on now() == limit either
  // way. Pinned so the queue rebuild cannot shift the semantics.
  Engine engine;
  std::vector<int> fired;
  engine.schedule_in(49, [&] { fired.push_back(49); });
  engine.schedule_in(50, [&] { fired.push_back(50); });
  engine.schedule_in(151, [&] { fired.push_back(151); });
  EXPECT_FALSE(engine.run_until(50));
  EXPECT_EQ(fired, (std::vector<int>{49, 50}));
  EXPECT_EQ(engine.now(), 50);
  // Equal-time events exactly at the limit: both fire, in scheduling order.
  engine.schedule_in(10, [&] { fired.push_back(60); });
  engine.schedule_in(10, [&] { fired.push_back(61); });
  EXPECT_FALSE(engine.run_until(60));
  EXPECT_EQ(fired, (std::vector<int>{49, 50, 60, 61}));
  EXPECT_TRUE(engine.run_until(200));
  EXPECT_EQ(fired, (std::vector<int>{49, 50, 60, 61, 151}));
  EXPECT_EQ(engine.now(), 200);
}

TEST(Engine, CountsEvents) {
  Engine engine;
  for (int i = 0; i < 7; ++i) engine.schedule_in(i, [] {});
  engine.run();
  EXPECT_EQ(engine.events_processed(), 7u);
}

Task<> sleeper(Engine& engine, Time dt, Time* woke_at) {
  co_await engine.delay(dt);
  *woke_at = engine.now();
}

TEST(Process, DelaySuspendsForSimulatedTime) {
  Engine engine;
  Time woke_at = -1;
  engine.spawn(sleeper(engine, 1234, &woke_at));
  engine.run();
  EXPECT_EQ(woke_at, 1234);
  EXPECT_EQ(engine.unfinished_processes(), 0u);
}

Task<int> add_later(Engine& engine, int a, int b) {
  co_await engine.delay(10);
  co_return a + b;
}

Task<> caller(Engine& engine, int* out) {
  // Nested awaits: the child task runs inline in simulated time.
  const int x = co_await add_later(engine, 2, 3);
  const int y = co_await add_later(engine, x, 10);
  *out = y;
}

TEST(Process, NestedTasksComposeAndReturnValues) {
  Engine engine;
  int result = 0;
  engine.spawn(caller(engine, &result));
  engine.run();
  EXPECT_EQ(result, 15);
  EXPECT_EQ(engine.now(), 20);
}

Task<> thrower(Engine& engine) {
  co_await engine.delay(5);
  throw std::runtime_error("boom");
}

TEST(Process, ExceptionsPropagateFromRun) {
  Engine engine;
  engine.spawn(thrower(engine));
  EXPECT_THROW(engine.run(), std::runtime_error);
}

Task<> quick(Engine& engine) { co_await engine.delay(1); }

Task<> failing_burst(Engine& engine, int total) {
  for (int i = 0; i < total; ++i) {
    engine.spawn(quick(engine));
    co_await engine.delay(1);
  }
  throw std::runtime_error("late failure");
}

TEST(Process, ExceptionsSurviveIncrementalReaping) {
  // Hundreds of healthy processes finish (and are reaped mid-run) around a
  // driver that eventually throws: run() must still rethrow, because the
  // reaper only drops tasks that finished cleanly.
  Engine engine;
  engine.spawn(failing_burst(engine, 500));
  EXPECT_THROW(engine.run(), std::runtime_error);
  // The healthy 500 were swept while running; only the failed driver plus
  // the not-yet-reaped tail remain tracked.
  EXPECT_LT(engine.tracked_processes(), 500u);
  EXPECT_EQ(engine.unfinished_processes(), 0u);
}

TEST(Engine, TeardownWithPendingEventsAndLiveProcessesIsClean) {
  // Destroy an engine that never ran: the queue still holds resume
  // callbacks pointing into coroutine frames. The destructor must drop the
  // queue before the frames (ASan would flag the reverse order).
  Engine engine;
  engine.spawn(quick(engine));
  engine.spawn(quick(engine));
  engine.schedule_in(5, [] {});
  EXPECT_EQ(engine.tracked_processes(), 2u);
}

Task<> catcher(Engine& engine, bool* caught) {
  try {
    co_await thrower(engine);
  } catch (const std::runtime_error&) {
    *caught = true;
  }
}

TEST(Process, ExceptionsPropagateThroughNestedAwait) {
  Engine engine;
  bool caught = false;
  engine.spawn(catcher(engine, &caught));
  engine.run();
  EXPECT_TRUE(caught);
}

TEST(Process, UnfinishedProcessesDetected) {
  Engine engine;
  Channel<int> never(engine);
  engine.spawn([](Channel<int>& ch) -> Task<> {
    co_await ch.pop();  // no one ever pushes
  }(never));
  engine.run();
  EXPECT_EQ(engine.unfinished_processes(), 1u);
}

Task<> producer(Engine& engine, Channel<int>& ch, int n) {
  for (int i = 0; i < n; ++i) {
    co_await engine.delay(10);
    ch.push(i);
  }
}

Task<> consumer(Channel<int>& ch, int n, std::vector<int>* got) {
  for (int i = 0; i < n; ++i) {
    got->push_back(co_await ch.pop());
  }
}

TEST(Channel, DeliversInFifoOrder) {
  Engine engine;
  Channel<int> ch(engine);
  std::vector<int> got;
  engine.spawn(producer(engine, ch, 5));
  engine.spawn(consumer(ch, 5, &got));
  engine.run();
  EXPECT_EQ(got, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_EQ(engine.unfinished_processes(), 0u);
}

TEST(Channel, BuffersWhenNoReceiver) {
  Engine engine;
  Channel<int> ch(engine);
  ch.push(1);
  ch.push(2);
  EXPECT_EQ(ch.size(), 2u);
  std::vector<int> got;
  engine.spawn(consumer(ch, 2, &got));
  engine.run();
  EXPECT_EQ(got, (std::vector<int>{1, 2}));
}

Task<> tagged_consumer(Channel<int>& ch, int id, std::vector<int>* order) {
  co_await ch.pop();
  order->push_back(id);
}

TEST(Channel, WaitersWakeInArrivalOrder) {
  // Two receivers queue before any item exists; pushes must wake them in
  // the order they arrived (no stealing by the later receiver).
  Engine engine;
  Channel<int> ch(engine);
  std::vector<int> order;
  engine.spawn(tagged_consumer(ch, 1, &order));
  engine.spawn(tagged_consumer(ch, 2, &order));
  engine.schedule_in(100, [&] { ch.push(42); });
  engine.schedule_in(200, [&] { ch.push(43); });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Time, SecondConversionRoundTrips) {
  EXPECT_EQ(from_seconds(1.0), kSecond);
  EXPECT_EQ(from_seconds(1e-6), kMicrosecond);
  EXPECT_DOUBLE_EQ(to_seconds(kMillisecond), 1e-3);
  EXPECT_EQ(from_seconds(to_seconds(123456789)), 123456789);
}

}  // namespace
}  // namespace ctesim::sim
