// Unit tests for the DES engine, coroutine tasks and channels.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "core/channel.h"
#include "core/engine.h"
#include "core/task.h"

namespace ctesim::sim {
namespace {

TEST(Engine, StartsAtTimeZero) {
  Engine engine;
  EXPECT_EQ(engine.now(), 0);
}

TEST(Engine, RunsEventsInTimeOrder) {
  Engine engine;
  std::vector<int> order;
  engine.schedule_in(30, [&] { order.push_back(3); });
  engine.schedule_in(10, [&] { order.push_back(1); });
  engine.schedule_in(20, [&] { order.push_back(2); });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(engine.now(), 30);
}

TEST(Engine, EqualTimesFireInSchedulingOrder) {
  Engine engine;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    engine.schedule_in(5, [&order, i] { order.push_back(i); });
  }
  engine.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Engine, NestedSchedulingAdvancesTime) {
  Engine engine;
  Time inner_time = -1;
  engine.schedule_in(10, [&] {
    engine.schedule_in(15, [&] { inner_time = engine.now(); });
  });
  engine.run();
  EXPECT_EQ(inner_time, 25);
}

TEST(Engine, RejectsNegativeDelay) {
  Engine engine;
  EXPECT_THROW(engine.schedule_in(-1, [] {}), ContractError);
}

TEST(Engine, RunUntilStopsAtLimit) {
  Engine engine;
  int fired = 0;
  engine.schedule_in(10, [&] { ++fired; });
  engine.schedule_in(100, [&] { ++fired; });
  EXPECT_FALSE(engine.run_until(50));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(engine.now(), 50);
  EXPECT_TRUE(engine.run_until(200));
  EXPECT_EQ(fired, 2);
}

TEST(Engine, CountsEvents) {
  Engine engine;
  for (int i = 0; i < 7; ++i) engine.schedule_in(i, [] {});
  engine.run();
  EXPECT_EQ(engine.events_processed(), 7u);
}

Task<> sleeper(Engine& engine, Time dt, Time* woke_at) {
  co_await engine.delay(dt);
  *woke_at = engine.now();
}

TEST(Process, DelaySuspendsForSimulatedTime) {
  Engine engine;
  Time woke_at = -1;
  engine.spawn(sleeper(engine, 1234, &woke_at));
  engine.run();
  EXPECT_EQ(woke_at, 1234);
  EXPECT_EQ(engine.unfinished_processes(), 0u);
}

Task<int> add_later(Engine& engine, int a, int b) {
  co_await engine.delay(10);
  co_return a + b;
}

Task<> caller(Engine& engine, int* out) {
  // Nested awaits: the child task runs inline in simulated time.
  const int x = co_await add_later(engine, 2, 3);
  const int y = co_await add_later(engine, x, 10);
  *out = y;
}

TEST(Process, NestedTasksComposeAndReturnValues) {
  Engine engine;
  int result = 0;
  engine.spawn(caller(engine, &result));
  engine.run();
  EXPECT_EQ(result, 15);
  EXPECT_EQ(engine.now(), 20);
}

Task<> thrower(Engine& engine) {
  co_await engine.delay(5);
  throw std::runtime_error("boom");
}

TEST(Process, ExceptionsPropagateFromRun) {
  Engine engine;
  engine.spawn(thrower(engine));
  EXPECT_THROW(engine.run(), std::runtime_error);
}

Task<> catcher(Engine& engine, bool* caught) {
  try {
    co_await thrower(engine);
  } catch (const std::runtime_error&) {
    *caught = true;
  }
}

TEST(Process, ExceptionsPropagateThroughNestedAwait) {
  Engine engine;
  bool caught = false;
  engine.spawn(catcher(engine, &caught));
  engine.run();
  EXPECT_TRUE(caught);
}

TEST(Process, UnfinishedProcessesDetected) {
  Engine engine;
  Channel<int> never(engine);
  engine.spawn([](Channel<int>& ch) -> Task<> {
    co_await ch.pop();  // no one ever pushes
  }(never));
  engine.run();
  EXPECT_EQ(engine.unfinished_processes(), 1u);
}

Task<> producer(Engine& engine, Channel<int>& ch, int n) {
  for (int i = 0; i < n; ++i) {
    co_await engine.delay(10);
    ch.push(i);
  }
}

Task<> consumer(Channel<int>& ch, int n, std::vector<int>* got) {
  for (int i = 0; i < n; ++i) {
    got->push_back(co_await ch.pop());
  }
}

TEST(Channel, DeliversInFifoOrder) {
  Engine engine;
  Channel<int> ch(engine);
  std::vector<int> got;
  engine.spawn(producer(engine, ch, 5));
  engine.spawn(consumer(ch, 5, &got));
  engine.run();
  EXPECT_EQ(got, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_EQ(engine.unfinished_processes(), 0u);
}

TEST(Channel, BuffersWhenNoReceiver) {
  Engine engine;
  Channel<int> ch(engine);
  ch.push(1);
  ch.push(2);
  EXPECT_EQ(ch.size(), 2u);
  std::vector<int> got;
  engine.spawn(consumer(ch, 2, &got));
  engine.run();
  EXPECT_EQ(got, (std::vector<int>{1, 2}));
}

Task<> tagged_consumer(Channel<int>& ch, int id, std::vector<int>* order) {
  co_await ch.pop();
  order->push_back(id);
}

TEST(Channel, WaitersWakeInArrivalOrder) {
  // Two receivers queue before any item exists; pushes must wake them in
  // the order they arrived (no stealing by the later receiver).
  Engine engine;
  Channel<int> ch(engine);
  std::vector<int> order;
  engine.spawn(tagged_consumer(ch, 1, &order));
  engine.spawn(tagged_consumer(ch, 2, &order));
  engine.schedule_in(100, [&] { ch.push(42); });
  engine.schedule_in(200, [&] { ch.push(43); });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Time, SecondConversionRoundTrips) {
  EXPECT_EQ(from_seconds(1.0), kSecond);
  EXPECT_EQ(from_seconds(1e-6), kMicrosecond);
  EXPECT_DOUBLE_EQ(to_seconds(kMillisecond), 1e-3);
  EXPECT_EQ(from_seconds(to_seconds(123456789)), 123456789);
}

}  // namespace
}  // namespace ctesim::sim
