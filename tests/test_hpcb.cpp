// Tests for the HPL and HPCG models against the paper's Fig. 6 / Fig. 7 /
// Table IV anchors.
#include <gtest/gtest.h>

#include "arch/configs.h"
#include "hpcb/hpcg.h"
#include "hpcb/hpl.h"
#include "kernels/dense.h"
#include "kernels/multigrid.h"
#include "util/rng.h"

namespace ctesim::hpcb {
namespace {

HplModel cte_hpl() {
  const auto m = arch::cte_arm();
  return HplModel(m, hpl_config_for(m));
}

HplModel mn4_hpl() {
  const auto m = arch::marenostrum4();
  return HplModel(m, hpl_config_for(m));
}

TEST(Hpl, ProblemSizeUses80PercentOfMemory) {
  const auto point = cte_hpl().run(192);
  const double bytes = point.n * point.n * 8.0;
  const double mem = 192 * 32.0e9;
  EXPECT_GE(bytes, 0.78 * mem);
  EXPECT_LE(bytes, 0.82 * mem);
}

TEST(Hpl, GridIsFactorization) {
  const auto point = cte_hpl().run(48);
  EXPECT_EQ(point.p * point.q, 48 * 4);  // 4 ranks/node on CTE-Arm
  EXPECT_LE(point.p, point.q);
  const auto mn4 = mn4_hpl().run(48);
  EXPECT_EQ(mn4.p * mn4.q, 48);  // 1 rank/node on MN4
}

TEST(Hpl, CteArmReaches85PercentAt192Nodes) {
  const auto point = cte_hpl().run(192);
  EXPECT_NEAR(point.efficiency, 0.85, 0.02);
}

TEST(Hpl, MareNostrumReaches63PercentAt192Nodes) {
  const auto point = mn4_hpl().run(192);
  EXPECT_NEAR(point.efficiency, 0.63, 0.03);
}

TEST(Hpl, SingleNodeSpeedupMatchesTableIV) {
  const auto cte = cte_hpl().run(1);
  const auto mn4 = mn4_hpl().run(1);
  EXPECT_NEAR(cte.gflops / mn4.gflops, 1.25, 0.08);
}

TEST(Hpl, SpeedupGrowsWithScale) {
  // Table IV: LINPACK speedup 1.25 (1 node) .. ~1.4-1.7 (128-192 nodes).
  const double s1 = cte_hpl().run(1).gflops / mn4_hpl().run(1).gflops;
  const double s192 = cte_hpl().run(192).gflops / mn4_hpl().run(192).gflops;
  EXPECT_GT(s192, s1);
  EXPECT_NEAR(s192, 1.40, 0.12);
}

TEST(Hpl, EfficiencyDecreasesWithScale) {
  const auto m = mn4_hpl();
  double prev = 1.0;
  for (int nodes : {1, 16, 64, 192}) {
    const auto point = m.run(nodes);
    EXPECT_LT(point.efficiency, prev);
    prev = point.efficiency;
  }
}

TEST(Hpl, NativeLuValidatesTheAlgorithm) {
  // The model's algorithm is real: the native blocked LU solves systems to
  // HPL accuracy (smoke-check here; thorough coverage in test_kernels).
  kernels::Matrix a(64, 64);
  ctesim::Rng rng(99);
  std::vector<double> b(64);
  for (std::size_t i = 0; i < 64; ++i) {
    b[i] = rng.uniform(-1, 1);
    for (std::size_t j = 0; j < 64; ++j) a.at(i, j) = rng.uniform(-1, 1);
  }
  kernels::Matrix lu = a;
  std::vector<std::size_t> pivots;
  ASSERT_TRUE(kernels::lu_factor(lu, pivots));
  EXPECT_LT(kernels::hpl_residual(a, kernels::lu_solve(lu, pivots, b), b),
            16.0);
}

// ------------------------------------------------------------- HPCG -----

TEST(Hpcg, CteArmOptimizedNear291PercentOfPeak) {
  HpcgModel model(arch::cte_arm());
  const auto point = model.run(1, HpcgBuild::kOptimized);
  EXPECT_NEAR(point.peak_fraction, 0.0291, 0.0015);
  EXPECT_NEAR(point.gflops, 98.3, 5.0);
}

TEST(Hpcg, CteArm192NodesNear296Percent) {
  HpcgModel model(arch::cte_arm());
  const auto point = model.run(192, HpcgBuild::kOptimized);
  EXPECT_NEAR(point.peak_fraction, 0.0296, 0.0015);
}

TEST(Hpcg, SpeedupMatchesTableIV) {
  HpcgModel cte(arch::cte_arm());
  HpcgModel mn4(arch::marenostrum4());
  const double s1 = cte.run(1, HpcgBuild::kOptimized).gflops /
                    mn4.run(1, HpcgBuild::kOptimized).gflops;
  const double s192 = cte.run(192, HpcgBuild::kOptimized).gflops /
                      mn4.run(192, HpcgBuild::kOptimized).gflops;
  EXPECT_NEAR(s1, 2.50, 0.15);
  EXPECT_NEAR(s192, 3.24, 0.20);
}

TEST(Hpcg, VanillaSlowerThanOptimized) {
  for (const auto& machine : {arch::cte_arm(), arch::marenostrum4()}) {
    HpcgModel model(machine);
    const auto vanilla = model.run(1, HpcgBuild::kVanilla);
    const auto optimized = model.run(1, HpcgBuild::kOptimized);
    EXPECT_LT(vanilla.gflops, optimized.gflops) << machine.name;
  }
}

TEST(Hpcg, HpcgWellBelowHplEfficiency) {
  // The paper's closing remark: HPCG is ~3% of peak while HPL is >60%.
  HpcgModel hpcg(arch::cte_arm());
  const auto h = hpcg.run(192, HpcgBuild::kOptimized);
  const auto l = cte_hpl().run(192);
  EXPECT_LT(h.peak_fraction, 0.05);
  EXPECT_GT(l.efficiency, 0.6);
}

TEST(Hpcg, NativeMiniHpcgValidates) {
  const auto r = kernels::run_mini_hpcg(16, 16, 16, 50, 1e-9);
  EXPECT_TRUE(r.converged);
}

}  // namespace
}  // namespace ctesim::hpcb
