// Tests for the five application proxies against the paper's Section V
// anchors (slowdowns, memory minima, crossover points, anomalies).
#include <gtest/gtest.h>

#include "apps/alya.h"
#include "apps/gromacs.h"
#include "apps/nemo.h"
#include "apps/openifs.h"
#include "apps/wrf.h"
#include "arch/configs.h"

namespace ctesim::apps {
namespace {

const arch::MachineModel& cte() {
  static const auto m = arch::cte_arm();
  return m;
}

const arch::MachineModel& mn4() {
  static const auto m = arch::marenostrum4();
  return m;
}

// ---------------------------------------------------------------- Alya --

TEST(Alya, Needs12CteNodes) {
  EXPECT_EQ(alya_min_nodes(cte()), 12);
  EXPECT_LE(alya_min_nodes(mn4()), 4);
  EXPECT_FALSE(run_alya(cte(), 11).fits_memory);
}

TEST(Alya, TimeStepRatioNear3p4) {
  // "For runs between 12 and 16 nodes, CTE-Arm is consistently 3.4x
  // slower than MareNostrum 4." (Fig. 8)
  for (int nodes : {12, 16}) {
    const auto a = run_alya(cte(), nodes);
    const auto b = run_alya(mn4(), nodes);
    EXPECT_NEAR(a.time_per_step / b.time_per_step, 3.4, 0.25) << nodes;
  }
}

TEST(Alya, AssemblyRatioNear4p96At12Nodes) {
  const auto a = run_alya(cte(), 12);
  const auto b = run_alya(mn4(), 12);
  EXPECT_NEAR(a.assembly_per_step / b.assembly_per_step, 4.96, 0.4);
}

TEST(Alya, SolverRatioNear1p79At12Nodes) {
  const auto a = run_alya(cte(), 12);
  const auto b = run_alya(mn4(), 12);
  EXPECT_NEAR(a.solver_per_step / b.solver_per_step, 1.79, 0.2);
}

TEST(Alya, CrossoverNear44Nodes) {
  // "The run with 44 A64FX nodes achieves the same elapsed time [as] 12
  // MareNostrum 4 nodes."
  const double target = run_alya(mn4(), 12).time_per_step;
  EXPECT_GT(run_alya(cte(), 36).time_per_step, target);
  EXPECT_LT(run_alya(cte(), 52).time_per_step, target);
}

TEST(Alya, AssemblyCrossoverNear62Nodes) {
  const double target = run_alya(mn4(), 12).assembly_per_step;
  EXPECT_GT(run_alya(cte(), 52).assembly_per_step, target);
  EXPECT_LT(run_alya(cte(), 72).assembly_per_step, target);
}

TEST(Alya, StrongScalingMonotone) {
  double prev = 1e30;
  for (int nodes : {12, 16, 24, 44, 78}) {
    const double t = run_alya(cte(), nodes).time_per_step;
    EXPECT_LT(t, prev);
    prev = t;
  }
}

// ---------------------------------------------------------------- NEMO --

TEST(Nemo, Needs8CteNodes) {
  EXPECT_EQ(nemo_min_nodes(cte()), 8);
  EXPECT_EQ(nemo_min_nodes(mn4()), 1);
}

TEST(Nemo, MareNostrumFasterBy1p7) {
  // "The performance of MareNostrum 4 is between 1.70x and 1.79x higher."
  for (int nodes : {8, 16, 24}) {
    const auto a = run_nemo(cte(), nodes);
    const auto b = run_nemo(mn4(), nodes);
    const double ratio = a.total_time / b.total_time;
    EXPECT_GT(ratio, 1.60) << nodes;
    EXPECT_LT(ratio, 1.90) << nodes;
  }
}

TEST(Nemo, CrossoverNear48CteVs27Mn4) {
  const double target = run_nemo(mn4(), 27).total_time;
  EXPECT_GT(run_nemo(cte(), 40).total_time, target);
  EXPECT_LT(run_nemo(cte(), 56).total_time, target);
}

TEST(Nemo, ScalingFlattensBeyond128Nodes) {
  // "the scalability on CTE-Arm flattens at around 128 nodes (problem
  // size too small for the number of nodes)": parallel efficiency
  // relative to the 8-node baseline is high at small scale and has
  // degraded substantially by 192 nodes.
  const double t8 = run_nemo(cte(), 8).total_time;
  const double t16 = run_nemo(cte(), 16).total_time;
  const double t192 = run_nemo(cte(), 192).total_time;
  const double eff16 = (t8 / t16) / 2.0;
  const double eff192 = (t8 / t192) / 24.0;
  EXPECT_GT(eff16, 0.90);
  EXPECT_LT(eff192, 0.72);
}

// ------------------------------------------------------------- Gromacs --

TEST(Gromacs, SingleNodeSlowdown) {
  // 6 cores: 3.48x; full node: 3.10x (Fig. 12).
  const auto a6 = run_gromacs(cte(), 1);
  const auto b6 = run_gromacs(mn4(), 1);
  EXPECT_NEAR(a6.days_per_ns / b6.days_per_ns, 3.48, 0.35);
  const auto a48 = run_gromacs(cte(), 8);
  const auto b48 = run_gromacs(mn4(), 8);
  EXPECT_NEAR(a48.days_per_ns / b48.days_per_ns, 3.10, 0.3);
}

TEST(Gromacs, GapNarrowsAcrossNodes) {
  // Fig. 13 / Table IV: slowdown shrinks from ~3.1x to ~1.5-1.9x.
  const double r1 = run_gromacs(cte(), 8).days_per_ns /
                    run_gromacs(mn4(), 8).days_per_ns;
  const double r144 = run_gromacs(cte(), 144 * 8).days_per_ns /
                      run_gromacs(mn4(), 144 * 8).days_per_ns;
  EXPECT_LT(r144, r1 - 0.5);
  EXPECT_LT(r144, 2.3);
  EXPECT_GT(r144, 1.3);
}

TEST(Gromacs, SixteenRankAnomaly) {
  // "the run with 16 MPI processes performs unexpectedly bad in both
  // machines" — and 12 ranks x 8 threads recovers the trend.
  for (const auto* machine : {&cte(), &mn4()}) {
    const auto r8 = run_gromacs(*machine, 8);
    const auto r16 = run_gromacs(*machine, 16);
    const auto r32 = run_gromacs(*machine, 32);
    // 16 ranks is anomalously close to (or worse than) 8 ranks' rate
    // instead of halving it.
    EXPECT_GT(r16.days_per_ns, 0.7 * r8.days_per_ns) << machine->name;
    // The trend resumes at 32 ranks.
    EXPECT_LT(r32.days_per_ns, 0.5 * r16.days_per_ns) << machine->name;
    // The alternative 12x8 layout sits on the trend (per paper).
    GromacsConfig alt;
    alt.threads_per_rank = 8;
    alt.ranks_per_node = 6;
    const auto r12x8 = run_gromacs(*machine, 12, alt);
    EXPECT_LT(r12x8.days_per_ns, r16.days_per_ns) << machine->name;
  }
}

TEST(Gromacs, HybridLayoutUsesWholeNodes) {
  const auto r = run_gromacs(cte(), 32);  // 32 ranks x 6 threads
  EXPECT_EQ(r.nodes, 4);
  EXPECT_EQ(r.cores, 192);
}

// ------------------------------------------------------------- OpenIFS --

TEST(OpenIfs, SingleNodeSlowdowns) {
  // 8 ranks: 3.72x; full node: 3.28x (Fig. 14).
  const auto a8 = run_openifs_ranks(cte(), 8);
  const auto b8 = run_openifs_ranks(mn4(), 8);
  EXPECT_NEAR(a8.seconds_per_day / b8.seconds_per_day, 3.72, 0.4);
  const auto a48 = run_openifs_ranks(cte(), 48);
  const auto b48 = run_openifs_ranks(mn4(), 48);
  EXPECT_NEAR(a48.seconds_per_day / b48.seconds_per_day, 3.28, 0.35);
}

TEST(OpenIfs, MultiNodeNeeds32CteNodes) {
  OpenIfsConfig config;
  config.input = tc0511l91();
  EXPECT_EQ(openifs_min_nodes(cte(), config), 32);
  EXPECT_FALSE(run_openifs_nodes(cte(), 24, config).fits_memory);
}

TEST(OpenIfs, MultiNodeSlowdownNarrows) {
  // 32 nodes: 3.55x; 128 nodes: 2.56x (Fig. 15).
  OpenIfsConfig config;
  config.input = tc0511l91();
  const double r32 = run_openifs_nodes(cte(), 32, config).seconds_per_day /
                     run_openifs_nodes(mn4(), 32, config).seconds_per_day;
  const double r128 = run_openifs_nodes(cte(), 128, config).seconds_per_day /
                      run_openifs_nodes(mn4(), 128, config).seconds_per_day;
  EXPECT_NEAR(r32, 3.55, 0.45);
  EXPECT_NEAR(r128, 2.56, 0.35);
  EXPECT_LT(r128, r32);
}

// ----------------------------------------------------------------- WRF --

TEST(Wrf, SlowdownNear2p2) {
  // 1 node: 2.16x; 64 nodes: 2.23x (Fig. 16).
  const double r1 =
      run_wrf(cte(), 1).total_time / run_wrf(mn4(), 1).total_time;
  const double r64 =
      run_wrf(cte(), 64).total_time / run_wrf(mn4(), 64).total_time;
  EXPECT_NEAR(r1, 2.16, 0.2);
  EXPECT_NEAR(r64, 2.23, 0.35);
}

TEST(Wrf, IoCostsLittle) {
  // "there is little difference in time between the runs that enable IO
  // and the runs that do not, giving the runs with IO disabled a slight
  // advantage."
  WrfConfig with_io;
  WrfConfig without_io;
  without_io.io_enabled = false;
  for (int nodes : {1, 16}) {
    const auto on = run_wrf(cte(), nodes, with_io);
    const auto off = run_wrf(cte(), nodes, without_io);
    EXPECT_GT(on.total_time, off.total_time) << nodes;
    EXPECT_LT(on.total_time, 1.15 * off.total_time) << nodes;
  }
}

TEST(Wrf, MareNostrumAlwaysAhead) {
  for (int nodes : {1, 4, 16, 64}) {
    EXPECT_GT(run_wrf(cte(), nodes).total_time,
              run_wrf(mn4(), nodes).total_time)
        << nodes;
  }
}

}  // namespace
}  // namespace ctesim::apps
