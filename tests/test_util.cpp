// Unit tests for util: rng, units, stats, cli, csv, contracts.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/check.h"
#include "util/cli.h"
#include "util/csv.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/units.h"

namespace ctesim {
namespace {

TEST(Check, ExpectsThrowsContractError) {
  auto bad = [] { CTESIM_EXPECTS(1 == 2); };
  EXPECT_THROW(bad(), ContractError);
  auto good = [] { CTESIM_EXPECTS(1 == 1); };
  EXPECT_NO_THROW(good());
}

TEST(Rng, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(3, 10);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 10);
    saw_lo |= v == 3;
    saw_hi |= v == 10;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMoments) {
  Rng rng(11);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.add(rng.normal(5.0, 2.0));
  EXPECT_NEAR(stats.mean(), 5.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.05);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(42);
  Rng child = parent.split();
  // Child continues differently from the parent.
  EXPECT_NE(parent.next_u64(), child.next_u64());
}

TEST(Units, BytesBinary) {
  EXPECT_EQ(units::format_bytes_binary(256), "256 B");
  EXPECT_EQ(units::format_bytes_binary(1024), "1.00 KiB");
  EXPECT_EQ(units::format_bytes_binary(1 << 20), "1.00 MiB");
}

TEST(Units, Bandwidth) {
  EXPECT_EQ(units::format_bandwidth(862.6e9), "862.60 GB/s");
  EXPECT_EQ(units::format_bandwidth(6.8e9), "6.80 GB/s");
}

TEST(Units, Flops) {
  EXPECT_EQ(units::format_flops(70.40e9), "70.40 GFlop/s");
  EXPECT_EQ(units::format_flops(3379.2e9), "3.38 TFlop/s");
}

TEST(Units, Seconds) {
  EXPECT_EQ(units::format_seconds(1.5), "1.500 s");
  EXPECT_EQ(units::format_seconds(2.5e-3), "2.500 ms");
  EXPECT_EQ(units::format_seconds(3.0e-6), "3.000 us");
}

TEST(Units, ParseSize) {
  std::uint64_t v = 0;
  EXPECT_TRUE(units::parse_size("256", &v));
  EXPECT_EQ(v, 256u);
  EXPECT_TRUE(units::parse_size("4k", &v));
  EXPECT_EQ(v, 4096u);
  EXPECT_TRUE(units::parse_size("2MB", &v));
  EXPECT_EQ(v, 2u << 20);
  EXPECT_TRUE(units::parse_size("1G", &v));
  EXPECT_EQ(v, 1u << 30);
  EXPECT_FALSE(units::parse_size("", &v));
  EXPECT_FALSE(units::parse_size("12x", &v));
  EXPECT_FALSE(units::parse_size("k12", &v));
}

TEST(Stats, RunningStatsBasics) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(Stats, HistogramBinsAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(9.5);
  h.add(-100.0);  // clamps to first bin
  h.add(100.0);   // clamps to last bin
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(9), 2u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_DOUBLE_EQ(h.bin_lo(1), 1.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(1), 2.0);
}

TEST(Stats, HistogramDetectsBimodality) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 40; ++i) h.add(2.5);
  for (int i = 0; i < 40; ++i) h.add(7.5);
  for (int i = 0; i < 5; ++i) h.add(5.0);
  EXPECT_EQ(h.modes(0.2), 2);
  Histogram uni(0.0, 10.0, 10);
  for (int i = 0; i < 100; ++i) uni.add(5.0);
  EXPECT_EQ(uni.modes(0.2), 1);
}

TEST(Stats, Percentile) {
  std::vector<double> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 5.5);
}

TEST(Cli, ParsesTypedOptions) {
  std::int64_t nodes = 4;
  double frac = 0.5;
  std::string name = "default";
  bool verbose = false;
  Cli cli("prog", "test");
  cli.option("nodes", &nodes, "node count")
      .option("frac", &frac, "fraction")
      .option("name", &name, "label")
      .flag("verbose", &verbose, "chatty");
  const char* argv[] = {"prog", "--nodes=16", "--frac", "0.25",
                        "--name=cte", "--verbose"};
  EXPECT_TRUE(cli.parse(6, argv));
  EXPECT_EQ(nodes, 16);
  EXPECT_DOUBLE_EQ(frac, 0.25);
  EXPECT_EQ(name, "cte");
  EXPECT_TRUE(verbose);
}

TEST(Cli, RejectsUnknownAndMalformed) {
  std::int64_t n = 0;
  Cli cli("prog", "test");
  cli.option("n", &n, "num");
  const char* bad1[] = {"prog", "--nope=1"};
  EXPECT_FALSE(cli.parse(2, bad1));
  const char* bad2[] = {"prog", "--n=abc"};
  EXPECT_FALSE(cli.parse(2, bad2));
}

TEST(Csv, WritesEscapedRows) {
  const std::string path = ::testing::TempDir() + "ctesim_csv_test.csv";
  {
    CsvWriter csv(path, {"a", "b"});
    csv.row(std::vector<std::string>{"plain", "with,comma"});
    csv.row(std::vector<double>{1.5, 2.0});
  }
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_EQ(ss.str(), "a,b\nplain,\"with,comma\"\n1.5,2\n");
  std::remove(path.c_str());
}

TEST(Csv, EscapeQuotes) {
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
}

TEST(Csv, ReaderRoundTripsWriterOutput) {
  const std::string path = ::testing::TempDir() + "ctesim_csv_rw_test.csv";
  {
    CsvWriter csv(path, {"name", "value"});
    csv.row(std::vector<std::string>{"with,comma", "1.5"});
    csv.row(std::vector<std::string>{"say \"hi\"", "-2"});
  }
  CsvReader reader(path);
  std::remove(path.c_str());
  ASSERT_EQ(reader.header(),
            (std::vector<std::string>{"name", "value"}));
  ASSERT_EQ(reader.rows(), 2u);
  EXPECT_TRUE(reader.has_column("value"));
  EXPECT_FALSE(reader.has_column("nope"));
  EXPECT_EQ(reader.cell(0, "name"), "with,comma");
  EXPECT_EQ(reader.cell(1, 0), "say \"hi\"");
  EXPECT_DOUBLE_EQ(reader.number(0, "value"), 1.5);
  EXPECT_DOUBLE_EQ(reader.number(1, "value"), -2.0);
  EXPECT_THROW(reader.number(0, "name"), std::runtime_error);
  EXPECT_THROW(reader.cell(0, "nope"), std::runtime_error);
}

TEST(Csv, ReaderParsesQuotedFields) {
  const auto fields = CsvReader::parse_line("a,\"b,c\",\"d\"\"e\",");
  ASSERT_EQ(fields.size(), 4u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[1], "b,c");
  EXPECT_EQ(fields[2], "d\"e");
  EXPECT_EQ(fields[3], "");
}

TEST(Csv, ReaderRejectsMissingAndRaggedFiles) {
  EXPECT_THROW(CsvReader("/nonexistent/nope.csv"), std::runtime_error);
  const std::string path = ::testing::TempDir() + "ctesim_csv_bad_test.csv";
  {
    std::ofstream out(path);
    out << "a,b\n1,2,3\n";
  }
  EXPECT_THROW(CsvReader reader(path), std::runtime_error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ctesim
