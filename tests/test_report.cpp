// Tests for the reporting layer: tables, charts, heatmaps.
#include <gtest/gtest.h>

#include <sstream>

#include "report/plot.h"
#include "report/table.h"
#include "util/check.h"

namespace ctesim::report {
namespace {

TEST(TableTest, AlignsColumnsAndRows) {
  Table t("demo", {"name", "value"});
  t.row({"alpha", "1"});
  t.row({"b", "22222"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("== demo =="), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22222"), std::string::npos);
  // Two data lines + header + rule + title.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 5);
}

TEST(TableTest, NumericRowFormatsWithPrecision) {
  Table t("", {"label", "x", "y"});
  t.row("p", {1.23456, 2.0}, 3);
  EXPECT_EQ(t.cell(0, 1), "1.235");
  EXPECT_EQ(t.cell(0, 2), "2.000");
}

TEST(TableTest, RejectsMismatchedRow) {
  Table t("", {"a", "b"});
  EXPECT_THROW(t.row({"only-one"}), ContractError);
  EXPECT_THROW(t.row("label", {1.0, 2.0}), ContractError);
}

TEST(TableTest, MarkdownOutput) {
  Table t("md", {"k", "v"});
  t.row({"x", "1"});
  std::ostringstream os;
  t.print_markdown(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("### md"), std::string::npos);
  EXPECT_NE(out.find("| k | v |"), std::string::npos);
  EXPECT_NE(out.find("| --- | ---: |"), std::string::npos);
  EXPECT_NE(out.find("| x | 1 |"), std::string::npos);
}

TEST(Fixed, FormatsDoubles) {
  EXPECT_EQ(fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fixed(2.0, 0), "2");
}

TEST(LineChartTest, RendersSeriesAndLegend) {
  LineChart chart("scaling", 40, 10);
  chart.set_axis_labels("nodes", "time");
  chart.series("fast", {1, 2, 4}, {4, 2, 1});
  chart.series("slow", {1, 2, 4}, {8, 4, 2});
  std::ostringstream os;
  chart.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("-- scaling --"), std::string::npos);
  EXPECT_NE(out.find("o = fast"), std::string::npos);
  EXPECT_NE(out.find("x = slow"), std::string::npos);
  EXPECT_NE(out.find("nodes"), std::string::npos);
  // Markers appear on the canvas.
  EXPECT_NE(out.find('o'), std::string::npos);
}

TEST(LineChartTest, LogAxesLabelled) {
  LineChart chart("log", 40, 8);
  chart.set_log_x(true);
  chart.set_log_y(true);
  chart.series("s", {1, 10, 100}, {1, 100, 10000});
  std::ostringstream os;
  chart.print(os);
  EXPECT_NE(os.str().find("log scale"), std::string::npos);
  EXPECT_NE(os.str().find("(log)"), std::string::npos);
}

TEST(LineChartTest, EmptyChartDoesNotCrash) {
  LineChart chart("empty", 40, 8);
  std::ostringstream os;
  chart.print(os);
  EXPECT_NE(os.str().find("(no data)"), std::string::npos);
}

TEST(LineChartTest, RejectsMismatchedSeries) {
  LineChart chart("bad", 40, 8);
  EXPECT_THROW(chart.series("s", {1, 2}, {1}), ContractError);
}

TEST(HeatmapTest, ShadesByValue) {
  Heatmap map("m", 2, 2);
  map.set(0, 0, 0.0);
  map.set(0, 1, 1.0);
  map.set(1, 0, 0.5);
  map.set(1, 1, 1.0);
  EXPECT_DOUBLE_EQ(map.get(1, 0), 0.5);
  std::ostringstream os;
  map.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find('@'), std::string::npos);  // the max cell
  EXPECT_NE(out.find(' '), std::string::npos);  // the min cell
}

TEST(HeatmapTest, PoolsLargeMatrices) {
  Heatmap map("big", 192, 192);
  map.set(191, 191, 5.0);
  std::ostringstream os;
  map.print(os, 96);
  const std::string out = os.str();
  EXPECT_NE(out.find("max-pooled"), std::string::npos);
  // 96 output rows of 96 cols each between '|' guards.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 2 + 96);
}

TEST(HeatmapTest, BoundsChecked) {
  Heatmap map("m", 2, 3);
  EXPECT_THROW(map.set(2, 0, 1.0), ContractError);
  EXPECT_THROW(map.get(0, 3), ContractError);
}

}  // namespace
}  // namespace ctesim::report
