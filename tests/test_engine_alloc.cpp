// Allocation accounting for the DES hot path. This binary replaces the
// global operator new/delete with counting versions, which makes the
// acceptance criterion of the engine rebuild directly testable: a
// steady-state schedule→dispatch cycle (closures within the InlineFunction
// SBO bound) and a steady-state spawn→resume→destroy cycle (frames within
// the pool's bucket range) perform ZERO heap allocations.
//
// Also home of the incremental-reaping regression test: 100k short
// processes through one engine must keep the tracked-process table O(live),
// not O(ever spawned).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

#include "core/engine.h"
#include "core/frame_pool.h"
#include "core/task.h"
#include "util/inline_function.h"

namespace {

std::atomic<std::uint64_t> g_allocations{0};

}  // namespace

// Counting global allocator. Defined once for this whole test binary; every
// path to the heap — std::function-style spills, vector growth, coroutine
// frames that miss the pool — lands here and is counted.
void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace ctesim::sim {
namespace {

std::uint64_t allocations() {
  return g_allocations.load(std::memory_order_relaxed);
}

TEST(EngineAlloc, SteadyStateScheduleDispatchIsAllocationFree) {
  Engine engine;
  std::uint64_t acc = 0;
  constexpr int kBatch = 256;

  // Warm-up: sizes the event-queue array once. Steady state starts after.
  for (int i = 0; i < kBatch; ++i) {
    engine.schedule_in(i, [&acc] { ++acc; });
  }
  engine.run();

  const auto spills_before =
      util::inline_function_spill_count().load(std::memory_order_relaxed);
  const auto before = allocations();
  for (int round = 0; round < 16; ++round) {
    for (int i = 0; i < kBatch; ++i) {
      engine.schedule_in(i + 1, [&acc] { ++acc; });
    }
    engine.run();
  }
  const auto after = allocations();
  const auto spills_after =
      util::inline_function_spill_count().load(std::memory_order_relaxed);

  EXPECT_EQ(after - before, 0u)
      << "schedule→dispatch allocated on the steady-state hot path";
  EXPECT_EQ(spills_after, spills_before)
      << "a small closure spilled the InlineFunction SBO";
  EXPECT_EQ(acc, static_cast<std::uint64_t>(kBatch) * 17);
}

Task<> short_process(Engine& engine, std::uint64_t* acc) {
  co_await engine.delay(1);
  ++*acc;
}

TEST(EngineAlloc, SteadyStateSpawnResumeIsAllocationFree) {
  Engine engine;
  std::uint64_t acc = 0;
  constexpr int kProcs = 64;

  // Warm-up: fills the frame pool's free lists and sizes the process table
  // and event queue. Two rounds, because a round's finished frames are only
  // swept back to the pool when the *next* round crosses the reap
  // threshold — steady state begins at round three.
  for (int round = 0; round < 2; ++round) {
    for (int i = 0; i < kProcs; ++i) {
      engine.spawn(short_process(engine, &acc));
    }
    engine.run();
  }

  const auto before = allocations();
  for (int round = 0; round < 16; ++round) {
    for (int i = 0; i < kProcs; ++i) {
      engine.spawn(short_process(engine, &acc));
    }
    engine.run();
  }
  const auto after = allocations();

  EXPECT_EQ(after - before, 0u)
      << "spawn→resume→destroy allocated on the steady-state hot path";
  EXPECT_EQ(acc, static_cast<std::uint64_t>(kProcs) * 18);
}

TEST(EngineAlloc, FramePoolRecyclesAcrossEngines) {
  std::uint64_t acc = 0;
  {
    Engine engine;
    for (int i = 0; i < 32; ++i) engine.spawn(short_process(engine, &acc));
    engine.run();
  }
  const auto warm = frame_pool::stats();
  {
    Engine engine;
    for (int i = 0; i < 32; ++i) engine.spawn(short_process(engine, &acc));
    engine.run();
  }
  const auto reused = frame_pool::stats();
  EXPECT_GT(reused.pool_hits, warm.pool_hits)
      << "second wave of identical frames should come from the free lists";
  EXPECT_EQ(reused.pool_misses, warm.pool_misses)
      << "second wave should not have needed any fresh blocks";
  EXPECT_EQ(reused.live, warm.live)
      << "all frames must be returned once their engine is gone";
}

Task<> spawner(Engine& engine, int total, std::uint64_t* acc,
               std::size_t* max_tracked) {
  for (int i = 0; i < total; ++i) {
    engine.spawn(short_process(engine, acc));
    if (engine.tracked_processes() > *max_tracked) {
      *max_tracked = engine.tracked_processes();
    }
    co_await engine.delay(1);
  }
}

TEST(EngineAlloc, HundredThousandShortProcessesStayBounded) {
  // Regression test for the pre-reaping behaviour, where processes_ (and
  // with it unfinished_processes()/check_failures()) grew O(all ever
  // spawned) — a real leak for the long-running server. With incremental
  // reaping the table tracks the live population only.
  Engine engine;
  std::uint64_t acc = 0;
  std::size_t max_tracked = 0;
  constexpr int kTotal = 100000;
  engine.spawn(spawner(engine, kTotal, &acc, &max_tracked));
  engine.run();
  EXPECT_EQ(acc, static_cast<std::uint64_t>(kTotal));
  EXPECT_EQ(engine.unfinished_processes(), 0u);
  // ~2 processes are ever live at once; the reap threshold floor is 64, so
  // anything near kTotal means reaping broke. 256 leaves generous slack.
  EXPECT_LT(max_tracked, 256u);
  EXPECT_LT(engine.tracked_processes(), 256u);
  EXPECT_GE(engine.events_processed(), static_cast<std::uint64_t>(kTotal));
}

}  // namespace
}  // namespace ctesim::sim
