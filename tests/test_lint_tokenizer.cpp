// Unit tests for the ctesim-lint single-pass tokenizer and the layering
// checker (tools/ctesim_lint). The tokenizer is the foundation every lint
// rule stands on, so the cases the old masker got wrong — raw strings,
// line-spliced comments, digit separators, literals containing "==" — are
// pinned here explicitly.
#include "rules.h"
#include "tokenizer.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace lint = ctesim::lint;

namespace {

std::vector<lint::Token> of_kind(const std::vector<lint::Token>& toks,
                                 lint::Tok kind) {
  std::vector<lint::Token> out;
  for (const auto& t : toks) {
    if (t.kind == kind) out.push_back(t);
  }
  return out;
}

bool has_ident(const std::vector<lint::Token>& toks, const std::string& s) {
  for (const auto& t : toks) {
    if (t.kind == lint::Tok::kIdentifier && t.text == s) return true;
  }
  return false;
}

TEST(LintTokenizer, CommentsProduceNoTokens) {
  const auto toks = lint::tokenize(
      "// line comment with rand() and x == 1.5\n"
      "/* block comment\n   spanning lines == 2.5 */\n"
      "int x;\n");
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_EQ(toks[0].text, "int");
  EXPECT_EQ(toks[1].text, "x");
  EXPECT_EQ(toks[2].text, ";");
  EXPECT_EQ(toks[0].line, 4);  // the block comment spans lines 2-3
}

TEST(LintTokenizer, LineSplicedCommentConsumesNextPhysicalLine) {
  // The backslash-newline continues the line comment, so rand() on the
  // second physical line is still commentary — the masker-era scanner
  // got exactly this wrong.
  const auto toks = lint::tokenize(
      "// continued \\\n rand(); x == 1.5;\nint y;\n");
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_EQ(toks[0].text, "int");
  EXPECT_EQ(toks[0].line, 3);
}

TEST(LintTokenizer, SpliceInsideIdentifierAndPreprocessor) {
  const auto toks = lint::tokenize("int val\\\nue = 1;\n#def\\\nine FOO 2\n");
  EXPECT_TRUE(has_ident(toks, "value"));
  EXPECT_TRUE(has_ident(toks, "define"));
  // Physical line numbers survive the splice.
  for (const auto& t : toks) {
    if (t.text == "define") EXPECT_EQ(t.line, 3);
  }
}

TEST(LintTokenizer, StringLiteralsSwallowOperators) {
  const auto toks =
      lint::tokenize("const char* s = \"a == 1.5 // not a comment\";\n");
  const auto strings = of_kind(toks, lint::Tok::kString);
  ASSERT_EQ(strings.size(), 1u);
  EXPECT_EQ(strings[0].text, "a == 1.5 // not a comment");
  // No kNumber or "==" punct leaked out of the literal.
  EXPECT_TRUE(of_kind(toks, lint::Tok::kNumber).empty());
  for (const auto& t : of_kind(toks, lint::Tok::kPunct)) {
    EXPECT_NE(t.text, "==");
  }
}

TEST(LintTokenizer, RawStringsAreVerbatim) {
  // )x" inside must not close the literal; the )json" delimiter does.
  const auto toks = lint::tokenize(
      "auto j = R\"json({\"eq\": \"x == 1.5\", \"paren\": \")x\\\"\"})json\";\n"
      "int after;\n");
  const auto strings = of_kind(toks, lint::Tok::kString);
  ASSERT_EQ(strings.size(), 1u);
  EXPECT_NE(strings[0].text.find("x == 1.5"), std::string::npos);
  EXPECT_TRUE(has_ident(toks, "after"));
  for (const auto& t : of_kind(toks, lint::Tok::kPunct)) {
    EXPECT_NE(t.text, "==");
  }
}

TEST(LintTokenizer, RawStringLineNumbersAdvance) {
  const auto toks =
      lint::tokenize("auto s = R\"(line1\nline2\nline3)\";\nint z;\n");
  for (const auto& t : toks) {
    if (t.text == "z") EXPECT_EQ(t.line, 4);
  }
}

TEST(LintTokenizer, EncodingPrefixesAreStrings) {
  const auto toks = lint::tokenize(
      "auto a = u8\"x == 1\"; auto b = L\"y == 2\"; auto c = u\"z\";\n");
  EXPECT_EQ(of_kind(toks, lint::Tok::kString).size(), 3u);
  EXPECT_TRUE(of_kind(toks, lint::Tok::kNumber).empty());
}

TEST(LintTokenizer, DigitSeparatorsStayOneNumber) {
  // The masker treated the ' in 1'000 as opening a char literal and
  // swallowed the rest of the line.
  const auto toks = lint::tokenize("long n = 1'000'000; int m = 2;\n");
  const auto nums = of_kind(toks, lint::Tok::kNumber);
  ASSERT_EQ(nums.size(), 2u);
  EXPECT_EQ(nums[0].text, "1'000'000");
  EXPECT_EQ(nums[1].text, "2");
}

TEST(LintTokenizer, FloatLiteralClassification) {
  EXPECT_TRUE(lint::is_float_literal("1.5"));
  EXPECT_TRUE(lint::is_float_literal(".5"));
  EXPECT_TRUE(lint::is_float_literal("1."));
  EXPECT_TRUE(lint::is_float_literal("1e-9"));
  EXPECT_TRUE(lint::is_float_literal("0x1.8p1"));
  EXPECT_TRUE(lint::is_float_literal("0x1p3"));
  EXPECT_FALSE(lint::is_float_literal("42"));
  EXPECT_FALSE(lint::is_float_literal("0x2a"));
  EXPECT_FALSE(lint::is_float_literal("1'000'000"));
}

TEST(LintTokenizer, ZeroLiteralExemption) {
  EXPECT_TRUE(lint::is_zero_literal("0.0"));
  EXPECT_TRUE(lint::is_zero_literal(".0"));
  EXPECT_TRUE(lint::is_zero_literal("0."));
  EXPECT_TRUE(lint::is_zero_literal("0e9"));
  EXPECT_TRUE(lint::is_zero_literal("0.00f"));
  EXPECT_FALSE(lint::is_zero_literal("1.5"));
  EXPECT_FALSE(lint::is_zero_literal("1e-9"));
  EXPECT_FALSE(lint::is_zero_literal("0x1p3"));
  EXPECT_FALSE(lint::is_zero_literal("42"));  // not a float literal at all
}

TEST(LintTokenizer, ExponentSignsAndCharLiterals) {
  const auto toks = lint::tokenize("double d = 1.5e-3; char c = '\\'';\n");
  const auto nums = of_kind(toks, lint::Tok::kNumber);
  ASSERT_EQ(nums.size(), 1u);
  EXPECT_EQ(nums[0].text, "1.5e-3");
  const auto chars = of_kind(toks, lint::Tok::kCharLit);
  ASSERT_EQ(chars.size(), 1u);
  EXPECT_EQ(chars[0].text, "\\'");
}

TEST(LintTokenizer, HeaderNamesAndQuotedIncludes) {
  const auto toks = lint::tokenize(
      "#include <vector>\n#include \"server/cache.h\"\nint x;\n");
  const auto headers = of_kind(toks, lint::Tok::kHeaderName);
  ASSERT_EQ(headers.size(), 1u);
  EXPECT_EQ(headers[0].text, "vector");
  EXPECT_TRUE(headers[0].in_pp);
  const auto strings = of_kind(toks, lint::Tok::kString);
  ASSERT_EQ(strings.size(), 1u);
  EXPECT_EQ(strings[0].text, "server/cache.h");
  EXPECT_TRUE(strings[0].in_pp);
  // `<vector>` must not leak a '<' comparison into the stream.
  for (const auto& t : of_kind(toks, lint::Tok::kPunct)) {
    EXPECT_NE(t.text, "<");
  }
}

TEST(LintTokenizer, MaximalMunchPunctuation) {
  const auto toks = lint::tokenize("a >>= b; m<x<int>> v; p->q; s::t;\n");
  bool saw_shift_assign = false;
  bool saw_arrow = false;
  bool saw_scope = false;
  for (const auto& t : of_kind(toks, lint::Tok::kPunct)) {
    if (t.text == ">>=") saw_shift_assign = true;
    if (t.text == "->") saw_arrow = true;
    if (t.text == "::") saw_scope = true;
  }
  EXPECT_TRUE(saw_shift_assign);
  EXPECT_TRUE(saw_arrow);
  EXPECT_TRUE(saw_scope);
}

lint::SourceFile make_file(const std::string& path, const std::string& text) {
  lint::SourceFile f;
  f.path = path;
  f.in_src = path.find("/src/") != std::string::npos;
  f.tokens = lint::tokenize(text);
  return f;
}

TEST(LintLayering, BackEdgeIsRejectedAndForwardEdgeAccepted) {
  lint::LayerGraph graph;
  graph.deps["util"] = {};
  graph.deps["server"] = {"util"};
  graph.order = {"util", "server"};
  graph.line["util"] = 1;
  graph.line["server"] = 2;

  const std::vector<lint::SourceFile> files = {
      make_file("repo/src/server/ok.h", "#include \"util/strings.h\"\n"),
      make_file("repo/src/util/bad.h", "#include \"server/handler.h\"\n"),
  };
  const auto findings = lint::check_layering(files, graph, "layers.txt");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].file, "repo/src/util/bad.h");
  EXPECT_EQ(findings[0].rule, "layering");
  EXPECT_NE(findings[0].detail.find("may not depend on 'server'"),
            std::string::npos);
}

TEST(LintLayering, DeclaredCycleIsRejected) {
  lint::LayerGraph graph;
  graph.deps["a"] = {"b"};
  graph.deps["b"] = {"a"};
  graph.order = {"a", "b"};
  graph.line["a"] = 1;
  graph.line["b"] = 2;
  const auto findings = lint::check_layering({}, graph, "layers.txt");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings[0].detail.find("cycle"), std::string::npos);
}

TEST(LintLayering, UndeclaredSubsystemIsReported) {
  lint::LayerGraph graph;
  graph.deps["util"] = {};
  graph.order = {"util"};
  graph.line["util"] = 1;
  const std::vector<lint::SourceFile> files = {
      make_file("repo/src/rogue/orphan.h", "int x;\n"),
  };
  const auto findings = lint::check_layering(files, graph, "layers.txt");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings[0].detail.find("'rogue'"), std::string::npos);
}

TEST(LintRules, ZeroComparisonExemptButNonZeroFlagged) {
  const std::vector<lint::SourceFile> files = {
      make_file("repo/src/mem/f.cpp",
                "bool g(double r) { return r == 0.0 || r == 1.5; }\n"),
  };
  const auto findings = lint::run_rules(files);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "float-equality");
  EXPECT_NE(findings[0].detail.find("1.5"), std::string::npos);
}

TEST(LintRules, LockOrderInversionAcrossFiles) {
  const std::vector<lint::SourceFile> files = {
      make_file("repo/src/a/f.cpp",
                "void f() { util::MutexLock g1(alpha_); "
                "util::MutexLock g2(beta_); }\n"),
      make_file("repo/src/b/g.cpp",
                "void g() { util::MutexLock g1(beta_); "
                "util::MutexLock g2(alpha_); }\n"),
  };
  const auto findings = lint::run_rules(files);
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].rule, "lock-order");
  EXPECT_EQ(findings[1].rule, "lock-order");
}

}  // namespace
