// Tests for the logging facility.
#include <gtest/gtest.h>

#include "util/log.h"

namespace ctesim::log {
namespace {

class LogTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = threshold(); }
  void TearDown() override { set_threshold(saved_); }
  Level saved_ = Level::kWarn;
};

TEST_F(LogTest, ThresholdRoundTrips) {
  set_threshold(Level::kDebug);
  EXPECT_EQ(threshold(), Level::kDebug);
  set_threshold(Level::kError);
  EXPECT_EQ(threshold(), Level::kError);
}

TEST_F(LogTest, MacrosCompileAndStream) {
  set_threshold(Level::kOff);  // silence: we only exercise the paths
  CTESIM_DEBUG << "debug " << 1;
  CTESIM_INFO << "info " << 2.5;
  CTESIM_WARN << "warn " << "text";
  CTESIM_ERROR << "error " << 'c';
  SUCCEED();
}

TEST_F(LogTest, BelowThresholdShortCircuits) {
  // The macro must not evaluate the streamed expressions when filtered.
  set_threshold(Level::kError);
  int evaluations = 0;
  auto count = [&] {
    ++evaluations;
    return 42;
  };
  CTESIM_DEBUG << count();
  CTESIM_INFO << count();
  EXPECT_EQ(evaluations, 0);
  CTESIM_ERROR << count();
  EXPECT_EQ(evaluations, 1);
}

TEST_F(LogTest, LevelOrderingIsMonotone) {
  EXPECT_LT(Level::kDebug, Level::kInfo);
  EXPECT_LT(Level::kInfo, Level::kWarn);
  EXPECT_LT(Level::kWarn, Level::kError);
  EXPECT_LT(Level::kError, Level::kOff);
}

}  // namespace
}  // namespace ctesim::log
