// Cross-module integration tests: end-to-end properties of the whole
// simulator that no single module test covers.
#include <gtest/gtest.h>

#include <cmath>

#include "apps/alya.h"
#include "apps/wrf.h"
#include "arch/configs.h"
#include "arch/machine_io.h"
#include "hpcb/hpl.h"
#include "mem/stream_sim.h"
#include "roofline/kernel_library.h"
#include "simmpi/world.h"

namespace ctesim {
namespace {

TEST(Integration, MachineFileRoundTripPreservesExperimentResults) {
  // A machine serialized to text and parsed back must produce bit-equal
  // results in every layer that consumes it.
  const auto original = arch::cte_arm();
  const auto reloaded =
      arch::parse_machine_string(arch::machine_to_string(original));

  const mem::StreamSimulator s1(original);
  const mem::StreamSimulator s2(reloaded);
  EXPECT_DOUBLE_EQ(
      s1.omp_bandwidth(mem::StreamKernel::kTriad, 24, arch::Language::kC).value(),
      s2.omp_bandwidth(mem::StreamKernel::kTriad, 24, arch::Language::kC).value());

  hpcb::HplModel h1(original, hpcb::hpl_config_for(original));
  hpcb::HplModel h2(reloaded, hpcb::hpl_config_for(reloaded));
  EXPECT_DOUBLE_EQ(h1.run(16).gflops, h2.run(16).gflops);

  EXPECT_DOUBLE_EQ(apps::run_alya(original, 16).time_per_step,
                   apps::run_alya(reloaded, 16).time_per_step);
}

TEST(Integration, SimulatedCollectiveMatchesAnalyticRing) {
  // An allgather ring of P-1 uniform steps on identical links must take
  // P-1 times one sendrecv of the same size (zero jitter, uniform hops).
  mpi::WorldOptions options;
  options.machine = arch::marenostrum4();  // fat-tree: uniform 3-hop links
  options.network_jitter = 0.0;
  const int p = 5;
  mpi::World world(std::move(options),
                   mpi::Placement::per_node(arch::marenostrum4().node, p));
  const std::uint64_t bytes = 100 * 1024;
  const double t_ring = world.run([&](mpi::Rank& r) -> sim::Task<> {
    co_await r.allgather(bytes);
  });

  mpi::WorldOptions options2;
  options2.machine = arch::marenostrum4();
  options2.network_jitter = 0.0;
  mpi::World pair(std::move(options2),
                  mpi::Placement::per_node(arch::marenostrum4().node, p));
  const double t_one = pair.run([&](mpi::Rank& r) -> sim::Task<> {
    const int right = (r.id() + 1) % r.size();
    const int left = (r.id() - 1 + r.size()) % r.size();
    co_await r.sendrecv(right, bytes, left);
  });
  EXPECT_NEAR(t_ring, (p - 1) * t_one, 0.05 * t_ring);
}

TEST(Integration, PlacementGranularityPreservesComputeTotals) {
  // The same aggregate work split over per-node vs per-domain actors must
  // produce nearly the same makespan for a pure-compute workload (the
  // bandwidth-share model is granularity-consistent by design).
  const auto machine = arch::cte_arm();
  const double total_elems = 4.8e8;

  auto run_with = [&](mpi::Placement placement) {
    mpi::WorldOptions options;
    options.machine = machine;
    options.network_jitter = 0.0;
    const double elems = total_elems / placement.num_ranks();
    mpi::World world(std::move(options), std::move(placement));
    return world.run([elems](mpi::Rank& r) -> sim::Task<> {
      co_await r.compute(roofline::kernels::stream_triad(), elems);
    });
  };
  const double per_node = run_with(mpi::Placement::per_node(machine.node, 4));
  const double per_domain =
      run_with(mpi::Placement::per_domain(machine.node, 4));
  EXPECT_NEAR(per_node, per_domain, 0.02 * per_node);
}

TEST(Integration, JitterChangesSeedChangesTimings) {
  auto run_seeded = [&](std::uint64_t seed) {
    mpi::WorldOptions options;
    options.machine = arch::cte_arm();
    options.compute_jitter = 0.05;
    options.seed = seed;
    mpi::World world(std::move(options),
                     mpi::Placement::per_node(arch::cte_arm().node, 8));
    return world.run([](mpi::Rank& r) -> sim::Task<> {
      co_await r.compute(roofline::kernels::stream_triad(), 1e7);
      co_await r.barrier();
    });
  };
  EXPECT_NE(run_seeded(1), run_seeded(2));
  EXPECT_DOUBLE_EQ(run_seeded(3), run_seeded(3));
}

TEST(Integration, WeakNodeSlowsApplicationsPlacedOnIt) {
  // Fault injection must propagate through the MPI layer into workload
  // makespans: a run whose communication partner has a degraded receive
  // path finishes later.
  auto run_with_fault = [&](bool inject) {
    mpi::WorldOptions options;
    options.machine = arch::cte_arm();
    options.network_jitter = 0.0;
    mpi::World world(std::move(options),
                     mpi::Placement::per_node(arch::cte_arm().node, 2));
    if (inject) world.network().set_recv_degradation(1, 0.1);
    return world.run([](mpi::Rank& r) -> sim::Task<> {
      if (r.id() == 0) {
        co_await r.send(1, 8 << 20);
      } else {
        co_await r.recv(0);
      }
    });
  };
  EXPECT_GT(run_with_fault(true), 3.0 * run_with_fault(false));
}

TEST(Integration, TableIVOrderingHolds) {
  // The qualitative ranking of Table IV at 16 nodes: LINPACK favours
  // CTE-Arm; every application favours MN4; NEMO is the mildest app
  // slowdown and Alya the worst.
  const auto cte = arch::cte_arm();
  const auto mn4 = arch::marenostrum4();
  hpcb::HplModel hpl_cte(cte, hpcb::hpl_config_for(cte));
  hpcb::HplModel hpl_mn4(mn4, hpcb::hpl_config_for(mn4));
  EXPECT_GT(hpl_cte.run(16).gflops, hpl_mn4.run(16).gflops);

  const double alya = apps::run_alya(mn4, 16).time_per_step /
                      apps::run_alya(cte, 16).time_per_step;
  const double wrf =
      apps::run_wrf(mn4, 16).total_time / apps::run_wrf(cte, 16).total_time;
  EXPECT_LT(alya, 1.0);  // CTE slower
  EXPECT_LT(wrf, 1.0);
  EXPECT_LT(alya, wrf);  // Alya hit hardest, WRF milder (paper: 0.30 vs 0.46)
}

}  // namespace
}  // namespace ctesim
