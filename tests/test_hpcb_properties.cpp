// Property sweeps over the HPL/HPCG models plus the transpose kernel that
// backs the spectral transposition methodology.
#include <gtest/gtest.h>

#include "arch/configs.h"
#include "hpcb/hpcg.h"
#include "hpcb/hpl.h"
#include "kernels/transpose.h"
#include "util/rng.h"

namespace ctesim {
namespace {

class HplNodes : public ::testing::TestWithParam<int> {};

TEST_P(HplNodes, ThroughputGrowsAndEfficiencyShrinks) {
  const int nodes = GetParam();
  for (const auto& machine : {arch::cte_arm(), arch::marenostrum4()}) {
    hpcb::HplModel model(machine, hpcb::hpl_config_for(machine));
    const auto small = model.run(nodes);
    const auto big = model.run(nodes * 2);
    EXPECT_GT(big.gflops, small.gflops) << machine.name;
    EXPECT_LE(big.efficiency, small.efficiency + 1e-9) << machine.name;
    // Efficiency is a fraction; GFlop/s below aggregate peak.
    EXPECT_GT(small.efficiency, 0.0);
    EXPECT_LT(small.efficiency, 1.0);
    EXPECT_LT(small.gflops * 1e9, machine.node.peak_flops().value() * nodes);
  }
}

TEST_P(HplNodes, ProblemScalesWithMemory) {
  const int nodes = GetParam();
  const auto machine = arch::cte_arm();
  hpcb::HplModel model(machine, hpcb::hpl_config_for(machine));
  const auto a = model.run(nodes);
  const auto b = model.run(nodes * 4);
  // N ~ sqrt(memory): quadrupling nodes doubles N.
  EXPECT_NEAR(b.n / a.n, 2.0, 0.01);
}

INSTANTIATE_TEST_SUITE_P(Nodes, HplNodes, ::testing::Values(1, 4, 16, 48));

class HpcgNodes : public ::testing::TestWithParam<int> {};

TEST_P(HpcgNodes, PerNodeRateNearlyFlat) {
  const int nodes = GetParam();
  hpcb::HpcgModel model(arch::cte_arm());
  const auto one = model.run(1, hpcb::HpcgBuild::kOptimized);
  const auto many = model.run(nodes, hpcb::HpcgBuild::kOptimized);
  // HPCG weak-scales: per-node GFlop/s within a few percent of 1 node.
  EXPECT_NEAR(many.gflops_per_node / one.gflops_per_node, 1.0, 0.05);
}

TEST_P(HpcgNodes, OptimizedAlwaysAboveVanilla) {
  const int nodes = GetParam();
  for (const auto& machine : {arch::cte_arm(), arch::marenostrum4()}) {
    hpcb::HpcgModel model(machine);
    EXPECT_GT(model.run(nodes, hpcb::HpcgBuild::kOptimized).gflops,
              model.run(nodes, hpcb::HpcgBuild::kVanilla).gflops)
        << machine.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Nodes, HpcgNodes, ::testing::Values(2, 16, 192));

// ------------------------------------------------------------ transpose --

class TransposeShape
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {
};

TEST_P(TransposeShape, TransposeIsInvolution) {
  const auto [rows, cols] = GetParam();
  Rng rng(rows * 131 + cols);
  std::vector<double> m(rows * cols);
  for (auto& v : m) v = rng.uniform(-1, 1);
  std::vector<double> t, tt;
  kernels::transpose_blocked(m, rows, cols, t, 8);
  kernels::transpose_blocked(t, cols, rows, tt, 8);
  EXPECT_EQ(tt, m);
}

TEST_P(TransposeShape, PackUnpackRoundTripsEveryPartition) {
  const auto [rows, cols] = GetParam();
  Rng rng(rows + cols * 977);
  std::vector<double> m(rows * cols);
  for (auto& v : m) v = rng.uniform(-1, 1);
  for (std::size_t parts : {std::size_t{1}, std::size_t{2}, std::size_t{3},
                            cols}) {
    if (parts > cols) continue;
    std::vector<double> rebuilt(rows * cols, -999.0);
    for (std::size_t part = 0; part < parts; ++part) {
      std::vector<double> buffer;
      kernels::pack_columns(m, rows, cols, parts, part, buffer);
      kernels::unpack_columns(buffer, rows, cols, parts, part, rebuilt);
    }
    EXPECT_EQ(rebuilt, m) << parts << " parts";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TransposeShape,
    ::testing::Values(std::tuple<std::size_t, std::size_t>{1, 1},
                      std::tuple<std::size_t, std::size_t>{7, 5},
                      std::tuple<std::size_t, std::size_t>{32, 32},
                      std::tuple<std::size_t, std::size_t>{33, 65},
                      std::tuple<std::size_t, std::size_t>{128, 3}));

}  // namespace
}  // namespace ctesim
