// Tests for the power/energy subsystem: DVFS ladder, model validation,
// kernel-level attribution identities, and the energy accounting the batch
// layer threads through run_cluster — components summing to totals, the
// zero-coefficient and nominal-DVFS no-ops, cap enforcement at every trace
// sample, and the race-to-idle EDP shape the energy study reports.
#include <gtest/gtest.h>

#include <stdexcept>

#include "apps/wrf.h"
#include "arch/configs.h"
#include "batch/cluster.h"
#include "batch/metrics.h"
#include "batch/workload.h"
#include "power/attribution.h"
#include "power/power_model.h"
#include "roofline/kernel_library.h"

namespace ctesim::power {
namespace {

using batch::Job;
using batch::JobProfile;

arch::MachineModel tiny_machine() {
  arch::MachineModel m = arch::cte_arm();
  m.num_nodes = 4;
  m.interconnect.dims = {2, 2};
  return m;
}

Job fixed_job(int id, double arrival, int nodes, double walltime,
              double runtime) {
  Job job;
  job.id = id;
  job.arrival_s = arrival;
  job.nodes = nodes;
  job.walltime_s = walltime;
  job.fixed_runtime_s = runtime;
  job.profile = JobProfile{"fixed", {}, 0.0, 1, 0.0};
  return job;
}

/// A roofline-modeled job running `profile_name` on one node.
Job profiled_job(int id, double arrival, const char* profile_name,
                 int iterations, double walltime) {
  Job job;
  job.id = id;
  job.arrival_s = arrival;
  job.nodes = 1;
  job.walltime_s = walltime;
  job.profile = batch::profile_by_name(profile_name);
  job.profile.iterations = iterations;
  return job;
}

TEST(Dvfs, LadderIsNominalFirstThenStrictlyDecreasing) {
  const auto& states = dvfs_states();
  ASSERT_GE(states.size(), 2u);
  EXPECT_TRUE(states[0].nominal());
  EXPECT_DOUBLE_EQ(states[0].power_scale(), 1.0);
  for (std::size_t i = 1; i < states.size(); ++i) {
    EXPECT_LT(states[i].freq_scale, states[i - 1].freq_scale);
    EXPECT_LT(states[i].power_scale(), states[i - 1].power_scale());
    EXPECT_FALSE(states[i].nominal());
  }
  EXPECT_THROW(dvfs_state(-1), std::out_of_range);
  EXPECT_THROW(dvfs_state(static_cast<int>(states.size())),
               std::out_of_range);
}

TEST(Dvfs, ApplyScalesTheClockAndNothingElse) {
  const arch::MachineModel m = arch::cte_arm();
  const DvfsState& deep = dvfs_states().back();
  const arch::MachineModel scaled = apply_dvfs(m, deep);
  EXPECT_DOUBLE_EQ(scaled.node.core.freq_ghz,
                   m.node.core.freq_ghz * deep.freq_scale);
  EXPECT_EQ(scaled.num_nodes, m.num_nodes);
  EXPECT_DOUBLE_EQ(scaled.node.domain.peak_bw, m.node.domain.peak_bw);
  // Nominal is the exact identity.
  const arch::MachineModel same = apply_dvfs(m, dvfs_state(0));
  EXPECT_DOUBLE_EQ(same.node.core.freq_ghz, m.node.core.freq_ghz);
}

TEST(PowerModel, DefaultsValidateAndBadCoefficientsThrow) {
  const PowerModel pm = default_power(arch::cte_arm());
  EXPECT_NO_THROW(validate_or_throw(pm));
  EXPECT_FALSE(pm.zero());
  EXPECT_TRUE(PowerModel{}.zero());

  PowerModel bad = pm;
  bad.node_base = units::Watts{-1.0};
  EXPECT_THROW(validate_or_throw(bad), std::invalid_argument);
  bad = pm;
  bad.core_idle = bad.core_active + units::Watts{1.0};
  EXPECT_THROW(validate_or_throw(bad), std::invalid_argument);
}

TEST(PowerModel, NodeDrawMatchesTheComponentFormula) {
  const arch::MachineModel m = arch::cte_arm();  // 48 cores, 4 CMGs
  const PowerModel pm = default_power(m);
  const double expected_idle = m.node.core_count() * pm.core_idle.value() +
                               m.node.num_domains * pm.cmg_uncore.value() +
                               pm.node_base.value();
  EXPECT_DOUBLE_EQ(pm.node_idle(m.node).value(), expected_idle);

  const DvfsState& deep = dvfs_states().back();
  const double expected_active =
      m.node.core_count() * pm.core_active.value() * deep.power_scale() +
      m.node.num_domains * pm.cmg_uncore.value() + pm.node_base.value();
  EXPECT_DOUBLE_EQ(pm.node_active(m.node, deep).value(), expected_active);
  // Downclocking strictly lowers active draw but never below idle.
  EXPECT_LT(pm.node_active(m.node, deep).value(),
            pm.node_active(m.node, dvfs_state(0)).value());
  EXPECT_GT(pm.node_active(m.node, deep).value(),
            pm.node_idle(m.node).value());
}

TEST(Attribution, KernelComponentsSumToTotal) {
  const arch::MachineModel m = arch::cte_arm();
  const PowerModel pm = default_power(m);
  const roofline::ExecModel exec(m.node, arch::default_app_compiler(m));
  for (const auto& sig : {roofline::kernels::md_nonbonded(),
                          roofline::kernels::spmv_csr(),
                          roofline::kernels::stencil3d()}) {
    const auto b = exec.analyze(sig, 1e7, 12);
    for (const DvfsState& state : dvfs_states()) {
      const KernelEnergy e = attribute_kernel(b, 12, m.node, pm, state);
      EXPECT_DOUBLE_EQ(
          e.total_j.value(),
          e.core_j.value() + e.memory_j.value() + e.static_j.value());
      EXPECT_GT(e.total_j.value(), 0.0);
      EXPECT_DOUBLE_EQ(e.edp_js, e.total_j.value() * b.total_s);
      // Memory energy is traffic-proportional: DVFS must not move it.
      const KernelEnergy nominal =
          attribute_kernel(b, 12, m.node, pm, dvfs_state(0));
      EXPECT_DOUBLE_EQ(e.memory_j.value(), nominal.memory_j.value());
    }
  }
}

TEST(Attribution, JobDrawComponentsAndLinkEnergy) {
  const arch::MachineModel m = arch::cte_arm();
  const PowerModel pm = default_power(m);
  const DvfsState& nominal = dvfs_state(0);
  const JobDraw d = job_draw(m.node, pm, nominal, 1e12, 100.0, 0.25);
  EXPECT_DOUBLE_EQ(d.cpu_w.value(), pm.node_active(m.node, nominal).value());
  EXPECT_DOUBLE_EQ(d.mem_w.value(),
                   1e12 * pm.dram_energy_per_byte.value() / 100.0);
  EXPECT_DOUBLE_EQ(
      d.net_w.value(),
      0.25 * pm.links_per_node * pm.link_active.value());
  EXPECT_DOUBLE_EQ(d.total().value(),
                   d.cpu_w.value() + d.mem_w.value() + d.net_w.value());
  // Zero-runtime jobs must not divide by zero.
  const JobDraw none = job_draw(m.node, pm, nominal, 1e12, 0.0, 0.25);
  EXPECT_DOUBLE_EQ(none.mem_w.value(), 0.0);
  EXPECT_DOUBLE_EQ(
      link_energy(pm, 10.0).value(), 10.0 * pm.link_active.value());
}

TEST(Attribution, WrfPerKernelJoulesSumToJobTotal) {
  // The fig16_wrf energy table attributes the WRF proxy's two kernels
  // separately; attribution is linear in the breakdown, so the per-kernel
  // Joules must add up to attributing the whole job at once.
  const arch::MachineModel m = arch::cte_arm();
  const PowerModel pm = default_power(m);
  const roofline::ExecModel exec(m.node, arch::default_app_compiler(m));
  const int cores = m.node.core_count();
  const apps::WrfConfig wrf;
  const double points_per_node =
      static_cast<double>(wrf.grid_x) * wrf.grid_y * wrf.levels / 8.0;
  const auto bd =
      exec.analyze(apps::wrf_dynamics_kernel(wrf), points_per_node, cores);
  const auto bp =
      exec.analyze(apps::wrf_physics_kernel(wrf), points_per_node, cores);
  roofline::Breakdown job;
  job.compute_s = bd.compute_s + bp.compute_s;
  job.memory_s = bd.memory_s + bp.memory_s;
  job.total_s = bd.total_s + bp.total_s;
  job.flops = bd.flops + bp.flops;
  job.bytes = bd.bytes + bp.bytes;
  for (const DvfsState& state : dvfs_states()) {
    const KernelEnergy ed = attribute_kernel(bd, cores, m.node, pm, state);
    const KernelEnergy ep = attribute_kernel(bp, cores, m.node, pm, state);
    const KernelEnergy whole = attribute_kernel(job, cores, m.node, pm,
                                                state);
    const double sum = ed.total_j.value() + ep.total_j.value();
    EXPECT_NEAR(sum, whole.total_j.value(), whole.total_j.value() * 1e-12);
    EXPECT_NEAR(ed.core_j.value() + ep.core_j.value(),
                whole.core_j.value(), whole.core_j.value() * 1e-12);
    EXPECT_NEAR(ed.memory_j.value() + ep.memory_j.value(),
                whole.memory_j.value(), whole.memory_j.value() * 1e-12);
    EXPECT_NEAR(ed.static_j.value() + ep.static_j.value(),
                whole.static_j.value(), whole.static_j.value() * 1e-12);
    EXPECT_GT(sum, 0.0);
  }
}

TEST(ClusterEnergy, ComponentsSumToTotalAndRecordsAddUp) {
  const batch::RuntimeModel model(tiny_machine());
  const PowerModel pm = default_power(model.machine());
  const std::vector<Job> jobs = {fixed_job(0, 0.0, 1, 300.0, 100.0),
                                 fixed_job(1, 10.0, 2, 300.0, 150.0),
                                 fixed_job(2, 20.0, 1, 300.0, 50.0)};
  batch::ClusterOptions options;
  options.power = &pm;
  const auto result = batch::run_cluster(model, jobs, options);
  ASSERT_TRUE(result.has_power);
  const batch::EnergyTotals& e = result.energy;
  EXPECT_DOUBLE_EQ(e.total_j, e.cpu_j + e.mem_j + e.net_j + e.idle_j);
  EXPECT_GT(e.cpu_j, 0.0);
  EXPECT_GT(e.idle_j, 0.0);
  // Fixed-runtime jobs carry no modeled traffic or communication.
  EXPECT_DOUBLE_EQ(e.mem_j, 0.0);
  EXPECT_DOUBLE_EQ(e.net_j, 0.0);

  // Per-record energy: draw x nodes x elapsed, with the exact node-active
  // coefficient; the cpu component is exactly the sum over records.
  const double node_w = pm.node_active(model.machine().node,
                                       dvfs_state(0)).value();
  double sum_j = 0.0;
  for (const auto& r : result.records) {
    EXPECT_DOUBLE_EQ(r.energy_j, node_w * r.job.nodes * r.runtime_s());
    EXPECT_DOUBLE_EQ(r.wasted_energy_j, 0.0);
    EXPECT_DOUBLE_EQ(r.dvfs_freq_scale, 1.0);
    sum_j += r.energy_j;
  }
  EXPECT_NEAR(e.cpu_j, sum_j, 1e-9 * sum_j);

  const auto m = batch::summarize(result, model.machine().num_nodes);
  EXPECT_DOUBLE_EQ(m.energy_to_solution_j, e.total_j);
  EXPECT_DOUBLE_EQ(m.edp_js, e.total_j * m.makespan_s);
  EXPECT_DOUBLE_EQ(m.mean_power_w, e.total_j / m.makespan_s);
  EXPECT_GT(m.peak_power_w, 0.0);
}

TEST(ClusterEnergy, PowerOffAndZeroModelReproduceTheSameSchedule) {
  const batch::RuntimeModel model(tiny_machine());
  const std::vector<Job> jobs = {fixed_job(0, 0.0, 2, 300.0, 100.0),
                                 fixed_job(1, 5.0, 2, 300.0, 120.0),
                                 fixed_job(2, 6.0, 4, 500.0, 80.0)};
  batch::ClusterOptions off;
  const auto base = batch::run_cluster(model, jobs, off);

  const PowerModel zero;  // all coefficients zero
  batch::ClusterOptions with_zero;
  with_zero.power = &zero;
  const auto zeroed = batch::run_cluster(model, jobs, with_zero);

  ASSERT_EQ(base.records.size(), zeroed.records.size());
  for (std::size_t i = 0; i < base.records.size(); ++i) {
    EXPECT_DOUBLE_EQ(base.records[i].start_s, zeroed.records[i].start_s);
    EXPECT_DOUBLE_EQ(base.records[i].end_s, zeroed.records[i].end_s);
    EXPECT_EQ(base.records[i].alloc_nodes, zeroed.records[i].alloc_nodes);
    EXPECT_DOUBLE_EQ(zeroed.records[i].energy_j, 0.0);
  }
  EXPECT_EQ(base.engine_events, zeroed.engine_events);
  EXPECT_DOUBLE_EQ(zeroed.energy.total_j, 0.0);
  EXPECT_DOUBLE_EQ(zeroed.energy.peak_w, 0.0);
  // The non-energy metrics are bit-identical.
  const auto mb = batch::summarize(base, 4);
  const auto mz = batch::summarize(zeroed, 4);
  EXPECT_DOUBLE_EQ(mb.makespan_s, mz.makespan_s);
  EXPECT_DOUBLE_EQ(mb.utilization, mz.utilization);
  EXPECT_DOUBLE_EQ(mb.mean_wait_s, mz.mean_wait_s);
  EXPECT_DOUBLE_EQ(mb.mean_bounded_slowdown, mz.mean_bounded_slowdown);
  EXPECT_DOUBLE_EQ(mz.energy_to_solution_j, 0.0);
}

TEST(ClusterEnergy, NominalDvfsIsAnExactNoOp) {
  const batch::RuntimeModel model(tiny_machine());
  const PowerModel pm = default_power(model.machine());
  // Roofline-modeled jobs, so the DVFS-scaled exec-model path is what is
  // being compared against the base model.
  const std::vector<Job> jobs = {profiled_job(0, 0.0, "md", 40, 4000.0),
                                 profiled_job(1, 3.0, "spmv", 40, 4000.0)};
  batch::ClusterOptions plain;
  plain.power = &pm;
  const auto base = batch::run_cluster(model, jobs, plain);

  batch::ClusterOptions nominal = plain;
  nominal.dvfs = dvfs_state(0);
  const auto same = batch::run_cluster(model, jobs, nominal);
  ASSERT_EQ(base.records.size(), same.records.size());
  for (std::size_t i = 0; i < base.records.size(); ++i) {
    EXPECT_DOUBLE_EQ(base.records[i].end_s, same.records[i].end_s);
    EXPECT_DOUBLE_EQ(base.records[i].energy_j, same.records[i].energy_j);
  }
  EXPECT_DOUBLE_EQ(base.energy.total_j, same.energy.total_j);
}

TEST(ClusterEnergy, DvfsStretchesComputeBoundNotMemoryBound) {
  const batch::RuntimeModel model(tiny_machine());
  const Job md = profiled_job(0, 0.0, "md", 10, 1e6);
  const Job spmv = profiled_job(1, 0.0, "spmv", 10, 1e6);
  const double deep = dvfs_states().back().freq_scale;  // 0.6
  const double md_stretch =
      model.reference_runtime(md, deep) / model.reference_runtime(md);
  const double spmv_stretch =
      model.reference_runtime(spmv, deep) / model.reference_runtime(spmv);
  // Compute-bound follows the clock; memory-bound hides behind HBM.
  EXPECT_GT(md_stretch, 1.4);
  EXPECT_LT(spmv_stretch, md_stretch);
  EXPECT_LT(spmv_stretch, 1.2);
  // Fixed-runtime jobs are DVFS-invariant by contract.
  const Job fixed = fixed_job(2, 0.0, 1, 100.0, 50.0);
  EXPECT_DOUBLE_EQ(model.reference_runtime(fixed, deep),
                   model.reference_runtime(fixed));
}

TEST(ClusterEnergy, RaceToIdleShowsUpInEdp) {
  // The acceptance shape of the energy study at test scale: for a
  // compute-bound stream the DEEPEST frequency is NOT the EDP optimum,
  // while the memory-bound stream improves its EDP there.
  const batch::RuntimeModel model(tiny_machine());
  const PowerModel pm = default_power(model.machine());
  const auto run_edp = [&](const char* profile, const DvfsState& state) {
    std::vector<Job> jobs;
    for (int i = 0; i < 6; ++i) {
      jobs.push_back(profiled_job(i, 10.0 * i, profile, 20, 1e7));
    }
    batch::ClusterOptions options;
    options.power = &pm;
    options.dvfs = state;
    const auto result = batch::run_cluster(model, jobs, options);
    return batch::summarize(result, model.machine().num_nodes).edp_js;
  };
  const DvfsState& deepest = dvfs_states().back();
  EXPECT_GT(run_edp("md", deepest), run_edp("md", dvfs_state(0)));
  EXPECT_LT(run_edp("spmv", deepest), run_edp("spmv", dvfs_state(0)));
}

TEST(ClusterEnergy, WalltimeKillWastesTheAttemptEnergy) {
  const batch::RuntimeModel model(tiny_machine());
  const PowerModel pm = default_power(model.machine());
  const std::vector<Job> jobs = {fixed_job(0, 0.0, 1, 50.0, 100.0)};
  batch::ClusterOptions options;
  options.power = &pm;
  const auto result = batch::run_cluster(model, jobs, options);
  ASSERT_EQ(result.records.size(), 1u);
  const auto& r = result.records[0];
  EXPECT_EQ(r.end_reason, batch::EndReason::kWalltimeKilled);
  EXPECT_GT(r.energy_j, 0.0);
  EXPECT_DOUBLE_EQ(r.wasted_energy_j, r.energy_j);
  EXPECT_DOUBLE_EQ(result.energy.wasted_j, r.energy_j);
  const auto m = batch::summarize(result, model.machine().num_nodes);
  EXPECT_DOUBLE_EQ(m.wasted_energy_j, r.energy_j);
}

TEST(ClusterEnergy, PowerCapHoldsAtEveryTraceSample) {
  const batch::RuntimeModel model(tiny_machine());
  const PowerModel pm = default_power(model.machine());
  const arch::NodeModel& node = model.machine().node;
  const double active_w = pm.node_active(node, dvfs_state(0)).value();
  const double idle_w = pm.node_idle(node).value();
  // Four 1-node jobs all fit the nodes at t=0; cap the cluster so only two
  // may draw active power at once.
  const double cap_w = 2.0 * active_w + 2.0 * idle_w + 1.0;
  std::vector<Job> jobs;
  for (int i = 0; i < 4; ++i) {
    jobs.push_back(fixed_job(i, 0.0, 1, 400.0, 100.0));
  }
  batch::ClusterOptions options;
  options.power = &pm;
  options.power_cap_w = cap_w;
  const auto result = batch::run_cluster(model, jobs, options);
  EXPECT_GT(result.energy.capped_starts, 0);
  for (const auto& s : result.frag_timeline) {
    EXPECT_LE(s.power_w, cap_w);
    EXPECT_LE(s.busy_nodes, 2);
  }
  // The deferred jobs ran after the first wave released its watts.
  for (const auto& r : result.records) {
    EXPECT_EQ(r.end_reason, batch::EndReason::kCompleted);
  }
  const auto m = batch::summarize(result, model.machine().num_nodes);
  EXPECT_LE(m.peak_power_w, cap_w);
  EXPECT_EQ(m.capped_starts, result.energy.capped_starts);

  // Uncapped, the same stream peaks above the cap — the cap did something.
  batch::ClusterOptions uncapped;
  uncapped.power = &pm;
  const auto wide = batch::run_cluster(model, jobs, uncapped);
  EXPECT_GT(wide.energy.peak_w, cap_w);
  EXPECT_LT(wide.makespan_s, result.makespan_s);
}

TEST(ClusterEnergy, CapNeverDeadlocksAnEmptyMachine) {
  const batch::RuntimeModel model(tiny_machine());
  const PowerModel pm = default_power(model.machine());
  // A cap below even one node's active draw: the head must still run
  // (alone) rather than wait forever.
  const std::vector<Job> jobs = {fixed_job(0, 0.0, 4, 200.0, 100.0)};
  batch::ClusterOptions options;
  options.power = &pm;
  options.power_cap_w = 1.0;
  const auto result = batch::run_cluster(model, jobs, options);
  ASSERT_EQ(result.records.size(), 1u);
  EXPECT_EQ(result.records[0].end_reason, batch::EndReason::kCompleted);
}

TEST(ClusterEnergy, DvfsBackfillDownclocksUnderTheCap) {
  const batch::RuntimeModel model(tiny_machine());
  const PowerModel pm = default_power(model.machine());
  const arch::NodeModel& node = model.machine().node;
  const double active_w = pm.node_active(node, dvfs_state(0)).value();
  const double deep_w =
      pm.node_active(node, dvfs_states().back()).value();
  const double idle_w = pm.node_idle(node).value();
  // Room for one nominal job plus one deep-state job, not two nominal.
  const double cap_w = active_w + deep_w + 2.0 * idle_w + 1.0;
  const std::vector<Job> jobs = {fixed_job(0, 0.0, 1, 400.0, 100.0),
                                 fixed_job(1, 0.0, 1, 400.0, 100.0)};
  batch::ClusterOptions options;
  options.power = &pm;
  options.power_cap_w = cap_w;
  options.dvfs_backfill = true;
  const auto result = batch::run_cluster(model, jobs, options);
  EXPECT_GT(result.energy.downclocked_jobs, 0);
  for (const auto& s : result.frag_timeline) {
    EXPECT_LE(s.power_w, cap_w);
  }
  // Both ran concurrently: the rescue beat waiting for the first release.
  ASSERT_EQ(result.records.size(), 2u);
  EXPECT_DOUBLE_EQ(result.records[0].start_s, result.records[1].start_s);
  // Exactly one of them carries a sub-nominal frequency scale.
  const double scales = result.records[0].dvfs_freq_scale *
                        result.records[1].dvfs_freq_scale;
  EXPECT_LT(scales, 1.0);
}

}  // namespace
}  // namespace ctesim::power
