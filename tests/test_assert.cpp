// Tests for the CTESIM_ASSERT / CTESIM_DCHECK invariant macros. The suite
// runs in every configuration: with checks enabled it asserts the throwing
// behaviour, with checks compiled out it asserts the macros are true no-ops
// (the expression must not even be evaluated).
#include <gtest/gtest.h>

#include "sched/allocator.h"
#include "util/assert.h"

namespace ctesim {
namespace {

#if CTESIM_CHECKS_ENABLED

TEST(Assert, ViolationThrowsContractErrorWithContext) {
  try {
    CTESIM_ASSERT(1 + 1 == 3, "arithmetic invariant for the test");
    FAIL() << "expected ContractError";
  } catch (const ContractError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 + 1 == 3"), std::string::npos);
    EXPECT_NE(what.find("arithmetic invariant"), std::string::npos);
    EXPECT_NE(what.find("test_assert.cpp"), std::string::npos);
  }
}

TEST(Assert, DcheckThrowsToo) {
  EXPECT_THROW(CTESIM_DCHECK(false, "must fire"), ContractError);
  EXPECT_NO_THROW(CTESIM_DCHECK(true, "must not fire"));
}

TEST(Assert, AllocatorDoubleReleaseIsCaught) {
  const net::TorusTopology topology({2, 2});
  sched::Allocator alloc(topology);
  // Explicit vectors: release() is overloaded on job id, and a braced
  // single-element list would resolve to the std::uint64_t overload.
  const std::vector<int> node0 = {0};
  const std::vector<int> node1 = {1};
  alloc.occupy({0, 1});
  alloc.release(node0);
  EXPECT_THROW(alloc.release(node0), ContractError);  // double release
  EXPECT_THROW(alloc.occupy(node1), ContractError);   // double occupation
}

TEST(Assert, AllocatorJobBookkeepingDriftIsCaught) {
  const net::TorusTopology topology({2, 2});
  sched::Allocator alloc(topology);
  const auto nodes = alloc.allocate(7, 2, sched::Policy::kLinear, 1);
  ASSERT_EQ(nodes.size(), 2u);
  // A raw release behind the ownership record's back: the job-id release
  // must detect the drift (its nodes are no longer marked busy).
  alloc.release(nodes);
  EXPECT_THROW(alloc.release(std::uint64_t{7}), ContractError);
}

#else  // checks compiled out

TEST(Assert, CompiledOutMacrosDoNotEvaluate) {
  int evaluations = 0;
  auto probe = [&evaluations] {
    ++evaluations;
    return false;
  };
  CTESIM_ASSERT(probe(), "must not run");
  CTESIM_DCHECK(probe(), "must not run");
  EXPECT_EQ(evaluations, 0);
}

#endif  // CTESIM_CHECKS_ENABLED

}  // namespace
}  // namespace ctesim
