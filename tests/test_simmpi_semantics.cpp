// Deeper semantic tests of the simulated MPI runtime: timing relations the
// message-passing model must satisfy (these pin the LogGP-style semantics
// the cost attribution relies on).
#include <gtest/gtest.h>

#include <vector>

#include "arch/configs.h"
#include "simmpi/world.h"

namespace ctesim::mpi {
namespace {

WorldOptions quiet_options() {
  WorldOptions o;
  o.machine = arch::cte_arm();
  o.network_jitter = 0.0;
  return o;
}

double run2(const World::RankFn& body) {
  World world(quiet_options(), Placement::per_node(arch::cte_arm().node, 2));
  return world.run(body);
}

TEST(Semantics, EagerSendReturnsBeforeDelivery) {
  // A small (eager) send must release the sender long before the message
  // arrives: sender-side occupancy ~ injection, receiver waits the wire.
  double sender_free = -1.0;
  double receiver_done = -1.0;
  run2([&](Rank& r) -> sim::Task<> {
    if (r.id() == 0) {
      co_await r.send(1, 512);
      sender_free = r.now_s();
    } else {
      co_await r.recv(0);
      receiver_done = r.now_s();
    }
  });
  EXPECT_LT(sender_free, receiver_done);
}

TEST(Semantics, RendezvousSendCouplesSenderToDelivery) {
  double sender_free = -1.0;
  double receiver_done = -1.0;
  run2([&](Rank& r) -> sim::Task<> {
    if (r.id() == 0) {
      co_await r.send(1, 8 << 20);  // far above the eager threshold
      sender_free = r.now_s();
    } else {
      co_await r.recv(0);
      receiver_done = r.now_s();
    }
  });
  EXPECT_NEAR(sender_free, receiver_done, 1e-9);
}

TEST(Semantics, BackToBackSendsSerializeAtSender) {
  // Two large sends from one rank must take ~2x one send (NIC occupancy),
  // even to different destinations.
  auto run_sends = [&](int count) {
    WorldOptions options = quiet_options();
    World world(std::move(options),
                Placement::per_node(arch::cte_arm().node, 3));
    return world.run([count](Rank& r) -> sim::Task<> {
      if (r.id() == 0) {
        for (int i = 0; i < count; ++i) {
          co_await r.send(1 + i % 2, 4 << 20);
        }
      } else {
        for (int i = 0; i < count / 2; ++i) {
          co_await r.recv(0);
        }
      }
    });
  };
  const double two = run_sends(2);
  const double four = run_sends(4);
  EXPECT_NEAR(four / two, 2.0, 0.2);
}

TEST(Semantics, SendrecvIsFullDuplex) {
  // A bidirectional exchange must cost ~one transfer, not two.
  const double duplex = run2([](Rank& r) -> sim::Task<> {
    co_await r.sendrecv(1 - r.id(), 1 << 20, 1 - r.id());
  });
  const double half = run2([](Rank& r) -> sim::Task<> {
    if (r.id() == 0) {
      co_await r.send(1, 1 << 20);
    } else {
      co_await r.recv(0);
    }
  });
  EXPECT_LT(duplex, 1.6 * half);
}

TEST(Semantics, LatePostedReceiveGetsBufferedMessage) {
  // Eager message sent long before the receive posts: the receiver pays no
  // wire time, only picks up the buffered message.
  double recv_started = -1.0;
  double recv_done = -1.0;
  run2([&](Rank& r) -> sim::Task<> {
    if (r.id() == 0) {
      co_await r.send(1, 1024);
    } else {
      co_await r.compute_seconds(1.0);  // post late
      recv_started = r.now_s();
      co_await r.recv(0);
      recv_done = r.now_s();
    }
  });
  EXPECT_NEAR(recv_done, recv_started, 1e-9);
}

TEST(Semantics, IntraNodeCheaperThanInterNode) {
  WorldOptions options = quiet_options();
  World intra(std::move(options),
              Placement::fill_nodes(arch::cte_arm().node, 2, 2));
  const double t_intra = intra.run([](Rank& r) -> sim::Task<> {
    if (r.id() == 0) {
      co_await r.send(1, 1 << 20);
    } else {
      co_await r.recv(0);
    }
  });
  const double t_inter = run2([](Rank& r) -> sim::Task<> {
    if (r.id() == 0) {
      co_await r.send(1, 1 << 20);
    } else {
      co_await r.recv(0);
    }
  });
  EXPECT_LT(t_intra, t_inter);
}

TEST(Semantics, ExchangeCompletesAllNeighborsConcurrently) {
  // A 4-neighbor exchange should cost far less than 4 sequential
  // ping-pongs of the same size.
  WorldOptions options = quiet_options();
  World world(std::move(options),
              Placement::per_node(arch::cte_arm().node, 5));
  std::vector<int> all{0, 1, 2, 3, 4};
  const double t = world.run([&](Rank& r) -> sim::Task<> {
    std::vector<int> neighbors;
    for (int n : all) {
      if (n != r.id()) neighbors.push_back(n);
    }
    co_await r.exchange(neighbors, 64 * 1024);
  });
  WorldOptions options2 = quiet_options();
  World seq(std::move(options2),
            Placement::per_node(arch::cte_arm().node, 2));
  const double pingpong = seq.run([](Rank& r) -> sim::Task<> {
    co_await r.sendrecv(1 - r.id(), 64 * 1024, 1 - r.id());
  });
  EXPECT_LT(t, 3.0 * pingpong);
}

TEST(Semantics, PhaseAvgAndMaxRelate) {
  WorldOptions options = quiet_options();
  World world(std::move(options),
              Placement::per_node(arch::cte_arm().node, 4));
  world.run([](Rank& r) -> sim::Task<> {
    const double t0 = r.now_s();
    co_await r.compute_seconds(0.1 * (r.id() + 1));
    r.phase_add("w", r.now_s() - t0);
  });
  EXPECT_GE(world.phase_max("w"), world.phase_avg("w"));
  const auto names = world.phase_names();
  ASSERT_EQ(names.size(), 1u);
  EXPECT_EQ(names[0], "w");
}

}  // namespace
}  // namespace ctesim::mpi
