// Tests for the fault-injection & resilience subsystem: timeline
// generation and validation, MTBF distributions, checkpoint/restart math
// (Young/Daly), allocator drain/return bookkeeping, the self-healing batch
// runtime, and trace determinism under failures.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <vector>

#include "arch/configs.h"
#include "batch/cluster.h"
#include "batch/metrics.h"
#include "fault/checkpoint.h"
#include "fault/fault.h"
#include "fault/mtbf.h"
#include "io/filesystem.h"
#include "net/network.h"
#include "sched/allocator.h"
#include "trace/chrome.h"
#include "trace/recorder.h"
#include "util/check.h"
#include "util/rng.h"

namespace ctesim {
namespace {

arch::MachineModel tiny_machine() {
  arch::MachineModel m = arch::cte_arm();
  m.num_nodes = 4;
  m.interconnect.dims = {2, 2};
  return m;
}

batch::Job fixed_job(int id, double arrival, int nodes, double walltime,
                     double runtime, double comm_fraction = 0.0) {
  batch::Job job;
  job.id = id;
  job.arrival_s = arrival;
  job.nodes = nodes;
  job.walltime_s = walltime;
  job.fixed_runtime_s = runtime;
  job.profile = batch::JobProfile{"fixed", {}, 0.0, 1, comm_fraction};
  return job;
}

// --- timeline generation & validation --------------------------------------

TEST(FaultTimeline, GenerationIsDeterministicPerSeed) {
  fault::FaultModel model;
  model.node_failure.mtbf_s = 3600.0;
  model.node_failure.mean_repair_s = 600.0;
  model.link_degradation.mtbd_s = 7200.0;
  model.link_degradation.mean_duration_s = 900.0;
  const auto a = fault::generate_timeline(model, 32, 24 * 3600.0, 7);
  const auto b = fault::generate_timeline(model, 32, 24 * 3600.0, 7);
  ASSERT_EQ(a.events().size(), b.events().size());
  EXPECT_FALSE(a.events().empty());
  for (std::size_t i = 0; i < a.events().size(); ++i) {
    EXPECT_EQ(a.events()[i].time_s, b.events()[i].time_s) << i;
    EXPECT_EQ(a.events()[i].kind, b.events()[i].kind) << i;
    EXPECT_EQ(a.events()[i].node, b.events()[i].node) << i;
    EXPECT_EQ(a.events()[i].factor, b.events()[i].factor) << i;
  }
  const auto c = fault::generate_timeline(model, 32, 24 * 3600.0, 8);
  bool different = a.events().size() != c.events().size();
  for (std::size_t i = 0; !different && i < a.events().size(); ++i) {
    different = a.events()[i].time_s != c.events()[i].time_s;
  }
  EXPECT_TRUE(different);
  EXPECT_TRUE(a.validate(32).empty());
}

TEST(FaultTimeline, EventsSortedByTime) {
  fault::FaultTimeline t;
  t.fail(50.0, 1);
  t.degrade_recv(10.0, 20.0, 0, 0.5);
  t.repair(60.0, 1);
  double prev = 0.0;
  for (const auto& e : t.events()) {
    EXPECT_GE(e.time_s, prev);
    prev = e.time_s;
  }
  EXPECT_EQ(t.events().size(), 4u);
}

TEST(FaultTimeline, ValidateCatchesScriptDrift) {
  {
    fault::FaultTimeline t;  // double failure without repair
    t.fail(10.0, 0);
    t.fail(20.0, 0);
    EXPECT_FALSE(t.validate(4).empty());
  }
  {
    fault::FaultTimeline t;  // repair of a healthy node
    t.repair(10.0, 1);
    EXPECT_FALSE(t.validate(4).empty());
  }
  {
    fault::FaultTimeline t;  // node outside the machine
    t.fail(10.0, 9);
    EXPECT_FALSE(t.validate(4).empty());
    EXPECT_THROW(t.validate_or_throw(4), std::invalid_argument);
  }
  {
    fault::FaultTimeline t;  // degradation factor must be in (0, 1]
    EXPECT_THROW(t.degrade_recv(0.0, 10.0, 0, 0.0), ContractError);
  }
  {
    fault::FaultTimeline t;  // a clean script validates
    t.fail(10.0, 0);
    t.repair(30.0, 0);
    t.degrade_recv(5.0, 15.0, 2, 0.5);
    EXPECT_TRUE(t.validate(4).empty());
  }
}

// --- time-windowed network degradations ------------------------------------

TEST(NetworkWindows, DegradationAppliesOnlyInsideItsWindow) {
  const auto machine = tiny_machine();
  net::Network network(machine.interconnect, machine.num_nodes);
  const std::uint64_t bytes = 1 << 20;
  const double clean = network.transfer(1, 0, bytes).bandwidth;
  network.add_recv_degradation(0, 0.5, 10.0, 20.0);
  // Before, inside (half-open: the start is in, the end is out), after.
  EXPECT_NEAR(network.transfer(1, 0, bytes, 5.0).bandwidth, clean, 1e-6);
  EXPECT_NEAR(network.transfer(1, 0, bytes, 10.0).bandwidth, 0.5 * clean,
              1e-6);
  EXPECT_NEAR(network.transfer(1, 0, bytes, 19.9).bandwidth, 0.5 * clean,
              1e-6);
  EXPECT_NEAR(network.transfer(1, 0, bytes, 20.0).bandwidth, clean, 1e-6);
  // Only the receiver's path is degraded (the asymmetric signature) and
  // other nodes are untouched. Per-pair jitter makes each pair's healthy
  // bandwidth its own baseline.
  EXPECT_NEAR(network.transfer(0, 1, bytes, 15.0).bandwidth,
              network.transfer(0, 1, bytes).bandwidth, 1e-6);
  EXPECT_NEAR(network.transfer(2, 3, bytes, 15.0).bandwidth,
              network.transfer(2, 3, bytes).bandwidth, 1e-6);
}

TEST(NetworkWindows, OverlappingWindowsStackMultiplicatively) {
  const auto machine = tiny_machine();
  net::Network network(machine.interconnect, machine.num_nodes);
  const std::uint64_t bytes = 1 << 20;
  const double clean = network.transfer(1, 0, bytes).bandwidth;
  network.add_recv_degradation(0, 0.5, 0.0, 100.0);
  network.add_recv_degradation(0, 0.8, 50.0, 100.0);
  EXPECT_NEAR(network.transfer(1, 0, bytes, 25.0).bandwidth, 0.5 * clean,
              1e-6);
  EXPECT_NEAR(network.transfer(1, 0, bytes, 75.0).bandwidth,
              0.5 * 0.8 * clean, 1e-6);
}

TEST(NetworkWindows, LegacySetterIsAlwaysActive) {
  const auto machine = tiny_machine();
  net::Network network(machine.interconnect, machine.num_nodes);
  const std::uint64_t bytes = 1 << 20;
  const double clean = network.transfer(1, 0, bytes).bandwidth;
  network.set_recv_degradation(0, 0.25);
  EXPECT_NEAR(network.transfer(1, 0, bytes).bandwidth, 0.25 * clean, 1e-6);
  EXPECT_NEAR(network.transfer(1, 0, bytes, 1e9).bandwidth, 0.25 * clean,
              1e-6);
  // The setter replaces any windows (old semantics preserved).
  network.set_recv_degradation(0, 1.0);
  EXPECT_NEAR(network.transfer(1, 0, bytes, 50.0).bandwidth, clean, 1e-6);
}

TEST(NetworkWindows, ApplyTimelineInstallsWindows) {
  const auto machine = tiny_machine();
  net::Network network(machine.interconnect, machine.num_nodes);
  const std::uint64_t bytes = 1 << 20;
  const double clean = network.transfer(1, 0, bytes).bandwidth;
  fault::FaultTimeline timeline;
  timeline.degrade_recv(10.0, 20.0, 0, 0.5);
  fault::apply_recv_degradations(timeline, &network);
  EXPECT_NEAR(network.transfer(1, 0, bytes, 15.0).bandwidth, 0.5 * clean,
              1e-6);
  EXPECT_NEAR(network.transfer(1, 0, bytes, 25.0).bandwidth, clean, 1e-6);
}

// --- MTBF distributions ----------------------------------------------------

TEST(Mtbf, ExponentialSampleMeanMatchesMtbf) {
  fault::FailureSpec spec;
  spec.mtbf_s = 1000.0;
  Rng rng(11);
  double sum = 0.0;
  const int n = 40000;
  for (int i = 0; i < n; ++i) {
    const double t = fault::sample_time_to_failure(spec, rng);
    EXPECT_GT(t, 0.0);
    sum += t;
  }
  EXPECT_NEAR(sum / n, spec.mtbf_s, 0.03 * spec.mtbf_s);
}

TEST(Mtbf, WeibullIsMeanPreserving) {
  fault::FailureSpec spec;
  spec.dist = fault::FailureSpec::Dist::kWeibull;
  spec.mtbf_s = 1000.0;
  spec.weibull_shape = 2.0;  // wear-out regime
  Rng rng(12);
  double sum = 0.0;
  const int n = 40000;
  for (int i = 0; i < n; ++i) sum += fault::sample_time_to_failure(spec, rng);
  EXPECT_NEAR(sum / n, spec.mtbf_s, 0.03 * spec.mtbf_s);
}

// --- checkpoint/restart math -----------------------------------------------

TEST(Checkpoint, YoungDalyMinimizesFirstOrderWaste) {
  const double write_s = 60.0;
  const double mtbf_s = 8.0 * 3600.0;
  const double opt = fault::young_daly_interval(write_s, mtbf_s);
  EXPECT_NEAR(opt, std::sqrt(2.0 * write_s * mtbf_s), 1e-9);
  // First-order waste per unit work: C/T (writes) + T/(2M) (lost work).
  const auto waste = [&](double t) {
    return write_s / t + t / (2.0 * mtbf_s);
  };
  EXPECT_LT(waste(opt), waste(opt / 2.0));
  EXPECT_LT(waste(opt), waste(opt * 2.0));
  EXPECT_LT(waste(opt), waste(opt * 0.9));
  EXPECT_LT(waste(opt), waste(opt * 1.1));
}

TEST(Checkpoint, AttemptDurationAndPreservedWorkHandChecked) {
  fault::CheckpointCost cost;
  cost.interval_s = 20.0;
  cost.write_s = 1.0;
  cost.restart_s = 5.0;
  // 100 s of work crosses 4 checkpoints (the 5th would coincide with the
  // end); a fresh attempt pays no restart.
  EXPECT_EQ(fault::checkpoints_for(100.0, cost), 4);
  EXPECT_NEAR(fault::attempt_duration(100.0, cost, false), 104.0, 1e-12);
  EXPECT_NEAR(fault::attempt_duration(100.0, cost, true), 109.0, 1e-12);
  // Die 30 s into a fresh attempt: one full interval+write behind us.
  EXPECT_NEAR(fault::preserved_work(30.0, 100.0, cost, false), 20.0, 1e-12);
  // Die 10 s in: before the first checkpoint completed — nothing kept.
  EXPECT_NEAR(fault::preserved_work(10.0, 100.0, cost, false), 0.0, 1e-12);
  // A restarting attempt shifts everything by the restart overhead.
  EXPECT_NEAR(fault::preserved_work(25.0 + 5.0, 100.0, cost, true), 20.0,
              1e-12);
  // Preserved work never exceeds the work itself.
  EXPECT_LE(fault::preserved_work(1e9, 100.0, cost, false), 100.0);
  // Without checkpointing nothing is preserved.
  EXPECT_EQ(fault::preserved_work(50.0, 100.0, fault::CheckpointCost{},
                                  false),
            0.0);
}

TEST(Checkpoint, ResolveDisabledPolicyIsInert) {
  const auto machine = tiny_machine();
  const auto fs = io::production_filesystem(machine);
  const auto cost = fault::resolve(fault::CheckpointPolicy{}, fs, 2);
  EXPECT_FALSE(cost.enabled());
  EXPECT_EQ(fault::checkpoints_for(1e6, cost), 0);
  EXPECT_NEAR(fault::attempt_duration(123.0, cost, true), 123.0, 1e-12);
}

// --- allocator drain/return ------------------------------------------------

TEST(Allocator, DrainRemovesNodeFromService) {
  const net::TorusTopology topo({2, 2});
  sched::Allocator alloc(topo);
  EXPECT_EQ(alloc.free_nodes(), 4);
  alloc.drain(0);
  EXPECT_TRUE(alloc.is_drained(0));
  EXPECT_EQ(alloc.drained_count(), 1);
  EXPECT_EQ(alloc.in_service_nodes(), 3);
  EXPECT_EQ(alloc.free_nodes(), 3);
  // The drained node is never allocated.
  const auto nodes = alloc.allocate(3, sched::Policy::kLinear);
  EXPECT_EQ(nodes, (std::vector<int>{1, 2, 3}));
  alloc.release(nodes);
  alloc.return_to_service(0);
  EXPECT_EQ(alloc.free_nodes(), 4);
  EXPECT_FALSE(alloc.is_drained(0));
}

#if CTESIM_CHECKS_ENABLED
TEST(Allocator, DrainBookkeepingDriftIsCaught) {
  const net::TorusTopology topo({2, 2});
  sched::Allocator alloc(topo);
  alloc.drain(2);
  EXPECT_THROW(alloc.drain(2), ContractError);        // double drain
  EXPECT_THROW(alloc.return_to_service(1), ContractError);  // no drain
  alloc.return_to_service(2);
  EXPECT_THROW(alloc.return_to_service(2), ContractError);  // double return
}
#endif  // CTESIM_CHECKS_ENABLED

// --- the self-healing batch runtime ----------------------------------------

TEST(Resilience, InterruptedJobRequeuesAndCompletes) {
  const batch::RuntimeModel model(tiny_machine());
  // One whole-machine job; node 0 dies 30 s in and is repaired at 100 s.
  // No checkpointing: the restarted attempt redoes all 100 s of work.
  const std::vector<batch::Job> jobs = {fixed_job(0, 0.0, 4, 500.0, 100.0)};
  fault::FaultTimeline faults;
  faults.fail(30.0, 0);
  faults.repair(100.0, 0);
  batch::ClusterOptions options;
  options.faults = &faults;
  options.requeue_backoff_s = 10.0;
  const auto result = batch::run_cluster(model, jobs, options);
  ASSERT_EQ(result.records.size(), 1u);
  const auto& r = result.records[0];
  EXPECT_EQ(r.end_reason, batch::EndReason::kCompleted);
  EXPECT_EQ(r.attempts, 2);
  EXPECT_EQ(r.interruptions, 1);
  EXPECT_NEAR(r.first_start_s, 0.0, 1e-9);
  // Requeued at 40 s but the machine is 3/4 until the repair at 100 s.
  EXPECT_NEAR(r.start_s, 100.0, 1e-9);
  EXPECT_NEAR(r.end_s, 200.0, 1e-9);
  EXPECT_NEAR(r.busy_node_s, 30.0 * 4 + 100.0 * 4, 1e-6);
  EXPECT_NEAR(r.useful_node_s, 100.0 * 4, 1e-6);
  EXPECT_NEAR(r.wasted_node_s, 30.0 * 4, 1e-6);

  const auto m = batch::summarize(result, 4);
  EXPECT_EQ(m.interrupted, 1);
  EXPECT_EQ(m.failed, 0);
  EXPECT_LT(m.goodput, m.utilization);
  EXPECT_LT(m.availability, 1.0);
  EXPECT_NEAR(m.wasted_node_h, 120.0 / 3600.0, 1e-6);
}

TEST(Resilience, CheckpointRestartPreservesWork) {
  const batch::RuntimeModel model(tiny_machine());
  const std::vector<batch::Job> jobs = {fixed_job(0, 0.0, 4, 500.0, 100.0)};
  fault::FaultTimeline faults;
  faults.fail(30.0, 0);
  faults.repair(50.0, 0);
  batch::ClusterOptions options;
  options.faults = &faults;
  options.requeue_backoff_s = 10.0;
  // Checkpoint every 20 s of work; each write costs exactly 1 s through
  // the overridden aggregate bandwidth (4 nodes x 1e9 B / 4e9 B/s),
  // restart replay costs 5 s.
  options.checkpoint.interval_s = 20.0;
  options.checkpoint.state_bytes_per_node = 1e9;
  options.checkpoint.write_bw = 4e9;
  options.checkpoint.restart_s = 5.0;
  const auto result = batch::run_cluster(model, jobs, options);
  ASSERT_EQ(result.records.size(), 1u);
  const auto& r = result.records[0];
  EXPECT_EQ(r.end_reason, batch::EndReason::kCompleted);
  EXPECT_EQ(r.attempts, 2);
  // Death 30 s into the attempt: one interval (20 s) + its write (1 s) are
  // behind us, so 20 s of work survive to the restart.
  EXPECT_NEAR(r.useful_node_s - 100.0 * 4, 0.0, 1e-6);
  EXPECT_NEAR(r.wasted_node_s, (30.0 - 20.0) * 4, 1e-6);
  // Second attempt (from 50 s): 5 s restart + 80 s work + 3 writes = 88 s.
  EXPECT_NEAR(r.start_s, 50.0, 1e-9);
  EXPECT_NEAR(r.end_s, 138.0, 1e-9);
}

TEST(Resilience, RetryLimitEndsInNodeFailure) {
  const batch::RuntimeModel model(tiny_machine());
  const std::vector<batch::Job> jobs = {fixed_job(0, 0.0, 4, 500.0, 100.0)};
  fault::FaultTimeline faults;
  faults.fail(30.0, 0);
  faults.repair(50.0, 0);
  batch::ClusterOptions options;
  options.faults = &faults;
  options.max_retries = 0;  // one strike and out
  const auto result = batch::run_cluster(model, jobs, options);
  ASSERT_EQ(result.records.size(), 1u);
  const auto& r = result.records[0];
  EXPECT_EQ(r.end_reason, batch::EndReason::kNodeFailure);
  EXPECT_EQ(r.attempts, 1);
  EXPECT_EQ(r.interruptions, 1);
  EXPECT_NEAR(r.end_s, 30.0, 1e-9);
  EXPECT_EQ(batch::summarize(result, 4).failed, 1);
}

TEST(Resilience, UnrunnableJobsFinalizeAfterPermanentShrink) {
  const batch::RuntimeModel model(tiny_machine());
  // Node 0 dies and never comes back; the 4-node job can never run again.
  const std::vector<batch::Job> jobs = {fixed_job(0, 0.0, 4, 500.0, 100.0)};
  fault::FaultTimeline faults;
  faults.fail(30.0, 0);
  batch::ClusterOptions options;
  options.faults = &faults;
  const auto result = batch::run_cluster(model, jobs, options);
  ASSERT_EQ(result.records.size(), 1u);
  EXPECT_EQ(result.records[0].end_reason, batch::EndReason::kNodeFailure);
}

TEST(Resilience, DegradationWindowSlowsCommunicationShare) {
  const batch::RuntimeModel model(tiny_machine());
  // One 1-node job (node 0, the contiguous pick) that communicates half
  // its time. A factor-0.5 receive degradation over [20 s, 70 s) drops the
  // progress rate to 1/(1 + 0.5*(1/0.5-1)) = 2/3 for those 50 s:
  // 20 + 50*(2/3) = 53.33 s of progress by 70 s, the remaining 46.67 s run
  // at full rate -> completion at 116.67 s.
  const std::vector<batch::Job> jobs =
      {fixed_job(0, 0.0, 1, 500.0, 100.0, 0.5)};
  fault::FaultTimeline faults;
  faults.degrade_recv(20.0, 70.0, 0, 0.5);
  batch::ClusterOptions options;
  options.faults = &faults;
  const auto result = batch::run_cluster(model, jobs, options);
  ASSERT_EQ(result.records.size(), 1u);
  const auto& r = result.records[0];
  EXPECT_EQ(r.end_reason, batch::EndReason::kCompleted);
  EXPECT_NEAR(r.end_s, 20.0 + 50.0 + (100.0 - 20.0 - 50.0 * 2.0 / 3.0),
              1e-6);
}

TEST(Resilience, FaultFreeRunMatchesPlainCluster) {
  const batch::RuntimeModel model(tiny_machine());
  const std::vector<batch::Job> jobs = {
      fixed_job(0, 0.0, 2, 300.0, 100.0), fixed_job(1, 5.0, 2, 300.0, 80.0),
      fixed_job(2, 10.0, 4, 300.0, 50.0)};
  batch::ClusterOptions plain;
  fault::FaultTimeline empty;
  batch::ClusterOptions with_empty_faults;
  with_empty_faults.faults = &empty;
  const auto a = batch::run_cluster(model, jobs, plain);
  const auto b = batch::run_cluster(model, jobs, with_empty_faults);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].start_s, b.records[i].start_s) << i;
    EXPECT_EQ(a.records[i].end_s, b.records[i].end_s) << i;
    EXPECT_EQ(a.records[i].alloc_nodes, b.records[i].alloc_nodes) << i;
    EXPECT_EQ(a.records[i].attempts, 1) << i;
  }
}

TEST(Resilience, TraceExportIsByteIdenticalUnderFaults) {
  const batch::RuntimeModel model(tiny_machine());
  std::vector<batch::Job> jobs;
  for (int i = 0; i < 8; ++i) {
    jobs.push_back(fixed_job(i, 10.0 * i, 1 + i % 3, 400.0, 60.0 + 5.0 * i,
                             0.3));
  }
  fault::FaultTimeline faults;
  faults.fail(45.0, 1);
  faults.repair(120.0, 1);
  faults.fail(200.0, 3);
  faults.repair(260.0, 3);
  faults.degrade_recv(30.0, 90.0, 2, 0.5);
  batch::ClusterOptions options;
  options.faults = &faults;
  options.checkpoint.interval_s = 25.0;
  options.checkpoint.state_bytes_per_node = 1e9;
  options.checkpoint.write_bw = 1e9;

  const auto run_once = [&] {
    trace::Recorder recorder(true);
    batch::ClusterOptions opts = options;
    opts.recorder = &recorder;
    const auto result = batch::run_cluster(model, jobs, opts);
    std::ostringstream os;
    trace::write_chrome_trace(recorder, os);
    return std::pair<std::string, double>(os.str(), result.makespan_s);
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_FALSE(a.first.empty());
  EXPECT_EQ(a.first, b.first);  // byte-identical Chrome trace
  EXPECT_EQ(a.second, b.second);
}

}  // namespace
}  // namespace ctesim
