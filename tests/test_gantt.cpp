// Tests for the Gantt timeline renderer.
#include <gtest/gtest.h>

#include <sstream>

#include "report/gantt.h"
#include "util/check.h"

namespace ctesim::report {
namespace {

trace::Span span(int rank, double start_s, double end_s, const char* kind,
                 std::string detail = "", std::uint64_t bytes = 0,
                 int peer = -1) {
  trace::Span s;
  s.track = trace::Track::rank(rank);
  s.category = "mpi";
  s.name = kind;
  s.detail = std::move(detail);
  s.start = sim::from_seconds(start_s);
  s.end = sim::from_seconds(end_s);
  s.bytes = bytes;
  s.peer = peer;
  return s;
}

std::vector<trace::Span> sample_trace() {
  return {
      span(0, 0.0, 0.6, "compute", "k"),
      span(0, 0.6, 0.7, "send", "", 100, 1),
      span(1, 0.0, 0.2, "compute", "k"),
      span(1, 0.2, 1.0, "recv", "", 100, 0),
  };
}

TEST(Gantt, ComputesBusyFractions) {
  const Gantt gantt("t", sample_trace(), 2, 40);
  EXPECT_DOUBLE_EQ(gantt.makespan(), 1.0);
  EXPECT_NEAR(gantt.busy_fraction(0, "compute"), 0.6, 1e-12);
  EXPECT_NEAR(gantt.busy_fraction(0, "send"), 0.1, 1e-12);
  EXPECT_NEAR(gantt.busy_fraction(1, "recv"), 0.8, 1e-12);
  EXPECT_DOUBLE_EQ(gantt.busy_fraction(1, "send"), 0.0);
}

TEST(Gantt, RendersOneLanePerRank) {
  const Gantt gantt("lanes", sample_trace(), 2, 40);
  std::ostringstream os;
  gantt.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("r0"), std::string::npos);
  EXPECT_NE(out.find("r1"), std::string::npos);
  EXPECT_NE(out.find('#'), std::string::npos);
  EXPECT_NE(out.find('>'), std::string::npos);
  EXPECT_NE(out.find('<'), std::string::npos);
  EXPECT_NE(out.find("makespan"), std::string::npos);
}

TEST(Gantt, EmptyTraceHandled) {
  const Gantt gantt("empty", std::vector<trace::Span>{}, 3, 40);
  std::ostringstream os;
  gantt.print(os);
  EXPECT_NE(os.str().find("(empty trace)"), std::string::npos);
  EXPECT_DOUBLE_EQ(gantt.makespan(), 0.0);
}

TEST(Gantt, RejectsBadRanks) {
  std::vector<trace::Span> bad{span(5, 0.0, 1.0, "compute")};
  EXPECT_THROW(Gantt("x", bad, 2, 40), ContractError);
}

TEST(Gantt, IgnoresNonRankTracks) {
  auto spans = sample_trace();
  trace::Span global;
  global.track = trace::Track::global();
  global.category = "core";
  global.name = "setup";
  global.start = sim::from_seconds(0.0);
  global.end = sim::from_seconds(5.0);  // would stretch the makespan
  spans.push_back(global);
  const Gantt gantt("filtered", spans, 2, 40);
  EXPECT_DOUBLE_EQ(gantt.makespan(), 1.0);
}

TEST(Gantt, BuildsFromRecorder) {
  trace::Recorder recorder;
  for (const auto& s : sample_trace()) {
    recorder.span(s.track, s.category, s.name.c_str(), s.detail, s.start,
                  s.end, s.bytes, s.peer);
  }
  const Gantt gantt("rec", recorder, 2, 40);
  EXPECT_DOUBLE_EQ(gantt.makespan(), 1.0);
  EXPECT_NEAR(gantt.busy_fraction(0, "compute"), 0.6, 1e-12);
}

}  // namespace
}  // namespace ctesim::report
