// Tests for the Gantt timeline renderer.
#include <gtest/gtest.h>

#include <sstream>

#include "report/gantt.h"

namespace ctesim::report {
namespace {

std::vector<mpi::TraceRecord> sample_trace() {
  return {
      {0, 0.0, 0.6, "compute", "k", 0, -1},
      {0, 0.6, 0.7, "send", "", 100, 1},
      {1, 0.0, 0.2, "compute", "k", 0, -1},
      {1, 0.2, 1.0, "recv", "", 100, 0},
  };
}

TEST(Gantt, ComputesBusyFractions) {
  const Gantt gantt("t", sample_trace(), 2, 40);
  EXPECT_DOUBLE_EQ(gantt.makespan(), 1.0);
  EXPECT_NEAR(gantt.busy_fraction(0, "compute"), 0.6, 1e-12);
  EXPECT_NEAR(gantt.busy_fraction(0, "send"), 0.1, 1e-12);
  EXPECT_NEAR(gantt.busy_fraction(1, "recv"), 0.8, 1e-12);
  EXPECT_DOUBLE_EQ(gantt.busy_fraction(1, "send"), 0.0);
}

TEST(Gantt, RendersOneLanePerRank) {
  const Gantt gantt("lanes", sample_trace(), 2, 40);
  std::ostringstream os;
  gantt.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("r0"), std::string::npos);
  EXPECT_NE(out.find("r1"), std::string::npos);
  EXPECT_NE(out.find('#'), std::string::npos);
  EXPECT_NE(out.find('>'), std::string::npos);
  EXPECT_NE(out.find('<'), std::string::npos);
  EXPECT_NE(out.find("makespan"), std::string::npos);
}

TEST(Gantt, EmptyTraceHandled) {
  const Gantt gantt("empty", {}, 3, 40);
  std::ostringstream os;
  gantt.print(os);
  EXPECT_NE(os.str().find("(empty trace)"), std::string::npos);
  EXPECT_DOUBLE_EQ(gantt.makespan(), 0.0);
}

TEST(Gantt, RejectsBadRanks) {
  std::vector<mpi::TraceRecord> bad{{5, 0.0, 1.0, "compute", "", 0, -1}};
  EXPECT_THROW(Gantt("x", bad, 2, 40), ContractError);
}

}  // namespace
}  // namespace ctesim::report
