// Tests for the roofline execution model.
#include <gtest/gtest.h>

#include "arch/configs.h"
#include "roofline/exec_model.h"
#include "roofline/kernel_library.h"

namespace ctesim::roofline {
namespace {

using arch::KernelClass;

ExecModel cte_gnu() {
  return ExecModel(arch::cte_arm().node, arch::gnu_compiler());
}

ExecModel mn4_intel() {
  return ExecModel(arch::marenostrum4().node, arch::intel_compiler());
}

TEST(ExecModel, StreamTriadIsMemoryBound) {
  const auto model = cte_gnu();
  const auto b = model.analyze(kernels::stream_triad(), 1e8, 48);
  EXPECT_GT(b.memory_s, b.compute_s);
  EXPECT_DOUBLE_EQ(b.total_s, b.memory_s);  // overlap = 1
}

TEST(ExecModel, DgemmIsComputeBound) {
  const auto model = cte_gnu();
  const auto b = model.analyze(kernels::dgemm(), 1e10, 48);
  EXPECT_GT(b.compute_s, b.memory_s);
}

TEST(ExecModel, MoreCoresNeverSlower) {
  const auto model = mn4_intel();
  const auto sig = kernels::fem_assembly();
  double prev = 1e30;
  for (int cores : {1, 2, 4, 8, 16, 24, 48}) {
    const double t = model.time(sig, 1e9, cores).value();
    EXPECT_LE(t, prev + 1e-12);
    prev = t;
  }
}

TEST(ExecModel, TimeLinearInElements) {
  const auto model = cte_gnu();
  const auto sig = kernels::spmv_csr();
  const double t1 = model.time(sig, 1e6, 12).value();
  const double t2 = model.time(sig, 2e6, 12).value();
  EXPECT_NEAR(t2 / t1, 2.0, 1e-9);
}

TEST(ExecModel, ZeroElementsZeroTime) {
  const auto model = cte_gnu();
  EXPECT_DOUBLE_EQ(model.time(kernels::stream_triad(), 0.0, 4).value(), 0.0);
}

TEST(ExecModel, VectorizationGapDrivesA64fxSlowdown) {
  // The paper's core claim in one assertion: on compute-bound application
  // kernels the GNU-on-A64FX core rate is several times below the
  // Intel-on-Skylake rate, despite the higher A64FX vector peak.
  const double a64 = cte_gnu().core_flop_rate(kernels::fem_assembly()).value();
  const double skx = mn4_intel().core_flop_rate(kernels::fem_assembly()).value();
  EXPECT_GT(skx / a64, 2.5);
  EXPECT_LT(skx / a64, 7.0);
  // ...while the hand-vectorized FMA kernel shows the opposite ordering.
  KernelSig fma{.name = "fma",
                .cls = KernelClass::kFmaThroughput,
                .flops_per_elem = 2.0,
                .bytes_per_elem = 0.0};
  EXPECT_GT(cte_gnu().core_flop_rate(fma).value(), mn4_intel().core_flop_rate(fma).value());
}

TEST(ExecModel, OverlapInterpolatesBetweenMaxAndSum) {
  auto sig = kernels::spmv_csr();
  const auto model = cte_gnu();
  sig.overlap = 1.0;
  const auto full = model.analyze(sig, 1e7, 12);
  sig.overlap = 0.0;
  const auto none = model.analyze(sig, 1e7, 12);
  EXPECT_NEAR(full.total_s, std::max(full.compute_s, full.memory_s), 1e-15);
  EXPECT_NEAR(none.total_s, none.compute_s + none.memory_s, 1e-15);
  sig.overlap = 0.5;
  const auto half = model.analyze(sig, 1e7, 12);
  EXPECT_GT(half.total_s, full.total_s);
  EXPECT_LT(half.total_s, none.total_s);
}

TEST(ExecModel, AchievedFlopsConsistent) {
  const auto model = mn4_intel();
  const auto sig = kernels::dgemm();
  const auto b = model.analyze(sig, 1e9, 48);
  EXPECT_NEAR(b.achieved_flops, 1e9 * sig.flops_per_elem / b.total_s, 1.0);
}

TEST(ExecModel, RejectsBadCoreCounts) {
  const auto model = cte_gnu();
  EXPECT_THROW(model.time(kernels::dgemm(), 1.0, 0).value(), ContractError);
  EXPECT_THROW(model.time(kernels::dgemm(), 1.0, 49).value(), ContractError);
}

TEST(KernelLibrary, IntensitiesAreSane) {
  // Streaming kernels well below 1 flop/byte; dense well above.
  EXPECT_LT(kernels::stream_triad().intensity(), 0.2);
  EXPECT_LT(kernels::spmv_csr().intensity(), 0.3);
  EXPECT_GT(kernels::dgemm().intensity(), 2.0);
}

TEST(KernelLibrary, VendorHpcgKernelsRemainMemoryBound) {
  // Even perfectly tuned, SpMV/SymGS must stay bandwidth-limited — that is
  // why HPCG sits at ~3% of peak on both machines (Fig. 7).
  ExecModel tuned(arch::cte_arm().node, arch::vendor_tuned());
  const auto b = tuned.analyze(kernels::spmv_csr(), 1e8, 48);
  EXPECT_GT(b.memory_s, b.compute_s);
}

}  // namespace
}  // namespace ctesim::roofline
