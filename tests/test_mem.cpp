// Tests for the STREAM simulator against the paper's Fig. 2 / Fig. 3
// anchor numbers.
#include <gtest/gtest.h>

#include "arch/configs.h"
#include "mem/stream_sim.h"

namespace ctesim::mem {
namespace {

using arch::Language;

TEST(StreamSim, Fig2CteArmPeaksNear24Threads) {
  StreamSimulator sim(arch::cte_arm());
  // Paper: 292.0 GB/s best (29% of peak), reached around 24 threads, C.
  double best = 0.0;
  int best_threads = 0;
  for (int t = 1; t <= 48; ++t) {
    const double bw = sim.omp_bandwidth(StreamKernel::kTriad, t, Language::kC).value();
    if (bw > best) {
      best = bw;
      best_threads = t;
    }
  }
  EXPECT_NEAR(best, 292.0e9, 5.0e9);
  EXPECT_GE(best_threads, 20);
  EXPECT_LE(best_threads, 28);
  EXPECT_NEAR(best / arch::cte_arm().node.peak_bw().value(), 0.29, 0.01);
}

TEST(StreamSim, Fig2MareNostrumBestAt48Threads) {
  StreamSimulator sim(arch::marenostrum4());
  // Paper: 201.2 GB/s (66% of peak) with 48 threads.
  double best = 0.0;
  int best_threads = 0;
  for (int t = 1; t <= 48; ++t) {
    const double bw = sim.omp_bandwidth(StreamKernel::kTriad, t, Language::kC).value();
    if (bw >= best) {
      best = bw;
      best_threads = t;
    }
  }
  EXPECT_EQ(best_threads, 48);
  EXPECT_NEAR(best, 201.2e9, 4.0e9);
  // Note: the paper calls 201.2 GB/s "66% of the peak", but per its own
  // Table I peak of 256 GB/s the ratio is 78.6%. We reproduce the absolute
  // bandwidth; the percentage in the text is internally inconsistent.
  EXPECT_NEAR(best / arch::marenostrum4().node.peak_bw().value(), 0.786, 0.02);
}

TEST(StreamSim, Fig2LanguageFactorOnCteArm) {
  StreamSimulator sim(arch::cte_arm());
  // Paper: "C running ~10% faster than Fortran" (OpenMP-only, A64FX).
  const double c = sim.omp_bandwidth(StreamKernel::kTriad, 24, Language::kC).value();
  const double f =
      sim.omp_bandwidth(StreamKernel::kTriad, 24, Language::kFortran).value();
  EXPECT_NEAR(c / f, 1.10, 0.01);
}

TEST(StreamSim, Fig3HybridFortranReaches84Percent) {
  StreamSimulator sim(arch::cte_arm());
  const double bw =
      sim.hybrid_bandwidth(StreamKernel::kTriad, 4, 12, Language::kFortran).value();
  EXPECT_NEAR(bw, 862.6e9, 3.0e9);
  EXPECT_NEAR(bw / arch::cte_arm().node.peak_bw().value(), 0.84, 0.01);
}

TEST(StreamSim, Fig3HybridCAnomaly) {
  StreamSimulator sim(arch::cte_arm());
  // Paper: C hybrid reaches only 421.1 GB/s (no explanation given).
  const double c =
      sim.hybrid_bandwidth(StreamKernel::kTriad, 4, 12, Language::kC).value();
  EXPECT_NEAR(c, 421.1e9, 3.0e9);
}

TEST(StreamSim, HybridMatchesOmpOnMareNostrum) {
  StreamSimulator sim(arch::marenostrum4());
  const double hybrid =
      sim.hybrid_bandwidth(StreamKernel::kTriad, 2, 24, Language::kFortran).value();
  const double omp =
      sim.omp_bandwidth(StreamKernel::kTriad, 48, Language::kFortran).value();
  // On MN4 there is no single-process penalty: both layouts saturate DDR4.
  EXPECT_NEAR(hybrid / omp, 1.0, 0.05);
}

TEST(StreamSim, KernelOrdering) {
  StreamSimulator sim(arch::cte_arm());
  // Triad/Add >= Copy/Scale, as in every published STREAM table.
  const auto at = [&](StreamKernel k) {
    return sim.omp_bandwidth(k, 24, Language::kC).value();
  };
  EXPECT_GE(at(StreamKernel::kTriad), at(StreamKernel::kCopy));
  EXPECT_GE(at(StreamKernel::kAdd), at(StreamKernel::kScale));
}

TEST(StreamSim, MinElementsRule) {
  // E >= max(1e7, 4*S/8): both machines have S small enough that the 1e7
  // floor wins for MN4's L3+L2 (114 MiB -> 59.8e6... actually above 1e7).
  StreamSimulator cte(arch::cte_arm());
  EXPECT_EQ(cte.min_elements(),
            static_cast<std::size_t>(4.0 * 32.0 * 1024 * 1024 / 8.0));
  StreamSimulator mn4(arch::marenostrum4());
  EXPECT_EQ(mn4.min_elements(),
            static_cast<std::size_t>(4.0 * 114.0 * 1024 * 1024 / 8.0));
}

TEST(StreamSim, BytesPerElement) {
  EXPECT_EQ(bytes_per_element(StreamKernel::kCopy), 16u);
  EXPECT_EQ(bytes_per_element(StreamKernel::kScale), 16u);
  EXPECT_EQ(bytes_per_element(StreamKernel::kAdd), 24u);
  EXPECT_EQ(bytes_per_element(StreamKernel::kTriad), 24u);
}

}  // namespace
}  // namespace ctesim::mem
