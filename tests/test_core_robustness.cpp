// Robustness tests for the DES core: dynamic spawning, multi-failure
// handling, move-only channel payloads, zero-delay ordering.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <vector>

#include "core/channel.h"
#include "core/engine.h"
#include "core/sync.h"
#include "core/task.h"

namespace ctesim::sim {
namespace {

Task<> child(Engine& engine, Time dt, std::vector<Time>* log) {
  co_await engine.delay(dt);
  log->push_back(engine.now());
}

Task<> spawner(Engine& engine, std::vector<Time>* log) {
  co_await engine.delay(10);
  // Spawning from inside a running process must work (the new process
  // starts at the current simulated time).
  engine.spawn(child(engine, 5, log));
  co_await engine.delay(100);
  log->push_back(engine.now());
}

TEST(EngineRobustness, SpawnDuringRun) {
  Engine engine;
  std::vector<Time> log;
  engine.spawn(spawner(engine, &log));
  engine.run();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0], 15);   // child finished at 10 + 5
  EXPECT_EQ(log[1], 110);  // spawner at 10 + 100
  EXPECT_EQ(engine.unfinished_processes(), 0u);
}

Task<> fails_at(Engine& engine, Time t, const char* what) {
  co_await engine.delay(t);
  throw std::runtime_error(what);
}

TEST(EngineRobustness, FirstFailureReportedOthersContained) {
  Engine engine;
  engine.spawn(fails_at(engine, 10, "first"));
  engine.spawn(fails_at(engine, 20, "second"));
  // run() drains the queue, then rethrows a stored failure.
  try {
    engine.run();
    FAIL() << "expected runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_TRUE(what == "first" || what == "second");
  }
}

TEST(EngineRobustness, ZeroDelayPreservesProgramOrder) {
  Engine engine;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    engine.spawn([](Engine& eng, std::vector<int>* log,
                    int id) -> Task<> {
      co_await eng.delay(0);  // ready-path, no suspension
      log->push_back(id);
      co_await eng.delay(7);
      log->push_back(id + 100);
    }(engine, &order, i));
  }
  engine.run();
  ASSERT_EQ(order.size(), 10u);
  // First wave in spawn order, second wave in spawn order.
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
    EXPECT_EQ(order[static_cast<std::size_t>(5 + i)], i + 100);
  }
}

Task<> move_producer(Engine& engine, Channel<std::unique_ptr<int>>& ch) {
  for (int i = 0; i < 3; ++i) {
    co_await engine.delay(1);
    ch.push(std::make_unique<int>(i));
  }
}

Task<> move_consumer(Channel<std::unique_ptr<int>>& ch, int* sum) {
  for (int i = 0; i < 3; ++i) {
    auto v = co_await ch.pop();
    *sum += *v;
  }
}

TEST(ChannelRobustness, MoveOnlyPayloads) {
  Engine engine;
  Channel<std::unique_ptr<int>> ch(engine);
  int sum = 0;
  engine.spawn(move_producer(engine, ch));
  engine.spawn(move_consumer(ch, &sum));
  engine.run();
  EXPECT_EQ(sum, 0 + 1 + 2);
}

TEST(ChannelRobustness, ManyProducersOneConsumerFifoPerProducer) {
  Engine engine;
  Channel<int> ch(engine);
  for (int p = 0; p < 3; ++p) {
    engine.spawn([](Engine& eng, Channel<int>& c, int producer) -> Task<> {
      for (int i = 0; i < 4; ++i) {
        co_await eng.delay(10);
        c.push(producer * 10 + i);
      }
    }(engine, ch, p));
  }
  std::vector<int> got;
  engine.spawn([](Channel<int>& c, std::vector<int>* out) -> Task<> {
    for (int i = 0; i < 12; ++i) out->push_back(co_await c.pop());
  }(ch, &got));
  engine.run();
  ASSERT_EQ(got.size(), 12u);
  // Per-producer order is preserved even though producers interleave.
  for (int p = 0; p < 3; ++p) {
    int last = -1;
    for (int v : got) {
      if (v / 10 == p) {
        EXPECT_GT(v % 10, last);
        last = v % 10;
      }
    }
    EXPECT_EQ(last, 3);
  }
}

TEST(EngineRobustness, RunUntilThenRunCompletes) {
  Engine engine;
  std::vector<Time> log;
  engine.spawn(child(engine, 100, &log));
  engine.spawn(child(engine, 300, &log));
  EXPECT_FALSE(engine.run_until(200));
  EXPECT_EQ(log.size(), 1u);
  EXPECT_EQ(engine.unfinished_processes(), 1u);
  engine.run();
  EXPECT_EQ(log.size(), 2u);
  EXPECT_EQ(engine.unfinished_processes(), 0u);
}

Task<> event_chain(Engine& engine, Event& a, Event& b) {
  co_await a.wait();
  co_await engine.delay(5);
  b.set();
}

TEST(SyncRobustness, EventChainsCompose) {
  Engine engine;
  Event a(engine);
  Event b(engine);
  Time b_seen = -1;
  engine.spawn(event_chain(engine, a, b));
  engine.spawn([](Engine& eng, Event& evt, Time* when) -> Task<> {
    co_await evt.wait();
    *when = eng.now();
  }(engine, b, &b_seen));
  engine.schedule_in(50, [&] { a.set(); });
  engine.run();
  EXPECT_EQ(b_seen, 55);
}

}  // namespace
}  // namespace ctesim::sim
