file(REMOVE_RECURSE
  "CMakeFiles/test_core_robustness.dir/test_core_robustness.cpp.o"
  "CMakeFiles/test_core_robustness.dir/test_core_robustness.cpp.o.d"
  "test_core_robustness"
  "test_core_robustness.pdb"
  "test_core_robustness[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
