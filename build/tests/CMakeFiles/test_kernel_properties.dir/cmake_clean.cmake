file(REMOVE_RECURSE
  "CMakeFiles/test_kernel_properties.dir/test_kernel_properties.cpp.o"
  "CMakeFiles/test_kernel_properties.dir/test_kernel_properties.cpp.o.d"
  "test_kernel_properties"
  "test_kernel_properties.pdb"
  "test_kernel_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kernel_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
