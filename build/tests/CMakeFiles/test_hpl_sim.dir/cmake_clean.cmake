file(REMOVE_RECURSE
  "CMakeFiles/test_hpl_sim.dir/test_hpl_sim.cpp.o"
  "CMakeFiles/test_hpl_sim.dir/test_hpl_sim.cpp.o.d"
  "test_hpl_sim"
  "test_hpl_sim.pdb"
  "test_hpl_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hpl_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
