# Empty compiler generated dependencies file for test_hpl_sim.
# This may be replaced when dependencies are built.
