file(REMOVE_RECURSE
  "CMakeFiles/test_simmpi_ext.dir/test_simmpi_ext.cpp.o"
  "CMakeFiles/test_simmpi_ext.dir/test_simmpi_ext.cpp.o.d"
  "test_simmpi_ext"
  "test_simmpi_ext.pdb"
  "test_simmpi_ext[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simmpi_ext.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
