# Empty dependencies file for test_simmpi_ext.
# This may be replaced when dependencies are built.
