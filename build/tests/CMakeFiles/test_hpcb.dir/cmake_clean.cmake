file(REMOVE_RECURSE
  "CMakeFiles/test_hpcb.dir/test_hpcb.cpp.o"
  "CMakeFiles/test_hpcb.dir/test_hpcb.cpp.o.d"
  "test_hpcb"
  "test_hpcb.pdb"
  "test_hpcb[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hpcb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
