# Empty compiler generated dependencies file for test_hpcb.
# This may be replaced when dependencies are built.
