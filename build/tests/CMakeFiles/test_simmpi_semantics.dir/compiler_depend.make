# Empty compiler generated dependencies file for test_simmpi_semantics.
# This may be replaced when dependencies are built.
