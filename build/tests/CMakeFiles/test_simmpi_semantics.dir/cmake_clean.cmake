file(REMOVE_RECURSE
  "CMakeFiles/test_simmpi_semantics.dir/test_simmpi_semantics.cpp.o"
  "CMakeFiles/test_simmpi_semantics.dir/test_simmpi_semantics.cpp.o.d"
  "test_simmpi_semantics"
  "test_simmpi_semantics.pdb"
  "test_simmpi_semantics[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simmpi_semantics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
