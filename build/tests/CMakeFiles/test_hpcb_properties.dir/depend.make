# Empty dependencies file for test_hpcb_properties.
# This may be replaced when dependencies are built.
