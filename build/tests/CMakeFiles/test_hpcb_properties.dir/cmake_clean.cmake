file(REMOVE_RECURSE
  "CMakeFiles/test_hpcb_properties.dir/test_hpcb_properties.cpp.o"
  "CMakeFiles/test_hpcb_properties.dir/test_hpcb_properties.cpp.o.d"
  "test_hpcb_properties"
  "test_hpcb_properties.pdb"
  "test_hpcb_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hpcb_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
