file(REMOVE_RECURSE
  "CMakeFiles/test_app_properties.dir/test_app_properties.cpp.o"
  "CMakeFiles/test_app_properties.dir/test_app_properties.cpp.o.d"
  "test_app_properties"
  "test_app_properties.pdb"
  "test_app_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_app_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
