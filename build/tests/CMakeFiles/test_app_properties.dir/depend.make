# Empty dependencies file for test_app_properties.
# This may be replaced when dependencies are built.
