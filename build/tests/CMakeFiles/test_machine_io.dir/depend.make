# Empty dependencies file for test_machine_io.
# This may be replaced when dependencies are built.
