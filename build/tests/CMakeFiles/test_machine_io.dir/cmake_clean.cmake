file(REMOVE_RECURSE
  "CMakeFiles/test_machine_io.dir/test_machine_io.cpp.o"
  "CMakeFiles/test_machine_io.dir/test_machine_io.cpp.o.d"
  "test_machine_io"
  "test_machine_io.pdb"
  "test_machine_io[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_machine_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
