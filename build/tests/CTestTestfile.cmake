# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_app_properties[1]_include.cmake")
include("/root/repo/build/tests/test_apps[1]_include.cmake")
include("/root/repo/build/tests/test_arch[1]_include.cmake")
include("/root/repo/build/tests/test_congestion[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_core_robustness[1]_include.cmake")
include("/root/repo/build/tests/test_gantt[1]_include.cmake")
include("/root/repo/build/tests/test_hpcb[1]_include.cmake")
include("/root/repo/build/tests/test_hpcb_properties[1]_include.cmake")
include("/root/repo/build/tests/test_hpl_sim[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_io[1]_include.cmake")
include("/root/repo/build/tests/test_kernel_properties[1]_include.cmake")
include("/root/repo/build/tests/test_kernels[1]_include.cmake")
include("/root/repo/build/tests/test_log[1]_include.cmake")
include("/root/repo/build/tests/test_machine_io[1]_include.cmake")
include("/root/repo/build/tests/test_mem[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_report[1]_include.cmake")
include("/root/repo/build/tests/test_roofline[1]_include.cmake")
include("/root/repo/build/tests/test_sched[1]_include.cmake")
include("/root/repo/build/tests/test_simmpi[1]_include.cmake")
include("/root/repo/build/tests/test_simmpi_ext[1]_include.cmake")
include("/root/repo/build/tests/test_simmpi_semantics[1]_include.cmake")
include("/root/repo/build/tests/test_sync[1]_include.cmake")
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_validate[1]_include.cmake")
