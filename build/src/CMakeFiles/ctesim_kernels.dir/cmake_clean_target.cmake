file(REMOVE_RECURSE
  "libctesim_kernels.a"
)
