# Empty compiler generated dependencies file for ctesim_kernels.
# This may be replaced when dependencies are built.
