
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernels/dense.cpp" "src/CMakeFiles/ctesim_kernels.dir/kernels/dense.cpp.o" "gcc" "src/CMakeFiles/ctesim_kernels.dir/kernels/dense.cpp.o.d"
  "/root/repo/src/kernels/fft.cpp" "src/CMakeFiles/ctesim_kernels.dir/kernels/fft.cpp.o" "gcc" "src/CMakeFiles/ctesim_kernels.dir/kernels/fft.cpp.o.d"
  "/root/repo/src/kernels/fma.cpp" "src/CMakeFiles/ctesim_kernels.dir/kernels/fma.cpp.o" "gcc" "src/CMakeFiles/ctesim_kernels.dir/kernels/fma.cpp.o.d"
  "/root/repo/src/kernels/md.cpp" "src/CMakeFiles/ctesim_kernels.dir/kernels/md.cpp.o" "gcc" "src/CMakeFiles/ctesim_kernels.dir/kernels/md.cpp.o.d"
  "/root/repo/src/kernels/multigrid.cpp" "src/CMakeFiles/ctesim_kernels.dir/kernels/multigrid.cpp.o" "gcc" "src/CMakeFiles/ctesim_kernels.dir/kernels/multigrid.cpp.o.d"
  "/root/repo/src/kernels/sparse.cpp" "src/CMakeFiles/ctesim_kernels.dir/kernels/sparse.cpp.o" "gcc" "src/CMakeFiles/ctesim_kernels.dir/kernels/sparse.cpp.o.d"
  "/root/repo/src/kernels/stencil.cpp" "src/CMakeFiles/ctesim_kernels.dir/kernels/stencil.cpp.o" "gcc" "src/CMakeFiles/ctesim_kernels.dir/kernels/stencil.cpp.o.d"
  "/root/repo/src/kernels/stream.cpp" "src/CMakeFiles/ctesim_kernels.dir/kernels/stream.cpp.o" "gcc" "src/CMakeFiles/ctesim_kernels.dir/kernels/stream.cpp.o.d"
  "/root/repo/src/kernels/transpose.cpp" "src/CMakeFiles/ctesim_kernels.dir/kernels/transpose.cpp.o" "gcc" "src/CMakeFiles/ctesim_kernels.dir/kernels/transpose.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ctesim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
