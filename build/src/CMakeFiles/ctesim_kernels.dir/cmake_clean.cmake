file(REMOVE_RECURSE
  "CMakeFiles/ctesim_kernels.dir/kernels/dense.cpp.o"
  "CMakeFiles/ctesim_kernels.dir/kernels/dense.cpp.o.d"
  "CMakeFiles/ctesim_kernels.dir/kernels/fft.cpp.o"
  "CMakeFiles/ctesim_kernels.dir/kernels/fft.cpp.o.d"
  "CMakeFiles/ctesim_kernels.dir/kernels/fma.cpp.o"
  "CMakeFiles/ctesim_kernels.dir/kernels/fma.cpp.o.d"
  "CMakeFiles/ctesim_kernels.dir/kernels/md.cpp.o"
  "CMakeFiles/ctesim_kernels.dir/kernels/md.cpp.o.d"
  "CMakeFiles/ctesim_kernels.dir/kernels/multigrid.cpp.o"
  "CMakeFiles/ctesim_kernels.dir/kernels/multigrid.cpp.o.d"
  "CMakeFiles/ctesim_kernels.dir/kernels/sparse.cpp.o"
  "CMakeFiles/ctesim_kernels.dir/kernels/sparse.cpp.o.d"
  "CMakeFiles/ctesim_kernels.dir/kernels/stencil.cpp.o"
  "CMakeFiles/ctesim_kernels.dir/kernels/stencil.cpp.o.d"
  "CMakeFiles/ctesim_kernels.dir/kernels/stream.cpp.o"
  "CMakeFiles/ctesim_kernels.dir/kernels/stream.cpp.o.d"
  "CMakeFiles/ctesim_kernels.dir/kernels/transpose.cpp.o"
  "CMakeFiles/ctesim_kernels.dir/kernels/transpose.cpp.o.d"
  "libctesim_kernels.a"
  "libctesim_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctesim_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
