file(REMOVE_RECURSE
  "CMakeFiles/ctesim_apps.dir/apps/alya.cpp.o"
  "CMakeFiles/ctesim_apps.dir/apps/alya.cpp.o.d"
  "CMakeFiles/ctesim_apps.dir/apps/gromacs.cpp.o"
  "CMakeFiles/ctesim_apps.dir/apps/gromacs.cpp.o.d"
  "CMakeFiles/ctesim_apps.dir/apps/nemo.cpp.o"
  "CMakeFiles/ctesim_apps.dir/apps/nemo.cpp.o.d"
  "CMakeFiles/ctesim_apps.dir/apps/openifs.cpp.o"
  "CMakeFiles/ctesim_apps.dir/apps/openifs.cpp.o.d"
  "CMakeFiles/ctesim_apps.dir/apps/wrf.cpp.o"
  "CMakeFiles/ctesim_apps.dir/apps/wrf.cpp.o.d"
  "libctesim_apps.a"
  "libctesim_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctesim_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
