# Empty dependencies file for ctesim_apps.
# This may be replaced when dependencies are built.
