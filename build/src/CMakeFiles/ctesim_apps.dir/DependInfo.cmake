
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/alya.cpp" "src/CMakeFiles/ctesim_apps.dir/apps/alya.cpp.o" "gcc" "src/CMakeFiles/ctesim_apps.dir/apps/alya.cpp.o.d"
  "/root/repo/src/apps/gromacs.cpp" "src/CMakeFiles/ctesim_apps.dir/apps/gromacs.cpp.o" "gcc" "src/CMakeFiles/ctesim_apps.dir/apps/gromacs.cpp.o.d"
  "/root/repo/src/apps/nemo.cpp" "src/CMakeFiles/ctesim_apps.dir/apps/nemo.cpp.o" "gcc" "src/CMakeFiles/ctesim_apps.dir/apps/nemo.cpp.o.d"
  "/root/repo/src/apps/openifs.cpp" "src/CMakeFiles/ctesim_apps.dir/apps/openifs.cpp.o" "gcc" "src/CMakeFiles/ctesim_apps.dir/apps/openifs.cpp.o.d"
  "/root/repo/src/apps/wrf.cpp" "src/CMakeFiles/ctesim_apps.dir/apps/wrf.cpp.o" "gcc" "src/CMakeFiles/ctesim_apps.dir/apps/wrf.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ctesim_simmpi.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ctesim_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ctesim_io.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ctesim_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ctesim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ctesim_roofline.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ctesim_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ctesim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
