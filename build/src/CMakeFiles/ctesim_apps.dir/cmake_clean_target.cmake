file(REMOVE_RECURSE
  "libctesim_apps.a"
)
