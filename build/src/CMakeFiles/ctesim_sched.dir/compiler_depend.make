# Empty compiler generated dependencies file for ctesim_sched.
# This may be replaced when dependencies are built.
