file(REMOVE_RECURSE
  "libctesim_sched.a"
)
