file(REMOVE_RECURSE
  "CMakeFiles/ctesim_sched.dir/sched/allocator.cpp.o"
  "CMakeFiles/ctesim_sched.dir/sched/allocator.cpp.o.d"
  "libctesim_sched.a"
  "libctesim_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctesim_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
