
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/arch/compiler.cpp" "src/CMakeFiles/ctesim_arch.dir/arch/compiler.cpp.o" "gcc" "src/CMakeFiles/ctesim_arch.dir/arch/compiler.cpp.o.d"
  "/root/repo/src/arch/configs.cpp" "src/CMakeFiles/ctesim_arch.dir/arch/configs.cpp.o" "gcc" "src/CMakeFiles/ctesim_arch.dir/arch/configs.cpp.o.d"
  "/root/repo/src/arch/machine_io.cpp" "src/CMakeFiles/ctesim_arch.dir/arch/machine_io.cpp.o" "gcc" "src/CMakeFiles/ctesim_arch.dir/arch/machine_io.cpp.o.d"
  "/root/repo/src/arch/validate.cpp" "src/CMakeFiles/ctesim_arch.dir/arch/validate.cpp.o" "gcc" "src/CMakeFiles/ctesim_arch.dir/arch/validate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ctesim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
