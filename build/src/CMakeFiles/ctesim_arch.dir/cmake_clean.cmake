file(REMOVE_RECURSE
  "CMakeFiles/ctesim_arch.dir/arch/compiler.cpp.o"
  "CMakeFiles/ctesim_arch.dir/arch/compiler.cpp.o.d"
  "CMakeFiles/ctesim_arch.dir/arch/configs.cpp.o"
  "CMakeFiles/ctesim_arch.dir/arch/configs.cpp.o.d"
  "CMakeFiles/ctesim_arch.dir/arch/machine_io.cpp.o"
  "CMakeFiles/ctesim_arch.dir/arch/machine_io.cpp.o.d"
  "CMakeFiles/ctesim_arch.dir/arch/validate.cpp.o"
  "CMakeFiles/ctesim_arch.dir/arch/validate.cpp.o.d"
  "libctesim_arch.a"
  "libctesim_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctesim_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
