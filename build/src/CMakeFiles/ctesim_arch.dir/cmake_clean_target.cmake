file(REMOVE_RECURSE
  "libctesim_arch.a"
)
