# Empty dependencies file for ctesim_arch.
# This may be replaced when dependencies are built.
