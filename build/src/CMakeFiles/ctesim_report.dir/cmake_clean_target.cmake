file(REMOVE_RECURSE
  "libctesim_report.a"
)
