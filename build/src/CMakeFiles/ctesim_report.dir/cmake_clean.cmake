file(REMOVE_RECURSE
  "CMakeFiles/ctesim_report.dir/report/gantt.cpp.o"
  "CMakeFiles/ctesim_report.dir/report/gantt.cpp.o.d"
  "CMakeFiles/ctesim_report.dir/report/plot.cpp.o"
  "CMakeFiles/ctesim_report.dir/report/plot.cpp.o.d"
  "CMakeFiles/ctesim_report.dir/report/table.cpp.o"
  "CMakeFiles/ctesim_report.dir/report/table.cpp.o.d"
  "libctesim_report.a"
  "libctesim_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctesim_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
