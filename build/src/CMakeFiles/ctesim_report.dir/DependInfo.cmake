
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/report/gantt.cpp" "src/CMakeFiles/ctesim_report.dir/report/gantt.cpp.o" "gcc" "src/CMakeFiles/ctesim_report.dir/report/gantt.cpp.o.d"
  "/root/repo/src/report/plot.cpp" "src/CMakeFiles/ctesim_report.dir/report/plot.cpp.o" "gcc" "src/CMakeFiles/ctesim_report.dir/report/plot.cpp.o.d"
  "/root/repo/src/report/table.cpp" "src/CMakeFiles/ctesim_report.dir/report/table.cpp.o" "gcc" "src/CMakeFiles/ctesim_report.dir/report/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ctesim_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ctesim_simmpi.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ctesim_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ctesim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ctesim_roofline.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ctesim_arch.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
