# Empty compiler generated dependencies file for ctesim_report.
# This may be replaced when dependencies are built.
