# Empty compiler generated dependencies file for ctesim_mem.
# This may be replaced when dependencies are built.
