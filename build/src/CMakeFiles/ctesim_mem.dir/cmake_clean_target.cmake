file(REMOVE_RECURSE
  "libctesim_mem.a"
)
