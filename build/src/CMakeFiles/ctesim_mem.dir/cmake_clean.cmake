file(REMOVE_RECURSE
  "CMakeFiles/ctesim_mem.dir/mem/stream_sim.cpp.o"
  "CMakeFiles/ctesim_mem.dir/mem/stream_sim.cpp.o.d"
  "libctesim_mem.a"
  "libctesim_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctesim_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
