# Empty compiler generated dependencies file for ctesim_roofline.
# This may be replaced when dependencies are built.
