file(REMOVE_RECURSE
  "CMakeFiles/ctesim_roofline.dir/roofline/exec_model.cpp.o"
  "CMakeFiles/ctesim_roofline.dir/roofline/exec_model.cpp.o.d"
  "CMakeFiles/ctesim_roofline.dir/roofline/kernel_library.cpp.o"
  "CMakeFiles/ctesim_roofline.dir/roofline/kernel_library.cpp.o.d"
  "libctesim_roofline.a"
  "libctesim_roofline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctesim_roofline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
