file(REMOVE_RECURSE
  "libctesim_roofline.a"
)
