# Empty dependencies file for ctesim_core.
# This may be replaced when dependencies are built.
