file(REMOVE_RECURSE
  "CMakeFiles/ctesim_core.dir/core/engine.cpp.o"
  "CMakeFiles/ctesim_core.dir/core/engine.cpp.o.d"
  "libctesim_core.a"
  "libctesim_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctesim_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
