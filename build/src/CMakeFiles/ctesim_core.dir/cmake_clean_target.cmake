file(REMOVE_RECURSE
  "libctesim_core.a"
)
