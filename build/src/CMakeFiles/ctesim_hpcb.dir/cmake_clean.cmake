file(REMOVE_RECURSE
  "CMakeFiles/ctesim_hpcb.dir/hpcb/hpcg.cpp.o"
  "CMakeFiles/ctesim_hpcb.dir/hpcb/hpcg.cpp.o.d"
  "CMakeFiles/ctesim_hpcb.dir/hpcb/hpl.cpp.o"
  "CMakeFiles/ctesim_hpcb.dir/hpcb/hpl.cpp.o.d"
  "CMakeFiles/ctesim_hpcb.dir/hpcb/hpl_sim.cpp.o"
  "CMakeFiles/ctesim_hpcb.dir/hpcb/hpl_sim.cpp.o.d"
  "libctesim_hpcb.a"
  "libctesim_hpcb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctesim_hpcb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
