file(REMOVE_RECURSE
  "libctesim_hpcb.a"
)
