# Empty dependencies file for ctesim_hpcb.
# This may be replaced when dependencies are built.
