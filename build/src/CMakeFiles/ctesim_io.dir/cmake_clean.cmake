file(REMOVE_RECURSE
  "CMakeFiles/ctesim_io.dir/io/filesystem.cpp.o"
  "CMakeFiles/ctesim_io.dir/io/filesystem.cpp.o.d"
  "libctesim_io.a"
  "libctesim_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctesim_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
