# Empty dependencies file for ctesim_io.
# This may be replaced when dependencies are built.
