file(REMOVE_RECURSE
  "libctesim_io.a"
)
