# Empty compiler generated dependencies file for ctesim_util.
# This may be replaced when dependencies are built.
