file(REMOVE_RECURSE
  "libctesim_util.a"
)
