file(REMOVE_RECURSE
  "CMakeFiles/ctesim_util.dir/util/check.cpp.o"
  "CMakeFiles/ctesim_util.dir/util/check.cpp.o.d"
  "CMakeFiles/ctesim_util.dir/util/cli.cpp.o"
  "CMakeFiles/ctesim_util.dir/util/cli.cpp.o.d"
  "CMakeFiles/ctesim_util.dir/util/csv.cpp.o"
  "CMakeFiles/ctesim_util.dir/util/csv.cpp.o.d"
  "CMakeFiles/ctesim_util.dir/util/log.cpp.o"
  "CMakeFiles/ctesim_util.dir/util/log.cpp.o.d"
  "CMakeFiles/ctesim_util.dir/util/rng.cpp.o"
  "CMakeFiles/ctesim_util.dir/util/rng.cpp.o.d"
  "CMakeFiles/ctesim_util.dir/util/stats.cpp.o"
  "CMakeFiles/ctesim_util.dir/util/stats.cpp.o.d"
  "CMakeFiles/ctesim_util.dir/util/units.cpp.o"
  "CMakeFiles/ctesim_util.dir/util/units.cpp.o.d"
  "libctesim_util.a"
  "libctesim_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctesim_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
