# Empty compiler generated dependencies file for ctesim_net.
# This may be replaced when dependencies are built.
