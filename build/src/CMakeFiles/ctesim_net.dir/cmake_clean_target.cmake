file(REMOVE_RECURSE
  "libctesim_net.a"
)
