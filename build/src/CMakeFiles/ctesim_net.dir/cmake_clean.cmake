file(REMOVE_RECURSE
  "CMakeFiles/ctesim_net.dir/net/congestion.cpp.o"
  "CMakeFiles/ctesim_net.dir/net/congestion.cpp.o.d"
  "CMakeFiles/ctesim_net.dir/net/network.cpp.o"
  "CMakeFiles/ctesim_net.dir/net/network.cpp.o.d"
  "CMakeFiles/ctesim_net.dir/net/topology.cpp.o"
  "CMakeFiles/ctesim_net.dir/net/topology.cpp.o.d"
  "libctesim_net.a"
  "libctesim_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctesim_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
