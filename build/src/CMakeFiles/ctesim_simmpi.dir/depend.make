# Empty dependencies file for ctesim_simmpi.
# This may be replaced when dependencies are built.
