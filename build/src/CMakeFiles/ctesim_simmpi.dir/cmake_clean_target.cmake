file(REMOVE_RECURSE
  "libctesim_simmpi.a"
)
