file(REMOVE_RECURSE
  "CMakeFiles/ctesim_simmpi.dir/simmpi/placement.cpp.o"
  "CMakeFiles/ctesim_simmpi.dir/simmpi/placement.cpp.o.d"
  "CMakeFiles/ctesim_simmpi.dir/simmpi/world.cpp.o"
  "CMakeFiles/ctesim_simmpi.dir/simmpi/world.cpp.o.d"
  "libctesim_simmpi.a"
  "libctesim_simmpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctesim_simmpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
