file(REMOVE_RECURSE
  "../bench/fig8_alya_timestep"
  "../bench/fig8_alya_timestep.pdb"
  "CMakeFiles/fig8_alya_timestep.dir/fig8_alya_timestep.cpp.o"
  "CMakeFiles/fig8_alya_timestep.dir/fig8_alya_timestep.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_alya_timestep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
