# Empty compiler generated dependencies file for fig8_alya_timestep.
# This may be replaced when dependencies are built.
