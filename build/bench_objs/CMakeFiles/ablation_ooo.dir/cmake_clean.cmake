file(REMOVE_RECURSE
  "../bench/ablation_ooo"
  "../bench/ablation_ooo.pdb"
  "CMakeFiles/ablation_ooo.dir/ablation_ooo.cpp.o"
  "CMakeFiles/ablation_ooo.dir/ablation_ooo.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_ooo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
