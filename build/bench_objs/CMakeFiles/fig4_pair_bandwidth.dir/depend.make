# Empty dependencies file for fig4_pair_bandwidth.
# This may be replaced when dependencies are built.
