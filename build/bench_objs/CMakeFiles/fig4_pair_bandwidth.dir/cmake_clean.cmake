file(REMOVE_RECURSE
  "../bench/fig4_pair_bandwidth"
  "../bench/fig4_pair_bandwidth.pdb"
  "CMakeFiles/fig4_pair_bandwidth.dir/fig4_pair_bandwidth.cpp.o"
  "CMakeFiles/fig4_pair_bandwidth.dir/fig4_pair_bandwidth.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_pair_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
