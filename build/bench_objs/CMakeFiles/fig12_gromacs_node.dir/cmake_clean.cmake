file(REMOVE_RECURSE
  "../bench/fig12_gromacs_node"
  "../bench/fig12_gromacs_node.pdb"
  "CMakeFiles/fig12_gromacs_node.dir/fig12_gromacs_node.cpp.o"
  "CMakeFiles/fig12_gromacs_node.dir/fig12_gromacs_node.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_gromacs_node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
