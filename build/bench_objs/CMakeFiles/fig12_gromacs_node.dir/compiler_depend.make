# Empty compiler generated dependencies file for fig12_gromacs_node.
# This may be replaced when dependencies are built.
