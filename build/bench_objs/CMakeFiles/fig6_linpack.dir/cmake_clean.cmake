file(REMOVE_RECURSE
  "../bench/fig6_linpack"
  "../bench/fig6_linpack.pdb"
  "CMakeFiles/fig6_linpack.dir/fig6_linpack.cpp.o"
  "CMakeFiles/fig6_linpack.dir/fig6_linpack.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_linpack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
