# Empty dependencies file for fig6_linpack.
# This may be replaced when dependencies are built.
