file(REMOVE_RECURSE
  "../bench/fig10_alya_solver"
  "../bench/fig10_alya_solver.pdb"
  "CMakeFiles/fig10_alya_solver.dir/fig10_alya_solver.cpp.o"
  "CMakeFiles/fig10_alya_solver.dir/fig10_alya_solver.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_alya_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
