# Empty compiler generated dependencies file for fig10_alya_solver.
# This may be replaced when dependencies are built.
