# Empty compiler generated dependencies file for fig7_hpcg.
# This may be replaced when dependencies are built.
