file(REMOVE_RECURSE
  "../bench/fig7_hpcg"
  "../bench/fig7_hpcg.pdb"
  "CMakeFiles/fig7_hpcg.dir/fig7_hpcg.cpp.o"
  "CMakeFiles/fig7_hpcg.dir/fig7_hpcg.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_hpcg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
