file(REMOVE_RECURSE
  "../bench/table4_speedup_summary"
  "../bench/table4_speedup_summary.pdb"
  "CMakeFiles/table4_speedup_summary.dir/table4_speedup_summary.cpp.o"
  "CMakeFiles/table4_speedup_summary.dir/table4_speedup_summary.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_speedup_summary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
