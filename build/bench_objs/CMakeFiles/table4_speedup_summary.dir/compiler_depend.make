# Empty compiler generated dependencies file for table4_speedup_summary.
# This may be replaced when dependencies are built.
