file(REMOVE_RECURSE
  "../bench/fig3_stream_hybrid"
  "../bench/fig3_stream_hybrid.pdb"
  "CMakeFiles/fig3_stream_hybrid.dir/fig3_stream_hybrid.cpp.o"
  "CMakeFiles/fig3_stream_hybrid.dir/fig3_stream_hybrid.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_stream_hybrid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
