# Empty dependencies file for fig3_stream_hybrid.
# This may be replaced when dependencies are built.
