# Empty dependencies file for fig14_openifs_node.
# This may be replaced when dependencies are built.
