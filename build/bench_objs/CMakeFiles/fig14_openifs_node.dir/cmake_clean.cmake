file(REMOVE_RECURSE
  "../bench/fig14_openifs_node"
  "../bench/fig14_openifs_node.pdb"
  "CMakeFiles/fig14_openifs_node.dir/fig14_openifs_node.cpp.o"
  "CMakeFiles/fig14_openifs_node.dir/fig14_openifs_node.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_openifs_node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
