# Empty dependencies file for ablation_vectorization.
# This may be replaced when dependencies are built.
