file(REMOVE_RECURSE
  "../bench/ablation_vectorization"
  "../bench/ablation_vectorization.pdb"
  "CMakeFiles/ablation_vectorization.dir/ablation_vectorization.cpp.o"
  "CMakeFiles/ablation_vectorization.dir/ablation_vectorization.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_vectorization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
