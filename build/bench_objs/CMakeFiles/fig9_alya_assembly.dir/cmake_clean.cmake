file(REMOVE_RECURSE
  "../bench/fig9_alya_assembly"
  "../bench/fig9_alya_assembly.pdb"
  "CMakeFiles/fig9_alya_assembly.dir/fig9_alya_assembly.cpp.o"
  "CMakeFiles/fig9_alya_assembly.dir/fig9_alya_assembly.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_alya_assembly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
