# Empty compiler generated dependencies file for fig9_alya_assembly.
# This may be replaced when dependencies are built.
