# Empty dependencies file for fig16_wrf.
# This may be replaced when dependencies are built.
