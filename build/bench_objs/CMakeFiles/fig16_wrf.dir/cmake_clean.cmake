file(REMOVE_RECURSE
  "../bench/fig16_wrf"
  "../bench/fig16_wrf.pdb"
  "CMakeFiles/fig16_wrf.dir/fig16_wrf.cpp.o"
  "CMakeFiles/fig16_wrf.dir/fig16_wrf.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_wrf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
