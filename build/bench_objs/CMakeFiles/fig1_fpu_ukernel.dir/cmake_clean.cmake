file(REMOVE_RECURSE
  "../bench/fig1_fpu_ukernel"
  "../bench/fig1_fpu_ukernel.pdb"
  "CMakeFiles/fig1_fpu_ukernel.dir/fig1_fpu_ukernel.cpp.o"
  "CMakeFiles/fig1_fpu_ukernel.dir/fig1_fpu_ukernel.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_fpu_ukernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
