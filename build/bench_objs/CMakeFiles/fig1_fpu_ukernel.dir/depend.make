# Empty dependencies file for fig1_fpu_ukernel.
# This may be replaced when dependencies are built.
