file(REMOVE_RECURSE
  "../bench/fig15_openifs_multi"
  "../bench/fig15_openifs_multi.pdb"
  "CMakeFiles/fig15_openifs_multi.dir/fig15_openifs_multi.cpp.o"
  "CMakeFiles/fig15_openifs_multi.dir/fig15_openifs_multi.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_openifs_multi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
