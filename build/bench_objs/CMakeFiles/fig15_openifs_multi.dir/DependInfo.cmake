
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig15_openifs_multi.cpp" "bench_objs/CMakeFiles/fig15_openifs_multi.dir/fig15_openifs_multi.cpp.o" "gcc" "bench_objs/CMakeFiles/fig15_openifs_multi.dir/fig15_openifs_multi.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ctesim_hpcb.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ctesim_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ctesim_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ctesim_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ctesim_report.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ctesim_simmpi.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ctesim_roofline.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ctesim_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ctesim_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ctesim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ctesim_io.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ctesim_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ctesim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
