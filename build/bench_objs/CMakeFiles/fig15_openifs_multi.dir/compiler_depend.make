# Empty compiler generated dependencies file for fig15_openifs_multi.
# This may be replaced when dependencies are built.
