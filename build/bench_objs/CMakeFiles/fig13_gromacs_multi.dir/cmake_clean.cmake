file(REMOVE_RECURSE
  "../bench/fig13_gromacs_multi"
  "../bench/fig13_gromacs_multi.pdb"
  "CMakeFiles/fig13_gromacs_multi.dir/fig13_gromacs_multi.cpp.o"
  "CMakeFiles/fig13_gromacs_multi.dir/fig13_gromacs_multi.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_gromacs_multi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
