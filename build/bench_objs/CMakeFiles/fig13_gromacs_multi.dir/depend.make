# Empty dependencies file for fig13_gromacs_multi.
# This may be replaced when dependencies are built.
