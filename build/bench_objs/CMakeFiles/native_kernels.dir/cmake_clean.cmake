file(REMOVE_RECURSE
  "../bench/native_kernels"
  "../bench/native_kernels.pdb"
  "CMakeFiles/native_kernels.dir/native_kernels.cpp.o"
  "CMakeFiles/native_kernels.dir/native_kernels.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/native_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
