# Empty dependencies file for table2_stream_builds.
# This may be replaced when dependencies are built.
