file(REMOVE_RECURSE
  "../bench/table2_stream_builds"
  "../bench/table2_stream_builds.pdb"
  "CMakeFiles/table2_stream_builds.dir/table2_stream_builds.cpp.o"
  "CMakeFiles/table2_stream_builds.dir/table2_stream_builds.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_stream_builds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
