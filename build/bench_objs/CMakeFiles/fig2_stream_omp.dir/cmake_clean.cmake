file(REMOVE_RECURSE
  "../bench/fig2_stream_omp"
  "../bench/fig2_stream_omp.pdb"
  "CMakeFiles/fig2_stream_omp.dir/fig2_stream_omp.cpp.o"
  "CMakeFiles/fig2_stream_omp.dir/fig2_stream_omp.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_stream_omp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
