# Empty dependencies file for fig2_stream_omp.
# This may be replaced when dependencies are built.
