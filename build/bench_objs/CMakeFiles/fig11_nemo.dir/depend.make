# Empty dependencies file for fig11_nemo.
# This may be replaced when dependencies are built.
