file(REMOVE_RECURSE
  "../bench/fig11_nemo"
  "../bench/fig11_nemo.pdb"
  "CMakeFiles/fig11_nemo.dir/fig11_nemo.cpp.o"
  "CMakeFiles/fig11_nemo.dir/fig11_nemo.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_nemo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
