# Empty dependencies file for fig5_bw_distribution.
# This may be replaced when dependencies are built.
