file(REMOVE_RECURSE
  "../bench/fig5_bw_distribution"
  "../bench/fig5_bw_distribution.pdb"
  "CMakeFiles/fig5_bw_distribution.dir/fig5_bw_distribution.cpp.o"
  "CMakeFiles/fig5_bw_distribution.dir/fig5_bw_distribution.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_bw_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
