# Empty dependencies file for table1_hwconfig.
# This may be replaced when dependencies are built.
