file(REMOVE_RECURSE
  "../bench/table1_hwconfig"
  "../bench/table1_hwconfig.pdb"
  "CMakeFiles/table1_hwconfig.dir/table1_hwconfig.cpp.o"
  "CMakeFiles/table1_hwconfig.dir/table1_hwconfig.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_hwconfig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
