# Empty dependencies file for table3_appconfig.
# This may be replaced when dependencies are built.
