file(REMOVE_RECURSE
  "../bench/table3_appconfig"
  "../bench/table3_appconfig.pdb"
  "CMakeFiles/table3_appconfig.dir/table3_appconfig.cpp.o"
  "CMakeFiles/table3_appconfig.dir/table3_appconfig.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_appconfig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
