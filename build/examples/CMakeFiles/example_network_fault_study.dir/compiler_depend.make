# Empty compiler generated dependencies file for example_network_fault_study.
# This may be replaced when dependencies are built.
