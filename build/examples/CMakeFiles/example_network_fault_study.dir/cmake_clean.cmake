file(REMOVE_RECURSE
  "CMakeFiles/example_network_fault_study.dir/network_fault_study.cpp.o"
  "CMakeFiles/example_network_fault_study.dir/network_fault_study.cpp.o.d"
  "example_network_fault_study"
  "example_network_fault_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_network_fault_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
