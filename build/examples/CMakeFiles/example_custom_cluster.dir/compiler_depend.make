# Empty compiler generated dependencies file for example_custom_cluster.
# This may be replaced when dependencies are built.
