file(REMOVE_RECURSE
  "CMakeFiles/example_custom_cluster.dir/custom_cluster.cpp.o"
  "CMakeFiles/example_custom_cluster.dir/custom_cluster.cpp.o.d"
  "example_custom_cluster"
  "example_custom_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_custom_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
