# Empty dependencies file for example_app_scaling_study.
# This may be replaced when dependencies are built.
