file(REMOVE_RECURSE
  "CMakeFiles/example_app_scaling_study.dir/app_scaling_study.cpp.o"
  "CMakeFiles/example_app_scaling_study.dir/app_scaling_study.cpp.o.d"
  "example_app_scaling_study"
  "example_app_scaling_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_app_scaling_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
