# Empty dependencies file for example_export_machines.
# This may be replaced when dependencies are built.
