file(REMOVE_RECURSE
  "CMakeFiles/example_export_machines.dir/export_machines.cpp.o"
  "CMakeFiles/example_export_machines.dir/export_machines.cpp.o.d"
  "example_export_machines"
  "example_export_machines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_export_machines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
