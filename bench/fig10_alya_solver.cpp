// Fig. 10: Alya Solver phase (slowest process, avg of 19 steps) — the
// memory/communication-bound CG where HBM compresses the gap to ~1.8x.
#include <cstdio>
#include <iostream>

#include "apps/alya.h"
#include "arch/configs.h"
#include "bench_common.h"
#include "report/plot.h"
#include "report/table.h"

using namespace ctesim;

int main(int argc, char** argv) {
  std::string csv_path;
  if (!bench::parse_harness(argc, argv, "fig10_alya_solver",
                            "Alya solver phase", &csv_path)) {
    return 0;
  }
  bench::banner("Fig. 10", "Alya: Solver phase");

  const auto cte = arch::cte_arm();
  const auto mn4 = arch::marenostrum4();
  report::Table table("solver seconds per step (slowest process)",
                      {"nodes", "CTE-Arm", "MareNostrum 4"});
  std::vector<double> cx, cy, mx, my;
  std::unique_ptr<CsvWriter> csv;
  if (!csv_path.empty()) {
    csv = std::make_unique<CsvWriter>(
        csv_path, std::vector<std::string>{"machine", "nodes", "solver_s"});
  }
  for (int nodes : {4, 8, 12, 16, 22, 32, 44, 62, 78}) {
    const auto a = apps::run_alya(cte, nodes);
    const auto b = apps::run_alya(mn4, nodes);
    table.row({std::to_string(nodes),
               a.fits_memory ? report::fixed(a.solver_per_step, 3) : "NP",
               (b.fits_memory && nodes <= 16)
                   ? report::fixed(b.solver_per_step, 3)
                   : "-"});
    if (a.fits_memory) {
      cx.push_back(nodes);
      cy.push_back(a.solver_per_step);
      if (csv) {
        csv->row(std::vector<std::string>{
            "cte", std::to_string(nodes), report::fixed(a.solver_per_step, 5)});
      }
    }
    if (b.fits_memory && nodes <= 16) {
      mx.push_back(nodes);
      my.push_back(b.solver_per_step);
      if (csv) {
        csv->row(std::vector<std::string>{
            "mn4", std::to_string(nodes), report::fixed(b.solver_per_step, 5)});
      }
    }
  }
  table.print(std::cout);

  report::LineChart chart("Alya solver phase", 72, 16);
  chart.set_log_x(true);
  chart.set_log_y(true);
  chart.set_axis_labels("nodes", "s");
  chart.series("CTE-Arm", cx, cy);
  chart.series("MareNostrum 4", mx, my);
  std::printf("\n");
  chart.print(std::cout);

  const auto c12 = apps::run_alya(cte, 12);
  const auto m12 = apps::run_alya(mn4, 12);
  const auto c22 = apps::run_alya(cte, 22);
  std::printf(
      "\nheadline: @12 nodes gap is %.2fx (paper: 1.79x, vs 4.96x in "
      "assembly — HBM compresses the memory-bound phase); 22 CTE nodes = "
      "%.3f s vs 12 MN4 = %.3f s (paper: equal at 22)\n",
      c12.solver_per_step / m12.solver_per_step, c22.solver_per_step,
      m12.solver_per_step);
  return 0;
}
