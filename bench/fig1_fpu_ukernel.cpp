// Fig. 1: sustained performance of the six FPU microkernel variants
// (scalar/vector x half/single/double) on one core of each machine.
//
// The simulated bars come from the core models (peak x the calibrated
// kernel efficiency); the harness also runs the *native* FMA kernel on the
// host as a sanity anchor that the kernel methodology itself is sound.
#include <cstdio>
#include <iostream>

#include "arch/calibration.h"
#include "arch/configs.h"
#include "bench_common.h"
#include "kernels/fma.h"
#include "report/table.h"
#include "simmpi/world.h"

using namespace ctesim;

namespace {

struct Variant {
  const char* name;
  arch::Precision precision;
  bool vector;
};

constexpr Variant kVariants[] = {
    {"scalar-half", arch::Precision::kHalf, false},
    {"scalar-single", arch::Precision::kSingle, false},
    {"scalar-double", arch::Precision::kDouble, false},
    {"vector-half", arch::Precision::kHalf, true},
    {"vector-single", arch::Precision::kSingle, true},
    {"vector-double", arch::Precision::kDouble, true},
};

double peak(const arch::CoreModel& core, const Variant& v) {
  return (v.vector ? core.peak_vector_flops(v.precision)
                   : core.peak_scalar_flops())
      .value();
}

}  // namespace

int main(int argc, char** argv) {
  std::string csv_path;
  if (!bench::parse_harness(argc, argv, "fig1_fpu_ukernel",
                            "FPU microkernel, one core", &csv_path)) {
    return 0;
  }
  bench::banner("Fig. 1", "FPU uKernel sustained performance (one core)");

  const auto cte = arch::cte_arm();
  const auto mn4 = arch::marenostrum4();
  const double eff = arch::calib::kFpuKernelEfficiency;

  report::Table table("FPU uKernel, GFlop/s (% of theoretical peak)",
                      {"variant", "CTE-Arm", "%peak", "MareNostrum 4",
                       "%peak"});
  std::unique_ptr<CsvWriter> csv;
  if (!csv_path.empty()) {
    csv = std::make_unique<CsvWriter>(
        csv_path, std::vector<std::string>{"variant", "cte_gflops",
                                           "cte_pct", "mn4_gflops",
                                           "mn4_pct"});
  }
  for (const auto& v : kVariants) {
    const double cte_peak = peak(cte.node.core, v);
    const double mn4_peak = peak(mn4.node.core, v);
    const double cte_sustained = cte_peak * eff;
    const double mn4_sustained = mn4_peak * eff;
    table.row({v.name, report::fixed(cte_sustained / 1e9, 2),
               report::fixed(100.0 * cte_sustained / cte_peak, 1),
               report::fixed(mn4_sustained / 1e9, 2),
               report::fixed(100.0 * mn4_sustained / mn4_peak, 1)});
    if (csv) {
      csv->row(std::vector<double>{
          0.0 + (&v - kVariants), cte_sustained / 1e9,
          100.0 * cte_sustained / cte_peak, mn4_sustained / 1e9,
          100.0 * mn4_sustained / mn4_peak});
    }
  }
  table.print(std::cout);

  std::printf(
      "\nNote: vector-half on MareNostrum 4 runs at the single-precision\n"
      "rate (AVX-512 has no FP16 arithmetic); A64FX doubles it (SVE FP16).\n");

  // Section III-A also verifies "no variability of the performance within
  // a node running a multi-threaded version ... and no variability across
  // the nodes": the simulated per-core rates are identical by construction
  // and the per-node spread under system jitter stays below 1%.
  {
    mpi::WorldOptions options;
    options.machine = cte;
    options.compute_jitter = 0.002;  // measured-run noise floor
    mpi::World world(std::move(options),
                     mpi::Placement::per_node(cte.node, 8));
    world.run([](mpi::Rank& r) -> sim::Task<> {
      const double t0 = r.now_s();
      co_await r.compute(
          roofline::KernelSig{.name = "fma",
                              .cls = arch::KernelClass::kFmaThroughput,
                              .flops_per_elem = 2.0,
                              .bytes_per_elem = 0.0},
          1e9);
      r.phase_add("fma", r.now_s() - t0);
    });
    const double spread =
        (world.phase_max("fma") - world.phase_avg("fma")) /
        world.phase_avg("fma");
    std::printf(
        "\nvariability check: multi-node FMA spread %.2f%% of mean "
        "(paper: \"no variability\" within or across nodes)\n",
        100.0 * spread);
  }

  // Native anchor: the same methodology (independent FMA chains) on the
  // host, with a closed-form correctness check.
  const auto native = kernels::fma_throughput_f64(4'000'000);
  const double expected = kernels::fma_expected_checksum_f64(4'000'000);
  std::printf(
      "\nNative host anchor: %.2f GFlop/s double FMA (checksum %s)\n",
      native.gflops,
      native.checksum == expected ? "exact" : "MISMATCH");
  return native.checksum == expected ? 0 : 1;
}
