// Server throughput: requests/sec of the capacity-planning service over
// its real TCP path, and what the result cache buys (docs/SERVER.md).
//
// An in-process daemon (Service + TcpServer) receives two waves of
// simulate requests from concurrent client connections:
//   * cold wave — every request a distinct seed, so every one runs a
//     full cluster simulation;
//   * warm wave — the same requests again, so every one is a cache hit
//     answered from stored bytes.
// The report is requests/sec per wave plus the cache-hit speedup, with the
// server's own stats line as a cross-check (hits == warm-wave requests).
//
// Wall-clock timing is the measurement here, not simulation state; bench/
// is outside the simulation determinism envelope (see ctesim_lint).
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "report/table.h"
#include "server/client.h"
#include "server/service.h"
#include "server/tcp.h"

using namespace ctesim;

namespace {

std::string simulate_line(int jobs, int seed) {
  return "{\"op\":\"simulate\",\"machine\":\"cte-arm\",\"jobs\":" +
         std::to_string(jobs) + ",\"seed\":" + std::to_string(seed) + "}";
}

/// Fire `requests` across `clients` concurrent connections; returns
/// elapsed seconds. Seeds are round-robin over `distinct_seeds`.
double run_wave(int port, int clients, int requests, int jobs,
                int distinct_seeds) {
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([=] {
      server::Client client("127.0.0.1", port);
      for (int r = c; r < requests; r += clients) {
        client.request(simulate_line(jobs, 1 + (r % distinct_seeds)));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(end - start).count();
}

}  // namespace

int main(int argc, char** argv) {
  std::string csv_path;
  std::int64_t workers = 4;
  std::int64_t clients = 4;
  std::int64_t requests = 32;
  std::int64_t jobs = 150;
  Cli cli("server_throughput",
          "requests/sec and cache-hit speedup of the what-if server");
  cli.option("workers", &workers, "server worker threads")
      .option("clients", &clients, "concurrent client connections")
      .option("requests", &requests, "requests per wave")
      .option("jobs", &jobs, "workload size per request");
  if (!bench::parse_harness(argc, argv, "server_throughput",
                            "what-if server throughput", &csv_path, &cli)) {
    return 0;
  }
  if (workers < 1 || clients < 1 || requests < 1 || jobs < 1) {
    std::fprintf(stderr, "server_throughput: all options must be >= 1\n");
    return 1;
  }
  bench::banner("Server throughput",
                "concurrent what-if serving with result caching");

  server::ServiceConfig config;
  config.workers = static_cast<int>(workers);
  config.queue_capacity = static_cast<int>(requests);  // no shedding here
  config.cache_capacity = static_cast<std::size_t>(requests);
  server::Service service(config);
  server::TcpServer tcp(service, server::TcpOptions{});
  tcp.start();

  const int distinct = static_cast<int>(requests);
  const double cold_s = run_wave(tcp.port(), static_cast<int>(clients),
                                 static_cast<int>(requests),
                                 static_cast<int>(jobs), distinct);
  const double warm_s = run_wave(tcp.port(), static_cast<int>(clients),
                                 static_cast<int>(requests),
                                 static_cast<int>(jobs), distinct);

  const auto stats = service.stats();
  tcp.stop();
  service.shutdown();

  const double cold_rps = static_cast<double>(requests) / cold_s;
  const double warm_rps = static_cast<double>(requests) / warm_s;
  std::printf("workers=%lld clients=%lld requests/wave=%lld jobs=%lld\n",
              static_cast<long long>(workers),
              static_cast<long long>(clients),
              static_cast<long long>(requests),
              static_cast<long long>(jobs));
  std::printf("cold wave: %8.2f req/s  (%.3f s, every request simulated)\n",
              cold_rps, cold_s);
  std::printf("warm wave: %8.2f req/s  (%.3f s, every request a cache hit)\n",
              warm_rps, warm_s);
  std::printf("cache-hit speedup: %.1fx   server stats: hits=%llu "
              "misses=%llu completed=%llu\n",
              cold_s / warm_s,
              static_cast<unsigned long long>(stats.cache.hits),
              static_cast<unsigned long long>(stats.cache.misses),
              static_cast<unsigned long long>(stats.completed));
  if (stats.cache.hits != static_cast<std::uint64_t>(requests)) {
    std::fprintf(stderr,
                 "server_throughput: expected %lld warm hits, saw %llu\n",
                 static_cast<long long>(requests),
                 static_cast<unsigned long long>(stats.cache.hits));
    return 1;
  }
  if (!csv_path.empty()) {
    CsvWriter csv(csv_path,
                  {"wave", "requests", "clients", "workers", "jobs",
                   "elapsed_s", "req_per_s"});
    csv.row({"cold", std::to_string(requests), std::to_string(clients),
             std::to_string(workers), std::to_string(jobs),
             report::fixed(cold_s, 4), report::fixed(cold_rps, 2)});
    csv.row({"warm", std::to_string(requests), std::to_string(clients),
             std::to_string(workers), std::to_string(jobs),
             report::fixed(warm_s, 4), report::fixed(warm_rps, 2)});
  }
  return 0;
}
