// Fig. 9: Alya Assembly phase (slowest process, avg of 19 steps) — the
// compute-intensive FEM element loop where the GNU/SVE vectorization gap
// bites hardest.
#include <cstdio>
#include <iostream>

#include "apps/alya.h"
#include "arch/configs.h"
#include "bench_common.h"
#include "report/plot.h"
#include "report/table.h"

using namespace ctesim;

int main(int argc, char** argv) {
  std::string csv_path;
  if (!bench::parse_harness(argc, argv, "fig9_alya_assembly",
                            "Alya assembly phase", &csv_path)) {
    return 0;
  }
  bench::banner("Fig. 9", "Alya: Assembly phase");

  const auto cte = arch::cte_arm();
  const auto mn4 = arch::marenostrum4();
  report::Table table("assembly seconds per step (slowest process)",
                      {"nodes", "CTE-Arm", "MareNostrum 4"});
  std::vector<double> cx, cy, mx, my;
  std::unique_ptr<CsvWriter> csv;
  if (!csv_path.empty()) {
    csv = std::make_unique<CsvWriter>(
        csv_path, std::vector<std::string>{"machine", "nodes", "assembly_s"});
  }
  for (int nodes : {4, 8, 12, 16, 22, 32, 44, 62, 78}) {
    const auto a = apps::run_alya(cte, nodes);
    const auto b = apps::run_alya(mn4, nodes);
    table.row({std::to_string(nodes),
               a.fits_memory ? report::fixed(a.assembly_per_step, 3) : "NP",
               (b.fits_memory && nodes <= 16)
                   ? report::fixed(b.assembly_per_step, 3)
                   : "-"});
    if (a.fits_memory) {
      cx.push_back(nodes);
      cy.push_back(a.assembly_per_step);
      if (csv) {
        csv->row(std::vector<std::string>{"cte", std::to_string(nodes),
                                          report::fixed(a.assembly_per_step,
                                                        5)});
      }
    }
    if (b.fits_memory && nodes <= 16) {
      mx.push_back(nodes);
      my.push_back(b.assembly_per_step);
      if (csv) {
        csv->row(std::vector<std::string>{"mn4", std::to_string(nodes),
                                          report::fixed(b.assembly_per_step,
                                                        5)});
      }
    }
  }
  table.print(std::cout);

  report::LineChart chart("Alya assembly phase", 72, 16);
  chart.set_log_x(true);
  chart.set_log_y(true);
  chart.set_axis_labels("nodes", "s");
  chart.series("CTE-Arm", cx, cy);
  chart.series("MareNostrum 4", mx, my);
  std::printf("\n");
  chart.print(std::cout);

  const auto c12 = apps::run_alya(cte, 12);
  const auto m12 = apps::run_alya(mn4, 12);
  const auto c62 = apps::run_alya(cte, 62);
  std::printf(
      "\nheadline: @12 nodes MN4 is %.2fx faster (paper: 4.96x); 62 CTE "
      "nodes = %.3f s vs 12 MN4 = %.3f s (paper: equal at 62)\n",
      c12.assembly_per_step / m12.assembly_per_step, c62.assembly_per_step,
      m12.assembly_per_step);
  return 0;
}
