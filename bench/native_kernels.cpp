// Native google-benchmark suite for the real numerical kernels: what the
// host actually sustains on the loops whose signatures drive the machine
// models. Useful for validating the flop/byte accounting of the kernel
// library on real silicon.
#include <benchmark/benchmark.h>

#include "kernels/dense.h"
#include "kernels/fft.h"
#include "kernels/fma.h"
#include "kernels/md.h"
#include "kernels/multigrid.h"
#include "kernels/sparse.h"
#include "kernels/stencil.h"
#include "kernels/stream.h"
#include "kernels/transpose.h"
#include "util/rng.h"

namespace {

using namespace ctesim;

void BM_StreamTriad(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  kernels::Stream stream(n);
  for (auto _ : state) {
    stream.triad();
    benchmark::ClobberMemory();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n) * 24);
}
BENCHMARK(BM_StreamTriad)->Arg(1 << 16)->Arg(1 << 20)->Arg(1 << 22);

void BM_FmaThroughputF64(benchmark::State& state) {
  const auto iters = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    auto r = kernels::fma_throughput_f64(iters);
    benchmark::DoNotOptimize(r.checksum);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(iters) * 32);
}
BENCHMARK(BM_FmaThroughputF64)->Arg(100000);

void BM_Spmv27(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto a = kernels::build_poisson27(n, n, n);
  std::vector<double> x(a.rows, 1.0);
  std::vector<double> y(a.rows);
  for (auto _ : state) {
    kernels::spmv(a, x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(a.nnz()) * 2);
}
BENCHMARK(BM_Spmv27)->Arg(16)->Arg(32);

void BM_SymGs(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto a = kernels::build_poisson27(n, n, n);
  std::vector<double> b(a.rows, 1.0);
  std::vector<double> x(a.rows, 0.0);
  for (auto _ : state) {
    kernels::symgs_sweep(a, b, x);
    benchmark::DoNotOptimize(x.data());
  }
}
BENCHMARK(BM_SymGs)->Arg(16)->Arg(32);

void BM_MiniHpcgVcycle(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const kernels::MultigridHierarchy mg(n, n, n, 3);
  std::vector<double> r(mg.matrix(0).rows, 1.0);
  std::vector<double> z;
  for (auto _ : state) {
    mg.v_cycle(r, z);
    benchmark::DoNotOptimize(z.data());
  }
}
BENCHMARK(BM_MiniHpcgVcycle)->Arg(16)->Arg(32);

void BM_LuFactor(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  kernels::Matrix a0(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) a0.at(i, j) = rng.uniform(-1, 1);
  }
  for (auto _ : state) {
    kernels::Matrix a = a0;
    std::vector<std::size_t> pivots;
    benchmark::DoNotOptimize(kernels::lu_factor(a, pivots));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * n * n * n / 3));
}
BENCHMARK(BM_LuFactor)->Arg(64)->Arg(128);

void BM_GemmBlocked(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  kernels::Matrix a(n, n, 1.0);
  kernels::Matrix b(n, n, 2.0);
  kernels::Matrix c(n, n);
  for (auto _ : state) {
    kernels::gemm_blocked(a, b, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * n * n * n));
}
BENCHMARK(BM_GemmBlocked)->Arg(128)->Arg(256);

void BM_MdStep(benchmark::State& state) {
  kernels::MdSystem md(kernels::MdConfig{
      .particles = static_cast<std::size_t>(state.range(0)),
      .box = 10.0,
      .cutoff = 2.5,
      .dt = 0.001});
  for (auto _ : state) {
    md.step();
    benchmark::DoNotOptimize(md.potential_energy());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(md.last_pair_count()));
}
BENCHMARK(BM_MdStep)->Arg(512)->Arg(2048);

void BM_DiffusionStep(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  kernels::Grid3D in(n, n, n, 1.0);
  kernels::Grid3D out(n, n, n);
  for (auto _ : state) {
    kernels::diffusion_step(in, out, 0.1);
    benchmark::DoNotOptimize(out.raw().data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(in.size()));
}
BENCHMARK(BM_DiffusionStep)->Arg(32)->Arg(64);

void BM_TransposeBlocked(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  std::vector<double> m(n * n);
  for (auto& v : m) v = rng.uniform(-1, 1);
  std::vector<double> t;
  for (auto _ : state) {
    kernels::transpose_blocked(m, n, n, t);
    benchmark::DoNotOptimize(t.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * n) * 16);
}
BENCHMARK(BM_TransposeBlocked)->Arg(256)->Arg(1024);

void BM_Fft(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(3);
  std::vector<kernels::Complex> base(n);
  for (auto& v : base) v = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  for (auto _ : state) {
    auto x = base;
    kernels::fft(x);
    benchmark::DoNotOptimize(x.data());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(kernels::fft_flops(n)));
}
BENCHMARK(BM_Fft)->Arg(1 << 10)->Arg(1 << 14);

}  // namespace
