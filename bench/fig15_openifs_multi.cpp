// Fig. 15: OpenIFS (TC0511L91) scalability across nodes; needs >= 32
// CTE-Arm nodes for memory.
#include <cstdio>
#include <iostream>

#include "apps/openifs.h"
#include "arch/configs.h"
#include "bench_common.h"
#include "report/plot.h"
#include "report/table.h"

using namespace ctesim;

int main(int argc, char** argv) {
  std::string csv_path;
  if (!bench::parse_harness(argc, argv, "fig15_openifs_multi",
                            "OpenIFS multi-node scalability", &csv_path)) {
    return 0;
  }
  bench::banner("Fig. 15", "OpenIFS: scalability across nodes (TC0511L91)");

  const auto cte = arch::cte_arm();
  const auto mn4 = arch::marenostrum4();
  apps::OpenIfsConfig config;
  config.input = apps::tc0511l91();
  std::printf("memory minimum: %d CTE-Arm nodes (paper: 32)\n\n",
              apps::openifs_min_nodes(cte, config));

  report::Table table("seconds per forecast day",
                      {"nodes", "CTE-Arm", "MareNostrum 4", "slowdown"});
  std::vector<double> cx, cy, mx, my;
  std::unique_ptr<CsvWriter> csv;
  if (!csv_path.empty()) {
    csv = std::make_unique<CsvWriter>(
        csv_path, std::vector<std::string>{"nodes", "cte_s", "mn4_s"});
  }
  for (int nodes : {8, 16, 32, 48, 64, 96, 128}) {
    const auto a = apps::run_openifs_nodes(cte, nodes, config);
    const auto b = apps::run_openifs_nodes(mn4, nodes, config);
    table.row(
        {std::to_string(nodes),
         a.fits_memory ? report::fixed(a.seconds_per_day, 2) : "NP",
         b.fits_memory ? report::fixed(b.seconds_per_day, 2) : "NP",
         (a.fits_memory && b.fits_memory)
             ? report::fixed(a.seconds_per_day / b.seconds_per_day, 2)
             : "-"});
    if (a.fits_memory) {
      cx.push_back(nodes);
      cy.push_back(a.seconds_per_day);
    }
    if (b.fits_memory) {
      mx.push_back(nodes);
      my.push_back(b.seconds_per_day);
    }
    if (csv && a.fits_memory && b.fits_memory) {
      csv->row(std::vector<double>{static_cast<double>(nodes),
                                   a.seconds_per_day, b.seconds_per_day});
    }
  }
  table.print(std::cout);

  report::LineChart chart("OpenIFS, multi-node", 72, 16);
  chart.set_log_x(true);
  chart.set_log_y(true);
  chart.set_axis_labels("nodes", "s/day");
  chart.series("CTE-Arm", cx, cy);
  chart.series("MareNostrum 4", mx, my);
  std::printf("\n");
  chart.print(std::cout);

  const double r32 =
      apps::run_openifs_nodes(cte, 32, config).seconds_per_day /
      apps::run_openifs_nodes(mn4, 32, config).seconds_per_day;
  const double r128 =
      apps::run_openifs_nodes(cte, 128, config).seconds_per_day /
      apps::run_openifs_nodes(mn4, 128, config).seconds_per_day;
  std::printf(
      "\nheadline: @32 nodes %.2fx slower (paper 3.55x); @128 nodes %.2fx "
      "(paper 2.56x)\n",
      r32, r128);
  return 0;
}
