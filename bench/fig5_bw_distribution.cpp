// Fig. 5: distribution of the point-to-point bandwidth over all node pairs
// of CTE-Arm as a function of message size (2^0 .. 2^24 bytes). Shows the
// bimodality at mid sizes (discrete hop-count groups + the eager/
// rendezvous switch) and the spread above 1 MB (distance-dependent
// bandwidth).
#include <cmath>
#include <cstdio>
#include <iostream>

#include "arch/calibration.h"
#include "arch/configs.h"
#include "bench_common.h"
#include "net/network.h"
#include "report/plot.h"
#include "util/stats.h"

using namespace ctesim;

int main(int argc, char** argv) {
  std::string csv_path;
  if (!bench::parse_harness(argc, argv, "fig5_bw_distribution",
                            "bandwidth distribution vs message size",
                            &csv_path)) {
    return 0;
  }
  bench::banner("Fig. 5", "bandwidth distribution over all node pairs");

  const auto machine = arch::cte_arm();
  net::Network network(machine.interconnect, machine.num_nodes);
  network.set_recv_degradation(arch::calib::kWeakNodeIndex,
                               arch::calib::kWeakNodeRecvFactor);
  const int n = machine.num_nodes;

  constexpr int kMaxPow = 24;
  constexpr int kBwBins = 64;
  // Bandwidth axis: log10 MB/s from 10^1.5 to 10^4 (30 MB/s .. 10 GB/s).
  const double lo = 1.0;
  const double hi = 4.0;
  report::Heatmap density("message size 2^p B (rows, top=2^0) vs log10 "
                          "bandwidth [MB/s] (cols): occurrence count",
                          kMaxPow + 1, kBwBins);
  std::unique_ptr<CsvWriter> csv;
  if (!csv_path.empty()) {
    csv = std::make_unique<CsvWriter>(
        csv_path,
        std::vector<std::string>{"pow2", "p10_mbps", "p50_mbps", "p90_mbps",
                                 "modes"});
  }
  std::printf("per-size summary (all %d x %d pairs):\n", n, n - 1);
  std::printf("%6s %12s %12s %12s %7s\n", "size", "p10 MB/s", "median",
              "p90 MB/s", "modes");
  for (int p = 0; p <= kMaxPow; ++p) {
    const std::uint64_t size = 1ull << p;
    Histogram hist(lo, hi, kBwBins);
    std::vector<double> sample;
    sample.reserve(static_cast<std::size_t>(n) * (n - 1));
    for (int src = 0; src < n; ++src) {
      for (int dst = 0; dst < n; ++dst) {
        if (src == dst) continue;
        const auto t = network.transfer(src, dst, size);
        const double mbps = t.bandwidth / 1e6;
        hist.add(std::log10(mbps));
        sample.push_back(mbps);
      }
    }
    for (int b = 0; b < kBwBins; ++b) {
      density.set(static_cast<std::size_t>(p), static_cast<std::size_t>(b),
                  static_cast<double>(hist.count(static_cast<std::size_t>(b))));
    }
    const int modes = hist.modes(0.05);
    std::printf("%6llu %12.1f %12.1f %12.1f %7d\n",
                static_cast<unsigned long long>(size),
                percentile(sample, 0.10), percentile(sample, 0.50),
                percentile(sample, 0.90), modes);
    if (csv) {
      csv->row(std::vector<double>{static_cast<double>(p),
                                   percentile(sample, 0.10),
                                   percentile(sample, 0.50),
                                   percentile(sample, 0.90),
                                   static_cast<double>(modes)});
    }
  }
  std::printf("\n");
  density.print(std::cout, 96);
  std::printf(
      "\nExpected shape (paper): multi-modal bandwidth between ~1 kB and\n"
      "256 kB (hop-count groups + protocol switch), widening spread above\n"
      "1 MB (distance-dependent effective bandwidth).\n");
  return 0;
}
