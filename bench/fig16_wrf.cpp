// Fig. 16: WRF (Iberia 4 km, 56 h, 54 output frames) scalability across
// nodes, with I/O enabled and disabled.
#include <cstdio>
#include <iostream>

#include "apps/wrf.h"
#include "arch/configs.h"
#include "bench_common.h"
#include "power/attribution.h"
#include "power/power_model.h"
#include "report/plot.h"
#include "report/table.h"
#include "roofline/exec_model.h"

using namespace ctesim;

int main(int argc, char** argv) {
  std::string csv_path;
  if (!bench::parse_harness(argc, argv, "fig16_wrf", "WRF scalability",
                            &csv_path)) {
    return 0;
  }
  bench::banner("Fig. 16", "WRF: scalability (Iberia 4 km, 56 h)");

  const auto cte = arch::cte_arm();
  const auto mn4 = arch::marenostrum4();
  apps::WrfConfig io_on;
  apps::WrfConfig io_off;
  io_off.io_enabled = false;

  report::Table table("elapsed seconds",
                      {"nodes", "CTE IO", "CTE noIO", "MN4 IO", "MN4 noIO",
                       "slowdown"});
  std::vector<double> cx, cy, mx, my;
  std::unique_ptr<CsvWriter> csv;
  if (!csv_path.empty()) {
    csv = std::make_unique<CsvWriter>(
        csv_path, std::vector<std::string>{"nodes", "cte_io", "cte_noio",
                                           "mn4_io", "mn4_noio"});
  }
  for (int nodes : {1, 2, 4, 8, 16, 32, 64}) {
    const auto a = apps::run_wrf(cte, nodes, io_on);
    const auto a2 = apps::run_wrf(cte, nodes, io_off);
    const auto b = apps::run_wrf(mn4, nodes, io_on);
    const auto b2 = apps::run_wrf(mn4, nodes, io_off);
    table.row(std::to_string(nodes),
              {a.total_time, a2.total_time, b.total_time, b2.total_time,
               a.total_time / b.total_time},
              1);
    cx.push_back(nodes);
    cy.push_back(a.total_time);
    mx.push_back(nodes);
    my.push_back(b.total_time);
    if (csv) {
      csv->row(std::vector<double>{static_cast<double>(nodes), a.total_time,
                                   a2.total_time, b.total_time,
                                   b2.total_time});
    }
  }
  table.print(std::cout);

  report::LineChart chart("WRF elapsed time (IO on)", 72, 16);
  chart.set_log_x(true);
  chart.set_log_y(true);
  chart.set_axis_labels("nodes", "seconds");
  chart.series("CTE-Arm", cx, cy);
  chart.series("MareNostrum 4", mx, my);
  std::printf("\n");
  chart.print(std::cout);

  const double r1 = apps::run_wrf(cte, 1, io_on).total_time /
                    apps::run_wrf(mn4, 1, io_on).total_time;
  const double r64 = apps::run_wrf(cte, 64, io_on).total_time /
                     apps::run_wrf(mn4, 64, io_on).total_time;
  std::printf(
      "\nheadline: 1 node %.2fx slower (paper 2.16x); 64 nodes %.2fx "
      "(paper 2.23x); IO on/off differ little, IO-off slightly ahead\n",
      r1, r64);

  // What-if beyond the paper: an MPI-IO style parallel frame writer.
  apps::WrfConfig pio;
  pio.parallel_io = true;
  const auto serial64 = apps::run_wrf(cte, 64, io_on);
  const auto parallel64 = apps::run_wrf(cte, 64, pio);
  std::printf(
      "what-if parallel I/O @64 CTE nodes: frame writes %.1f s -> %.1f s "
      "of the %.1f s total (io::FilesystemModel)\n",
      serial64.io_time, parallel64.io_time, serial64.total_time);

  // Where the Joules of the 56 h run go: price each simulated kernel's
  // roofline breakdown through power::attribute_kernel on 8 CTE-Arm nodes.
  // The components sum to the job total by construction, so the table's
  // share column is a true partition of the run's energy.
  const int en_nodes = 8;
  const auto pm = power::default_power(cte);
  const power::DvfsState& nominal = power::dvfs_state(0);
  const roofline::ExecModel exec(cte.node, arch::default_app_compiler(cte));
  const int cores = cte.node.core_count();
  const double points_per_node = static_cast<double>(io_on.grid_x) *
                                 io_on.grid_y * io_on.levels / en_nodes;
  const double invocations =
      static_cast<double>(io_on.steps) * en_nodes;  // per step, per node
  report::Table energy("energy attribution @ 8 CTE nodes (full 56 h run)",
                       {"kernel", "core [MJ]", "mem [MJ]", "static [MJ]",
                        "total [MJ]", "share"});
  double job_total_j = 0.0;
  std::vector<std::pair<const char*, power::KernelEnergy>> rows;
  for (const auto& sig :
       {apps::wrf_dynamics_kernel(io_on), apps::wrf_physics_kernel(io_on)}) {
    const auto b = exec.analyze(sig, points_per_node, cores);
    power::KernelEnergy e = power::attribute_kernel(b, cores, cte.node, pm,
                                                    nominal);
    e.core_j = e.core_j * invocations;
    e.memory_j = e.memory_j * invocations;
    e.static_j = e.static_j * invocations;
    e.total_j = e.total_j * invocations;
    job_total_j += e.total_j.value();
    rows.emplace_back(sig.name, e);
  }
  for (const auto& [name, e] : rows) {
    energy.row(name,
               {e.core_j.value() / 1e6, e.memory_j.value() / 1e6,
                e.static_j.value() / 1e6, e.total_j.value() / 1e6,
                e.total_j.value() / job_total_j},
               2);
  }
  std::printf("\n");
  energy.print(std::cout);
  std::printf(
      "job total: %.2f MJ across %d nodes — per-kernel Joules sum to the "
      "job total (tests/test_power.cpp asserts it)\n",
      job_total_j / 1e6, en_nodes);
  return 0;
}
