// Ablation: how much does the topology-aware scheduler buy?
//
// CTE-Arm's scheduler allocates compact torus blocks (Section II); its
// inability to let users pick nodes is one of the paper's complaints
// (Section VI, iv). This bench runs the same halo-exchange workload on 16
// nodes allocated three ways on a half-busy machine — compact block,
// first-free linear, random scatter — and reports the communication cost
// of each placement.
#include <cstdio>
#include <iostream>
#include <vector>

#include "arch/configs.h"
#include "bench_common.h"
#include "net/topology.h"
#include "report/table.h"
#include "sched/allocator.h"
#include "simmpi/world.h"

using namespace ctesim;

namespace {

double run_halo_on(const std::vector<int>& nodes, bool congestion) {
  mpi::WorldOptions options;
  options.machine = arch::cte_arm();
  options.network_jitter = 0.0;
  options.congestion = congestion;
  const int p = static_cast<int>(nodes.size());
  mpi::World world(std::move(options),
                   mpi::Placement::one_per_node_at(arch::cte_arm().node,
                                                   nodes));
  return world.run([p](mpi::Rank& r) -> sim::Task<> {
    std::vector<int> neighbors;
    if (r.id() > 0) neighbors.push_back(r.id() - 1);
    if (r.id() + 1 < p) neighbors.push_back(r.id() + 1);
    for (int step = 0; step < 50; ++step) {
      co_await r.exchange(neighbors, 256 * 1024);
      co_await r.allreduce(8);
    }
  });
}

}  // namespace

int main(int argc, char** argv) {
  std::string csv_path;
  if (!bench::parse_harness(argc, argv, "ablation_placement",
                            "scheduler allocation policies", &csv_path)) {
    return 0;
  }
  bench::banner("Ablation",
                "node allocation policy vs communication cost (16 nodes)");

  net::TorusTopology torus(arch::cte_arm().interconnect.dims);

  report::Table table(
      "50 halo steps + reductions on a half-busy 192-node torus",
      {"policy", "mean pairwise hops", "makespan [ms]",
       "congested [ms]"});
  std::unique_ptr<CsvWriter> csv;
  if (!csv_path.empty()) {
    csv = std::make_unique<CsvWriter>(
        csv_path, std::vector<std::string>{"policy", "hops", "ms",
                                           "congested_ms"});
  }
  for (auto policy :
       {sched::Policy::kContiguous, sched::Policy::kLinear,
        sched::Policy::kRandom}) {
    sched::Allocator alloc(torus);
    // Background load: every other node busy (a realistic production mix).
    std::vector<int> background;
    for (int n = 0; n < torus.num_nodes(); n += 2) background.push_back(n);
    alloc.occupy(background);
    const auto nodes = alloc.allocate(16, policy, /*seed=*/11);
    const double hops = alloc.mean_pairwise_hops(nodes);
    const double t = run_halo_on(nodes, false);
    const double tc = run_halo_on(nodes, true);
    table.row({sched::name_of(policy), report::fixed(hops, 2),
               report::fixed(t * 1e3, 3), report::fixed(tc * 1e3, 3)});
    if (csv) {
      csv->row(std::vector<std::string>{
          sched::name_of(policy), report::fixed(hops, 4),
          report::fixed(t * 1e3, 4), report::fixed(tc * 1e3, 4)});
    }
  }
  table.print(std::cout);
  std::printf(
      "\nReading: the compact block keeps neighbors 1-2 hops apart; random "
      "scatter multiplies hop counts and, under contention, queueing — the "
      "effect the topology-aware scheduler exists to avoid, and what users "
      "lose when they cannot control placement (paper Section VI, iv).\n");
  return 0;
}
