// Table II: build configurations for STREAM — and what the flags are worth.
//
// The paper's table is a build recipe; the interesting content is what the
// Fujitsu flags (-Kzfill, -Kprefetch_*) buy on HBM. This harness prints the
// recipe and then quantifies each toolchain's modelled streaming quality
// (fraction of the node's best bandwidth a stream kernel sustains).
#include <cstdio>
#include <iostream>

#include "arch/configs.h"
#include "bench_common.h"
#include "report/table.h"

using namespace ctesim;

int main(int argc, char** argv) {
  std::string csv_path;
  if (!bench::parse_harness(argc, argv, "table2_stream_builds",
                            "STREAM build configurations", &csv_path)) {
    return 0;
  }
  bench::banner("Table II", "build configurations for STREAM");

  report::Table builds("STREAM builds (as in the paper)",
                       {"build", "compiler", "key flags"});
  builds.row({"CTE-Arm OpenMP", "Fujitsu/1.2.26b",
              "-Kfast,parallel -KA64FX -KSVE -Kopenmp -Kzfill=100 "
              "-Kprefetch_sequential=soft -Kprefetch_iteration=8"});
  builds.row({"CTE-Arm MPI+OpenMP", "Fujitsu/1.2.26b",
              "same, without -mcmodel=large"});
  builds.row({"MareNostrum 4 OpenMP", "Intel/19.1.1.217",
              "-O3 -xHost -qopenmp-link=static -qopenmp"});
  builds.row({"MareNostrum 4 MPI+OpenMP", "Intel/19.1.1.217",
              "-O3 -xHost -qopenmp-link=static -qopenmp"});
  builds.print(std::cout);

  const auto cte = arch::cte_arm();
  const auto mn4 = arch::marenostrum4();
  report::Table effect(
      "modelled streaming quality by toolchain (stream kernel class)",
      {"machine", "compiler", "vectorization", "bw sustained"});
  std::unique_ptr<CsvWriter> csv;
  if (!csv_path.empty()) {
    csv = std::make_unique<CsvWriter>(
        csv_path, std::vector<std::string>{"machine", "compiler",
                                           "vectorization", "mem_eff"});
  }
  struct Row {
    const arch::MachineModel* machine;
    arch::CompilerModel compiler;
  };
  const Row rows[] = {
      {&cte, arch::fujitsu_compiler()},
      {&cte, arch::gnu_compiler()},
      {&mn4, arch::intel_compiler()},
      {&mn4, arch::gnu_compiler()},
  };
  for (const auto& r : rows) {
    const double vec = r.compiler.vectorization(arch::KernelClass::kStream,
                                                r.machine->node.core);
    const double mem = r.compiler.mem_efficiency(arch::KernelClass::kStream,
                                                 r.machine->node.core);
    effect.row({r.machine->name, arch::name_of(r.compiler.vendor()),
                report::fixed(vec, 2), report::fixed(100.0 * mem, 0) + "%"});
    if (csv) {
      csv->row(std::vector<std::string>{
          r.machine->name, arch::name_of(r.compiler.vendor()),
          report::fixed(vec, 3), report::fixed(mem, 3)});
    }
  }
  effect.print(std::cout);
  std::printf(
      "\nReading: the paper's STREAM numbers require the Fujitsu flags — a "
      "plain GNU build (no zfill/prefetch) sustains ~62%% of the tuned "
      "bandwidth on HBM, while on DDR4 the toolchain barely matters.\n");
  return 0;
}
