// Ablation: how much of the application gap is the scalar core?
//
// Sweeps the A64FX out-of-order scalar efficiency from its calibrated
// value up to Skylake class and reruns the full Alya proxy at 16 nodes —
// quantifying the paper's Section VI attribution ("the weaker out-of-order
// capabilities of the scalar core").
#include <cstdio>
#include <iostream>

#include "apps/alya.h"
#include "arch/calibration.h"
#include "arch/configs.h"
#include "bench_common.h"
#include "report/table.h"

using namespace ctesim;

int main(int argc, char** argv) {
  std::string csv_path;
  if (!bench::parse_harness(argc, argv, "ablation_ooo",
                            "scalar-core OoO sweep", &csv_path)) {
    return 0;
  }
  bench::banner("Ablation", "A64FX scalar OoO efficiency vs Alya gap");

  const auto mn4 = arch::marenostrum4();
  const double mn4_step = apps::run_alya(mn4, 16).time_per_step;

  report::Table table("Alya @16 nodes vs scalar-core strength",
                      {"ooo efficiency", "s/step", "gap vs MN4"});
  std::unique_ptr<CsvWriter> csv;
  if (!csv_path.empty()) {
    csv = std::make_unique<CsvWriter>(
        csv_path, std::vector<std::string>{"ooo", "s_per_step", "gap"});
  }
  for (double ooo : {0.30, 0.38, 0.50, 0.65, 0.80, 0.95}) {
    auto machine = arch::cte_arm();
    machine.node.core.ooo_scalar_efficiency = ooo;
    const double t = apps::run_alya(machine, 16).time_per_step;
    char label[40];
    std::snprintf(label, sizeof(label), "%.2f%s%s", ooo,
                  ooo == arch::calib::kA64fxOooEfficiency ? " (A64FX)" : "",
                  ooo == arch::calib::kSkxOooEfficiency ? " (Skylake)" : "");
    table.row({label, report::fixed(t, 3), report::fixed(t / mn4_step, 2)});
    if (csv) csv->row(std::vector<double>{ooo, t, t / mn4_step});
  }
  table.print(std::cout);
  std::printf(
      "\nMN4 reference: %.3f s/step. Reading: a Skylake-class out-of-order "
      "engine alone (same compiler, same SVE non-use) cuts the gap from "
      "~3.4x to well under 2x — scalar-core capability and compiler "
      "quality together explain the paper's slowdown.\n",
      mn4_step);
  return 0;
}
