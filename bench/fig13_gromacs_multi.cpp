// Fig. 13: Gromacs scalability across nodes (8 ranks x 6 threads per
// node), including the 16-rank anomaly and the 12x8 alternative layout
// that recovers the trend.
#include <cstdio>
#include <iostream>

#include "apps/gromacs.h"
#include "arch/configs.h"
#include "bench_common.h"
#include "report/plot.h"
#include "report/table.h"

using namespace ctesim;

int main(int argc, char** argv) {
  std::string csv_path;
  if (!bench::parse_harness(argc, argv, "fig13_gromacs_multi",
                            "Gromacs multi-node scalability", &csv_path)) {
    return 0;
  }
  bench::banner("Fig. 13", "Gromacs: scalability across nodes");

  const auto cte = arch::cte_arm();
  const auto mn4 = arch::marenostrum4();
  report::Table table("days / ns (8 ranks x 6 threads per node)",
                      {"nodes", "ranks", "CTE-Arm", "MareNostrum 4",
                       "slowdown"});
  std::vector<double> cx, cy, mx, my;
  std::unique_ptr<CsvWriter> csv;
  if (!csv_path.empty()) {
    csv = std::make_unique<CsvWriter>(
        csv_path, std::vector<std::string>{"nodes", "ranks", "cte", "mn4"});
  }
  for (int nodes : {1, 2, 4, 8, 16, 32, 64, 128, 144}) {
    const int ranks = nodes * 8;
    const auto a = apps::run_gromacs(cte, ranks);
    const auto b = apps::run_gromacs(mn4, ranks);
    table.row(std::to_string(nodes) + " ",
              {static_cast<double>(ranks), a.days_per_ns, b.days_per_ns,
               a.days_per_ns / b.days_per_ns},
              3);
    cx.push_back(nodes);
    cy.push_back(a.days_per_ns);
    mx.push_back(nodes);
    my.push_back(b.days_per_ns);
    if (csv) {
      csv->row(std::vector<double>{static_cast<double>(nodes),
                                   static_cast<double>(ranks), a.days_per_ns,
                                   b.days_per_ns});
    }
  }
  table.print(std::cout);

  report::LineChart chart("Gromacs, multi-node", 72, 16);
  chart.set_log_x(true);
  chart.set_log_y(true);
  chart.set_axis_labels("nodes", "days/ns");
  chart.series("CTE-Arm", cx, cy);
  chart.series("MareNostrum 4", mx, my);
  std::printf("\n");
  chart.print(std::cout);

  // The anomaly: 16 ranks (2 nodes) decomposes badly on both machines; the
  // 12 ranks x 8 threads layout (dotted line in the paper) is fine.
  apps::GromacsConfig alt;
  alt.threads_per_rank = 8;
  alt.ranks_per_node = 6;
  std::printf("\n16-rank anomaly (both machines, as the paper observes):\n");
  for (const auto* m : {&cte, &mn4}) {
    const auto bad = apps::run_gromacs(*m, 16);
    const auto good = apps::run_gromacs(*m, 12, alt);
    std::printf(
        "  %-14s 16x6 = %.3f days/ns, alternative 12x8 = %.3f days/ns\n",
        m->name.c_str(), bad.days_per_ns, good.days_per_ns);
  }

  const auto a144 = apps::run_gromacs(cte, 144 * 8);
  const auto b144 = apps::run_gromacs(mn4, 144 * 8);
  std::printf("\nheadline: @144 nodes CTE-Arm is %.2fx slower (paper: 1.5x)\n",
              a144.days_per_ns / b144.days_per_ns);
  return 0;
}
