// Fig. 14: OpenIFS (TL255L91) scalability within one node, MPI ranks from
// 8 to 48, seconds per simulated day. The native radix-2 FFT kernel runs
// as a correctness anchor for the spectral-transform methodology.
#include <cstdio>
#include <iostream>

#include "apps/openifs.h"
#include "arch/configs.h"
#include "bench_common.h"
#include "kernels/fft.h"
#include "report/plot.h"
#include "report/table.h"
#include "util/rng.h"

using namespace ctesim;

int main(int argc, char** argv) {
  std::string csv_path;
  if (!bench::parse_harness(argc, argv, "fig14_openifs_node",
                            "OpenIFS single-node scalability", &csv_path)) {
    return 0;
  }
  bench::banner("Fig. 14", "OpenIFS: scalability in one node (TL255L91)");

  const auto cte = arch::cte_arm();
  const auto mn4 = arch::marenostrum4();
  report::Table table("seconds per forecast day",
                      {"ranks", "CTE-Arm", "MareNostrum 4", "slowdown"});
  std::vector<double> cx, cy, mx, my;
  std::unique_ptr<CsvWriter> csv;
  if (!csv_path.empty()) {
    csv = std::make_unique<CsvWriter>(
        csv_path, std::vector<std::string>{"ranks", "cte_s", "mn4_s"});
  }
  for (int ranks : {8, 12, 16, 24, 32, 48}) {
    const auto a = apps::run_openifs_ranks(cte, ranks);
    const auto b = apps::run_openifs_ranks(mn4, ranks);
    table.row(std::to_string(ranks),
              {a.seconds_per_day, b.seconds_per_day,
               a.seconds_per_day / b.seconds_per_day},
              2);
    cx.push_back(ranks);
    cy.push_back(a.seconds_per_day);
    mx.push_back(ranks);
    my.push_back(b.seconds_per_day);
    if (csv) {
      csv->row(std::vector<double>{static_cast<double>(ranks),
                                   a.seconds_per_day, b.seconds_per_day});
    }
  }
  table.print(std::cout);

  report::LineChart chart("OpenIFS, one node", 72, 16);
  chart.set_log_x(true);
  chart.set_log_y(true);
  chart.set_axis_labels("MPI ranks", "s/day");
  chart.series("CTE-Arm", cx, cy);
  chart.series("MareNostrum 4", mx, my);
  std::printf("\n");
  chart.print(std::cout);

  const auto a8 = apps::run_openifs_ranks(cte, 8);
  const auto b8 = apps::run_openifs_ranks(mn4, 8);
  const auto a48 = apps::run_openifs_ranks(cte, 48);
  const auto b48 = apps::run_openifs_ranks(mn4, 48);
  std::printf(
      "\nheadline: 8 ranks %.2fx slower (paper 3.72x); full node %.2fx "
      "(paper 3.28x)\n",
      a8.seconds_per_day / b8.seconds_per_day,
      a48.seconds_per_day / b48.seconds_per_day);

  // Native anchor: FFT round trip at forecast-like sizes.
  Rng rng(7);
  std::vector<kernels::Complex> signal(512);
  for (auto& v : signal) v = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  auto copy = signal;
  kernels::fft(copy);
  kernels::ifft(copy);
  double err = 0.0;
  for (std::size_t i = 0; i < signal.size(); ++i) {
    err = std::max(err, std::abs(copy[i] - signal[i]));
  }
  std::printf("native FFT anchor: 512-point round-trip max error %.2e\n",
              err);
  return err < 1e-10 ? 0 : 1;
}
