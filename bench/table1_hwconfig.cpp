// Table I: hardware configuration of CTE-Arm and MareNostrum 4, printed
// from the machine models (every row is computed, not hard-coded text —
// mismatches with the paper would mean the models are wrong).
#include <cstdio>
#include <iostream>

#include "arch/configs.h"
#include "bench_common.h"
#include "report/table.h"
#include "util/units.h"

using namespace ctesim;

namespace {

std::string freq(const arch::MachineModel& m) {
  return report::fixed(m.node.core.freq_ghz, 2);
}

}  // namespace

int main(int argc, char** argv) {
  std::string csv_path;
  if (!bench::parse_harness(argc, argv, "table1_hwconfig",
                            "Table I hardware configuration", &csv_path)) {
    return 0;
  }
  bench::banner("Table I", "hardware configuration");

  const auto cte = arch::cte_arm();
  const auto mn4 = arch::marenostrum4();

  report::Table table("Hardware configuration",
                      {"", "CTE-Arm", "MareNostrum 4"});
  auto row = [&](const char* label, std::string a, std::string b) {
    table.row({label, std::move(a), std::move(b)});
  };
  row("System integrator", cte.integrator, mn4.integrator);
  row("Core architecture", cte.core_arch, mn4.core_arch);
  row("SIMD extensions", cte.simd, mn4.simd);
  row("CPU name", cte.cpu_name, mn4.cpu_name);
  row("Frequency [GHz]", freq(cte), freq(mn4));
  row("Sockets / node", std::to_string(cte.node.sockets),
      std::to_string(mn4.node.sockets));
  row("Core / node", std::to_string(cte.node.core_count()),
      std::to_string(mn4.node.core_count()));
  row("DP Peak / core [GFlop/s]",
      report::fixed(units::to_gflops(cte.node.core.peak_vector_flops(
                        arch::Precision::kDouble)),
                    2),
      report::fixed(units::to_gflops(mn4.node.core.peak_vector_flops(
                        arch::Precision::kDouble)),
                    2));
  row("DP Peak / node [GFlop/s]",
      report::fixed(units::to_gflops(cte.node.peak_flops()), 2),
      report::fixed(units::to_gflops(mn4.node.peak_flops()), 2));
  row("L1 cache / core [kB]", std::to_string(cte.node.core.l1d_kb),
      std::to_string(mn4.node.core.l1d_kb));
  row("L2 cache / node [MB]", report::fixed(cte.node.l2_total_mb, 0),
      report::fixed(mn4.node.l2_total_mb, 0));
  row("L3 cache / node [MB]",
      cte.node.l3_total_mb > 0 ? report::fixed(cte.node.l3_total_mb, 0) : "-",
      mn4.node.l3_total_mb > 0 ? report::fixed(mn4.node.l3_total_mb, 0) : "-");
  row("Memory / node [GB]", report::fixed(cte.node.memory_gb(), 0),
      report::fixed(mn4.node.memory_gb(), 0));
  row("Memory tech.", cte.memory_tech, mn4.memory_tech);
  row("NUMA domains / node", std::to_string(cte.node.num_domains),
      std::to_string(mn4.node.num_domains));
  row("Peak memory BW [GB/s]", report::fixed(cte.node.peak_bw().value() / 1e9, 0),
      report::fixed(mn4.node.peak_bw().value() / 1e9, 0));
  row("Num. of nodes", std::to_string(cte.num_nodes),
      std::to_string(mn4.num_nodes));
  row("Interconnection", cte.interconnect.name, mn4.interconnect.name);
  row("Peak network BW [GB/s]",
      report::fixed(cte.interconnect.link_bw / 1e9, 2),
      report::fixed(mn4.interconnect.link_bw / 1e9, 2));
  table.print(std::cout);

  if (!csv_path.empty()) {
    CsvWriter csv(csv_path, {"property", "cte_arm", "marenostrum4"});
    for (std::size_t r = 0; r < table.rows(); ++r) {
      csv.row(std::vector<std::string>{table.cell(r, 0), table.cell(r, 1),
                                       table.cell(r, 2)});
    }
  }
  return 0;
}
