// Fig. 3: STREAM Triad bandwidth with hybrid MPI+OpenMP, at most one rank
// per NUMA domain (CMG on CTE-Arm, socket on MareNostrum 4).
#include <cstdio>
#include <iostream>

#include "arch/configs.h"
#include "bench_common.h"
#include "mem/stream_sim.h"
#include "report/table.h"

using namespace ctesim;

int main(int argc, char** argv) {
  std::string csv_path;
  if (!bench::parse_harness(argc, argv, "fig3_stream_hybrid",
                            "STREAM Triad MPI+OpenMP", &csv_path)) {
    return 0;
  }
  bench::banner("Fig. 3", "STREAM Triad bandwidth with MPI+OpenMP");

  const mem::StreamSimulator cte(arch::cte_arm());
  const mem::StreamSimulator mn4(arch::marenostrum4());

  report::Table table("GB/s per MPI x OMP layout (one rank per NUMA domain)",
                      {"machine", "layout", "C", "Fortran"});
  std::unique_ptr<CsvWriter> csv;
  if (!csv_path.empty()) {
    csv = std::make_unique<CsvWriter>(
        csv_path, std::vector<std::string>{"machine", "ranks", "threads",
                                           "c_gbs", "fortran_gbs"});
  }
  auto emit = [&](const mem::StreamSimulator& sim, const char* name,
                  int procs, int threads) {
    const double c = sim.hybrid_bandwidth(mem::StreamKernel::kTriad, procs,
                                          threads, arch::Language::kC)
                         .value();
    const double f = sim.hybrid_bandwidth(mem::StreamKernel::kTriad, procs,
                                          threads, arch::Language::kFortran)
                         .value();
    char layout[32];
    std::snprintf(layout, sizeof(layout), "%dx%d", procs, threads);
    table.row({name, layout, report::fixed(c / 1e9, 1),
               report::fixed(f / 1e9, 1)});
    if (csv) {
      csv->row(std::vector<std::string>{
          name, std::to_string(procs), std::to_string(threads),
          report::fixed(c / 1e9, 3), report::fixed(f / 1e9, 3)});
    }
  };
  for (int procs : {1, 2, 3, 4}) emit(cte, "CTE-Arm", procs, 12);
  for (int procs : {1, 2}) emit(mn4, "MareNostrum 4", procs, 24);
  table.print(std::cout);

  const double best = cte.hybrid_bandwidth(mem::StreamKernel::kTriad, 4, 12,
                                           arch::Language::kFortran)
                          .value();
  const double best_c = cte.hybrid_bandwidth(mem::StreamKernel::kTriad, 4,
                                             12, arch::Language::kC)
                            .value();
  std::printf(
      "\nheadline: CTE-Arm Fortran 4x12 = %.1f GB/s (%.0f%% of peak; paper "
      "862.6, 84%%)\n          CTE-Arm C 4x12 = %.1f GB/s (paper 421.1, "
      "unexplained in the paper)\n",
      best / 1e9, 100.0 * best / arch::cte_arm().node.peak_bw().value(),
      best_c / 1e9);
  return 0;
}
