// Ablation: how much of the application gap is the compiler?
//
// The paper's conclusion asks for "more aggressive vectorization, so to
// take advantage of SVE". This bench sweeps the achieved-vectorization
// fraction of the Alya assembly kernel on CTE-Arm from the measured
// GNU level up to vendor level, holding everything else fixed, and prints
// the resulting assembly-phase gap vs MareNostrum 4.
#include <cstdio>
#include <iostream>

#include "arch/configs.h"
#include "bench_common.h"
#include "report/table.h"
#include "roofline/exec_model.h"
#include "roofline/kernel_library.h"

using namespace ctesim;

int main(int argc, char** argv) {
  std::string csv_path;
  if (!bench::parse_harness(argc, argv, "ablation_vectorization",
                            "vectorization sweep on CTE-Arm", &csv_path)) {
    return 0;
  }
  bench::banner("Ablation", "achieved SVE vectorization vs application gap");

  const auto cte = arch::cte_arm();
  const auto mn4 = arch::marenostrum4();
  const roofline::ExecModel mn4_model(mn4.node, arch::intel_compiler());

  // MN4 reference rate for the assembly-like kernel.
  auto sig = roofline::kernels::fem_assembly();
  sig.flops_per_elem = 28000.0;  // the Alya proxy's element cost
  sig.bytes_per_elem = 1400.0;
  const double mn4_time = mn4_model.time(sig, 1e6, 48).value();

  report::Table table(
      "Alya-assembly kernel, 1M elements on one node of CTE-Arm",
      {"achieved vectorization", "time [s]", "gap vs MN4", "GFlop/s"});
  std::unique_ptr<CsvWriter> csv;
  if (!csv_path.empty()) {
    csv = std::make_unique<CsvWriter>(
        csv_path,
        std::vector<std::string>{"vectorization", "time_s", "gap"});
  }
  const roofline::ExecModel cte_gnu(cte.node, arch::gnu_compiler());
  const double gnu_vec =
      arch::gnu_compiler().vectorization(sig.cls, cte.node.core);
  for (double vec : {0.0, 0.02, 0.1, 0.2, 0.4, 0.6, 0.8, 0.95}) {
    // Sweep by scaling the kernel's vec_potential against a fully-trusting
    // compiler row: equivalent to "the compiler achieves `vec`".
    auto swept = sig;
    swept.vec_potential = vec > 0 ? vec / 0.98 : 0.0;  // vendor row = 0.98
    const roofline::ExecModel vendor(cte.node, arch::vendor_tuned());
    const auto b = vendor.analyze(swept, 1e6, 48);
    char label[32];
    std::snprintf(label, sizeof(label), "%.2f%s", vec,
                  std::abs(vec - gnu_vec * 0.9) < 0.015 ? " (GNU today)"
                                                        : "");
    table.row({label, report::fixed(b.total_s, 4),
               report::fixed(b.total_s / mn4_time, 2),
               report::fixed(b.achieved_flops / 1e9, 1)});
    if (csv) {
      csv->row(std::vector<double>{vec, b.total_s, b.total_s / mn4_time});
    }
  }
  table.print(std::cout);
  std::printf(
      "\nMN4 (Intel, measured vectorization %.2f): %.4f s. Reading: full "
      "SVE use would bring the A64FX node to parity with Skylake for this "
      "kernel; at the GNU level it is ~4x slower — the compiler carries "
      "most of the gap.\n",
      arch::intel_compiler().vectorization(sig.cls, mn4.node.core), mn4_time);
  return 0;
}
