// Fig. 4: bandwidth of all node pairs of CTE-Arm, OSU-style sendrecv loop
// with 256-byte messages, including the degraded receiver node
// ("arms0b1-11c"). The diagonal banding comes from the index->torus
// coordinate mapping; the weak node shows as one dark row (receiver) but a
// normal column (sender).
#include <cstdio>
#include <iostream>

#include "arch/calibration.h"
#include "arch/configs.h"
#include "bench_common.h"
#include "net/network.h"
#include "report/plot.h"
#include "util/stats.h"

using namespace ctesim;

int main(int argc, char** argv) {
  std::string csv_path;
  Cli cli("fig4_pair_bandwidth", "all-pairs point-to-point bandwidth");
  std::int64_t msg_size = 256;
  cli.option("msg-size", &msg_size, "message size in bytes");
  if (!bench::parse_harness(argc, argv, "fig4_pair_bandwidth",
                            "all-pairs bandwidth", &csv_path, &cli)) {
    return 0;
  }
  bench::banner("Fig. 4", "bandwidth of all node-pairs of CTE-Arm");

  const auto machine = arch::cte_arm();
  net::Network network(machine.interconnect, machine.num_nodes);
  network.set_recv_degradation(arch::calib::kWeakNodeIndex,
                               arch::calib::kWeakNodeRecvFactor);

  const int n = machine.num_nodes;
  report::Heatmap map("sender (rows) x receiver (cols), MB/s",
                      static_cast<std::size_t>(n),
                      static_cast<std::size_t>(n));
  RunningStats all;
  RunningStats weak_as_receiver;
  RunningStats weak_as_sender;
  std::unique_ptr<CsvWriter> csv;
  if (!csv_path.empty()) {
    csv = std::make_unique<CsvWriter>(
        csv_path, std::vector<std::string>{"src", "dst", "mbps"});
  }
  for (int src = 0; src < n; ++src) {
    for (int dst = 0; dst < n; ++dst) {
      if (src == dst) continue;
      const auto t = network.transfer(src, dst,
                                      static_cast<std::uint64_t>(msg_size));
      const double mbps = t.bandwidth / 1e6;
      map.set(static_cast<std::size_t>(src), static_cast<std::size_t>(dst),
              mbps);
      all.add(mbps);
      if (dst == arch::calib::kWeakNodeIndex) weak_as_receiver.add(mbps);
      if (src == arch::calib::kWeakNodeIndex) weak_as_sender.add(mbps);
      if (csv) {
        csv->row(std::vector<double>{static_cast<double>(src),
                                     static_cast<double>(dst), mbps});
      }
    }
  }
  map.print(std::cout, 96);

  std::printf("\nmsg size: %lld B; %d nodes; %s\n",
              static_cast<long long>(msg_size), n,
              network.topology().describe().c_str());
  std::printf("bandwidth over all pairs: mean %.1f MB/s, min %.1f, max %.1f\n",
              all.mean(), all.min(), all.max());
  std::printf(
      "weak node %d: as receiver %.1f MB/s (dark row), as sender %.1f MB/s "
      "(normal) — the asymmetry of arms0b1-11c in the paper\n",
      arch::calib::kWeakNodeIndex, weak_as_receiver.mean(),
      weak_as_sender.mean());
  return 0;
}
