// Resilience on a failing machine: MTBF x checkpoint-interval sweep.
//
// The paper evaluates CTE-Arm as a *production* system, and production
// machines break: nodes fail on MTBF-scale clocks, jobs die with them, and
// the operator's defense is checkpoint/restart plus a self-healing batch
// scheduler that drains failed nodes and requeues the casualties. This
// study runs one job stream through the 192-node CTE-Arm model under a
// generated fault script (fault::generate_timeline) and sweeps the
// checkpoint interval for several node-MTBF regimes, plus the per-job
// Young/Daly interval sqrt(2*C*M).
//
// The interesting shape is the goodput column: checkpointing too often
// burns the machine on checkpoint writes (which flow through the shared
// filesystem model, so big jobs pay more), too rarely loses big chunks of
// work at every failure — goodput peaks at an interior interval, which the
// Young/Daly row tracks without hand-tuning.
//
// Deterministic: identical --seed gives a byte-identical table, CSV and
// Chrome trace.
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "arch/configs.h"
#include "batch/cluster.h"
#include "batch/metrics.h"
#include "batch/workload.h"
#include "bench_common.h"
#include "fault/mtbf.h"
#include "report/table.h"
#include "trace/chrome.h"
#include "trace/recorder.h"

using namespace ctesim;

int main(int argc, char** argv) {
  std::string csv_path;
  std::string trace_path;
  std::int64_t jobs = 240;
  std::int64_t seed = 1;
  Cli cli("resilience_study",
          "goodput vs node MTBF and checkpoint interval on CTE-Arm");
  cli.option("jobs", &jobs, "number of jobs in the stream")
      .option("seed", &seed, "workload + fault-script seed")
      .option("trace", &trace_path,
              "write a Chrome trace of the 6h-MTBF / Young-Daly run "
              "(failures, drains, requeues) to this path");
  if (!bench::parse_harness(argc, argv, "resilience_study",
                            "resilience sweep", &csv_path, &cli)) {
    return 0;
  }
  if (jobs < 1) {
    std::fprintf(stderr, "resilience_study: --jobs must be >= 1, got %lld\n",
                 static_cast<long long>(jobs));
    return 1;
  }
  bench::banner("Resilience study",
                "MTBF x checkpoint interval on the 192-node CTE-Arm model");

  const batch::RuntimeModel model(arch::cte_arm());
  const int total_nodes = model.machine().num_nodes;

  batch::WorkloadConfig config;
  config.num_jobs = static_cast<int>(jobs);
  config.mean_interarrival_s = 16.0;
  config.burst_fraction = 0.3;
  // Longer jobs than the throughput study: checkpoint intervals only matter
  // when jobs live long enough to cross several of them.
  config.min_runtime_s = 240.0;
  config.max_runtime_s = 2400.0;
  const auto stream =
      batch::generate(config, model, static_cast<std::uint64_t>(seed));
  // Fault script horizon: cover the stream plus a generous drain-out tail.
  const double horizon_s = stream.back().arrival_s + 4.0 * 3600.0;

  const std::vector<double> mtbf_hours = {2.0, 6.0, 24.0};
  struct IntervalChoice {
    double interval_s;  // 0 with young_daly=false: checkpointing off
    bool young_daly;
    const char* label;
  };
  const std::vector<IntervalChoice> intervals = {
      {30.0, false, "30"},   {60.0, false, "60"},  {120.0, false, "120"},
      {240.0, false, "240"}, {480.0, false, "480"}, {960.0, false, "960"},
      {0.0, false, "off"},   {0.0, true, "young-daly"}};

  report::Table table(
      "goodput under failures — node MTBF (rows) x checkpoint interval "
      "(columns)",
      {"mtbf [h]", "interval [s]", "goodput", "util", "avail",
       "wasted [nh]", "interrupted", "failed", "attempts", "makespan [h]"});
  std::unique_ptr<CsvWriter> csv;
  if (!csv_path.empty()) {
    csv = std::make_unique<CsvWriter>(
        csv_path,
        std::vector<std::string>{
            "mtbf_h", "interval", "goodput", "utilization", "availability",
            "wasted_node_h", "interrupted", "failed", "killed",
            "mean_attempts", "makespan_s"});
  }

  trace::Recorder recorder(!trace_path.empty());
  for (std::size_t mi = 0; mi < mtbf_hours.size(); ++mi) {
    const double mtbf_h = mtbf_hours[mi];
    fault::FaultModel fm;
    fm.node_failure.mtbf_s = mtbf_h * 3600.0;
    fm.node_failure.mean_repair_s = 1800.0;  // 30 min node swap/reboot
    const auto timeline = fault::generate_timeline(
        fm, total_nodes, horizon_s, static_cast<std::uint64_t>(seed));

    double best_goodput = 0.0;
    const char* best_label = "off";
    for (const IntervalChoice& choice : intervals) {
      batch::ClusterOptions options;
      options.seed = static_cast<std::uint64_t>(seed);
      options.faults = &timeline;
      options.checkpoint.state_bytes_per_node = 4.0 * (1ull << 30);
      options.checkpoint.restart_s = 30.0;
      if (choice.young_daly) {
        options.checkpoint.young_daly = true;
        options.checkpoint.node_mtbf_s = fm.node_failure.mtbf_s;
      } else {
        options.checkpoint.interval_s = choice.interval_s;
      }
      const bool traced = recorder.enabled() && mi == 1 &&
                          choice.young_daly;
      if (traced) options.recorder = &recorder;

      const auto result = batch::run_cluster(model, stream, options);
      const auto m = batch::summarize(result, total_nodes);
      const std::string label = choice.label;
      table.row({report::fixed(mtbf_h, 0), label,
                 report::fixed(m.goodput, 3), report::fixed(m.utilization, 3),
                 report::fixed(m.availability, 3),
                 report::fixed(m.wasted_node_h, 1),
                 std::to_string(m.interrupted), std::to_string(m.failed),
                 report::fixed(m.mean_attempts, 2),
                 report::fixed(m.makespan_s / 3600.0, 2)});
      if (csv) {
        csv->row(std::vector<std::string>{
            report::fixed(mtbf_h, 1), label, report::fixed(m.goodput, 4),
            report::fixed(m.utilization, 4),
            report::fixed(m.availability, 4),
            report::fixed(m.wasted_node_h, 2), std::to_string(m.interrupted),
            std::to_string(m.failed), std::to_string(m.killed),
            report::fixed(m.mean_attempts, 3),
            report::fixed(m.makespan_s, 1)});
      }
      if (!choice.young_daly && m.goodput > best_goodput) {
        best_goodput = m.goodput;
        best_label = choice.label;
      }
    }
    std::printf(
        "  mtbf %.0f h: fixed-interval goodput peaks at %s s (%.3f)\n",
        mtbf_h, best_label, best_goodput);
  }
  table.print(std::cout);
  if (recorder.enabled()) {
    trace::write_chrome_trace(recorder, trace_path);
    std::printf(
        "\ntrace: %zu spans, %zu counter samples -> %s (open in "
        "chrome://tracing or https://ui.perfetto.dev)\n",
        recorder.spans().size(), recorder.counters().size(),
        trace_path.c_str());
  }
  std::printf(
      "\nReading: each MTBF row is non-monotonic in the checkpoint "
      "interval — short intervals tax every job with checkpoint writes "
      "through the shared filesystem, long intervals (and 'off') forfeit "
      "work at every node failure. The sweet spot moves left as the "
      "machine gets less reliable, and the Young/Daly row lands near it "
      "per job without tuning.\n");
  return 0;
}
