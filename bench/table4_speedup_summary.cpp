// Table IV: speedup of CTE-Arm relative to MareNostrum 4 for every
// benchmark and application, at 1/16/32/64/128/192 nodes. Speedup > 1
// means CTE-Arm is faster. NP marks runs that do not fit in memory (as in
// the paper); "-" marks configurations outside the paper's study range.
#include <cstdio>
#include <iostream>

#include "apps/alya.h"
#include "apps/gromacs.h"
#include "apps/nemo.h"
#include "apps/openifs.h"
#include "apps/wrf.h"
#include "arch/configs.h"
#include "bench_common.h"
#include "hpcb/hpcg.h"
#include "hpcb/hpl.h"
#include "report/table.h"

using namespace ctesim;

namespace {

std::string cell(double speedup) { return report::fixed(speedup, 2); }

}  // namespace

int main(int argc, char** argv) {
  std::string csv_path;
  if (!bench::parse_harness(argc, argv, "table4_speedup_summary",
                            "Table IV speedup summary", &csv_path)) {
    return 0;
  }
  bench::banner("Table IV", "speedup of CTE-Arm relative to MareNostrum 4");

  const auto cte = arch::cte_arm();
  const auto mn4 = arch::marenostrum4();
  const int node_counts[] = {1, 16, 32, 64, 128, 192};

  report::Table table("speedup (CTE-Arm / MareNostrum 4)",
                      {"Applications", "1", "16", "32", "64", "128", "192"});
  std::unique_ptr<CsvWriter> csv;
  if (!csv_path.empty()) {
    csv = std::make_unique<CsvWriter>(
        csv_path, std::vector<std::string>{"app", "nodes", "speedup"});
  }
  auto emit_csv = [&](const char* app, int nodes, double speedup) {
    if (csv) {
      csv->row(std::vector<std::string>{app, std::to_string(nodes),
                                        report::fixed(speedup, 4)});
    }
  };

  // LINPACK: ratio of reported GFlop/s.
  {
    hpcb::HplModel a(cte, hpcb::hpl_config_for(cte));
    hpcb::HplModel b(mn4, hpcb::hpl_config_for(mn4));
    std::vector<std::string> row{"LINPACK"};
    for (int n : node_counts) {
      const double s = a.run(n).gflops / b.run(n).gflops;
      row.push_back(cell(s));
      emit_csv("linpack", n, s);
    }
    table.row(std::move(row));
  }
  // HPCG: the paper reports 1 and 192 nodes only.
  {
    hpcb::HpcgModel a(cte);
    hpcb::HpcgModel b(mn4);
    std::vector<std::string> row{"HPCG"};
    for (int n : node_counts) {
      if (n != 1 && n != 192) {
        row.push_back("N/A");
        continue;
      }
      const double s = a.run(n, hpcb::HpcgBuild::kOptimized).gflops /
                       b.run(n, hpcb::HpcgBuild::kOptimized).gflops;
      row.push_back(cell(s));
      emit_csv("hpcg", n, s);
    }
    table.row(std::move(row));
  }
  // Alya: memory-gated below 12 nodes; the paper studies up to 78.
  {
    std::vector<std::string> row{"Alya"};
    for (int n : node_counts) {
      if (n < apps::alya_min_nodes(cte)) {
        row.push_back("NP");
        continue;
      }
      if (n > 78) {
        row.push_back("N/A");
        continue;
      }
      const double s = apps::run_alya(mn4, n).time_per_step /
                       apps::run_alya(cte, n).time_per_step;
      row.push_back(cell(s));
      emit_csv("alya", n, s);
    }
    table.row(std::move(row));
  }
  // OpenIFS: single-node input at 1 node; multi-node input needs >= 32.
  {
    std::vector<std::string> row{"OpenIFS"};
    apps::OpenIfsConfig multi;
    multi.input = apps::tc0511l91();
    for (int n : node_counts) {
      double s = 0.0;
      if (n == 1) {
        s = apps::run_openifs_ranks(mn4, 48).seconds_per_day /
            apps::run_openifs_ranks(cte, 48).seconds_per_day;
      } else if (n >= apps::openifs_min_nodes(cte, multi) && n <= 128) {
        s = apps::run_openifs_nodes(mn4, n, multi).seconds_per_day /
            apps::run_openifs_nodes(cte, n, multi).seconds_per_day;
      } else {
        row.push_back(n < 32 ? "NP" : "N/A");
        continue;
      }
      row.push_back(cell(s));
      emit_csv("openifs", n, s);
    }
    table.row(std::move(row));
  }
  // Gromacs: 8 ranks x 6 threads per node at every scale.
  {
    std::vector<std::string> row{"Gromacs"};
    for (int n : node_counts) {
      const double s = apps::run_gromacs(mn4, n * 8).days_per_ns /
                       apps::run_gromacs(cte, n * 8).days_per_ns;
      row.push_back(cell(s));
      emit_csv("gromacs", n, s);
    }
    table.row(std::move(row));
  }
  // WRF: the paper studies 1..64 nodes.
  {
    std::vector<std::string> row{"WRF"};
    for (int n : node_counts) {
      if (n > 64) {
        row.push_back("N/A");
        continue;
      }
      const double s = apps::run_wrf(mn4, n).total_time /
                       apps::run_wrf(cte, n).total_time;
      row.push_back(cell(s));
      emit_csv("wrf", n, s);
    }
    table.row(std::move(row));
  }
  // NEMO: memory-gated below 8 CTE nodes; the paper's table has 16 only.
  {
    std::vector<std::string> row{"NEMO"};
    for (int n : node_counts) {
      if (n < apps::nemo_min_nodes(cte)) {
        row.push_back("NP");
        continue;
      }
      if (n != 16) {
        row.push_back("N/A");
        continue;
      }
      const double s = apps::run_nemo(mn4, n).total_time /
                       apps::run_nemo(cte, n).total_time;
      row.push_back(cell(s));
      emit_csv("nemo", n, s);
    }
    table.row(std::move(row));
  }
  table.print(std::cout);

  std::printf(
      "\npaper Table IV for comparison:\n"
      "  LINPACK 1.25 1.28 1.38 1.35 1.70 1.40\n"
      "  HPCG    2.50 N/A  N/A  N/A  N/A  3.24\n"
      "  Alya    NP   0.30 0.31 0.37 N/A  N/A\n"
      "  OpenIFS 0.31 NP   0.28 0.31 0.39 N/A\n"
      "  Gromacs 0.32 0.36 0.38 0.43 0.54 0.33\n"
      "  WRF     0.49 0.46 0.60 0.64 N/A  N/A\n"
      "  NEMO    NP   0.56 N/A  N/A  N/A  N/A\n"
      "(the paper's Gromacs value at 192 nodes is anomalous and not "
      "explained; we reproduce the 1..144-node trend)\n");
  return 0;
}
