// Sampling study: representative-region sampling vs full simulation.
//
// Ground truth is a full exact run — every time step simulated — of a
// 10x-length NEMO BENCH run (10000 steps with a diagnostic phase every
// 10th) and a long WRF run with in-step frame output. The sweep then
// re-estimates each total through the sampling executor for a grid of
// K (representatives per phase) x max_phases, reporting the estimate, its
// 95% confidence interval, the measured error against the full run, and
// the simulation speedup (steps simulated full / steps simulated sampled).
//
// The shapes to look for: error stays inside the reported CI while the
// speedup reaches two orders of magnitude; max_phases=1 (phase-blind
// sampling) still converges but needs the CI to admit the phase-mixture
// variance, while max_phases high enough to separate the diagnostic /
// frame steps tightens the interval at the same K.
//
// Deterministic: identical --seed gives a byte-identical table, CSV and
// Chrome trace (the CI smoke job runs this twice and cmp's both).
#include <cmath>
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "apps/nemo.h"
#include "apps/wrf.h"
#include "arch/configs.h"
#include "bench_common.h"
#include "report/table.h"
#include "trace/chrome.h"
#include "trace/recorder.h"

using namespace ctesim;

namespace {

struct Row {
  const char* app;
  sampling::Outcome outcome;
  double full_s = 0.0;     ///< ground-truth total of the full exact run
  double total_s = 0.0;    ///< app-level total of this run
  std::size_t max_phases = 0;
  long long k = 0;
  long long warmup = 0;
};

double abs_err(const Row& r) { return std::fabs(r.total_s - r.full_s); }
bool in_ci(const Row& r) { return abs_err(r) <= r.outcome.ci_half_s; }

}  // namespace

int main(int argc, char** argv) {
  std::string csv_path;
  std::string trace_path;
  std::int64_t nemo_steps = 10000;
  std::int64_t wrf_steps = 1000;
  std::int64_t seed = 2;
  bool check = false;
  Cli cli("sampling_study",
          "sampled vs full error and speedup over a K x phases sweep");
  cli.option("nemo-steps", &nemo_steps, "NEMO full-run length (time steps)")
      .option("wrf-steps", &wrf_steps, "WRF full-run length (time steps)")
      .option("seed", &seed, "sampling plan seed")
      .option("trace", &trace_path,
              "write a Chrome trace of one sampled run to this path")
      .flag("check", &check,
            "exit nonzero if any sampled error exceeds its CI bound");
  if (!bench::parse_harness(argc, argv, "sampling_study",
                            "sampling accuracy sweep", &csv_path, &cli)) {
    return 0;
  }
  if (nemo_steps < 10 || wrf_steps < 10) {
    std::fprintf(stderr, "sampling_study: step counts must be >= 10\n");
    return 1;
  }
  bench::banner("Sampling study",
                "representative-region sampling: error vs CI vs speedup");

  const auto cte = arch::cte_arm();
  trace::Recorder recorder(!trace_path.empty());
  std::vector<Row> rows;

  const std::vector<long long> ks = {4, 8, 16};
  const std::vector<std::size_t> phase_caps = {1, 4};

  // --- NEMO: 10x BENCH length, diagnostic reductions every 10th step ------
  apps::NemoConfig nemo;
  nemo.steps = static_cast<int>(nemo_steps);
  nemo.sim_steps = static_cast<int>(nemo_steps);  // exact: the full run
  nemo.diag_interval = 10;
  const auto nemo_full = apps::run_nemo(cte, 8, nemo);
  std::printf("  nemo full run: %d steps, total %.4f s\n", nemo.steps,
              nemo_full.total_time);
  for (const std::size_t cap : phase_caps) {
    for (const long long k : ks) {
      apps::NemoConfig s = nemo;
      s.sampling.mode = sampling::Mode::kSampled;
      s.sampling.k = k;
      s.sampling.warmup = 2;
      s.sampling.max_phases = cap;
      s.sampling.seed = static_cast<std::uint64_t>(seed);
      // One representative sampled run carries the trace spans/counters.
      if (cap == 4 && k == 8 && recorder.enabled()) {
        s.recorder = &recorder;
      }
      const auto r = apps::run_nemo(cte, 8, s);
      rows.push_back({"nemo", r.sampling, nemo_full.total_time,
                      r.total_time, cap, k, s.sampling.warmup});
    }
  }

  // --- WRF: long run with hourly frames written inside their steps --------
  apps::WrfConfig wrf;
  wrf.steps = static_cast<int>(wrf_steps);
  wrf.sim_steps = static_cast<int>(wrf_steps);
  wrf.frames = static_cast<int>(wrf_steps / 100);
  wrf.io_in_step = true;
  const auto wrf_full = apps::run_wrf(cte, 2, wrf);
  std::printf("  wrf  full run: %d steps, total %.4f s\n\n", wrf.steps,
              wrf_full.total_time);
  for (const std::size_t cap : phase_caps) {
    for (const long long k : ks) {
      apps::WrfConfig s = wrf;
      s.sampling.mode = sampling::Mode::kSampled;
      s.sampling.k = k;
      s.sampling.warmup = 3;
      s.sampling.max_phases = cap;
      s.sampling.seed = static_cast<std::uint64_t>(seed);
      const auto r = apps::run_wrf(cte, 2, s);
      rows.push_back({"wrf", r.sampling, wrf_full.total_time, r.total_time,
                      cap, k, s.sampling.warmup});
    }
  }

  report::Table table(
      "sampled estimate vs full run — K x max_phases sweep",
      {"app", "K", "max_ph", "phases", "sim steps", "full [s]", "est [s]",
       "±CI [s]", "err [s]", "err %", "in CI", "speedup"});
  std::unique_ptr<CsvWriter> csv;
  if (!csv_path.empty()) {
    csv = std::make_unique<CsvWriter>(
        csv_path, std::vector<std::string>{
                      "app", "k", "max_phases", "warmup", "seed",
                      "phases_detected", "steps_total", "steps_simulated",
                      "full_s", "sampled_s", "ci_half_s", "abs_err_s",
                      "in_ci", "speedup"});
  }
  int misses = 0;
  for (const Row& r : rows) {
    const double err = r.total_s - r.full_s;
    if (!in_ci(r)) ++misses;
    table.row({r.app, std::to_string(r.k), std::to_string(r.max_phases),
               std::to_string(r.outcome.phase_count),
               std::to_string(r.outcome.steps_simulated),
               report::fixed(r.full_s, 4), report::fixed(r.total_s, 4),
               report::fixed(r.outcome.ci_half_s, 4),
               report::fixed(err, 4),
               report::fixed(100.0 * err / r.full_s, 3),
               in_ci(r) ? "yes" : "NO",
               report::fixed(r.outcome.speedup(), 1)});
    if (csv) {
      csv->row(std::vector<std::string>{
          r.app, std::to_string(r.k), std::to_string(r.max_phases),
          std::to_string(r.warmup), std::to_string(seed),
          std::to_string(r.outcome.phase_count),
          std::to_string(r.outcome.steps_total),
          std::to_string(r.outcome.steps_simulated),
          report::fixed(r.full_s, 9), report::fixed(r.total_s, 9),
          report::fixed(r.outcome.ci_half_s, 9),
          report::fixed(abs_err(r), 9), in_ci(r) ? "1" : "0",
          report::fixed(r.outcome.speedup(), 3)});
    }
  }
  table.print(std::cout);

  if (recorder.enabled()) {
    trace::write_chrome_trace(recorder, trace_path);
    std::printf(
        "\ntrace: %zu spans, %zu counter samples -> %s\n",
        recorder.spans().size(), recorder.counters().size(),
        trace_path.c_str());
  }
  std::printf(
      "\nReading: each sampled row simulates K representatives per detected "
      "phase (plus warmup) instead of every step; the error against the "
      "full run should sit inside the reported 95%% interval while the "
      "speedup column grows with run length. Phase-aware strata "
      "(max_phases=4) give tighter intervals than phase-blind sampling "
      "(max_phases=1) at the same K.\n");
  if (check && misses > 0) {
    std::fprintf(stderr,
                 "sampling_study: %d of %zu sampled runs fell outside "
                 "their reported CI\n",
                 misses, rows.size());
    return 1;
  }
  return 0;
}
