// Fig. 2 (and Table II): STREAM Triad bandwidth, OpenMP-only, one process
// with spread thread binding, C and Fortran builds, on both machines.
#include <cstdio>
#include <iostream>

#include "arch/configs.h"
#include "bench_common.h"
#include "mem/stream_sim.h"
#include "report/plot.h"
#include "report/table.h"

using namespace ctesim;

int main(int argc, char** argv) {
  std::string csv_path;
  if (!bench::parse_harness(argc, argv, "fig2_stream_omp",
                            "STREAM Triad with OpenMP", &csv_path)) {
    return 0;
  }
  bench::banner("Fig. 2", "STREAM Triad bandwidth with OpenMP (spread)");

  // Table II context: build configurations used in the paper.
  report::Table builds("Table II — STREAM build configurations",
                       {"build", "compiler", "key flags"});
  builds.row({"CTE-Arm OpenMP", "Fujitsu/1.2.26b",
              "-Kfast,parallel -KSVE -Kzfill=100 -Kprefetch_*"});
  builds.row({"CTE-Arm MPI+OpenMP", "Fujitsu/1.2.26b",
              "-Kfast,parallel -KSVE -Kzfill=100 -Kprefetch_*"});
  builds.row({"MareNostrum 4 OpenMP", "Intel/19.1.1.217",
              "-O3 -xHost -qopenmp"});
  builds.row({"MareNostrum 4 MPI+OpenMP", "Intel/19.1.1.217",
              "-O3 -xHost -qopenmp"});
  builds.print(std::cout);
  std::printf("\n");

  const mem::StreamSimulator cte(arch::cte_arm());
  const mem::StreamSimulator mn4(arch::marenostrum4());
  std::printf("array elements: CTE-Arm E=610e6 (min %zu), MN4 E=400e6 (min %zu)\n\n",
              cte.min_elements(), mn4.min_elements());

  report::Table table(
      "STREAM Triad GB/s vs OpenMP threads",
      {"threads", "CTE-Arm C", "CTE-Arm F", "MN4 C", "MN4 F"});
  report::LineChart chart("STREAM Triad, OpenMP only", 72, 18);
  chart.set_axis_labels("threads", "GB/s");
  std::vector<double> threads, cte_c, cte_f, mn4_c, mn4_f;
  std::unique_ptr<CsvWriter> csv;
  if (!csv_path.empty()) {
    csv = std::make_unique<CsvWriter>(
        csv_path, std::vector<std::string>{"threads", "cte_c", "cte_f",
                                           "mn4_c", "mn4_f"});
  }
  for (int t : {1, 2, 4, 6, 8, 12, 16, 20, 24, 28, 32, 36, 40, 44, 48}) {
    const double a = cte.omp_bandwidth(mem::StreamKernel::kTriad, t,
                                       arch::Language::kC)
                         .value();
    const double b = cte.omp_bandwidth(mem::StreamKernel::kTriad, t,
                                       arch::Language::kFortran)
                         .value();
    const double c = mn4.omp_bandwidth(mem::StreamKernel::kTriad, t,
                                       arch::Language::kC)
                         .value();
    const double d = mn4.omp_bandwidth(mem::StreamKernel::kTriad, t,
                                       arch::Language::kFortran)
                         .value();
    table.row(std::to_string(t),
              {a / 1e9, b / 1e9, c / 1e9, d / 1e9}, 1);
    threads.push_back(t);
    cte_c.push_back(a / 1e9);
    cte_f.push_back(b / 1e9);
    mn4_c.push_back(c / 1e9);
    mn4_f.push_back(d / 1e9);
    if (csv) {
      csv->row(std::vector<double>{static_cast<double>(t), a / 1e9, b / 1e9,
                                   c / 1e9, d / 1e9});
    }
  }
  table.print(std::cout);
  std::printf("\n");
  chart.series("CTE-Arm C", threads, cte_c);
  chart.series("CTE-Arm Fortran", threads, cte_f);
  chart.series("MN4 C", threads, mn4_c);
  chart.series("MN4 Fortran", threads, mn4_f);
  chart.print(std::cout);

  // All four STREAM kernels at each machine's best thread count (the
  // paper's Fig. 2 shows all kernels; Triad above is the headline curve).
  report::Table kernels_table("all STREAM kernels, GB/s (C build)",
                              {"kernel", "CTE-Arm @24thr", "MN4 @48thr"});
  for (auto k : {mem::StreamKernel::kCopy, mem::StreamKernel::kScale,
                 mem::StreamKernel::kAdd, mem::StreamKernel::kTriad}) {
    kernels_table.row(
        {mem::name_of(k),
         report::fixed(
             units::to_gbs(cte.omp_bandwidth(k, 24, arch::Language::kC)), 1),
         report::fixed(
             units::to_gbs(mn4.omp_bandwidth(k, 48, arch::Language::kC)),
             1)});
  }
  std::printf("\n");
  kernels_table.print(std::cout);

  // The paper's headline numbers.
  double cte_best = 0.0;
  int cte_best_threads = 0;
  for (int t = 1; t <= 48; ++t) {
    const double bw = cte.omp_bandwidth(mem::StreamKernel::kTriad, t,
                                        arch::Language::kC)
                          .value();
    if (bw > cte_best) {
      cte_best = bw;
      cte_best_threads = t;
    }
  }
  const double mn4_best =
      mn4.omp_bandwidth(mem::StreamKernel::kTriad, 48, arch::Language::kC)
          .value();
  std::printf(
      "\nheadline: CTE-Arm best %.1f GB/s at %d threads (%.0f%% of peak, "
      "paper: 292.0 at 24, 29%%)\n",
      cte_best / 1e9, cte_best_threads,
      100.0 * cte_best / arch::cte_arm().node.peak_bw().value());
  std::printf(
      "          MN4 best %.1f GB/s at 48 threads (paper: 201.2 at 48)\n",
      mn4_best / 1e9);
  return 0;
}
