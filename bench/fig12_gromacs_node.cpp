// Fig. 12: Gromacs (lignocellulose-rf) scalability within one node,
// ranks x 6 OpenMP threads, days per simulated nanosecond.
#include <cstdio>
#include <iostream>

#include "apps/gromacs.h"
#include "arch/configs.h"
#include "bench_common.h"
#include "kernels/md.h"
#include "report/plot.h"
#include "report/table.h"

using namespace ctesim;

int main(int argc, char** argv) {
  std::string csv_path;
  if (!bench::parse_harness(argc, argv, "fig12_gromacs_node",
                            "Gromacs single-node scalability", &csv_path)) {
    return 0;
  }
  bench::banner("Fig. 12", "Gromacs: scalability in one node");

  const auto cte = arch::cte_arm();
  const auto mn4 = arch::marenostrum4();
  report::Table table("days / ns (ranks x 6 threads)",
                      {"cores", "CTE-Arm", "MareNostrum 4", "slowdown"});
  std::vector<double> cx, cy, mx, my;
  std::unique_ptr<CsvWriter> csv;
  if (!csv_path.empty()) {
    csv = std::make_unique<CsvWriter>(
        csv_path, std::vector<std::string>{"cores", "cte_days_per_ns",
                                           "mn4_days_per_ns"});
  }
  for (int ranks : {1, 2, 4, 8}) {
    const auto a = apps::run_gromacs(cte, ranks);
    const auto b = apps::run_gromacs(mn4, ranks);
    table.row(std::to_string(a.cores),
              {a.days_per_ns, b.days_per_ns, a.days_per_ns / b.days_per_ns},
              3);
    cx.push_back(a.cores);
    cy.push_back(a.days_per_ns);
    mx.push_back(b.cores);
    my.push_back(b.days_per_ns);
    if (csv) {
      csv->row(std::vector<double>{static_cast<double>(a.cores),
                                   a.days_per_ns, b.days_per_ns});
    }
  }
  table.print(std::cout);

  report::LineChart chart("Gromacs, one node", 72, 16);
  chart.set_log_x(true);
  chart.set_log_y(true);
  chart.set_axis_labels("cores", "days/ns");
  chart.series("CTE-Arm", cx, cy);
  chart.series("MareNostrum 4", mx, my);
  std::printf("\n");
  chart.print(std::cout);

  const auto a6 = apps::run_gromacs(cte, 1);
  const auto b6 = apps::run_gromacs(mn4, 1);
  const auto a48 = apps::run_gromacs(cte, 8);
  const auto b48 = apps::run_gromacs(mn4, 8);
  std::printf(
      "\nheadline: 6 cores %.2fx slower (paper 3.48x); whole node %.2fx "
      "(paper 3.10x)\n",
      a6.days_per_ns / b6.days_per_ns, a48.days_per_ns / b48.days_per_ns);

  // Native anchor: the real cell-list MD kernel conserves energy.
  kernels::MdSystem md(
      kernels::MdConfig{.particles = 500, .box = 10.0, .cutoff = 2.5,
                        .dt = 0.001});
  const double e0 = md.total_energy();
  md.run(50);
  std::printf("native MD anchor: 500 particles, 50 steps, energy drift "
              "%.3f%%\n",
              100.0 * (md.total_energy() - e0) / std::abs(e0));
  return 0;
}
