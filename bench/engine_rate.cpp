// Engine speed: raw discrete-event throughput of the simulation core
// (ROADMAP item 1), reported in the RIKEN Post-K-simulator style: an
// explicit events/sec figure per scenario, defended in CI.
//
// Two layers of benchmarks:
//   - Engine microbenchmarks (BM_EventQueuePushPop, BM_ScheduleDispatch,
//     BM_SpawnResume) isolate the hot path itself: the 4-ary event queue,
//     InlineFunction dispatch and pooled coroutine frames. The *Legacy
//     variant re-implements the pre-rebuild loop (std::priority_queue of
//     std::function callbacks, copy-then-pop) in-tree, so the speedup is a
//     number measured on this machine today, not a changelog memory —
//     tools/perf/check_engine_rate.py gates dispatch/legacy >= 2x.
//   - Cluster benchmarks (BM_ClusterEngine, BM_ClusterEnginePower) run the
//     canonical 192-node CTE-Arm batch study end to end. They report both
//     events/sec from ClusterResult::engine_events (raw engine dispatches —
//     the number that matches what the engine actually does) and the
//     job-level jobs/sec alongside.
//
// Besides the normal google-benchmark output, `--out=PATH` (default
// BENCH_engine.json, written to the current directory — run from the repo
// root to refresh the committed baseline) emits a machine-readable summary
// that CI uploads as an artifact. The flag is stripped from argv before
// benchmark::Initialize sees it.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <queue>
#include <string>
#include <vector>

#include "arch/configs.h"
#include "batch/cluster.h"
#include "batch/workload.h"
#include "core/engine.h"
#include "core/event_queue.h"
#include "core/task.h"
#include "power/power_model.h"
#include "util/json.h"
#include "util/rng.h"

namespace {

using namespace ctesim;

// ---------------------------------------------------------------------------
// Legacy engine loop, kept in-tree as the measured baseline. This is the
// exact pre-rebuild shape of src/core/engine.{h,cpp}: a std::priority_queue
// of events whose callbacks are std::function (heap-allocated closures past
// 16 bytes on libstdc++), popped with the copy-then-pop idiom
// `Event event = queue_.top(); queue_.pop();` that the move-out pop of
// sim::EventQueue eliminated. Do NOT "fix" this copy: it is the baseline.
// ---------------------------------------------------------------------------
class LegacyEngine {
 public:
  sim::Time now() const { return now_; }

  void schedule_in(sim::Time delay, std::function<void()> fn) {
    queue_.push(Event{now_ + delay, next_seq_++, std::move(fn)});
  }

  std::uint64_t run() {
    std::uint64_t dispatched = 0;
    while (!queue_.empty()) {
      Event event = queue_.top();  // the per-dispatch copy being measured
      queue_.pop();
      now_ = event.time;
      ++dispatched;
      event.fn();
    }
    return dispatched;
  }

 private:
  struct Event {
    sim::Time time;
    std::uint64_t seq;
    std::function<void()> fn;

    bool operator<(const Event& other) const {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  std::priority_queue<Event> queue_;
  sim::Time now_ = 0;
  std::uint64_t next_seq_ = 0;
};

// ---------------------------------------------------------------------------
// BM_EventQueuePushPop: steady-state push+pop cycles on a pre-filled queue
// at several depths — the pure data-structure cost, one cycle per
// iteration. Times are splitmix-random, so the heap actually sifts.
// ---------------------------------------------------------------------------
void BM_EventQueuePushPop(benchmark::State& state) {
  const auto depth = static_cast<std::size_t>(state.range(0));
  Rng rng(7);
  sim::EventQueue queue;
  queue.reserve(depth + 1);
  std::uint64_t seq = 0;
  std::uint64_t sink = 0;
  for (std::size_t i = 0; i < depth; ++i) {
    queue.push({static_cast<sim::Time>(rng.next_u64() % 1000000), seq++,
                [&sink] { ++sink; }});
  }
  for (auto _ : state) {
    auto event = queue.pop();
    // Re-schedule at a time >= the popped one, like a real timer reload.
    queue.push({event.time + static_cast<sim::Time>(rng.next_u64() % 1000),
                seq++, std::move(event.fn)});
    benchmark::DoNotOptimize(queue.size());
  }
  state.counters["events_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}

BENCHMARK(BM_EventQueuePushPop)->Arg(64)->Arg(1024)->Arg(16384)->Arg(262144);

// ---------------------------------------------------------------------------
// BM_ScheduleDispatch vs BM_ScheduleDispatchLegacy: the full schedule ->
// queue -> dispatch cycle through the engine, driven by self-reloading
// timers (the dominant event shape in batch/simmpi studies). Identical
// workload on both variants; the ratio is the rebuild's headline number.
// ---------------------------------------------------------------------------
constexpr int kReloads = 64;       ///< firings per timer per run

template <typename EngineT>
struct Timer {
  EngineT* engine;
  std::uint64_t* fired;
  int remaining;
  sim::Time period;

  void operator()() {
    ++*fired;
    if (--remaining > 0) {
      engine->schedule_in(period, Timer{engine, fired, remaining, period});
    }
  }
};

void BM_ScheduleDispatch(benchmark::State& state) {
  static_assert(
      sim::Engine::Callback::fits_inline<Timer<sim::Engine>>,
      "the benchmark timer must exercise the inline (allocation-free) path");
  const int timers = static_cast<int>(state.range(0));
  std::uint64_t events = 0;
  for (auto _ : state) {
    sim::Engine engine;
    std::uint64_t fired = 0;
    for (int i = 0; i < timers; ++i) {
      engine.schedule_in(i + 1, Timer<sim::Engine>{&engine, &fired,
                                                   kReloads,
                                                   sim::Time{100 + i}});
    }
    engine.run();
    events += fired;
    benchmark::DoNotOptimize(fired);
  }
  state.counters["events_per_s"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
}

BENCHMARK(BM_ScheduleDispatch)->Arg(16)->Arg(256);

void BM_ScheduleDispatchLegacy(benchmark::State& state) {
  const int timers = static_cast<int>(state.range(0));
  std::uint64_t events = 0;
  for (auto _ : state) {
    LegacyEngine engine;
    std::uint64_t fired = 0;
    for (int i = 0; i < timers; ++i) {
      engine.schedule_in(i + 1, Timer<LegacyEngine>{&engine, &fired,
                                                    kReloads,
                                                    sim::Time{100 + i}});
    }
    events += engine.run();
    benchmark::DoNotOptimize(fired);
  }
  state.counters["events_per_s"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
}

BENCHMARK(BM_ScheduleDispatchLegacy)->Arg(16)->Arg(256);

// ---------------------------------------------------------------------------
// BM_SpawnResume: spawn/resume/destroy churn of short-lived coroutine
// processes — what the frame pool accelerates. Reported per engine event
// (spawn resume + delay resume per process).
// ---------------------------------------------------------------------------
sim::Task<> short_process(sim::Engine& engine, std::uint64_t* acc) {
  co_await engine.delay(1);
  ++*acc;
}

void BM_SpawnResume(benchmark::State& state) {
  constexpr int kProcs = 512;
  std::uint64_t acc = 0;
  std::uint64_t events = 0;
  for (auto _ : state) {
    sim::Engine engine;
    for (int i = 0; i < kProcs; ++i) {
      engine.spawn(short_process(engine, &acc));
    }
    engine.run();
    events += engine.events_processed();
    benchmark::DoNotOptimize(acc);
  }
  state.counters["events_per_s"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
}

BENCHMARK(BM_SpawnResume);

// ---------------------------------------------------------------------------
// Cluster benchmarks: the canonical engine workload — >=500 jobs of batch
// traffic on the full 192-node machine, EASY backfill, contiguous
// placement, seed 1.
// ---------------------------------------------------------------------------
constexpr int kCanonicalJobs = 600;

void BM_ClusterEngine(benchmark::State& state) {
  const batch::RuntimeModel model(arch::cte_arm());
  batch::WorkloadConfig config;
  config.num_jobs = static_cast<int>(state.range(0));
  config.mean_interarrival_s = 16.0;
  config.burst_fraction = 0.3;
  const auto stream = batch::generate(config, model, 1);
  batch::ClusterOptions options;
  options.seed = 1;

  std::uint64_t events = 0;
  std::uint64_t jobs = 0;
  for (auto _ : state) {
    const auto result = batch::run_cluster(model, stream, options);
    events += result.engine_events;
    jobs += static_cast<std::uint64_t>(result.records.size());
    benchmark::DoNotOptimize(result.engine_events);
  }
  state.counters["events_per_s"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
  state.counters["events_per_run"] = benchmark::Counter(
      static_cast<double>(events) /
      static_cast<double>(state.iterations()));
  state.counters["jobs_per_s"] = benchmark::Counter(
      static_cast<double>(jobs), benchmark::Counter::kIsRate);
}

// Iterations pinned: one cluster run is long enough that min_time-driven
// sizing would measure a single iteration, and the check_engine_rate.py
// power gate compares two such runs — averaging a few keeps that ratio
// stable on noisy CI runners.
BENCHMARK(BM_ClusterEngine)
    ->Arg(kCanonicalJobs / 4)
    ->Arg(kCanonicalJobs)
    ->Iterations(4)
    ->Unit(benchmark::kMillisecond);

/// The same canonical run with the energy layer on: what the per-event
/// power accounting costs. tools/perf/check_engine_rate.py holds this
/// within 10% of the plain run.
void BM_ClusterEnginePower(benchmark::State& state) {
  const batch::RuntimeModel model(arch::cte_arm());
  batch::WorkloadConfig config;
  config.num_jobs = static_cast<int>(state.range(0));
  config.mean_interarrival_s = 16.0;
  config.burst_fraction = 0.3;
  const auto stream = batch::generate(config, model, 1);
  const power::PowerModel power = power::default_power(model.machine());
  batch::ClusterOptions options;
  options.seed = 1;
  options.power = &power;

  std::uint64_t events = 0;
  std::uint64_t jobs = 0;
  for (auto _ : state) {
    const auto result = batch::run_cluster(model, stream, options);
    events += result.engine_events;
    jobs += static_cast<std::uint64_t>(result.records.size());
    benchmark::DoNotOptimize(result.engine_events);
  }
  state.counters["events_per_s"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
  state.counters["events_per_run"] = benchmark::Counter(
      static_cast<double>(events) /
      static_cast<double>(state.iterations()));
  state.counters["jobs_per_s"] = benchmark::Counter(
      static_cast<double>(jobs), benchmark::Counter::kIsRate);
}

BENCHMARK(BM_ClusterEnginePower)
    ->Arg(kCanonicalJobs)
    ->Iterations(4)
    ->Unit(benchmark::kMillisecond);

/// Console output plus a captured copy of every run for the JSON summary.
class CaptureReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) runs_.push_back(run);
    ConsoleReporter::ReportRuns(runs);
  }

  const std::vector<Run>& runs() const { return runs_; }

 private:
  std::vector<Run> runs_;
};

double counter_value(const benchmark::BenchmarkReporter::Run& run,
                     const char* name) {
  const auto it = run.counters.find(name);
  return it != run.counters.end() ? it->second.value : 0.0;
}

/// Canonical run name for the summary: the "/iterations:N" suffix google
/// benchmark appends for pinned-iteration runs is an execution detail, not
/// part of the benchmark's identity — stripping it keeps the committed
/// baseline names stable if the pin count ever changes.
std::string canonical_name(const std::string& name) {
  const std::size_t pos = name.find("/iterations:");
  return pos == std::string::npos ? name : name.substr(0, pos);
}

bool write_summary(const std::string& path,
                   const std::vector<benchmark::BenchmarkReporter::Run>& runs) {
  std::ofstream out(path);
  if (!out) return false;
  // Machine metadata: enough to interpret a committed baseline later. No
  // timestamps/hostnames — the summary content stays deterministic modulo
  // the timings themselves.
  out << "{\"bench\":\"engine_rate\",\"machine\":\"cte-arm\",\"nodes\":"
      << arch::cte_arm().num_nodes << ",\"compiler\":\""
      << json::escape(__VERSION__) << "\",\"build\":\""
#ifdef NDEBUG
      << "release"
#else
      << "debug"
#endif
      << "\",\"sbo_bytes\":" << util::kInlineFunctionCapacity
      << ",\"queue_arity\":4,\"runs\":[";
  bool first = true;
  for (const auto& run : runs) {
    if (run.error_occurred) continue;
    const double real_s =
        run.iterations > 0
            ? run.real_accumulated_time / static_cast<double>(run.iterations)
            : 0.0;
    if (!first) out << ",";
    first = false;
    out << "{\"name\":\"" << json::escape(canonical_name(run.benchmark_name()))
        << "\",\"iterations\":" << run.iterations
        << ",\"real_s_per_run\":" << json::number(real_s)
        << ",\"events_per_run\":"
        << json::number(counter_value(run, "events_per_run"))
        << ",\"jobs_per_s\":"
        << json::number(counter_value(run, "jobs_per_s"))
        << ",\"events_per_s\":"
        << json::number(counter_value(run, "events_per_s")) << "}";
  }
  out << "]}\n";
  return static_cast<bool>(out);
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_engine.json";
  std::vector<char*> passthrough;
  for (int i = 0; i < argc; ++i) {
    if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  int bench_argc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&bench_argc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc,
                                             passthrough.data())) {
    return 1;
  }
  CaptureReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  if (!out_path.empty()) {
    if (!write_summary(out_path, reporter.runs())) {
      std::fprintf(stderr, "engine_rate: cannot write %s\n",
                   out_path.c_str());
      return 1;
    }
    std::printf("engine_rate: summary written to %s\n", out_path.c_str());
  }
  return 0;
}
