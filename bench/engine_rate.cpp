// Engine speed: raw discrete-event throughput of the simulation core
// (ROADMAP item 1). Runs the canonical 192-node CTE-Arm cluster study —
// the same workload shape cluster_throughput uses — under google-benchmark
// and reports DES events per wall-clock second, so engine regressions show
// up as a number instead of a feeling.
//
// Besides the normal google-benchmark output, `--out=PATH` (default
// BENCH_engine.json, written to the current directory — run from the repo
// root to refresh the committed baseline) emits a machine-readable summary
// that CI uploads as an artifact. The flag is stripped from argv before
// benchmark::Initialize sees it.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "arch/configs.h"
#include "batch/cluster.h"
#include "batch/workload.h"
#include "power/power_model.h"
#include "util/json.h"

namespace {

using namespace ctesim;

/// The canonical engine workload: ≥500 jobs of batch traffic on the full
/// 192-node machine, EASY backfill, contiguous placement, seed 1.
constexpr int kCanonicalJobs = 600;

void BM_ClusterEngine(benchmark::State& state) {
  const batch::RuntimeModel model(arch::cte_arm());
  batch::WorkloadConfig config;
  config.num_jobs = static_cast<int>(state.range(0));
  config.mean_interarrival_s = 16.0;
  config.burst_fraction = 0.3;
  const auto stream = batch::generate(config, model, 1);
  batch::ClusterOptions options;
  options.seed = 1;

  std::uint64_t events = 0;
  for (auto _ : state) {
    const auto result = batch::run_cluster(model, stream, options);
    events += result.engine_events;
    benchmark::DoNotOptimize(result.engine_events);
  }
  state.counters["events_per_s"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
  state.counters["events_per_run"] = benchmark::Counter(
      static_cast<double>(events) /
      static_cast<double>(state.iterations()));
}

BENCHMARK(BM_ClusterEngine)
    ->Arg(kCanonicalJobs / 4)
    ->Arg(kCanonicalJobs)
    ->Unit(benchmark::kMillisecond);

/// The same canonical run with the energy layer on: what the per-event
/// power accounting costs. tools/perf/check_engine_rate.py holds this
/// within 10% of the plain run.
void BM_ClusterEnginePower(benchmark::State& state) {
  const batch::RuntimeModel model(arch::cte_arm());
  batch::WorkloadConfig config;
  config.num_jobs = static_cast<int>(state.range(0));
  config.mean_interarrival_s = 16.0;
  config.burst_fraction = 0.3;
  const auto stream = batch::generate(config, model, 1);
  const power::PowerModel power = power::default_power(model.machine());
  batch::ClusterOptions options;
  options.seed = 1;
  options.power = &power;

  std::uint64_t events = 0;
  for (auto _ : state) {
    const auto result = batch::run_cluster(model, stream, options);
    events += result.engine_events;
    benchmark::DoNotOptimize(result.engine_events);
  }
  state.counters["events_per_s"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
  state.counters["events_per_run"] = benchmark::Counter(
      static_cast<double>(events) /
      static_cast<double>(state.iterations()));
}

BENCHMARK(BM_ClusterEnginePower)
    ->Arg(kCanonicalJobs)
    ->Unit(benchmark::kMillisecond);

/// Console output plus a captured copy of every run for the JSON summary.
class CaptureReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) runs_.push_back(run);
    ConsoleReporter::ReportRuns(runs);
  }

  const std::vector<Run>& runs() const { return runs_; }

 private:
  std::vector<Run> runs_;
};

bool write_summary(const std::string& path,
                   const std::vector<benchmark::BenchmarkReporter::Run>& runs) {
  std::ofstream out(path);
  if (!out) return false;
  out << "{\"bench\":\"engine_rate\",\"machine\":\"cte-arm\",\"nodes\":"
      << arch::cte_arm().num_nodes << ",\"runs\":[";
  bool first = true;
  for (const auto& run : runs) {
    if (run.error_occurred) continue;
    const double real_s =
        run.iterations > 0
            ? run.real_accumulated_time / static_cast<double>(run.iterations)
            : 0.0;
    double events_per_s = 0.0;
    double events_per_run = 0.0;
    if (auto it = run.counters.find("events_per_s");
        it != run.counters.end()) {
      events_per_s = it->second.value;
    }
    if (auto it = run.counters.find("events_per_run");
        it != run.counters.end()) {
      events_per_run = it->second.value;
    }
    if (!first) out << ",";
    first = false;
    out << "{\"name\":\"" << json::escape(run.benchmark_name())
        << "\",\"iterations\":" << run.iterations
        << ",\"real_s_per_run\":" << json::number(real_s)
        << ",\"events_per_run\":" << json::number(events_per_run)
        << ",\"events_per_s\":" << json::number(events_per_s) << "}";
  }
  out << "]}\n";
  return static_cast<bool>(out);
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_engine.json";
  std::vector<char*> passthrough;
  for (int i = 0; i < argc; ++i) {
    if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  int bench_argc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&bench_argc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc,
                                             passthrough.data())) {
    return 1;
  }
  CaptureReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  if (!out_path.empty()) {
    if (!write_summary(out_path, reporter.runs())) {
      std::fprintf(stderr, "engine_rate: cannot write %s\n",
                   out_path.c_str());
      return 1;
    }
    std::printf("engine_rate: summary written to %s\n", out_path.c_str());
  }
  return 0;
}
