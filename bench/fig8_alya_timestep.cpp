// Fig. 8: Alya strong scalability — average time step (TestCaseB, 132M
// elements, MPI-only), CTE-Arm 12..78 nodes vs MareNostrum 4 4..16 nodes.
#include <cstdio>
#include <iostream>

#include "apps/alya.h"
#include "arch/configs.h"
#include "bench_common.h"
#include "kernels/sparse.h"
#include "report/plot.h"
#include "report/table.h"
#include "trace/chrome.h"
#include "trace/recorder.h"

using namespace ctesim;

int main(int argc, char** argv) {
  std::string csv_path;
  std::string trace_path;
  Cli cli("fig8_alya_timestep", "Alya average time step");
  cli.option("trace", &trace_path,
             "write a Chrome trace of the 12-node CTE-Arm run to this path");
  if (!bench::parse_harness(argc, argv, "fig8_alya_timestep",
                            "Alya average time step", &csv_path, &cli)) {
    return 0;
  }
  bench::banner("Fig. 8", "Alya: average time step (TestCaseB)");

  const auto cte = arch::cte_arm();
  const auto mn4 = arch::marenostrum4();
  std::printf("memory minimum: %d CTE-Arm nodes (paper: 12)\n\n",
              apps::alya_min_nodes(cte));

  report::Table table("seconds per time step (avg of 19 steps)",
                      {"nodes", "CTE-Arm", "MareNostrum 4"});
  report::LineChart chart("Alya time step", 72, 18);
  chart.set_log_x(true);
  chart.set_log_y(true);
  chart.set_axis_labels("nodes", "s/step");
  std::vector<double> cx, cy, mx, my;
  std::unique_ptr<CsvWriter> csv;
  if (!csv_path.empty()) {
    csv = std::make_unique<CsvWriter>(
        csv_path,
        std::vector<std::string>{"machine", "nodes", "s_per_step"});
  }
  for (int nodes : {4, 8, 12, 16, 22, 32, 44, 62, 78}) {
    const auto a = apps::run_alya(cte, nodes);
    const auto b = apps::run_alya(mn4, nodes);
    std::string cte_cell = a.fits_memory
                               ? report::fixed(a.time_per_step, 3)
                               : std::string("NP");
    std::string mn4_cell = (b.fits_memory && nodes <= 16)
                               ? report::fixed(b.time_per_step, 3)
                               : std::string("-");
    table.row({std::to_string(nodes), cte_cell, mn4_cell});
    if (a.fits_memory) {
      cx.push_back(nodes);
      cy.push_back(a.time_per_step);
      if (csv) {
        csv->row(std::vector<std::string>{
            "cte", std::to_string(nodes), report::fixed(a.time_per_step, 5)});
      }
    }
    if (b.fits_memory && nodes <= 16) {
      mx.push_back(nodes);
      my.push_back(b.time_per_step);
      if (csv) {
        csv->row(std::vector<std::string>{
            "mn4", std::to_string(nodes), report::fixed(b.time_per_step, 5)});
      }
    }
  }
  table.print(std::cout);
  std::printf("\n");
  chart.series("CTE-Arm", cx, cy);
  chart.series("MareNostrum 4", mx, my);
  chart.print(std::cout);

  const auto c12 = apps::run_alya(cte, 12);
  const auto m12 = apps::run_alya(mn4, 12);
  const auto c44 = apps::run_alya(cte, 44);
  std::printf(
      "\nheadline: @12-16 nodes CTE-Arm is %.2fx slower (paper: 3.4x); 44 "
      "CTE nodes = %.3f s vs 12 MN4 nodes = %.3f s (paper: equal at 44)\n",
      c12.time_per_step / m12.time_per_step, c44.time_per_step,
      m12.time_per_step);

  if (!trace_path.empty()) {
    // A dedicated traced run at the paper's memory-minimum point: the
    // assembly/solver alternation and the halo-exchange tails are exactly
    // the per-phase attribution the paper's analysis rests on.
    trace::Recorder recorder;
    apps::AlyaConfig traced;
    traced.recorder = &recorder;
    apps::run_alya(cte, 12, traced);
    trace::write_chrome_trace(recorder, trace_path);
    std::printf(
        "\ntrace: 12-node CTE-Arm run, %zu spans -> %s (open in "
        "chrome://tracing or https://ui.perfetto.dev)\n",
        recorder.spans().size(), trace_path.c_str());
  }

  // Native anchor: the solver phase's algorithm (CG on an s.p.d. system)
  // actually converges in the kernel library.
  const auto a = kernels::build_poisson27(12, 12, 12);
  std::vector<double> ones(a.rows, 1.0);
  std::vector<double> b;
  kernels::spmv(a, ones, b);
  std::vector<double> x;
  const auto cg = kernels::conjugate_gradient(a, b, x, 300, 1e-8);
  std::printf("native CG anchor: 12^3 Poisson converged=%s in %d iters\n",
              cg.converged ? "yes" : "NO", cg.iterations);
  return cg.converged ? 0 : 1;
}
