// Fig. 6: LINPACK scalability on CTE-Arm and MareNostrum 4, whole nodes up
// to 192, vendor-tuned binaries (4 ranks/node on CTE-Arm, 1 on MN4),
// N sized to >= 80% of aggregate memory.
#include <cstdio>
#include <iostream>

#include "arch/configs.h"
#include "bench_common.h"
#include "hpcb/hpl.h"
#include "report/plot.h"
#include "report/table.h"

using namespace ctesim;

int main(int argc, char** argv) {
  std::string csv_path;
  if (!bench::parse_harness(argc, argv, "fig6_linpack",
                            "Linpack scalability", &csv_path)) {
    return 0;
  }
  bench::banner("Fig. 6", "Linpack scalability");

  const auto cte_machine = arch::cte_arm();
  const auto mn4_machine = arch::marenostrum4();
  hpcb::HplModel cte(cte_machine, hpcb::hpl_config_for(cte_machine));
  hpcb::HplModel mn4(mn4_machine, hpcb::hpl_config_for(mn4_machine));

  report::Table table("HPL GFlop/s",
                      {"nodes", "CTE-Arm", "eff%", "MN4", "eff%",
                       "speedup"});
  report::LineChart chart("Linpack scalability", 72, 18);
  chart.set_log_x(true);
  chart.set_log_y(true);
  chart.set_axis_labels("nodes", "GFlop/s");
  std::vector<double> xs, cte_ys, mn4_ys;
  std::unique_ptr<CsvWriter> csv;
  if (!csv_path.empty()) {
    csv = std::make_unique<CsvWriter>(
        csv_path, std::vector<std::string>{"nodes", "cte_gflops", "cte_eff",
                                           "mn4_gflops", "mn4_eff"});
  }
  for (int nodes : {1, 2, 4, 8, 16, 32, 64, 96, 128, 160, 192}) {
    const auto a = cte.run(nodes);
    const auto b = mn4.run(nodes);
    table.row(std::to_string(nodes),
              {a.gflops, 100.0 * a.efficiency, b.gflops, 100.0 * b.efficiency,
               a.gflops / b.gflops});
    xs.push_back(nodes);
    cte_ys.push_back(a.gflops);
    mn4_ys.push_back(b.gflops);
    if (csv) {
      csv->row(std::vector<double>{static_cast<double>(nodes), a.gflops,
                                   a.efficiency, b.gflops, b.efficiency});
    }
  }
  table.print(std::cout);
  std::printf("\n");
  chart.series("CTE-Arm", xs, cte_ys);
  chart.series("MareNostrum 4", xs, mn4_ys);
  chart.print(std::cout);

  const auto a192 = cte.run(192);
  const auto b192 = mn4.run(192);
  std::printf(
      "\nheadline @192 nodes: CTE-Arm %.0f%% of peak (paper 85%%, Fugaku "
      "82%%), MN4 %.0f%% (paper 63%%)\n",
      100.0 * a192.efficiency, 100.0 * b192.efficiency);
  std::printf("problem sizes @192: CTE N=%.0f (P=%d Q=%d), MN4 N=%.0f "
              "(P=%d Q=%d)\n",
              a192.n, a192.p, a192.q, b192.n, b192.p, b192.q);
  return 0;
}
