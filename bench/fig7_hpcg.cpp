// Fig. 7: HPCG performance (vanilla and vendor-optimized builds) on one
// and 192 nodes of both machines, with the percentage of peak each bar
// reaches. The native mini-HPCG (same algorithm) runs as a correctness
// anchor.
#include <cstdio>
#include <iostream>

#include "arch/configs.h"
#include "bench_common.h"
#include "hpcb/hpcg.h"
#include "kernels/multigrid.h"
#include "report/table.h"

using namespace ctesim;

int main(int argc, char** argv) {
  std::string csv_path;
  if (!bench::parse_harness(argc, argv, "fig7_hpcg", "HPCG performance",
                            &csv_path)) {
    return 0;
  }
  bench::banner("Fig. 7", "HPCG performance, one and 192 nodes");

  hpcb::HpcgModel cte(arch::cte_arm());
  hpcb::HpcgModel mn4(arch::marenostrum4());

  report::Table table("HPCG (nx=48 ny=88 nz=88, 48 ranks/node)",
                      {"machine", "build", "nodes", "GFlop/s", "%peak"});
  std::unique_ptr<CsvWriter> csv;
  if (!csv_path.empty()) {
    csv = std::make_unique<CsvWriter>(
        csv_path, std::vector<std::string>{"machine", "build", "nodes",
                                           "gflops", "peak_pct"});
  }
  auto emit = [&](hpcb::HpcgModel& model, const char* name,
                  hpcb::HpcgBuild build, const char* build_name, int nodes) {
    const auto point = model.run(nodes, build);
    table.row({name, build_name, std::to_string(nodes),
               report::fixed(point.gflops, 1),
               report::fixed(100.0 * point.peak_fraction, 2)});
    if (csv) {
      csv->row(std::vector<std::string>{
          name, build_name, std::to_string(nodes),
          report::fixed(point.gflops, 3),
          report::fixed(100.0 * point.peak_fraction, 3)});
    }
  };
  for (int nodes : {1, 192}) {
    emit(cte, "CTE-Arm", hpcb::HpcgBuild::kVanilla, "vanilla", nodes);
    emit(cte, "CTE-Arm", hpcb::HpcgBuild::kOptimized, "optimized", nodes);
    emit(mn4, "MareNostrum 4", hpcb::HpcgBuild::kVanilla, "vanilla", nodes);
    emit(mn4, "MareNostrum 4", hpcb::HpcgBuild::kOptimized, "optimized",
         nodes);
  }
  table.print(std::cout);

  const auto c1 = cte.run(1, hpcb::HpcgBuild::kOptimized);
  const auto c192 = cte.run(192, hpcb::HpcgBuild::kOptimized);
  std::printf(
      "\nheadline: CTE-Arm optimized %.2f%% (1 node) / %.2f%% (192) of peak "
      "(paper: 2.91%% / 2.96%%; Fugaku: 3.62%%)\n",
      100.0 * c1.peak_fraction, 100.0 * c192.peak_fraction);

  // Native anchor: the actual MG-preconditioned CG converges.
  const auto mini = kernels::run_mini_hpcg(32, 32, 32, 50, 1e-9);
  std::printf(
      "native mini-HPCG 32^3: converged=%s in %d iterations (%.2e GFlop "
      "total)\n",
      mini.converged ? "yes" : "NO", mini.iterations, mini.flops / 1e9);
  return mini.converged ? 0 : 1;
}
