// Table III: build configurations for all HPC applications — printed from
// the compiler models the simulation actually uses, plus the paper's
// compiler-failure narrative (Fujitsu could not build the applications).
#include <cstdio>
#include <iostream>

#include "arch/configs.h"
#include "bench_common.h"
#include "report/table.h"

using namespace ctesim;

int main(int argc, char** argv) {
  std::string csv_path;
  if (!bench::parse_harness(argc, argv, "table3_appconfig",
                            "application build configurations", &csv_path)) {
    return 0;
  }
  bench::banner("Table III", "build configurations for all applications");

  const auto cte = arch::cte_arm();
  const auto mn4 = arch::marenostrum4();
  const auto cte_compiler = arch::default_app_compiler(cte);
  const auto mn4_compiler = arch::default_app_compiler(mn4);

  report::Table table("application builds",
                      {"application", "CTE-Arm compiler", "MN4 compiler",
                       "notes"});
  table.row({"Alya", "GNU/8.3.1-sve", "GNU/8.4.2",
             "Fujitsu compiler hangs on complex files"});
  table.row({"NEMO", "GNU/8.3.1-sve", "Intel/2017.4",
             "Fujitsu compiler errors; GNU works"});
  table.row({"Gromacs", "GNU/11.0.0", "Intel/2018.4",
             "Fujitsu fails in cmake; GMX_SIMD=ARM_SVE"});
  table.row({"OpenIFS", "GNU/8.3.1-sve", "Intel/2018.4",
             "Fujitsu builds but run fails; GNU used"});
  table.row({"WRF", "GNU/8.3.1-sve", "Intel/2017.4",
             "NetCDF/HDF5 from source on CTE-Arm"});
  table.print(std::cout);

  std::printf(
      "\nmodelled codegen quality (achieved vectorization fraction) per "
      "kernel class:\n");
  report::Table codegen("vectorization achieved by the application builds",
                        {"kernel class", "GNU on A64FX", "Intel on SKX"});
  for (auto cls : {arch::KernelClass::kFemAssembly,
                   arch::KernelClass::kSparseSolver,
                   arch::KernelClass::kStencil,
                   arch::KernelClass::kMdNonbonded,
                   arch::KernelClass::kSpectralTransform,
                   arch::KernelClass::kPhysics}) {
    codegen.row({arch::name_of(cls),
                 report::fixed(cte_compiler.vectorization(cls, cte.node.core),
                               2),
                 report::fixed(mn4_compiler.vectorization(cls, mn4.node.core),
                               2)});
  }
  codegen.print(std::cout);
  std::printf(
      "\nThe near-zero left column is the paper's Section VI finding: \"the "
      "compiler could not leverage the SVE unit\".\n");
  return 0;
}
