// Ablation: does the network matter for the paper's results?
//
// Swap interconnects between the machines (TofuD-like on MN4, OmniPath-
// like on CTE-Arm) and rerun the communication-heavy experiments (NEMO at
// 16 nodes, OpenIFS multi-node, the small-allreduce latency) — showing
// the gap is dominated by the node, not the fabric, as the paper's
// conclusions imply.
#include <cstdio>
#include <iostream>

#include "apps/nemo.h"
#include "arch/configs.h"
#include "bench_common.h"
#include "report/table.h"
#include "simmpi/world.h"

using namespace ctesim;

namespace {

double small_allreduce_latency(const arch::MachineModel& machine,
                               int nodes) {
  mpi::WorldOptions options;
  options.machine = machine;
  options.network_jitter = 0.0;
  mpi::World world(std::move(options),
                   mpi::Placement::per_node(machine.node, nodes));
  return world.run([](mpi::Rank& rank) -> sim::Task<> {
    co_await rank.allreduce(8);
  });
}

}  // namespace

int main(int argc, char** argv) {
  std::string csv_path;
  if (!bench::parse_harness(argc, argv, "ablation_network",
                            "interconnect swap study", &csv_path)) {
    return 0;
  }
  bench::banner("Ablation", "swap the interconnects, keep the nodes");

  auto cte = arch::cte_arm();
  auto mn4 = arch::marenostrum4();
  auto cte_on_opa = cte;
  cte_on_opa.name = "CTE-Arm nodes + OmniPath";
  cte_on_opa.interconnect = mn4.interconnect;
  auto mn4_on_tofu = mn4;
  mn4_on_tofu.name = "MN4 nodes + TofuD";
  mn4_on_tofu.interconnect = cte.interconnect;
  // The TofuD torus of CTE-Arm only addresses 192 nodes; shrink the
  // swapped machine accordingly (the studies below use <= 64 nodes).
  mn4_on_tofu.num_nodes = cte.num_nodes;

  report::Table table("communication-sensitive metrics",
                      {"machine", "allreduce 64 nodes [us]",
                       "NEMO @16 nodes [s]"});
  std::unique_ptr<CsvWriter> csv;
  if (!csv_path.empty()) {
    csv = std::make_unique<CsvWriter>(
        csv_path, std::vector<std::string>{"machine", "allreduce_us",
                                           "nemo_s"});
  }
  const arch::MachineModel* machines[] = {&cte, &cte_on_opa, &mn4,
                                          &mn4_on_tofu};
  for (const auto* m : machines) {
    const double ar = small_allreduce_latency(*m, 64) * 1e6;
    const double nemo = apps::run_nemo(*m, 16).total_time;
    table.row({m->name, report::fixed(ar, 1), report::fixed(nemo, 2)});
    if (csv) {
      csv->row(std::vector<std::string>{m->name, report::fixed(ar, 3),
                                        report::fixed(nemo, 4)});
    }
  }
  table.print(std::cout);
  std::printf(
      "\nReading: swapping fabrics moves the collective latency by tens of "
      "percent but barely moves the application totals — the 1.7x NEMO gap "
      "is a node-architecture effect, matching the paper's attribution.\n");
  return 0;
}
