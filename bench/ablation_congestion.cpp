// Ablation: does modelling link contention change the paper's results?
//
// The figure harnesses run contention-free (DESIGN.md decision 5). This
// bench reruns a transposition-heavy pattern (OpenIFS-like alltoall) and a
// halo pattern (NEMO-like) with the link-congestion model enabled and
// reports how much the makespans move and how much time is spent queueing
// — justifying the contention-free calibration for these workloads.
#include <cstdio>
#include <iostream>

#include "arch/configs.h"
#include "bench_common.h"
#include "report/table.h"
#include "simmpi/world.h"

using namespace ctesim;

namespace {

struct Outcome {
  double makespan;
  double queueing;
};

Outcome run_alltoall(bool congestion, int nodes, std::uint64_t bytes) {
  mpi::WorldOptions options;
  options.machine = arch::cte_arm();
  options.network_jitter = 0.0;
  options.congestion = congestion;
  mpi::World world(std::move(options),
                   mpi::Placement::per_node(arch::cte_arm().node, nodes));
  const double t = world.run([bytes](mpi::Rank& r) -> sim::Task<> {
    co_await r.alltoall(bytes);
  });
  return {t, world.network_queueing_seconds()};
}

Outcome run_halo(bool congestion, int nodes, std::uint64_t bytes) {
  mpi::WorldOptions options;
  options.machine = arch::cte_arm();
  options.network_jitter = 0.0;
  options.congestion = congestion;
  mpi::World world(std::move(options),
                   mpi::Placement::per_node(arch::cte_arm().node, nodes));
  const double t = world.run([bytes, nodes](mpi::Rank& r) -> sim::Task<> {
    std::vector<int> neighbors;
    if (r.id() > 0) neighbors.push_back(r.id() - 1);
    if (r.id() + 1 < nodes) neighbors.push_back(r.id() + 1);
    for (int step = 0; step < 10; ++step) {
      co_await r.exchange(neighbors, bytes);
    }
  });
  return {t, world.network_queueing_seconds()};
}

}  // namespace

int main(int argc, char** argv) {
  std::string csv_path;
  if (!bench::parse_harness(argc, argv, "ablation_congestion",
                            "link-contention on/off", &csv_path)) {
    return 0;
  }
  bench::banner("Ablation", "link contention on vs off (CTE-Arm, 32 nodes)");

  report::Table table("communication patterns under contention",
                      {"pattern", "free [ms]", "congested [ms]", "slowdown",
                       "queueing [ms]"});
  std::unique_ptr<CsvWriter> csv;
  if (!csv_path.empty()) {
    csv = std::make_unique<CsvWriter>(
        csv_path, std::vector<std::string>{"pattern", "free_ms",
                                           "congested_ms", "queueing_ms"});
  }
  struct Case {
    const char* name;
    Outcome free_run;
    Outcome congested;
  };
  const Case cases[] = {
      {"alltoall 256 KiB/pair", run_alltoall(false, 32, 256 << 10),
       run_alltoall(true, 32, 256 << 10)},
      {"alltoall 4 MiB/pair", run_alltoall(false, 32, 4 << 20),
       run_alltoall(true, 32, 4 << 20)},
      {"1D halo 1 MiB x10", run_halo(false, 32, 1 << 20),
       run_halo(true, 32, 1 << 20)},
  };
  for (const auto& c : cases) {
    table.row({c.name, report::fixed(c.free_run.makespan * 1e3, 2),
               report::fixed(c.congested.makespan * 1e3, 2),
               report::fixed(c.congested.makespan / c.free_run.makespan, 2),
               report::fixed(c.congested.queueing * 1e3, 2)});
    if (csv) {
      csv->row(std::vector<std::string>{
          c.name, report::fixed(c.free_run.makespan * 1e3, 4),
          report::fixed(c.congested.makespan * 1e3, 4),
          report::fixed(c.congested.queueing * 1e3, 4)});
    }
  }
  table.print(std::cout);
  std::printf(
      "\nReading: synchronized communication bursts queue behind shared "
      "torus links for a 1.2-1.9x slowdown at these (deliberately heavy) "
      "message sizes. The applications' per-step communication volumes "
      "are 1-2 orders of magnitude smaller, so the figure harnesses fold "
      "contention into their calibrated per-message overheads; enable "
      "WorldOptions::congestion for explicit studies like this one.\n");
  return 0;
}
