// Cluster throughput under job traffic: the production regime the paper
// evaluates (Section II) but single-shot benches never exercise.
//
// A Poisson-plus-bursts stream of ≥500 jobs (log2-uniform sizes, roofline-
// modeled runtimes, padded wall-time requests) runs through the batch
// subsystem on the 192-node CTE-Arm model, once per node-placement policy.
// The queue policy (EASY backfill by default) is held fixed, so the
// differences isolate what placement quality costs a busy machine:
// scattered allocations inflate communication, jobs hold nodes longer,
// queues back up, and bounded slowdown grows — the case for the
// topology-aware scheduler, measured end to end.
//
// Deterministic: identical --seed gives an identical table and CSV.
#include <cstdio>
#include <iostream>
#include <string>

#include "arch/configs.h"
#include "batch/cluster.h"
#include "batch/metrics.h"
#include "batch/workload.h"
#include "bench_common.h"
#include "power/power_model.h"
#include "report/table.h"
#include "sched/allocator.h"
#include "trace/chrome.h"
#include "trace/recorder.h"

using namespace ctesim;

int main(int argc, char** argv) {
  std::string csv_path;
  std::string trace_path;
  std::int64_t jobs = 600;
  std::int64_t seed = 1;
  double interarrival = 16.0;
  std::string queue_name = "easy";
  Cli cli("cluster_throughput",
          "batch-queue throughput vs node-placement policy on CTE-Arm");
  cli.option("jobs", &jobs, "number of jobs in the stream (>= 500)")
      .option("seed", &seed, "workload + placement seed")
      .option("interarrival", &interarrival,
              "mean inter-arrival gap in seconds (lower = busier)")
      .option("queue", &queue_name, "queue policy: easy | fcfs")
      .option("trace", &trace_path,
              "write a Chrome trace (chrome://tracing / Perfetto) of the "
              "contiguous-placement run to this path");
  if (!bench::parse_harness(argc, argv, "cluster_throughput",
                            "batch-queue throughput", &csv_path, &cli)) {
    return 0;
  }
  if (queue_name != "easy" && queue_name != "fcfs") {
    std::fprintf(stderr, "cluster_throughput: --queue must be easy or fcfs, got '%s'\n",
                 queue_name.c_str());
    return 1;
  }
  if (jobs < 1) {
    std::fprintf(stderr, "cluster_throughput: --jobs must be >= 1, got %lld\n",
                 static_cast<long long>(jobs));
    return 1;
  }
  bench::banner("Cluster throughput",
                "placement policy under batch traffic (192-node CTE-Arm)");

  const batch::RuntimeModel model(arch::cte_arm());
  batch::WorkloadConfig config;
  config.num_jobs = static_cast<int>(jobs);
  config.mean_interarrival_s = interarrival;
  config.burst_fraction = 0.3;  // campaign submissions keep the queue deep
  const auto stream =
      batch::generate(config, model, static_cast<std::uint64_t>(seed));

  const batch::QueuePolicy queue = queue_name == "fcfs"
                                       ? batch::QueuePolicy::kFcfs
                                       : batch::QueuePolicy::kEasyBackfill;

  report::Table table(
      std::string("≥500-job stream, ") + batch::name_of(queue) +
          " queue — placement policy comparison",
      {"placement", "util", "goodput", "avail", "makespan [h]",
       "wait mean [s]", "wait p95 [s]", "wait p99 [s]", "bsld mean",
       "bsld p95", "hops", "slowdown", "frag", "wasted [nh]", "killed",
       "energy [MJ]", "power [kW]"});
  std::unique_ptr<CsvWriter> csv;
  if (!csv_path.empty()) {
    csv = std::make_unique<CsvWriter>(
        csv_path,
        std::vector<std::string>{"placement", "queue", "jobs", "utilization",
                                 "goodput", "availability", "wasted_node_h",
                                 "makespan_s", "mean_wait_s", "p95_wait_s",
                                 "p99_wait_s", "mean_bsld", "p95_bsld",
                                 "p99_bsld", "mean_hops",
                                 "mean_placement_slowdown", "time_avg_frag",
                                 "interrupted", "failed", "killed",
                                 "energy_to_solution_j", "mean_power_w"});
  }

  trace::Recorder recorder(!trace_path.empty());
  // Scattered placements also cost joules: jobs hold (and power) their
  // nodes longer, so the placement gap shows up in energy-to-solution too.
  const power::PowerModel power = power::default_power(model.machine());
  double bsld_contiguous = 0.0, bsld_random = 0.0;
  for (auto placement :
       {sched::Policy::kContiguous, sched::Policy::kLinear,
        sched::Policy::kRandom}) {
    batch::ClusterOptions options;
    options.placement = placement;
    options.queue = queue;
    options.seed = static_cast<std::uint64_t>(seed);
    options.power = &power;
    // The trace covers one run; overlaying all three placements on the
    // same time axis would be unreadable.
    if (placement == sched::Policy::kContiguous && recorder.enabled()) {
      options.recorder = &recorder;
    }
    const auto result = batch::run_cluster(model, stream, options);
    const auto m =
        batch::summarize(result, model.machine().num_nodes);
    table.row({sched::name_of(placement), report::fixed(m.utilization, 3),
               report::fixed(m.goodput, 3), report::fixed(m.availability, 3),
               report::fixed(m.makespan_s / 3600.0, 2),
               report::fixed(m.mean_wait_s, 1),
               report::fixed(m.p95_wait_s, 1),
               report::fixed(m.p99_wait_s, 1),
               report::fixed(m.mean_bounded_slowdown, 2),
               report::fixed(m.p95_bounded_slowdown, 2),
               report::fixed(m.mean_hops, 2),
               report::fixed(m.mean_placement_slowdown, 3),
               report::fixed(m.time_avg_fragmentation, 3),
               report::fixed(m.wasted_node_h, 1),
               std::to_string(m.killed),
               report::fixed(m.energy_to_solution_j / 1e6, 2),
               report::fixed(m.mean_power_w / 1e3, 2)});
    if (csv) {
      csv->row(std::vector<std::string>{
          sched::name_of(placement), batch::name_of(queue),
          std::to_string(m.jobs), report::fixed(m.utilization, 4),
          report::fixed(m.goodput, 4), report::fixed(m.availability, 4),
          report::fixed(m.wasted_node_h, 2),
          report::fixed(m.makespan_s, 1), report::fixed(m.mean_wait_s, 2),
          report::fixed(m.p95_wait_s, 2), report::fixed(m.p99_wait_s, 2),
          report::fixed(m.mean_bounded_slowdown, 3),
          report::fixed(m.p95_bounded_slowdown, 3),
          report::fixed(m.p99_bounded_slowdown, 3),
          report::fixed(m.mean_hops, 3),
          report::fixed(m.mean_placement_slowdown, 4),
          report::fixed(m.time_avg_fragmentation, 4),
          std::to_string(m.interrupted), std::to_string(m.failed),
          std::to_string(m.killed),
          report::fixed(m.energy_to_solution_j, 1),
          report::fixed(m.mean_power_w, 1)});
    }
    if (placement == sched::Policy::kContiguous) {
      bsld_contiguous = m.mean_bounded_slowdown;
    }
    if (placement == sched::Policy::kRandom) {
      bsld_random = m.mean_bounded_slowdown;
    }
  }
  table.print(std::cout);
  if (recorder.enabled()) {
    trace::write_chrome_trace(recorder, trace_path);
    std::printf(
        "\ntrace: %zu spans, %zu counter samples -> %s (open in "
        "chrome://tracing or https://ui.perfetto.dev)\n",
        recorder.spans().size(), recorder.counters().size(),
        trace_path.c_str());
  }
  std::printf(
      "\nReading: contiguous placement holds mean bounded slowdown to "
      "%.2f vs %.2f for random scatter on the same stream — compact blocks "
      "keep communication cheap, jobs release nodes sooner, and the queue "
      "drains faster. This end-to-end gap is what CTE-Arm's topology-aware "
      "scheduler buys the whole machine, not just one job.\n",
      bsld_contiguous, bsld_random);
  return 0;
}
