// Energy study: DVFS operating point x workload mix on the CTE-Arm model.
//
// The power subsystem prices every batch run in joules (power/): cores
// draw f*V^2-scaled active power, DRAM/HBM energy is traffic-proportional,
// links charge the communication share. This study sweeps the DVFS ladder
// over three workload mixes — compute-bound (MD), memory-bound (SpMV) and
// the generator's mixed stream — and reports energy-to-solution, EDP and
// power, then demonstrates the power-capped scheduler (allocation-time cap
// + energy-aware DVFS backfill) on the mixed stream.
//
// The shape to look for: downclocking barely slows the memory-bound mix
// (HBM bandwidth does not follow the core clock) so its energy AND EDP
// fall, while the compute-bound mix stretches by ~1/freq — race-to-idle —
// so the lowest frequency is NOT its EDP optimum.
//
// Deterministic: identical --seed gives a byte-identical table, CSV and
// Chrome trace.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "arch/configs.h"
#include "batch/cluster.h"
#include "batch/metrics.h"
#include "batch/workload.h"
#include "bench_common.h"
#include "power/power_model.h"
#include "report/table.h"
#include "trace/chrome.h"
#include "trace/recorder.h"

using namespace ctesim;

namespace {

/// Re-target every job of `stream` to one library profile, preserving each
/// job's nominal runtime target (iterations re-fit through the roofline
/// model), and give every job 3x wall-time headroom so the deepest DVFS
/// state (1/0.6 ~ 1.67x stretch, on top of placement scatter) never trips
/// the wall-time killer and the DVFS comparison is not confounded by kills.
std::vector<batch::Job> retarget(const std::vector<batch::Job>& stream,
                                 const batch::RuntimeModel& model,
                                 const char* profile_name) {
  std::vector<batch::Job> jobs = stream;
  for (batch::Job& job : jobs) {
    if (profile_name != nullptr) {
      const double target = model.reference_runtime(job);
      batch::Job probe = job;
      probe.profile = batch::profile_by_name(profile_name);
      probe.profile.iterations = 1;
      const double per_iter = model.reference_runtime(probe);
      probe.profile.iterations = std::max(
          1, static_cast<int>(std::lround(target / per_iter)));
      job.profile = probe.profile;
    }
    job.walltime_s = 3.0 * model.reference_runtime(job);
  }
  return jobs;
}

}  // namespace

int main(int argc, char** argv) {
  std::string csv_path;
  std::string trace_path;
  std::int64_t jobs = 240;
  std::int64_t seed = 1;
  Cli cli("energy_study",
          "energy-to-solution and EDP vs DVFS state and workload mix");
  cli.option("jobs", &jobs, "number of jobs in the stream")
      .option("seed", &seed, "workload + placement seed")
      .option("trace", &trace_path,
              "write a Chrome trace (power counters included) of the "
              "power-capped mixed run to this path");
  if (!bench::parse_harness(argc, argv, "energy_study", "energy sweep",
                            &csv_path, &cli)) {
    return 0;
  }
  if (jobs < 1) {
    std::fprintf(stderr, "energy_study: --jobs must be >= 1, got %lld\n",
                 static_cast<long long>(jobs));
    return 1;
  }
  bench::banner("Energy study",
                "DVFS x workload mix on the 192-node CTE-Arm model");

  const batch::RuntimeModel model(arch::cte_arm());
  const int total_nodes = model.machine().num_nodes;
  const power::PowerModel power = power::default_power(model.machine());

  batch::WorkloadConfig config;
  config.num_jobs = static_cast<int>(jobs);
  config.mean_interarrival_s = 16.0;
  config.burst_fraction = 0.3;
  const auto base_stream =
      batch::generate(config, model, static_cast<std::uint64_t>(seed));

  struct Mix {
    const char* label;
    const char* profile;  // nullptr: keep the generator's mixed profiles
  };
  const std::vector<Mix> mixes = {
      {"compute (md)", "md"},
      {"memory (spmv)", "spmv"},
      {"mixed", nullptr},
  };

  report::Table table(
      "energy-to-solution and EDP — workload mix (rows) x DVFS state "
      "(columns)",
      {"mix", "dvfs", "freq", "makespan [h]", "energy [MJ]", "EDP [GJ*s]",
       "power [kW]", "peak [kW]", "wasted [MJ]", "killed"});
  std::unique_ptr<CsvWriter> csv;
  if (!csv_path.empty()) {
    csv = std::make_unique<CsvWriter>(
        csv_path,
        std::vector<std::string>{
            "mix", "dvfs", "freq_scale", "power_cap_w", "dvfs_backfill",
            "makespan_s", "energy_j", "edp_js", "mean_power_w",
            "peak_power_w", "wasted_energy_j", "cpu_energy_j",
            "mem_energy_j", "net_energy_j", "idle_energy_j", "killed",
            "capped_starts", "downclocked_jobs"});
  }

  const auto emit = [&](const char* mix, const char* dvfs_name,
                        double freq_scale, const batch::ClusterOptions& o,
                        const batch::ClusterMetrics& m) {
    table.row({mix, dvfs_name, report::fixed(freq_scale, 2),
               report::fixed(m.makespan_s / 3600.0, 2),
               report::fixed(m.energy_to_solution_j / 1e6, 2),
               report::fixed(m.edp_js / 1e9, 3),
               report::fixed(m.mean_power_w / 1e3, 2),
               report::fixed(m.peak_power_w / 1e3, 2),
               report::fixed(m.wasted_energy_j / 1e6, 3),
               std::to_string(m.killed)});
    if (csv) {
      csv->row(std::vector<std::string>{
          mix, dvfs_name, report::fixed(freq_scale, 3),
          report::fixed(o.power_cap_w, 1), o.dvfs_backfill ? "1" : "0",
          report::fixed(m.makespan_s, 1),
          report::fixed(m.energy_to_solution_j, 1),
          report::fixed(m.edp_js, 1), report::fixed(m.mean_power_w, 1),
          report::fixed(m.peak_power_w, 1),
          report::fixed(m.wasted_energy_j, 1),
          report::fixed(m.cpu_energy_j, 1), report::fixed(m.mem_energy_j, 1),
          report::fixed(m.net_energy_j, 1),
          report::fixed(m.idle_energy_j, 1), std::to_string(m.killed),
          std::to_string(m.capped_starts),
          std::to_string(m.downclocked_jobs)});
    }
  };

  // --- DVFS sweep ----------------------------------------------------------
  double nominal_mixed_peak_w = 0.0;
  for (const Mix& mix : mixes) {
    const auto stream = retarget(base_stream, model, mix.profile);
    const char* best_state = "?";
    double best_edp = 0.0;
    const char* lowest_state = "?";
    double lowest_edp = 0.0;
    for (const power::DvfsState& state : power::dvfs_states()) {
      batch::ClusterOptions options;
      options.seed = static_cast<std::uint64_t>(seed);
      options.power = &power;
      options.dvfs = state;
      const auto result = batch::run_cluster(model, stream, options);
      const auto m = batch::summarize(result, total_nodes);
      emit(mix.label, state.name, state.freq_scale, options, m);
      if (best_edp <= 0.0 || m.edp_js < best_edp) {
        best_edp = m.edp_js;
        best_state = state.name;
      }
      lowest_state = state.name;  // the ladder ends at its deepest state
      lowest_edp = m.edp_js;
      if (mix.profile == nullptr && state.nominal()) {
        nominal_mixed_peak_w = m.peak_power_w;
      }
    }
    std::printf("  %-14s EDP-optimal state: %s (deepest %s: %.3f GJ*s)\n",
                mix.label, best_state, lowest_state, lowest_edp / 1e9);
  }

  // --- power cap demo ------------------------------------------------------
  // Cap the mixed stream at 70% of its uncapped nominal peak: the scheduler
  // defers starts that would bust the cap, and with --dvfs backfill rescues
  // some of them at a deeper operating point instead of waiting.
  const double cap_w = 0.7 * nominal_mixed_peak_w;
  const auto mixed = retarget(base_stream, model, nullptr);
  trace::Recorder recorder(!trace_path.empty());
  for (const bool backfill : {false, true}) {
    batch::ClusterOptions options;
    options.seed = static_cast<std::uint64_t>(seed);
    options.power = &power;
    options.power_cap_w = cap_w;
    options.dvfs_backfill = backfill;
    if (backfill && recorder.enabled()) options.recorder = &recorder;
    const auto result = batch::run_cluster(model, mixed, options);
    const auto m = batch::summarize(result, total_nodes);
    emit(backfill ? "mixed cap+dvfs" : "mixed cap", "nominal", 1.0, options,
         m);
    std::printf(
        "  cap %.1f kW%s: peak %.1f kW, %d deferred starts, %d downclocked, "
        "makespan %.2f h\n",
        cap_w / 1e3, backfill ? " + dvfs backfill" : "",
        m.peak_power_w / 1e3, m.capped_starts, m.downclocked_jobs,
        m.makespan_s / 3600.0);
  }

  table.print(std::cout);
  if (recorder.enabled()) {
    trace::write_chrome_trace(recorder, trace_path);
    std::printf(
        "\ntrace: %zu spans, %zu counter samples -> %s (open in "
        "chrome://tracing or https://ui.perfetto.dev)\n",
        recorder.spans().size(), recorder.counters().size(),
        trace_path.c_str());
  }
  std::printf(
      "\nReading: the memory-bound mix rides the DVFS ladder down — HBM "
      "bandwidth ignores the core clock, so runtime barely moves while "
      "core power falls — but the compute-bound mix stretches by ~1/freq "
      "and its EDP worsens at the bottom of the ladder: race-to-idle wins "
      "there. The cap rows show the power-aware scheduler trading queue "
      "time (deferred starts) for a hard power envelope, and DVFS backfill "
      "buying some of that queue time back at lower frequency.\n");
  return 0;
}
