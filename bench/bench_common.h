// Shared plumbing for the figure/table harnesses: CSV export and the
// standard header each binary prints.
#pragma once

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "util/cli.h"
#include "util/csv.h"

namespace ctesim::bench {

struct HarnessIo {
  std::unique_ptr<CsvWriter> csv;
};

/// Parse the standard harness flags (--csv=path). Returns false when the
/// caller should exit (e.g. --help). Extra options can be registered on
/// `cli` by the caller before invoking.
inline bool parse_harness(int argc, char** argv, const std::string& name,
                          const std::string& what, std::string* csv_path,
                          Cli* cli = nullptr) {
  Cli local(name, what);
  Cli& c = cli ? *cli : local;
  c.option("csv", csv_path, "write the series as CSV to this path");
  return c.parse(argc, argv);
}

inline void banner(const char* id, const char* title) {
  std::printf("=== %s — %s ===\n", id, title);
  std::printf("(ctesim reproduction; machines are models, see DESIGN.md)\n\n");
}

}  // namespace ctesim::bench
