// Fig. 11: NEMO (BENCH, ORCA1 resolution) strong scalability, 8..192
// CTE-Arm nodes vs 1..24 MareNostrum 4 nodes, log-log.
#include <cmath>
#include <cstdio>
#include <iostream>

#include "apps/nemo.h"
#include "arch/configs.h"
#include "bench_common.h"
#include "kernels/stencil.h"
#include "report/plot.h"
#include "report/table.h"
#include "trace/chrome.h"
#include "trace/recorder.h"

using namespace ctesim;

int main(int argc, char** argv) {
  std::string csv_path;
  std::string trace_path;
  Cli cli("fig11_nemo", "NEMO scalability");
  cli.option("trace", &trace_path,
             "write a Chrome trace of the 8-node CTE-Arm run to this path");
  if (!bench::parse_harness(argc, argv, "fig11_nemo", "NEMO scalability",
                            &csv_path, &cli)) {
    return 0;
  }
  bench::banner("Fig. 11", "NEMO: scalability (BENCH @ ORCA1)");

  const auto cte = arch::cte_arm();
  const auto mn4 = arch::marenostrum4();
  std::printf("memory minimum: %d CTE-Arm nodes (paper: 8)\n\n",
              apps::nemo_min_nodes(cte));

  report::Table table("execution time [s]",
                      {"nodes", "CTE-Arm", "MareNostrum 4"});
  std::vector<double> cx, cy, mx, my;
  std::unique_ptr<CsvWriter> csv;
  if (!csv_path.empty()) {
    csv = std::make_unique<CsvWriter>(
        csv_path, std::vector<std::string>{"machine", "nodes", "seconds"});
  }
  for (int nodes : {1, 2, 4, 8, 12, 16, 24, 32, 48, 64, 96, 128, 160, 192}) {
    const auto a = apps::run_nemo(cte, nodes);
    const bool mn4_in_range = nodes <= 24;
    const auto b = mn4_in_range ? apps::run_nemo(mn4, nodes)
                                : apps::NemoResult{};
    table.row({std::to_string(nodes),
               a.fits_memory ? report::fixed(a.total_time, 1) : "NP",
               mn4_in_range ? report::fixed(b.total_time, 1) : "-"});
    if (a.fits_memory) {
      cx.push_back(nodes);
      cy.push_back(a.total_time);
      if (csv) {
        csv->row(std::vector<std::string>{"cte", std::to_string(nodes),
                                          report::fixed(a.total_time, 3)});
      }
    }
    if (mn4_in_range) {
      mx.push_back(nodes);
      my.push_back(b.total_time);
      if (csv) {
        csv->row(std::vector<std::string>{"mn4", std::to_string(nodes),
                                          report::fixed(b.total_time, 3)});
      }
    }
  }
  table.print(std::cout);

  report::LineChart chart("NEMO execution time", 72, 18);
  chart.set_log_x(true);
  chart.set_log_y(true);
  chart.set_axis_labels("nodes", "seconds");
  chart.series("CTE-Arm", cx, cy);
  chart.series("MareNostrum 4", mx, my);
  std::printf("\n");
  chart.print(std::cout);

  const double r8 = apps::run_nemo(cte, 8).total_time /
                    apps::run_nemo(mn4, 8).total_time;
  const double r24 = apps::run_nemo(cte, 24).total_time /
                     apps::run_nemo(mn4, 24).total_time;
  std::printf(
      "\nheadline: MN4 is %.2fx (8 nodes) .. %.2fx (24 nodes) faster "
      "(paper: 1.70-1.79x); 48 CTE nodes = %.1f s vs 27 MN4 nodes = %.1f s "
      "(paper: equal); CTE scaling flattens near 128 nodes\n",
      r8, r24, apps::run_nemo(cte, 48).total_time,
      apps::run_nemo(mn4, 27).total_time);

  if (!trace_path.empty()) {
    // A dedicated traced run at NEMO's memory minimum: the many small halo
    // exchanges per step (the strong-scaling limiter) dominate the lanes.
    trace::Recorder recorder;
    apps::NemoConfig traced;
    traced.recorder = &recorder;
    apps::run_nemo(cte, 8, traced);
    trace::write_chrome_trace(recorder, trace_path);
    std::printf(
        "\ntrace: 8-node CTE-Arm run, %zu spans -> %s (open in "
        "chrome://tracing or https://ui.perfetto.dev)\n",
        recorder.spans().size(), trace_path.c_str());
  }

  // Native anchor: the ocean-dynamics pattern (conservative stencil sweep)
  // conserves the field integral in the kernel library.
  kernels::Grid3D grid(16, 16, 8, 1.0);
  grid.at(8, 8, 4) = 100.0;
  const double before = grid.sum();
  kernels::diffuse(grid, 50, 0.1);
  const double drift = std::fabs(grid.sum() - before) / before;
  std::printf("native stencil anchor: field conservation drift %.2e\n",
              drift);
  return drift < 1e-9 ? 0 : 1;
}
