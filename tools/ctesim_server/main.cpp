// ctesim_server: run the capacity-planning service as a standalone daemon.
//
//   ctesim_server --port 0 --port-file /tmp/port --workers 4 &
//   ctesim_client --port $(cat /tmp/port) --machine cte-arm --jobs 500
//
// --port 0 binds an ephemeral port; --port-file publishes the bound port so
// scripts (and the CI smoke job) can find it. SIGINT/SIGTERM shut the
// server down cleanly: in-flight simulations finish, queued requests get a
// "shutting_down" reply, and with --trace a merged Chrome trace is written.
#include <sys/select.h>

#include <csignal>
#include <cstdio>
#include <fstream>

#include "server/service.h"
#include "server/tcp.h"
#include "util/cli.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void on_signal(int) { g_stop = 1; }

}  // namespace

int main(int argc, char** argv) {
  std::int64_t port = 0;
  std::string port_file;
  std::int64_t workers = 4;
  std::int64_t queue_capacity = 32;
  std::int64_t cache = 256;
  std::string policy = "easy";
  std::string trace_path;

  ctesim::Cli cli("ctesim_server",
                  "Serve what-if capacity-planning requests over TCP "
                  "(line-delimited JSON, see docs/SERVER.md).");
  cli.option("port", &port, "TCP port to listen on (0 = ephemeral)")
      .option("port-file", &port_file,
              "write the bound port number to this file")
      .option("workers", &workers, "simulation worker threads")
      .option("queue-capacity", &queue_capacity,
              "max queued requests before shedding with 'overloaded'")
      .option("cache", &cache, "result-cache capacity in replies (0 = off)")
      .option("policy", &policy, "admission queue policy: easy | fcfs")
      .option("trace", &trace_path,
              "write a merged Chrome trace here on shutdown");
  if (!cli.parse(argc, argv)) return 1;

  if (workers < 1 || workers > 256) {
    std::fprintf(stderr, "ctesim_server: --workers must be in [1,256]\n");
    return 1;
  }
  if (queue_capacity < 0 || port < 0 || port > 65535 || cache < 0) {
    std::fprintf(stderr, "ctesim_server: bad --queue-capacity/--port/--cache\n");
    return 1;
  }
  ctesim::server::ServiceConfig config;
  config.workers = static_cast<int>(workers);
  config.queue_capacity = static_cast<int>(queue_capacity);
  config.cache_capacity = static_cast<std::size_t>(cache);
  config.tracing = !trace_path.empty();
  if (policy == "easy") {
    config.admission_policy = ctesim::batch::QueuePolicy::kEasyBackfill;
  } else if (policy == "fcfs") {
    config.admission_policy = ctesim::batch::QueuePolicy::kFcfs;
  } else {
    std::fprintf(stderr, "ctesim_server: --policy must be easy or fcfs\n");
    return 1;
  }

  ctesim::server::Service service(config);
  ctesim::server::TcpOptions tcp_options;
  tcp_options.port = static_cast<int>(port);
  tcp_options.max_line_bytes = config.max_request_bytes;
  ctesim::server::TcpServer tcp(service, tcp_options);

  if (!port_file.empty()) {
    std::ofstream out(port_file);
    if (!out) {
      std::fprintf(stderr, "ctesim_server: cannot write %s\n",
                   port_file.c_str());
      return 1;
    }
    out << tcp.port() << "\n";
  }
  std::fprintf(stderr, "ctesim_server: listening on %s:%d (%lld workers)\n",
               tcp_options.bind_address.c_str(), tcp.port(),
               static_cast<long long>(workers));

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  tcp.start();
  while (!g_stop) {
    // Idle heartbeat; all work happens on the TCP/worker threads.
    sigset_t empty;
    sigemptyset(&empty);
    timespec tick{0, 200'000'000};
    ::pselect(0, nullptr, nullptr, nullptr, &tick, &empty);
  }

  std::fprintf(stderr, "ctesim_server: shutting down\n");
  tcp.stop();
  service.shutdown();
  if (!trace_path.empty()) {
    service.export_trace(trace_path);
    std::fprintf(stderr, "ctesim_server: trace written to %s\n",
                 trace_path.c_str());
  }
  return 0;
}
