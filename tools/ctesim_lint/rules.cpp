#include "rules.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <utility>

namespace ctesim::lint {

namespace {

bool is_ident(const Token& t, const char* text) {
  return t.kind == Tok::kIdentifier && t.text == text;
}
bool is_punct(const Token& t, const char* text) {
  return t.kind == Tok::kPunct && t.text == text;
}
bool has_suffix(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::string stem_of(const std::string& path) {
  const std::size_t dot = path.rfind('.');
  const std::size_t slash = path.rfind('/');
  if (dot == std::string::npos ||
      (slash != std::string::npos && dot < slash)) {
    return path;
  }
  return path.substr(0, dot);
}

/// tokens[i] must be "<". Returns the index just past the matching ">",
/// counting ">>" as two closers (nested template args).
std::size_t skip_template_args(const std::vector<Token>& toks,
                               std::size_t i) {
  int depth = 0;
  while (i < toks.size()) {
    const Token& t = toks[i];
    if (is_punct(t, "<")) {
      ++depth;
    } else if (is_punct(t, "<<")) {
      depth += 2;
    } else if (is_punct(t, ">")) {
      --depth;
    } else if (is_punct(t, ">>")) {
      depth -= 2;
    } else if (is_punct(t, ";")) {
      break;  // not template args after all; bail out
    }
    ++i;
    if (depth <= 0) break;
  }
  return i;
}

bool is_unordered_container(const Token& t) {
  return t.kind == Tok::kIdentifier &&
         (t.text == "unordered_map" || t.text == "unordered_set" ||
          t.text == "unordered_multimap" || t.text == "unordered_multiset");
}

/// Names of variables declared with an unordered container type anywhere in
/// the corpus. A spurious name only matters if something iterates it, which
/// is exactly the hazard we want flagged.
void collect_unordered_names(const std::vector<Token>& toks,
                             std::set<std::string>* names) {
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (!is_unordered_container(toks[i]) || !is_punct(toks[i + 1], "<")) {
      continue;
    }
    const std::size_t past = skip_template_args(toks, i + 1);
    if (past < toks.size() && toks[past].kind == Tok::kIdentifier) {
      names->insert(toks[past].text);
    }
  }
}

bool is_guard_type(const Token& t) {
  return t.kind == Tok::kIdentifier &&
         (t.text == "lock_guard" || t.text == "unique_lock" ||
          t.text == "scoped_lock" || t.text == "shared_lock" ||
          t.text == "MutexLock");
}

bool is_lock_tag(const std::string& name) {
  return name == "defer_lock" || name == "adopt_lock" ||
         name == "try_to_lock";
}

/// An acquisition site: guard at `line` of `file` takes `first` while
/// `second` (a lexically enclosing guard's mutex) is already held.
struct LockPairSite {
  std::string file;
  int line = 0;
};

struct CorpusState {
  std::set<std::string> unordered_names;
  /// path-without-extension -> any token "join" in that file; a .h and its
  /// .cpp share a stem, so a header declaring std::thread members is
  /// cleared by the join() in its implementation file.
  std::map<std::string, bool> stem_has_join;
  /// (outer mutex, inner mutex) -> sites acquiring in that order
  std::map<std::pair<std::string, std::string>, std::vector<LockPairSite>>
      lock_pairs;
};

/// Walk guard declarations with a brace-depth stack and record every
/// (held, acquired) mutex-name pair for the corpus-wide inversion check.
void collect_lock_pairs(const SourceFile& file, CorpusState* state) {
  const auto& toks = file.tokens;
  struct Held {
    int depth;
    std::string name;
  };
  std::vector<Held> held;
  int depth = 0;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (is_punct(toks[i], "{")) {
      ++depth;
      continue;
    }
    if (is_punct(toks[i], "}")) {
      --depth;
      while (!held.empty() && held.back().depth > depth) held.pop_back();
      continue;
    }
    if (!is_guard_type(toks[i])) continue;
    std::size_t j = i + 1;
    if (j < toks.size() && is_punct(toks[j], "<")) {
      j = skip_template_args(toks, j);
    }
    // Declaration shape: <guard-type> [<...>] <var> ( args ) — anything
    // else (a parameter, a using-alias) has no '(' after the variable.
    if (j + 1 >= toks.size() || toks[j].kind != Tok::kIdentifier ||
        !is_punct(toks[j + 1], "(")) {
      continue;
    }
    // Split args at top-level ','; the mutex name is each arg's last
    // identifier (`this->mu_`, `obj.m` -> "mu_", "m").
    std::vector<std::string> args;
    std::string last_ident;
    int paren = 1;
    std::size_t k = j + 2;
    for (; k < toks.size() && paren > 0; ++k) {
      const Token& t = toks[k];
      if (is_punct(t, "(")) ++paren;
      if (is_punct(t, ")")) {
        --paren;
        if (paren == 0) break;
      }
      if (is_punct(t, ",") && paren == 1) {
        args.push_back(last_ident);
        last_ident.clear();
        continue;
      }
      if (t.kind == Tok::kIdentifier) last_ident = t.text;
    }
    args.push_back(last_ident);
    for (const std::string& mutex_name : args) {
      if (mutex_name.empty() || is_lock_tag(mutex_name)) continue;
      for (const Held& h : held) {
        if (h.name == mutex_name) continue;
        state->lock_pairs[{h.name, mutex_name}].push_back(
            {file.path, toks[i].line});
      }
    }
    for (const std::string& mutex_name : args) {
      if (mutex_name.empty() || is_lock_tag(mutex_name)) continue;
      held.push_back({depth, mutex_name});
    }
    i = k;
  }
}

void scan_file(const SourceFile& file, const CorpusState& corpus,
               std::vector<Finding>* findings) {
  const auto& toks = file.tokens;
  const std::size_t n = toks.size();
  auto at = [&](std::size_t i) -> const Token& {
    static const Token kNull;
    return i < n ? toks[i] : kNull;
  };

  const bool impl_file =
      has_suffix(file.path, ".cpp") || has_suffix(file.path, ".cc");
  bool mentions_validate = false;
  bool defines_capability = false;
  bool has_join = false;
  for (const Token& t : toks) {
    if (t.kind != Tok::kIdentifier) continue;
    if (t.text.find("validate") != std::string::npos) {
      mentions_validate = true;
    }
    if (t.text == "CTESIM_CAPABILITY") defines_capability = true;
    if (t.text == "join") has_join = true;
  }
  if (!has_join) {
    const auto it = corpus.stem_has_join.find(stem_of(file.path));
    has_join = it != corpus.stem_has_join.end() && it->second;
  }

  for (std::size_t i = 0; i < n; ++i) {
    const Token& t = toks[i];

    // unordered-iteration: range-for over a known unordered name.
    if (is_ident(t, "for") && is_punct(at(i + 1), "(")) {
      int paren = 1;
      std::size_t j = i + 2;
      std::size_t colon = 0;
      bool classic = false;
      for (; j < n && paren > 0; ++j) {
        if (is_punct(toks[j], "(")) ++paren;
        if (is_punct(toks[j], ")")) --paren;
        if (paren == 1 && is_punct(toks[j], ";")) classic = true;
        if (paren == 1 && colon == 0 && is_punct(toks[j], ":")) colon = j;
      }
      if (!classic && colon != 0 && j > 0) {
        const Token& last = toks[j - 2 < colon ? colon : j - 2];
        if (last.kind == Tok::kIdentifier &&
            corpus.unordered_names.count(last.text) > 0) {
          findings->push_back(
              {file.path, t.line, "unordered-iteration",
               "range-for over unordered container '" + last.text +
                   "' — hash order is not deterministic"});
        }
      }
    }

    // unordered-iteration: <name>.begin() / <name>.cbegin().
    if (t.kind == Tok::kIdentifier &&
        corpus.unordered_names.count(t.text) > 0 &&
        is_punct(at(i + 1), ".") &&
        (is_ident(at(i + 2), "begin") || is_ident(at(i + 2), "cbegin")) &&
        is_punct(at(i + 3), "(")) {
      findings->push_back({file.path, t.line, "unordered-iteration",
                           "iterator over unordered container '" + t.text +
                               "' — hash order is not deterministic"});
    }

    if (file.in_src && t.kind == Tok::kIdentifier) {
      // wall-clock.
      const bool clock_type = t.text == "steady_clock" ||
                              t.text == "system_clock" ||
                              t.text == "high_resolution_clock" ||
                              t.text == "gettimeofday";
      const bool time_null =
          t.text == "time" && is_punct(at(i + 1), "(") &&
          (is_ident(at(i + 2), "nullptr") || is_ident(at(i + 2), "NULL") ||
           (at(i + 2).kind == Tok::kNumber && at(i + 2).text == "0")) &&
          is_punct(at(i + 3), ")");
      const bool rand_call =
          (t.text == "rand" || t.text == "clock") &&
          is_punct(at(i + 1), "(") && is_punct(at(i + 2), ")");
      const bool srand_call = t.text == "srand" && is_punct(at(i + 1), "(");
      if (clock_type || time_null || rand_call || srand_call) {
        findings->push_back(
            {file.path, t.line, "wall-clock",
             "wall-clock/libc randomness in simulation code ('" + t.text +
                 "') — use sim::Engine time / util/rng.h"});
      }

      // raw-power-unit.
      if (t.text == "double" && at(i + 1).kind == Tok::kIdentifier &&
          (has_suffix(at(i + 1).text, "_watts") ||
           has_suffix(at(i + 1).text, "_joules"))) {
        findings->push_back({file.path, t.line, "raw-power-unit",
                             "raw double '" + at(i + 1).text +
                                 "' — use units::Watts / units::Joules "
                                 "(src/util/units.h) for power/energy "
                                 "quantities"});
      }

      // raw-sim-steps: the exact-window extrapolation lives in exactly one
      // place (sampling::run_plan). App-proxy code multiplying or dividing
      // by the sim_steps / sim_solver_iters knobs is re-growing the ad-hoc
      // scaling the executor replaced — declare the window in a
      // StepProfile (or a channel scale) instead.
      if (file.path.find("/apps/") != std::string::npos &&
          (t.text == "sim_steps" || t.text == "sim_solver_iters")) {
        // Walk back over the member-access chain ("config.sim_steps",
        // "cfg->sim_steps") to the token preceding the whole operand.
        std::size_t p = i;
        while (p >= 2 &&
               (is_punct(toks[p - 1], ".") || is_punct(toks[p - 1], "->")) &&
               toks[p - 2].kind == Tok::kIdentifier) {
          p -= 2;
        }
        const bool scaled_before =
            p > 0 &&
            (is_punct(toks[p - 1], "*") || is_punct(toks[p - 1], "/"));
        const bool scaled_after =
            is_punct(at(i + 1), "*") || is_punct(at(i + 1), "/");
        if (scaled_before || scaled_after) {
          findings->push_back(
              {file.path, t.line, "raw-sim-steps",
               "scaling arithmetic on '" + t.text +
                   "' in app code — extrapolation belongs to the sampling "
                   "executor (sampling::run_plan); declare the window via "
                   "StepProfile::exact_window or a channel scale"});
        }
      }

      // raw-mutex: a std::mutex that clang's -Wthread-safety cannot see.
      if (!defines_capability && t.text == "std" &&
          is_punct(at(i + 1), "::") && at(i + 2).kind == Tok::kIdentifier &&
          (at(i + 2).text == "mutex" || at(i + 2).text == "shared_mutex" ||
           at(i + 2).text == "recursive_mutex" ||
           at(i + 2).text == "timed_mutex")) {
        findings->push_back(
            {file.path, t.line, "raw-mutex",
             "raw std::" + at(i + 2).text +
                 " — use util::Mutex (a CTESIM_CAPABILITY wrapper) and mark "
                 "the data it protects CTESIM_GUARDED_BY so clang "
                 "-Wthread-safety can verify the lock discipline"});
      }

      // core-std-function: the engine hot path must use the move-only
      // inline-storage callback type, never std::function (copyable, 16-byte
      // implementation-defined SBO, heap allocation per spilled closure).
      if (file.path.find("/core/") != std::string::npos && t.text == "std" &&
          is_punct(at(i + 1), "::") && is_ident(at(i + 2), "function")) {
        findings->push_back(
            {file.path, t.line, "core-std-function",
             "std::function in src/core — use util::InlineFunction (48-byte "
             "SBO, move-only) so hot-path callbacks stay allocation-free; "
             "see src/util/inline_function.h and docs/ENGINE.md"});
      }

      // detached-thread: std::thread in a file pair that never joins.
      if (!has_join && t.text == "std" && is_punct(at(i + 1), "::") &&
          is_ident(at(i + 2), "thread")) {
        findings->push_back(
            {file.path, t.line, "detached-thread",
             "std::thread without a join() in this file or its .h/.cpp "
             "sibling — threads must be joined before teardown (or use the "
             "tracked conn_threads_ pattern from server/tcp.cpp)"});
      }
    }

    // detached-thread: explicit .detach() anywhere in src/.
    if (file.in_src &&
        (is_punct(t, ".") || is_punct(t, "->")) &&
        is_ident(at(i + 1), "detach") && is_punct(at(i + 2), "(")) {
      findings->push_back(
          {file.path, at(i + 1).line, "detached-thread",
           "thread .detach() — detached threads outlive shutdown "
           "nondeterministically; keep the handle and join it"});
    }

    // float-equality: ==/!= against a non-zero floating literal. Exact
    // comparison against 0.0 is a well-defined guard (zero is exactly
    // representable), so it is exempt.
    if ((is_punct(t, "==") || is_punct(t, "!="))) {
      const Token& lhs = at(i == 0 ? n : i - 1);
      std::size_t r = i + 1;
      if (is_punct(at(r), "+") || is_punct(at(r), "-")) ++r;
      const Token& rhs = at(r);
      const bool lhs_bad = lhs.kind == Tok::kNumber &&
                           is_float_literal(lhs.text) &&
                           !is_zero_literal(lhs.text);
      const bool rhs_bad = rhs.kind == Tok::kNumber &&
                           is_float_literal(rhs.text) &&
                           !is_zero_literal(rhs.text);
      if (lhs_bad || rhs_bad) {
        findings->push_back(
            {file.path, t.line, "float-equality",
             "exact floating-point comparison ('" + t.text + " " +
                 (rhs_bad ? rhs.text : lhs.text) +
                 "') — compare with a tolerance"});
      }
    }

    // unvalidated-machine. Headers only *declare* MachineModel members
    // (owners validate on the way in); construction without validation
    // happens in function bodies, so the rule is scoped to impl files.
    if (impl_file && !mentions_validate && is_ident(t, "MachineModel") &&
        at(i + 1).kind == Tok::kIdentifier && is_punct(at(i + 2), ";")) {
      findings->push_back(
          {file.path, t.line, "unvalidated-machine",
           "MachineModel built without any validate call in this file — "
           "run arch::validate_or_throw before using the model"});
    }
  }
}

void report_lock_inversions(const CorpusState& corpus,
                            std::vector<Finding>* findings) {
  for (const auto& [pair, sites] : corpus.lock_pairs) {
    const auto& [outer, inner] = pair;
    if (outer >= inner) continue;  // handle each unordered pair once
    const auto reverse = corpus.lock_pairs.find({inner, outer});
    if (reverse == corpus.lock_pairs.end()) continue;
    auto emit = [&](const std::vector<LockPairSite>& list,
                    const std::string& a, const std::string& b,
                    const LockPairSite& other) {
      for (const LockPairSite& site : list) {
        findings->push_back(
            {site.file, site.line, "lock-order",
             "acquires '" + b + "' while holding '" + a +
                 "', but the opposite order appears at " + other.file + ":" +
                 std::to_string(other.line) +
                 " — lock-order inversion (potential deadlock)"});
      }
    };
    emit(sites, outer, inner, reverse->second.front());
    emit(reverse->second, inner, outer, sites.front());
  }
}

}  // namespace

std::vector<Finding> run_rules(const std::vector<SourceFile>& files) {
  CorpusState corpus;
  for (const SourceFile& file : files) {
    collect_unordered_names(file.tokens, &corpus.unordered_names);
    bool& join = corpus.stem_has_join[stem_of(file.path)];
    for (const Token& t : file.tokens) {
      if (is_ident(t, "join")) {
        join = true;
        break;
      }
    }
    if (file.in_src) collect_lock_pairs(file, &corpus);
  }

  std::vector<Finding> findings;
  for (const SourceFile& file : files) scan_file(file, corpus, &findings);
  report_lock_inversions(corpus, &findings);

  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule, a.detail) <
                     std::tie(b.file, b.line, b.rule, b.detail);
            });
  findings.erase(std::unique(findings.begin(), findings.end(),
                             [](const Finding& a, const Finding& b) {
                               return a.file == b.file && a.line == b.line &&
                                      a.rule == b.rule;
                             }),
                 findings.end());
  return findings;
}

bool load_layers(const std::string& path, LayerGraph* graph,
                 std::string* error) {
  std::ifstream in(path);
  if (!in) {
    *error = "cannot open " + path;
    return false;
  }
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::size_t start = 0;
    while (start < line.size() &&
           std::isspace(static_cast<unsigned char>(line[start]))) {
      ++start;
    }
    std::size_t end = line.size();
    while (end > start &&
           std::isspace(static_cast<unsigned char>(line[end - 1]))) {
      --end;
    }
    line = line.substr(start, end - start);
    if (line.empty()) continue;
    const std::size_t colon = line.find(':');
    if (colon == std::string::npos) {
      *error = path + ":" + std::to_string(lineno) +
               ": expected 'name: dep1 dep2 ...'";
      return false;
    }
    std::string name = line.substr(0, colon);
    while (!name.empty() && std::isspace(static_cast<unsigned char>(
                                name.back()))) {
      name.pop_back();
    }
    if (name.empty() || graph->deps.count(name) > 0) {
      *error = path + ":" + std::to_string(lineno) +
               ": empty or duplicate subsystem '" + name + "'";
      return false;
    }
    std::set<std::string> deps;
    std::string word;
    for (std::size_t i = colon + 1; i <= line.size(); ++i) {
      const char c = i < line.size() ? line[i] : ' ';
      if (std::isspace(static_cast<unsigned char>(c))) {
        if (!word.empty()) deps.insert(word);
        word.clear();
      } else {
        word += c;
      }
    }
    graph->deps[name] = std::move(deps);
    graph->order.push_back(name);
    graph->line[name] = lineno;
  }
  return true;
}

namespace {

/// Subsystem of a path: the component after the last "/src/"; empty when
/// the file is not under a src/ tree or sits directly in src/.
std::string subsystem_of(const std::string& path) {
  const std::size_t src = path.rfind("/src/");
  if (src == std::string::npos) return {};
  const std::size_t begin = src + 5;
  const std::size_t slash = path.find('/', begin);
  if (slash == std::string::npos) return {};
  return path.substr(begin, slash - begin);
}

/// DFS cycle detection on the declared graph. Returns the cycle as
/// "a -> b -> ... -> a", or empty when the graph is a DAG.
std::string find_cycle(const LayerGraph& graph) {
  std::map<std::string, int> color;  // 0 white, 1 grey, 2 black
  std::vector<std::string> path;
  std::string cycle;
  // Iterative DFS with an explicit stack of (node, next-dep iterator).
  for (const std::string& root : graph.order) {
    if (color[root] != 0) continue;
    struct Frame {
      std::string node;
      std::set<std::string>::const_iterator it;
    };
    std::vector<Frame> stack;
    color[root] = 1;
    path.push_back(root);
    stack.push_back({root, graph.deps.at(root).begin()});
    while (!stack.empty()) {
      Frame& top = stack.back();
      const auto& deps = graph.deps.at(top.node);
      if (top.it == deps.end()) {
        color[top.node] = 2;
        path.pop_back();
        stack.pop_back();
        continue;
      }
      const std::string next = *top.it++;
      if (!graph.known(next)) continue;  // reported separately
      if (color[next] == 1) {
        // Found a back edge: slice the grey path from `next` onward.
        std::size_t at = 0;
        while (at < path.size() && path[at] != next) ++at;
        for (std::size_t i = at; i < path.size(); ++i) {
          cycle += path[i] + " -> ";
        }
        cycle += next;
        return cycle;
      }
      if (color[next] == 0) {
        color[next] = 1;
        path.push_back(next);
        stack.push_back({next, graph.deps.at(next).begin()});
      }
    }
  }
  return {};
}

}  // namespace

std::vector<Finding> check_layering(const std::vector<SourceFile>& files,
                                    const LayerGraph& graph,
                                    const std::string& layers_path) {
  std::vector<Finding> findings;

  // The declared graph must itself be sane before it can constrain code.
  for (const std::string& name : graph.order) {
    for (const std::string& dep : graph.deps.at(name)) {
      if (!graph.known(dep)) {
        findings.push_back(
            {layers_path, graph.line.at(name), "layering",
             "layer '" + name + "' depends on undeclared subsystem '" + dep +
                 "'"});
      }
    }
  }
  const std::string cycle = find_cycle(graph);
  if (!cycle.empty()) {
    findings.push_back({layers_path, 1, "layering",
                        "declared layer graph has a cycle: " + cycle +
                            " — the layering must be a DAG"});
  }

  for (const SourceFile& file : files) {
    const std::string sub = subsystem_of(file.path);
    if (sub.empty()) continue;  // not a subsystem file
    if (!graph.known(sub)) {
      findings.push_back({file.path, 1, "layering",
                          "subsystem '" + sub +
                              "' is not declared in layers.txt — add it "
                              "with its allowed dependencies"});
      continue;
    }
    const auto& allowed = graph.deps.at(sub);
    const auto& toks = file.tokens;
    for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
      if (!is_punct(toks[i], "#") || !is_ident(toks[i + 1], "include")) {
        continue;
      }
      const Token& target = toks[i + 2];
      if (target.kind != Tok::kString && target.kind != Tok::kHeaderName) {
        continue;
      }
      const std::size_t slash = target.text.find('/');
      if (slash == std::string::npos) continue;
      const std::string dst = target.text.substr(0, slash);
      if (!graph.known(dst)) continue;  // not a subsystem include
      if (dst == sub || allowed.count(dst) > 0) continue;
      findings.push_back(
          {file.path, target.line, "layering",
           "#include \"" + target.text + "\": subsystem '" + sub +
               "' may not depend on '" + dst +
               "' (include chain " + sub + " -> " + dst +
               " is not in layers.txt) — either the include points the "
               "wrong way or the layering declaration needs a deliberate "
               "update"});
    }
  }

  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule, a.detail) <
                     std::tie(b.file, b.line, b.rule, b.detail);
            });
  return findings;
}

}  // namespace ctesim::lint
