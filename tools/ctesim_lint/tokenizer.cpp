#include "tokenizer.h"

#include <cctype>
#include <cstdlib>

namespace ctesim::lint {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Character cursor that transparently removes backslash-newline splices
/// (translation phase 2) while tracking physical line numbers. Raw-string
/// scanning bypasses it and reads the original bytes.
class Cursor {
 public:
  explicit Cursor(const std::string& s) : s_(s) {}

  bool eof() {
    skip_splices();
    return i_ >= s_.size();
  }
  char peek() {
    skip_splices();
    return i_ < s_.size() ? s_[i_] : '\0';
  }
  /// Lookahead k logical characters past the current one (k=1 is "next").
  char peek_ahead(std::size_t k) {
    std::size_t save_i = i_;
    int save_line = line_;
    char c = '\0';
    for (std::size_t n = 0; n <= k; ++n) {
      skip_splices();
      if (i_ >= s_.size()) {
        c = '\0';
        break;
      }
      c = s_[i_];
      if (n < k) advance_raw();
    }
    i_ = save_i;
    line_ = save_line;
    return c;
  }
  char get() {
    skip_splices();
    if (i_ >= s_.size()) return '\0';
    const char c = s_[i_];
    advance_raw();
    return c;
  }
  int line() const { return line_; }

  // Raw access for raw-string bodies (no splice processing).
  std::size_t raw_pos() const { return i_; }
  char raw_at(std::size_t pos) const {
    return pos < s_.size() ? s_[pos] : '\0';
  }
  std::size_t raw_size() const { return s_.size(); }
  void raw_seek(std::size_t pos, int lines_crossed) {
    i_ = pos;
    line_ += lines_crossed;
  }

 private:
  void advance_raw() {
    if (s_[i_] == '\n') ++line_;
    ++i_;
  }
  void skip_splices() {
    while (i_ + 1 < s_.size() && s_[i_] == '\\') {
      if (s_[i_ + 1] == '\n') {
        i_ += 2;
        ++line_;
      } else if (s_[i_ + 1] == '\r' && i_ + 2 < s_.size() &&
                 s_[i_ + 2] == '\n') {
        i_ += 3;
        ++line_;
      } else {
        break;
      }
    }
  }

  const std::string& s_;
  std::size_t i_ = 0;
  int line_ = 1;
};

bool is_string_prefix(const std::string& id) {
  return id == "R" || id == "u8" || id == "u" || id == "U" || id == "L" ||
         id == "u8R" || id == "uR" || id == "UR" || id == "LR";
}

/// Longest-match punctuator table (only lengths 3, 2, 1 matter to us; the
/// rules care that "==", "::", "->" and ">>" lex as units).
const char* const kPunct3[] = {"<<=", ">>=", "...", "->*", "<=>"};
const char* const kPunct2[] = {"==", "!=", "<=", ">=", "->", "::", "<<",
                               ">>", "&&", "||", "+=", "-=", "*=", "/=",
                               "%=", "^=", "&=", "|=", "++", "--", "##",
                               ".*"};

}  // namespace

std::vector<Token> tokenize(const std::string& text) {
  std::vector<Token> out;
  Cursor cur(text);
  bool at_line_start = true;  // only whitespace seen on this logical line
  bool in_pp = false;

  auto emit = [&](Tok kind, std::string tok_text, int line) {
    out.push_back(Token{kind, std::move(tok_text), line, in_pp});
  };

  while (!cur.eof()) {
    const char c = cur.peek();

    if (c == '\n') {
      cur.get();
      at_line_start = true;
      in_pp = false;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      cur.get();
      continue;
    }

    // Comments.
    if (c == '/' && cur.peek_ahead(1) == '/') {
      cur.get();
      cur.get();
      // A splice continues the comment onto the next physical line; the
      // cursor removes splices, so the loop naturally keeps consuming.
      while (!cur.eof() && cur.peek() != '\n') cur.get();
      continue;
    }
    if (c == '/' && cur.peek_ahead(1) == '*') {
      cur.get();
      cur.get();
      while (!cur.eof()) {
        if (cur.peek() == '*' && cur.peek_ahead(1) == '/') {
          cur.get();
          cur.get();
          break;
        }
        cur.get();
      }
      continue;
    }

    const int line = cur.line();

    // Preprocessor directive start.
    if (c == '#' && at_line_start) {
      in_pp = true;
      cur.get();
      emit(Tok::kPunct, "#", line);
      at_line_start = false;
      continue;
    }
    at_line_start = false;

    // #include <...> header name.
    if (in_pp && c == '<' && out.size() >= 2 &&
        out.back().kind == Tok::kIdentifier &&
        (out.back().text == "include" || out.back().text == "include_next") &&
        out[out.size() - 2].text == "#") {
      cur.get();
      std::string path;
      while (!cur.eof() && cur.peek() != '>' && cur.peek() != '\n') {
        path += cur.get();
      }
      if (cur.peek() == '>') cur.get();
      emit(Tok::kHeaderName, std::move(path), line);
      continue;
    }

    // Identifier (or string-literal encoding prefix).
    if (ident_start(c)) {
      std::string id;
      while (!cur.eof() && ident_char(cur.peek())) id += cur.get();
      if (cur.peek() == '"' && is_string_prefix(id)) {
        const bool raw = id.find('R') != std::string::npos;
        cur.get();  // opening quote
        if (raw) {
          // R"delim( ... )delim" — verbatim bytes, no splices/escapes.
          std::string delim;
          while (!cur.eof() && cur.peek() != '(' && cur.peek() != '\n' &&
                 delim.size() < 16) {
            delim += cur.get();
          }
          if (cur.peek() == '(') cur.get();
          const std::string closer = ")" + delim + "\"";
          std::size_t pos = cur.raw_pos();
          int newlines = 0;
          std::string body;
          while (pos < cur.raw_size()) {
            if (cur.raw_at(pos) == closer[0] &&
                text.compare(pos, closer.size(), closer) == 0) {
              pos += closer.size();
              break;
            }
            if (cur.raw_at(pos) == '\n') ++newlines;
            body += cur.raw_at(pos);
            ++pos;
          }
          cur.raw_seek(pos, newlines);
          emit(Tok::kString, std::move(body), line);
        } else {
          std::string body;
          while (!cur.eof() && cur.peek() != '"' && cur.peek() != '\n') {
            if (cur.peek() == '\\') {
              body += cur.get();
              if (!cur.eof()) body += cur.get();
            } else {
              body += cur.get();
            }
          }
          if (cur.peek() == '"') cur.get();
          emit(Tok::kString, std::move(body), line);
        }
      } else {
        emit(Tok::kIdentifier, std::move(id), line);
      }
      continue;
    }

    // Number (pp-number): digit, or '.' followed by a digit.
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && std::isdigit(static_cast<unsigned char>(
                         cur.peek_ahead(1))))) {
      std::string num;
      num += cur.get();
      while (!cur.eof()) {
        const char n = cur.peek();
        if (ident_char(n) || n == '.') {
          num += cur.get();
          // Exponent sign belongs to the number: 1e-3, 0x1p+2.
          if ((n == 'e' || n == 'E' || n == 'p' || n == 'P') &&
              (cur.peek() == '+' || cur.peek() == '-') &&
              !(num.size() >= 2 && num[1] == 'x' && (n == 'e' || n == 'E'))) {
            num += cur.get();
          }
        } else if (n == '\'' && ident_char(cur.peek_ahead(1))) {
          num += cur.get();  // digit separator, not a char literal
        } else {
          break;
        }
      }
      emit(Tok::kNumber, std::move(num), line);
      continue;
    }

    // String literal without prefix.
    if (c == '"') {
      cur.get();
      std::string body;
      while (!cur.eof() && cur.peek() != '"' && cur.peek() != '\n') {
        if (cur.peek() == '\\') {
          body += cur.get();
          if (!cur.eof()) body += cur.get();
        } else {
          body += cur.get();
        }
      }
      if (cur.peek() == '"') cur.get();
      emit(Tok::kString, std::move(body), line);
      continue;
    }

    // Character literal.
    if (c == '\'') {
      cur.get();
      std::string body;
      while (!cur.eof() && cur.peek() != '\'' && cur.peek() != '\n') {
        if (cur.peek() == '\\') {
          body += cur.get();
          if (!cur.eof()) body += cur.get();
        } else {
          body += cur.get();
        }
      }
      if (cur.peek() == '\'') cur.get();
      emit(Tok::kCharLit, std::move(body), line);
      continue;
    }

    // Punctuator, maximal munch.
    {
      char buf3[4] = {c, cur.peek_ahead(1), cur.peek_ahead(2), '\0'};
      std::string p;
      for (const char* q : kPunct3) {
        if (q[0] == buf3[0] && q[1] == buf3[1] && q[2] == buf3[2]) {
          p = q;
          break;
        }
      }
      if (p.empty()) {
        for (const char* q : kPunct2) {
          if (q[0] == buf3[0] && q[1] == buf3[1]) {
            p = q;
            break;
          }
        }
      }
      if (p.empty()) p = std::string(1, c);
      for (std::size_t n = 0; n < p.size(); ++n) cur.get();
      emit(Tok::kPunct, std::move(p), line);
    }
  }
  return out;
}

bool is_float_literal(const std::string& s) {
  if (s.empty()) return false;
  const bool hex =
      s.size() >= 2 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X');
  if (hex) {
    return s.find('p') != std::string::npos ||
           s.find('P') != std::string::npos;
  }
  if (s.find('.') != std::string::npos) return true;
  return s.find('e') != std::string::npos || s.find('E') != std::string::npos;
}

bool is_zero_literal(const std::string& s) {
  if (!is_float_literal(s)) return false;
  std::string cleaned;
  for (const char c : s) {
    if (c == '\'') continue;
    cleaned += c;
  }
  while (!cleaned.empty()) {
    const char back = cleaned.back();
    if (back == 'f' || back == 'F' || back == 'l' || back == 'L') {
      cleaned.pop_back();
    } else {
      break;
    }
  }
  return std::strtod(cleaned.c_str(), nullptr) == 0.0;
}

}  // namespace ctesim::lint
