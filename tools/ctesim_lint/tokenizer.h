// Single-pass C++ tokenizer for ctesim-lint. It replaces the old
// regex-over-masked-lines core: instead of blanking comments/strings with a
// line-oriented state machine (which mis-lexed raw strings, digit
// separators and line-spliced comments, and papered over the resulting
// false positives with allowlist entries), every rule now consumes a real
// token stream.
//
// Handled correctly, in one pass:
//   * // and /* */ comments (produce no tokens), including line comments
//     continued by a backslash-newline splice;
//   * string literals with encoding prefixes (u8"", L"", ...), escape
//     sequences, and raw strings R"delim(...)delim" whose contents are
//     taken verbatim (no splice or escape processing);
//   * character literals, including escapes ('\'', '\\');
//   * pp-numbers with digit separators (1'000'000), hex floats (0x1p3)
//     and exponent signs (1.5e-3) as single tokens, so a '\'' digit
//     separator never opens a phantom character literal;
//   * backslash-newline line splices anywhere (inside tokens, comments and
//     non-raw literals), with physical line numbers preserved;
//   * preprocessor logical lines: tokens carry an in_pp flag and
//     `#include <...>` yields a kHeaderName token.
//
// The tokenizer is error-tolerant (an unterminated literal or comment
// simply ends at end-of-file) and never throws.
#pragma once

#include <string>
#include <vector>

namespace ctesim::lint {

enum class Tok {
  kIdentifier,  ///< identifiers and keywords
  kNumber,      ///< pp-number (integer or floating, any base)
  kString,      ///< string literal; text = contents without quotes/prefix
  kCharLit,     ///< character literal; text = contents without quotes
  kPunct,       ///< operator/punctuator, maximal munch ("==", "::", ">>")
  kHeaderName,  ///< <...> after #include; text = path without angles
};

struct Token {
  Tok kind = Tok::kPunct;
  std::string text;
  int line = 0;       ///< 1-based physical line of the token's first char
  bool in_pp = false; ///< inside a preprocessor directive logical line
};

/// Tokenize a whole translation unit's text. Comments produce no tokens.
std::vector<Token> tokenize(const std::string& text);

/// True if a kNumber spelling is a floating-point literal: a '.' or a
/// decimal exponent in decimal literals, a p/P exponent in hex ones.
bool is_float_literal(const std::string& spelling);

/// True if a floating-point spelling has the exact value zero
/// ("0.0", ".0", "0.", "0e9", "0.00f"). Exact-zero comparisons are
/// well-defined guards, not tolerance bugs, so float-equality exempts them.
bool is_zero_literal(const std::string& spelling);

}  // namespace ctesim::lint
