// ctesim-lint: a purpose-built determinism / correctness checker for this
// repository. It is deliberately lexical (no AST): the rules target a small
// set of project-specific hazards that general tools miss, and a lexical
// scan keeps the tool dependency-free and fast enough to run as a test.
// Every rule consumes the single-pass token stream from tokenizer.h, so
// comments, string/char literals, raw strings, digit separators and line
// splices can never produce false positives.
//
// Rules (ids are what the allowlist references):
//   unordered-iteration  Iterating a std::unordered_map/unordered_set
//                        (range-for or .begin()/.cbegin()). Hash-order
//                        iteration feeding results/traces is the classic
//                        source of run-to-run nondeterminism in the
//                        simulator. Variable names are collected corpus-wide
//                        in a first pass, so iteration in one file of a
//                        member declared in another is still caught.
//   wall-clock           Wall-clock or libc randomness in src/ (std::chrono
//                        clocks, time(nullptr), rand(), gettimeofday).
//                        Simulated time must come from the DES engine and
//                        randomness from util/rng.h. bench/ and examples/
//                        are exempt: native measurement needs real clocks.
//   float-equality       ==/!= against a non-zero floating-point literal.
//                        Model math is all doubles; exact comparison is
//                        almost always a latent bug. Comparisons against an
//                        exact zero ("x == 0.0") are exempt: zero is
//                        exactly representable and such guards are
//                        well-defined, not tolerance bugs.
//   unvalidated-machine  A MachineModel constructed directly in a file that
//                        never mentions validate: models must go through
//                        arch::validate_or_throw before use.
//   raw-power-unit       A `double` variable spelled *_watts / *_joules in
//                        src/. Power and energy quantities crossing an API
//                        carry the units::Watts / units::Joules strong
//                        types (src/util/units.h); a raw double with a
//                        full unit word in its name is a quantity that
//                        escaped the dimension algebra.
//   raw-mutex            std::mutex (or shared/recursive/timed variants)
//                        spelled in src/. Raw standard mutexes carry no
//                        capability attribute, so clang -Wthread-safety
//                        cannot check them; shared state must use
//                        util::Mutex + CTESIM_GUARDED_BY (see
//                        src/util/thread_annotations.h). A file that
//                        defines its own CTESIM_CAPABILITY wrapper is
//                        exempt — the raw mutex inside a wrapper is the
//                        implementation.
//   core-std-function    std::function spelled in src/core. The engine hot
//                        path schedules every event's callback; std::function
//                        is copyable (so callbacks must be), its SBO is
//                        implementation-defined (libstdc++: 16 bytes) and a
//                        spill heap-allocates per event. Core code must use
//                        util::InlineFunction (48-byte SBO, move-only) —
//                        this rule plus the fits_inline static_asserts at
//                        the core call sites keep the hot path
//                        allocation-free.
//   raw-sim-steps        Scaling arithmetic (* or /) on the sim_steps /
//                        sim_solver_iters knobs in app-proxy code. The
//                        exact-window extrapolation lives in exactly one
//                        place — sampling::run_plan — so apps declare the
//                        window via StepProfile::exact_window (or a channel
//                        scale) instead of multiplying it out themselves.
//   detached-thread      std::thread in a src/ file whose .h/.cpp pair
//                        never calls join(), or an explicit .detach().
//                        Detached threads outlive shutdown
//                        nondeterministically.
//   lock-order           Lexically nested lock guards that acquire two
//                        named mutexes in opposite orders anywhere in the
//                        corpus — the classic AB/BA deadlock. Names are
//                        compared corpus-wide, so the two sites may live in
//                        different files.
//   layering             A #include edge between src/ subsystems that is
//                        not in the dependency DAG declared in
//                        tools/ctesim_lint/layers.txt (and sanity checks on
//                        the declaration itself: unknown deps, cycles,
//                        undeclared subsystems).
//
// Usage:
//   ctesim_lint --root <repo_root> [--allowlist <file>] [--layers <file>]
//   ctesim_lint --self-test <fixtures_dir>
//
// The allowlist holds lines of the form "path-suffix:rule" (comments with
// '#'). Every entry must carry a justification comment; unused entries are
// reported so the list cannot rot. Self-test mode checks that each
// "// LINT-EXPECT: <rule>" marker line in the fixtures produces exactly
// that finding, and that no unexpected findings appear; when the fixtures
// contain a layering/ mini-tree with its own layers.txt, the layering
// checker runs over it too.

#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "rules.h"
#include "tokenizer.h"

namespace fs = std::filesystem;

namespace {

using ctesim::lint::Finding;
using ctesim::lint::LayerGraph;
using ctesim::lint::SourceFile;

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::string line;
  std::istringstream in(text);
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

bool has_suffix(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::vector<SourceFile> load_tree(const std::vector<fs::path>& roots,
                                  bool treat_all_as_src) {
  std::vector<SourceFile> files;
  for (const auto& root : roots) {
    if (!fs::exists(root)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(root)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext != ".h" && ext != ".cpp" && ext != ".cc" && ext != ".hpp") {
        continue;
      }
      std::ifstream in(entry.path());
      std::ostringstream buffer;
      buffer << in.rdbuf();
      SourceFile file;
      file.path = entry.path().generic_string();
      file.in_src = treat_all_as_src ||
                    file.path.find("/src/") != std::string::npos;
      file.raw = split_lines(buffer.str());
      file.tokens = ctesim::lint::tokenize(buffer.str());
      files.push_back(std::move(file));
    }
  }
  std::sort(files.begin(), files.end(),
            [](const SourceFile& a, const SourceFile& b) {
              return a.path < b.path;
            });
  return files;
}

struct AllowEntry {
  std::string suffix;
  std::string rule;
  bool used = false;
};

std::vector<AllowEntry> load_allowlist(const std::string& path) {
  std::vector<AllowEntry> entries;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    // Trim.
    while (!line.empty() && std::isspace(static_cast<unsigned char>(
                                line.back()))) {
      line.pop_back();
    }
    std::size_t start = 0;
    while (start < line.size() &&
           std::isspace(static_cast<unsigned char>(line[start]))) {
      ++start;
    }
    line = line.substr(start);
    if (line.empty()) continue;
    const std::size_t colon = line.rfind(':');
    if (colon == std::string::npos) {
      std::fprintf(stderr, "ctesim-lint: bad allowlist entry '%s'\n",
                   line.c_str());
      continue;
    }
    entries.push_back({line.substr(0, colon), line.substr(colon + 1), false});
  }
  return entries;
}

int run_repo(const fs::path& root, const std::string& allowlist_path,
             const std::string& layers_path) {
  const std::vector<fs::path> roots = {root / "src", root / "bench",
                                       root / "examples"};
  const auto files = load_tree(roots, /*treat_all_as_src=*/false);
  auto findings = ctesim::lint::run_rules(files);

  if (!layers_path.empty()) {
    LayerGraph graph;
    std::string error;
    if (!ctesim::lint::load_layers(layers_path, &graph, &error)) {
      std::fprintf(stderr, "ctesim-lint: %s\n", error.c_str());
      return 1;
    }
    const auto layer_findings =
        ctesim::lint::check_layering(files, graph, layers_path);
    findings.insert(findings.end(), layer_findings.begin(),
                    layer_findings.end());
  }

  auto allow = load_allowlist(allowlist_path);
  std::vector<Finding> reported;
  for (const auto& finding : findings) {
    bool allowed = false;
    for (auto& entry : allow) {
      if (entry.rule == finding.rule && has_suffix(finding.file,
                                                   entry.suffix)) {
        entry.used = true;
        allowed = true;
      }
    }
    if (!allowed) reported.push_back(finding);
  }

  for (const auto& f : reported) {
    std::fprintf(stderr, "%s:%d: [%s] %s\n", f.file.c_str(), f.line,
                 f.rule.c_str(), f.detail.c_str());
  }
  bool stale = false;
  for (const auto& entry : allow) {
    if (!entry.used) {
      std::fprintf(stderr,
                   "ctesim-lint: stale allowlist entry '%s:%s' — the finding "
                   "it suppressed is gone; remove it\n",
                   entry.suffix.c_str(), entry.rule.c_str());
      stale = true;
    }
  }
  std::printf("ctesim-lint: %zu file(s), %zu finding(s), %zu allowlisted\n",
              files.size(), reported.size(), findings.size() - reported.size());
  return (reported.empty() && !stale) ? 0 : 1;
}

int run_self_test(const fs::path& fixtures) {
  const auto files = load_tree({fixtures}, /*treat_all_as_src=*/true);
  if (files.empty()) {
    std::fprintf(stderr, "ctesim-lint: no fixtures under %s\n",
                 fixtures.generic_string().c_str());
    return 1;
  }
  auto findings = ctesim::lint::run_rules(files);

  // When the fixtures ship a layering mini-tree (layering/src/... plus its
  // own layering/layers.txt), exercise the architectural checker too. Only
  // files with a /src/ path segment participate, so the lexical fixtures
  // at the top level are unaffected.
  const fs::path fixture_layers = fixtures / "layering" / "layers.txt";
  if (fs::exists(fixture_layers)) {
    LayerGraph graph;
    std::string error;
    if (!ctesim::lint::load_layers(fixture_layers.generic_string(), &graph,
                                   &error)) {
      std::fprintf(stderr, "ctesim-lint: %s\n", error.c_str());
      return 1;
    }
    const auto layer_findings = ctesim::lint::check_layering(
        files, graph, fixture_layers.generic_string());
    findings.insert(findings.end(), layer_findings.begin(),
                    layer_findings.end());
  }

  // Expected: every "// LINT-EXPECT: <rule>" marker, on its own line.
  static const std::regex kExpect("LINT-EXPECT:\\s*([a-z-]+)");
  std::map<std::pair<std::string, std::string>, std::pair<int, int>> tally;
  for (const auto& file : files) {
    for (std::size_t i = 0; i < file.raw.size(); ++i) {
      std::smatch m;
      if (std::regex_search(file.raw[i], m, kExpect)) {
        ++tally[{file.path + ":" + std::to_string(i + 1), m[1].str()}].first;
      }
    }
  }
  for (const auto& finding : findings) {
    ++tally[{finding.file + ":" + std::to_string(finding.line),
             finding.rule}].second;
  }
  int failures = 0;
  for (const auto& [key, counts] : tally) {
    const auto& [site, rule] = key;
    const auto& [expected, actual] = counts;
    if (expected > 0 && actual == 0) {
      std::fprintf(stderr, "self-test: %s expected [%s], not reported\n",
                   site.c_str(), rule.c_str());
      ++failures;
    } else if (expected == 0 && actual > 0) {
      std::fprintf(stderr, "self-test: %s unexpected [%s]\n", site.c_str(),
                   rule.c_str());
      ++failures;
    }
  }
  std::printf("ctesim-lint self-test: %zu finding(s), %d failure(s)\n",
              findings.size(), failures);
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root;
  std::string allowlist;
  std::string self_test;
  std::string layers;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--allowlist" && i + 1 < argc) {
      allowlist = argv[++i];
    } else if (arg == "--layers" && i + 1 < argc) {
      layers = argv[++i];
    } else if (arg == "--self-test" && i + 1 < argc) {
      self_test = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: ctesim_lint --root <repo> [--allowlist <file>] "
                   "[--layers <file>] | --self-test <fixtures>\n");
      return 2;
    }
  }
  if (!self_test.empty()) return run_self_test(self_test);
  if (root.empty()) {
    std::fprintf(stderr, "ctesim-lint: --root (or --self-test) required\n");
    return 2;
  }
  if (layers.empty()) {
    const fs::path candidate =
        fs::path(root) / "tools" / "ctesim_lint" / "layers.txt";
    if (fs::exists(candidate)) layers = candidate.generic_string();
  }
  return run_repo(root, allowlist, layers);
}
