// ctesim-lint: a purpose-built determinism / correctness checker for this
// repository. It is deliberately lexical (no AST): the rules target a small
// set of project-specific hazards that general tools miss, and a lexical
// scan keeps the tool dependency-free and fast enough to run as a test.
//
// Rules (ids are what the allowlist references):
//   unordered-iteration  Iterating a std::unordered_map/unordered_set
//                        (range-for or .begin()/.cbegin()). Hash-order
//                        iteration feeding results/traces is the classic
//                        source of run-to-run nondeterminism in the
//                        simulator. Variable names are collected corpus-wide
//                        in a first pass, so iteration in one file of a
//                        member declared in another is still caught.
//   wall-clock           Wall-clock or libc randomness in src/ (std::chrono
//                        clocks, time(nullptr), rand(), gettimeofday).
//                        Simulated time must come from the DES engine and
//                        randomness from util/rng.h. bench/ and examples/
//                        are exempt: native measurement needs real clocks.
//   float-equality       ==/!= against a floating-point literal. Model math
//                        is all doubles; exact comparison is almost always
//                        a latent bug. Use epsilons or integer state.
//   unvalidated-machine  A MachineModel constructed directly in a file that
//                        never mentions validate: models must go through
//                        arch::validate_or_throw before use.
//   raw-power-unit       A `double` variable spelled *_watts / *_joules in
//                        src/. Power and energy quantities crossing an API
//                        carry the units::Watts / units::Joules strong
//                        types (src/units/quantity.h); a raw double with a
//                        full unit word in its name is a quantity that
//                        escaped the dimension algebra.
//
// Usage:
//   ctesim_lint --root <repo_root> [--allowlist <file>]
//   ctesim_lint --self-test <fixtures_dir>
//
// The allowlist holds lines of the form "path-suffix:rule" (comments with
// '#'). Every entry must carry a justification comment; unused entries are
// reported so the list cannot rot. Self-test mode checks that each
// "// LINT-EXPECT: <rule>" marker line in the fixtures produces exactly
// that finding, and that no unexpected findings appear.

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct Finding {
  std::string file;  // path as scanned (absolute or root-relative)
  int line = 0;      // 1-based
  std::string rule;
  std::string detail;
};

struct SourceFile {
  std::string path;
  bool in_src = false;             // subject to the wall-clock rule
  std::vector<std::string> raw;    // original lines (for LINT-EXPECT)
  std::vector<std::string> code;   // comments/strings blanked out
};

/// Replace comment and string-literal contents with spaces, preserving
/// line structure, so the rule regexes never fire inside either.
std::string mask_comments_and_strings(const std::string& text) {
  std::string out = text;
  enum class State { kCode, kLine, kBlock, kString, kChar } state = State::kCode;
  for (std::size_t i = 0; i < out.size(); ++i) {
    const char c = out[i];
    const char next = i + 1 < out.size() ? out[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLine;
          out[i] = ' ';
        } else if (c == '/' && next == '*') {
          state = State::kBlock;
          out[i] = ' ';
        } else if (c == '"') {
          state = State::kString;
        } else if (c == '\'') {
          state = State::kChar;
        }
        break;
      case State::kLine:
        if (c == '\n') {
          state = State::kCode;
        } else {
          out[i] = ' ';
        }
        break;
      case State::kBlock:
        if (c == '*' && next == '/') {
          out[i] = ' ';
          out[i + 1] = ' ';
          ++i;
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kString:
        if (c == '\\') {
          out[i] = ' ';
          if (next != '\n') {
            if (i + 1 < out.size()) out[i + 1] = ' ';
            ++i;
          }
        } else if (c == '"') {
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kChar:
        if (c == '\\') {
          out[i] = ' ';
          if (i + 1 < out.size()) out[i + 1] = ' ';
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::string line;
  std::istringstream in(text);
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

bool has_suffix(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// Names of variables declared with an unordered container type anywhere in
/// the corpus. Handles multi-line declarations by scanning the masked text
/// as one string and balancing the template angle brackets.
void collect_unordered_names(const std::string& masked,
                             std::set<std::string>* names) {
  static const std::regex kDecl("unordered_(?:map|set|multimap|multiset)\\s*<");
  for (auto it = std::sregex_iterator(masked.begin(), masked.end(), kDecl);
       it != std::sregex_iterator(); ++it) {
    std::size_t pos = static_cast<std::size_t>(it->position()) +
                      static_cast<std::size_t>(it->length());
    int depth = 1;
    while (pos < masked.size() && depth > 0) {
      if (masked[pos] == '<') ++depth;
      if (masked[pos] == '>') --depth;
      ++pos;
    }
    // Skip whitespace, then read an identifier; "type name;" / "type name{"
    // / "type name =" are declarations, "type>()" or "type> foo(" is not
    // distinguished further — a spurious name only matters if something
    // iterates it, which is exactly the hazard we want flagged.
    while (pos < masked.size() && std::isspace(static_cast<unsigned char>(
                                      masked[pos]))) {
      ++pos;
    }
    std::string name;
    while (pos < masked.size() &&
           (std::isalnum(static_cast<unsigned char>(masked[pos])) ||
            masked[pos] == '_')) {
      name += masked[pos++];
    }
    if (!name.empty() && !std::isdigit(static_cast<unsigned char>(name[0]))) {
      names->insert(name);
    }
  }
}

std::string last_identifier(const std::string& expr) {
  std::size_t end = expr.size();
  while (end > 0 && std::isspace(static_cast<unsigned char>(expr[end - 1]))) {
    --end;
  }
  std::size_t begin = end;
  while (begin > 0 &&
         (std::isalnum(static_cast<unsigned char>(expr[begin - 1])) ||
          expr[begin - 1] == '_')) {
    --begin;
  }
  return expr.substr(begin, end - begin);
}

void scan_file(const SourceFile& file, const std::set<std::string>& unordered,
               std::vector<Finding>* findings) {
  static const std::regex kRangeFor("for\\s*\\([^;:)]*:\\s*([^)]+)\\)");
  static const std::regex kBeginCall(
      "([A-Za-z_][A-Za-z0-9_]*)\\s*\\.\\s*c?begin\\s*\\(");
  static const std::regex kWallClock(
      "steady_clock|system_clock|high_resolution_clock|gettimeofday|"
      "\\btime\\s*\\(\\s*(nullptr|NULL|0)\\s*\\)|\\brand\\s*\\(\\s*\\)|"
      "\\bsrand\\s*\\(|\\bclock\\s*\\(\\s*\\)");
  // A floating literal on either side of ==/!=. Integer comparisons are
  // fine; the literal must contain '.' or an exponent to qualify.
  static const std::regex kFloatEq(
      "[=!]=\\s*[-+]?(?:\\d+\\.\\d*|\\.\\d+|\\d+(?:\\.\\d*)?[eE][-+]?\\d+)|"
      "(?:\\d+\\.\\d*|\\.\\d+|\\d+(?:\\.\\d*)?[eE][-+]?\\d+)[fF]?\\s*[=!]=");
  static const std::regex kMachineDecl(
      "\\bMachineModel\\s+[A-Za-z_][A-Za-z0-9_]*\\s*;");
  // Full unit words only: the project's raw-double convention is the short
  // _w/_j suffix on locals; a *_watts/*_joules double is a quantity that
  // should be units::Watts/units::Joules.
  static const std::regex kRawPowerUnit(
      "\\bdouble\\s+([A-Za-z_][A-Za-z0-9_]*_(?:watts|joules))\\b");

  bool mentions_validate = false;
  for (const auto& line : file.code) {
    if (line.find("validate") != std::string::npos) {
      mentions_validate = true;
      break;
    }
  }

  for (std::size_t i = 0; i < file.code.size(); ++i) {
    const std::string& line = file.code[i];
    const int lineno = static_cast<int>(i) + 1;
    std::smatch m;

    if (std::regex_search(line, m, kRangeFor)) {
      const std::string name = last_identifier(m[1].str());
      if (unordered.count(name) > 0) {
        findings->push_back({file.path, lineno, "unordered-iteration",
                             "range-for over unordered container '" + name +
                                 "' — hash order is not deterministic"});
      }
    }
    for (auto it = std::sregex_iterator(line.begin(), line.end(), kBeginCall);
         it != std::sregex_iterator(); ++it) {
      const std::string name = (*it)[1].str();
      if (unordered.count(name) > 0) {
        findings->push_back({file.path, lineno, "unordered-iteration",
                             "iterator over unordered container '" + name +
                                 "' — hash order is not deterministic"});
      }
    }
    if (file.in_src && std::regex_search(line, m, kWallClock)) {
      findings->push_back({file.path, lineno, "wall-clock",
                           "wall-clock/libc randomness in simulation code "
                           "('" + m.str() +
                               "') — use sim::Engine time / util/rng.h"});
    }
    if (file.in_src && std::regex_search(line, m, kRawPowerUnit)) {
      findings->push_back({file.path, lineno, "raw-power-unit",
                           "raw double '" + m[1].str() +
                               "' — use units::Watts / units::Joules "
                               "(src/units/quantity.h) for power/energy "
                               "quantities"});
    }
    if (std::regex_search(line, m, kFloatEq)) {
      findings->push_back({file.path, lineno, "float-equality",
                           "exact floating-point comparison ('" + m.str() +
                               "') — compare with a tolerance"});
    }
    // Headers only *declare* MachineModel members (owners validate on the
    // way in); construction without validation happens in function bodies,
    // so the rule is scoped to implementation files.
    const bool impl_file =
        has_suffix(file.path, ".cpp") || has_suffix(file.path, ".cc");
    if (impl_file && std::regex_search(line, m, kMachineDecl) &&
        !mentions_validate) {
      findings->push_back(
          {file.path, lineno, "unvalidated-machine",
           "MachineModel built without any validate call in this file — "
           "run arch::validate_or_throw before using the model"});
    }
  }
}

std::vector<SourceFile> load_tree(const std::vector<fs::path>& roots,
                                  bool treat_all_as_src) {
  std::vector<SourceFile> files;
  for (const auto& root : roots) {
    if (!fs::exists(root)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(root)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext != ".h" && ext != ".cpp" && ext != ".cc" && ext != ".hpp") {
        continue;
      }
      std::ifstream in(entry.path());
      std::ostringstream buffer;
      buffer << in.rdbuf();
      SourceFile file;
      file.path = entry.path().generic_string();
      file.in_src = treat_all_as_src ||
                    file.path.find("/src/") != std::string::npos;
      file.raw = split_lines(buffer.str());
      file.code = split_lines(mask_comments_and_strings(buffer.str()));
      files.push_back(std::move(file));
    }
  }
  std::sort(files.begin(), files.end(),
            [](const SourceFile& a, const SourceFile& b) {
              return a.path < b.path;
            });
  return files;
}

std::vector<Finding> run_scan(const std::vector<SourceFile>& files) {
  std::set<std::string> unordered;
  for (const auto& file : files) {
    std::string masked;
    for (const auto& line : file.code) {
      masked += line;
      masked += '\n';
    }
    collect_unordered_names(masked, &unordered);
  }
  std::vector<Finding> findings;
  for (const auto& file : files) scan_file(file, unordered, &findings);
  return findings;
}

struct AllowEntry {
  std::string suffix;
  std::string rule;
  bool used = false;
};

std::vector<AllowEntry> load_allowlist(const std::string& path) {
  std::vector<AllowEntry> entries;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    // Trim.
    while (!line.empty() && std::isspace(static_cast<unsigned char>(
                                line.back()))) {
      line.pop_back();
    }
    std::size_t start = 0;
    while (start < line.size() &&
           std::isspace(static_cast<unsigned char>(line[start]))) {
      ++start;
    }
    line = line.substr(start);
    if (line.empty()) continue;
    const std::size_t colon = line.rfind(':');
    if (colon == std::string::npos) {
      std::fprintf(stderr, "ctesim-lint: bad allowlist entry '%s'\n",
                   line.c_str());
      continue;
    }
    entries.push_back({line.substr(0, colon), line.substr(colon + 1), false});
  }
  return entries;
}

int run_repo(const fs::path& root, const std::string& allowlist_path) {
  const std::vector<fs::path> roots = {root / "src", root / "bench",
                                       root / "examples"};
  const auto files = load_tree(roots, /*treat_all_as_src=*/false);
  auto findings = run_scan(files);

  auto allow = load_allowlist(allowlist_path);
  std::vector<Finding> reported;
  for (const auto& finding : findings) {
    bool allowed = false;
    for (auto& entry : allow) {
      if (entry.rule == finding.rule && has_suffix(finding.file,
                                                   entry.suffix)) {
        entry.used = true;
        allowed = true;
      }
    }
    if (!allowed) reported.push_back(finding);
  }

  for (const auto& f : reported) {
    std::fprintf(stderr, "%s:%d: [%s] %s\n", f.file.c_str(), f.line,
                 f.rule.c_str(), f.detail.c_str());
  }
  bool stale = false;
  for (const auto& entry : allow) {
    if (!entry.used) {
      std::fprintf(stderr,
                   "ctesim-lint: stale allowlist entry '%s:%s' — the finding "
                   "it suppressed is gone; remove it\n",
                   entry.suffix.c_str(), entry.rule.c_str());
      stale = true;
    }
  }
  std::printf("ctesim-lint: %zu file(s), %zu finding(s), %zu allowlisted\n",
              files.size(), reported.size(), findings.size() - reported.size());
  return (reported.empty() && !stale) ? 0 : 1;
}

int run_self_test(const fs::path& fixtures) {
  const auto files = load_tree({fixtures}, /*treat_all_as_src=*/true);
  if (files.empty()) {
    std::fprintf(stderr, "ctesim-lint: no fixtures under %s\n",
                 fixtures.generic_string().c_str());
    return 1;
  }
  const auto findings = run_scan(files);

  // Expected: every "// LINT-EXPECT: <rule>" marker, on its own line.
  static const std::regex kExpect("LINT-EXPECT:\\s*([a-z-]+)");
  std::map<std::pair<std::string, std::string>, std::pair<int, int>> tally;
  for (const auto& file : files) {
    for (std::size_t i = 0; i < file.raw.size(); ++i) {
      std::smatch m;
      if (std::regex_search(file.raw[i], m, kExpect)) {
        ++tally[{file.path + ":" + std::to_string(i + 1), m[1].str()}].first;
      }
    }
  }
  for (const auto& finding : findings) {
    ++tally[{finding.file + ":" + std::to_string(finding.line),
             finding.rule}].second;
  }
  int failures = 0;
  for (const auto& [key, counts] : tally) {
    const auto& [site, rule] = key;
    const auto& [expected, actual] = counts;
    if (expected > 0 && actual == 0) {
      std::fprintf(stderr, "self-test: %s expected [%s], not reported\n",
                   site.c_str(), rule.c_str());
      ++failures;
    } else if (expected == 0 && actual > 0) {
      std::fprintf(stderr, "self-test: %s unexpected [%s]\n", site.c_str(),
                   rule.c_str());
      ++failures;
    }
  }
  std::printf("ctesim-lint self-test: %zu finding(s), %d failure(s)\n",
              findings.size(), failures);
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root;
  std::string allowlist;
  std::string self_test;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--allowlist" && i + 1 < argc) {
      allowlist = argv[++i];
    } else if (arg == "--self-test" && i + 1 < argc) {
      self_test = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: ctesim_lint --root <repo> [--allowlist <file>] | "
                   "--self-test <fixtures>\n");
      return 2;
    }
  }
  if (!self_test.empty()) return run_self_test(self_test);
  if (root.empty()) {
    std::fprintf(stderr, "ctesim-lint: --root (or --self-test) required\n");
    return 2;
  }
  return run_repo(root, allowlist);
}
