// Rule engine for ctesim-lint. Every rule walks the token stream produced
// by tokenizer.h; none of them ever sees comment or string-literal text, so
// the masker-era false positives (and the allowlist entries that papered
// over them) are gone by construction.
//
// Lexical rules (see main.cpp for the per-rule rationale):
//   unordered-iteration, wall-clock, float-equality, unvalidated-machine,
//   raw-power-unit, raw-mutex, core-std-function, detached-thread,
//   lock-order.
//
// Architectural rule:
//   layering — #include edges between src/ subsystems must follow the
//   dependency DAG declared in tools/ctesim_lint/layers.txt.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "tokenizer.h"

namespace ctesim::lint {

struct Finding {
  std::string file;  ///< path as scanned (absolute or root-relative)
  int line = 0;      ///< 1-based
  std::string rule;
  std::string detail;
};

struct SourceFile {
  std::string path;
  bool in_src = false;            ///< subject to the src/-only rules
  std::vector<std::string> raw;   ///< original lines (for LINT-EXPECT)
  std::vector<Token> tokens;
};

/// Run all lexical rules over the corpus. Corpus-wide state (unordered
/// container names, .h/.cpp join pairing, lock-acquisition order pairs) is
/// gathered in a first pass, so cross-file hazards are caught.
std::vector<Finding> run_rules(const std::vector<SourceFile>& files);

/// Declared subsystem dependency graph (tools/ctesim_lint/layers.txt).
/// One line per subsystem: "name: dep1 dep2 ..." ('#' comments allowed).
/// A subsystem may always include itself; anything else must be listed.
struct LayerGraph {
  /// subsystem -> directly allowed dependencies
  std::map<std::string, std::set<std::string>> deps;
  /// declaration order, for stable reporting
  std::vector<std::string> order;
  /// subsystem -> 1-based line of its declaration in layers.txt
  std::map<std::string, int> line;

  bool known(const std::string& subsystem) const {
    return deps.find(subsystem) != deps.end();
  }
};

/// Parse layers.txt. Returns false (with *error set) on malformed input.
bool load_layers(const std::string& path, LayerGraph* graph,
                 std::string* error);

/// Check the declared graph itself is a DAG plus every src/ include edge
/// against it. Findings carry rule "layering":
///   - a cycle among the declared layers (reported once, with the cycle);
///   - a file in a subsystem absent from layers.txt;
///   - an include whose target subsystem is not in the including
///     subsystem's declared dependencies (the back-edge / skipped layer).
/// The subsystem of a file is the path component after the last "/src/";
/// files outside src/ (bench/, examples/, fixtures without a src/ segment)
/// are not constrained.
std::vector<Finding> check_layering(const std::vector<SourceFile>& files,
                                    const LayerGraph& graph,
                                    const std::string& layers_path);

}  // namespace ctesim::lint
