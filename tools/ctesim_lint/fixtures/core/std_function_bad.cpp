// Fixture for the core-std-function rule. It lives under a core/ directory
// so the path-scoped check fires; the same spelling in a fixture outside
// core/ (see ../known_bad.cpp, which never mentions it) must stay clean.
// Never compiled.
namespace fixture {

class BadEngine {
 public:
  // A std::function callback in core code: copyable, 16-byte SBO, heap
  // allocation per spilled closure — exactly what the refactor removed.
  void schedule(std::function<void()> fn);  // LINT-EXPECT: core-std-function

 private:
  int pending_ = 0;
};

}  // namespace fixture
