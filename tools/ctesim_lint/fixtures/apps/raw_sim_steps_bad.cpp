// Fixture for the raw-sim-steps rule. It lives under an apps/ directory so
// the path-scoped check fires; the same spellings outside apps/ (see
// ../known_bad.cpp, which never mentions them) must stay clean.
// Never compiled.
namespace fixture {

struct Config {
  int sim_steps = 2;
  int sim_solver_iters = 40;
  int steps = 1000;
  int solver_iters = 150;
};

double bad_extrapolations(const Config& config, double window_time) {
  // The ad-hoc multiply the sampling executor replaced: scaling a measured
  // window up to the full run inside app code.
  const double per_step = window_time / config.sim_steps;  // LINT-EXPECT: raw-sim-steps
  double total = per_step * config.sim_steps * config.steps;  // LINT-EXPECT: raw-sim-steps
  const double solver_scale =
      static_cast<double>(config.solver_iters) / config.sim_solver_iters;  // LINT-EXPECT: raw-sim-steps
  total += solver_scale;
  return total;
}

int fine_uses(const Config& config) {
  // Plain reads, comparisons and assignments of the knobs are fine — only
  // scaling arithmetic re-implements the executor's extrapolation.
  int window = config.sim_steps;
  if (config.sim_solver_iters > window) window = config.sim_solver_iters;
  for (int i = 0; i < config.sim_steps; ++i) window += i;
  return window;
}

}  // namespace fixture
