// Layering fixture: a bottom-layer header with no project includes. Clean.
#pragma once

namespace fixture::util {
inline int length(const char* s) {
  int n = 0;
  while (s && s[n] != '\0') ++n;
  return n;
}
}  // namespace fixture::util
