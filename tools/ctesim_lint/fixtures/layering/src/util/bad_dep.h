// Layering fixture: util is the bottom layer, so including a server header
// is a back-edge — the DAG in layers.txt must reject it.
#pragma once

#include "server/handler.h"  // LINT-EXPECT: layering

namespace fixture::util {
inline int shortcut(const char* request) { return server::handle(request); }
}  // namespace fixture::util
