// Layering fixture: server sits above util, so this downward include is
// allowed by layers.txt. Clean.
#pragma once

#include "util/strings.h"

namespace fixture::server {
inline int handle(const char* request) { return util::length(request); }
}  // namespace fixture::server
