// LINT-EXPECT: layering — this subsystem is missing from layers.txt.
#pragma once

namespace fixture::rogue {
inline int zero() { return 0; }
}  // namespace fixture::rogue
