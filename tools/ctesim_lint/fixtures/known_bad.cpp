// Fixture for the ctesim-lint self-test. Each marked line must produce
// exactly the named finding; unmarked lines must stay clean. This file is
// never compiled — it only needs to look like the code the rules target.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <map>
#include <unordered_map>
#include <unordered_set>

namespace fixture {

struct MachineModel {
  double peak = 0.0;
};

struct Holder {
  std::unordered_map<int, double> weights_;
  std::unordered_set<int> seen_;
  std::map<int, double> ordered_;
};

inline double sum_weights(const Holder& h) {
  double total = 0.0;
  for (const auto& [node, w] : h.weights_) {  // LINT-EXPECT: unordered-iteration
    total += w;
  }
  for (auto it = h.seen_.begin(); it != h.seen_.end(); ++it) {  // LINT-EXPECT: unordered-iteration
    total += static_cast<double>(*it);
  }
  for (const auto& [node, w] : h.ordered_) {  // ordered: clean
    total += w;
  }
  return total;
}

inline double timestamped() {
  const auto t0 = std::chrono::steady_clock::now();  // LINT-EXPECT: wall-clock
  std::srand(42);                                    // LINT-EXPECT: wall-clock
  const int r = std::rand();                         // LINT-EXPECT: wall-clock
  const std::time_t wall = std::time(nullptr);       // LINT-EXPECT: wall-clock
  (void)t0;
  return static_cast<double>(r + wall);
}

inline bool converged(double residual) {
  if (residual == 0.0) return true;  // exact-zero guard: exempt, clean
  if (residual != 1e-9) return false;  // LINT-EXPECT: float-equality
  if (residual == 1.5e-3) return true;  // LINT-EXPECT: float-equality
  if (residual == 0x1.8p1) return true;  // LINT-EXPECT: float-equality
  return residual < 1e-12;  // inequality: clean
}

inline double use_machine() {
  MachineModel m;  // LINT-EXPECT: unvalidated-machine
  return m.peak;
}

inline double node_energy(double hours) {
  double cluster_watts = 135.8;       // LINT-EXPECT: raw-power-unit
  double energy_joules = cluster_watts * hours * 3600.0;  // LINT-EXPECT: raw-power-unit
  return energy_joules;
}

// A string mentioning steady_clock and an == 0.0 comparison must not fire:
inline const char* doc() { return "steady_clock, x == 0.0"; }
// Nor a comment: steady_clock, rand(), x == 0.0.
// Nor a raw string (the masker-era scanner mis-lexed these):
inline const char* raw_doc() {
  return R"json({"clock": "steady_clock", "eq": "x == 1.5", "q": "\"})json";
}
// Nor a line comment continued by a splice: rand() below is commentary \
   std::rand(); residual == 1.5;
// Nor a digit separator opening a phantom char literal:
inline long budget() { return 1'000'000 + 1'024; }

}  // namespace fixture
