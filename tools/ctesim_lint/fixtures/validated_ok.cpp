// Clean fixture: direct MachineModel construction is fine when the file
// routes the model through validation.
namespace fixture {

struct MachineModel {
  double peak = 0.0;
};

void validate_or_throw(const MachineModel&);

inline double use_machine_checked() {
  MachineModel m;  // clean: validate_or_throw below
  validate_or_throw(m);
  return m.peak;
}

namespace units {
struct Watts {
  double v = 0.0;
};
}  // namespace units

inline double node_draw(double idle_w) {
  units::Watts node_watts{135.8};  // clean: strong type, not a raw double
  return node_watts.v + idle_w;    // clean: raw doubles use the _w suffix
}

}  // namespace fixture
