// Clean fixture: direct MachineModel construction is fine when the file
// routes the model through validation.
namespace fixture {

struct MachineModel {
  double peak = 0.0;
};

void validate_or_throw(const MachineModel&);

inline double use_machine_checked() {
  MachineModel m;  // clean: validate_or_throw below
  validate_or_throw(m);
  return m.peak;
}

}  // namespace fixture
