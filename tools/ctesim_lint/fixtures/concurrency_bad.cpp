// Fixture for the concurrency rules. Each marked line must produce exactly
// the named finding; unmarked lines must stay clean. Never compiled.
namespace fixture {

// Stand-ins shaped like util::Mutex / util::MutexLock so the lock-order
// rule sees real guard declarations without dragging in the real header.
namespace util {
class Mutex {};
class MutexLock {
 public:
  explicit MutexLock(Mutex&);
};
}  // namespace util

class Registry {
 public:
  void add(int v);

 private:
  std::mutex mutex_;  // LINT-EXPECT: raw-mutex
  std::shared_mutex table_mutex_;  // LINT-EXPECT: raw-mutex
  int count_ = 0;
};

inline void fire_and_forget() {
  std::thread worker(&fire_and_forget);  // LINT-EXPECT: detached-thread
  worker.detach();  // LINT-EXPECT: detached-thread
}

inline void take_forward(util::Mutex& a, util::Mutex& b) {
  util::MutexLock outer(a);
  util::MutexLock inner(b);  // LINT-EXPECT: lock-order
}

inline void take_backward(util::Mutex& a, util::Mutex& b) {
  util::MutexLock outer(b);
  util::MutexLock inner(a);  // LINT-EXPECT: lock-order
}

}  // namespace fixture
