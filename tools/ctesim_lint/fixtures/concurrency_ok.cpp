// Clean fixture for the concurrency rules: a capability wrapper may hold a
// raw std::mutex (that is the one legitimate home for it), joined threads
// are fine, and consistently ordered nested guards are fine.
#define CTESIM_CAPABILITY(x)

namespace fixture {

namespace util {
class Mutex {};
class MutexLock {
 public:
  explicit MutexLock(Mutex&);
};
}  // namespace util

/// Clean: the raw mutex is the implementation of a CTESIM_CAPABILITY
/// wrapper, which is exactly how util::Mutex itself is built.
class CTESIM_CAPABILITY("mutex") WrappedMutex {
 private:
  std::mutex raw_;
};

inline void run_worker() {
  std::thread worker(&run_worker);  // clean: joined below
  worker.join();
}

inline void nested_same_order_1(util::Mutex& first, util::Mutex& second) {
  util::MutexLock outer(first);
  util::MutexLock inner(second);  // clean: every site orders first, second
}

inline void nested_same_order_2(util::Mutex& first, util::Mutex& second) {
  util::MutexLock outer(first);
  util::MutexLock inner(second);  // clean: same order as above
}

}  // namespace fixture
