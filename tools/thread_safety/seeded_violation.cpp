// Seeded thread-safety violation — the canary for the CI `thread-safety`
// job. It accesses a CTESIM_GUARDED_BY member without holding the mutex,
// so `clang++ -fsyntax-only -Wthread-safety -Werror=thread-safety` over
// this file MUST fail; the job inverts the exit code. If clang ever stops
// diagnosing this, the "analysis passed over src/" signal is meaningless
// and the job fails loudly instead of rubber-stamping.
//
// Deliberately NOT under tools/ctesim_lint/fixtures/ (the lint self-test
// scans that tree) and never added to any CMake target.
#include "util/thread_annotations.h"

namespace {

class Counter {
 public:
  // BUG (on purpose): writes value_ without acquiring mutex_. With the
  // annotation macros active this is a -Wthread-safety error; without
  // them (GCC) it compiles silently, which is why the CI job uses clang.
  void bump() { ++value_; }

  int read() CTESIM_EXCLUDES(mutex_) {
    ctesim::util::MutexLock lock(mutex_);
    return value_;
  }

 private:
  ctesim::util::Mutex mutex_;
  int value_ CTESIM_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int seeded_violation_canary() {
  Counter c;
  c.bump();
  return c.read();
}
