// ctesim_client: fire requests at a running ctesim_server and print the
// reply lines to stdout (one per line, exactly as received — byte-identical
// across cache hits, which the CI smoke job checks with `cmp`).
//
//   ctesim_client --port 4000 --machine cte-arm --jobs 500 --seed 7
//   ctesim_client --port 4000 --request '{"op":"ping"}'
//   ctesim_client --port 4000 --stats
#include <cstdio>
#include <iostream>
#include <string>

#include "server/client.h"
#include "util/cli.h"
#include "util/json.h"

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  std::int64_t port = 0;
  std::string request;
  bool stats = false;
  bool ping = false;
  std::string machine = "cte-arm";
  std::int64_t jobs = 200;
  std::int64_t seed = 1;
  std::string queue = "easy";
  std::string placement = "contiguous";
  double deadline_ms = 0.0;
  std::int64_t repeat = 1;

  ctesim::Cli cli("ctesim_client",
                  "Send requests to a ctesim_server (see docs/SERVER.md).");
  cli.option("host", &host, "server address")
      .option("port", &port, "server port (required)")
      .option("request", &request,
              "send this raw JSON request line instead of building one")
      .flag("stats", &stats, "send a stats request")
      .flag("ping", &ping, "send a ping request")
      .option("machine", &machine, "machine config name for simulate")
      .option("jobs", &jobs, "workload size for simulate")
      .option("seed", &seed, "workload seed for simulate")
      .option("queue", &queue, "simulated queue policy: easy | fcfs")
      .option("placement", &placement,
              "placement policy: contiguous | linear | random")
      .option("deadline-ms", &deadline_ms,
              "queue-wait deadline in ms (0 = none)")
      .option("repeat", &repeat, "send the request this many times");
  if (!cli.parse(argc, argv)) return 1;

  if (port <= 0 || port > 65535) {
    std::fprintf(stderr, "ctesim_client: --port is required (1..65535)\n");
    return 1;
  }
  if (repeat < 1) {
    std::fprintf(stderr, "ctesim_client: --repeat must be >= 1\n");
    return 1;
  }

  std::string line = request;
  if (line.empty()) {
    if (ping) {
      line = "{\"op\":\"ping\"}";
    } else if (stats) {
      line = "{\"op\":\"stats\"}";
    } else {
      line = "{\"op\":\"simulate\",\"machine\":\"" +
             ctesim::json::escape(machine) +
             "\",\"jobs\":" + std::to_string(jobs) +
             ",\"seed\":" + std::to_string(seed) + ",\"queue\":\"" + queue +
             "\",\"placement\":\"" + placement + "\"";
      if (deadline_ms > 0.0) {
        line += ",\"deadline_ms\":" + ctesim::json::number(deadline_ms);
      }
      line += "}";
    }
  }

  try {
    ctesim::server::Client client(host, static_cast<int>(port));
    for (std::int64_t i = 0; i < repeat; ++i) {
      std::cout << client.request(line) << "\n";
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ctesim_client: %s\n", e.what());
    return 1;
  }
  return 0;
}
