#!/usr/bin/env python3
"""Engine-rate regression gate (stdlib only).

Compares a fresh bench/engine_rate summary against the committed baseline
(BENCH_engine.json at the repo root) and fails on:

  1. regression: any benchmark present in BOTH summaries whose fresh
     events/sec falls below ``--min-ratio`` (default 0.80, i.e. a >20%
     drop) of the committed figure. CI runners are noisy, which is why the
     bar is 20% and not 5%; a real engine regression (an O(n) scan in the
     event loop, an accidental allocation per event) blows straight
     through it.
  2. power overhead: the energy-accounting run (BM_ClusterEnginePower)
     must stay within ``--max-power-overhead`` (default 0.10) of the plain
     run *in the same fresh summary* — both sides ran on the same machine
     seconds apart, so this ratio is far less noisy than the cross-commit
     one. This holds the per-event power bookkeeping at O(1).
  3. coverage: the fresh summary must contain every hot-path microbench
     (REQUIRED_RUNS below). A bench binary that silently dropped the queue
     or dispatch benchmarks would otherwise pass the gate trivially.
  4. dispatch speedup: BM_ScheduleDispatch (4-ary queue + InlineFunction
     engine) must stay at least ``--min-dispatch-speedup`` (default 1.8)
     times faster than BM_ScheduleDispatchLegacy (the in-tree pre-refactor
     twin: std::priority_queue of std::function events, copy-then-pop) at
     16 timers — the shallow-queue shape where the old per-event heap
     traffic dominated. The measured ratio is 2.2-2.3x (docs/ENGINE.md);
     the floor sits ~20% under that for the same noise headroom the
     cross-commit gate gets, and anything that reintroduces a per-event
     allocation or copy lands the ratio near 1.0 — far below either bar.

Usage:
  python3 tools/perf/check_engine_rate.py \
      --baseline BENCH_engine.json --fresh BENCH_fresh.json
"""

import argparse
import json
import sys

# Hot-path microbenches every fresh summary must carry (gate 3). Names match
# bench/engine_rate.cpp registrations exactly.
REQUIRED_RUNS = (
    "BM_EventQueuePushPop/64",
    "BM_EventQueuePushPop/1024",
    "BM_EventQueuePushPop/16384",
    "BM_EventQueuePushPop/262144",
    "BM_ScheduleDispatch/16",
    "BM_ScheduleDispatch/256",
    "BM_ScheduleDispatchLegacy/16",
    "BM_ScheduleDispatchLegacy/256",
    "BM_SpawnResume",
    "BM_ClusterEngine/150",
    "BM_ClusterEngine/600",
    "BM_ClusterEnginePower/600",
)


def load_runs(path):
    """Return {benchmark name: events_per_s} from an engine_rate summary."""
    with open(path, "r", encoding="utf-8") as f:
        summary = json.load(f)
    if summary.get("bench") != "engine_rate":
        raise SystemExit(f"{path}: not an engine_rate summary")
    runs = {}
    for run in summary.get("runs", []):
        name = run["name"]
        rate = float(run["events_per_s"])
        if rate <= 0.0:
            raise SystemExit(f"{path}: {name} has non-positive events_per_s")
        runs[name] = rate
    if not runs:
        raise SystemExit(f"{path}: no runs in summary")
    return runs


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True,
                        help="committed BENCH_engine.json")
    parser.add_argument("--fresh", required=True,
                        help="summary from the current build")
    parser.add_argument("--min-ratio", type=float, default=0.80,
                        help="fresh/baseline events-per-sec floor "
                             "(default: 0.80)")
    parser.add_argument("--max-power-overhead", type=float, default=0.10,
                        help="allowed slowdown of BM_ClusterEnginePower vs "
                             "BM_ClusterEngine in the fresh summary "
                             "(default: 0.10)")
    parser.add_argument("--min-dispatch-speedup", type=float, default=1.8,
                        help="required BM_ScheduleDispatch/16 over "
                             "BM_ScheduleDispatchLegacy/16 ratio in the "
                             "fresh summary (default: 2.0)")
    args = parser.parse_args()

    baseline = load_runs(args.baseline)
    fresh = load_runs(args.fresh)
    failures = []

    shared = sorted(set(baseline) & set(fresh))
    if not shared:
        raise SystemExit("no benchmark names shared between baseline and "
                         "fresh summaries — wrong files?")
    for name in shared:
        ratio = fresh[name] / baseline[name]
        verdict = "ok" if ratio >= args.min_ratio else "REGRESSION"
        print(f"  {name}: {fresh[name]:.0f} vs baseline "
              f"{baseline[name]:.0f} events/s (x{ratio:.2f}) {verdict}")
        if ratio < args.min_ratio:
            failures.append(
                f"{name}: fresh rate is x{ratio:.2f} of baseline "
                f"(floor x{args.min_ratio:.2f})")
    for name in sorted(set(fresh) - set(baseline)):
        print(f"  {name}: {fresh[name]:.0f} events/s (no baseline yet)")

    missing = [name for name in REQUIRED_RUNS if name not in fresh]
    if missing:
        failures.append("fresh summary is missing required runs: " +
                        ", ".join(missing))

    new = fresh.get("BM_ScheduleDispatch/16")
    legacy = fresh.get("BM_ScheduleDispatchLegacy/16")
    if new is not None and legacy is not None:
        speedup = new / legacy
        verdict = ("ok" if speedup >= args.min_dispatch_speedup
                   else "TOO SLOW")
        print(f"  dispatch speedup vs legacy engine: x{speedup:.2f} "
              f"({new:.0f} vs {legacy:.0f} events/s) {verdict}")
        if speedup < args.min_dispatch_speedup:
            failures.append(
                f"BM_ScheduleDispatch/16 is only x{speedup:.2f} of the "
                f"legacy engine (required: "
                f"x{args.min_dispatch_speedup:.2f})")

    plain = fresh.get("BM_ClusterEngine/600")
    powered = fresh.get("BM_ClusterEnginePower/600")
    if plain is None or powered is None:
        failures.append("fresh summary is missing BM_ClusterEngine/600 or "
                        "BM_ClusterEnginePower/600 — cannot check the "
                        "energy-accounting overhead")
    else:
        overhead = 1.0 - powered / plain
        floor = (1.0 - args.max_power_overhead) * plain
        verdict = "ok" if powered >= floor else "TOO SLOW"
        print(f"  power accounting overhead: {overhead * 100.0:+.1f}% "
              f"({powered:.0f} vs {plain:.0f} events/s) {verdict}")
        if powered < floor:
            failures.append(
                f"BM_ClusterEnginePower/600 runs {overhead * 100.0:.1f}% "
                f"slower than BM_ClusterEngine/600 (allowed: "
                f"{args.max_power_overhead * 100.0:.0f}%)")

    if failures:
        print("check_engine_rate: FAIL", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("check_engine_rate: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
