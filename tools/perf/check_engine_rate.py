#!/usr/bin/env python3
"""Engine-rate regression gate (stdlib only).

Compares a fresh bench/engine_rate summary against the committed baseline
(BENCH_engine.json at the repo root) and fails on:

  1. regression: any benchmark present in BOTH summaries whose fresh
     events/sec falls below ``--min-ratio`` (default 0.80, i.e. a >20%
     drop) of the committed figure. CI runners are noisy, which is why the
     bar is 20% and not 5%; a real engine regression (an O(n) scan in the
     event loop, an accidental allocation per event) blows straight
     through it.
  2. power overhead: the energy-accounting run (BM_ClusterEnginePower)
     must stay within ``--max-power-overhead`` (default 0.10) of the plain
     run *in the same fresh summary* — both sides ran on the same machine
     seconds apart, so this ratio is far less noisy than the cross-commit
     one. This holds the per-event power bookkeeping at O(1).

Usage:
  python3 tools/perf/check_engine_rate.py \
      --baseline BENCH_engine.json --fresh BENCH_fresh.json
"""

import argparse
import json
import sys


def load_runs(path):
    """Return {benchmark name: events_per_s} from an engine_rate summary."""
    with open(path, "r", encoding="utf-8") as f:
        summary = json.load(f)
    if summary.get("bench") != "engine_rate":
        raise SystemExit(f"{path}: not an engine_rate summary")
    runs = {}
    for run in summary.get("runs", []):
        name = run["name"]
        rate = float(run["events_per_s"])
        if rate <= 0.0:
            raise SystemExit(f"{path}: {name} has non-positive events_per_s")
        runs[name] = rate
    if not runs:
        raise SystemExit(f"{path}: no runs in summary")
    return runs


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True,
                        help="committed BENCH_engine.json")
    parser.add_argument("--fresh", required=True,
                        help="summary from the current build")
    parser.add_argument("--min-ratio", type=float, default=0.80,
                        help="fresh/baseline events-per-sec floor "
                             "(default: 0.80)")
    parser.add_argument("--max-power-overhead", type=float, default=0.10,
                        help="allowed slowdown of BM_ClusterEnginePower vs "
                             "BM_ClusterEngine in the fresh summary "
                             "(default: 0.10)")
    args = parser.parse_args()

    baseline = load_runs(args.baseline)
    fresh = load_runs(args.fresh)
    failures = []

    shared = sorted(set(baseline) & set(fresh))
    if not shared:
        raise SystemExit("no benchmark names shared between baseline and "
                         "fresh summaries — wrong files?")
    for name in shared:
        ratio = fresh[name] / baseline[name]
        verdict = "ok" if ratio >= args.min_ratio else "REGRESSION"
        print(f"  {name}: {fresh[name]:.0f} vs baseline "
              f"{baseline[name]:.0f} events/s (x{ratio:.2f}) {verdict}")
        if ratio < args.min_ratio:
            failures.append(
                f"{name}: fresh rate is x{ratio:.2f} of baseline "
                f"(floor x{args.min_ratio:.2f})")
    for name in sorted(set(fresh) - set(baseline)):
        print(f"  {name}: {fresh[name]:.0f} events/s (no baseline yet)")

    plain = fresh.get("BM_ClusterEngine/600")
    powered = fresh.get("BM_ClusterEnginePower/600")
    if plain is None or powered is None:
        failures.append("fresh summary is missing BM_ClusterEngine/600 or "
                        "BM_ClusterEnginePower/600 — cannot check the "
                        "energy-accounting overhead")
    else:
        overhead = 1.0 - powered / plain
        floor = (1.0 - args.max_power_overhead) * plain
        verdict = "ok" if powered >= floor else "TOO SLOW"
        print(f"  power accounting overhead: {overhead * 100.0:+.1f}% "
              f"({powered:.0f} vs {plain:.0f} events/s) {verdict}")
        if powered < floor:
            failures.append(
                f"BM_ClusterEnginePower/600 runs {overhead * 100.0:.1f}% "
                f"slower than BM_ClusterEngine/600 (allowed: "
                f"{args.max_power_overhead * 100.0:.0f}%)")

    if failures:
        print("check_engine_rate: FAIL", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("check_engine_rate: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
