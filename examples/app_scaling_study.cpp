// Strong-scaling campaign driver: pick an application and a node range on
// the command line, get the scaling table, parallel efficiency and the
// CTE-Arm/MareNostrum-4 comparison — the Section V methodology of the
// paper as a reusable tool.
//
//   example_app_scaling_study --app=nemo --min-nodes=8 --max-nodes=64
//   example_app_scaling_study --app=wrf --csv=wrf.csv
#include <cstdio>
#include <functional>
#include <memory>
#include <iostream>
#include <string>

#include "apps/alya.h"
#include "apps/gromacs.h"
#include "apps/nemo.h"
#include "apps/openifs.h"
#include "apps/wrf.h"
#include "arch/configs.h"
#include "arch/machine_io.h"
#include "report/table.h"
#include "util/cli.h"
#include "util/csv.h"

using namespace ctesim;

namespace {

/// Returns the app's principal metric (lower is better) or a negative
/// value when the configuration does not fit in memory.
using Runner = std::function<double(const arch::MachineModel&, int nodes)>;

Runner runner_for(const std::string& app) {
  if (app == "alya") {
    return [](const arch::MachineModel& m, int nodes) {
      const auto r = apps::run_alya(m, nodes);
      return r.fits_memory ? r.time_per_step : -1.0;
    };
  }
  if (app == "nemo") {
    return [](const arch::MachineModel& m, int nodes) {
      const auto r = apps::run_nemo(m, nodes);
      return r.fits_memory ? r.total_time : -1.0;
    };
  }
  if (app == "gromacs") {
    return [](const arch::MachineModel& m, int nodes) {
      return apps::run_gromacs(m, nodes * 8).days_per_ns;
    };
  }
  if (app == "openifs") {
    return [](const arch::MachineModel& m, int nodes) {
      apps::OpenIfsConfig config;
      config.input = apps::tc0511l91();
      const auto r = apps::run_openifs_nodes(m, nodes, config);
      return r.fits_memory ? r.seconds_per_day : -1.0;
    };
  }
  if (app == "wrf") {
    return [](const arch::MachineModel& m, int nodes) {
      return apps::run_wrf(m, nodes).total_time;
    };
  }
  return {};
}

}  // namespace

int main(int argc, char** argv) {
  std::string app = "nemo";
  std::int64_t min_nodes = 8;
  std::int64_t max_nodes = 64;
  std::string csv_path;
  std::string machine_file;
  Cli cli("app_scaling_study", "strong-scaling campaign over both machines");
  cli.option("app", &app, "alya | nemo | gromacs | openifs | wrf")
      .option("min-nodes", &min_nodes, "first node count")
      .option("max-nodes", &max_nodes, "last node count (doubling sweep)")
      .option("machine", &machine_file,
              "INI machine file replacing CTE-Arm (see examples/machines/)")
      .option("csv", &csv_path, "optional CSV output path");
  if (!cli.parse(argc, argv)) return 0;

  const Runner run = runner_for(app);
  if (!run) {
    std::fprintf(stderr, "unknown app '%s'\n", app.c_str());
    return 1;
  }

  const auto cte = machine_file.empty() ? arch::cte_arm()
                                        : arch::load_machine_file(machine_file);
  const auto mn4 = arch::marenostrum4();
  std::printf("comparing %s against %s\n\n", cte.name.c_str(),
              mn4.name.c_str());
  report::Table table(app + " strong scaling",
                      {"nodes", "machine A", "eff%", "MN4", "eff%",
                       "slowdown"});
  std::unique_ptr<CsvWriter> csv;
  if (!csv_path.empty()) {
    csv = std::make_unique<CsvWriter>(
        csv_path, std::vector<std::string>{"nodes", "cte", "mn4"});
  }
  double cte_base = -1.0;
  double mn4_base = -1.0;
  std::int64_t base_nodes = 0;
  for (std::int64_t nodes = min_nodes; nodes <= max_nodes; nodes *= 2) {
    const double a = run(cte, static_cast<int>(nodes));
    const double b = run(mn4, static_cast<int>(nodes));
    if (a < 0.0 || b < 0.0) {
      table.row({std::to_string(nodes), a < 0 ? "NP" : report::fixed(a, 3),
                 "-", b < 0 ? "NP" : report::fixed(b, 3), "-", "-"});
      continue;
    }
    if (cte_base < 0.0) {
      cte_base = a;
      mn4_base = b;
      base_nodes = nodes;
    }
    const double scale = static_cast<double>(nodes) / base_nodes;
    table.row({std::to_string(nodes), report::fixed(a, 3),
               report::fixed(100.0 * cte_base / a / scale, 0),
               report::fixed(b, 3),
               report::fixed(100.0 * mn4_base / b / scale, 0),
               report::fixed(a / b, 2)});
    if (csv) {
      csv->row(std::vector<double>{static_cast<double>(nodes), a, b});
    }
  }
  table.print(std::cout);
  std::printf(
      "\nmetric: %s (lower is better); eff%% = parallel efficiency vs the "
      "first fitting node count.\n",
      app == "gromacs" ? "days/ns" : "seconds");
  return 0;
}
