// Batch-queue walkthrough: submit a stream of jobs to the simulated
// CTE-Arm queue and see what the scheduler does with it.
//
//   1. Build the runtime model and a synthetic 150-job workload.
//   2. Run it FCFS and with EASY backfill — same jobs, same placement.
//   3. Inspect a few per-job records and the fragmentation timeline.
//   4. Round-trip the workload through a CSV trace (the replay path).
//
// Build & run:  ./build/examples/example_batch_queue
#include <cstdio>

#include "arch/configs.h"
#include "batch/cluster.h"
#include "batch/metrics.h"
#include "batch/workload.h"

using namespace ctesim;

int main() {
  // --- 1. model + workload -------------------------------------------
  const batch::RuntimeModel model(arch::cte_arm());
  batch::WorkloadConfig config;
  config.num_jobs = 150;
  config.mean_interarrival_s = 12.0;
  config.burst_fraction = 0.25;
  const auto jobs = batch::generate(config, model, /*seed=*/7);
  std::printf("workload: %d jobs, first arrives %.1fs, last %.1fs\n",
              config.num_jobs, jobs.front().arrival_s,
              jobs.back().arrival_s);

  // --- 2. FCFS vs EASY backfill --------------------------------------
  for (auto queue :
       {batch::QueuePolicy::kFcfs, batch::QueuePolicy::kEasyBackfill}) {
    batch::ClusterOptions options;
    options.queue = queue;
    options.placement = sched::Policy::kContiguous;
    const auto result = batch::run_cluster(model, jobs, options);
    const auto m = batch::summarize(result, model.machine().num_nodes);
    std::printf(
        "  %-5s queue: util %.3f, makespan %.2f h, mean wait %.0f s, "
        "mean bounded slowdown %.2f\n",
        batch::name_of(queue), m.utilization, m.makespan_s / 3600.0,
        m.mean_wait_s, m.mean_bounded_slowdown);
  }

  // --- 3. look inside one run ----------------------------------------
  batch::ClusterOptions options;
  const auto result = batch::run_cluster(model, jobs, options);
  std::printf("\nfirst three jobs (EASY, contiguous placement):\n");
  for (int i = 0; i < 3; ++i) {
    const auto& r = result.records[static_cast<std::size_t>(i)];
    std::printf(
        "  job %2d [%s]: %2d nodes, wait %6.1f s, ran %6.1f s "
        "(hops %.2f, placement slowdown %.3f)\n",
        r.job.id, r.job.profile.name, r.job.nodes, r.wait_s(),
        r.runtime_s(), r.mean_hops, r.placement_slowdown);
  }
  const auto& frag = result.frag_timeline;
  std::printf("fragmentation timeline: %zu samples, peak %.3f\n",
              frag.size(),
              [&] {
                double peak = 0.0;
                for (const auto& s : frag) {
                  if (s.fragmentation > peak) peak = s.fragmentation;
                }
                return peak;
              }());

  // --- 4. trace round-trip -------------------------------------------
  const char* path = "batch_queue_trace.csv";
  batch::write_trace(jobs, model, path);
  const auto replayed = batch::load_trace(path);
  std::printf(
      "\nwrote %zu jobs to %s and replayed them back (fixed runtimes) — "
      "feed any recorded queue through run_cluster the same way.\n",
      replayed.size(), path);
  return 0;
}
