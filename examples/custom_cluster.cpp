// What-if study on a user-defined machine.
//
// The paper concludes that the A64FX applications are limited by (a) the
// compiler not emitting SVE and (b) the weak out-of-order scalar core.
// ctesim machines are plain structs, so both hypotheses are one field
// away. This example builds two hypothetical variants of CTE-Arm:
//
//   "cte-better-compiler" — same silicon, but a compiler that vectorizes
//                           like the vendor toolchain (Fujitsu rows)
//   "cte-fat-core"        — same compiler (GNU), but a Skylake-class
//                           out-of-order scalar core
//
// and measures how much of the Alya gap each one closes.
#include <cstdio>

#include "apps/alya.h"
#include "arch/calibration.h"
#include "arch/configs.h"

using namespace ctesim;

namespace {

double alya_step(const arch::MachineModel& machine, int nodes) {
  return apps::run_alya(machine, nodes).time_per_step;
}

}  // namespace

int main() {
  const auto cte = arch::cte_arm();
  const auto mn4 = arch::marenostrum4();
  const int nodes = 16;

  // Hypothesis A: fatten the scalar core to Skylake-class OoO, keeping
  // the GNU-quality (scalar) code. One field on a copied machine.
  arch::MachineModel fat_core = cte;
  fat_core.name = "CTE-Arm (fat scalar core)";
  fat_core.node.core.ooo_scalar_efficiency =
      arch::calib::kSkxOooEfficiency;

  // Hypothesis B: also double the scalar issue width (an A64FX
  // successor?). For the compiler-side hypothesis, see
  // bench/ablation_vectorization.
  arch::MachineModel successor = fat_core;
  successor.name = "CTE-Arm (successor core)";
  successor.node.core.scalar_fma_per_cycle = 4;

  std::printf("Alya TestCaseB, %d nodes, seconds per time step:\n\n", nodes);
  const double baseline_mn4 = alya_step(mn4, nodes);
  const arch::MachineModel* variants[] = {&cte, &fat_core, &successor,
                                          &mn4};
  for (const arch::MachineModel* m : variants) {
    const double t = alya_step(*m, nodes);
    std::printf("  %-28s %7.3f s/step  (%.2fx vs MareNostrum 4)\n",
                m->name.c_str(), t, t / baseline_mn4);
  }

  std::printf(
      "\nReading: with GNU-quality scalar code, upgrading the A64FX "
      "out-of-order engine to Skylake class closes most of the gap — the "
      "quantitative version of the paper's Section VI conclusion that the "
      "slowdown is a scalar-core + compiler problem, not a memory one.\n");
  return 0;
}
