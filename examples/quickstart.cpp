// Quickstart: the ctesim workflow in one file.
//
//   1. Get a machine model (the paper's two systems ship built in).
//   2. Ask simple questions analytically (peaks, STREAM bandwidth).
//   3. Run a simulated MPI program on it (coroutine per rank).
//   4. Compare machines on one of the bundled application proxies.
//
// Build & run:  ./build/examples/example_quickstart
#include <cstdio>

#include "apps/alya.h"
#include "arch/configs.h"
#include "mem/stream_sim.h"
#include "roofline/kernel_library.h"
#include "simmpi/world.h"
#include "util/units.h"

using namespace ctesim;

int main() {
  // --- 1. machines ---------------------------------------------------
  const arch::MachineModel cte = arch::cte_arm();
  const arch::MachineModel mn4 = arch::marenostrum4();
  std::printf("machines:\n");
  for (const auto* m : {&cte, &mn4}) {
    std::printf("  %-14s %3d nodes x %d cores, %s peak/node, %s\n",
                m->name.c_str(), m->num_nodes, m->node.core_count(),
                units::format_flops(m->node.peak_flops()).c_str(),
                m->interconnect.name.c_str());
  }

  // --- 2. analytic questions -----------------------------------------
  const mem::StreamSimulator stream(cte);
  std::printf("\nSTREAM Triad on %s, 24 OpenMP threads (C): %s\n",
              cte.name.c_str(),
              units::format_bandwidth(stream.omp_bandwidth(
                  mem::StreamKernel::kTriad, 24, arch::Language::kC))
                  .c_str());

  // --- 3. a simulated MPI program ------------------------------------
  // Eight ranks: each computes a Triad-like sweep, exchanges a halo ring,
  // then all ranks reduce. The body is a C++20 coroutine; time is
  // simulated, so this "800-core run" finishes instantly on a laptop.
  mpi::WorldOptions options;
  options.machine = cte;
  mpi::World world(std::move(options), mpi::Placement::per_node(cte.node, 8));
  const double makespan = world.run([](mpi::Rank& rank) -> sim::Task<> {
    const int right = (rank.id() + 1) % rank.size();
    const int left = (rank.id() - 1 + rank.size()) % rank.size();
    for (int step = 0; step < 10; ++step) {
      co_await rank.compute(roofline::kernels::stream_triad(), 10'000'000);
      co_await rank.sendrecv(right, 64 * 1024, left);
    }
    co_await rank.allreduce(8);
  });
  std::printf(
      "\nsimulated 8-node ring program on %s: %.3f ms of machine time "
      "(%llu engine events)\n",
      cte.name.c_str(), makespan * 1e3,
      static_cast<unsigned long long>(world.engine().events_processed()));

  // --- 4. compare machines on an application proxy -------------------
  std::printf("\nAlya (TestCaseB) at 16 nodes:\n");
  for (const auto* m : {&cte, &mn4}) {
    const auto r = apps::run_alya(*m, 16);
    std::printf("  %-14s %.3f s/step (assembly %.3f, solver %.3f)\n",
                m->name.c_str(), r.time_per_step, r.assembly_per_step,
                r.solver_per_step);
  }
  const double slowdown = apps::run_alya(cte, 16).time_per_step /
                          apps::run_alya(mn4, 16).time_per_step;
  std::printf(
      "  -> the untuned code runs %.1fx slower on the A64FX system — the "
      "paper's headline result.\n",
      slowdown);
  return 0;
}
