// Timeline view of a simulated run: record a trace through the
// observability subsystem (src/trace/), render an ASCII Gantt (one lane per
// rank), and export the raw records as CSV or as a Chrome trace for
// chrome://tracing / Perfetto — the Paraver-style workflow the BSC authors
// of the paper use, in miniature.
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "arch/configs.h"
#include "report/gantt.h"
#include "roofline/kernel_library.h"
#include "simmpi/world.h"
#include "trace/chrome.h"
#include "util/cli.h"

using namespace ctesim;

int main(int argc, char** argv) {
  std::string csv_path;
  std::string trace_path;
  std::int64_t ranks = 6;
  Cli cli("trace_timeline", "record and render an execution timeline");
  cli.option("ranks", &ranks, "number of simulated ranks")
      .option("csv", &csv_path, "write the raw trace as CSV")
      .option("trace", &trace_path,
              "write a Chrome trace (chrome://tracing / Perfetto)");
  if (!cli.parse(argc, argv)) return 0;

  mpi::WorldOptions options;
  options.machine = arch::cte_arm();
  options.trace = true;
  options.compute_jitter = 0.03;
  mpi::World world(std::move(options),
                   mpi::Placement::per_node(arch::cte_arm().node,
                                            static_cast<int>(ranks)));

  // A miniature bulk-synchronous solver: unbalanced compute, a ring halo
  // exchange, then a reduction — enough structure for a readable timeline.
  world.run([](mpi::Rank& r) -> sim::Task<> {
    const int right = (r.id() + 1) % r.size();
    const int left = (r.id() - 1 + r.size()) % r.size();
    for (int step = 0; step < 3; ++step) {
      // Rank-dependent load: the timeline shows the imbalance directly.
      co_await r.compute(roofline::kernels::stream_triad(),
                         5e6 * (1.0 + 0.4 * r.id()));
      co_await r.sendrecv(right, 256 * 1024, left);
      co_await r.allreduce(8);
    }
  });

  report::Gantt gantt("3 steps of an unbalanced solver on CTE-Arm",
                      *world.recorder(), world.num_ranks(), 72);
  gantt.print(std::cout);

  std::printf(
      "\nThe staircase of '#' lanes is the injected load imbalance; the "
      "'<' tails show the fast ranks waiting in the reduction for the "
      "slowest one — the pattern that makes 'time of the slowest process' "
      "the right metric (as the paper reports for Alya).\n");

  if (!csv_path.empty()) {
    world.write_trace_csv(csv_path);
    std::printf("raw trace written to %s (%zu records)\n", csv_path.c_str(),
                world.recorder()->spans().size());
  }
  if (!trace_path.empty()) {
    trace::write_chrome_trace(*world.recorder(), trace_path);
    std::printf(
        "Chrome trace written to %s — open in chrome://tracing or "
        "https://ui.perfetto.dev\n",
        trace_path.c_str());
  }
  return 0;
}
