// Export the built-in machine models as INI files — the starting point for
// defining your own machine: dump CTE-Arm or MareNostrum 4, edit fields,
// feed the file back to any experiment (e.g. example_app_scaling_study
// --machine=my_machine.ini).
#include <cstdio>
#include <string>

#include "arch/configs.h"
#include "arch/machine_io.h"
#include "util/cli.h"

using namespace ctesim;

int main(int argc, char** argv) {
  std::string dir = ".";
  Cli cli("export_machines", "write the built-in machines as INI files");
  cli.option("dir", &dir, "output directory");
  if (!cli.parse(argc, argv)) return 0;

  const struct {
    const char* file;
    arch::MachineModel machine;
  } exports[] = {
      {"cte_arm.ini", arch::cte_arm()},
      {"marenostrum4.ini", arch::marenostrum4()},
  };
  for (const auto& e : exports) {
    const std::string path = dir + "/" + e.file;
    arch::save_machine_file(path, e.machine);
    std::printf("wrote %-40s (%s, %d nodes)\n", path.c_str(),
                e.machine.name.c_str(), e.machine.num_nodes);
  }
  std::printf(
      "\nEdit any field and run experiments against the file; parsing "
      "validates the machine and reports problems with line numbers.\n");
  return 0;
}
