// Finding sick nodes from measurements, as the paper did in Fig. 4.
//
// The study scripts receive-path degradation *windows* on a few unknown
// nodes through the fault subsystem (fault::FaultTimeline), runs the
// all-pairs OSU-style sweep while the windows are active, and *detects*
// the faulty nodes purely from the measured bandwidth matrix (row/column
// medians) — exactly the workflow a site operator would use. It also
// demonstrates the asymmetric signature (a sick receiver shows a dark row
// but a clean column) and that the same sweep after the windows close
// measures a clean machine: transient faults leave no permanent mark.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "arch/configs.h"
#include "fault/fault.h"
#include "net/network.h"
#include "util/rng.h"
#include "util/stats.h"

using namespace ctesim;

namespace {

/// All-pairs sweep at `now_s`; returns the nodes whose receive median
/// falls far below the global median (and prints the sick rows).
std::vector<int> detect_sick_receivers(const net::Network& network, int n,
                                       double now_s) {
  constexpr std::uint64_t kMsgSize = 64 * 1024;
  std::vector<std::vector<double>> by_receiver(static_cast<std::size_t>(n));
  std::vector<std::vector<double>> by_sender(static_cast<std::size_t>(n));
  for (int src = 0; src < n; ++src) {
    for (int dst = 0; dst < n; ++dst) {
      if (src == dst) continue;
      const double bw =
          network.transfer(src, dst, kMsgSize, now_s).bandwidth;
      by_receiver[static_cast<std::size_t>(dst)].push_back(bw);
      by_sender[static_cast<std::size_t>(src)].push_back(bw);
    }
  }

  std::vector<double> all;
  for (const auto& v : by_receiver) {
    all.insert(all.end(), v.begin(), v.end());
  }
  const double global_median = percentile(all, 0.5);
  std::printf("t=%.0f s: global median bandwidth at 64 KiB: %.2f GB/s\n",
              now_s, global_median / 1e9);
  std::vector<int> detected;
  for (int node = 0; node < n; ++node) {
    const double recv =
        percentile(by_receiver[static_cast<std::size_t>(node)], 0.5);
    const double send =
        percentile(by_sender[static_cast<std::size_t>(node)], 0.5);
    const bool sick_recv = recv < 0.6 * global_median;
    const bool sick_send = send < 0.6 * global_median;
    if (sick_recv || sick_send) {
      detected.push_back(node);
      std::printf("  node %-4d recv %7.2f GB/s  send %7.2f GB/s  %s\n",
                  node, recv / 1e9, send / 1e9,
                  sick_recv && !sick_send
                      ? "degraded RECEIVER (arms0b1-11c signature)"
                      : "degraded");
    }
  }
  if (detected.empty()) std::printf("  no degraded nodes\n");
  return detected;
}

}  // namespace

int main() {
  const auto machine = arch::cte_arm();
  net::Network network(machine.interconnect, machine.num_nodes);
  const int n = machine.num_nodes;

  // Script three transient receive-path faults at "unknown" locations:
  // each is a degradation window over [100 s, 500 s) of operational time.
  Rng rng(2026);
  fault::FaultTimeline timeline;
  std::vector<int> injected;
  while (injected.size() < 3) {
    const int node = static_cast<int>(rng.uniform_int(0, n - 1));
    if (std::find(injected.begin(), injected.end(), node) == injected.end()) {
      injected.push_back(node);
      timeline.degrade_recv(100.0, 500.0, node, rng.uniform(0.1, 0.4));
    }
  }
  std::sort(injected.begin(), injected.end());
  timeline.validate_or_throw(n);
  fault::apply_recv_degradations(timeline, &network);

  // Sweep while the windows are active: the faults must show up...
  const std::vector<int> detected = detect_sick_receivers(network, n, 300.0);
  // ...and again after they close: the machine must measure clean.
  const std::vector<int> after = detect_sick_receivers(network, n, 600.0);

  std::printf("\ninjected faults at:");
  for (int node : injected) std::printf(" %d", node);
  std::printf("\ndetected faults at:");
  for (int node : detected) std::printf(" %d", node);
  const bool ok = detected == injected && after.empty();
  std::printf("\n%s\n",
              ok ? "all faults located from measurements alone, and the "
                   "machine measured clean after the windows closed."
                 : "DETECTION MISMATCH");
  return ok ? 0 : 1;
}
