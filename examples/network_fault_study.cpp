// Finding sick nodes from measurements, as the paper did in Fig. 4.
//
// The study injects receive-path degradations on a few unknown nodes,
// runs the all-pairs OSU-style sweep, and then *detects* the faulty nodes
// purely from the measured bandwidth matrix (row/column medians), exactly
// the workflow a site operator would use. Also demonstrates the
// asymmetric signature: a sick receiver shows a dark row but a clean
// column.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "arch/configs.h"
#include "net/network.h"
#include "util/rng.h"
#include "util/stats.h"

using namespace ctesim;

int main() {
  const auto machine = arch::cte_arm();
  net::Network network(machine.interconnect, machine.num_nodes);
  const int n = machine.num_nodes;

  // Inject three faults at "unknown" locations.
  Rng rng(2026);
  std::vector<int> injected;
  while (injected.size() < 3) {
    const int node = static_cast<int>(rng.uniform_int(0, n - 1));
    if (std::find(injected.begin(), injected.end(), node) == injected.end()) {
      injected.push_back(node);
      network.set_recv_degradation(node, rng.uniform(0.1, 0.4));
    }
  }
  std::sort(injected.begin(), injected.end());

  // Measure all pairs at a mid-size message.
  constexpr std::uint64_t kMsgSize = 64 * 1024;
  std::vector<std::vector<double>> by_receiver(static_cast<std::size_t>(n));
  std::vector<std::vector<double>> by_sender(static_cast<std::size_t>(n));
  for (int src = 0; src < n; ++src) {
    for (int dst = 0; dst < n; ++dst) {
      if (src == dst) continue;
      const double bw = network.transfer(src, dst, kMsgSize).bandwidth;
      by_receiver[static_cast<std::size_t>(dst)].push_back(bw);
      by_sender[static_cast<std::size_t>(src)].push_back(bw);
    }
  }

  // Detection: a node whose receive median is far below the global median
  // while its send median is normal has a sick receive path.
  std::vector<double> all;
  for (const auto& v : by_receiver) {
    all.insert(all.end(), v.begin(), v.end());
  }
  const double global_median = percentile(all, 0.5);
  std::printf("global median bandwidth at 64 KiB: %.2f GB/s\n",
              global_median / 1e9);
  std::printf("\n%-6s %-14s %-14s %s\n", "node", "recv median", "send median",
              "verdict");
  std::vector<int> detected;
  for (int node = 0; node < n; ++node) {
    const double recv = percentile(by_receiver[static_cast<std::size_t>(node)], 0.5);
    const double send = percentile(by_sender[static_cast<std::size_t>(node)], 0.5);
    const bool sick_recv = recv < 0.6 * global_median;
    const bool sick_send = send < 0.6 * global_median;
    if (sick_recv || sick_send) {
      detected.push_back(node);
      std::printf("%-6d %10.2f GB/s %10.2f GB/s %s\n", node, recv / 1e9,
                  send / 1e9,
                  sick_recv && !sick_send
                      ? "degraded RECEIVER (arms0b1-11c signature)"
                      : "degraded");
    }
  }

  std::printf("\ninjected faults at:");
  for (int node : injected) std::printf(" %d", node);
  std::printf("\ndetected faults at:");
  for (int node : detected) std::printf(" %d", node);
  const bool ok = detected == injected;
  std::printf("\n%s\n", ok ? "all faults located from measurements alone."
                           : "DETECTION MISMATCH");
  return ok ? 0 : 1;
}
