#include "trace/recorder.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "util/check.h"
#include "util/csv.h"

namespace ctesim::trace {

std::string label(Track track) {
  switch (track.kind) {
    case TrackKind::kGlobal:
      return "sim";
    case TrackKind::kRank:
      return "rank " + std::to_string(track.index);
    case TrackKind::kNode:
      return "node " + std::to_string(track.index);
    case TrackKind::kJob:
      return "job " + std::to_string(track.index);
    case TrackKind::kWorker:
      return "worker " + std::to_string(track.index);
  }
  return "?";
}

void Recorder::span(Track track, const char* category, std::string name,
                    std::string detail, sim::Time start, sim::Time end,
                    std::uint64_t bytes, int peer) {
  if (!enabled_) return;
  CTESIM_EXPECTS(end >= start);
  spans_.push_back(Span{track, category, std::move(name), std::move(detail),
                        start, end, bytes, peer});
}

void Recorder::begin(Track track, const char* category, std::string name,
                     std::string detail, sim::Time t) {
  if (!enabled_) return;
  open_[track].push_back(
      Span{track, category, std::move(name), std::move(detail), t, t, 0, -1});
}

void Recorder::end(Track track, sim::Time t) {
  if (!enabled_) return;
  auto it = open_.find(track);
  CTESIM_EXPECTS(it != open_.end() && !it->second.empty());
  Span span = std::move(it->second.back());
  it->second.pop_back();
  CTESIM_EXPECTS(t >= span.start);
  span.end = t;
  spans_.push_back(std::move(span));
}

int Recorder::open_depth(Track track) const {
  auto it = open_.find(track);
  return it == open_.end() ? 0 : static_cast<int>(it->second.size());
}

void Recorder::instant(Track track, const char* category, std::string name,
                       std::string detail, sim::Time t) {
  if (!enabled_) return;
  instants_.push_back(
      Instant{track, category, std::move(name), std::move(detail), t});
}

void Recorder::counter(Track track, const char* category, const char* name,
                       sim::Time t, double value) {
  if (!enabled_) return;
  counters_.push_back(CounterSample{track, category, name, t, value});
}

std::vector<CounterSample> Recorder::counter_series(const char* name,
                                                    Track track) const {
  std::vector<CounterSample> series;
  for (const CounterSample& s : counters_) {
    if (s.track == track && std::strcmp(s.name, name) == 0) {
      series.push_back(s);
    }
  }
  return series;
}

std::vector<Track> Recorder::tracks() const {
  std::vector<Track> all;
  for (const Span& s : spans_) all.push_back(s.track);
  for (const Instant& i : instants_) all.push_back(i.track);
  for (const CounterSample& c : counters_) all.push_back(c.track);
  std::sort(all.begin(), all.end());
  all.erase(std::unique(all.begin(), all.end()), all.end());
  return all;
}

void Recorder::merge_from(const std::vector<const Recorder*>& parts) {
  for (const Recorder* part : parts) {
    if (!part || part == this) continue;
    spans_.insert(spans_.end(), part->spans_.begin(), part->spans_.end());
    instants_.insert(instants_.end(), part->instants_.begin(),
                     part->instants_.end());
    counters_.insert(counters_.end(), part->counters_.begin(),
                     part->counters_.end());
  }
  // Total orders over every field: the sorted lists depend only on the event
  // multiset, so any partition of the same events merges to identical bytes.
  std::sort(spans_.begin(), spans_.end(), [](const Span& a, const Span& b) {
    if (a.start != b.start) return a.start < b.start;
    if (a.end != b.end) return a.end < b.end;
    if (!(a.track == b.track)) return a.track < b.track;
    if (const int c = std::strcmp(a.category, b.category)) return c < 0;
    if (a.name != b.name) return a.name < b.name;
    if (a.detail != b.detail) return a.detail < b.detail;
    if (a.bytes != b.bytes) return a.bytes < b.bytes;
    return a.peer < b.peer;
  });
  std::sort(instants_.begin(), instants_.end(),
            [](const Instant& a, const Instant& b) {
              if (a.time != b.time) return a.time < b.time;
              if (!(a.track == b.track)) return a.track < b.track;
              if (const int c = std::strcmp(a.category, b.category)) {
                return c < 0;
              }
              if (a.name != b.name) return a.name < b.name;
              return a.detail < b.detail;
            });
  std::sort(counters_.begin(), counters_.end(),
            [](const CounterSample& a, const CounterSample& b) {
              if (a.time != b.time) return a.time < b.time;
              if (!(a.track == b.track)) return a.track < b.track;
              if (const int c = std::strcmp(a.category, b.category)) {
                return c < 0;
              }
              if (const int c = std::strcmp(a.name, b.name)) return c < 0;
              return a.value < b.value;
            });
}

void Recorder::write_counters_csv(const std::string& path) const {
  CsvWriter csv(path, {"time_s", "track", "category", "name", "value"});
  char buf[32];
  for (const CounterSample& s : counters_) {
    std::snprintf(buf, sizeof(buf), "%.12g", s.value);
    csv.row(std::vector<std::string>{std::to_string(sim::to_seconds(s.time)),
                                     label(s.track), s.category, s.name,
                                     buf});
  }
}

}  // namespace ctesim::trace
