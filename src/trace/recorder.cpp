#include "trace/recorder.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "util/check.h"
#include "util/csv.h"

namespace ctesim::trace {

std::string label(Track track) {
  switch (track.kind) {
    case TrackKind::kGlobal:
      return "sim";
    case TrackKind::kRank:
      return "rank " + std::to_string(track.index);
    case TrackKind::kNode:
      return "node " + std::to_string(track.index);
    case TrackKind::kJob:
      return "job " + std::to_string(track.index);
  }
  return "?";
}

void Recorder::span(Track track, const char* category, std::string name,
                    std::string detail, sim::Time start, sim::Time end,
                    std::uint64_t bytes, int peer) {
  if (!enabled_) return;
  CTESIM_EXPECTS(end >= start);
  spans_.push_back(Span{track, category, std::move(name), std::move(detail),
                        start, end, bytes, peer});
}

void Recorder::begin(Track track, const char* category, std::string name,
                     std::string detail, sim::Time t) {
  if (!enabled_) return;
  open_[track].push_back(
      Span{track, category, std::move(name), std::move(detail), t, t, 0, -1});
}

void Recorder::end(Track track, sim::Time t) {
  if (!enabled_) return;
  auto it = open_.find(track);
  CTESIM_EXPECTS(it != open_.end() && !it->second.empty());
  Span span = std::move(it->second.back());
  it->second.pop_back();
  CTESIM_EXPECTS(t >= span.start);
  span.end = t;
  spans_.push_back(std::move(span));
}

int Recorder::open_depth(Track track) const {
  auto it = open_.find(track);
  return it == open_.end() ? 0 : static_cast<int>(it->second.size());
}

void Recorder::instant(Track track, const char* category, std::string name,
                       std::string detail, sim::Time t) {
  if (!enabled_) return;
  instants_.push_back(
      Instant{track, category, std::move(name), std::move(detail), t});
}

void Recorder::counter(Track track, const char* category, const char* name,
                       sim::Time t, double value) {
  if (!enabled_) return;
  counters_.push_back(CounterSample{track, category, name, t, value});
}

std::vector<CounterSample> Recorder::counter_series(const char* name,
                                                    Track track) const {
  std::vector<CounterSample> series;
  for (const CounterSample& s : counters_) {
    if (s.track == track && std::strcmp(s.name, name) == 0) {
      series.push_back(s);
    }
  }
  return series;
}

std::vector<Track> Recorder::tracks() const {
  std::vector<Track> all;
  for (const Span& s : spans_) all.push_back(s.track);
  for (const Instant& i : instants_) all.push_back(i.track);
  for (const CounterSample& c : counters_) all.push_back(c.track);
  std::sort(all.begin(), all.end());
  all.erase(std::unique(all.begin(), all.end()), all.end());
  return all;
}

void Recorder::write_counters_csv(const std::string& path) const {
  CsvWriter csv(path, {"time_s", "track", "category", "name", "value"});
  char buf[32];
  for (const CounterSample& s : counters_) {
    std::snprintf(buf, sizeof(buf), "%.12g", s.value);
    csv.row(std::vector<std::string>{std::to_string(sim::to_seconds(s.time)),
                                     label(s.track), s.category, s.name,
                                     buf});
  }
}

}  // namespace ctesim::trace
