// Simulation-wide observability: one Recorder collects spans (nestable
// begin/end intervals), instant events and counter samples from every layer
// of the simulator — the engine, the simulated MPI runtime, the congestion
// model and the batch scheduler — on a shared simulated-time axis.
//
// Events are keyed by a Track (rank / node / job / the whole simulation),
// which becomes the process/thread lane when the trace is exported to the
// Chrome trace_event format (see trace/chrome.h) or dumped as CSV.
//
// Recording is deterministic: for a fixed workload and seed the recorded
// event sequence — and therefore every exported byte — is identical across
// runs. A disabled Recorder (or a null pointer at the instrumentation site)
// reduces every hook to one branch, so tracing costs nothing when off.
//
// A Recorder is NOT thread-safe. Concurrent producers (the server's worker
// pool) each own a private Recorder and combine them with merge_from(),
// which canonically orders events by (time, track, names, payload) — the
// merged trace depends only on the *set* of recorded events, never on which
// worker recorded what or in which order the parts are merged.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/time.h"

namespace ctesim::trace {

/// Which lane of the simulation an event belongs to. Exported as the
/// process (kind) and thread (index) of the Chrome trace.
enum class TrackKind : std::uint8_t {
  kGlobal = 0,  ///< simulation-wide (engine, network aggregates)
  kRank,        ///< one simulated MPI rank
  kNode,        ///< one machine node
  kJob,         ///< one batch job
  kWorker,      ///< one server worker thread (real time, not simulated)
};

/// Number of TrackKind values (sized arrays in the exporters).
inline constexpr int kNumTrackKinds = 5;

struct Track {
  TrackKind kind = TrackKind::kGlobal;
  std::int32_t index = 0;

  static constexpr Track global() { return {TrackKind::kGlobal, 0}; }
  static constexpr Track rank(int r) { return {TrackKind::kRank, r}; }
  static constexpr Track node(int n) { return {TrackKind::kNode, n}; }
  static constexpr Track job(int id) { return {TrackKind::kJob, id}; }
  static constexpr Track worker(int w) { return {TrackKind::kWorker, w}; }

  bool operator==(const Track&) const = default;
  bool operator<(const Track& other) const {
    if (kind != other.kind) return kind < other.kind;
    return index < other.index;
  }
};

/// Human-readable lane label ("sim", "rank 3", "node 7", "job 12").
std::string label(Track track);

/// A closed interval of simulated time on one track. `category` must point
/// to storage outliving the Recorder (string literals at every call site).
struct Span {
  Track track;
  const char* category = "";
  std::string name;    ///< what happened: "compute", "send", "run", ...
  std::string detail;  ///< free-form qualifier: kernel name, profile, ...
  sim::Time start = 0;
  sim::Time end = 0;
  std::uint64_t bytes = 0;  ///< payload size; 0 = not applicable
  int peer = -1;            ///< peer rank; -1 = not applicable
};

/// A point event (job submitted, job killed, ...).
struct Instant {
  Track track;
  const char* category = "";
  std::string name;
  std::string detail;
  sim::Time time = 0;
};

/// One sample of a named time series (queue depth, busy nodes, cumulative
/// queueing seconds, ...). `category` and `name` are string literals.
struct CounterSample {
  Track track;
  const char* category = "";
  const char* name = "";
  sim::Time time = 0;
  double value = 0.0;
};

class Recorder {
 public:
  explicit Recorder(bool enabled = true) : enabled_(enabled) {}
  Recorder(const Recorder&) = delete;
  Recorder& operator=(const Recorder&) = delete;

  bool enabled() const { return enabled_; }
  void set_enabled(bool on) { enabled_ = on; }

  /// Record a completed interval (both endpoints already known).
  void span(Track track, const char* category, std::string name,
            std::string detail, sim::Time start, sim::Time end,
            std::uint64_t bytes = 0, int peer = -1);

  /// Open a nested interval on `track`; every begin() must be closed by a
  /// matching end() on the same track (innermost first).
  void begin(Track track, const char* category, std::string name,
             std::string detail, sim::Time t);
  void end(Track track, sim::Time t);
  /// Open (unclosed) begin() count on a track; 0 once the track is balanced.
  int open_depth(Track track) const;

  void instant(Track track, const char* category, std::string name,
               std::string detail, sim::Time t);

  void counter(Track track, const char* category, const char* name,
               sim::Time t, double value);

  // --- queries (tests, report renderers) ---------------------------------
  /// Completed spans, in completion order (a nested child precedes its
  /// parent; begin/end pairs appear when end() fires).
  const std::vector<Span>& spans() const { return spans_; }
  const std::vector<Instant>& instants() const { return instants_; }
  const std::vector<CounterSample>& counters() const { return counters_; }

  /// Samples of one counter on one track, in recording (= time) order.
  std::vector<CounterSample> counter_series(const char* name,
                                            Track track = Track::global())
      const;

  /// Every track that any recorded event references, sorted.
  std::vector<Track> tracks() const;

  /// Dump every counter sample as CSV: time_s,track,category,name,value.
  void write_counters_csv(const std::string& path) const;

  /// Absorb the completed events of `parts` (plus anything already recorded
  /// here) and canonically re-sort all three event lists, so the result is
  /// identical for any partition of the same events across parts — the
  /// deterministic-merge half of the one-Recorder-per-worker pattern. Open
  /// begin() spans in the parts are ignored (close them before merging).
  void merge_from(const std::vector<const Recorder*>& parts);

 private:
  bool enabled_;
  std::vector<Span> spans_;
  std::vector<Instant> instants_;
  std::vector<CounterSample> counters_;
  std::map<Track, std::vector<Span>> open_;  ///< begin() stacks per track
};

}  // namespace ctesim::trace
