#include "trace/recorder_pool.h"

namespace ctesim::trace {

Recorder* RecorderPool::create() {
  util::MutexLock lock(mutex_);
  recorders_.push_back(std::make_unique<Recorder>(enabled_));
  return recorders_.back().get();
}

std::size_t RecorderPool::size() const {
  util::MutexLock lock(mutex_);
  return recorders_.size();
}

void RecorderPool::merge_into(Recorder* out) const {
  std::vector<const Recorder*> parts;
  {
    util::MutexLock lock(mutex_);
    parts.reserve(recorders_.size());
    for (const auto& rec : recorders_) parts.push_back(rec.get());
  }
  // The recorders themselves are read outside the registry lock: the
  // producers that own them are quiesced by contract (header comment), and
  // merge_from() canonicalizes ordering so the partition does not matter.
  out->merge_from(parts);
}

}  // namespace ctesim::trace
