#include "trace/chrome.h"

#include <cstdio>
#include <fstream>
#include <ostream>
#include <stdexcept>

#include "util/json.h"

namespace ctesim::trace {

namespace {

int pid_of(Track track) { return static_cast<int>(track.kind) + 1; }

const char* process_name(TrackKind kind) {
  switch (kind) {
    case TrackKind::kGlobal:
      return "simulator";
    case TrackKind::kRank:
      return "ranks";
    case TrackKind::kNode:
      return "nodes";
    case TrackKind::kJob:
      return "jobs";
    case TrackKind::kWorker:
      return "server workers";
  }
  return "?";
}

/// Picoseconds as fixed-point microseconds ("12.000345"): exact, locale-
/// independent, byte-stable — the Chrome `ts`/`dur` unit is microseconds.
std::string ts_us(sim::Time ps) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%lld.%06lld",
                static_cast<long long>(ps / 1'000'000),
                static_cast<long long>(ps % 1'000'000));
  return buf;
}

std::string number(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.12g", value);
  return buf;
}

class EventWriter {
 public:
  explicit EventWriter(std::ostream& os) : os_(os) {}

  void open() { os_ << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"; }
  void close() { os_ << "\n]}\n"; }

  /// Start one event object; the caller appends fields then calls finish().
  std::ostream& next() {
    if (!first_) os_ << ",\n";
    first_ = false;
    return os_ << "{";
  }
  void finish() { os_ << "}"; }

 private:
  std::ostream& os_;
  bool first_ = true;
};

void write_common(std::ostream& os, const char* category, Track track,
                  sim::Time t) {
  os << "\"cat\":\"" << json_escape(category) << "\",\"pid\":" << pid_of(track)
     << ",\"tid\":" << track.index << ",\"ts\":" << ts_us(t);
}

void write_args(std::ostream& os, const std::string& detail,
                std::uint64_t bytes, int peer) {
  if (detail.empty() && bytes == 0 && peer < 0) return;
  os << ",\"args\":{";
  bool first = true;
  if (!detail.empty()) {
    os << "\"detail\":\"" << json_escape(detail) << "\"";
    first = false;
  }
  if (bytes != 0) {
    if (!first) os << ",";
    os << "\"bytes\":" << bytes;
    first = false;
  }
  if (peer >= 0) {
    if (!first) os << ",";
    os << "\"peer\":" << peer;
  }
  os << "}";
}

}  // namespace

std::string json_escape(const std::string& s) { return json::escape(s); }

void write_chrome_trace(const Recorder& recorder, std::ostream& os) {
  EventWriter events(os);
  events.open();

  // Metadata first: name the process of every track kind in use and the
  // thread of every track, so Perfetto shows "ranks / rank 0" lanes.
  bool kind_seen[kNumTrackKinds] = {};
  for (Track track : recorder.tracks()) {
    const auto kind = static_cast<std::size_t>(track.kind);
    if (!kind_seen[kind]) {
      kind_seen[kind] = true;
      events.next() << "\"name\":\"process_name\",\"ph\":\"M\",\"pid\":"
                    << pid_of(track) << ",\"args\":{\"name\":\""
                    << process_name(track.kind) << "\"}";
      events.finish();
    }
    events.next() << "\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":"
                  << pid_of(track) << ",\"tid\":" << track.index
                  << ",\"args\":{\"name\":\"" << json_escape(label(track))
                  << "\"}";
    events.finish();
  }

  for (const Span& s : recorder.spans()) {
    std::ostream& e = events.next();
    e << "\"name\":\"" << json_escape(s.name) << "\",\"ph\":\"X\",";
    write_common(e, s.category, s.track, s.start);
    e << ",\"dur\":" << ts_us(s.end - s.start);
    write_args(e, s.detail, s.bytes, s.peer);
    events.finish();
  }

  for (const Instant& i : recorder.instants()) {
    std::ostream& e = events.next();
    e << "\"name\":\"" << json_escape(i.name)
      << "\",\"ph\":\"i\",\"s\":\"t\",";
    write_common(e, i.category, i.track, i.time);
    write_args(e, i.detail, 0, -1);
    events.finish();
  }

  for (const CounterSample& c : recorder.counters()) {
    std::ostream& e = events.next();
    e << "\"name\":\"" << json_escape(c.name) << "\",\"ph\":\"C\",";
    write_common(e, c.category, c.track, c.time);
    e << ",\"args\":{\"" << json_escape(c.name) << "\":" << number(c.value)
      << "}";
    events.finish();
  }

  events.close();
}

void write_chrome_trace(const Recorder& recorder, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("trace: cannot open '" + path + "' for writing");
  }
  write_chrome_trace(recorder, out);
}

}  // namespace ctesim::trace
