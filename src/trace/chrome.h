// Chrome trace_event exporter: serializes a trace::Recorder as the JSON
// object format ({"traceEvents": [...]}), loadable in chrome://tracing and
// https://ui.perfetto.dev. Track kinds map to processes, track indices to
// threads; spans become complete ("X") events, instants "i", counters "C".
//
// The output is deterministic: timestamps are integer picoseconds printed
// as fixed-point microseconds, events are written in recording order, so a
// deterministic simulation exports byte-identical traces run after run.
#pragma once

#include <iosfwd>
#include <string>

#include "trace/recorder.h"

namespace ctesim::trace {

void write_chrome_trace(const Recorder& recorder, std::ostream& os);

/// Writes to `path`; throws std::runtime_error if the file cannot open.
void write_chrome_trace(const Recorder& recorder, const std::string& path);

/// Escape a string for embedding inside a JSON string literal (exposed for
/// tests).
std::string json_escape(const std::string& s);

}  // namespace ctesim::trace
