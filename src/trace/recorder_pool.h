// A registry of per-producer Recorders for the one-Recorder-per-worker
// pattern (recorder.h): each concurrent producer create()s a private
// Recorder and records into it lock-free; the pool's mutex guards only the
// registry itself and the deterministic merge. merge_into() canonically
// re-sorts the union of events (Recorder::merge_from), so the merged trace
// depends only on the *set* of recorded events — never on which producer
// recorded what, the create() order, or merge timing — keeping exported
// traces byte-identical per seed.
//
// Thread contract (checked by -Wthread-safety via the annotations):
//   * create()/size()/merge_into() lock the pool mutex internally and may
//     be called from any thread.
//   * The Recorder* returned by create() is owned by the pool, stays valid
//     for the pool's lifetime, and is NOT covered by the pool mutex — it is
//     private to the producer that asked for it. Producers must be
//     quiesced (joined) before merge_into() reads their recorders; the
//     server enforces this by merging only after shutdown().
#pragma once

#include <memory>
#include <vector>

#include "trace/recorder.h"
#include "util/thread_annotations.h"

namespace ctesim::trace {

class RecorderPool {
 public:
  /// `enabled` is forwarded to every Recorder the pool creates; a disabled
  /// pool hands out no-op recorders so tracing costs one branch when off.
  explicit RecorderPool(bool enabled) : enabled_(enabled) {}
  RecorderPool(const RecorderPool&) = delete;
  RecorderPool& operator=(const RecorderPool&) = delete;

  /// Register and return a new private Recorder (stable address).
  Recorder* create() CTESIM_EXCLUDES(mutex_);

  /// Number of recorders created so far.
  std::size_t size() const CTESIM_EXCLUDES(mutex_);

  /// Merge every pooled recorder's completed events into `out`
  /// (deterministically — see header comment). Producers must be quiesced.
  void merge_into(Recorder* out) const CTESIM_EXCLUDES(mutex_);

 private:
  const bool enabled_;
  mutable util::Mutex mutex_;
  std::vector<std::unique_ptr<Recorder>> recorders_ CTESIM_GUARDED_BY(mutex_);
};

}  // namespace ctesim::trace
