// Minimal recursive-descent JSON parser, used to validate that exported
// Chrome traces are well-formed (tests round-trip every trace through it).
// Full RFC 8259 value grammar; \uXXXX escapes are decoded to UTF-8.
// Not a general-purpose library: optimized for clarity, not throughput.
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ctesim::trace::json {

struct Value {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Value> array;
  std::vector<std::pair<std::string, Value>> object;  ///< preserves order

  bool is_object() const { return type == Type::kObject; }
  bool is_array() const { return type == Type::kArray; }

  /// Member lookup on objects; nullptr when absent (or not an object).
  const Value* find(const std::string& key) const;
};

/// Parse one JSON document (value + optional trailing whitespace). Throws
/// std::runtime_error with a byte offset on malformed input.
Value parse(std::string_view text);

}  // namespace ctesim::trace::json
