#include "fault/checkpoint.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace ctesim::fault {

double checkpoint_write_seconds(const io::FilesystemModel& fs,
                                double state_bytes_per_node, int nodes) {
  CTESIM_EXPECTS(state_bytes_per_node >= 0.0);
  CTESIM_EXPECTS(nodes >= 1);
  if (state_bytes_per_node <= 0.0) return 0.0;
  const auto total =
      static_cast<std::uint64_t>(state_bytes_per_node * nodes);
  return fs.parallel_write_seconds(total, nodes);
}

double young_daly_interval(double write_s, double mtbf_s) {
  CTESIM_EXPECTS(write_s > 0.0);
  CTESIM_EXPECTS(mtbf_s > 0.0);
  return std::sqrt(2.0 * write_s * mtbf_s);
}

CheckpointCost resolve(const CheckpointPolicy& policy,
                       const io::FilesystemModel& fs, int nodes) {
  CTESIM_EXPECTS(nodes >= 1);
  CheckpointCost cost;
  if (!policy.enabled()) return cost;
  if (policy.write_bw > 0.0) {
    cost.write_s = policy.state_bytes_per_node * nodes / policy.write_bw;
  } else {
    cost.write_s =
        checkpoint_write_seconds(fs, policy.state_bytes_per_node, nodes);
  }
  cost.restart_s = policy.restart_s;
  if (policy.young_daly) {
    CTESIM_EXPECTS(policy.node_mtbf_s > 0.0);
    // The job's MTBF shrinks with its node count: any of its nodes dying
    // kills the attempt.
    const double job_mtbf = policy.node_mtbf_s / nodes;
    // A free checkpoint (no state) has no meaningful optimum; fall back to
    // a vanishing interval cost by checkpointing every job anyway.
    cost.interval_s = cost.write_s > 0.0
                          ? young_daly_interval(cost.write_s, job_mtbf)
                          : policy.interval_s;
  } else {
    cost.interval_s = policy.interval_s;
  }
  return cost;
}

int checkpoints_for(double work_s, const CheckpointCost& cost) {
  CTESIM_EXPECTS(work_s >= 0.0);
  if (!cost.enabled() || work_s <= cost.interval_s) return 0;
  // One checkpoint after each full interval; the last work segment ends at
  // completion, which needs no checkpoint.
  return static_cast<int>(std::ceil(work_s / cost.interval_s)) - 1;
}

double attempt_duration(double work_s, const CheckpointCost& cost,
                        bool restarting) {
  CTESIM_EXPECTS(work_s >= 0.0);
  const double restart = restarting ? cost.restart_s : 0.0;
  return restart + work_s + checkpoints_for(work_s, cost) * cost.write_s;
}

double preserved_work(double elapsed_s, double work_s,
                      const CheckpointCost& cost, bool restarting) {
  CTESIM_EXPECTS(elapsed_s >= 0.0);
  CTESIM_EXPECTS(work_s >= 0.0);
  if (!cost.enabled()) return 0.0;
  const double restart = restarting ? cost.restart_s : 0.0;
  const double into_work = elapsed_s - restart;
  if (into_work <= 0.0) return 0.0;
  // Checkpoint j completes at j * (interval + write) on the attempt clock.
  const double cycle = cost.interval_s + cost.write_s;
  const int completed = static_cast<int>(std::floor(into_work / cycle));
  const int cap = checkpoints_for(work_s, cost);
  const double preserved =
      std::min(completed, cap) * cost.interval_s;
  return std::min(preserved, work_s);
}

}  // namespace ctesim::fault
