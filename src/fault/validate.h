// Semantic validation of fault-model and checkpoint parameters, in the
// same spirit (and message style) as arch::validate for machine models:
// catch nonsensical reliability inputs before they produce NaNs, infinite
// loops in the timeline generator, or contract violations mid-simulation.
#pragma once

#include <string>
#include <vector>

#include "fault/checkpoint.h"
#include "fault/mtbf.h"

namespace ctesim::fault {

/// All problems with `model` (empty vector = valid): MTBF/repair times
/// must be non-negative, Weibull shapes positive, degradation factors in
/// (0, 1] with min <= max.
std::vector<std::string> validate(const FaultModel& model);

/// All problems with `policy` (empty vector = valid): non-negative
/// interval/state/restart, write bandwidth > 0 when overridden, a node
/// MTBF > 0 when Young/Daly sizing is requested.
std::vector<std::string> validate(const CheckpointPolicy& policy);

/// Throw std::invalid_argument listing every problem if any.
void validate_or_throw(const FaultModel& model);
void validate_or_throw(const CheckpointPolicy& policy);

}  // namespace ctesim::fault
