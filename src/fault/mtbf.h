// Stochastic failure models: seeded, engine-clock-only generators that turn
// MTBF-style reliability parameters into a concrete FaultTimeline.
//
// Each node (and each node's receive path) gets an independent xoshiro
// stream derived from (seed, node, salt), so the generated script does not
// depend on generation order and two runs with the same seed are
// bit-identical — the determinism contract every ctesim result obeys. No
// wall clock, no global RNG: simulated operational chance is still part of
// the reproducible experiment.
#pragma once

#include <cstdint>

#include "fault/fault.h"
#include "util/rng.h"

namespace ctesim::fault {

/// Time-to-failure distribution of one node, plus its repair process.
struct FailureSpec {
  enum class Dist {
    kExponential,  ///< memoryless (constant hazard)
    kWeibull,      ///< shape < 1: infant mortality; > 1: wear-out
  };

  Dist dist = Dist::kExponential;
  /// Mean time between failures of ONE node, seconds. 0 disables failures.
  double mtbf_s = 0.0;
  /// Weibull shape k (used when dist == kWeibull; 1 reduces to
  /// exponential). The scale is derived so the mean stays mtbf_s.
  double weibull_shape = 1.0;
  /// Mean repair time (exponential), seconds. 0 means failed nodes never
  /// return — a permanent drain.
  double mean_repair_s = 0.0;
};

/// Transient receive-path degradation process of one node (the
/// time-varying generalization of the paper's arms0b1-11c weak receiver).
struct DegradationSpec {
  /// Mean time between degradation onsets per node, seconds. 0 disables.
  double mtbd_s = 0.0;
  /// Mean degradation duration (exponential), seconds.
  double mean_duration_s = 0.0;
  /// Bandwidth factor drawn uniformly from [factor_min, factor_max],
  /// each in (0, 1].
  double factor_min = 0.3;
  double factor_max = 0.9;
};

struct FaultModel {
  FailureSpec node_failure;
  DegradationSpec link_degradation;
};

/// Draw one time-to-failure from `spec` (exponential or mean-preserving
/// Weibull). Exposed for the distribution property tests.
double sample_time_to_failure(const FailureSpec& spec, Rng& rng);

/// Generate the fault script for `num_nodes` nodes over [0, horizon_s):
/// per node, alternating fail/repair events from the failure spec and
/// degradation windows from the degradation spec. Identical (model,
/// num_nodes, horizon, seed) produce identical timelines on every
/// platform.
FaultTimeline generate_timeline(const FaultModel& model, int num_nodes,
                                double horizon_s, std::uint64_t seed);

}  // namespace ctesim::fault
