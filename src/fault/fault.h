// Fault events and timelines: the vocabulary of the resilience subsystem.
//
// The paper's Fig. 4 sweep caught a real production fault (the weak
// receiver arms0b1-11c) — but a production evaluation needs more than one
// static sick node: nodes crash and come back, links degrade for a while
// and recover, and the batch scheduler has to live through all of it. A
// FaultTimeline is the deterministic script of such operational events,
// either written by hand (reproducing a known incident) or drawn from the
// seeded MTBF models in fault/mtbf.h. The batch runtime replays the
// timeline through the discrete-event engine (batch::run_cluster); the
// degradation windows can also be installed directly on a net::Network for
// measurement-style studies (examples/network_fault_study.cpp).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ctesim::net {
class Network;
}

namespace ctesim::fault {

enum class FaultKind : std::uint8_t {
  kNodeFail,      ///< node crashes and leaves service instantly
  kNodeRepair,    ///< node returns to service
  kDegradeStart,  ///< a receive-path degradation window opens on a node
  kDegradeEnd,    ///< ... and closes again
};

const char* name_of(FaultKind kind);

struct FaultEvent {
  double time_s = 0.0;
  FaultKind kind = FaultKind::kNodeFail;
  int node = 0;
  /// Receive-path bandwidth factor in (0, 1] for kDegradeStart; unused
  /// otherwise. 1.0 would be a no-op window.
  double factor = 1.0;

  bool operator==(const FaultEvent&) const = default;
};

/// An ordered script of fault events. Building is order-free: events()
/// always returns the script sorted by time (stable — insertion order
/// breaks ties), so two timelines built from the same facts are identical.
class FaultTimeline {
 public:
  /// Node leaves service at `time_s`. A job running there is interrupted.
  void fail(double time_s, int node);

  /// Node returns to service at `time_s` (must currently be failed).
  void repair(double time_s, int node);

  /// Receive-path degradation window [start_s, end_s) on `node` with
  /// bandwidth factor `factor` in (0, 1] — the time-varying generalization
  /// of net::Network::set_recv_degradation. Windows may overlap; factors
  /// compose multiplicatively.
  void degrade_recv(double start_s, double end_s, int node, double factor);

  /// Events sorted ascending by time (stable within equal times).
  const std::vector<FaultEvent>& events() const;

  bool empty() const { return events_.empty(); }
  std::size_t size() const { return events_.size(); }

  /// Last event time (0 for an empty timeline).
  double horizon_s() const;

  /// Structural problems for a machine of `num_nodes` nodes: out-of-range
  /// nodes, negative times, factors outside (0, 1], a repair without a
  /// preceding failure, a double failure, an unmatched degradation end.
  /// Empty vector = consistent.
  std::vector<std::string> validate(int num_nodes) const;

  /// Throws std::invalid_argument listing every problem if any.
  void validate_or_throw(int num_nodes) const;

 private:
  // Lazily re-sorted on access so callers can interleave builders freely.
  mutable std::vector<FaultEvent> events_;
  mutable bool sorted_ = true;
};

/// Install every degradation window of `timeline` onto `network` as timed
/// recv-degradation windows (node failures/repairs are batch-runtime
/// concerns and are ignored here). The network evaluates the windows
/// against the time passed to Network::transfer.
void apply_recv_degradations(const FaultTimeline& timeline,
                             net::Network* network);

}  // namespace ctesim::fault
