// Checkpoint/restart cost model and the Young/Daly optimal-interval helper.
//
// A checkpointing job alternates `interval_s` seconds of useful work with a
// checkpoint write whose cost flows through the parallel-filesystem model
// (io::FilesystemModel — every node of the job writes its state slice,
// MPI-IO style, limited by the OST pool and the NIC injection bandwidth).
// On a node failure the job restarts from its last completed checkpoint:
// only the work since that checkpoint (plus the in-progress write) is
// lost. Young ('74) / Daly ('06) give the first-order optimal interval
// sqrt(2 * C * M) for write cost C and per-job MTBF M — the sweet spot
// bench/resilience_study sweeps across.
#pragma once

#include "io/filesystem.h"

namespace ctesim::fault {

/// Cluster-wide checkpointing policy, applied per job by the batch runtime.
struct CheckpointPolicy {
  /// Useful-work seconds between checkpoints. 0 disables checkpointing;
  /// ignored when `young_daly` is set.
  double interval_s = 0.0;
  /// Derive each job's interval from Young/Daly using its own write cost
  /// and per-job MTBF (node_mtbf_s / job nodes). Requires node_mtbf_s > 0.
  bool young_daly = false;
  /// One node's MTBF in seconds (only consulted when young_daly is set).
  double node_mtbf_s = 0.0;
  /// Checkpoint state each node writes, bytes. 0 makes checkpoints free.
  double state_bytes_per_node = 0.0;
  /// Aggregate write bandwidth override, bytes/s for the whole job. 0
  /// derives the cost from the filesystem model instead (the normal path).
  double write_bw = 0.0;
  /// Fixed restart overhead a retry pays before resuming (reload the
  /// checkpoint, relaunch), seconds.
  double restart_s = 0.0;

  bool enabled() const { return young_daly || interval_s > 0.0; }
};

/// Per-job checkpoint parameters resolved from the policy: the work
/// interval and the cost of one checkpoint write for this job size.
struct CheckpointCost {
  double interval_s = 0.0;  ///< 0 = checkpointing off for this job
  double write_s = 0.0;
  double restart_s = 0.0;

  bool enabled() const { return interval_s > 0.0; }
};

/// One checkpoint's write time for a job on `nodes` nodes: every node
/// writes `state_bytes_per_node` in parallel through `fs`.
double checkpoint_write_seconds(const io::FilesystemModel& fs,
                                double state_bytes_per_node, int nodes);

/// First-order optimal checkpoint interval sqrt(2 * write_s * mtbf_s)
/// (Young/Daly). Requires both arguments > 0.
double young_daly_interval(double write_s, double mtbf_s);

/// Resolve the policy for one job: compute the write cost (through `fs`
/// unless the policy overrides the bandwidth) and the interval (fixed or
/// per-job Young/Daly with MTBF node_mtbf_s / nodes).
CheckpointCost resolve(const CheckpointPolicy& policy,
                       const io::FilesystemModel& fs, int nodes);

/// Checkpoints a span of `work_s` useful seconds needs: one after every
/// full interval except a final one that would coincide with completion.
int checkpoints_for(double work_s, const CheckpointCost& cost);

/// Wall-clock duration of an attempt that must complete `work_s` useful
/// seconds: restart overhead (`restarting` attempts only) + work +
/// checkpoint writes.
double attempt_duration(double work_s, const CheckpointCost& cost,
                        bool restarting);

/// Useful work preserved when an attempt dies `elapsed_s` seconds in (by
/// the attempt_duration clock): the work covered by the last checkpoint
/// that completed before the failure. Without checkpointing: 0.
double preserved_work(double elapsed_s, double work_s,
                      const CheckpointCost& cost, bool restarting);

}  // namespace ctesim::fault
