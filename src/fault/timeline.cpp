#include "fault/fault.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>
#include <stdexcept>

#include "net/network.h"
#include "util/check.h"

namespace ctesim::fault {

const char* name_of(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNodeFail:
      return "node_fail";
    case FaultKind::kNodeRepair:
      return "node_repair";
    case FaultKind::kDegradeStart:
      return "degrade_start";
    case FaultKind::kDegradeEnd:
      return "degrade_end";
  }
  return "?";
}

void FaultTimeline::fail(double time_s, int node) {
  CTESIM_EXPECTS(time_s >= 0.0);
  CTESIM_EXPECTS(node >= 0);
  events_.push_back({time_s, FaultKind::kNodeFail, node, 1.0});
  sorted_ = false;
}

void FaultTimeline::repair(double time_s, int node) {
  CTESIM_EXPECTS(time_s >= 0.0);
  CTESIM_EXPECTS(node >= 0);
  events_.push_back({time_s, FaultKind::kNodeRepair, node, 1.0});
  sorted_ = false;
}

void FaultTimeline::degrade_recv(double start_s, double end_s, int node,
                                 double factor) {
  CTESIM_EXPECTS(start_s >= 0.0 && end_s > start_s);
  CTESIM_EXPECTS(node >= 0);
  CTESIM_EXPECTS(factor > 0.0 && factor <= 1.0);
  events_.push_back({start_s, FaultKind::kDegradeStart, node, factor});
  if (std::isfinite(end_s)) {
    events_.push_back({end_s, FaultKind::kDegradeEnd, node, factor});
  }
  sorted_ = false;
}

const std::vector<FaultEvent>& FaultTimeline::events() const {
  if (!sorted_) {
    std::stable_sort(events_.begin(), events_.end(),
                     [](const FaultEvent& a, const FaultEvent& b) {
                       return a.time_s < b.time_s;
                     });
    sorted_ = true;
  }
  return events_;
}

double FaultTimeline::horizon_s() const {
  return events_.empty() ? 0.0 : events().back().time_s;
}

std::vector<std::string> FaultTimeline::validate(int num_nodes) const {
  std::vector<std::string> problems;
  const auto note = [&problems](const FaultEvent& e, const std::string& why) {
    std::ostringstream os;
    os << "fault.timeline: " << name_of(e.kind) << " at " << e.time_s
       << " s on node " << e.node << ": " << why;
    problems.push_back(os.str());
  };
  // Per-node state machines: up/down for failures, a multiset of open
  // windows for degradations.
  std::map<int, bool> down;
  std::map<int, int> open_windows;
  for (const FaultEvent& e : events()) {
    if (e.node < 0 || e.node >= num_nodes) {
      note(e, "node outside [0, " + std::to_string(num_nodes) + ")");
      continue;
    }
    if (e.time_s < 0.0) note(e, "negative time");
    switch (e.kind) {
      case FaultKind::kNodeFail:
        if (down[e.node]) note(e, "node is already down (double failure)");
        down[e.node] = true;
        break;
      case FaultKind::kNodeRepair:
        if (!down[e.node]) note(e, "node is not down (repair without fail)");
        down[e.node] = false;
        break;
      case FaultKind::kDegradeStart:
        if (!(e.factor > 0.0 && e.factor <= 1.0)) {
          note(e, "degradation factor must be in (0, 1]");
        }
        ++open_windows[e.node];
        break;
      case FaultKind::kDegradeEnd:
        if (open_windows[e.node] <= 0) {
          note(e, "degradation end without a matching start");
        } else {
          --open_windows[e.node];
        }
        break;
    }
  }
  return problems;
}

void FaultTimeline::validate_or_throw(int num_nodes) const {
  const auto problems = validate(num_nodes);
  if (problems.empty()) return;
  std::ostringstream os;
  os << "invalid fault timeline:";
  for (const auto& p : problems) os << "\n  - " << p;
  throw std::invalid_argument(os.str());
}

void apply_recv_degradations(const FaultTimeline& timeline,
                             net::Network* network) {
  CTESIM_EXPECTS(network != nullptr);
  // Re-pair starts with their ends per node: events() is time-sorted, so a
  // FIFO of open starts per node matches each end to the earliest start
  // with the same factor profile (windows compose multiplicatively in the
  // network, so exact pairing only matters for the window bounds).
  std::map<int, std::vector<FaultEvent>> open;
  for (const FaultEvent& e : timeline.events()) {
    if (e.kind == FaultKind::kDegradeStart) {
      open[e.node].push_back(e);
    } else if (e.kind == FaultKind::kDegradeEnd) {
      auto& starts = open[e.node];
      CTESIM_EXPECTS(!starts.empty());
      const FaultEvent start = starts.front();
      starts.erase(starts.begin());
      network->add_recv_degradation(start.node, start.factor, start.time_s,
                                    e.time_s);
    }
  }
  // Unmatched starts are open-ended windows.
  for (const auto& [node, starts] : open) {
    for (const FaultEvent& start : starts) {
      network->add_recv_degradation(node, start.factor, start.time_s);
    }
  }
}

}  // namespace ctesim::fault
