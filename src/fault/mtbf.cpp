#include "fault/mtbf.h"

#include <cmath>

#include "util/check.h"

namespace ctesim::fault {

namespace {

/// splitmix-style finalizer: decorrelates the per-node child seeds so node
/// k's stream is independent of node k+1's regardless of generation order.
std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t node,
                       std::uint64_t salt) {
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (node + 1) +
                    0xbf58476d1ce4e5b9ULL * (salt + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Exponential draw with the given mean; uniform() is in [0, 1) so the log
/// argument stays strictly positive.
double sample_exponential(double mean, Rng& rng) {
  return -mean * std::log(1.0 - rng.uniform());
}

}  // namespace

double sample_time_to_failure(const FailureSpec& spec, Rng& rng) {
  CTESIM_EXPECTS(spec.mtbf_s > 0.0);
  if (spec.dist == FailureSpec::Dist::kExponential) {
    return sample_exponential(spec.mtbf_s, rng);
  }
  CTESIM_EXPECTS(spec.weibull_shape > 0.0);
  // Mean-preserving scale: E[Weibull(k, lambda)] = lambda * Gamma(1 + 1/k).
  const double k = spec.weibull_shape;
  const double scale = spec.mtbf_s / std::tgamma(1.0 + 1.0 / k);
  const double u = rng.uniform();
  return scale * std::pow(-std::log(1.0 - u), 1.0 / k);
}

FaultTimeline generate_timeline(const FaultModel& model, int num_nodes,
                                double horizon_s, std::uint64_t seed) {
  CTESIM_EXPECTS(num_nodes >= 1);
  CTESIM_EXPECTS(horizon_s >= 0.0);
  const FailureSpec& fs = model.node_failure;
  const DegradationSpec& ds = model.link_degradation;
  CTESIM_EXPECTS(fs.mtbf_s >= 0.0 && fs.mean_repair_s >= 0.0);
  CTESIM_EXPECTS(ds.mtbd_s >= 0.0 && ds.mean_duration_s >= 0.0);
  if (ds.mtbd_s > 0.0) {
    CTESIM_EXPECTS(ds.factor_min > 0.0 && ds.factor_min <= ds.factor_max &&
                   ds.factor_max <= 1.0);
  }

  FaultTimeline timeline;
  for (int node = 0; node < num_nodes; ++node) {
    if (fs.mtbf_s > 0.0) {
      Rng rng(mix_seed(seed, static_cast<std::uint64_t>(node), 0x0f));
      double t = 0.0;
      while (true) {
        t += sample_time_to_failure(fs, rng);
        if (t >= horizon_s) break;
        timeline.fail(t, node);
        if (fs.mean_repair_s <= 0.0) break;  // permanent drain
        t += sample_exponential(fs.mean_repair_s, rng);
        if (t >= horizon_s) break;  // still down at the horizon
        timeline.repair(t, node);
      }
    }
    if (ds.mtbd_s > 0.0 && ds.mean_duration_s > 0.0) {
      Rng rng(mix_seed(seed, static_cast<std::uint64_t>(node), 0xd7));
      double t = 0.0;
      while (true) {
        t += sample_exponential(ds.mtbd_s, rng);
        if (t >= horizon_s) break;
        const double duration = sample_exponential(ds.mean_duration_s, rng);
        const double factor = rng.uniform(ds.factor_min, ds.factor_max);
        const double end = t + duration;
        if (end > t) {
          timeline.degrade_recv(t, end, node,
                                factor > 0.0 ? factor : ds.factor_min);
        }
        t = end;
      }
    }
  }
  return timeline;
}

}  // namespace ctesim::fault
