#include "fault/validate.h"

#include <sstream>
#include <stdexcept>

namespace ctesim::fault {

namespace {

void check(std::vector<std::string>& problems, bool ok,
           const std::string& message) {
  if (!ok) problems.push_back(message);
}

void throw_if_any(const std::vector<std::string>& problems,
                  const char* what) {
  if (problems.empty()) return;
  std::ostringstream os;
  os << "invalid " << what << ":";
  for (const auto& p : problems) os << "\n  - " << p;
  throw std::invalid_argument(os.str());
}

}  // namespace

std::vector<std::string> validate(const FaultModel& model) {
  std::vector<std::string> problems;
  const FailureSpec& fs = model.node_failure;
  check(problems, fs.mtbf_s >= 0.0, "failure.mtbf_s: must be >= 0");
  check(problems, fs.mean_repair_s >= 0.0,
        "failure.mean_repair_s: must be >= 0");
  if (fs.dist == FailureSpec::Dist::kWeibull) {
    check(problems, fs.weibull_shape > 0.0,
          "failure.weibull_shape: must be positive");
  }
  const DegradationSpec& ds = model.link_degradation;
  check(problems, ds.mtbd_s >= 0.0, "degradation.mtbd_s: must be >= 0");
  check(problems, ds.mean_duration_s >= 0.0,
        "degradation.mean_duration_s: must be >= 0");
  if (ds.mtbd_s > 0.0) {
    check(problems, ds.factor_min > 0.0 && ds.factor_min <= 1.0,
          "degradation.factor_min: must be in (0, 1]");
    check(problems, ds.factor_max > 0.0 && ds.factor_max <= 1.0,
          "degradation.factor_max: must be in (0, 1]");
    check(problems, ds.factor_min <= ds.factor_max,
          "degradation.factor_min: exceeds factor_max");
  }
  return problems;
}

std::vector<std::string> validate(const CheckpointPolicy& policy) {
  std::vector<std::string> problems;
  check(problems, policy.interval_s >= 0.0,
        "checkpoint.interval_s: must be >= 0");
  check(problems, policy.state_bytes_per_node >= 0.0,
        "checkpoint.state_bytes_per_node: must be >= 0");
  check(problems, policy.restart_s >= 0.0,
        "checkpoint.restart_s: must be >= 0");
  check(problems, policy.write_bw >= 0.0,
        "checkpoint.write_bw: must be > 0 when set "
        "(0 = derive from the filesystem model)");
  if (policy.young_daly) {
    check(problems, policy.node_mtbf_s > 0.0,
          "checkpoint.node_mtbf_s: Young/Daly sizing needs a positive "
          "node MTBF");
  }
  return problems;
}

void validate_or_throw(const FaultModel& model) {
  throw_if_any(validate(model), "fault model");
}

void validate_or_throw(const CheckpointPolicy& policy) {
  throw_if_any(validate(policy), "checkpoint policy");
}

}  // namespace ctesim::fault
