#include "server/tcp.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "server/protocol.h"
#include "server/service.h"

namespace ctesim::server {

namespace {

/// Milliseconds the accept loop sleeps in poll() between stop-flag checks —
/// real time by necessity (socket readiness), never simulation state.
constexpr int kAcceptPollMs = 100;

/// Writes the whole reply or reports failure. A short write means the
/// line framing on this connection can no longer be trusted, so the
/// caller must close it rather than keep serving.
bool send_all(int fd, const std::string& bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;  // peer gone or unrecoverable error
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

TcpServer::TcpServer(Service& service, const TcpOptions& options)
    : service_(service), options_(options) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error("tcp: socket() failed: " +
                             std::string(std::strerror(errno)));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(options.port));
  if (::inet_pton(AF_INET, options.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(listen_fd_);
    throw std::runtime_error("tcp: bad bind address " + options.bind_address);
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 64) != 0) {
    const std::string why = std::strerror(errno);
    ::close(listen_fd_);
    throw std::runtime_error("tcp: bind/listen on " + options.bind_address +
                             ":" + std::to_string(options.port) +
                             " failed: " + why);
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
  port_ = ntohs(bound.sin_port);
}

TcpServer::~TcpServer() { stop(); }

void TcpServer::start() {
  if (!accept_thread_.joinable()) {
    accept_thread_ = std::thread([this] { accept_loop(); });
  }
}

void TcpServer::stop() {
  if (stop_.exchange(true)) {
    if (accept_thread_.joinable()) accept_thread_.join();
    return;
  }
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
  }
  {
    util::MutexLock lock(conn_mutex_);
    for (const int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  std::map<std::uint64_t, std::thread> threads;
  {
    util::MutexLock lock(conn_mutex_);
    threads.swap(conn_threads_);
    finished_ids_.clear();
  }
  for (auto& [id, thread] : threads) {
    if (thread.joinable()) thread.join();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void TcpServer::reap_finished() {
  std::vector<std::thread> done;
  {
    util::MutexLock lock(conn_mutex_);
    for (const std::uint64_t id : finished_ids_) {
      auto it = conn_threads_.find(id);
      if (it == conn_threads_.end()) continue;
      done.push_back(std::move(it->second));
      conn_threads_.erase(it);
    }
    finished_ids_.clear();
  }
  // These threads announced completion before unwinding, so each join
  // returns (almost) immediately; without it a long-running server would
  // accumulate an exited-but-unjoined handle per connection ever served.
  for (auto& thread : done) {
    if (thread.joinable()) thread.join();
  }
}

void TcpServer::accept_loop() {
  while (!stop_.load()) {
    reap_finished();
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kAcceptPollMs);
    if (stop_.load()) break;
    if (ready <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    util::MutexLock lock(conn_mutex_);
    if (stop_.load()) {
      ::close(fd);
      break;
    }
    const std::uint64_t id = next_conn_id_++;
    conn_fds_.push_back(fd);
    conn_threads_.emplace(id,
                          std::thread([this, id, fd] {
                            serve_connection(id, fd);
                          }));
  }
}

void TcpServer::serve_connection(std::uint64_t id, int fd) {
  std::string buffer;
  char chunk[4096];
  bool open = true;
  while (open && !stop_.load()) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;
    buffer.append(chunk, static_cast<std::size_t>(n));
    if (buffer.size() > options_.max_line_bytes &&
        buffer.find('\n') == std::string::npos) {
      send_all(fd, error_reply("oversized",
                               "request line exceeds " +
                                   std::to_string(options_.max_line_bytes) +
                                   " bytes") +
                       "\n");
      break;  // framing is lost; drop the connection
    }
    std::size_t newline;
    while ((newline = buffer.find('\n')) != std::string::npos) {
      std::string line = buffer.substr(0, newline);
      buffer.erase(0, newline + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      if (line.size() > options_.max_line_bytes) {
        send_all(fd, error_reply("oversized",
                                 "request line exceeds " +
                                     std::to_string(
                                         options_.max_line_bytes) +
                                     " bytes") +
                         "\n");
        open = false;
        break;
      }
      if (!send_all(fd, service_.handle(line) + "\n")) {
        open = false;  // partial reply would corrupt the line framing
        break;
      }
    }
  }
  {
    // Deregister before close so stop() never shutdown()s a recycled fd,
    // and announce completion so the accept loop can join this thread.
    util::MutexLock lock(conn_mutex_);
    auto it = std::find(conn_fds_.begin(), conn_fds_.end(), fd);
    if (it != conn_fds_.end()) conn_fds_.erase(it);
    finished_ids_.push_back(id);
  }
  ::close(fd);
}

}  // namespace ctesim::server
