#include "server/tcp.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "server/protocol.h"
#include "server/service.h"

namespace ctesim::server {

namespace {

/// Milliseconds the accept loop sleeps in poll() between stop-flag checks —
/// real time by necessity (socket readiness), never simulation state.
constexpr int kAcceptPollMs = 100;

void send_all(int fd, const std::string& bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) return;  // peer gone; the connection loop will see EOF
    sent += static_cast<std::size_t>(n);
  }
}

}  // namespace

TcpServer::TcpServer(Service& service, const TcpOptions& options)
    : service_(service), options_(options) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error("tcp: socket() failed: " +
                             std::string(std::strerror(errno)));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(options.port));
  if (::inet_pton(AF_INET, options.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(listen_fd_);
    throw std::runtime_error("tcp: bad bind address " + options.bind_address);
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 64) != 0) {
    const std::string why = std::strerror(errno);
    ::close(listen_fd_);
    throw std::runtime_error("tcp: bind/listen on " + options.bind_address +
                             ":" + std::to_string(options.port) +
                             " failed: " + why);
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
  port_ = ntohs(bound.sin_port);
}

TcpServer::~TcpServer() { stop(); }

void TcpServer::start() {
  if (!accept_thread_.joinable()) {
    accept_thread_ = std::thread([this] { accept_loop(); });
  }
}

void TcpServer::stop() {
  if (stop_.exchange(true)) {
    if (accept_thread_.joinable()) accept_thread_.join();
    return;
  }
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
  }
  {
    std::lock_guard<std::mutex> lock(conn_mutex_);
    for (const int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(conn_mutex_);
    threads.swap(conn_threads_);
  }
  for (auto& thread : threads) {
    if (thread.joinable()) thread.join();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void TcpServer::accept_loop() {
  while (!stop_.load()) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kAcceptPollMs);
    if (stop_.load()) break;
    if (ready <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    std::lock_guard<std::mutex> lock(conn_mutex_);
    if (stop_.load()) {
      ::close(fd);
      break;
    }
    conn_fds_.push_back(fd);
    conn_threads_.emplace_back([this, fd] { serve_connection(fd); });
  }
}

void TcpServer::serve_connection(int fd) {
  std::string buffer;
  char chunk[4096];
  bool open = true;
  while (open && !stop_.load()) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;
    buffer.append(chunk, static_cast<std::size_t>(n));
    if (buffer.size() > options_.max_line_bytes &&
        buffer.find('\n') == std::string::npos) {
      send_all(fd, error_reply("oversized",
                               "request line exceeds " +
                                   std::to_string(options_.max_line_bytes) +
                                   " bytes") +
                       "\n");
      break;  // framing is lost; drop the connection
    }
    std::size_t newline;
    while ((newline = buffer.find('\n')) != std::string::npos) {
      std::string line = buffer.substr(0, newline);
      buffer.erase(0, newline + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      if (line.size() > options_.max_line_bytes) {
        send_all(fd, error_reply("oversized",
                                 "request line exceeds " +
                                     std::to_string(
                                         options_.max_line_bytes) +
                                     " bytes") +
                         "\n");
        open = false;
        break;
      }
      send_all(fd, service_.handle(line) + "\n");
    }
  }
  ::close(fd);
  std::lock_guard<std::mutex> lock(conn_mutex_);
  conn_fds_.erase(std::find(conn_fds_.begin(), conn_fds_.end(), fd),
                  conn_fds_.end());
}

}  // namespace ctesim::server
