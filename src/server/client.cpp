#include "server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace ctesim::server {

Client::Client(const std::string& host, int port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    throw std::runtime_error("client: socket() failed: " +
                             std::string(std::strerror(errno)));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("client: bad host address " + host);
  }
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const std::string why = std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("client: connect to " + host + ":" +
                             std::to_string(port) + " failed: " + why);
  }
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

std::string Client::request(const std::string& line) {
  std::string out = line;
  if (out.empty() || out.back() != '\n') out.push_back('\n');
  std::size_t sent = 0;
  while (sent < out.size()) {
    const ssize_t n =
        ::send(fd_, out.data() + sent, out.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      throw std::runtime_error("client: send failed: " +
                               std::string(std::strerror(errno)));
    }
    sent += static_cast<std::size_t>(n);
  }
  std::size_t newline;
  while ((newline = buffer_.find('\n')) == std::string::npos) {
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      throw std::runtime_error("client: connection closed before reply");
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
  std::string reply = buffer_.substr(0, newline);
  buffer_.erase(0, newline + 1);
  return reply;
}

}  // namespace ctesim::server
