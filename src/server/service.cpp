#include "server/service.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <sstream>

#include "arch/configs.h"
#include "arch/machine_io.h"
#include "arch/validate.h"
#include "batch/cluster.h"
#include "batch/metrics.h"
#include "batch/workload.h"
#include "power/power_model.h"
#include "trace/chrome.h"
#include "util/assert.h"
#include "util/hash.h"

namespace ctesim::server {

namespace {

std::int64_t steady_ns() {
  // Real time, deliberately: queue deadlines and trace timestamps describe
  // the *server*, not a simulation. The simulation path never calls this.
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

Service::Service(const ServiceConfig& config)
    : config_(config),
      cache_(config.cache_capacity),
      queue_(config.admission_policy, std::max(1, config.workers)),
      free_slots_(config.workers),
      rec_pool_(config.tracing),
      epoch_ns_(steady_ns()) {
  CTESIM_EXPECTS(config.workers >= 1);
  CTESIM_EXPECTS(config.queue_capacity >= 0);
  admission_rec_ = rec_pool_.create();
  worker_recs_.reserve(static_cast<std::size_t>(config_.workers));
  threads_.reserve(static_cast<std::size_t>(config_.workers));
  for (int w = 0; w < config_.workers; ++w) {
    worker_recs_.push_back(rec_pool_.create());
  }
  for (int w = 0; w < config_.workers; ++w) {
    threads_.emplace_back([this, w] { worker_loop(w); });
  }
}

Service::~Service() { shutdown(); }

std::int64_t Service::real_now_ns() const { return steady_ns() - epoch_ns_; }

sim::Time Service::real_now_ps() const {
  return real_now_ns() * sim::kNanosecond;
}

int Service::slot_weight(const SimulateSpec& spec) const {
  // A wide study reserves several worker slots: it still runs on one
  // thread, but admission paces how much heavy work is in flight, and the
  // EASY planner backfills cheap requests around the reservation.
  const int weight = 1 + spec.workload.num_jobs / 2048;
  return std::clamp(weight, 1, config_.workers);
}

double Service::cost_estimate(const SimulateSpec& spec) {
  // Virtual ticks on the admission clock (1 tick = one dispatch); only
  // relative magnitudes matter to the backfill planner.
  return 1.0 + spec.workload.num_jobs / 100.0;
}

std::shared_ptr<const arch::MachineModel> Service::resolve_machine_locked(
    const SimulateSpec& spec, std::uint64_t* config_hash) {
  const std::string label =
      spec.machine_ini.empty() ? "name:" + spec.machine
                               : "ini:" + hash_hex(hash64(spec.machine_ini));
  if (auto it = machine_labels_.find(label); it != machine_labels_.end()) {
    ++machines_reused_;
    *config_hash = it->second;
    return machines_.at(it->second);
  }

  arch::MachineModel model;
  if (!spec.machine_ini.empty()) {
    try {
      model = arch::parse_machine_string(spec.machine_ini);
      arch::validate_or_throw(model);
    } catch (const std::exception& e) {
      throw ProtocolError(std::string("machine_ini: ") + e.what());
    }
  } else if (spec.machine == "cte-arm") {
    model = arch::cte_arm();
  } else if (spec.machine == "marenostrum4") {
    model = arch::marenostrum4();
  } else {
    throw ProtocolError("unknown machine '" + spec.machine +
                        "' (use cte-arm, marenostrum4, or machine_ini)");
  }

  const std::uint64_t h = hash64(arch::machine_to_string(model));
  *config_hash = h;
  auto it = machines_.find(h);
  if (it == machines_.end()) {
    ++machines_built_;
    it = machines_
             .emplace(h, std::make_shared<const arch::MachineModel>(
                             std::move(model)))
             .first;
  } else {
    ++machines_reused_;  // same model reached through a new label
  }
  machine_labels_[label] = h;
  return it->second;
}

std::string Service::handle(const std::string& request_line) {
  {
    util::MutexLock lock(mutex_);
    ++received_;
  }
  if (request_line.size() > config_.max_request_bytes) {
    util::MutexLock lock(mutex_);
    ++errors_;
    return error_reply("oversized",
                       "request exceeds " +
                           std::to_string(config_.max_request_bytes) +
                           " bytes");
  }
  Request request;
  try {
    request = parse_request(request_line);
  } catch (const ProtocolError& e) {
    util::MutexLock lock(mutex_);
    ++errors_;
    return error_reply("bad_request", e.what());
  }
  switch (request.op) {
    case Op::kPing:
      return ping_reply();
    case Op::kStats:
      return stats_reply(stats());
    case Op::kSimulate:
      return handle_simulate(request.sim);
  }
  return error_reply("internal", "unreachable op");
}

std::string Service::handle_simulate(const SimulateSpec& spec) {
  std::shared_future<std::shared_ptr<const std::string>> future;
  {
    util::MutexLock lock(mutex_);
    if (stop_) {
      return error_reply("shutting_down", "server is shutting down");
    }

    std::uint64_t config_hash = 0;
    std::shared_ptr<const arch::MachineModel> machine;
    try {
      machine = resolve_machine_locked(spec, &config_hash);
      if (machine->interconnect.kind != arch::InterconnectSpec::Kind::kTorus) {
        throw ProtocolError(
            "machine '" + machine->name +
            "' has no torus interconnect (the batch model needs one)");
      }
      if (spec.workload.max_nodes > machine->num_nodes) {
        throw ProtocolError("max_nodes exceeds the machine's " +
                            std::to_string(machine->num_nodes) + " nodes");
      }
      if (spec.workload.num_jobs > config_.max_jobs_per_request) {
        throw ProtocolError(
            "jobs exceeds the per-request cap of " +
            std::to_string(config_.max_jobs_per_request));
      }
    } catch (const ProtocolError& e) {
      ++errors_;
      return error_reply("bad_request", e.what());
    }

    const CacheKey key{config_hash, hash64(canonical_workload(spec)),
                       spec.seed};
    if (auto bytes = cache_.get(key)) {
      admission_rec_->instant(trace::Track::global(), "server", "cache_hit",
                              hash_hex(key.workload_hash), real_now_ps());
      return *bytes;
    }

    if (auto it = inflight_.find(key); it != inflight_.end()) {
      ++coalesced_;
      future = it->second->future;
    } else {
      if (static_cast<int>(queue_.size()) >= config_.queue_capacity) {
        ++shed_;
        admission_rec_->instant(trace::Track::global(), "server", "shed",
                                hash_hex(key.workload_hash), real_now_ps());
        return error_reply("overloaded",
                           "admission queue full (capacity " +
                               std::to_string(config_.queue_capacity) +
                               "); retry later");
      }
      auto flight = std::make_shared<Flight>();
      flight->future = flight->promise.get_future().share();
      const int seq = next_seq_++;
      batch::Job job;
      job.id = seq;
      job.arrival_s = virtual_now_;
      job.nodes = slot_weight(spec);
      job.walltime_s = cost_estimate(spec);
      queue_.push(job);
      const double deadline = spec.deadline_ms > 0.0
                                  ? spec.deadline_ms
                                  : config_.default_deadline_ms;
      pending_[seq] =
          Pending{spec, std::move(machine), key, flight, real_now_ns(),
                  deadline};
      inflight_[key] = flight;
      max_queue_depth_ = std::max(max_queue_depth_, queue_.size());
      admission_rec_->counter(trace::Track::global(), "server",
                              "queue_depth", real_now_ps(),
                              static_cast<double>(queue_.size()));
      future = flight->future;
      cv_.notify_one();
    }
  }
  return *future.get();
}

std::shared_ptr<const std::string> Service::run_simulation(
    const Pending& pending, int worker_id) {
  const SimulateSpec& spec = pending.spec;
  const sim::Time t0 = real_now_ps();
  const batch::RuntimeModel model(*pending.machine);
  const auto jobs = batch::generate(spec.workload, model, spec.seed);
  batch::ClusterOptions options;
  options.placement = spec.placement;
  options.queue = spec.queue;
  options.seed = spec.seed;
  // Every run carries the machine's calibrated power model, so replies
  // always report energy-to-solution; the DVFS/cap knobs default to no-ops.
  const power::PowerModel power = power::default_power(*pending.machine);
  options.power = &power;
  options.dvfs = power::dvfs_state(spec.dvfs_state);
  options.power_cap_w = spec.power_cap_w;
  options.dvfs_backfill = spec.dvfs_backfill;
  const auto result = batch::run_cluster(model, jobs, options);
  const auto metrics =
      batch::summarize(result, pending.machine->num_nodes);
  // Sampled what-ifs re-estimate every job's runtime through the sampling
  // executor (K representatives per phase instead of every iteration) and
  // report the aggregate with its confidence interval next to the metrics.
  SamplingSummary summary;
  if (spec.sampling.mode != sampling::Mode::kExact) {
    double var = 0.0;
    for (const auto& job : jobs) {
      const auto outcome = model.sampled_runtime(
          job, model.reference_hops(job.nodes), spec.sampling,
          options.dvfs.freq_scale);
      const double nodes = static_cast<double>(job.nodes);
      summary.total_node_s += outcome.total_s * nodes;
      var += outcome.ci_half_s * outcome.ci_half_s * nodes * nodes;
      summary.steps_total +=
          static_cast<std::uint64_t>(outcome.steps_total);
      summary.steps_simulated +=
          static_cast<std::uint64_t>(outcome.steps_simulated);
    }
    summary.ci_half_node_s = std::sqrt(var);
  }
  auto reply = std::make_shared<const std::string>(simulate_reply(
      pending.key.config_hash, pending.key.workload_hash, spec.seed, metrics,
      result.engine_events,
      spec.sampling.mode != sampling::Mode::kExact ? &summary : nullptr));
  worker_recs_[static_cast<std::size_t>(worker_id)]->span(
      trace::Track::worker(worker_id), "server", "execute",
      hash_hex(pending.key.workload_hash), t0, real_now_ps(),
      reply->size());
  return reply;
}

void Service::worker_loop(int worker_id) {
  util::MutexLock lock(mutex_);
  while (true) {
    if (stop_) break;
    int pos = -1;
    if (!queue_.empty()) {
      pos = queue_.next_startable(virtual_now_, free_slots_, running_);
    }
    if (pos < 0) {
      cv_.wait(lock);
      continue;
    }
    const batch::Job job = queue_.pop(pos);
    Pending pending = std::move(pending_.at(job.id));
    pending_.erase(job.id);
    virtual_now_ += 1.0;
    free_slots_ -= job.nodes;
    running_.push_back(
        batch::Reservation{job.id, virtual_now_ + job.walltime_s, job.nodes});
    ++active_;
    const auto hook = worker_hook_;
    lock.unlock();

    if (hook) hook();

    enum class Outcome { kCompleted, kTimeout, kError };
    Outcome outcome = Outcome::kCompleted;
    std::shared_ptr<const std::string> reply;
    const double waited_ms =
        static_cast<double>(real_now_ns() - pending.admitted_ns) / 1e6;
    if (pending.deadline_ms > 0.0 && waited_ms > pending.deadline_ms) {
      outcome = Outcome::kTimeout;
      reply = std::make_shared<const std::string>(error_reply(
          "timeout", "queued past the request deadline; not run"));
      worker_recs_[static_cast<std::size_t>(worker_id)]->instant(
          trace::Track::worker(worker_id), "server", "timeout",
          hash_hex(pending.key.workload_hash), real_now_ps());
    } else {
      try {
        reply = run_simulation(pending, worker_id);
      } catch (const std::exception& e) {
        outcome = Outcome::kError;
        reply = std::make_shared<const std::string>(
            error_reply("internal", e.what()));
      }
    }
    if (outcome == Outcome::kCompleted) cache_.put(pending.key, reply);

    lock.lock();
    switch (outcome) {
      case Outcome::kCompleted:
        ++completed_;
        break;
      case Outcome::kTimeout:
        ++timeouts_;
        break;
      case Outcome::kError:
        ++errors_;
        break;
    }
    free_slots_ += job.nodes;
    running_.erase(
        std::find_if(running_.begin(), running_.end(),
                     [&](const batch::Reservation& r) {
                       return r.job_id == job.id;
                     }));
    --active_;
    inflight_.erase(pending.key);
    cv_.notify_all();
    lock.unlock();
    pending.flight->promise.set_value(std::move(reply));
    lock.lock();
  }
}

ServiceStats Service::stats() const {
  util::MutexLock lock(mutex_);
  ServiceStats s;
  s.workers = config_.workers;
  s.queue_capacity = config_.queue_capacity;
  s.queue_depth = queue_.size();
  s.max_queue_depth = max_queue_depth_;
  s.active = active_;
  s.received = received_;
  s.completed = completed_;
  s.coalesced = coalesced_;
  s.shed = shed_;
  s.timeouts = timeouts_;
  s.errors = errors_;
  s.machines_built = machines_built_;
  s.machines_reused = machines_reused_;
  s.cache = cache_.stats();
  return s;
}

std::string Service::stats_reply(const ServiceStats& s) {
  std::ostringstream os;
  os << R"({"op":"stats","status":"ok","workers":)" << s.workers
     << R"(,"queue_capacity":)" << s.queue_capacity << R"(,"queue_depth":)"
     << s.queue_depth << R"(,"max_queue_depth":)" << s.max_queue_depth
     << R"(,"active":)" << s.active << R"(,"received":)" << s.received
     << R"(,"completed":)" << s.completed << R"(,"coalesced":)"
     << s.coalesced << R"(,"shed":)" << s.shed << R"(,"timeouts":)"
     << s.timeouts << R"(,"errors":)" << s.errors
     << R"(,"machines_built":)" << s.machines_built
     << R"(,"machines_reused":)" << s.machines_reused << R"(,"cache":{)"
     << R"("capacity":)" << s.cache.capacity << R"(,"size":)" << s.cache.size
     << R"(,"hits":)" << s.cache.hits << R"(,"misses":)" << s.cache.misses
     << R"(,"evictions":)" << s.cache.evictions << "}}";
  return os.str();
}

void Service::shutdown() {
  std::vector<std::shared_ptr<Flight>> orphans;
  {
    util::MutexLock lock(mutex_);
    if (!stop_) {
      stop_ = true;
      while (!queue_.empty()) {
        const batch::Job job = queue_.pop(0);
        auto it = pending_.find(job.id);
        CTESIM_DCHECK(it != pending_.end(),
                      "queued job without a pending entry");
        inflight_.erase(it->second.key);
        orphans.push_back(std::move(it->second.flight));
        pending_.erase(it);
      }
    }
    cv_.notify_all();
  }
  const auto goodbye = std::make_shared<const std::string>(
      error_reply("shutting_down", "server is shutting down"));
  for (const auto& flight : orphans) flight->promise.set_value(goodbye);
  for (auto& thread : threads_) {
    if (thread.joinable()) thread.join();
  }
}

void Service::export_trace(const std::string& path) const {
  {
    util::MutexLock lock(mutex_);
    CTESIM_EXPECTS(stop_);  // workers write their recorders unsynchronized
  }
  trace::Recorder merged(true);
  rec_pool_.merge_into(&merged);
  trace::write_chrome_trace(merged, path);
}

void Service::set_worker_hook(std::function<void()> hook) {
  util::MutexLock lock(mutex_);
  worker_hook_ = std::move(hook);
}

}  // namespace ctesim::server
