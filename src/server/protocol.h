// Wire protocol of ctesim-as-a-service: one JSON object per line in both
// directions (newline-delimited, UTF-8). Three operations:
//
//   {"op":"ping"}                      -> {"op":"ping","status":"ok"}
//   {"op":"stats"}                     -> live server introspection
//   {"op":"simulate", ...}             -> run (or replay from cache) a
//                                         capacity-planning what-if study
//
// A simulate request names a machine (a built-in model or an inline INI
// description, see arch/machine_io.h), a synthetic workload (the
// batch::WorkloadConfig knobs), the queue/placement policies and a seed.
// Unknown fields are an error — silent typos must not change a study.
//
// Replies are deterministic: an identical resolved request serializes to
// identical bytes on every platform (fixed field order, fixed float
// formatting), which is what makes exact result caching possible. Errors
// are typed: {"op":"error","status":"error","code":<code>,"message":...}
// with code one of bad_request | oversized | overloaded | timeout |
// shutting_down | internal.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "batch/metrics.h"
#include "batch/queue.h"
#include "batch/workload.h"
#include "sampling/plan.h"
#include "sched/allocator.h"

namespace ctesim::server {

enum class Op {
  kPing,
  kStats,
  kSimulate,
};

/// A fully-parsed simulate request, defaults filled in.
struct SimulateSpec {
  /// Built-in machine name ("cte-arm", "marenostrum4"); ignored when
  /// `machine_ini` is set.
  std::string machine = "cte-arm";
  /// Inline INI machine description (arch::parse_machine_string).
  std::string machine_ini;
  batch::WorkloadConfig workload;
  batch::QueuePolicy queue = batch::QueuePolicy::kEasyBackfill;
  sched::Policy placement = sched::Policy::kContiguous;
  std::uint64_t seed = 1;
  /// Queue-wait deadline in real milliseconds; 0 = the server default. A
  /// request still waiting for a worker past its deadline is answered with
  /// a typed "timeout" error instead of running late.
  double deadline_ms = 0.0;
  /// DVFS ladder index every job runs at (power::dvfs_states(); 0 =
  /// nominal). Downclocked states stretch compute-bound runtimes and cut
  /// active power — the what-if knob energy studies sweep.
  int dvfs_state = 0;
  /// Cluster power cap in watts, 0 = uncapped (batch::ClusterOptions).
  double power_cap_w = 0.0;
  /// Let capped backfill candidates start at a deeper DVFS state.
  bool dvfs_backfill = false;
  /// Representative-region sampling of the per-job runtime estimates
  /// ("sampling":"sampled" plus the sampling_k / sampling_warmup /
  /// sampling_phases / sampling_seed knobs). Exact (the default) leaves the
  /// request — and its cache key and reply — exactly as before the knob
  /// existed; sampled requests carry the plan in the cache key, so a
  /// sampled reply can never be served where an exact one was asked for.
  sampling::SamplingPlan sampling;
};

struct Request {
  Op op = Op::kPing;
  SimulateSpec sim;  ///< meaningful when op == kSimulate
};

/// Malformed or invalid request text; maps to a "bad_request" reply.
class ProtocolError : public std::runtime_error {
 public:
  explicit ProtocolError(const std::string& what)
      : std::runtime_error(what) {}
};

/// Parse and validate one request line. Throws ProtocolError on anything
/// other than a well-formed request: bad JSON, a non-object document, an
/// unknown op, unknown or wrongly-typed fields, out-of-range values.
Request parse_request(const std::string& line);

/// Canonical serialization of the workload half of the cache key: every
/// resolved field of (workload, queue, placement) in fixed order with fixed
/// formatting. The seed is deliberately NOT part of it — the cache key
/// keeps it as its own component.
std::string canonical_workload(const SimulateSpec& spec);

// --- reply builders (single line, no trailing newline) ---------------------

std::string ping_reply();
std::string error_reply(const std::string& code, const std::string& message);

/// Aggregate of the per-job sampled-runtime estimates a sampled request
/// adds to its reply ("sampling":{...} with CI fields). Jobs are
/// independent, so the CI half-widths combine in quadrature.
struct SamplingSummary {
  double total_node_s = 0.0;    ///< sum over jobs of runtime x nodes
  double ci_half_node_s = 0.0;  ///< 95% half-width of total_node_s
  std::uint64_t steps_total = 0;
  std::uint64_t steps_simulated = 0;
};

/// The simulate reply: echoes the cache-key triple, then the cluster
/// metrics and the engine event count of the run. Byte-deterministic.
/// `sampling` adds the CI block of a sampled request; null (every exact
/// request) keeps the reply byte-identical to pre-sampling servers.
std::string simulate_reply(std::uint64_t config_hash,
                           std::uint64_t workload_hash, std::uint64_t seed,
                           const batch::ClusterMetrics& metrics,
                           std::uint64_t engine_events,
                           const SamplingSummary* sampling = nullptr);

}  // namespace ctesim::server
