// Bounded LRU cache of finished simulate replies, keyed by the triple
// (config-hash, workload-hash, seed). Because the simulator is
// deterministic and replies serialize with fixed formatting, a hit can
// return the *exact bytes* of the original miss — the client cannot tell
// (and must not be able to tell) whether its study ran or was replayed.
// Thread-safe: workers insert while connection threads probe.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <string>
#include <utility>

#include "util/thread_annotations.h"

namespace ctesim::server {

struct CacheKey {
  std::uint64_t config_hash = 0;    ///< canonical machine INI bytes
  std::uint64_t workload_hash = 0;  ///< canonical workload + policies
  std::uint64_t seed = 0;

  bool operator<(const CacheKey& other) const {
    if (config_hash != other.config_hash) {
      return config_hash < other.config_hash;
    }
    if (workload_hash != other.workload_hash) {
      return workload_hash < other.workload_hash;
    }
    return seed < other.seed;
  }
  bool operator==(const CacheKey&) const = default;
};

class ResultCache {
 public:
  struct Stats {
    std::size_t capacity = 0;
    std::size_t size = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
  };

  /// `capacity` = max cached replies; 0 disables caching entirely (every
  /// get misses, put is a no-op).
  explicit ResultCache(std::size_t capacity) : capacity_(capacity) {}

  /// The cached reply bytes, or nullptr on a miss. A hit refreshes the
  /// entry's LRU position. Counts toward hits/misses either way.
  std::shared_ptr<const std::string> get(const CacheKey& key)
      CTESIM_EXCLUDES(mutex_);

  /// Insert (or refresh) an entry, evicting the least-recently-used entry
  /// beyond capacity.
  void put(const CacheKey& key, std::shared_ptr<const std::string> reply)
      CTESIM_EXCLUDES(mutex_);

  Stats stats() const CTESIM_EXCLUDES(mutex_);

 private:
  using Entry = std::pair<CacheKey, std::shared_ptr<const std::string>>;

  mutable util::Mutex mutex_;
  const std::size_t capacity_;  ///< immutable after construction
  std::list<Entry> lru_ CTESIM_GUARDED_BY(mutex_);  ///< front = most recent
  std::map<CacheKey, std::list<Entry>::iterator> index_
      CTESIM_GUARDED_BY(mutex_);
  std::uint64_t hits_ CTESIM_GUARDED_BY(mutex_) = 0;
  std::uint64_t misses_ CTESIM_GUARDED_BY(mutex_) = 0;
  std::uint64_t evictions_ CTESIM_GUARDED_BY(mutex_) = 0;
};

}  // namespace ctesim::server
