// Minimal blocking client for the line-delimited JSON protocol: connect,
// send one request line, read one reply line. Used by tools/ctesim_client,
// bench/server_throughput and the tests.
#pragma once

#include <cstddef>
#include <string>

namespace ctesim::server {

class Client {
 public:
  /// Connects immediately; throws std::runtime_error on failure.
  Client(const std::string& host, int port);
  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Send `line` (a newline is appended if missing) and block for the
  /// reply line (returned without its trailing newline). Throws
  /// std::runtime_error if the connection drops mid-exchange.
  std::string request(const std::string& line);

 private:
  int fd_ = -1;
  std::string buffer_;  ///< bytes received past the last reply line
};

}  // namespace ctesim::server
