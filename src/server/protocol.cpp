#include "server/protocol.h"

#include <cmath>
#include <sstream>

#include "power/power_model.h"
#include "util/hash.h"
#include "util/json.h"

namespace ctesim::server {

namespace {

[[noreturn]] void bad(const std::string& what) { throw ProtocolError(what); }

double require_number(const json::Value& v, const std::string& field) {
  if (v.type != json::Value::Type::kNumber) {
    bad("field '" + field + "' must be a number");
  }
  return v.number;
}

std::string require_string(const json::Value& v, const std::string& field) {
  if (v.type != json::Value::Type::kString) {
    bad("field '" + field + "' must be a string");
  }
  return v.string;
}

int require_int(const json::Value& v, const std::string& field, int lo,
                int hi) {
  const double d = require_number(v, field);
  if (d != std::floor(d) || d < lo || d > hi) {
    bad("field '" + field + "' must be an integer in [" +
        std::to_string(lo) + ", " + std::to_string(hi) + "]");
  }
  return static_cast<int>(d);
}

double require_range(const json::Value& v, const std::string& field,
                     double lo, double hi) {
  const double d = require_number(v, field);
  if (!(d >= lo && d <= hi)) {
    bad("field '" + field + "' out of range");
  }
  return d;
}

}  // namespace

Request parse_request(const std::string& line) {
  json::Value doc;
  try {
    doc = json::parse(line);
  } catch (const std::runtime_error& e) {
    bad(e.what());
  }
  if (!doc.is_object()) bad("request must be a JSON object");

  const json::Value* op = doc.find("op");
  if (!op) bad("missing field 'op'");
  const std::string op_name = require_string(*op, "op");

  Request request;
  if (op_name == "ping") {
    request.op = Op::kPing;
  } else if (op_name == "stats") {
    request.op = Op::kStats;
  } else if (op_name == "simulate") {
    request.op = Op::kSimulate;
  } else {
    bad("unknown op '" + op_name + "'");
  }

  if (request.op != Op::kSimulate) {
    for (const auto& [key, value] : doc.object) {
      if (key != "op") bad("unknown field '" + key + "' for op " + op_name);
    }
    return request;
  }

  SimulateSpec& spec = request.sim;
  batch::WorkloadConfig& w = spec.workload;
  bool sampling_knob_given = false;  // any sampling_* sub-knob
  for (const auto& [key, value] : doc.object) {
    if (key == "op") {
      continue;
    } else if (key == "machine") {
      spec.machine = require_string(value, key);
    } else if (key == "machine_ini") {
      spec.machine_ini = require_string(value, key);
    } else if (key == "jobs") {
      w.num_jobs = require_int(value, key, 1, 1000000);
    } else if (key == "mean_interarrival_s") {
      w.mean_interarrival_s = require_range(value, key, 1e-6, 1e9);
    } else if (key == "burst_fraction") {
      w.burst_fraction = require_range(value, key, 0.0, 1.0);
    } else if (key == "min_nodes") {
      w.min_nodes = require_int(value, key, 1, 1 << 20);
    } else if (key == "max_nodes") {
      w.max_nodes = require_int(value, key, 1, 1 << 20);
    } else if (key == "min_runtime_s") {
      w.min_runtime_s = require_range(value, key, 1e-3, 1e9);
    } else if (key == "max_runtime_s") {
      w.max_runtime_s = require_range(value, key, 1e-3, 1e9);
    } else if (key == "walltime_pad_min") {
      w.walltime_pad_min = require_range(value, key, 1.0, 100.0);
    } else if (key == "walltime_pad_max") {
      w.walltime_pad_max = require_range(value, key, 1.0, 100.0);
    } else if (key == "queue") {
      const std::string name = require_string(value, key);
      if (name == "easy") {
        spec.queue = batch::QueuePolicy::kEasyBackfill;
      } else if (name == "fcfs") {
        spec.queue = batch::QueuePolicy::kFcfs;
      } else {
        bad("field 'queue' must be easy or fcfs");
      }
    } else if (key == "placement") {
      const std::string name = require_string(value, key);
      if (name == "contiguous") {
        spec.placement = sched::Policy::kContiguous;
      } else if (name == "linear") {
        spec.placement = sched::Policy::kLinear;
      } else if (name == "random") {
        spec.placement = sched::Policy::kRandom;
      } else {
        bad("field 'placement' must be contiguous, linear or random");
      }
    } else if (key == "seed") {
      // Doubles carry integers exactly to 2^53; enough seed space, and it
      // keeps the wire format plain JSON numbers.
      const double d = require_number(value, key);
      if (d != std::floor(d) || d < 0 || d > 9007199254740992.0) {
        bad("field 'seed' must be a non-negative integer <= 2^53");
      }
      spec.seed = static_cast<std::uint64_t>(d);
    } else if (key == "deadline_ms") {
      spec.deadline_ms = require_range(value, key, 0.0, 1e9);
    } else if (key == "dvfs_state") {
      const int last =
          static_cast<int>(power::dvfs_states().size()) - 1;
      spec.dvfs_state = require_int(value, key, 0, last);
    } else if (key == "power_cap_w") {
      spec.power_cap_w = require_range(value, key, 0.0, 1e12);
    } else if (key == "dvfs_backfill") {
      if (value.type != json::Value::Type::kBool) {
        bad("field 'dvfs_backfill' must be a boolean");
      }
      spec.dvfs_backfill = value.boolean;
    } else if (key == "sampling") {
      const std::string name = require_string(value, key);
      if (name == "exact") {
        spec.sampling.mode = sampling::Mode::kExact;
      } else if (name == "sampled") {
        spec.sampling.mode = sampling::Mode::kSampled;
      } else {
        bad("field 'sampling' must be exact or sampled");
      }
    } else if (key == "sampling_k") {
      spec.sampling.k = require_int(value, key, 1, 4096);
      sampling_knob_given = true;
    } else if (key == "sampling_warmup") {
      spec.sampling.warmup =
          static_cast<long long>(require_int(value, key, 0, 64));
      sampling_knob_given = true;
    } else if (key == "sampling_phases") {
      spec.sampling.max_phases =
          static_cast<std::size_t>(require_int(value, key, 1, 64));
      sampling_knob_given = true;
    } else if (key == "sampling_seed") {
      const double d = require_number(value, key);
      if (d != std::floor(d) || d < 0 || d > 9007199254740992.0) {
        bad("field 'sampling_seed' must be a non-negative integer <= 2^53");
      }
      spec.sampling.seed = static_cast<std::uint64_t>(d);
      sampling_knob_given = true;
    } else {
      bad("unknown field '" + key + "'");
    }
  }
  if (w.max_nodes < w.min_nodes) {
    bad("max_nodes must be >= min_nodes");
  }
  if (w.max_runtime_s < w.min_runtime_s) {
    bad("max_runtime_s must be >= min_runtime_s");
  }
  if (w.walltime_pad_max < w.walltime_pad_min) {
    bad("walltime_pad_max must be >= walltime_pad_min");
  }
  if (!spec.machine_ini.empty() && doc.find("machine")) {
    bad("give either 'machine' or 'machine_ini', not both");
  }
  if (sampling_knob_given && spec.sampling.mode != sampling::Mode::kSampled) {
    bad("sampling_* knobs require \"sampling\":\"sampled\"");
  }
  return request;
}

std::string canonical_workload(const SimulateSpec& spec) {
  const batch::WorkloadConfig& w = spec.workload;
  std::ostringstream os;
  os << "jobs=" << w.num_jobs
     << ";mean_interarrival_s=" << json::number(w.mean_interarrival_s)
     << ";burst_fraction=" << json::number(w.burst_fraction)
     << ";min_nodes=" << w.min_nodes << ";max_nodes=" << w.max_nodes
     << ";min_runtime_s=" << json::number(w.min_runtime_s)
     << ";max_runtime_s=" << json::number(w.max_runtime_s)
     << ";walltime_pad_min=" << json::number(w.walltime_pad_min)
     << ";walltime_pad_max=" << json::number(w.walltime_pad_max)
     << ";queue=" << batch::name_of(spec.queue)
     << ";placement=" << sched::name_of(spec.placement)
     << ";dvfs_state=" << spec.dvfs_state
     << ";power_cap_w=" << json::number(spec.power_cap_w)
     << ";dvfs_backfill=" << (spec.dvfs_backfill ? 1 : 0);
  // Appended only for sampled requests: exact keys keep their pre-sampling
  // spelling (cached replies survive the upgrade), and a sampled request
  // can never hash onto an exact one's cache slot.
  if (spec.sampling.mode != sampling::Mode::kExact) {
    os << ";sampling=" << sampling::name_of(spec.sampling.mode)
       << ";sampling_k=" << spec.sampling.k
       << ";sampling_warmup=" << spec.sampling.warmup
       << ";sampling_phases=" << spec.sampling.max_phases
       << ";sampling_seed=" << spec.sampling.seed;
  }
  return os.str();
}

std::string ping_reply() { return R"({"op":"ping","status":"ok"})"; }

std::string error_reply(const std::string& code,
                        const std::string& message) {
  return std::string(R"({"op":"error","status":"error","code":")") +
         json::escape(code) + R"(","message":")" + json::escape(message) +
         "\"}";
}

std::string simulate_reply(std::uint64_t config_hash,
                           std::uint64_t workload_hash, std::uint64_t seed,
                           const batch::ClusterMetrics& m,
                           std::uint64_t engine_events,
                           const SamplingSummary* sampling) {
  std::ostringstream os;
  os << R"({"op":"simulate","status":"ok","config_hash":")"
     << hash_hex(config_hash) << R"(","workload_hash":")"
     << hash_hex(workload_hash) << R"(","seed":)" << seed
     << R"(,"engine_events":)" << engine_events << R"(,"metrics":{)"
     << R"("jobs":)" << m.jobs << R"(,"killed":)" << m.killed
     << R"(,"interrupted":)" << m.interrupted << R"(,"failed":)" << m.failed
     << R"(,"makespan_s":)" << json::number(m.makespan_s)
     << R"(,"utilization":)" << json::number(m.utilization)
     << R"(,"goodput":)" << json::number(m.goodput)
     << R"(,"availability":)" << json::number(m.availability)
     << R"(,"wasted_node_h":)" << json::number(m.wasted_node_h)
     << R"(,"mean_attempts":)" << json::number(m.mean_attempts)
     << R"(,"mean_wait_s":)" << json::number(m.mean_wait_s)
     << R"(,"p95_wait_s":)" << json::number(m.p95_wait_s)
     << R"(,"p99_wait_s":)" << json::number(m.p99_wait_s)
     << R"(,"mean_bounded_slowdown":)" << json::number(m.mean_bounded_slowdown)
     << R"(,"p95_bounded_slowdown":)" << json::number(m.p95_bounded_slowdown)
     << R"(,"p99_bounded_slowdown":)" << json::number(m.p99_bounded_slowdown)
     << R"(,"mean_hops":)" << json::number(m.mean_hops)
     << R"(,"mean_placement_slowdown":)"
     << json::number(m.mean_placement_slowdown)
     << R"(,"time_avg_fragmentation":)"
     << json::number(m.time_avg_fragmentation)
     << R"(,"energy_to_solution_j":)" << json::number(m.energy_to_solution_j)
     << R"(,"edp_js":)" << json::number(m.edp_js)
     << R"(,"mean_power_w":)" << json::number(m.mean_power_w)
     << R"(,"peak_power_w":)" << json::number(m.peak_power_w)
     << R"(,"wasted_energy_j":)" << json::number(m.wasted_energy_j)
     << R"(,"capped_starts":)" << m.capped_starts
     << R"(,"downclocked_jobs":)" << m.downclocked_jobs << "}";
  if (sampling) {
    const double speedup =
        sampling->steps_simulated > 0
            ? static_cast<double>(sampling->steps_total) /
                  static_cast<double>(sampling->steps_simulated)
            : 1.0;
    os << R"(,"sampling":{"total_node_s":)"
       << json::number(sampling->total_node_s) << R"(,"ci_half_node_s":)"
       << json::number(sampling->ci_half_node_s) << R"(,"steps_total":)"
       << sampling->steps_total << R"(,"steps_simulated":)"
       << sampling->steps_simulated << R"(,"speedup":)"
       << json::number(speedup) << "}";
  }
  os << "}";
  return os.str();
}

}  // namespace ctesim::server
