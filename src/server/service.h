// The capacity-planning service behind ctesim-as-a-service: parses request
// lines, runs simulate studies concurrently on a fixed worker-thread pool,
// and answers with deterministic reply bytes. Transport-agnostic — the TCP
// layer (server/tcp.h), the bench harness and the tests all drive the same
// handle() entry point.
//
// Production concerns are real features here:
//   * Immutable shared machines: each distinct machine config is built and
//     validated once, then shared read-only across workers (build-once,
//     read-many; the stats op reports built vs reused).
//   * Exact result cache: replies are cached by (config-hash,
//     workload-hash, seed); determinism makes a hit byte-identical to the
//     original miss, so clients cannot observe the difference.
//   * Admission control: at most queue_capacity simulate requests wait;
//     beyond that the service sheds with a typed "overloaded" reply
//     instead of queueing unboundedly. Pending requests are *ordered* by a
//     batch::JobQueue over a slot pool of `workers` slots — the same FCFS /
//     EASY-backfill policies the simulated cluster schedules jobs with,
//     turned on the server itself: a wide (expensive) request reserves
//     several slots and cheap requests backfill around it.
//   * Request coalescing: identical in-flight requests attach to one
//     execution and all receive the same bytes — including the deadline
//     outcome: a coalesced request inherits the original's queue-wait
//     deadline, so an original that times out answers "timeout" to every
//     coalesced caller too (documented in docs/SERVER.md).
//   * Per-request queue-wait deadlines: a request that a worker picks up
//     past its deadline is answered "timeout" instead of running late.
//
// Threading: handle() is called concurrently from connection threads; the
// admission state is guarded by one mutex, and the guarding is *proved* at
// compile time — every protected member carries CTESIM_GUARDED_BY and the
// clang `thread-safety` CI job builds with -Werror=thread-safety (see
// docs/STATIC_ANALYSIS.md §6). Each worker owns a private trace::Recorder
// from a trace::RecorderPool (the Recorder itself is not thread-safe);
// export_trace() merges them deterministically after shutdown. The
// *simulation* path stays wall-clock-free — real time is only read for
// queue deadlines and trace timestamps, never inside a study.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "arch/machine.h"
#include "batch/queue.h"
#include "server/cache.h"
#include "server/protocol.h"
#include "trace/recorder.h"
#include "trace/recorder_pool.h"
#include "util/thread_annotations.h"

namespace ctesim::server {

struct ServiceConfig {
  int workers = 4;
  /// Max simulate requests waiting for a worker; beyond it, shed.
  int queue_capacity = 32;
  std::size_t cache_capacity = 256;
  /// Requests longer than this are answered "oversized" unparsed.
  std::size_t max_request_bytes = 1 << 16;
  /// How pending requests are ordered on the worker-slot pool.
  batch::QueuePolicy admission_policy = batch::QueuePolicy::kEasyBackfill;
  /// Hard per-request workload size cap (admission guard).
  int max_jobs_per_request = 20000;
  /// Default queue-wait deadline in real ms; 0 = none. A request may set
  /// its own with the "deadline_ms" field.
  double default_deadline_ms = 0.0;
  /// Record request spans / queue counters (export_trace()).
  bool tracing = false;
};

struct ServiceStats {
  int workers = 0;
  int queue_capacity = 0;
  std::size_t queue_depth = 0;
  std::size_t max_queue_depth = 0;
  int active = 0;              ///< requests executing right now
  std::uint64_t received = 0;  ///< every request line seen
  std::uint64_t completed = 0; ///< simulate runs that produced a reply
  std::uint64_t coalesced = 0; ///< attached to an identical in-flight run
  std::uint64_t shed = 0;      ///< rejected with "overloaded"
  std::uint64_t timeouts = 0;  ///< rejected with "timeout" at dequeue
  std::uint64_t errors = 0;    ///< bad_request / oversized / internal
  std::uint64_t machines_built = 0;
  std::uint64_t machines_reused = 0;
  ResultCache::Stats cache;
};

class Service {
 public:
  explicit Service(const ServiceConfig& config);
  ~Service();
  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Handle one request line, blocking until its reply is ready. Safe to
  /// call from any number of threads. Never throws: every failure maps to
  /// a typed error reply.
  std::string handle(const std::string& request_line)
      CTESIM_EXCLUDES(mutex_);

  ServiceStats stats() const CTESIM_EXCLUDES(mutex_);

  /// Serialize stats as the wire-format stats reply (single line).
  static std::string stats_reply(const ServiceStats& stats);

  /// Stop accepting work, fail queued requests with "shutting_down",
  /// finish in-flight runs and join the workers. Idempotent.
  void shutdown() CTESIM_EXCLUDES(mutex_);

  /// Write the merged per-worker Chrome trace. Only meaningful with
  /// config.tracing; requires shutdown() to have completed (the per-worker
  /// recorders are unsynchronized while workers live).
  void export_trace(const std::string& path) const CTESIM_EXCLUDES(mutex_);

  /// Test hook: runs on a worker right after it dequeues a request,
  /// before the deadline check. Set before sending traffic.
  void set_worker_hook(std::function<void()> hook) CTESIM_EXCLUDES(mutex_);

 private:
  struct Flight {
    std::promise<std::shared_ptr<const std::string>> promise;
    std::shared_future<std::shared_ptr<const std::string>> future;
  };
  struct Pending {
    SimulateSpec spec;
    std::shared_ptr<const arch::MachineModel> machine;
    CacheKey key;
    std::shared_ptr<Flight> flight;
    std::int64_t admitted_ns = 0;  ///< real time at admission (ns clock)
    double deadline_ms = 0.0;      ///< 0 = none
  };

  std::string handle_simulate(const SimulateSpec& spec)
      CTESIM_EXCLUDES(mutex_);
  /// Build-or-reuse the machine for `spec` (mutex_ held). Throws
  /// ProtocolError on unknown names, bad INI or non-torus interconnects.
  std::shared_ptr<const arch::MachineModel> resolve_machine_locked(
      const SimulateSpec& spec, std::uint64_t* config_hash)
      CTESIM_REQUIRES(mutex_);
  std::shared_ptr<const std::string> run_simulation(const Pending& pending,
                                                    int worker_id);
  void worker_loop(int worker_id) CTESIM_EXCLUDES(mutex_);
  /// Real time as nanoseconds since construction — the deadline clock.
  /// (Server code; the simulation itself never reads real time.)
  std::int64_t real_now_ns() const;
  /// Real time as picoseconds since construction — the trace time axis
  /// only. ps in a signed 64-bit sim::Time wraps after ~106 days of
  /// uptime; deadline math therefore stays on the ns clock above, and
  /// past that bound only trace timestamps degrade.
  sim::Time real_now_ps() const;
  int slot_weight(const SimulateSpec& spec) const;
  static double cost_estimate(const SimulateSpec& spec);

  const ServiceConfig config_;
  ResultCache cache_;  ///< internally synchronized

  mutable util::Mutex mutex_;
  std::condition_variable_any cv_;  ///< waits on util::MutexLock
  bool stop_ CTESIM_GUARDED_BY(mutex_) = false;
  /// Pending-request planner.
  batch::JobQueue queue_ CTESIM_GUARDED_BY(mutex_);
  /// seq -> admitted request.
  std::map<int, Pending> pending_ CTESIM_GUARDED_BY(mutex_);
  std::vector<batch::Reservation> running_ CTESIM_GUARDED_BY(mutex_);
  std::map<CacheKey, std::shared_ptr<Flight>> inflight_
      CTESIM_GUARDED_BY(mutex_);
  int free_slots_ CTESIM_GUARDED_BY(mutex_);
  /// Admission clock, ticks per dispatch.
  double virtual_now_ CTESIM_GUARDED_BY(mutex_) = 0.0;
  int next_seq_ CTESIM_GUARDED_BY(mutex_) = 0;
  int active_ CTESIM_GUARDED_BY(mutex_) = 0;
  std::size_t max_queue_depth_ CTESIM_GUARDED_BY(mutex_) = 0;
  std::uint64_t received_ CTESIM_GUARDED_BY(mutex_) = 0;
  std::uint64_t completed_ CTESIM_GUARDED_BY(mutex_) = 0;
  std::uint64_t coalesced_ CTESIM_GUARDED_BY(mutex_) = 0;
  std::uint64_t shed_ CTESIM_GUARDED_BY(mutex_) = 0;
  std::uint64_t timeouts_ CTESIM_GUARDED_BY(mutex_) = 0;
  std::uint64_t errors_ CTESIM_GUARDED_BY(mutex_) = 0;
  /// config-hash -> immutable shared model.
  std::map<std::uint64_t, std::shared_ptr<const arch::MachineModel>>
      machines_ CTESIM_GUARDED_BY(mutex_);
  /// memo -> hash.
  std::map<std::string, std::uint64_t> machine_labels_
      CTESIM_GUARDED_BY(mutex_);
  std::uint64_t machines_built_ CTESIM_GUARDED_BY(mutex_) = 0;
  std::uint64_t machines_reused_ CTESIM_GUARDED_BY(mutex_) = 0;
  std::function<void()> worker_hook_ CTESIM_GUARDED_BY(mutex_);

  // Tracing: all recorders live in the pool. Admission events are written
  // under mutex_ (the pointer is stable; the *pointee* needs the lock —
  // PT_GUARDED_BY); each worker_recs_[w] is private to worker w, written
  // lock-free by that worker only; export_trace() merges after shutdown.
  trace::RecorderPool rec_pool_;
  trace::Recorder* admission_rec_ CTESIM_PT_GUARDED_BY(mutex_) = nullptr;
  std::vector<trace::Recorder*> worker_recs_;  ///< const after construction

  std::vector<std::thread> threads_;
  const std::int64_t epoch_ns_;  ///< steady-clock origin for real_now_ps()
};

}  // namespace ctesim::server
