// TCP transport for the capacity-planning service: a listener thread
// accepts connections on 127.0.0.1 (or a given address) and spawns one
// thread per connection that reads newline-delimited request lines, hands
// them to Service::handle() and writes the reply line back. A line longer
// than max_line_bytes is answered with a typed "oversized" error and the
// connection is closed (the framing cannot be trusted past that point).
//
// Port 0 binds an ephemeral port; port() reports the actual one (tests and
// the CI smoke job use this to avoid collisions).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "util/thread_annotations.h"

namespace ctesim::server {

class Service;

struct TcpOptions {
  std::string bind_address = "127.0.0.1";
  int port = 0;  ///< 0 = ephemeral, see TcpServer::port()
  std::size_t max_line_bytes = 1 << 16;
};

class TcpServer {
 public:
  /// Binds and listens immediately (throws std::runtime_error on failure);
  /// call start() to begin accepting. `service` must outlive the server.
  TcpServer(Service& service, const TcpOptions& options);
  ~TcpServer();
  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// The port actually bound (resolves port 0).
  int port() const { return port_; }

  void start();

  /// Stop accepting, shut down live connections, join all threads.
  /// Idempotent. Does not shut the Service down.
  void stop() CTESIM_EXCLUDES(conn_mutex_);

 private:
  void accept_loop() CTESIM_EXCLUDES(conn_mutex_);
  void serve_connection(std::uint64_t id, int fd)
      CTESIM_EXCLUDES(conn_mutex_);
  /// Join connection threads that have announced completion (accept loop
  /// housekeeping, and final sweep in stop()).
  void reap_finished() CTESIM_EXCLUDES(conn_mutex_);

  Service& service_;
  const TcpOptions options_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> stop_{false};
  std::thread accept_thread_;
  util::Mutex conn_mutex_;
  /// Live sockets, shutdown() by stop().
  std::vector<int> conn_fds_ CTESIM_GUARDED_BY(conn_mutex_);
  std::uint64_t next_conn_id_ CTESIM_GUARDED_BY(conn_mutex_) = 0;
  std::map<std::uint64_t, std::thread> conn_threads_
      CTESIM_GUARDED_BY(conn_mutex_);
  /// Done, awaiting join.
  std::vector<std::uint64_t> finished_ids_ CTESIM_GUARDED_BY(conn_mutex_);
};

}  // namespace ctesim::server
