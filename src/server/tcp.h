// TCP transport for the capacity-planning service: a listener thread
// accepts connections on 127.0.0.1 (or a given address) and spawns one
// thread per connection that reads newline-delimited request lines, hands
// them to Service::handle() and writes the reply line back. A line longer
// than max_line_bytes is answered with a typed "oversized" error and the
// connection is closed (the framing cannot be trusted past that point).
//
// Port 0 binds an ephemeral port; port() reports the actual one (tests and
// the CI smoke job use this to avoid collisions).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace ctesim::server {

class Service;

struct TcpOptions {
  std::string bind_address = "127.0.0.1";
  int port = 0;  ///< 0 = ephemeral, see TcpServer::port()
  std::size_t max_line_bytes = 1 << 16;
};

class TcpServer {
 public:
  /// Binds and listens immediately (throws std::runtime_error on failure);
  /// call start() to begin accepting. `service` must outlive the server.
  TcpServer(Service& service, const TcpOptions& options);
  ~TcpServer();
  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// The port actually bound (resolves port 0).
  int port() const { return port_; }

  void start();

  /// Stop accepting, shut down live connections, join all threads.
  /// Idempotent. Does not shut the Service down.
  void stop();

 private:
  void accept_loop();
  void serve_connection(std::uint64_t id, int fd);
  /// Join connection threads that have announced completion (accept loop
  /// housekeeping, and final sweep in stop()).
  void reap_finished();

  Service& service_;
  const TcpOptions options_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> stop_{false};
  std::thread accept_thread_;
  std::mutex conn_mutex_;
  std::vector<int> conn_fds_;  ///< live sockets, shutdown() by stop()
  std::uint64_t next_conn_id_ = 0;
  std::map<std::uint64_t, std::thread> conn_threads_;
  std::vector<std::uint64_t> finished_ids_;  ///< done, awaiting join
};

}  // namespace ctesim::server
