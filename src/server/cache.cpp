#include "server/cache.h"

namespace ctesim::server {

std::shared_ptr<const std::string> ResultCache::get(const CacheKey& key) {
  util::MutexLock lock(mutex_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  return it->second->second;
}

void ResultCache::put(const CacheKey& key,
                      std::shared_ptr<const std::string> reply) {
  if (capacity_ == 0) return;
  util::MutexLock lock(mutex_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->second = std::move(reply);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, std::move(reply));
  index_[key] = lru_.begin();
  if (lru_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++evictions_;
  }
}

ResultCache::Stats ResultCache::stats() const {
  util::MutexLock lock(mutex_);
  return Stats{capacity_, lru_.size(), hits_, misses_, evictions_};
}

}  // namespace ctesim::server
