// ASCII visualizations for the figure harnesses: line charts (the
// scalability figures), heatmaps (Fig. 4's all-pairs bandwidth map) and 2D
// density maps (Fig. 5's bandwidth distribution).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace ctesim::report {

/// Multi-series scatter/line chart on a character grid. Optional log2/log10
/// axes (the paper's scalability plots are log-log).
class LineChart {
 public:
  LineChart(std::string title, int width = 72, int height = 20);

  void set_log_x(bool on) { log_x_ = on; }
  void set_log_y(bool on) { log_y_ = on; }
  void set_axis_labels(std::string x, std::string y);

  /// Add a series; each gets a distinct marker character.
  void series(const std::string& name, std::vector<double> xs,
              std::vector<double> ys);

  void print(std::ostream& os) const;

 private:
  struct Series {
    std::string name;
    std::vector<double> xs;
    std::vector<double> ys;
    char marker;
  };

  std::string title_;
  std::string x_label_ = "x";
  std::string y_label_ = "y";
  int width_;
  int height_;
  bool log_x_ = false;
  bool log_y_ = false;
  std::vector<Series> series_;
};

/// Character-shaded heatmap of a dense matrix (row 0 printed at the top).
class Heatmap {
 public:
  Heatmap(std::string title, std::size_t rows, std::size_t cols);

  void set(std::size_t row, std::size_t col, double value);
  double get(std::size_t row, std::size_t col) const;

  /// Print with the value range mapped to " .:-=+*#%@"; each text cell is
  /// the max of a block of matrix cells when the matrix exceeds the
  /// terminal budget.
  void print(std::ostream& os, std::size_t max_cells = 96) const;

 private:
  std::string title_;
  std::size_t rows_;
  std::size_t cols_;
  std::vector<double> values_;
};

}  // namespace ctesim::report
