// Aligned-column text tables for the bench harnesses: every table/figure
// binary prints its rows the way the paper reports them, plus optional
// markdown for EXPERIMENTS.md.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace ctesim::report {

class Table {
 public:
  Table(std::string title, std::vector<std::string> headers);

  /// Append one row (must match the header count).
  void row(std::vector<std::string> cells);

  /// Convenience: first cell label, remaining numeric with `precision`.
  void row(const std::string& label, const std::vector<double>& values,
           int precision = 2);

  std::size_t rows() const { return rows_.size(); }
  const std::string& cell(std::size_t r, std::size_t c) const;

  /// Render with box-drawing alignment.
  void print(std::ostream& os) const;

  /// Render as a GitHub-markdown table.
  void print_markdown(std::ostream& os) const;

 private:
  std::vector<std::size_t> widths() const;

  std::string title_;
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with fixed precision (helper used across benches).
std::string fixed(double value, int precision = 2);

}  // namespace ctesim::report
