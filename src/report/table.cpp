#include "report/table.h"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "util/check.h"

namespace ctesim::report {

std::string fixed(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

Table::Table(std::string title, std::vector<std::string> headers)
    : title_(std::move(title)), headers_(std::move(headers)) {
  CTESIM_EXPECTS(!headers_.empty());
}

void Table::row(std::vector<std::string> cells) {
  CTESIM_EXPECTS(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::row(const std::string& label, const std::vector<double>& values,
                int precision) {
  CTESIM_EXPECTS(values.size() + 1 == headers_.size());
  std::vector<std::string> cells;
  cells.reserve(headers_.size());
  cells.push_back(label);
  for (double v : values) cells.push_back(fixed(v, precision));
  row(std::move(cells));
}

const std::string& Table::cell(std::size_t r, std::size_t c) const {
  CTESIM_EXPECTS(r < rows_.size() && c < headers_.size());
  return rows_[r][c];
}

std::vector<std::size_t> Table::widths() const {
  std::vector<std::size_t> w(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    w[c] = headers_[c].size();
  }
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      w[c] = std::max(w[c], r[c].size());
    }
  }
  return w;
}

void Table::print(std::ostream& os) const {
  const auto w = widths();
  if (!title_.empty()) os << "== " << title_ << " ==\n";
  auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "" : "  ");
      // Left-align the first column, right-align numerics.
      if (c == 0) {
        os << cells[c] << std::string(w[c] - cells[c].size(), ' ');
      } else {
        os << std::string(w[c] - cells[c].size(), ' ') << cells[c];
      }
    }
    os << '\n';
  };
  line(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < w.size(); ++c) total += w[c] + (c ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& r : rows_) line(r);
}

void Table::print_markdown(std::ostream& os) const {
  if (!title_.empty()) os << "### " << title_ << "\n\n";
  os << '|';
  for (const auto& h : headers_) os << ' ' << h << " |";
  os << "\n|";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << (c == 0 ? " --- |" : " ---: |");
  }
  os << '\n';
  for (const auto& r : rows_) {
    os << '|';
    for (const auto& cell : r) os << ' ' << cell << " |";
    os << '\n';
  }
}

}  // namespace ctesim::report
