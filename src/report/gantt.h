// ASCII Gantt chart of a simulated-MPI execution trace: one lane per rank,
// compute/send/recv intervals shaded differently. Gives the classic
// "timeline view" (Paraver/Vampir style) for small simulations.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "simmpi/world.h"

namespace ctesim::report {

class Gantt {
 public:
  /// Builds the chart from a recorded trace (WorldOptions::trace = true).
  /// `width` is the number of character columns for the time axis.
  Gantt(std::string title, const std::vector<mpi::TraceRecord>& trace,
        int num_ranks, int width = 72);

  void print(std::ostream& os) const;

  /// Fraction of the makespan rank `r` spent in records of `kind`
  /// ("compute", "send", "recv") — the utilization numbers printed in the
  /// legend, exposed for tests.
  double busy_fraction(int rank, const std::string& kind) const;

  double makespan() const { return t_end_; }

 private:
  char glyph_for(const char* kind) const;

  std::string title_;
  std::vector<mpi::TraceRecord> trace_;
  int num_ranks_;
  int width_;
  double t_end_ = 0.0;
};

}  // namespace ctesim::report
