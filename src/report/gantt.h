// ASCII Gantt chart of a simulated-MPI execution trace: one lane per rank,
// compute/send/recv intervals shaded differently. Gives the classic
// "timeline view" (Paraver/Vampir style) for small simulations.
//
// Renders directly from the observability subsystem: any trace::Recorder
// holding per-rank spans (track kind kRank, e.g. what mpi::World records)
// can be drawn; spans on other tracks are ignored.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "trace/recorder.h"

namespace ctesim::report {

class Gantt {
 public:
  /// Builds the chart from the recorder a traced run filled in (see
  /// mpi::WorldOptions::trace / ::recorder). `width` is the number of
  /// character columns for the time axis.
  Gantt(std::string title, const trace::Recorder& recorder, int num_ranks,
        int width = 72);

  /// Same, from raw spans (tests, hand-built timelines).
  Gantt(std::string title, const std::vector<trace::Span>& spans,
        int num_ranks, int width = 72);

  void print(std::ostream& os) const;

  /// Fraction of the makespan rank `r` spent in spans named `kind`
  /// ("compute", "send", "recv") — the utilization numbers printed in the
  /// legend, exposed for tests.
  double busy_fraction(int rank, const std::string& kind) const;

  double makespan() const { return t_end_; }

 private:
  char glyph_for(const std::string& kind) const;

  std::string title_;
  std::vector<trace::Span> trace_;  ///< rank-track spans only
  int num_ranks_;
  int width_;
  double t_end_ = 0.0;
};

}  // namespace ctesim::report
