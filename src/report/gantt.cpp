#include "report/gantt.h"

#include <algorithm>
#include <cstring>
#include <ostream>

#include "util/check.h"
#include "util/units.h"

namespace ctesim::report {

Gantt::Gantt(std::string title, const std::vector<mpi::TraceRecord>& trace,
             int num_ranks, int width)
    : title_(std::move(title)),
      trace_(trace),
      num_ranks_(num_ranks),
      width_(width) {
  CTESIM_EXPECTS(num_ranks >= 1);
  CTESIM_EXPECTS(width >= 16);
  for (const auto& r : trace_) {
    CTESIM_EXPECTS(r.rank >= 0 && r.rank < num_ranks);
    t_end_ = std::max(t_end_, r.end_s);
  }
}

char Gantt::glyph_for(const char* kind) const {
  if (std::strcmp(kind, "compute") == 0) return '#';
  if (std::strcmp(kind, "send") == 0) return '>';
  if (std::strcmp(kind, "recv") == 0) return '<';
  return '?';
}

double Gantt::busy_fraction(int rank, const std::string& kind) const {
  CTESIM_EXPECTS(rank >= 0 && rank < num_ranks_);
  if (t_end_ <= 0.0) return 0.0;
  double busy = 0.0;
  for (const auto& r : trace_) {
    if (r.rank == rank && kind == r.kind) {
      busy += r.end_s - r.start_s;
    }
  }
  return busy / t_end_;
}

void Gantt::print(std::ostream& os) const {
  os << "-- " << title_ << " --\n";
  if (t_end_ <= 0.0) {
    os << "(empty trace)\n";
    return;
  }
  os << "makespan " << units::format_seconds(t_end_)
     << "; '#'=compute '>'=send '<'=recv\n";
  for (int rank = 0; rank < num_ranks_; ++rank) {
    std::string lane(static_cast<std::size_t>(width_), '.');
    // Paint in trace order; later records overwrite (they are rarer and
    // usually shorter, so communication stays visible over compute).
    for (const auto& r : trace_) {
      if (r.rank != rank) continue;
      const int c0 = std::clamp(
          static_cast<int>(r.start_s / t_end_ * width_), 0, width_ - 1);
      const int c1 = std::clamp(
          static_cast<int>(r.end_s / t_end_ * width_), c0, width_ - 1);
      for (int c = c0; c <= c1; ++c) {
        lane[static_cast<std::size_t>(c)] = glyph_for(r.kind);
      }
    }
    char label[16];
    std::snprintf(label, sizeof(label), "r%-3d |", rank);
    os << label << lane << "| compute "
       << static_cast<int>(100.0 * busy_fraction(rank, "compute") + 0.5)
       << "%\n";
  }
}

}  // namespace ctesim::report
