#include "report/gantt.h"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "util/check.h"
#include "util/units.h"

namespace ctesim::report {

Gantt::Gantt(std::string title, const trace::Recorder& recorder,
             int num_ranks, int width)
    : Gantt(std::move(title), recorder.spans(), num_ranks, width) {}

Gantt::Gantt(std::string title, const std::vector<trace::Span>& spans,
             int num_ranks, int width)
    : title_(std::move(title)), num_ranks_(num_ranks), width_(width) {
  CTESIM_EXPECTS(num_ranks >= 1);
  CTESIM_EXPECTS(width >= 16);
  for (const auto& s : spans) {
    if (s.track.kind != trace::TrackKind::kRank) continue;
    CTESIM_EXPECTS(s.track.index >= 0 && s.track.index < num_ranks);
    trace_.push_back(s);
    t_end_ = std::max(t_end_, sim::to_seconds(s.end));
  }
}

char Gantt::glyph_for(const std::string& kind) const {
  if (kind == "compute") return '#';
  if (kind == "send") return '>';
  if (kind == "recv") return '<';
  return '?';
}

double Gantt::busy_fraction(int rank, const std::string& kind) const {
  CTESIM_EXPECTS(rank >= 0 && rank < num_ranks_);
  if (t_end_ <= 0.0) return 0.0;
  double busy = 0.0;
  for (const auto& s : trace_) {
    if (s.track.index == rank && kind == s.name) {
      busy += sim::to_seconds(s.end) - sim::to_seconds(s.start);
    }
  }
  return busy / t_end_;
}

void Gantt::print(std::ostream& os) const {
  os << "-- " << title_ << " --\n";
  if (t_end_ <= 0.0) {
    os << "(empty trace)\n";
    return;
  }
  os << "makespan " << units::format_seconds(t_end_)
     << "; '#'=compute '>'=send '<'=recv\n";
  for (int rank = 0; rank < num_ranks_; ++rank) {
    std::string lane(static_cast<std::size_t>(width_), '.');
    // Paint in trace order; later records overwrite (they are rarer and
    // usually shorter, so communication stays visible over compute).
    for (const auto& s : trace_) {
      if (s.track.index != rank) continue;
      const double start_s = sim::to_seconds(s.start);
      const double end_s = sim::to_seconds(s.end);
      const int c0 = std::clamp(
          static_cast<int>(start_s / t_end_ * width_), 0, width_ - 1);
      const int c1 = std::clamp(
          static_cast<int>(end_s / t_end_ * width_), c0, width_ - 1);
      for (int c = c0; c <= c1; ++c) {
        lane[static_cast<std::size_t>(c)] = glyph_for(s.name);
      }
    }
    char label[16];
    std::snprintf(label, sizeof(label), "r%-3d |", rank);
    os << label << lane << "| compute "
       << static_cast<int>(100.0 * busy_fraction(rank, "compute") + 0.5)
       << "%\n";
  }
}

}  // namespace ctesim::report
