#include "report/plot.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <ostream>

#include "util/check.h"

namespace ctesim::report {

namespace {
constexpr char kMarkers[] = {'o', 'x', '+', '*', '#', '@', '%', '&'};
constexpr char kShades[] = " .:-=+*#%@";
constexpr int kNumShades = 10;
}  // namespace

LineChart::LineChart(std::string title, int width, int height)
    : title_(std::move(title)), width_(width), height_(height) {
  CTESIM_EXPECTS(width >= 16 && height >= 4);
}

void LineChart::set_axis_labels(std::string x, std::string y) {
  x_label_ = std::move(x);
  y_label_ = std::move(y);
}

void LineChart::series(const std::string& name, std::vector<double> xs,
                       std::vector<double> ys) {
  CTESIM_EXPECTS(xs.size() == ys.size());
  CTESIM_EXPECTS(!xs.empty());
  const char marker =
      kMarkers[series_.size() % (sizeof(kMarkers) / sizeof(kMarkers[0]))];
  series_.push_back(Series{name, std::move(xs), std::move(ys), marker});
}

void LineChart::print(std::ostream& os) const {
  if (series_.empty()) {
    os << title_ << ": (no data)\n";
    return;
  }
  auto tx = [&](double x) { return log_x_ ? std::log10(x) : x; };
  auto ty = [&](double y) { return log_y_ ? std::log10(y) : y; };
  double x_min = std::numeric_limits<double>::infinity();
  double x_max = -x_min;
  double y_min = x_min;
  double y_max = -x_min;
  for (const auto& s : series_) {
    for (std::size_t i = 0; i < s.xs.size(); ++i) {
      x_min = std::min(x_min, tx(s.xs[i]));
      x_max = std::max(x_max, tx(s.xs[i]));
      y_min = std::min(y_min, ty(s.ys[i]));
      y_max = std::max(y_max, ty(s.ys[i]));
    }
  }
  if (x_max == x_min) x_max = x_min + 1.0;
  if (y_max == y_min) y_max = y_min + 1.0;

  std::vector<std::string> canvas(static_cast<std::size_t>(height_),
                                  std::string(static_cast<std::size_t>(width_), ' '));
  for (const auto& s : series_) {
    for (std::size_t i = 0; i < s.xs.size(); ++i) {
      const double fx = (tx(s.xs[i]) - x_min) / (x_max - x_min);
      const double fy = (ty(s.ys[i]) - y_min) / (y_max - y_min);
      const int col = std::clamp(static_cast<int>(fx * (width_ - 1) + 0.5), 0,
                                 width_ - 1);
      const int row = std::clamp(
          height_ - 1 - static_cast<int>(fy * (height_ - 1) + 0.5), 0,
          height_ - 1);
      canvas[static_cast<std::size_t>(row)][static_cast<std::size_t>(col)] =
          s.marker;
    }
  }

  os << "-- " << title_ << " --\n";
  char buf[64];
  const double y_hi = log_y_ ? std::pow(10.0, y_max) : y_max;
  const double y_lo = log_y_ ? std::pow(10.0, y_min) : y_min;
  std::snprintf(buf, sizeof(buf), "%.4g", y_hi);
  os << y_label_ << " (top=" << buf;
  std::snprintf(buf, sizeof(buf), "%.4g", y_lo);
  os << ", bottom=" << buf << (log_y_ ? ", log scale" : "") << ")\n";
  for (const auto& line : canvas) {
    os << '|' << line << '\n';
  }
  os << '+' << std::string(static_cast<std::size_t>(width_), '-') << "> "
     << x_label_;
  const double x_hi = log_x_ ? std::pow(10.0, x_max) : x_max;
  const double x_lo = log_x_ ? std::pow(10.0, x_min) : x_min;
  std::snprintf(buf, sizeof(buf), " [%.4g .. %.4g]", x_lo, x_hi);
  os << buf << (log_x_ ? " (log)" : "") << '\n';
  for (const auto& s : series_) {
    os << "  " << s.marker << " = " << s.name << '\n';
  }
}

Heatmap::Heatmap(std::string title, std::size_t rows, std::size_t cols)
    : title_(std::move(title)),
      rows_(rows),
      cols_(cols),
      values_(rows * cols, 0.0) {
  CTESIM_EXPECTS(rows >= 1 && cols >= 1);
}

void Heatmap::set(std::size_t row, std::size_t col, double value) {
  CTESIM_EXPECTS(row < rows_ && col < cols_);
  values_[row * cols_ + col] = value;
}

double Heatmap::get(std::size_t row, std::size_t col) const {
  CTESIM_EXPECTS(row < rows_ && col < cols_);
  return values_[row * cols_ + col];
}

void Heatmap::print(std::ostream& os, std::size_t max_cells) const {
  CTESIM_EXPECTS(max_cells >= 8);
  const auto [lo_it, hi_it] =
      std::minmax_element(values_.begin(), values_.end());
  const double lo = *lo_it;
  const double hi = *hi_it;
  const double span = hi > lo ? hi - lo : 1.0;

  const std::size_t block_r = (rows_ + max_cells - 1) / max_cells;
  const std::size_t block_c = (cols_ + max_cells - 1) / max_cells;
  const std::size_t out_r = (rows_ + block_r - 1) / block_r;
  const std::size_t out_c = (cols_ + block_c - 1) / block_c;

  os << "-- " << title_ << " --\n";
  char buf[96];
  std::snprintf(buf, sizeof(buf),
                "scale: '%c'=%.4g .. '%c'=%.4g  (%zux%zu cells", kShades[0],
                lo, kShades[kNumShades - 1], hi, rows_, cols_);
  os << buf;
  if (block_r > 1 || block_c > 1) {
    os << ", shown as " << out_r << "x" << out_c << " max-pooled blocks";
  }
  os << ")\n";
  for (std::size_t br = 0; br < out_r; ++br) {
    os << '|';
    for (std::size_t bc = 0; bc < out_c; ++bc) {
      double block_max = -std::numeric_limits<double>::infinity();
      for (std::size_t r = br * block_r;
           r < std::min(rows_, (br + 1) * block_r); ++r) {
        for (std::size_t c = bc * block_c;
             c < std::min(cols_, (bc + 1) * block_c); ++c) {
          block_max = std::max(block_max, values_[r * cols_ + c]);
        }
      }
      const int shade = std::clamp(
          static_cast<int>((block_max - lo) / span * (kNumShades - 1) + 0.5),
          0, kNumShades - 1);
      os << kShades[shade];
    }
    os << "|\n";
  }
}

}  // namespace ctesim::report
