#include "net/congestion.h"

#include <algorithm>

#include "trace/recorder.h"
#include "util/check.h"

namespace ctesim::net {

CongestionModel::CongestionModel(const Network& network)
    : network_(&network) {}

std::vector<LinkId> CongestionModel::route(int src, int dst) const {
  CTESIM_EXPECTS(src != dst);
  std::vector<LinkId> links;
  const Topology& topology = network_->topology();
  if (const auto* torus = dynamic_cast<const TorusTopology*>(&topology)) {
    // Dimension-order routing: walk each dimension along the shorter wrap
    // direction, emitting the departing link of every intermediate node.
    auto here = torus->coordinates(src);
    const auto there = torus->coordinates(dst);
    const auto& dims = torus->dims();
    for (std::size_t d = 0; d < dims.size(); ++d) {
      while (here[d] != there[d]) {
        const int n = dims[d];
        const int forward = (there[d] - here[d] + n) % n;
        const int dir = forward <= n - forward ? +1 : -1;
        links.push_back(LinkId{
            static_cast<std::int32_t>(torus->node_at(here)),
            static_cast<std::int16_t>(d), static_cast<std::int16_t>(dir)});
        here[d] = (here[d] + dir + n) % n;
      }
    }
  } else {
    // Fat-tree: the shared resources are each endpoint's up/down links.
    links.push_back(LinkId{static_cast<std::int32_t>(src), 0, +1});
    links.push_back(LinkId{static_cast<std::int32_t>(dst), 0, -1});
  }
  CTESIM_ENSURES(!links.empty());
  return links;
}

sim::Time CongestionModel::transfer_at(int src, int dst, std::uint64_t bytes,
                                       sim::Time now) {
  // Base (contention-free) behaviour provides latency and the effective
  // per-link occupancy; congestion adds waiting for busy links.
  const Transfer base =
      network_->transfer(src, dst, bytes, sim::to_seconds(now));
  const auto links = route(src, dst);
  const auto& spec = network_->spec();
  // Wire occupancy of the message on one link. The torus' first dimension
  // (rack-spanning) runs slower, consistent with long_dim_bw_penalty.
  const double link_bw = spec.link_bw * spec.eff_bw_factor;
  const sim::Time occupancy =
      sim::from_seconds(static_cast<double>(bytes) / link_bw);
  const sim::Time long_occupancy = sim::from_seconds(
      static_cast<double>(bytes) /
      (link_bw * (1.0 - spec.long_dim_bw_penalty)));
  const sim::Time per_hop = sim::from_seconds(spec.per_hop_latency_s);

  sim::Time head = now + sim::from_seconds(spec.base_latency_s);
  sim::Time tail = head;
  sim::Time queued = 0;
  for (const LinkId& link : links) {
    sim::Time& busy = busy_until_[link];
    const sim::Time start = std::max(head, busy);
    queued += start - head;
    const sim::Time occ = link.dim == 0 ? long_occupancy : occupancy;
    busy = start + occ;
    tail = std::max(tail, busy);
    head = start + per_hop;  // cut-through: the head moves on per hop
  }
  queueing_s_ += sim::to_seconds(queued);
  if (recorder_ && recorder_->enabled()) {
    int busy = 0;
    for (const auto& [link, until] : busy_until_) {
      if (until > now) ++busy;
    }
    recorder_->counter(trace::Track::global(), "net", "queueing_s", now,
                       queueing_s_);
    recorder_->counter(trace::Track::global(), "net", "busy_links", now,
                       static_cast<double>(busy));
  }
  // The tail clears the last (or slowest) link then; never earlier than
  // the contention-free end-to-end model.
  return std::max(tail, now + sim::from_seconds(base.time_s));
}

void CongestionModel::reset() {
  busy_until_.clear();
  queueing_s_ = 0.0;
}

}  // namespace ctesim::net
