// Optional link-level congestion model.
//
// The base Network::transfer is contention-free (each transfer sees the
// full link bandwidth). CongestionModel adds shared-link serialization: a
// message occupies every directed link of its dimension-order route in
// sequence, and a link busy with an earlier message delays later ones.
// This captures the first-order effect of concurrent traffic (e.g. an
// alltoall squeezing through the torus) without per-packet simulation.
//
// The model is stateful in simulated time: the MPI runtime passes the
// current time of each injection and receives the arrival time back.
#pragma once

#include <compare>
#include <cstdint>
#include <map>
#include <vector>

#include "core/time.h"
#include "net/network.h"

namespace ctesim::trace {
class Recorder;
}

namespace ctesim::net {

/// A directed link of the torus/fat-tree, identified by (node, dimension,
/// direction) for tori and (node, level) for the fat-tree's up/down pair.
struct LinkId {
  std::int32_t node = 0;
  std::int16_t dim = 0;
  std::int16_t dir = 0;  ///< +1 / -1

  // Totally ordered so link state can live in deterministic ordered maps
  // (iteration order must not depend on a hash seed — it feeds trace
  // counters and, transitively, event ordering).
  auto operator<=>(const LinkId&) const = default;
};

class CongestionModel {
 public:
  explicit CongestionModel(const Network& network);

  /// Arrival time of a message injected at `now`, accounting for the
  /// busy state of every link along the route. Updates the link state.
  sim::Time transfer_at(int src, int dst, std::uint64_t bytes, sim::Time now);

  /// The directed links a message traverses (dimension-order routing on
  /// tori; a stylized up/down pair on fat-trees).
  std::vector<LinkId> route(int src, int dst) const;

  /// Cumulative time messages spent queuing behind busy links.
  double total_queueing_seconds() const { return queueing_s_; }

  /// Forget all link state (e.g. between independent experiments).
  void reset();

  /// Stream link-utilization counters onto `recorder`'s global track
  /// (category "net"): cumulative queueing seconds and the number of links
  /// busy at each injection. Pass nullptr to detach.
  void set_recorder(trace::Recorder* recorder) { recorder_ = recorder; }

 private:
  const Network* network_;
  // Ordered map: transfer_at iterates this to derive recorder counters, so
  // the walk must be reproducible across runs and standard libraries.
  std::map<LinkId, sim::Time> busy_until_;
  double queueing_s_ = 0.0;
  trace::Recorder* recorder_ = nullptr;
};

}  // namespace ctesim::net
