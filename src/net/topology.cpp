#include "net/topology.h"

#include <algorithm>
#include <sstream>

#include "util/check.h"

namespace ctesim::net {

TorusTopology::TorusTopology(std::vector<int> dims) : dims_(std::move(dims)) {
  CTESIM_EXPECTS(!dims_.empty());
  total_ = 1;
  for (int d : dims_) {
    CTESIM_EXPECTS(d >= 1);
    total_ *= d;
  }
}

std::vector<int> TorusTopology::coordinates(int node) const {
  CTESIM_EXPECTS(node >= 0 && node < total_);
  std::vector<int> coords(dims_.size());
  // Row-major: last dimension varies fastest.
  for (std::size_t i = dims_.size(); i-- > 0;) {
    coords[i] = node % dims_[i];
    node /= dims_[i];
  }
  return coords;
}

int TorusTopology::node_at(const std::vector<int>& coords) const {
  CTESIM_EXPECTS(coords.size() == dims_.size());
  int node = 0;
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    CTESIM_EXPECTS(coords[i] >= 0 && coords[i] < dims_[i]);
    node = node * dims_[i] + coords[i];
  }
  return node;
}

int TorusTopology::dim_distance(int src, int dst, std::size_t dim) const {
  CTESIM_EXPECTS(dim < dims_.size());
  const auto a = coordinates(src);
  const auto b = coordinates(dst);
  const int direct = std::abs(a[dim] - b[dim]);
  return std::min(direct, dims_[dim] - direct);
}

int TorusTopology::hops(int src, int dst) const {
  if (src == dst) return 0;
  const auto a = coordinates(src);
  const auto b = coordinates(dst);
  int hops = 0;
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    const int direct = std::abs(a[i] - b[i]);
    hops += std::min(direct, dims_[i] - direct);  // shortest wrap direction
  }
  return hops;
}

std::string TorusTopology::describe() const {
  std::ostringstream os;
  os << dims_.size() << "D torus [";
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    if (i) os << "x";
    os << dims_[i];
  }
  os << "]";
  return os.str();
}

FatTreeTopology::FatTreeTopology(int num_nodes, int nodes_per_edge_switch)
    : num_nodes_(num_nodes), nodes_per_edge_switch_(nodes_per_edge_switch) {
  CTESIM_EXPECTS(num_nodes >= 1);
  CTESIM_EXPECTS(nodes_per_edge_switch >= 1);
}

int FatTreeTopology::edge_switch_of(int node) const {
  CTESIM_EXPECTS(node >= 0 && node < num_nodes_);
  return node / nodes_per_edge_switch_;
}

int FatTreeTopology::hops(int src, int dst) const {
  if (src == dst) return 0;
  return edge_switch_of(src) == edge_switch_of(dst) ? 1 : 3;
}

std::string FatTreeTopology::describe() const {
  std::ostringstream os;
  os << "fat-tree (" << nodes_per_edge_switch_ << " nodes/edge switch)";
  return os.str();
}

}  // namespace ctesim::net
