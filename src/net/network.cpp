#include "net/network.h"

#include <cmath>

#include "util/check.h"

namespace ctesim::net {

namespace {
constexpr int kDefaultNodesPerEdgeSwitch = 32;

std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}
}  // namespace

Network::Network(const arch::InterconnectSpec& spec, int num_nodes)
    : spec_(spec) {
  CTESIM_EXPECTS(num_nodes >= 1);
  CTESIM_EXPECTS(spec.link_bw > 0.0);
  if (spec.kind == arch::InterconnectSpec::Kind::kTorus) {
    CTESIM_EXPECTS(!spec.dims.empty());
    int total = 1;
    for (int d : spec.dims) total *= d;
    CTESIM_EXPECTS(total >= num_nodes);
    topology_ = std::make_unique<TorusTopology>(spec.dims);
  } else {
    topology_ = std::make_unique<FatTreeTopology>(num_nodes,
                                                  kDefaultNodesPerEdgeSwitch);
  }
}

void Network::set_recv_degradation(int node, double factor) {
  CTESIM_EXPECTS(node >= 0 && node < num_nodes());
  CTESIM_EXPECTS(factor > 0.0 && factor <= 1.0);
  recv_degradation_[node] = {
      {0.0, std::numeric_limits<double>::infinity(), factor}};
}

void Network::add_recv_degradation(int node, double factor, double start_s,
                                   double end_s) {
  CTESIM_EXPECTS(node >= 0 && node < num_nodes());
  CTESIM_EXPECTS(factor > 0.0 && factor <= 1.0);
  CTESIM_EXPECTS(start_s >= 0.0 && end_s > start_s);
  recv_degradation_[node].push_back({start_s, end_s, factor});
}

void Network::clear_faults() { recv_degradation_.clear(); }

double Network::recv_factor(int node, double now_s) const {
  const auto it = recv_degradation_.find(node);
  if (it == recv_degradation_.end()) return 1.0;
  double factor = 1.0;
  for (const DegradationWindow& w : it->second) {
    if (now_s >= w.start_s && now_s < w.end_s) factor *= w.factor;
  }
  return factor;
}

double Network::pair_jitter(int src, int dst) const {
  if (jitter_amplitude_ <= 0.0) return 1.0;
  const std::uint64_t key =
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) << 32) |
      static_cast<std::uint32_t>(dst);
  const double u =
      static_cast<double>(mix64(key) >> 11) * 0x1.0p-53;  // [0,1)
  return 1.0 + jitter_amplitude_ * (2.0 * u - 1.0);
}

Transfer Network::transfer(int src, int dst, std::uint64_t bytes,
                           double now_s) const {
  CTESIM_EXPECTS(src >= 0 && src < num_nodes());
  CTESIM_EXPECTS(dst >= 0 && dst < num_nodes());
  CTESIM_EXPECTS(src != dst);

  Transfer t;
  t.hops = topology_->hops(src, dst);
  t.rendezvous = spec_.eager_threshold > 0 && bytes > spec_.eager_threshold;

  t.latency_s = spec_.base_latency_s + t.hops * spec_.per_hop_latency_s;
  if (t.rendezvous) t.latency_s += spec_.rendezvous_latency_s;

  double bw = spec_.link_bw * spec_.eff_bw_factor *
              std::pow(1.0 - spec_.hop_bw_penalty, t.hops) *
              pair_jitter(src, dst);
  if (spec_.long_dim_bw_penalty > 0.0) {
    if (const auto* torus = dynamic_cast<const TorusTopology*>(
            topology_.get())) {
      const int long_hops = torus->dim_distance(src, dst, 0);
      bw *= std::pow(1.0 - spec_.long_dim_bw_penalty, long_hops);
    }
  }
  if (const double factor = recv_factor(dst, now_s); factor < 1.0) {
    // A sick receive path (the arms0b1-11c case) hurts both the credit/
    // buffer bandwidth and the per-message processing latency, so the
    // degradation is visible even for small latency-bound messages.
    bw *= factor;
    t.latency_s /= factor;
  }
  CTESIM_ENSURES(bw > 0.0);

  t.time_s = t.latency_s + static_cast<double>(bytes) / bw;
  t.bandwidth = t.time_s > 0.0 ? static_cast<double>(bytes) / t.time_s : 0.0;
  return t;
}

}  // namespace ctesim::net
