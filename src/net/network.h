// Inter-node network: topology + LogGP-style transfer model + fault
// injection. The model of one point-to-point transfer:
//
//   latency = base + hops * per_hop (+ rendezvous handshake above the eager
//             threshold)
//   bw      = link_bw * eff * (1 - hop_penalty)^hops * fault_factor * jitter
//   time    = latency + bytes / bw
//
// Deterministic per-pair jitter (hash of the endpoints) stands in for the
// static heterogeneity a production fabric shows (cable quality, adapter
// binning) and gives Fig. 4/5 their realistic texture.
#pragma once

#include <cstdint>
#include <map>
#include <memory>

#include "arch/machine.h"
#include "net/topology.h"

namespace ctesim::net {

/// One transfer's predicted behaviour.
struct Transfer {
  double time_s = 0.0;
  double latency_s = 0.0;
  double bandwidth = 0.0;  ///< effective bytes/s including latency
  int hops = 0;
  bool rendezvous = false;
};

class Network {
 public:
  /// Builds the topology described by `spec` for `num_nodes` nodes.
  Network(const arch::InterconnectSpec& spec, int num_nodes);

  const Topology& topology() const { return *topology_; }
  const arch::InterconnectSpec& spec() const { return spec_; }
  int num_nodes() const { return topology_->num_nodes(); }

  /// Degrade the receive-side bandwidth of `node` by `factor` (0,1] —
  /// models the weak node arms0b1-11c of Fig. 4, which underperforms only
  /// as a receiver.
  void set_recv_degradation(int node, double factor);

  /// Remove all injected faults.
  void clear_faults();

  /// Amplitude of the deterministic per-pair bandwidth jitter (default 3%).
  void set_jitter(double amplitude) { jitter_amplitude_ = amplitude; }

  /// Predict one point-to-point transfer between two *different* nodes.
  Transfer transfer(int src, int dst, std::uint64_t bytes) const;

 private:
  double pair_jitter(int src, int dst) const;

  arch::InterconnectSpec spec_;
  std::unique_ptr<Topology> topology_;
  // Ordered by node id so any future walk over the fault set (reports,
  // serialization) is deterministic.
  std::map<int, double> recv_degradation_;
  double jitter_amplitude_ = 0.03;
};

}  // namespace ctesim::net
