// Inter-node network: topology + LogGP-style transfer model + fault
// injection. The model of one point-to-point transfer:
//
//   latency = base + hops * per_hop (+ rendezvous handshake above the eager
//             threshold)
//   bw      = link_bw * eff * (1 - hop_penalty)^hops * fault_factor * jitter
//   time    = latency + bytes / bw
//
// Deterministic per-pair jitter (hash of the endpoints) stands in for the
// static heterogeneity a production fabric shows (cable quality, adapter
// binning) and gives Fig. 4/5 their realistic texture.
#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <vector>

#include "arch/machine.h"
#include "net/topology.h"

namespace ctesim::net {

/// One transfer's predicted behaviour.
struct Transfer {
  double time_s = 0.0;
  double latency_s = 0.0;
  double bandwidth = 0.0;  ///< effective bytes/s including latency
  int hops = 0;
  bool rendezvous = false;
};

class Network {
 public:
  /// Builds the topology described by `spec` for `num_nodes` nodes.
  Network(const arch::InterconnectSpec& spec, int num_nodes);

  const Topology& topology() const { return *topology_; }
  const arch::InterconnectSpec& spec() const { return spec_; }
  int num_nodes() const { return topology_->num_nodes(); }

  /// Degrade the receive-side bandwidth of `node` by `factor` (0,1] for
  /// the whole run — models the weak node arms0b1-11c of Fig. 4, which
  /// underperforms only as a receiver. Replaces any previous windows on
  /// the node (the always-active special case of add_recv_degradation).
  void set_recv_degradation(int node, double factor);

  /// Open a receive-side degradation window [start_s, end_s) on `node`
  /// with bandwidth factor `factor` (0,1], evaluated against the time
  /// passed to transfer(). Omitting `end_s` leaves the window open-ended.
  /// Windows may overlap (factors compose multiplicatively); they stack
  /// with — rather than replace — previous windows on the node.
  void add_recv_degradation(int node, double factor, double start_s = 0.0,
                            double end_s =
                                std::numeric_limits<double>::infinity());

  /// Remove all injected faults.
  void clear_faults();

  /// Amplitude of the deterministic per-pair bandwidth jitter (default 3%).
  void set_jitter(double amplitude) { jitter_amplitude_ = amplitude; }

  /// Predict one point-to-point transfer between two *different* nodes at
  /// simulated time `now_s` (degradation windows active at that instant
  /// apply; the default 0.0 keeps time-free callers on the state at the
  /// start of the run).
  Transfer transfer(int src, int dst, std::uint64_t bytes,
                    double now_s = 0.0) const;

 private:
  /// One receive-path degradation window on a node.
  struct DegradationWindow {
    double start_s = 0.0;
    double end_s = 0.0;  ///< exclusive; +infinity = open-ended
    double factor = 1.0;
  };

  double pair_jitter(int src, int dst) const;
  /// Combined receive factor of `node` at `now_s` (1.0 when healthy).
  double recv_factor(int node, double now_s) const;

  arch::InterconnectSpec spec_;
  std::unique_ptr<Topology> topology_;
  // Ordered by node id so any future walk over the fault set (reports,
  // serialization) is deterministic.
  std::map<int, std::vector<DegradationWindow>> recv_degradation_;
  double jitter_amplitude_ = 0.03;
};

}  // namespace ctesim::net
