// Interconnect topologies. The quantity the transfer model needs from a
// topology is the hop count of the route between two nodes; TofuD uses
// dimension-order shortest-path routing on a 6D torus, OmniPath a two-level
// fat-tree.
#pragma once

#include <memory>
#include <string>
#include <vector>

namespace ctesim::net {

class Topology {
 public:
  virtual ~Topology() = default;

  virtual int num_nodes() const = 0;

  /// Hops traversed by a message from src to dst (0 for src == dst).
  virtual int hops(int src, int dst) const = 0;

  virtual std::string describe() const = 0;
};

/// k-dimensional torus (TofuD: 6 dimensions X,Y,Z,a,b,c) with
/// dimension-order minimal routing. Node indices map to coordinates in
/// row-major order, matching how the CTE-Arm scheduler numbers nodes — this
/// is what produces the diagonal banding of Fig. 4.
class TorusTopology final : public Topology {
 public:
  explicit TorusTopology(std::vector<int> dims);

  int num_nodes() const override { return total_; }
  int hops(int src, int dst) const override;
  std::string describe() const override;

  /// Coordinates of a node (for tests and topology-aware placement).
  std::vector<int> coordinates(int node) const;
  int node_at(const std::vector<int>& coords) const;
  const std::vector<int>& dims() const { return dims_; }

  /// Hops traversed along one dimension of the route (shortest wrap).
  int dim_distance(int src, int dst, std::size_t dim) const;

 private:
  std::vector<int> dims_;
  int total_;
};

/// Two-level fat-tree: nodes on the same edge switch are 1 hop apart,
/// otherwise the route climbs to a core switch (3 hops). Full bisection is
/// assumed (OmniPath on MareNostrum 4 is close to it).
class FatTreeTopology final : public Topology {
 public:
  FatTreeTopology(int num_nodes, int nodes_per_edge_switch);

  int num_nodes() const override { return num_nodes_; }
  int hops(int src, int dst) const override;
  std::string describe() const override;

  int edge_switch_of(int node) const;

 private:
  int num_nodes_;
  int nodes_per_edge_switch_;
};

}  // namespace ctesim::net
