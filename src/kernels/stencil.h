// Structured-grid kernels: 3D 7-point diffusion/Jacobi step — the dynamics
// pattern of the NEMO and WRF proxies. Real array sweeps with an analytic
// convergence property the tests verify (smoothing toward the mean,
// conservation of the field sum under periodic boundaries).
#pragma once

#include <cstddef>
#include <vector>

namespace ctesim::kernels {

class Grid3D {
 public:
  Grid3D(int nx, int ny, int nz, double value = 0.0);

  int nx() const { return nx_; }
  int ny() const { return ny_; }
  int nz() const { return nz_; }
  std::size_t size() const { return data_.size(); }

  double& at(int x, int y, int z) {
    return data_[(static_cast<std::size_t>(z) * ny_ + y) * nx_ + x];
  }
  double at(int x, int y, int z) const {
    return data_[(static_cast<std::size_t>(z) * ny_ + y) * nx_ + x];
  }

  double sum() const;
  double max_abs() const;

  std::vector<double>& raw() { return data_; }
  const std::vector<double>& raw() const { return data_; }

 private:
  int nx_, ny_, nz_;
  std::vector<double> data_;
};

/// One explicit diffusion step with periodic boundaries:
/// out = in + alpha * discrete_laplacian(in). Stable for alpha <= 1/6.
/// Conserves sum(in) exactly up to roundoff.
void diffusion_step(const Grid3D& in, Grid3D& out, double alpha);

/// Run `steps` diffusion steps ping-ponging two buffers; returns the final
/// field in `grid`.
void diffuse(Grid3D& grid, int steps, double alpha);

}  // namespace ctesim::kernels
