// Native STREAM kernels (McCalpin): real arrays, real bytes moved on the
// host. Used by the unit tests (correctness of each kernel), the native
// google-benchmark suite, and as ground truth that the simulated STREAM
// (mem/stream_sim.h) and the native loops agree on bytes/element.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "util/thread_annotations.h"

namespace ctesim::kernels {

class Stream {
 public:
  /// Allocates the three arrays with STREAM's canonical initial values
  /// (a=1, b=2, c=0).
  explicit Stream(std::size_t elements);

  std::size_t elements() const { return a_.size(); }

  // The four kernels; each returns elapsed seconds.
  double copy();   ///< c = a
  double scale();  ///< b = s*c
  double add();    ///< c = a + b
  double triad();  ///< a = b + s*c

  /// Runs the canonical sequence copy/scale/add/triad `times` times and
  /// verifies the arrays against the closed-form expected values, exactly
  /// as stream.c's checkSTREAMresults does. Returns the max relative error.
  double run_and_verify(int times);

  /// Verify (without running) that the arrays hold the values expected
  /// after `times` canonical iterations. Lets callers substitute their own
  /// kernel variant (e.g. triad_parallel) for one of the steps.
  double verify_after(int times) const;

  /// Bandwidth in bytes/s for a kernel that moved `bytes_per_elem` per
  /// element in `seconds`.
  double bandwidth(std::size_t bytes_per_elem, double seconds) const;

  /// Triad with `threads` std::thread workers on disjoint partitions (the
  /// OpenMP-parallel STREAM of the paper, portably). Returns elapsed
  /// seconds; results stay verifiable by run_and_verify's closed form if
  /// the canonical sequence is respected by the caller.
  double triad_parallel(int threads) CTESIM_EXCLUDES(timings_mutex_);

  /// Per-worker elapsed seconds of the last triad_parallel call, sorted by
  /// worker index — the load-imbalance diagnostic behind the paper's
  /// OpenMP-vs-hybrid STREAM spread. Empty before the first parallel run.
  std::vector<double> last_thread_seconds() const
      CTESIM_EXCLUDES(timings_mutex_);

  static constexpr double kScalar = 3.0;

 private:
  std::vector<double> a_;
  std::vector<double> b_;
  std::vector<double> c_;

  // Workers report (index, elapsed) concurrently; the pair list is the one
  // piece of cross-thread shared state in the native kernels, so it carries
  // the full lock discipline the clang thread-safety job checks.
  mutable util::Mutex timings_mutex_;
  std::vector<std::pair<int, double>> thread_seconds_
      CTESIM_GUARDED_BY(timings_mutex_);
};

}  // namespace ctesim::kernels
