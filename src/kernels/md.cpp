#include "kernels/md.h"

#include <cmath>

#include "util/check.h"

namespace ctesim::kernels {

MdSystem::MdSystem(const MdConfig& config) : config_(config) {
  CTESIM_EXPECTS(config.particles > 0);
  CTESIM_EXPECTS(config.box > 2.0 * config.cutoff);
  const std::size_t n = config.particles;
  pos_.resize(n);
  vel_.resize(n);
  force_.resize(n);

  // Simple-cubic lattice sized to hold all particles, lightly perturbed so
  // forces are nonzero from step one.
  const auto per_dim =
      static_cast<std::size_t>(std::ceil(std::cbrt(static_cast<double>(n))));
  const double spacing = config.box / static_cast<double>(per_dim);
  Rng rng(config.seed);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t ix = i % per_dim;
    const std::size_t iy = (i / per_dim) % per_dim;
    const std::size_t iz = i / (per_dim * per_dim);
    pos_[i] = {(ix + 0.5) * spacing + rng.uniform(-0.05, 0.05) * spacing,
               (iy + 0.5) * spacing + rng.uniform(-0.05, 0.05) * spacing,
               (iz + 0.5) * spacing + rng.uniform(-0.05, 0.05) * spacing};
    vel_[i] = {rng.normal(0.0, 0.1), rng.normal(0.0, 0.1),
               rng.normal(0.0, 0.1)};
  }
  // Remove net momentum so it stays ~0 (a conserved quantity we test).
  Vec3 p{};
  for (const auto& v : vel_) {
    p.x += v.x;
    p.y += v.y;
    p.z += v.z;
  }
  const double inv = 1.0 / static_cast<double>(n);
  for (auto& v : vel_) {
    v.x -= p.x * inv;
    v.y -= p.y * inv;
    v.z -= p.z * inv;
  }
  compute_forces();
}

double MdSystem::minimum_image(double d) const {
  if (d > 0.5 * config_.box) return d - config_.box;
  if (d < -0.5 * config_.box) return d + config_.box;
  return d;
}

void MdSystem::build_cells() {
  cells_per_dim_ = std::max(3, static_cast<int>(config_.box / config_.cutoff));
  const std::size_t ncells = static_cast<std::size_t>(cells_per_dim_) *
                             cells_per_dim_ * cells_per_dim_;
  cells_.assign(ncells, {});
  const double cell_size = config_.box / cells_per_dim_;
  for (std::size_t i = 0; i < pos_.size(); ++i) {
    auto clampc = [&](double x) {
      int c = static_cast<int>(x / cell_size);
      if (c < 0) c = 0;
      if (c >= cells_per_dim_) c = cells_per_dim_ - 1;
      return c;
    };
    const int cx = clampc(pos_[i].x);
    const int cy = clampc(pos_[i].y);
    const int cz = clampc(pos_[i].z);
    const std::size_t cell =
        (static_cast<std::size_t>(cz) * cells_per_dim_ + cy) * cells_per_dim_ +
        cx;
    cells_[cell].push_back(static_cast<std::int32_t>(i));
  }
}

void MdSystem::compute_forces() {
  build_cells();
  for (auto& f : force_) f = {};
  potential_ = 0.0;
  pair_count_ = 0;
  const double rc2 = config_.cutoff * config_.cutoff;
  const int c = cells_per_dim_;
  auto cell_at = [&](int x, int y, int z) {
    const int wx = (x + c) % c;
    const int wy = (y + c) % c;
    const int wz = (z + c) % c;
    return (static_cast<std::size_t>(wz) * c + wy) * c + wx;
  };
  for (int cz = 0; cz < c; ++cz) {
    for (int cy = 0; cy < c; ++cy) {
      for (int cx = 0; cx < c; ++cx) {
        const auto& home = cells_[cell_at(cx, cy, cz)];
        for (int dz = -1; dz <= 1; ++dz) {
          for (int dy = -1; dy <= 1; ++dy) {
            for (int dx = -1; dx <= 1; ++dx) {
              const auto& other = cells_[cell_at(cx + dx, cy + dy, cz + dz)];
              for (const std::int32_t i : home) {
                for (const std::int32_t j : other) {
                  if (j <= i) continue;  // each pair once
                  const double rx = minimum_image(pos_[static_cast<std::size_t>(i)].x -
                                                  pos_[static_cast<std::size_t>(j)].x);
                  const double ry = minimum_image(pos_[static_cast<std::size_t>(i)].y -
                                                  pos_[static_cast<std::size_t>(j)].y);
                  const double rz = minimum_image(pos_[static_cast<std::size_t>(i)].z -
                                                  pos_[static_cast<std::size_t>(j)].z);
                  const double r2 = rx * rx + ry * ry + rz * rz;
                  if (r2 >= rc2 || r2 == 0.0) continue;
                  ++pair_count_;
                  const double inv_r2 = 1.0 / r2;
                  const double inv_r6 = inv_r2 * inv_r2 * inv_r2;
                  // LJ with epsilon = sigma = 1.
                  const double f_scalar =
                      24.0 * inv_r2 * inv_r6 * (2.0 * inv_r6 - 1.0);
                  potential_ += 4.0 * inv_r6 * (inv_r6 - 1.0);
                  auto& fi = force_[static_cast<std::size_t>(i)];
                  auto& fj = force_[static_cast<std::size_t>(j)];
                  fi.x += f_scalar * rx;
                  fi.y += f_scalar * ry;
                  fi.z += f_scalar * rz;
                  fj.x -= f_scalar * rx;
                  fj.y -= f_scalar * ry;
                  fj.z -= f_scalar * rz;
                }
              }
            }
          }
        }
      }
    }
  }
}

void MdSystem::step() {
  const double dt = config_.dt;
  const double half = 0.5 * dt;
  for (std::size_t i = 0; i < pos_.size(); ++i) {
    vel_[i].x += half * force_[i].x;
    vel_[i].y += half * force_[i].y;
    vel_[i].z += half * force_[i].z;
    auto wrap = [&](double x) {
      if (x >= config_.box) return x - config_.box;
      if (x < 0.0) return x + config_.box;
      return x;
    };
    pos_[i].x = wrap(pos_[i].x + dt * vel_[i].x);
    pos_[i].y = wrap(pos_[i].y + dt * vel_[i].y);
    pos_[i].z = wrap(pos_[i].z + dt * vel_[i].z);
  }
  compute_forces();
  for (std::size_t i = 0; i < pos_.size(); ++i) {
    vel_[i].x += half * force_[i].x;
    vel_[i].y += half * force_[i].y;
    vel_[i].z += half * force_[i].z;
  }
}

std::uint64_t MdSystem::run(int n) {
  std::uint64_t pairs = 0;
  for (int i = 0; i < n; ++i) {
    step();
    pairs += pair_count_;
  }
  return pairs;
}

double MdSystem::kinetic_energy() const {
  double e = 0.0;
  for (const auto& v : vel_) {
    e += 0.5 * (v.x * v.x + v.y * v.y + v.z * v.z);
  }
  return e;
}

double MdSystem::momentum_norm() const {
  Vec3 p{};
  for (const auto& v : vel_) {
    p.x += v.x;
    p.y += v.y;
    p.z += v.z;
  }
  return std::sqrt(p.x * p.x + p.y * p.y + p.z * p.z);
}

}  // namespace ctesim::kernels
