#include "kernels/multigrid.h"

#include <cmath>

#include "util/check.h"

namespace ctesim::kernels {

void symgs_sweep(const CsrMatrix& a, const std::vector<double>& b,
                 std::vector<double>& x) {
  CTESIM_EXPECTS(b.size() == a.rows);
  x.resize(a.rows);
  // Forward sweep.
  for (std::size_t i = 0; i < a.rows; ++i) {
    double sum = b[i];
    double diag = 0.0;
    for (std::int64_t k = a.row_ptr[i]; k < a.row_ptr[i + 1]; ++k) {
      const auto j = static_cast<std::size_t>(a.col[static_cast<std::size_t>(k)]);
      const double v = a.val[static_cast<std::size_t>(k)];
      if (j == i) {
        diag = v;
      } else {
        sum -= v * x[j];
      }
    }
    CTESIM_ENSURES(diag != 0.0);
    x[i] = sum / diag;
  }
  // Backward sweep.
  for (std::size_t i = a.rows; i-- > 0;) {
    double sum = b[i];
    double diag = 0.0;
    for (std::int64_t k = a.row_ptr[i]; k < a.row_ptr[i + 1]; ++k) {
      const auto j = static_cast<std::size_t>(a.col[static_cast<std::size_t>(k)]);
      const double v = a.val[static_cast<std::size_t>(k)];
      if (j == i) {
        diag = v;
      } else {
        sum -= v * x[j];
      }
    }
    x[i] = sum / diag;
  }
}

MultigridHierarchy::MultigridHierarchy(int nx, int ny, int nz, int levels) {
  CTESIM_EXPECTS(levels >= 1);
  const int factor = 1 << (levels - 1);
  CTESIM_EXPECTS(nx % factor == 0 && ny % factor == 0 && nz % factor == 0);
  grids_.reserve(static_cast<std::size_t>(levels));
  int cx = nx;
  int cy = ny;
  int cz = nz;
  for (int l = 0; l < levels; ++l) {
    Grid g;
    g.nx = cx;
    g.ny = cy;
    g.nz = cz;
    g.a = build_poisson27(cx, cy, cz);
    grids_.push_back(std::move(g));
    if (l + 1 < levels) {
      CTESIM_EXPECTS(cx % 2 == 0 && cy % 2 == 0 && cz % 2 == 0);
      // Map each coarse point to its fine-grid parent (even coordinates).
      Grid& fine = grids_.back();
      fine.fine_of_coarse.reserve(
          static_cast<std::size_t>(cx / 2) * (cy / 2) * (cz / 2));
      for (int iz = 0; iz < cz; iz += 2) {
        for (int iy = 0; iy < cy; iy += 2) {
          for (int ix = 0; ix < cx; ix += 2) {
            fine.fine_of_coarse.push_back(
                (static_cast<std::size_t>(iz) * cy + iy) * cx + ix);
          }
        }
      }
      cx /= 2;
      cy /= 2;
      cz /= 2;
    }
  }
}

void MultigridHierarchy::restrict_to(int fine_level,
                                     const std::vector<double>& fine,
                                     std::vector<double>& coarse) const {
  const Grid& g = grids_[static_cast<std::size_t>(fine_level)];
  CTESIM_EXPECTS(!g.fine_of_coarse.empty());
  coarse.resize(g.fine_of_coarse.size());
  for (std::size_t c = 0; c < coarse.size(); ++c) {
    coarse[c] = fine[g.fine_of_coarse[c]];
  }
}

void MultigridHierarchy::prolong_add(int fine_level,
                                     const std::vector<double>& coarse,
                                     std::vector<double>& fine) const {
  const Grid& g = grids_[static_cast<std::size_t>(fine_level)];
  CTESIM_EXPECTS(coarse.size() == g.fine_of_coarse.size());
  for (std::size_t c = 0; c < coarse.size(); ++c) {
    fine[g.fine_of_coarse[c]] += coarse[c];
  }
}

void MultigridHierarchy::cycle_level(int level, const std::vector<double>& r,
                                     std::vector<double>& z) const {
  const Grid& g = grids_[static_cast<std::size_t>(level)];
  z.assign(g.a.rows, 0.0);
  symgs_sweep(g.a, r, z);  // pre-smoothing (from zero initial guess)
  if (level + 1 < levels()) {
    // Coarse-grid correction on the residual.
    std::vector<double> az(g.a.rows);
    spmv(g.a, z, az);
    std::vector<double> res(g.a.rows);
    for (std::size_t i = 0; i < res.size(); ++i) res[i] = r[i] - az[i];
    std::vector<double> coarse_r;
    restrict_to(level, res, coarse_r);
    std::vector<double> coarse_z;
    cycle_level(level + 1, coarse_r, coarse_z);
    prolong_add(level, coarse_z, z);
    symgs_sweep(g.a, r, z);  // post-smoothing
  }
}

void MultigridHierarchy::v_cycle(const std::vector<double>& r,
                                 std::vector<double>& z) const {
  CTESIM_EXPECTS(r.size() == grids_.front().a.rows);
  cycle_level(0, r, z);
}

HpcgResult run_mini_hpcg(int nx, int ny, int nz, int max_iters,
                         double tolerance) {
  const MultigridHierarchy mg(nx, ny, nz, /*levels=*/
                              (nx % 8 == 0 && ny % 8 == 0 && nz % 8 == 0) ? 4
                                                                          : 1);
  const CsrMatrix& a = mg.matrix(0);
  // HPCG's exact solution is all-ones; b = A * ones.
  std::vector<double> ones(a.rows, 1.0);
  std::vector<double> b(a.rows);
  spmv(a, ones, b);

  std::vector<double> x;
  const auto cg = conjugate_gradient(
      a, b, x, max_iters, tolerance,
      [&mg](const std::vector<double>& r, std::vector<double>& z) {
        mg.v_cycle(r, z);
      });

  HpcgResult result;
  result.iterations = cg.iterations;
  result.residual_norm = cg.residual_norm;
  result.converged = cg.converged;
  // HPCG flop accounting: per CG iteration, 1 fine SpMV + the V-cycle
  // (≈ 2 SymGS + 1 SpMV per level, each 2*nnz flops) + 3 dots + 3 axpys.
  double per_iter = 2.0 * static_cast<double>(a.nnz());
  for (int l = 0; l < mg.levels(); ++l) {
    per_iter += 3.0 * 2.0 * static_cast<double>(mg.matrix(l).nnz());
  }
  per_iter += 6.0 * static_cast<double>(a.rows);
  result.flops = per_iter * cg.iterations;
  return result;
}

}  // namespace ctesim::kernels
