// Sparse kernels: CSR storage, SpMV, and conjugate gradient — the numeric
// core of HPCG (Fig. 7) and of the Alya solver phase (Fig. 10).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace ctesim::kernels {

/// Compressed sparse row matrix (double values, 32-bit column indices —
/// the layout whose traffic the roofline spmv signature counts).
struct CsrMatrix {
  std::size_t rows = 0;
  std::vector<std::int64_t> row_ptr;  // rows+1 entries
  std::vector<std::int32_t> col;
  std::vector<double> val;

  std::size_t nnz() const { return val.size(); }
};

/// y = A x.
void spmv(const CsrMatrix& a, const std::vector<double>& x,
          std::vector<double>& y);

/// 27-point operator on an nx x ny x nz grid: diagonal 26, off-diagonals -1
/// (the HPCG problem). Rows at the boundary have fewer neighbors.
CsrMatrix build_poisson27(int nx, int ny, int nz);

/// 7-point operator (diagonal 6, off-diagonal -1) — the classic Poisson
/// stencil used by the Alya-solver proxy tests.
CsrMatrix build_poisson7(int nx, int ny, int nz);

struct CgResult {
  int iterations = 0;
  double residual_norm = 0.0;  ///< ||b - A x|| at exit
  bool converged = false;
};

/// Conjugate gradient for s.p.d. A. `precond`, if provided, applies an
/// approximate inverse: z = M^{-1} r (identity when empty).
CgResult conjugate_gradient(
    const CsrMatrix& a, const std::vector<double>& b, std::vector<double>& x,
    int max_iters, double tolerance,
    const std::function<void(const std::vector<double>&,
                             std::vector<double>&)>& precond = {});

// BLAS-1 helpers shared by the solvers.
double dot(const std::vector<double>& x, const std::vector<double>& y);
void axpy(double alpha, const std::vector<double>& x, std::vector<double>& y);
double norm2(const std::vector<double>& x);

}  // namespace ctesim::kernels
