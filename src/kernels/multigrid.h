// Mini-HPCG: symmetric Gauss-Seidel smoother and a geometric multigrid
// V-cycle over the 27-point operator, used as the preconditioner of the
// conjugate gradient — the exact algorithmic structure of the HPCG
// benchmark (SpMV + SymGS + restriction/prolongation + MG-preconditioned
// CG). This is the *native* implementation validating correctness; the
// cluster-scale performance figures come from the model in src/hpcb.
#pragma once

#include <memory>
#include <vector>

#include "kernels/sparse.h"

namespace ctesim::kernels {

/// One forward + one backward Gauss-Seidel sweep: x <- SymGS(A, b, x).
/// A must have nonzero diagonal entries.
void symgs_sweep(const CsrMatrix& a, const std::vector<double>& b,
                 std::vector<double>& x);

/// Geometric multigrid hierarchy over nested nx/2^l grids (HPCG coarsening).
class MultigridHierarchy {
 public:
  /// Builds `levels` grids starting at (nx, ny, nz); each dimension must be
  /// divisible by 2^(levels-1).
  MultigridHierarchy(int nx, int ny, int nz, int levels);

  int levels() const { return static_cast<int>(grids_.size()); }
  const CsrMatrix& matrix(int level) const { return grids_[level].a; }

  /// One V-cycle applying `pre`+`post` SymGS sweeps per level:
  /// z = Vcycle(A, r) — the HPCG preconditioner (HPCG uses 1 pre, 1 post).
  void v_cycle(const std::vector<double>& r, std::vector<double>& z) const;

  /// Injection restriction (fine -> coarse), as HPCG does.
  void restrict_to(int fine_level, const std::vector<double>& fine,
                   std::vector<double>& coarse) const;

  /// Prolongation by injection add (coarse -> fine), as HPCG does.
  void prolong_add(int fine_level, const std::vector<double>& coarse,
                   std::vector<double>& fine) const;

 private:
  struct Grid {
    int nx, ny, nz;
    CsrMatrix a;
    /// fine index of each coarse point (2x coarsening, even coordinates)
    std::vector<std::size_t> fine_of_coarse;
  };

  void cycle_level(int level, const std::vector<double>& r,
                   std::vector<double>& z) const;

  std::vector<Grid> grids_;
};

struct HpcgResult {
  int iterations = 0;
  double residual_norm = 0.0;
  bool converged = false;
  double flops = 0.0;  ///< total FP operations (HPCG-style accounting)
};

/// Full mini-HPCG run: MG-preconditioned CG on the 27-point problem.
HpcgResult run_mini_hpcg(int nx, int ny, int nz, int max_iters,
                         double tolerance);

}  // namespace ctesim::kernels
