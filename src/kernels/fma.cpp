#include "kernels/fma.h"

#include <chrono>

namespace ctesim::kernels {

namespace {
constexpr int kLanes = 16;  // > FMA latency x pipes on every current core
constexpr double kMul64 = 1.0000000001;
constexpr double kAdd64 = 1e-9;
constexpr float kMul32 = 1.000001f;
constexpr float kAdd32 = 1e-6f;

double now_seconds() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch())
      .count();
}

template <typename T>
struct Consts;
template <>
struct Consts<double> {
  static constexpr double mul = kMul64;
  static constexpr double add = kAdd64;
};
template <>
struct Consts<float> {
  static constexpr float mul = kMul32;
  static constexpr float add = kAdd32;
};

template <typename T>
FmaResult run(std::uint64_t iters) {
  T acc[kLanes];
  for (int i = 0; i < kLanes; ++i) acc[i] = T(0);
  const T m = Consts<T>::mul;
  const T c = Consts<T>::add;
  const double t0 = now_seconds();
  for (std::uint64_t it = 0; it < iters; ++it) {
    for (int i = 0; i < kLanes; ++i) {
      acc[i] = acc[i] * m + c;  // independent FMA chains
    }
  }
  const double t1 = now_seconds();
  FmaResult r;
  r.seconds = t1 - t0;
  const double flops = 2.0 * kLanes * static_cast<double>(iters);
  r.gflops = r.seconds > 0.0 ? flops / r.seconds / 1e9 : 0.0;
  double sum = 0.0;
  for (int i = 0; i < kLanes; ++i) sum += static_cast<double>(acc[i]);
  r.checksum = sum;
  return r;
}

template <typename T>
T expected_one_lane(std::uint64_t iters) {
  // x_{n+1} = m x_n + c from x_0 = 0, evaluated iteratively in the same
  // precision so it matches the kernel bit-for-bit.
  T x = T(0);
  const T m = Consts<T>::mul;
  const T c = Consts<T>::add;
  for (std::uint64_t i = 0; i < iters; ++i) x = x * m + c;
  return x;
}

}  // namespace

FmaResult fma_throughput_f64(std::uint64_t iters) { return run<double>(iters); }
FmaResult fma_throughput_f32(std::uint64_t iters) { return run<float>(iters); }

double fma_expected_checksum_f64(std::uint64_t iters) {
  return kLanes * expected_one_lane<double>(iters);
}

float fma_expected_checksum_f32(std::uint64_t iters) {
  return static_cast<float>(kLanes) * expected_one_lane<float>(iters);
}

}  // namespace ctesim::kernels
