// Blocked matrix transpose — the local half of a spectral-model
// transposition (the other half being the alltoall the OpenIFS proxy
// charges to the network). Cache-blocked out-of-place transpose plus the
// pack/unpack helpers a real transposition uses.
#pragma once

#include <cstddef>
#include <vector>

namespace ctesim::kernels {

/// out[j * rows + i] = in[i * cols + j], cache-blocked.
void transpose_blocked(const std::vector<double>& in, std::size_t rows,
                       std::size_t cols, std::vector<double>& out,
                       std::size_t block = 32);

/// Gather the `part`-th of `parts` column groups of a row-major matrix
/// into a contiguous send buffer (what gets handed to the alltoall).
void pack_columns(const std::vector<double>& in, std::size_t rows,
                  std::size_t cols, std::size_t parts, std::size_t part,
                  std::vector<double>& out);

/// Inverse of pack_columns.
void unpack_columns(const std::vector<double>& in, std::size_t rows,
                    std::size_t cols, std::size_t parts, std::size_t part,
                    std::vector<double>& inout_matrix);

}  // namespace ctesim::kernels
