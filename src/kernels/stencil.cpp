#include "kernels/stencil.h"

#include <cmath>
#include <utility>

#include "util/check.h"

namespace ctesim::kernels {

Grid3D::Grid3D(int nx, int ny, int nz, double value)
    : nx_(nx),
      ny_(ny),
      nz_(nz),
      data_(static_cast<std::size_t>(nx) * ny * nz, value) {
  CTESIM_EXPECTS(nx >= 1 && ny >= 1 && nz >= 1);
}

double Grid3D::sum() const {
  double s = 0.0;
  for (double v : data_) s += v;
  return s;
}

double Grid3D::max_abs() const {
  double m = 0.0;
  for (double v : data_) m = std::max(m, std::fabs(v));
  return m;
}

void diffusion_step(const Grid3D& in, Grid3D& out, double alpha) {
  CTESIM_EXPECTS(in.nx() == out.nx() && in.ny() == out.ny() &&
                 in.nz() == out.nz());
  CTESIM_EXPECTS(alpha > 0.0 && alpha <= 1.0 / 6.0 + 1e-12);
  const int nx = in.nx();
  const int ny = in.ny();
  const int nz = in.nz();
  auto wrap = [](int i, int n) { return i < 0 ? n - 1 : (i >= n ? 0 : i); };
  for (int z = 0; z < nz; ++z) {
    const int zm = wrap(z - 1, nz);
    const int zp = wrap(z + 1, nz);
    for (int y = 0; y < ny; ++y) {
      const int ym = wrap(y - 1, ny);
      const int yp = wrap(y + 1, ny);
      for (int x = 0; x < nx; ++x) {
        const int xm = wrap(x - 1, nx);
        const int xp = wrap(x + 1, nx);
        const double center = in.at(x, y, z);
        const double lap = in.at(xm, y, z) + in.at(xp, y, z) +
                           in.at(x, ym, z) + in.at(x, yp, z) +
                           in.at(x, y, zm) + in.at(x, y, zp) - 6.0 * center;
        out.at(x, y, z) = center + alpha * lap;
      }
    }
  }
}

void diffuse(Grid3D& grid, int steps, double alpha) {
  CTESIM_EXPECTS(steps >= 0);
  Grid3D other(grid.nx(), grid.ny(), grid.nz());
  Grid3D* src = &grid;
  Grid3D* dst = &other;
  for (int s = 0; s < steps; ++s) {
    diffusion_step(*src, *dst, alpha);
    std::swap(src, dst);
  }
  if (src != &grid) grid = *src;
}

}  // namespace ctesim::kernels
