// Dense linear algebra: blocked GEMM and LU factorization with partial
// pivoting — the computational core of LINPACK (Fig. 6). Implemented for
// correctness and realistic structure (panel factorization + triangular
// update + trailing GEMM), not for host peak; the cluster-scale performance
// comes from the HPL model in src/hpcb.
#pragma once

#include <cstddef>
#include <vector>

namespace ctesim::kernels {

/// Row-major dense matrix.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double value = 0.0);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  double& at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double at(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }
  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// C += A * B, cache-blocked. A is (m x k), B is (k x n), C is (m x n).
void gemm_blocked(const Matrix& a, const Matrix& b, Matrix& c,
                  std::size_t block = 64);

/// In-place LU factorization with partial pivoting (right-looking, blocked:
/// unblocked panel + row swaps + triangular solve + GEMM trailing update).
/// Returns false if the matrix is numerically singular.
/// `pivots[k]` records the row swapped into position k at step k.
bool lu_factor(Matrix& a, std::vector<std::size_t>& pivots,
               std::size_t block = 32);

/// Solve A x = b given the factorization produced by lu_factor.
std::vector<double> lu_solve(const Matrix& lu,
                             const std::vector<std::size_t>& pivots,
                             std::vector<double> b);

/// ||A x - b||_inf / (||A||_inf ||x||_inf n eps) — the scaled residual HPL
/// reports; < ~16 means the factorization is numerically sound.
double hpl_residual(const Matrix& a, const std::vector<double>& x,
                    const std::vector<double>& b);

}  // namespace ctesim::kernels
