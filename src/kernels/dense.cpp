#include "kernels/dense.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.h"

namespace ctesim::kernels {

Matrix::Matrix(std::size_t rows, std::size_t cols, double value)
    : rows_(rows), cols_(cols), data_(rows * cols, value) {}

void gemm_blocked(const Matrix& a, const Matrix& b, Matrix& c,
                  std::size_t block) {
  CTESIM_EXPECTS(a.cols() == b.rows());
  CTESIM_EXPECTS(c.rows() == a.rows() && c.cols() == b.cols());
  CTESIM_EXPECTS(block >= 1);
  const std::size_t m = a.rows();
  const std::size_t k = a.cols();
  const std::size_t n = b.cols();
  for (std::size_t i0 = 0; i0 < m; i0 += block) {
    const std::size_t i1 = std::min(i0 + block, m);
    for (std::size_t p0 = 0; p0 < k; p0 += block) {
      const std::size_t p1 = std::min(p0 + block, k);
      for (std::size_t j0 = 0; j0 < n; j0 += block) {
        const std::size_t j1 = std::min(j0 + block, n);
        for (std::size_t i = i0; i < i1; ++i) {
          for (std::size_t p = p0; p < p1; ++p) {
            const double aip = a.at(i, p);
            for (std::size_t j = j0; j < j1; ++j) {
              c.at(i, j) += aip * b.at(p, j);
            }
          }
        }
      }
    }
  }
}

namespace {

/// Unblocked panel factorization of columns [k0, k1) acting on rows
/// [k0, n). Returns false on a zero pivot.
bool factor_panel(Matrix& a, std::vector<std::size_t>& pivots,
                  std::size_t k0, std::size_t k1) {
  const std::size_t n = a.rows();
  for (std::size_t k = k0; k < k1; ++k) {
    // Partial pivoting: largest |a(i,k)| for i >= k.
    std::size_t piv = k;
    double best = std::fabs(a.at(k, k));
    for (std::size_t i = k + 1; i < n; ++i) {
      const double v = std::fabs(a.at(i, k));
      if (v > best) {
        best = v;
        piv = i;
      }
    }
    if (best == 0.0) return false;
    pivots[k] = piv;
    if (piv != k) {
      for (std::size_t j = 0; j < a.cols(); ++j) {
        std::swap(a.at(k, j), a.at(piv, j));
      }
    }
    const double inv = 1.0 / a.at(k, k);
    for (std::size_t i = k + 1; i < n; ++i) {
      a.at(i, k) *= inv;
      const double lik = a.at(i, k);
      for (std::size_t j = k + 1; j < k1; ++j) {
        a.at(i, j) -= lik * a.at(k, j);
      }
    }
  }
  return true;
}

}  // namespace

bool lu_factor(Matrix& a, std::vector<std::size_t>& pivots,
               std::size_t block) {
  CTESIM_EXPECTS(a.rows() == a.cols());
  CTESIM_EXPECTS(block >= 1);
  const std::size_t n = a.rows();
  pivots.assign(n, 0);
  for (std::size_t k0 = 0; k0 < n; k0 += block) {
    const std::size_t k1 = std::min(k0 + block, n);
    if (!factor_panel(a, pivots, k0, k1)) return false;
    if (k1 == n) break;
    // U block: solve L11 * U12 = A12 (unit lower triangular forward solve).
    for (std::size_t k = k0; k < k1; ++k) {
      for (std::size_t i = k + 1; i < k1; ++i) {
        const double lik = a.at(i, k);
        for (std::size_t j = k1; j < n; ++j) {
          a.at(i, j) -= lik * a.at(k, j);
        }
      }
    }
    // Trailing update: A22 -= L21 * U12 (the DGEMM that dominates HPL).
    for (std::size_t i = k1; i < n; ++i) {
      for (std::size_t k = k0; k < k1; ++k) {
        const double lik = a.at(i, k);
        if (lik == 0.0) continue;
        for (std::size_t j = k1; j < n; ++j) {
          a.at(i, j) -= lik * a.at(k, j);
        }
      }
    }
  }
  return true;
}

std::vector<double> lu_solve(const Matrix& lu,
                             const std::vector<std::size_t>& pivots,
                             std::vector<double> b) {
  const std::size_t n = lu.rows();
  CTESIM_EXPECTS(b.size() == n);
  CTESIM_EXPECTS(pivots.size() == n);
  // Apply the row interchanges in factorization order.
  for (std::size_t k = 0; k < n; ++k) {
    if (pivots[k] != k) std::swap(b[k], b[pivots[k]]);
  }
  // Forward solve L y = Pb (unit diagonal).
  for (std::size_t i = 1; i < n; ++i) {
    double sum = b[i];
    for (std::size_t j = 0; j < i; ++j) sum -= lu.at(i, j) * b[j];
    b[i] = sum;
  }
  // Back substitution U x = y.
  for (std::size_t i = n; i-- > 0;) {
    double sum = b[i];
    for (std::size_t j = i + 1; j < n; ++j) sum -= lu.at(i, j) * b[j];
    b[i] = sum / lu.at(i, i);
  }
  return b;
}

double hpl_residual(const Matrix& a, const std::vector<double>& x,
                    const std::vector<double>& b) {
  const std::size_t n = a.rows();
  CTESIM_EXPECTS(x.size() == n && b.size() == n);
  double r_inf = 0.0;
  double a_inf = 0.0;
  double x_inf = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    double ax = 0.0;
    double row = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      ax += a.at(i, j) * x[j];
      row += std::fabs(a.at(i, j));
    }
    r_inf = std::max(r_inf, std::fabs(ax - b[i]));
    a_inf = std::max(a_inf, row);
    x_inf = std::max(x_inf, std::fabs(x[i]));
  }
  const double eps = std::numeric_limits<double>::epsilon();
  const double denom = a_inf * x_inf * static_cast<double>(n) * eps;
  return denom > 0.0 ? r_inf / denom : 0.0;
}

}  // namespace ctesim::kernels
