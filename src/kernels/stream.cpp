#include "kernels/stream.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>
#include <vector>

#include "util/check.h"

namespace ctesim::kernels {

namespace {
double now_seconds() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch())
      .count();
}
}  // namespace

Stream::Stream(std::size_t elements)
    : a_(elements, 1.0), b_(elements, 2.0), c_(elements, 0.0) {
  CTESIM_EXPECTS(elements > 0);
}

double Stream::copy() {
  const double t0 = now_seconds();
  const std::size_t n = a_.size();
  for (std::size_t i = 0; i < n; ++i) c_[i] = a_[i];
  return now_seconds() - t0;
}

double Stream::scale() {
  const double t0 = now_seconds();
  const std::size_t n = a_.size();
  for (std::size_t i = 0; i < n; ++i) b_[i] = kScalar * c_[i];
  return now_seconds() - t0;
}

double Stream::add() {
  const double t0 = now_seconds();
  const std::size_t n = a_.size();
  for (std::size_t i = 0; i < n; ++i) c_[i] = a_[i] + b_[i];
  return now_seconds() - t0;
}

double Stream::triad() {
  const double t0 = now_seconds();
  const std::size_t n = a_.size();
  for (std::size_t i = 0; i < n; ++i) a_[i] = b_[i] + kScalar * c_[i];
  return now_seconds() - t0;
}

double Stream::triad_parallel(int threads) {
  CTESIM_EXPECTS(threads >= 1);
  const std::size_t n = a_.size();
  {
    util::MutexLock lock(timings_mutex_);
    thread_seconds_.clear();
  }
  const double t0 = now_seconds();
  if (threads == 1) {
    for (std::size_t i = 0; i < n; ++i) a_[i] = b_[i] + kScalar * c_[i];
    const double elapsed = now_seconds() - t0;
    util::MutexLock lock(timings_mutex_);
    thread_seconds_.emplace_back(0, elapsed);
    return elapsed;
  }
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    const std::size_t lo = n * static_cast<std::size_t>(t) /
                           static_cast<std::size_t>(threads);
    const std::size_t hi = n * (static_cast<std::size_t>(t) + 1) /
                           static_cast<std::size_t>(threads);
    workers.emplace_back([this, t, lo, hi] {
      const double w0 = now_seconds();
      for (std::size_t i = lo; i < hi; ++i) {
        a_[i] = b_[i] + kScalar * c_[i];
      }
      const double elapsed = now_seconds() - w0;
      util::MutexLock lock(timings_mutex_);
      thread_seconds_.emplace_back(t, elapsed);
    });
  }
  for (auto& w : workers) w.join();
  return now_seconds() - t0;
}

std::vector<double> Stream::last_thread_seconds() const {
  std::vector<std::pair<int, double>> raw;
  {
    util::MutexLock lock(timings_mutex_);
    raw = thread_seconds_;
  }
  // Completion order is scheduler-dependent; index order is not.
  std::sort(raw.begin(), raw.end());
  std::vector<double> seconds;
  seconds.reserve(raw.size());
  for (const auto& [t, s] : raw) seconds.push_back(s);
  return seconds;
}

double Stream::run_and_verify(int times) {
  CTESIM_EXPECTS(times >= 1);
  for (int k = 0; k < times; ++k) {
    copy();
    scale();
    add();
    triad();
  }
  return verify_after(times);
}

double Stream::verify_after(int times) const {
  CTESIM_EXPECTS(times >= 1);
  // Reproduce stream.c's scalar recurrence for the expected values.
  double ea = 1.0;
  double eb = 2.0;
  double ec = 0.0;
  for (int k = 0; k < times; ++k) {
    ec = ea;
    eb = kScalar * ec;
    ec = ea + eb;
    ea = eb + kScalar * ec;
  }
  double max_rel = 0.0;
  for (std::size_t i = 0; i < a_.size(); ++i) {
    max_rel = std::max(max_rel, std::fabs((a_[i] - ea) / ea));
    max_rel = std::max(max_rel, std::fabs((b_[i] - eb) / eb));
    max_rel = std::max(max_rel, std::fabs((c_[i] - ec) / ec));
  }
  return max_rel;
}

double Stream::bandwidth(std::size_t bytes_per_elem, double seconds) const {
  CTESIM_EXPECTS(seconds > 0.0);
  return static_cast<double>(bytes_per_elem) *
         static_cast<double>(elements()) / seconds;
}

}  // namespace ctesim::kernels
