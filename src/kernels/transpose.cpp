#include "kernels/transpose.h"

#include <algorithm>

#include "util/check.h"

namespace ctesim::kernels {

void transpose_blocked(const std::vector<double>& in, std::size_t rows,
                       std::size_t cols, std::vector<double>& out,
                       std::size_t block) {
  CTESIM_EXPECTS(in.size() == rows * cols);
  CTESIM_EXPECTS(block >= 1);
  out.resize(rows * cols);
  for (std::size_t i0 = 0; i0 < rows; i0 += block) {
    const std::size_t i1 = std::min(i0 + block, rows);
    for (std::size_t j0 = 0; j0 < cols; j0 += block) {
      const std::size_t j1 = std::min(j0 + block, cols);
      for (std::size_t i = i0; i < i1; ++i) {
        for (std::size_t j = j0; j < j1; ++j) {
          out[j * rows + i] = in[i * cols + j];
        }
      }
    }
  }
}

namespace {

/// Column range [lo, hi) owned by `part` of `parts` (balanced split).
void column_range(std::size_t cols, std::size_t parts, std::size_t part,
                  std::size_t* lo, std::size_t* hi) {
  CTESIM_EXPECTS(parts >= 1 && part < parts);
  *lo = cols * part / parts;
  *hi = cols * (part + 1) / parts;
}

}  // namespace

void pack_columns(const std::vector<double>& in, std::size_t rows,
                  std::size_t cols, std::size_t parts, std::size_t part,
                  std::vector<double>& out) {
  CTESIM_EXPECTS(in.size() == rows * cols);
  std::size_t lo = 0;
  std::size_t hi = 0;
  column_range(cols, parts, part, &lo, &hi);
  out.resize(rows * (hi - lo));
  std::size_t k = 0;
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = lo; j < hi; ++j) {
      out[k++] = in[i * cols + j];
    }
  }
}

void unpack_columns(const std::vector<double>& in, std::size_t rows,
                    std::size_t cols, std::size_t parts, std::size_t part,
                    std::vector<double>& inout_matrix) {
  CTESIM_EXPECTS(inout_matrix.size() == rows * cols);
  std::size_t lo = 0;
  std::size_t hi = 0;
  column_range(cols, parts, part, &lo, &hi);
  CTESIM_EXPECTS(in.size() == rows * (hi - lo));
  std::size_t k = 0;
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = lo; j < hi; ++j) {
      inout_matrix[i * cols + j] = in[k++];
    }
  }
}

}  // namespace ctesim::kernels
