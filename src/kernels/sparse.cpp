#include "kernels/sparse.h"

#include <cmath>

#include "util/check.h"

namespace ctesim::kernels {

void spmv(const CsrMatrix& a, const std::vector<double>& x,
          std::vector<double>& y) {
  CTESIM_EXPECTS(x.size() >= a.rows);
  y.resize(a.rows);
  for (std::size_t i = 0; i < a.rows; ++i) {
    double sum = 0.0;
    for (std::int64_t k = a.row_ptr[i]; k < a.row_ptr[i + 1]; ++k) {
      sum += a.val[static_cast<std::size_t>(k)] *
             x[static_cast<std::size_t>(a.col[static_cast<std::size_t>(k)])];
    }
    y[i] = sum;
  }
}

namespace {

CsrMatrix build_box_stencil(int nx, int ny, int nz, bool full27) {
  CTESIM_EXPECTS(nx >= 1 && ny >= 1 && nz >= 1);
  CsrMatrix a;
  const std::size_t n =
      static_cast<std::size_t>(nx) * static_cast<std::size_t>(ny) *
      static_cast<std::size_t>(nz);
  a.rows = n;
  a.row_ptr.reserve(n + 1);
  a.row_ptr.push_back(0);
  const double diag = full27 ? 26.0 : 6.0;
  auto index = [&](int ix, int iy, int iz) {
    return (static_cast<std::int64_t>(iz) * ny + iy) * nx + ix;
  };
  for (int iz = 0; iz < nz; ++iz) {
    for (int iy = 0; iy < ny; ++iy) {
      for (int ix = 0; ix < nx; ++ix) {
        // Neighbors first, then insert the diagonal in column order.
        for (int dz = -1; dz <= 1; ++dz) {
          for (int dy = -1; dy <= 1; ++dy) {
            for (int dx = -1; dx <= 1; ++dx) {
              if (!full27 && std::abs(dx) + std::abs(dy) + std::abs(dz) != 1 &&
                  !(dx == 0 && dy == 0 && dz == 0)) {
                continue;
              }
              const int jx = ix + dx;
              const int jy = iy + dy;
              const int jz = iz + dz;
              if (jx < 0 || jx >= nx || jy < 0 || jy >= ny || jz < 0 ||
                  jz >= nz) {
                continue;
              }
              const bool is_diag = dx == 0 && dy == 0 && dz == 0;
              a.col.push_back(static_cast<std::int32_t>(index(jx, jy, jz)));
              a.val.push_back(is_diag ? diag : -1.0);
            }
          }
        }
        a.row_ptr.push_back(static_cast<std::int64_t>(a.col.size()));
      }
    }
  }
  return a;
}

}  // namespace

CsrMatrix build_poisson27(int nx, int ny, int nz) {
  return build_box_stencil(nx, ny, nz, /*full27=*/true);
}

CsrMatrix build_poisson7(int nx, int ny, int nz) {
  return build_box_stencil(nx, ny, nz, /*full27=*/false);
}

double dot(const std::vector<double>& x, const std::vector<double>& y) {
  CTESIM_EXPECTS(x.size() == y.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) sum += x[i] * y[i];
  return sum;
}

void axpy(double alpha, const std::vector<double>& x, std::vector<double>& y) {
  CTESIM_EXPECTS(x.size() == y.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

double norm2(const std::vector<double>& x) { return std::sqrt(dot(x, x)); }

CgResult conjugate_gradient(
    const CsrMatrix& a, const std::vector<double>& b, std::vector<double>& x,
    int max_iters, double tolerance,
    const std::function<void(const std::vector<double>&,
                             std::vector<double>&)>& precond) {
  CTESIM_EXPECTS(b.size() == a.rows);
  x.assign(a.rows, 0.0);
  std::vector<double> r = b;  // r = b - A*0
  std::vector<double> z(a.rows);
  if (precond) {
    precond(r, z);
  } else {
    z = r;
  }
  std::vector<double> p = z;
  std::vector<double> ap(a.rows);
  double rz = dot(r, z);
  const double b_norm = norm2(b);
  const double target = tolerance * (b_norm > 0.0 ? b_norm : 1.0);

  CgResult result;
  for (int it = 0; it < max_iters; ++it) {
    spmv(a, p, ap);
    const double p_ap = dot(p, ap);
    CTESIM_ENSURES(p_ap > 0.0);  // A must be s.p.d.
    const double alpha = rz / p_ap;
    axpy(alpha, p, x);
    axpy(-alpha, ap, r);
    result.iterations = it + 1;
    result.residual_norm = norm2(r);
    if (result.residual_norm <= target) {
      result.converged = true;
      return result;
    }
    if (precond) {
      precond(r, z);
    } else {
      z = r;
    }
    const double rz_new = dot(r, z);
    const double beta = rz_new / rz;
    rz = rz_new;
    for (std::size_t i = 0; i < p.size(); ++i) p[i] = z[i] + beta * p[i];
  }
  return result;
}

}  // namespace ctesim::kernels
