// Molecular-dynamics kernel: Lennard-Jones particles, cell-list neighbor
// search, velocity-Verlet integration with a cutoff — the computational
// pattern of Gromacs' non-bonded loop with reaction-field electrostatics
// (the lignocellulose-rf case of Figs. 12/13 has no PME, so short-range
// pair forces dominate exactly as here).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace ctesim::kernels {

struct Vec3 {
  double x = 0.0, y = 0.0, z = 0.0;
};

struct MdConfig {
  std::size_t particles = 0;
  double box = 0.0;      ///< cubic box edge (periodic)
  double cutoff = 2.5;   ///< LJ cutoff, sigma units
  double dt = 0.002;     ///< integration step
  std::uint64_t seed = 7;
};

class MdSystem {
 public:
  /// Particles on a perturbed lattice with small random velocities
  /// (zero net momentum).
  explicit MdSystem(const MdConfig& config);

  /// Rebuild cell lists and compute LJ forces + potential energy.
  void compute_forces();

  /// One velocity-Verlet step (calls compute_forces internally).
  void step();

  /// Run `n` steps; returns pair interactions evaluated (for benchmarks).
  std::uint64_t run(int n);

  double potential_energy() const { return potential_; }
  double kinetic_energy() const;
  double total_energy() const { return potential_energy() + kinetic_energy(); }
  /// Net momentum magnitude (conserved quantity, ~0 throughout).
  double momentum_norm() const;

  std::size_t particles() const { return pos_.size(); }
  const std::vector<Vec3>& positions() const { return pos_; }

  /// Pairs within cutoff at the last force evaluation.
  std::uint64_t last_pair_count() const { return pair_count_; }

 private:
  void build_cells();
  double minimum_image(double d) const;

  MdConfig config_;
  std::vector<Vec3> pos_;
  std::vector<Vec3> vel_;
  std::vector<Vec3> force_;
  double potential_ = 0.0;
  std::uint64_t pair_count_ = 0;

  int cells_per_dim_ = 0;
  std::vector<std::vector<std::int32_t>> cells_;
};

}  // namespace ctesim::kernels
