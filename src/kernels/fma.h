// Native FPU throughput microkernel — the portable analogue of the paper's
// FPU_uKernel (Section III-A): chains of independent fused multiply-adds,
// enough accumulators to cover the FMA latency, no memory traffic in the
// hot loop. The simulated Fig. 1 numbers come from arch::CoreModel; this
// kernel provides the host-native measurement and the correctness anchor
// (the result of the accumulation is checked in closed form).
#pragma once

#include <cstdint>

namespace ctesim::kernels {

struct FmaResult {
  double seconds = 0.0;
  double gflops = 0.0;
  double checksum = 0.0;  ///< sum of accumulators, for verification
};

/// `iters` iterations over `kLanes` independent accumulators, two FP ops
/// (mul+add) per accumulator per iteration: a[i] = a[i]*m + c.
FmaResult fma_throughput_f64(std::uint64_t iters);
FmaResult fma_throughput_f32(std::uint64_t iters);

/// Expected checksum for given iteration count (closed form of the affine
/// recurrence), used by tests.
double fma_expected_checksum_f64(std::uint64_t iters);
float fma_expected_checksum_f32(std::uint64_t iters);

}  // namespace ctesim::kernels
