// Radix-2 complex FFT — the transform at the heart of the OpenIFS spectral
// method proxy (Figs. 14/15). Iterative Cooley-Tukey with bit-reversal
// permutation; tests verify the forward/inverse round trip, Parseval's
// identity and the transform of known signals.
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

namespace ctesim::kernels {

using Complex = std::complex<double>;

/// In-place forward FFT; size must be a power of two.
void fft(std::vector<Complex>& data);

/// In-place inverse FFT (includes the 1/N normalization).
void ifft(std::vector<Complex>& data);

/// True if n is a power of two (and nonzero).
bool is_power_of_two(std::size_t n);

/// FLOP count of one radix-2 FFT of size n (the 5 n log2 n convention),
/// used by the OpenIFS workload model so the simulated spectral transform
/// charges the same work this kernel performs.
double fft_flops(std::size_t n);

}  // namespace ctesim::kernels
