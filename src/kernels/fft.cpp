#include "kernels/fft.h"

#include <cmath>
#include <numbers>

#include "util/check.h"

namespace ctesim::kernels {

bool is_power_of_two(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

namespace {

void bit_reverse_permute(std::vector<Complex>& data) {
  const std::size_t n = data.size();
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }
}

void transform(std::vector<Complex>& data, bool inverse) {
  const std::size_t n = data.size();
  CTESIM_EXPECTS(is_power_of_two(n));
  bit_reverse_permute(data);
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle =
        (inverse ? 2.0 : -2.0) * std::numbers::pi / static_cast<double>(len);
    const Complex wlen(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      Complex w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const Complex u = data[i + k];
        const Complex v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
  if (inverse) {
    const double inv_n = 1.0 / static_cast<double>(n);
    for (auto& x : data) x *= inv_n;
  }
}

}  // namespace

void fft(std::vector<Complex>& data) { transform(data, /*inverse=*/false); }

void ifft(std::vector<Complex>& data) { transform(data, /*inverse=*/true); }

double fft_flops(std::size_t n) {
  CTESIM_EXPECTS(is_power_of_two(n));
  const double dn = static_cast<double>(n);
  return 5.0 * dn * std::log2(dn);
}

}  // namespace ctesim::kernels
