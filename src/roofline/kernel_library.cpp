#include "roofline/kernel_library.h"

namespace ctesim::roofline::kernels {

using arch::KernelClass;

KernelSig stream_triad() {
  return {.name = "stream-triad",
          .cls = KernelClass::kStream,
          .flops_per_elem = 2.0,
          .bytes_per_elem = 24.0,
          .vec_potential = 1.0,
          .overlap = 1.0};
}

KernelSig stream_copy() {
  return {.name = "stream-copy",
          .cls = KernelClass::kStream,
          .flops_per_elem = 0.0,
          .bytes_per_elem = 16.0,
          .vec_potential = 1.0,
          .overlap = 1.0};
}

KernelSig stream_scale() {
  return {.name = "stream-scale",
          .cls = KernelClass::kStream,
          .flops_per_elem = 1.0,
          .bytes_per_elem = 16.0,
          .vec_potential = 1.0,
          .overlap = 1.0};
}

KernelSig stream_add() {
  return {.name = "stream-add",
          .cls = KernelClass::kStream,
          .flops_per_elem = 1.0,
          .bytes_per_elem = 24.0,
          .vec_potential = 1.0,
          .overlap = 1.0};
}

KernelSig dgemm() {
  return {.name = "dgemm",
          .cls = KernelClass::kDenseLinAlg,
          .flops_per_elem = 2.0,   // one FMA per inner-product element
          .bytes_per_elem = 0.5,   // blocked: ~0.25 B/flop
          .vec_potential = 1.0,
          .overlap = 1.0};
}

KernelSig spmv_csr() {
  return {.name = "spmv-csr",
          .cls = KernelClass::kSparseSolver,
          .flops_per_elem = 2.0,    // per nonzero: multiply-add
          .bytes_per_elem = 12.5,   // 8B value + 4B col + amortized vectors
          .vec_potential = 0.85,
          .overlap = 0.4};          // gather-bound, poor decoupling
}

KernelSig symgs() {
  return {.name = "symgs",
          .cls = KernelClass::kSparseSolver,
          .flops_per_elem = 2.0,
          .bytes_per_elem = 12.5,
          .vec_potential = 0.40,    // dependency chains along the sweep
          .overlap = 0.3};
}

KernelSig fem_assembly() {
  return {.name = "fem-assembly",
          .cls = KernelClass::kFemAssembly,
          .flops_per_elem = 1.0,    // normalized: caller supplies flop count
          .bytes_per_elem = 0.12,   // element data largely cache-resident
          .vec_potential = 0.90,
          .overlap = 0.7};
}

KernelSig md_nonbonded() {
  return {.name = "md-nonbonded",
          .cls = KernelClass::kMdNonbonded,
          .flops_per_elem = 45.0,   // per pair: r2, rinv, force, accumulate
          .bytes_per_elem = 9.0,    // neighbor-list gathers, cache-friendly
          .vec_potential = 0.95,
          .overlap = 0.7};
}

KernelSig stencil3d() {
  return {.name = "stencil3d",
          .cls = KernelClass::kStencil,
          .flops_per_elem = 1.0,    // normalized per flop-unit, see apps
          .bytes_per_elem = 0.45,   // planes cached, streaming writes
          .vec_potential = 0.95,
          .overlap = 0.8};
}

KernelSig spectral_transform() {
  return {.name = "spectral-transform",
          .cls = KernelClass::kSpectralTransform,
          .flops_per_elem = 1.0,    // normalized: caller supplies N log N
          .bytes_per_elem = 0.30,
          .vec_potential = 0.85,
          .overlap = 0.6};
}

KernelSig physics_column() {
  return {.name = "physics-column",
          .cls = KernelClass::kPhysics,
          .flops_per_elem = 1.0,
          .bytes_per_elem = 0.25,
          .vec_potential = 0.30,    // branchy; little is vectorizable at all
          .overlap = 0.6};
}

}  // namespace ctesim::roofline::kernels
