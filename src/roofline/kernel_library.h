// Signatures of the standard kernels used by the benchmarks and application
// proxies. Flop/byte counts are derived analytically from the kernels in
// src/kernels (same loop bodies), so the simulated workloads and the native
// code agree on the work per element.
#pragma once

#include "roofline/kernel.h"

namespace ctesim::roofline::kernels {

/// STREAM Triad: a[i] = b[i] + q*c[i]; 2 flops, 24 bytes per element.
KernelSig stream_triad();

/// STREAM Copy: a[i] = b[i]; 0 flops, 16 bytes.
KernelSig stream_copy();

/// STREAM Scale: a[i] = q*b[i]; 1 flop, 16 bytes.
KernelSig stream_scale();

/// STREAM Add: a[i] = b[i] + c[i]; 1 flop, 24 bytes.
KernelSig stream_add();

/// Blocked DGEMM update (HPL trailing matrix): element = one FMA, traffic
/// amortized by blocking (~0.25 bytes/flop at typical NB).
KernelSig dgemm();

/// CSR SpMV, 27 nonzeros/row mesh: per nonzero 2 flops, ~12.5 bytes
/// (8B value + 4B index + amortized x/y traffic).
KernelSig spmv_csr();

/// Symmetric Gauss-Seidel sweep (HPCG smoother): like SpMV but with
/// forward+backward dependency chains (low overlap, low vec potential).
KernelSig symgs();

/// FEM element-matrix assembly (Alya): gather/scatter-heavy, high flops per
/// element, indirect addressing limits vectorization.
KernelSig fem_assembly();

/// MD non-bonded pair forces (Gromacs reaction-field): ~45 flops/pair,
/// neighbor-list gathers.
KernelSig md_nonbonded();

/// Structured-grid 3D stencil sweep (NEMO/WRF dynamics).
KernelSig stencil3d();

/// Spectral transform (OpenIFS FFT/Legendre): O(N log N) butterflies,
/// strided access.
KernelSig spectral_transform();

/// Column physics parameterization (OpenIFS/WRF): branchy scalar Fortran.
KernelSig physics_column();

}  // namespace ctesim::roofline::kernels
