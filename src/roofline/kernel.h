// Kernel signature: the architecture-independent description of a
// computational kernel (how much work per element, how vectorizable, how
// much memory traffic). The execution model combines a signature with a
// machine + compiler to predict time.
#pragma once

#include "arch/compiler.h"
#include "arch/core_model.h"

namespace ctesim::roofline {

/// NOTE: KernelSig is deliberately trivially destructible (name is a
/// `const char*`, expected to point at a string literal). Signatures are
/// passed as temporaries into coroutines (`co_await rank.compute(sig, n)`),
/// and GCC 12 miscompiles the destruction of non-trivially-destructible
/// objects crossing a coroutine boundary inside a co_await expression (see
/// the contract note in core/task.h).
struct KernelSig {
  const char* name = "";
  arch::KernelClass cls = arch::KernelClass::kGeneric;
  double flops_per_elem = 0.0;
  double bytes_per_elem = 0.0;
  /// Fraction of the FP work that is vectorizable *in principle* (data
  /// layout and dependencies permitting); the compiler model decides how
  /// much of it is actually vectorized.
  double vec_potential = 1.0;
  arch::Precision precision = arch::Precision::kDouble;
  /// Compute/memory overlap [0,1]: 1 = perfect roofline overlap (streaming
  /// kernels), 0 = fully serialized phases (latency-bound indirect access).
  double overlap = 1.0;

  /// Arithmetic intensity, FLOP per byte.
  double intensity() const {
    return bytes_per_elem > 0.0 ? flops_per_elem / bytes_per_elem : 1e30;
  }
};

}  // namespace ctesim::roofline
