#include "roofline/exec_model.h"

#include <algorithm>

#include "util/check.h"

namespace ctesim::roofline {

ExecModel::ExecModel(const arch::NodeModel& node, arch::CompilerModel compiler)
    : node_(node), compiler_(std::move(compiler)) {}

units::FlopsPerSec ExecModel::core_flop_rate(const KernelSig& sig) const {
  const arch::CoreModel& core = node_.core;
  const double vec =
      sig.vec_potential * compiler_.vectorization(sig.cls, core);
  CTESIM_ENSURES(vec >= 0.0 && vec <= 1.0);
  const units::FlopsPerSec vector_rate = core.peak_vector_flops(sig.precision);
  const units::FlopsPerSec scalar_rate =
      core.effective_scalar_flops() * compiler_.scalar_quality(sig.cls, core);
  CTESIM_EXPECTS(vector_rate.value() > 0.0 && scalar_rate.value() > 0.0);
  // Harmonic blend: vec of the work at vector rate, rest at scalar rate.
  return units::FlopsPerSec{
      1.0 / (vec / vector_rate.value() + (1.0 - vec) / scalar_rate.value())};
}

units::BytesPerSec ExecModel::memory_bw(const KernelSig& sig,
                                        int cores) const {
  return node_.best_bw(cores) * compiler_.mem_efficiency(sig.cls, node_.core);
}

units::Seconds ExecModel::time(const KernelSig& sig, double elems,
                               int cores) const {
  return units::Seconds{analyze(sig, elems, cores).total_s};
}

Breakdown ExecModel::analyze(const KernelSig& sig, double elems,
                             int cores) const {
  CTESIM_EXPECTS(cores >= 1 && cores <= node_.core_count());
  return analyze_shared(sig, elems, cores, node_.best_bw(cores));
}

Breakdown ExecModel::analyze_shared(const KernelSig& sig, double elems,
                                    int cores,
                                    units::BytesPerSec raw_bw_share) const {
  CTESIM_EXPECTS(elems >= 0.0);
  CTESIM_EXPECTS(cores >= 1 && cores <= node_.core_count());
  CTESIM_EXPECTS(raw_bw_share.value() > 0.0);
  Breakdown b;
  const units::Flops flops{elems * sig.flops_per_elem};
  const units::Bytes bytes{elems * sig.bytes_per_elem};
  b.flops = flops.value();
  b.bytes = bytes.value();
  b.achieved_vectorization =
      sig.vec_potential * compiler_.vectorization(sig.cls, node_.core);
  const units::BytesPerSec bw =
      raw_bw_share * compiler_.mem_efficiency(sig.cls, node_.core);
  b.compute_s = flops.value() > 0.0
                    ? (flops / (core_flop_rate(sig) * cores)).value()
                    : 0.0;
  b.memory_s = bytes.value() > 0.0 ? (bytes / bw).value() : 0.0;
  const double hi = std::max(b.compute_s, b.memory_s);
  const double lo = std::min(b.compute_s, b.memory_s);
  b.total_s = hi + (1.0 - sig.overlap) * lo;
  b.achieved_flops = b.total_s > 0.0 ? flops.value() / b.total_s : 0.0;
  return b;
}

}  // namespace ctesim::roofline
