// Roofline-with-Amdahl execution-time model.
//
// Time for a kernel on `cores` cores of one node:
//   t_compute = flops / (cores * blended_core_rate)
//   t_memory  = bytes / (best_node_bw(cores) * mem_efficiency)
//   t         = max(t_c, t_m) + (1 - overlap) * min(t_c, t_m)
// where blended_core_rate harmonically mixes the vector and (OoO-derated)
// scalar pipes by the *achieved* vectorization fraction — the quantity the
// paper shows the compiler fails to deliver on A64FX.
#pragma once

#include "arch/compiler.h"
#include "arch/machine.h"
#include "roofline/kernel.h"
#include "util/units.h"

namespace ctesim::roofline {

struct Breakdown {
  double compute_s = 0.0;
  double memory_s = 0.0;
  double total_s = 0.0;
  double achieved_flops = 0.0;  ///< flops / total_s
  double achieved_vectorization = 0.0;
  /// The work the times were computed from — what the power layer needs to
  /// attribute energy to the same breakdown (see power/attribution.h).
  double flops = 0.0;  ///< total FP operations
  double bytes = 0.0;  ///< total memory traffic
};

class ExecModel {
 public:
  ExecModel(const arch::NodeModel& node, arch::CompilerModel compiler);

  /// Effective throughput of one core running this kernel.
  units::FlopsPerSec core_flop_rate(const KernelSig& sig) const;

  /// Achieved memory bandwidth for this kernel on `cores` cores.
  units::BytesPerSec memory_bw(const KernelSig& sig, int cores) const;

  /// Predicted time for `elems` elements on `cores` cores of one node
  /// (the cores' own best bandwidth — a rank running alone on the node).
  units::Seconds time(const KernelSig& sig, double elems, int cores) const;

  /// Full component breakdown (for ablation benches and tests).
  Breakdown analyze(const KernelSig& sig, double elems, int cores) const;

  /// Like analyze, but with an explicit raw bandwidth share (before the
  /// kernel's mem_efficiency derating). Used by the simulated MPI
  /// runtime: when every core of a node runs a rank, each rank gets
  /// best_bw(node)/ranks_per_node, not a lone rank's bandwidth.
  Breakdown analyze_shared(const KernelSig& sig, double elems, int cores,
                           units::BytesPerSec raw_bw_share) const;

  const arch::NodeModel& node() const { return node_; }
  const arch::CompilerModel& compiler() const { return compiler_; }

 private:
  arch::NodeModel node_;
  arch::CompilerModel compiler_;
};

}  // namespace ctesim::roofline
