#include "hpcb/hpcg.h"

#include <cmath>

#include "arch/calibration.h"
#include "util/check.h"

namespace ctesim::hpcb {

namespace calib = arch::calib;

HpcgModel::HpcgModel(const arch::MachineModel& machine, HpcgConfig config)
    : machine_(machine), config_(config) {
  CTESIM_EXPECTS(config_.nx >= 16 && config_.ny >= 16 && config_.nz >= 16);
  CTESIM_EXPECTS(config_.ranks_per_node >= 1);
}

double HpcgModel::bytes_per_flop() const {
  return machine_.node.core.uarch == arch::MicroArch::kA64fx
             ? calib::kHpcgBytesPerFlopA64fx
             : calib::kHpcgBytesPerFlopSkx;
}

double HpcgModel::node_gflops(HpcgBuild build) const {
  const bool a64fx = machine_.node.core.uarch == arch::MicroArch::kA64fx;
  const units::BytesPerSec sustained_bw =
      machine_.node.best_bw(machine_.node.core_count());
  const double mem_eff =
      a64fx ? calib::kHpcgOptMemEffA64fx : calib::kHpcgOptMemEffSkx;
  double gf = sustained_bw.value() * mem_eff / bytes_per_flop() / 1e9;
  if (build == HpcgBuild::kVanilla) {
    gf *= a64fx ? calib::kHpcgVanillaFactorA64fx
                : calib::kHpcgVanillaFactorSkx;
  }
  return gf;
}

HpcgPoint HpcgModel::run(int nodes, HpcgBuild build) const {
  CTESIM_EXPECTS(nodes >= 1 && nodes <= machine_.num_nodes);
  const bool a64fx = machine_.node.core.uarch == arch::MicroArch::kA64fx;
  // Halo exchanges + dot-product allreduces cost a few percent that grows
  // ~logarithmically with the machine size; anchored at the paper's
  // 192-node bars (CTE-Arm essentially flat, MN4 losing ~20%).
  const double f192 =
      a64fx ? calib::kHpcgScale192A64fx : calib::kHpcgScale192Skx;
  const double scale =
      nodes == 1 ? 1.0
                 : 1.0 + (f192 - 1.0) * std::log(static_cast<double>(nodes)) /
                             std::log(192.0);

  HpcgPoint point;
  point.nodes = nodes;
  point.gflops_per_node = node_gflops(build) * scale;
  point.gflops = point.gflops_per_node * nodes;
  point.peak_fraction = units::FlopsPerSec{point.gflops * 1e9} /
                        (machine_.node.peak_flops() * nodes);
  return point;
}

}  // namespace ctesim::hpcb
