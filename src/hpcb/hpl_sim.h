// Discrete-event cross-validation of the HPL model.
//
// hpcb::HplModel (hpl.h) is a per-step analytic loop. This runner executes
// the same algorithm as an actual simulated-MPI program — a P x Q grid of
// coroutine ranks doing panel factorization, the panel broadcast along row
// groups, row swaps along column groups, and the trailing update — sampling
// every `step_stride`-th block step and scaling. Tests assert the two
// agree, which pins the analytic model to the runtime's communication
// semantics (and exercises Group collectives on a real pattern).
#pragma once

#include "arch/machine.h"
#include "hpcb/hpl.h"

namespace ctesim::hpcb {

struct HplSimResult {
  double time_s = 0.0;
  double gflops = 0.0;
  int steps_simulated = 0;
};

/// Run the DES version on `nodes` nodes. `step_stride` samples the block
/// steps (1 = simulate every step; larger = faster, scaled).
HplSimResult run_hpl_sim(const arch::MachineModel& machine, int nodes,
                         const HplConfig& config, int step_stride = 16);

}  // namespace ctesim::hpcb
