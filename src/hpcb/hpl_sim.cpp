#include "hpcb/hpl_sim.h"

#include <cmath>
#include <memory>
#include <vector>

#include "simmpi/world.h"
#include "util/check.h"

namespace ctesim::hpcb {

namespace {

void choose_grid(int nranks, int* p, int* q) {
  int best_p = 1;
  for (int cand = 1; cand * cand <= nranks; ++cand) {
    if (nranks % cand == 0) best_p = cand;
  }
  *p = best_p;
  *q = nranks / best_p;
}

}  // namespace

HplSimResult run_hpl_sim(const arch::MachineModel& machine, int nodes,
                         const HplConfig& config, int step_stride) {
  CTESIM_EXPECTS(nodes >= 1 && nodes <= machine.num_nodes);
  CTESIM_EXPECTS(step_stride >= 1);

  const double mem_bytes = machine.node.memory_gb() * 1e9 * nodes;
  const double n = std::floor(std::sqrt(config.mem_fraction * mem_bytes / 8.0));
  const int nranks = nodes * config.ranks_per_node;
  int p = 1;
  int q = 1;
  choose_grid(nranks, &p, &q);
  const double rank_rate = machine.node.peak_flops().value() *
                           config.dgemm_efficiency / config.ranks_per_node;
  const double nb = config.nb;
  const int total_steps = static_cast<int>(n / nb);

  mpi::WorldOptions options;
  options.machine = machine;
  options.network_jitter = 0.0;
  mpi::World world(std::move(options),
                   mpi::Placement::fill_nodes(machine.node, nranks,
                                              config.ranks_per_node));

  // Row and column process groups (HPL's column-major rank grid:
  // rank = pi + qi * P).
  std::vector<mpi::Group> row_groups;   // same pi, size Q
  std::vector<mpi::Group> col_groups;   // same qi, size P
  row_groups.reserve(static_cast<std::size_t>(p));
  for (int pi = 0; pi < p; ++pi) {
    std::vector<int> members;
    for (int qi = 0; qi < q; ++qi) members.push_back(pi + qi * p);
    row_groups.push_back(world.create_group(std::move(members)));
  }
  col_groups.reserve(static_cast<std::size_t>(q));
  for (int qi = 0; qi < q; ++qi) {
    std::vector<int> members;
    for (int pi = 0; pi < p; ++pi) members.push_back(pi + qi * p);
    col_groups.push_back(world.create_group(std::move(members)));
  }

  int steps_simulated = 0;
  const double makespan = world.run([&](mpi::Rank& rank) -> sim::Task<> {
    const int pi = rank.id() % p;
    const int qi = rank.id() / p;
    const mpi::Group& my_row = row_groups[static_cast<std::size_t>(pi)];
    const mpi::Group& my_col = col_groups[static_cast<std::size_t>(qi)];
    for (int k = 0; k < total_steps; k += step_stride) {
      const double m = n - k * nb;
      if (m <= 0.0) break;
      // Each sampled step stands for `step_stride` steps around it; time
      // one instance of every phase, then charge the remaining copies.
      const double copies = static_cast<double>(
          std::min(step_stride, total_steps - k));
      // Panel factorization on the owning column.
      double t0 = rank.now_s();
      if (qi == k % q) {
        co_await rank.compute_seconds(m * nb * nb / p / (0.15 * rank_rate));
      }
      // Panel broadcast along my process row from the owning column.
      const auto panel_bytes =
          static_cast<std::uint64_t>(8.0 * m * nb / p);
      co_await rank.bcast(my_row, k % q, panel_bytes);
      // Row swaps + U broadcast along my process column.
      const auto swap_bytes = static_cast<std::uint64_t>(8.0 * m * nb / q);
      co_await rank.bcast(my_col, k % p, swap_bytes);
      // Trailing DGEMM update.
      co_await rank.compute_seconds(2.0 * nb * m * m / (p * q) / rank_rate);
      // Charge the steps this sample stands for.
      const double dt = rank.now_s() - t0;
      co_await rank.compute_seconds(dt * (copies - 1.0));
      if (rank.id() == 0) ++steps_simulated;
    }
    co_return;
  });

  HplSimResult result;
  result.time_s = makespan;
  const double flops = 2.0 / 3.0 * n * n * n + 1.5 * n * n;
  result.gflops = flops / makespan / 1e9;
  result.steps_simulated = steps_simulated;
  return result;
}

}  // namespace ctesim::hpcb
