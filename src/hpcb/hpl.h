// LINPACK (HPL) performance model for Fig. 6.
//
// A per-block-step model of right-looking LU with the layout the paper
// uses: N sized to 80% of aggregate memory, P x Q process grid (4 ranks per
// node on CTE-Arm — one per CMG — and 1 rank per node on MareNostrum 4).
// Per step: panel factorization (bandwidth/latency-bound), panel broadcast
// along the process row, trailing DGEMM update, and row swaps along the
// column; lookahead overlap hides a machine-dependent fraction of the
// communication. The native LU in kernels/dense.h validates the numerics.
#pragma once

#include "arch/machine.h"
#include "net/network.h"

namespace ctesim::hpcb {

struct HplConfig {
  double mem_fraction = 0.80;  ///< problem size: >= 80% of total memory
  int nb = 240;                ///< block size
  /// Fraction of broadcast/swap communication hidden by lookahead.
  /// Vendor HPL on TofuD overlaps nearly everything; the MN4 run is closer
  /// to the reference implementation.
  double comm_overlap = 0.7;
  /// Per-node DGEMM efficiency of the vendor binary (fraction of peak).
  double dgemm_efficiency = 0.9;
  int ranks_per_node = 1;
};

/// Paper-faithful defaults for each machine.
HplConfig hpl_config_for(const arch::MachineModel& machine);

struct HplPoint {
  int nodes = 0;
  double n = 0.0;           ///< matrix order
  int p = 0, q = 0;         ///< process grid
  double time_s = 0.0;
  double gflops = 0.0;
  double efficiency = 0.0;  ///< fraction of theoretical peak
};

class HplModel {
 public:
  HplModel(const arch::MachineModel& machine, HplConfig config);

  /// Predict one run on `nodes` full nodes.
  HplPoint run(int nodes) const;

 private:
  arch::MachineModel machine_;
  HplConfig config_;
  net::Network network_;
};

}  // namespace ctesim::hpcb
