#include "hpcb/hpl.h"

#include <cmath>

#include "arch/calibration.h"
#include "util/check.h"

namespace ctesim::hpcb {

namespace {

/// P x Q = n with P <= Q and P as close to sqrt(n) as possible (the rule
/// the paper states for choosing the grid).
void choose_grid(int nranks, int* p, int* q) {
  int best_p = 1;
  for (int cand = 1; cand * cand <= nranks; ++cand) {
    if (nranks % cand == 0) best_p = cand;
  }
  *p = best_p;
  *q = nranks / best_p;
}

double log2_ceil(int n) {
  int stages = 0;
  while ((1 << stages) < n) ++stages;
  return static_cast<double>(stages);
}

}  // namespace

HplConfig hpl_config_for(const arch::MachineModel& machine) {
  namespace calib = arch::calib;
  HplConfig config;
  if (machine.node.core.uarch == arch::MicroArch::kA64fx) {
    config.ranks_per_node = machine.node.num_domains;  // 1 rank per CMG
    config.dgemm_efficiency = calib::kHplDgemmEffA64fx;
    config.comm_overlap = 0.85;  // Fujitsu HPL + TofuD hardware collectives
  } else {
    config.ranks_per_node = 1;  // Intel's recommended 1 rank/node
    config.dgemm_efficiency = calib::kHplDgemmEffSkx;
    config.comm_overlap = 0.35;
  }
  return config;
}

HplModel::HplModel(const arch::MachineModel& machine, HplConfig config)
    : machine_(machine),
      config_(config),
      network_(machine.interconnect, machine.num_nodes) {
  CTESIM_EXPECTS(config_.nb >= 1);
  CTESIM_EXPECTS(config_.mem_fraction > 0.0 && config_.mem_fraction <= 1.0);
}

HplPoint HplModel::run(int nodes) const {
  CTESIM_EXPECTS(nodes >= 1 && nodes <= machine_.num_nodes);
  HplPoint point;
  point.nodes = nodes;

  const double mem_bytes = machine_.node.memory_gb() * 1e9 * nodes;
  point.n = std::floor(std::sqrt(config_.mem_fraction * mem_bytes / 8.0));
  const double n = point.n;

  const int nranks = nodes * config_.ranks_per_node;
  choose_grid(nranks, &point.p, &point.q);
  const double p = point.p;
  const double q = point.q;

  // Per-rank DGEMM rate: the vendor binary's sustained rate on the cores
  // this rank owns.
  const units::FlopsPerSec node_peak = machine_.node.peak_flops();
  const double rank_rate =
      node_peak.value() * config_.dgemm_efficiency / config_.ranks_per_node;

  // Effective link behaviour for the panel broadcast (use a representative
  // mid-distance pair; HPL maps process rows onto nearby nodes).
  const double lat = machine_.interconnect.base_latency_s +
                     2.0 * machine_.interconnect.per_hop_latency_s;
  const double bw =
      machine_.interconnect.link_bw * machine_.interconnect.eff_bw_factor;

  const int steps = static_cast<int>(n / config_.nb);
  const double nb = config_.nb;
  double compute_s = 0.0;
  double comm_s = 0.0;
  double panel_s = 0.0;
  for (int k = 0; k < steps; ++k) {
    const double m = n - k * nb;  // trailing size
    if (m <= 0) break;
    // Panel factorization: NB columns of height m over the P column ranks;
    // bandwidth/latency-bound at ~15% of DGEMM rate.
    panel_s += (m * nb * nb / p) / (0.15 * rank_rate);
    // Panel broadcast along the row: each rank holds m/P rows of NB cols.
    const double panel_bytes = 8.0 * m * nb / p;
    comm_s += log2_ceil(point.q) * (lat + panel_bytes / bw);
    // Row swaps + U broadcast along the column: NB rows spread over Q.
    const double swap_bytes = 8.0 * m * nb / q;
    comm_s += log2_ceil(point.p) * (lat + swap_bytes / bw);
    // Trailing update: 2*NB*m^2 flops over the whole grid at DGEMM rate.
    compute_s += 2.0 * nb * m * m / (p * q) / rank_rate;
  }

  point.time_s = compute_s + panel_s + (1.0 - config_.comm_overlap) * comm_s;
  const double flops = 2.0 / 3.0 * n * n * n + 1.5 * n * n;
  point.gflops = flops / point.time_s / 1e9;
  point.efficiency =
      units::FlopsPerSec{point.gflops * 1e9} / (node_peak * nodes);
  return point;
}

}  // namespace ctesim::hpcb
