// HPCG performance model for Fig. 7.
//
// HPCG is bandwidth-bound: the sustained rate per node is
//   GF = sustained_bw * mem_eff(build) / effective_bytes_per_flop
// where mem_eff comes from the compiler model (vanilla Fujitsu/Intel builds
// vs vendor-optimized binaries) and the effective traffic per flop is a
// per-machine constant reflecting the cache hierarchy (A64FX has no L3 and
// re-streams operand vectors; Skylake's L2+L3 capture much of the reuse).
// Multi-node scaling applies the halo/allreduce overhead of the rank grid.
// The native mini-HPCG (kernels/multigrid.h) validates the numerics and
// the flop accounting.
#pragma once

#include "arch/compiler.h"
#include "arch/machine.h"

namespace ctesim::hpcb {

enum class HpcgBuild { kVanilla, kOptimized };

struct HpcgConfig {
  // The paper's run parameters: local grid per rank, one rank per core.
  int nx = 48, ny = 88, nz = 88;
  int ranks_per_node = 48;
};

struct HpcgPoint {
  int nodes = 0;
  double gflops = 0.0;         ///< aggregate
  double gflops_per_node = 0.0;
  double peak_fraction = 0.0;
};

class HpcgModel {
 public:
  HpcgModel(const arch::MachineModel& machine, HpcgConfig config = {});

  HpcgPoint run(int nodes, HpcgBuild build) const;

  /// Effective memory traffic per flop for this machine (see header note).
  double bytes_per_flop() const;

 private:
  double node_gflops(HpcgBuild build) const;

  arch::MachineModel machine_;
  HpcgConfig config_;
};

}  // namespace ctesim::hpcb
