// Per-timestep workload signatures — the feature vectors representative-
// region sampling clusters into phases (ROADMAP item 5, docs/SAMPLING.md).
//
// An app proxy describes its FULL workload (all `total_steps` timesteps of
// the paper-scale run, not the handful it used to simulate) as a cheap
// analytic function from step index to a StepSignature: how many flops,
// bytes, messages, collectives and I/O bytes that step moves per node. The
// signatures are piecewise-constant by construction (a WRF step either
// writes an output frame or it does not; a GROMACS step either rebuilds
// the neighbour list or it does not), which is exactly what makes phase
// detection well-posed: repeating step kinds collapse to a few distinct
// points in feature space.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace ctesim::sampling {

/// Analytic per-step cost features, per node. Magnitudes only — the
/// detector normalizes each dimension before clustering, so units just
/// have to be consistent across the steps of one profile.
struct StepSignature {
  double flops = 0.0;        ///< floating-point work
  double bytes = 0.0;        ///< memory traffic
  double messages = 0.0;     ///< point-to-point messages sent
  double collectives = 0.0;  ///< collective operations joined
  double io_bytes = 0.0;     ///< filesystem bytes written/read
  /// DVFS/energy term: relative clock scale the step runs at (per-kernel
  /// DVFS selection; 1 = nominal). Steps pinned to different operating
  /// points are different phases even when their work is identical.
  double freq_scale = 1.0;
  /// App-declared phase marker for cost effects the work features cannot
  /// express — e.g. the steps right after WRF's serial frame write, whose
  /// measured time includes the ranks re-absorbing rank 0's skew. Mixing
  /// those into the common stratum would multiply the perturbation out by
  /// the stratum weight; a distinct tag gives them their own stratum with
  /// their true weight. 0 for ordinary steps.
  double tag = 0.0;
};

/// Strict-weak ordering over all seven features — the deterministic key the
/// detector groups identical signatures by (no hashing, no float fuzz:
/// signatures come from the same closed-form expressions, so equal step
/// kinds are bit-equal).
bool signature_less(const StepSignature& a, const StepSignature& b);
bool signature_equal(const StepSignature& a, const StepSignature& b);

/// One measured channel of an app's step: apps report slowest-rank seconds
/// per channel (most have just "step"; Alya reports "assembly" and
/// "solver"). `scale` is applied to the channel's extrapolated mean — it
/// carries within-step subsampling (Alya simulates sim_solver_iters of the
/// real solver_iters CG iterations) into the executor so no app multiplies
/// times by hand.
struct ChannelSpec {
  std::string name = "step";
  double scale = 1.0;
};

/// The full-workload description an app hands to the sampling executor —
/// the hook that replaces the opaque `sim_steps` knob.
struct StepProfile {
  /// Timesteps of the full run the result extrapolates to (e.g. 8400 for
  /// the paper's 56 h WRF case).
  long long total_steps = 0;
  /// Exact-mode window: how many leading steps are simulated when the plan
  /// asks for the deterministic legacy extrapolation (the old sim_steps).
  int exact_window = 1;
  /// Signature of step `i` in [0, total_steps). Null means every step is
  /// identical (a single phase).
  std::function<StepSignature(long long)> signature;
  /// Measured channels the runner reports. Must be non-empty.
  std::vector<ChannelSpec> channels = {{"step", 1.0}};
};

}  // namespace ctesim::sampling
