#include "sampling/phases.h"

#include <algorithm>
#include <array>
#include <cstddef>
#include <map>

#include "util/check.h"
#include "util/hash.h"
#include "util/rng.h"

namespace ctesim::sampling {

namespace {

constexpr std::size_t kNumFeatures = 7;
constexpr int kMaxKmeansIters = 32;

std::array<double, kNumFeatures> features(const StepSignature& s) {
  return {s.flops,    s.bytes,      s.messages, s.collectives,
          s.io_bytes, s.freq_scale, s.tag};
}

struct SigLess {
  bool operator()(const StepSignature& a, const StepSignature& b) const {
    return signature_less(a, b);
  }
};

double sq_dist(const std::array<double, kNumFeatures>& a,
               const std::array<double, kNumFeatures>& b) {
  double d2 = 0.0;
  for (std::size_t f = 0; f < kNumFeatures; ++f) {
    const double d = a[f] - b[f];
    d2 += d * d;
  }
  return d2;
}

/// Weighted k-means over the distinct signatures (weight = step count),
/// merging them down to `k` clusters. Returns the cluster index of each
/// input group. Deterministic: seeded k-means++ init, fixed iteration cap,
/// ties resolved toward the lowest index.
std::vector<std::size_t> kmeans_assign(const std::vector<Phase>& groups,
                                       std::size_t k, std::uint64_t seed) {
  const std::size_t n = groups.size();
  // Min-max normalize each feature across groups so byte-scale dimensions
  // do not drown message counts.
  std::vector<std::array<double, kNumFeatures>> pts(n);
  std::array<double, kNumFeatures> lo{};
  std::array<double, kNumFeatures> hi{};
  for (std::size_t i = 0; i < n; ++i) pts[i] = features(groups[i].centroid);
  for (std::size_t f = 0; f < kNumFeatures; ++f) {
    lo[f] = hi[f] = pts[0][f];
    for (std::size_t i = 1; i < n; ++i) {
      lo[f] = std::min(lo[f], pts[i][f]);
      hi[f] = std::max(hi[f], pts[i][f]);
    }
    const double span = hi[f] - lo[f];
    for (std::size_t i = 0; i < n; ++i) {
      pts[i][f] = span > 0.0 ? (pts[i][f] - lo[f]) / span : 0.0;
    }
  }
  std::vector<double> weight(n);
  for (std::size_t i = 0; i < n; ++i) {
    weight[i] = static_cast<double>(groups[i].members.size());
  }

  // k-means++ seeding: first centroid drawn by weight, subsequent ones by
  // weight * squared distance to the nearest chosen centroid.
  Rng rng(hash_combine(hash_combine(kFnvOffsetBasis, seed), 0x6b6d6561ULL));
  std::vector<std::array<double, kNumFeatures>> centroids;
  std::vector<double> d2(n, 0.0);
  {
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) total += weight[i];
    double pick = rng.uniform() * total;
    std::size_t first = n - 1;
    for (std::size_t i = 0; i < n; ++i) {
      pick -= weight[i];
      if (pick <= 0.0) {
        first = i;
        break;
      }
    }
    centroids.push_back(pts[first]);
  }
  while (centroids.size() < k) {
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      d2[i] = sq_dist(pts[i], centroids[0]);
      for (std::size_t c = 1; c < centroids.size(); ++c) {
        d2[i] = std::min(d2[i], sq_dist(pts[i], centroids[c]));
      }
      total += weight[i] * d2[i];
    }
    if (total <= 0.0) break;  // fewer distinct points than clusters
    double pick = rng.uniform() * total;
    std::size_t chosen = n - 1;
    for (std::size_t i = 0; i < n; ++i) {
      pick -= weight[i] * d2[i];
      if (pick <= 0.0) {
        chosen = i;
        break;
      }
    }
    centroids.push_back(pts[chosen]);
  }

  // Lloyd iterations with weighted centroid updates.
  std::vector<std::size_t> assign(n, 0);
  for (int iter = 0; iter < kMaxKmeansIters; ++iter) {
    bool changed = false;
    for (std::size_t i = 0; i < n; ++i) {
      std::size_t best = 0;
      double best_d2 = sq_dist(pts[i], centroids[0]);
      for (std::size_t c = 1; c < centroids.size(); ++c) {
        const double d = sq_dist(pts[i], centroids[c]);
        if (d < best_d2) {
          best_d2 = d;
          best = c;
        }
      }
      if (assign[i] != best) {
        assign[i] = best;
        changed = true;
      }
    }
    if (!changed && iter > 0) break;
    for (std::size_t c = 0; c < centroids.size(); ++c) {
      std::array<double, kNumFeatures> sum{};
      double mass = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        if (assign[i] != c) continue;
        for (std::size_t f = 0; f < kNumFeatures; ++f) {
          sum[f] += weight[i] * pts[i][f];
        }
        mass += weight[i];
      }
      if (mass > 0.0) {
        for (std::size_t f = 0; f < kNumFeatures; ++f) {
          centroids[c][f] = sum[f] / mass;
        }
      }
    }
  }
  return assign;
}

}  // namespace

std::vector<Phase> detect_phases(const StepProfile& profile, int max_phases,
                                 std::uint64_t seed) {
  CTESIM_EXPECTS(profile.total_steps >= 1);
  CTESIM_EXPECTS(max_phases >= 1);

  if (!profile.signature) {
    Phase all;
    all.members.reserve(static_cast<std::size_t>(profile.total_steps));
    for (long long s = 0; s < profile.total_steps; ++s) {
      all.members.push_back(s);
    }
    return {all};
  }

  // Stage 1: exact grouping of bit-identical signatures, ordered by first
  // occurrence (member lists come out ascending by construction).
  std::vector<Phase> groups;
  std::map<StepSignature, std::size_t, SigLess> index;
  for (long long s = 0; s < profile.total_steps; ++s) {
    const StepSignature sig = profile.signature(s);
    auto [it, inserted] = index.try_emplace(sig, groups.size());
    if (inserted) {
      groups.push_back(Phase{sig, {}});
    }
    groups[it->second].members.push_back(s);
  }
  if (groups.size() <= static_cast<std::size_t>(max_phases)) return groups;

  // Stage 2: merge distinct signatures down to the budget with seeded
  // weighted k-means, then rebuild phases from the cluster assignment.
  const auto assign =
      kmeans_assign(groups, static_cast<std::size_t>(max_phases), seed);
  std::vector<Phase> merged(static_cast<std::size_t>(max_phases));
  std::vector<double> mass(merged.size(), 0.0);
  std::vector<std::array<double, kNumFeatures>> sums(
      merged.size(), std::array<double, kNumFeatures>{});
  for (std::size_t g = 0; g < groups.size(); ++g) {
    Phase& ph = merged[assign[g]];
    ph.members.insert(ph.members.end(), groups[g].members.begin(),
                      groups[g].members.end());
    const double w = static_cast<double>(groups[g].members.size());
    const auto feat = features(groups[g].centroid);
    for (std::size_t f = 0; f < kNumFeatures; ++f) {
      sums[assign[g]][f] += w * feat[f];
    }
    mass[assign[g]] += w;
  }
  std::vector<Phase> result;
  for (std::size_t c = 0; c < merged.size(); ++c) {
    if (merged[c].members.empty()) continue;
    std::sort(merged[c].members.begin(), merged[c].members.end());
    const double m = mass[c];
    merged[c].centroid =
        StepSignature{sums[c][0] / m, sums[c][1] / m, sums[c][2] / m,
                      sums[c][3] / m, sums[c][4] / m, sums[c][5] / m,
                      sums[c][6] / m};
    result.push_back(std::move(merged[c]));
  }
  std::sort(result.begin(), result.end(), [](const Phase& a, const Phase& b) {
    return a.members.front() < b.members.front();
  });
  return result;
}

}  // namespace ctesim::sampling
