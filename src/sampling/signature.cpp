#include "sampling/signature.h"

namespace ctesim::sampling {

bool signature_less(const StepSignature& a, const StepSignature& b) {
  if (a.flops != b.flops) return a.flops < b.flops;
  if (a.bytes != b.bytes) return a.bytes < b.bytes;
  if (a.messages != b.messages) return a.messages < b.messages;
  if (a.collectives != b.collectives) return a.collectives < b.collectives;
  if (a.io_bytes != b.io_bytes) return a.io_bytes < b.io_bytes;
  if (a.freq_scale != b.freq_scale) return a.freq_scale < b.freq_scale;
  return a.tag < b.tag;
}

bool signature_equal(const StepSignature& a, const StepSignature& b) {
  return !signature_less(a, b) && !signature_less(b, a);
}

}  // namespace ctesim::sampling
