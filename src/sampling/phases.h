// Deterministic phase detection over step signatures.
//
// Segmentation is two-stage. First, steps with bit-identical signatures are
// grouped exactly (signatures come from closed-form per-step expressions,
// so equal step kinds compare equal — no tolerance needed). Only when the
// number of distinct signatures exceeds the plan's `max_phases` does the
// detector fall back to seeded weighted k-means over the distinct
// signatures (k-means++ init, min-max feature normalization, deterministic
// tie-breaks), merging near-identical step kinds until the budget fits.
// Either way the result is a pure function of (profile, max_phases, seed).
#pragma once

#include <cstdint>
#include <vector>

#include "sampling/signature.h"

namespace ctesim::sampling {

/// One detected phase: a set of step indices that behave alike.
struct Phase {
  /// Representative signature (the common signature for exact groups, the
  /// weighted mean for k-means-merged ones).
  StepSignature centroid;
  /// Step indices belonging to the phase, ascending. Never empty.
  std::vector<long long> members;
};

/// Segment `profile`'s steps into at most `max_phases` phases. Phases are
/// ordered by their earliest member step. A profile without a signature
/// function yields a single phase covering every step.
std::vector<Phase> detect_phases(const StepProfile& profile, int max_phases,
                                 std::uint64_t seed);

}  // namespace ctesim::sampling
