// SamplingPlan — how much of a workload to actually simulate.
//
// Exact mode reproduces the pre-sampling behaviour bit-for-bit: simulate
// the profile's leading `exact_window` steps and extrapolate linearly (the
// old `sim_steps` multiply, now in exactly one place). Sampled mode runs
// phase detection over the step signatures and simulates only K
// representatives per phase (plus warmup), reporting a stratified estimate
// with a 95% confidence interval. See docs/SAMPLING.md.
#pragma once

#include <cstdint>

#include "util/hash.h"

namespace ctesim::sampling {

enum class Mode : std::uint8_t {
  kExact = 0,  ///< legacy window-and-multiply; deterministic, no CI
  kSampled,    ///< K representatives per detected phase, CI-bounded
};

/// Stable protocol/CSV spelling ("exact" / "sampled").
const char* name_of(Mode mode);

struct SamplingPlan {
  Mode mode = Mode::kExact;
  /// Representatives simulated per phase (sampled mode). Clamped to the
  /// phase population; >= 2 needed for a nonzero CI.
  int k = 8;
  /// Contiguous predecessor steps simulated (and discarded) before each
  /// representative to rebuild steady-state pipeline skew — the analogue
  /// of SimPoint-style per-region warmup. Costs simulation time only.
  int warmup = 1;
  /// Upper bound on detected phases; more distinct signatures than this
  /// are merged by seeded k-means (see phases.h).
  int max_phases = 8;
  /// Perturbs which representatives are drawn AND the simulated world's
  /// jitter stream, so independent plan seeds give independent samples.
  /// Ignored in exact mode (the world keeps its legacy seed: byte-identity).
  std::uint64_t seed = 1;
};

/// The seed the simulated World should run under. Exact mode must return
/// `base` unchanged — the golden figures depend on the legacy jitter
/// stream. Sampled mode folds in the plan seed so that different plans
/// observe independent jitter realisations.
inline std::uint64_t world_seed(std::uint64_t base, const SamplingPlan& plan) {
  if (plan.mode == Mode::kExact) return base;
  return hash_combine(hash_combine(kFnvOffsetBasis, base), plan.seed);
}

}  // namespace ctesim::sampling
