// The sampled executor: decides WHICH timesteps of a profile to simulate
// and turns the measured channel seconds into an extrapolated total with a
// confidence interval. The app proxies provide a StepRunner that performs
// the actual coroutine-MPI simulation of a given step list; the executor
// owns every extrapolation multiply that used to be scattered across
// src/apps (the `raw-sim-steps` lint rule keeps it that way).
//
// Exact mode simulates the leading `exact_window` steps and extrapolates
// linearly in the legacy arithmetic order — bit-identical to the old
// per-app `phase_max / sim_steps * steps` code it replaced (golden tests
// enforce this). Sampled mode detects phases, simulates K representatives
// per phase plus a warmup prefix, and reports a stratified estimate:
//
//   total   = sum_p  scale * N_p * mean_p
//   var     = sum_p (scale * N_p)^2 * var_p / K_p
//   ci_half = t_{0.975, df} * sqrt(var),  df by Welch–Satterthwaite
//
// See docs/SAMPLING.md for the derivation and measured accuracy.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "sampling/phases.h"
#include "sampling/plan.h"
#include "sampling/signature.h"

namespace ctesim::trace {
class Recorder;
}

namespace ctesim::sampling {

/// One simulated pass over a requested step list, as measured by the app's
/// runner.
struct StepRunResult {
  /// accum[c]: slowest-rank accumulated seconds of channel c over the whole
  /// pass (the legacy `World::phase_max(channel)` aggregate).
  std::vector<double> accum;
  /// per_rank_step[c][i][r]: seconds rank r spent in channel c at the i-th
  /// requested step. Filled only when the executor asked for it. Kept
  /// per-rank so the estimator can extrapolate each rank's full run and
  /// take the slowest — matching the max-of-sums metric the exact mode
  /// reports (a sum of per-step maxes would be biased high).
  std::vector<std::vector<std::vector<double>>> per_rank_step;
  /// Simulated makespan of the pass, seconds (trace time axis).
  double makespan_s = 0.0;
};

/// Simulate the given step indices (ascending, distinct) and report the
/// per-channel seconds. `want_per_step` is false in exact mode so large
/// windows do not pay per-step phase bookkeeping; when true, per_step must
/// be filled (use step_key() names with World::phase_add/phase_max).
using StepRunner = std::function<StepRunResult(
    const std::vector<long long>& steps, bool want_per_step)>;

/// Phase name an app runner reports the i-th requested step's channel
/// seconds under when per-step resolution was asked for: "<channel>#<i>".
std::string step_key(const std::string& channel, std::size_t position);

/// Extrapolated estimate for one channel.
struct ChannelEstimate {
  std::string name;
  double mean_step_s = 0.0;  ///< scaled per-step mean over the full run
  double total_s = 0.0;      ///< mean_step_s extrapolated to total_steps
  double ci_half_s = 0.0;    ///< 95% CI half-width on total_s (0 in exact)
  double df = 0.0;           ///< Welch–Satterthwaite effective dof
};

struct Outcome {
  Mode mode = Mode::kExact;
  long long steps_total = 0;      ///< full-run steps the estimate covers
  long long steps_simulated = 0;  ///< distinct steps actually simulated
  std::size_t phase_count = 1;    ///< detected phases (1 in exact mode)
  std::vector<ChannelEstimate> channels;  ///< profile.channels order
  double total_s = 0.0;    ///< sum of channel totals
  double ci_half_s = 0.0;  ///< 95% CI half-width on total_s
  double df = 0.0;         ///< effective dof behind ci_half_s
  double makespan_s = 0.0;

  /// Simulation-work reduction: steps_total / steps_simulated. This is the
  /// deterministic speedup the benches report (wall-clock tracks it).
  double speedup() const;

  /// Estimate for the named channel; the channel must exist.
  const ChannelEstimate& channel(std::string_view name) const;
};

/// Execute `plan` over `profile` via `runner`. When `recorder` is given
/// (and enabled), emits a "sampling" span plus steps/phases/CI counters on
/// the global track.
Outcome run_plan(const StepProfile& profile, const SamplingPlan& plan,
                 const StepRunner& runner,
                 trace::Recorder* recorder = nullptr);

}  // namespace ctesim::sampling
