#include "sampling/executor.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "trace/recorder.h"
#include "util/check.h"
#include "util/hash.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/time.h"

namespace ctesim::sampling {

const char* name_of(Mode mode) {
  return mode == Mode::kExact ? "exact" : "sampled";
}

std::string step_key(const std::string& channel, std::size_t position) {
  return channel + "#" + std::to_string(position);
}

double Outcome::speedup() const {
  if (steps_simulated <= 0) return 1.0;
  return static_cast<double>(steps_total) /
         static_cast<double>(steps_simulated);
}

const ChannelEstimate& Outcome::channel(std::string_view name) const {
  for (const ChannelEstimate& c : channels) {
    if (c.name == name) return c;
  }
  CTESIM_EXPECTS(false && "unknown sampling channel");
  return channels.front();
}

namespace {

/// Evenly spaced representatives (seeded fractional offset) from a phase's
/// member list.
std::vector<long long> pick_representatives(const std::vector<long long>& members,
                                            int k, std::uint64_t seed,
                                            std::size_t phase_index) {
  Rng rng(hash_combine(hash_combine(kFnvOffsetBasis, seed),
                       0x72657073ULL + phase_index));
  const std::size_t m = members.size();
  const std::size_t count = std::min<std::size_t>(
      static_cast<std::size_t>(std::max(1, k)), m);
  std::vector<long long> reps;
  reps.reserve(count);
  // Jittered systematic sampling: one representative drawn uniformly
  // inside each of `count` equal segments. Plain even spacing would alias
  // with any periodic structure inside the stratum (e.g. a phase-blind
  // plan sampling a run whose every 10th step is a diagnostic step lands
  // every representative on the same residue — a systematically wrong
  // estimate no CI can confess to); the per-segment jitter keeps the
  // spread of even spacing while breaking that alignment.
  for (std::size_t j = 0; j < count; ++j) {
    auto idx = static_cast<std::size_t>(
        (static_cast<double>(j) + rng.uniform()) * static_cast<double>(m) /
        static_cast<double>(count));
    idx = std::min(idx, m - 1);
    reps.push_back(members[idx]);
  }
  std::sort(reps.begin(), reps.end());
  reps.erase(std::unique(reps.begin(), reps.end()), reps.end());
  return reps;
}

void emit_trace(trace::Recorder* recorder, const SamplingPlan& plan,
                const Outcome& out) {
  if (recorder == nullptr || !recorder->enabled()) return;
  const sim::Time end = sim::from_seconds(out.makespan_s);
  recorder->span(trace::Track::global(), "sampling", "run",
                 std::string(name_of(plan.mode)), 0, end);
  recorder->counter(trace::Track::global(), "sampling",
                    "sampling.steps_total", end,
                    static_cast<double>(out.steps_total));
  recorder->counter(trace::Track::global(), "sampling",
                    "sampling.steps_simulated", end,
                    static_cast<double>(out.steps_simulated));
  recorder->counter(trace::Track::global(), "sampling", "sampling.phases",
                    end, static_cast<double>(out.phase_count));
  recorder->counter(trace::Track::global(), "sampling",
                    "sampling.ci_half_s", end, out.ci_half_s);
}

}  // namespace

Outcome run_plan(const StepProfile& profile, const SamplingPlan& plan,
                 const StepRunner& runner, trace::Recorder* recorder) {
  CTESIM_EXPECTS(profile.total_steps >= 1);
  CTESIM_EXPECTS(!profile.channels.empty());

  Outcome out;
  out.mode = plan.mode;
  out.steps_total = profile.total_steps;
  const std::size_t nch = profile.channels.size();
  out.channels.resize(nch);
  for (std::size_t c = 0; c < nch; ++c) {
    out.channels[c].name = profile.channels[c].name;
  }

  if (plan.mode == Mode::kExact) {
    const long long window = std::clamp<long long>(
        profile.exact_window, 1, profile.total_steps);
    std::vector<long long> steps(static_cast<std::size_t>(window));
    std::iota(steps.begin(), steps.end(), 0LL);
    const StepRunResult res = runner(steps, /*want_per_step=*/false);
    CTESIM_EXPECTS(res.accum.size() == nch);
    for (std::size_t c = 0; c < nch; ++c) {
      // Legacy arithmetic order, bit-for-bit: the old apps computed
      // phase_max / sim_steps [* scale] and then multiplied by the full
      // step count. Do not reassociate.
      double mean = res.accum[c] / static_cast<double>(window);
      mean = mean * profile.channels[c].scale;
      out.channels[c].mean_step_s = mean;
      out.channels[c].total_s =
          mean * static_cast<double>(profile.total_steps);
      out.total_s += out.channels[c].total_s;
    }
    out.steps_simulated = window;
    out.makespan_s = res.makespan_s;
    emit_trace(recorder, plan, out);
    return out;
  }

  // --- sampled mode -------------------------------------------------------
  const auto phases = detect_phases(profile, plan.max_phases, plan.seed);
  out.phase_count = phases.size();
  const int warmup = static_cast<int>(std::min<long long>(
      std::max(0, plan.warmup), profile.total_steps));

  // Each representative is simulated as a region: `warmup` contiguous
  // predecessor steps rebuild the pipeline skew a cold-started step would
  // miss (halo-coupled apps advance at a steady-state rate that a single
  // aligned step underestimates), then the representative itself is
  // measured. Overlapping regions merge in the sorted union.
  std::vector<std::vector<long long>> reps(phases.size());
  std::vector<long long> steps;
  for (std::size_t p = 0; p < phases.size(); ++p) {
    reps[p] = pick_representatives(phases[p].members, plan.k, plan.seed, p);
    for (const long long r : reps[p]) {
      for (long long s = std::max<long long>(0, r - warmup); s <= r; ++s) {
        steps.push_back(s);
      }
    }
  }
  std::sort(steps.begin(), steps.end());
  steps.erase(std::unique(steps.begin(), steps.end()), steps.end());

  const StepRunResult res = runner(steps, /*want_per_step=*/true);
  CTESIM_EXPECTS(res.per_rank_step.size() == nch);
  for (std::size_t c = 0; c < nch; ++c) {
    CTESIM_EXPECTS(res.per_rank_step[c].size() == steps.size());
  }
  const std::size_t nranks =
      steps.empty() ? 0 : res.per_rank_step[0][0].size();
  CTESIM_EXPECTS(nranks > 0);
  const auto position_of = [&steps](long long step) {
    const auto it = std::lower_bound(steps.begin(), steps.end(), step);
    CTESIM_EXPECTS(it != steps.end() && *it == step);
    return static_cast<std::size_t>(it - steps.begin());
  };

  // Each channel reports its slowest rank (the paper's "elapsed time of
  // the slowest process", per phase): extrapolate every rank's full run
  // from its own samples, then keep the rank with the largest estimate.
  // Ranks are extrapolated separately BEFORE the max — taking per-step
  // maxes first and summing those would systematically overestimate.
  std::vector<VarianceTerm> all_terms;
  for (std::size_t c = 0; c < nch; ++c) {
    double best_total = 0.0;
    std::vector<VarianceTerm> best_terms;
    for (std::size_t r = 0; r < nranks; ++r) {
      double total_r = 0.0;
      std::vector<VarianceTerm> terms;
      for (std::size_t p = 0; p < phases.size(); ++p) {
        RunningStats st;
        for (const long long s : reps[p]) {
          st.add(res.per_rank_step[c][position_of(s)][r]);
        }
        const double w = profile.channels[c].scale *
                         static_cast<double>(phases[p].members.size());
        total_r += w * st.mean();
        VarianceTerm term;
        term.weight = w;
        term.var = st.count() >= 2 ? st.variance() : 0.0;
        term.n = st.count();
        terms.push_back(term);
      }
      if (r == 0 || total_r > best_total) {
        best_total = total_r;
        best_terms = std::move(terms);
      }
    }
    const double var_c = weighted_sum_variance(best_terms);
    const double df_c = welch_satterthwaite_df(best_terms);
    ChannelEstimate& est = out.channels[c];
    est.total_s = best_total;
    est.mean_step_s = best_total / static_cast<double>(profile.total_steps);
    est.df = df_c;
    if (var_c > 0.0) {
      est.ci_half_s =
          student_t_975(static_cast<std::size_t>(df_c)) * std::sqrt(var_c);
    }
    out.total_s += best_total;
    all_terms.insert(all_terms.end(), best_terms.begin(), best_terms.end());
  }
  const double var_all = weighted_sum_variance(all_terms);
  out.df = welch_satterthwaite_df(all_terms);
  if (var_all > 0.0) {
    out.ci_half_s =
        student_t_975(static_cast<std::size_t>(out.df)) * std::sqrt(var_all);
  }
  out.steps_simulated = static_cast<long long>(steps.size());
  out.makespan_s = res.makespan_s;
  emit_trace(recorder, plan, out);
  return out;
}

}  // namespace ctesim::sampling
