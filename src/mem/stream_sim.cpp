#include "mem/stream_sim.h"

#include <algorithm>

#include "arch/calibration.h"
#include "util/check.h"

namespace ctesim::mem {

const char* name_of(StreamKernel k) {
  switch (k) {
    case StreamKernel::kCopy:
      return "Copy";
    case StreamKernel::kScale:
      return "Scale";
    case StreamKernel::kAdd:
      return "Add";
    case StreamKernel::kTriad:
      return "Triad";
  }
  return "?";
}

std::size_t bytes_per_element(StreamKernel k) {
  switch (k) {
    case StreamKernel::kCopy:
    case StreamKernel::kScale:
      return 16;  // one load + one store
    case StreamKernel::kAdd:
    case StreamKernel::kTriad:
      return 24;  // two loads + one store
  }
  return 0;
}

StreamSimulator::StreamSimulator(const arch::MachineModel& machine)
    : machine_(machine) {}

double StreamSimulator::kernel_factor(StreamKernel k) {
  // Copy/Scale run marginally below Add/Triad (fewer streams to schedule
  // prefetches for); the 2% is typical of published STREAM outputs.
  switch (k) {
    case StreamKernel::kCopy:
    case StreamKernel::kScale:
      return 0.98;
    case StreamKernel::kAdd:
    case StreamKernel::kTriad:
      return 1.0;
  }
  return 1.0;
}

double StreamSimulator::language_factor(arch::Language language,
                                        bool hybrid) const {
  namespace calib = arch::calib;
  const bool a64fx = machine_.node.core.uarch == arch::MicroArch::kA64fx;
  if (!a64fx) {
    // MN4: C and Fortran curves overlap in Fig. 2.
    return language == arch::Language::kFortran
               ? calib::kSkxStreamOmpFortranFactor
               : calib::kSkxStreamHybridCFactor;
  }
  if (hybrid) {
    // Fig. 3: Fortran reaches 862.6 GB/s, C only 421.1 GB/s ("we do not
    // have an explanation for this" — we reproduce, not explain).
    return language == arch::Language::kC ? calib::kA64fxStreamHybridCFactor
                                          : 1.0;
  }
  // Fig. 2: C ~10% faster than Fortran.
  return language == arch::Language::kFortran
             ? calib::kA64fxStreamOmpFortranFactor
             : 1.0;
}

units::BytesPerSec StreamSimulator::omp_bandwidth(
    StreamKernel kernel, int threads, arch::Language language) const {
  CTESIM_EXPECTS(threads >= 1 && threads <= machine_.node.core_count());
  return machine_.node.single_process_bw(threads) *
         language_factor(language, /*hybrid=*/false) * kernel_factor(kernel);
}

units::BytesPerSec StreamSimulator::hybrid_bandwidth(
    StreamKernel kernel, int procs, int threads,
    arch::Language language) const {
  return machine_.node.hybrid_bw(procs, threads) *
         language_factor(language, /*hybrid=*/true) * kernel_factor(kernel);
}

std::size_t StreamSimulator::min_elements() const {
  const units::Bytes llc = machine_.node.llc_bytes();
  const auto by_cache = static_cast<std::size_t>(4.0 * llc.value() / 8.0);
  return std::max<std::size_t>(10'000'000, by_cache);
}

}  // namespace ctesim::mem
