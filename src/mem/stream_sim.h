// STREAM benchmark simulator (Figs. 2 and 3 of the paper).
//
// Predicts sustainable bandwidth for the four STREAM kernels under the two
// parallelizations the paper measures:
//   - OpenMP-only, one process, threads spread across NUMA domains (Fig. 2)
//   - hybrid MPI+OpenMP, at most one process per NUMA domain (Fig. 3)
// including the language (C / Fortran) effects the paper reports on each
// machine. The native counterpart (actually moving bytes on the host) lives
// in kernels/stream.h.
#pragma once

#include <cstddef>

#include "arch/compiler.h"
#include "arch/machine.h"
#include "util/units.h"

namespace ctesim::mem {

enum class StreamKernel { kCopy, kScale, kAdd, kTriad };

const char* name_of(StreamKernel k);

/// Bytes moved per loop iteration (8-byte doubles; write-allocate traffic
/// not counted, matching how STREAM itself reports).
std::size_t bytes_per_element(StreamKernel k);

class StreamSimulator {
 public:
  explicit StreamSimulator(const arch::MachineModel& machine);

  /// Fig. 2 setup: one process, `threads` OpenMP threads, spread binding.
  /// Returns the bandwidth as STREAM reports it.
  units::BytesPerSec omp_bandwidth(StreamKernel kernel, int threads,
                                   arch::Language language) const;

  /// Fig. 3 setup: `procs` MPI ranks (one per NUMA domain) × `threads`
  /// OpenMP threads each.
  units::BytesPerSec hybrid_bandwidth(StreamKernel kernel, int procs,
                                      int threads,
                                      arch::Language language) const;

  /// Minimum array length per the paper's sizing rule
  /// E >= max(1e7, 4*S/8) with S the last-level cache size in bytes.
  std::size_t min_elements() const;

  const arch::MachineModel& machine() const { return machine_; }

 private:
  double language_factor(arch::Language language, bool hybrid) const;
  static double kernel_factor(StreamKernel k);

  arch::MachineModel machine_;
};

}  // namespace ctesim::mem
