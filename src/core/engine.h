// Discrete-event simulation engine.
//
// Single-threaded, deterministic: events at equal simulated time fire in
// scheduling order (monotone sequence numbers break ties), so every run of a
// given workload produces identical results — a hard requirement for
// recording paper-vs-measured numbers in EXPERIMENTS.md.
//
// The hot path is allocation-free in steady state (docs/ENGINE.md):
// callbacks live inline in the event (util::InlineFunction, 48-byte SBO),
// the queue is an implicit 4-ary min-heap with move-out pop (no callback is
// ever copied), and coroutine frames are recycled through a per-thread pool
// (core/frame_pool.h). src/core must never schedule a closure that spills
// the SBO — enforced by fits_inline static_asserts at the call sites and
// ctesim_lint's core-std-function rule.
#pragma once

#include <cstdint>
#include <vector>

#include "core/event_queue.h"
#include "core/task.h"
#include "core/time.h"
#include "util/inline_function.h"

namespace ctesim::trace {
class Recorder;
}

namespace ctesim::sim {

class Engine {
 public:
  /// Event-callback type: move-only, 48 bytes of inline storage, heap
  /// fallback for oversized closures (see util/inline_function.h).
  using Callback = util::InlineFunction<void()>;

  Engine() = default;
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current simulated time.
  Time now() const { return now_; }

  /// Schedule `fn` to run `delay` picoseconds from now (delay >= 0).
  /// Header-inline: scheduling is half of every event's lifecycle, and
  /// inlining lets the callback construct straight into its queue slot.
  void schedule_in(Time delay, Callback fn) {
    CTESIM_EXPECTS(delay >= 0);
    schedule_at(now_ + delay, std::move(fn));
  }

  /// Schedule `fn` at absolute time `t` (t >= now()).
  void schedule_at(Time t, Callback fn) {
    CTESIM_EXPECTS(t >= now_);
    queue_.push(t, next_seq_++, std::move(fn));
  }

  /// Start a coroutine process at the current simulated time. The engine
  /// takes ownership of the coroutine frame; exceptions escaping the process
  /// are rethrown from run().
  void spawn(Task<> task);

  /// Run until no events remain. Returns the final simulated time.
  Time run();

  /// Run until simulated time would exceed `limit`; remaining events stay
  /// queued. Returns true if the event queue drained before the limit.
  bool run_until(Time limit);

  /// Awaitable: `co_await engine.delay(dt)` suspends the calling process for
  /// `dt` picoseconds of simulated time.
  auto delay(Time dt) {
    struct Awaiter {
      Engine& engine;
      Time dt;
      bool await_ready() const noexcept { return dt == 0; }
      void await_suspend(std::coroutine_handle<> h) {
        auto resume = [h] { h.resume(); };
        static_assert(Callback::fits_inline<decltype(resume)>,
                      "core must never schedule a spilling closure");
        engine.schedule_in(dt, std::move(resume));
      }
      void await_resume() const noexcept {}
    };
    CTESIM_EXPECTS(dt >= 0);
    return Awaiter{*this, dt};
  }

  /// Processes spawned but not yet finished — nonzero after run() means the
  /// workload deadlocked (e.g. a receive with no matching send).
  std::size_t unfinished_processes() const;

  /// Process handles currently retained (unfinished + failed + not yet
  /// reaped). The incremental reaper keeps this proportional to the number
  /// of *live* processes, not to every process ever spawned —
  /// tests/test_engine_alloc.cpp pins the bound across 100k short spawns.
  std::size_t tracked_processes() const { return processes_.size(); }

  /// Total events dispatched so far (observability / perf tests).
  std::uint64_t events_processed() const { return events_processed_; }

  /// Attach an observability recorder: every `sample_interval` dispatched
  /// events the engine samples its events_processed counter onto the
  /// recorder's global track (category "core"). Pass nullptr to detach.
  /// Costs one branch per dispatch when detached or disabled.
  void set_recorder(trace::Recorder* recorder,
                    std::uint64_t sample_interval = 1024);

 private:
  void dispatch(Time time, Callback& fn);
  void check_failures();
  void reap_sweep();

  /// Per-dispatch reap gate, inline so the run loop pays one predictable
  /// compare per event; the O(survivors) sweep lives out of line.
  void reap_finished() {
    if (processes_.size() >= reap_threshold_) reap_sweep();
  }

  static constexpr std::size_t kMinReapThreshold = 64;

  // Declared before queue_ so pending events (which may hold coroutine
  // handles) are destroyed before the coroutine frames they point into.
  std::vector<Task<>> processes_;
  EventQueue queue_;
  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_processed_ = 0;
  std::size_t reap_threshold_ = kMinReapThreshold;
  trace::Recorder* recorder_ = nullptr;
  std::uint64_t sample_interval_ = 1024;
};

}  // namespace ctesim::sim
