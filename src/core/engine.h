// Discrete-event simulation engine.
//
// Single-threaded, deterministic: events at equal simulated time fire in
// scheduling order (monotone sequence numbers break ties), so every run of a
// given workload produces identical results — a hard requirement for
// recording paper-vs-measured numbers in EXPERIMENTS.md.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "core/task.h"
#include "core/time.h"

namespace ctesim::trace {
class Recorder;
}

namespace ctesim::sim {

class Engine {
 public:
  Engine() = default;
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current simulated time.
  Time now() const { return now_; }

  /// Schedule `fn` to run `delay` picoseconds from now (delay >= 0).
  void schedule_in(Time delay, std::function<void()> fn);

  /// Schedule `fn` at absolute time `t` (t >= now()).
  void schedule_at(Time t, std::function<void()> fn);

  /// Start a coroutine process at the current simulated time. The engine
  /// takes ownership of the coroutine frame; exceptions escaping the process
  /// are rethrown from run().
  void spawn(Task<> task);

  /// Run until no events remain. Returns the final simulated time.
  Time run();

  /// Run until simulated time would exceed `limit`; remaining events stay
  /// queued. Returns true if the event queue drained before the limit.
  bool run_until(Time limit);

  /// Awaitable: `co_await engine.delay(dt)` suspends the calling process for
  /// `dt` picoseconds of simulated time.
  auto delay(Time dt) {
    struct Awaiter {
      Engine& engine;
      Time dt;
      bool await_ready() const noexcept { return dt == 0; }
      void await_suspend(std::coroutine_handle<> h) {
        engine.schedule_in(dt, [h] { h.resume(); });
      }
      void await_resume() const noexcept {}
    };
    CTESIM_EXPECTS(dt >= 0);
    return Awaiter{*this, dt};
  }

  /// Processes spawned but not yet finished — nonzero after run() means the
  /// workload deadlocked (e.g. a receive with no matching send).
  std::size_t unfinished_processes() const;

  /// Total events dispatched so far (observability / perf tests).
  std::uint64_t events_processed() const { return events_processed_; }

  /// Attach an observability recorder: every `sample_interval` dispatched
  /// events the engine samples its events_processed counter onto the
  /// recorder's global track (category "core"). Pass nullptr to detach.
  /// Costs one branch per dispatch when detached or disabled.
  void set_recorder(trace::Recorder* recorder,
                    std::uint64_t sample_interval = 1024);

 private:
  struct Event {
    Time time;
    std::uint64_t seq;
    std::function<void()> fn;

    // std::priority_queue is a max-heap; invert for earliest-first.
    bool operator<(const Event& other) const {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  void dispatch(Event&& event);
  void check_failures();

  // Declared before queue_ so pending events (which may hold coroutine
  // handles) are destroyed before the coroutine frames they point into.
  std::vector<Task<>> processes_;
  std::priority_queue<Event> queue_;
  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_processed_ = 0;
  trace::Recorder* recorder_ = nullptr;
  std::uint64_t sample_interval_ = 1024;
};

}  // namespace ctesim::sim
