// The engine's event queue: an implicit 4-ary min-heap with move-out pop.
//
// Why not std::priority_queue:
//   - top()/pop() forces a copy of the event (and, pre-refactor, of its
//     heap-allocated std::function closure) because top() is const. pop()
//     here moves the event out — a callback is never copied, which is also
//     what lets the callback type be move-only (util::InlineFunction).
//   - A heap of whole events sifts the callback payload through every
//     level. Here the heap array holds only packed 16-byte keys; the
//     64-byte callbacks sit still in a side slab (`slots_`, recycled
//     through a free list) and are relocated exactly twice per event —
//     once in on push, once out on pop — regardless of queue depth.
//   - The (time, seq) ordering key is packed into one unsigned 128-bit
//     integer (time in the high half, sequence number in the low half), so
//     the lexicographic "earliest time, then scheduling order" comparison
//     is a single branch-predictable integer compare instead of a
//     two-field short-circuit. Valid because simulated time is never
//     negative (Engine::schedule_at enforces t >= now() from t = 0);
//     push() asserts it.
//   - pop() sifts bottom-up: the root hole is walked to a leaf promoting
//     the best child unconditionally (no per-level "does the former last
//     element fit here?" test — against random keys that test is an
//     unpredictable branch which almost always says "keep going"), then
//     the former last element sifts up from the leaf, where it nearly
//     always belongs. Same trick libstdc++'s __adjust_heap uses.
//   - Four children sit in adjacent 32-byte entries (children of i are
//     4i+1..4i+4, two cache lines), halving the levels of a binary heap —
//     the d-ary trade of more comparisons per level for fewer dependent
//     memory levels, which wins once the heap outgrows L1.
//
// Ordering contract (identical to the std::priority_queue it replaced, so
// every trace stays byte-identical): earliest time first; equal times fire
// in scheduling order via the monotone sequence number. Verified against a
// std::stable_sort oracle in tests/test_event_queue.cpp.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "core/time.h"
#include "util/check.h"
#include "util/inline_function.h"

namespace ctesim::sim {

/// A scheduled callback as pushed/popped by the engine. Storage inside the
/// queue is split: the (time, seq) key lives in the heap array, the callback
/// in the slot slab.
struct ScheduledEvent {
  Time time = 0;
  std::uint64_t seq = 0;
  util::InlineFunction<void()> fn;
};

class EventQueue {
 public:
  bool empty() const noexcept { return heap_.empty(); }
  std::size_t size() const noexcept { return heap_.size(); }

  /// Time of the earliest event. Precondition: !empty().
  Time top_time() const {
    CTESIM_EXPECTS(!heap_.empty());
    return unpack_time(heap_.front().key);
  }

  /// Pre-size the backing arrays so steady-state push/pop never reallocates.
  void reserve(std::size_t n) {
    heap_.reserve(n);
    slots_.reserve(n);
    free_.reserve(n);
  }

  void push(ScheduledEvent&& event) {
    push(event.time, event.seq, std::move(event.fn));
  }

  /// Primary push: moves the callback straight into its slot — no
  /// intermediate ScheduledEvent, one relocation total.
  void push(Time time, std::uint64_t seq, util::InlineFunction<void()>&& fn) {
    CTESIM_EXPECTS(time >= 0);  // the u128 key packing depends on it
    std::uint64_t slot;
    if (free_.empty()) {
      slot = slots_.size();
      slots_.push_back(std::move(fn));
    } else {
      slot = free_.back();
      free_.pop_back();
      slots_[slot] = std::move(fn);  // target is empty: no teardown
    }
    const Key key{pack(time, seq), slot};
    heap_.push_back(key);
    std::size_t hole = heap_.size() - 1;
    while (hole > 0) {
      const std::size_t parent = (hole - 1) / kArity;
      if (key.key >= heap_[parent].key) break;
      heap_[hole] = heap_[parent];
      hole = parent;
    }
    heap_[hole] = key;
  }

  /// Remove and return the earliest event *by move* — the callback never
  /// gets copied (the old `Event e = q.top(); q.pop();` pattern did, once
  /// per dispatched event; BM_ScheduleDispatch vs its Legacy twin in
  /// bench/engine_rate.cpp keeps the difference measured).
  ScheduledEvent pop() {
    ScheduledEvent out;
    CTESIM_EXPECTS(!heap_.empty());
    out.time = unpack_time(heap_.front().key);
    out.seq = static_cast<std::uint64_t>(heap_.front().key);
    out.fn = pop_into_hole();
    return out;
  }

  /// Primary pop: the earliest event's callback, by move, advancing `time`
  /// to its fire time. One relocation, no ScheduledEvent materialised —
  /// the engine's dispatch loop reuses one callback local across events.
  util::InlineFunction<void()> pop_earliest(Time& time) {
    CTESIM_EXPECTS(!heap_.empty());
    time = unpack_time(heap_.front().key);
    return pop_into_hole();
  }

  /// Drop all pending events (engine teardown: callbacks may hold coroutine
  /// handles and must die before the frames they point into).
  void clear() noexcept {
    heap_.clear();
    slots_.clear();
    free_.clear();
  }

 private:
  static constexpr std::size_t kArity = 4;

  using PackedKey = unsigned __int128;

  static PackedKey pack(Time time, std::uint64_t seq) noexcept {
    return static_cast<PackedKey>(static_cast<std::uint64_t>(time)) << 64 |
           seq;
  }

  static Time unpack_time(PackedKey key) noexcept {
    return static_cast<Time>(static_cast<std::uint64_t>(key >> 64));
  }

  /// Heap entry: the packed ordering key plus the index of the callback in
  /// slots_. Trivially copyable — sift moves are plain 32-byte copies.
  struct Key {
    PackedKey key;
    std::uint64_t slot;
  };

  /// Shared pop tail: move the root's callback out, recycle its slot, and
  /// restore the heap (bottom-up sift, see the header comment).
  util::InlineFunction<void()> pop_into_hole() {
    const Key root = heap_.front();
    util::InlineFunction<void()> fn = std::move(slots_[root.slot]);
    free_.push_back(root.slot);
    const Key last = heap_.back();
    heap_.pop_back();
    const std::size_t n = heap_.size();
    if (n != 0) {
      // Bottom-up: promote the best child into the hole all the way to a
      // leaf, then sift `last` up from there (usually not at all).
      std::size_t hole = 0;
      for (;;) {
        const std::size_t first_child = hole * kArity + 1;
        if (first_child >= n) break;
        const std::size_t last_child =
            first_child + std::min(kArity - 1, n - 1 - first_child);
        std::size_t best = first_child;
        for (std::size_t c = first_child + 1; c <= last_child; ++c) {
          best = heap_[c].key < heap_[best].key ? c : best;
        }
        heap_[hole] = heap_[best];
        hole = best;
      }
      while (hole > 0) {
        const std::size_t parent = (hole - 1) / kArity;
        if (last.key >= heap_[parent].key) break;
        heap_[hole] = heap_[parent];
        hole = parent;
      }
      heap_[hole] = last;
    }
    return fn;
  }

  std::vector<Key> heap_;    ///< implicit 4-ary min-heap of packed keys
  std::vector<util::InlineFunction<void()>> slots_;  ///< callback payloads
  std::vector<std::uint64_t> free_;                  ///< recycled slot ids
};

}  // namespace ctesim::sim
