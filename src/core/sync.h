// Synchronization primitives between simulated processes: a broadcast
// Event and a counting Semaphore. Like everything in core, wakeups are
// scheduled through the engine at the current simulated time so ordering
// stays deterministic.
#pragma once

#include <coroutine>
#include <deque>

#include "core/engine.h"

namespace ctesim::sim {

/// One-shot broadcast event: waiters suspend until set() fires; waits after
/// set() complete immediately. reset() re-arms it.
class Event {
 public:
  explicit Event(Engine& engine) : engine_(&engine) {}
  Event(const Event&) = delete;
  Event& operator=(const Event&) = delete;

  bool is_set() const { return set_; }

  /// Fire the event; all current waiters resume at the present time.
  void set() {
    set_ = true;
    auto waiters = std::move(waiters_);
    waiters_.clear();
    for (auto handle : waiters) {
      auto resume = [handle] { handle.resume(); };
      static_assert(Engine::Callback::fits_inline<decltype(resume)>,
                    "core must never schedule a spilling closure");
      engine_->schedule_in(0, std::move(resume));
    }
  }

  void reset() { set_ = false; }

  auto wait() {
    struct [[nodiscard]] Awaiter {
      Event& event;
      bool await_ready() const noexcept { return event.set_; }
      void await_suspend(std::coroutine_handle<> handle) {
        event.waiters_.push_back(handle);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

  std::size_t waiting() const { return waiters_.size(); }

 private:
  Engine* engine_;
  bool set_ = false;
  std::deque<std::coroutine_handle<>> waiters_;
};

/// Counting semaphore: acquire() suspends while the count is zero; FIFO
/// handoff to waiters (no barging), like Channel.
class Semaphore {
 public:
  Semaphore(Engine& engine, std::int64_t initial)
      : engine_(&engine), count_(initial) {
    CTESIM_EXPECTS(initial >= 0);
  }
  Semaphore(const Semaphore&) = delete;
  Semaphore& operator=(const Semaphore&) = delete;

  std::int64_t count() const { return count_; }
  std::size_t waiting() const { return waiters_.size(); }

  /// Release one permit; hands it directly to the oldest waiter if any
  /// (the permit never touches count_ in that case, so later acquirers
  /// cannot steal it).
  void release() {
    if (!waiters_.empty()) {
      Waiter* waiter = waiters_.front();
      waiters_.pop_front();
      waiter->granted = true;
      const auto handle = waiter->handle;
      auto resume = [handle] { handle.resume(); };
      static_assert(Engine::Callback::fits_inline<decltype(resume)>,
                    "core must never schedule a spilling closure");
      engine_->schedule_in(0, std::move(resume));
      return;
    }
    ++count_;
  }

  auto acquire() {
    struct [[nodiscard]] Awaiter {
      Semaphore& semaphore;
      Waiter waiter;

      bool await_ready() const noexcept {
        return semaphore.count_ > 0 && semaphore.waiters_.empty();
      }
      void await_suspend(std::coroutine_handle<> handle) {
        waiter.handle = handle;
        semaphore.waiters_.push_back(&waiter);
      }
      void await_resume() noexcept {
        // Ready path consumes a queued permit; the handoff path already
        // received one directly from release().
        if (!waiter.granted) {
          --semaphore.count_;
        }
      }
    };
    return Awaiter{*this, Waiter{}};
  }

 private:
  struct Waiter {
    std::coroutine_handle<> handle;
    bool granted = false;
  };

  Engine* engine_;
  std::int64_t count_;
  std::deque<Waiter*> waiters_;
};

}  // namespace ctesim::sim
