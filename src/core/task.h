// Coroutine task type for simulated processes.
//
// Task<T> is a lazy coroutine: creating it does nothing; it starts when
// awaited (symmetric transfer) or when spawned onto an Engine. A finished
// task resumes its awaiter, so `co_await subroutine()` composes naturally —
// exactly how simulated MPI collectives are built from point-to-point calls.
//
// COMPILER CONSTRAINT (GCC 12): arguments passed to a coroutine invoked
// inside a `co_await` expression must be trivially destructible or named
// lvalues. GCC 12.2 miscompiles the destruction of non-trivially-
// destructible temporaries (and by-value parameter copies) that cross the
// coroutine boundary, corrupting the coroutine frame (verified with ASan;
// fixed in later GCC). All ctesim coroutine APIs therefore take either
// trivially-destructible values (ints, KernelSig) or std::span views.
// tests/test_core.cpp pins the safe patterns.
#pragma once

#include <coroutine>
#include <cstddef>
#include <exception>
#include <utility>

#include "core/frame_pool.h"
#include "util/check.h"

namespace ctesim::sim {

template <typename T>
class Task;

namespace detail {

struct FinalAwaiter {
  bool await_ready() const noexcept { return false; }

  template <typename Promise>
  std::coroutine_handle<> await_suspend(
      std::coroutine_handle<Promise> h) noexcept {
    auto& promise = h.promise();
    promise.done = true;
    if (promise.continuation) return promise.continuation;
    return std::noop_coroutine();
  }

  void await_resume() const noexcept {}
};

struct PromiseBase {
  std::coroutine_handle<> continuation;
  std::exception_ptr exception;
  bool done = false;

  std::suspend_always initial_suspend() noexcept { return {}; }
  FinalAwaiter final_suspend() noexcept { return {}; }
  void unhandled_exception() noexcept { exception = std::current_exception(); }

  // Coroutine frames come from the size-bucketed per-thread pool: spawn/
  // resume/destroy of short-lived processes dominates batch and simmpi
  // studies, and after warm-up a frame costs a pointer pop instead of a
  // malloc (tests/test_engine_alloc.cpp asserts the zero-allocation steady
  // state). Declaring only the sized delete makes the compiler pass the
  // frame size back, which is what lets the pool bucket without a header.
  static void* operator new(std::size_t size) {
    return frame_pool::allocate(size);
  }
  static void operator delete(void* ptr, std::size_t size) noexcept {
    frame_pool::deallocate(ptr, size);
  }
};

template <typename T>
struct Promise : PromiseBase {
  // Storage without requiring default-constructible T.
  alignas(T) unsigned char storage[sizeof(T)];
  bool has_value = false;

  Task<T> get_return_object();

  template <typename U>
  void return_value(U&& value) {
    ::new (static_cast<void*>(storage)) T(std::forward<U>(value));
    has_value = true;
  }

  T& value() {
    CTESIM_EXPECTS(has_value);
    return *reinterpret_cast<T*>(storage);
  }

  ~Promise() {
    if (has_value) reinterpret_cast<T*>(storage)->~T();
  }
};

template <>
struct Promise<void> : PromiseBase {
  Task<void> get_return_object();
  void return_void() noexcept {}
};

}  // namespace detail

/// An owning handle to a lazy coroutine computing a T.
template <typename T = void>
class [[nodiscard]] Task {
 public:
  using promise_type = detail::Promise<T>;
  using Handle = std::coroutine_handle<promise_type>;

  Task() = default;
  explicit Task(Handle handle) : handle_(handle) {}

  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  bool valid() const { return static_cast<bool>(handle_); }
  bool done() const { return handle_ && handle_.promise().done; }

  /// True when the task finished by throwing (Engine's incremental reaper
  /// must keep such tasks alive until check_failures() rethrows).
  bool failed() const { return handle_ && handle_.promise().exception; }

  /// Rethrow any exception the task finished with (no-op otherwise).
  void rethrow_if_failed() const {
    if (handle_ && handle_.promise().exception) {
      std::rethrow_exception(handle_.promise().exception);
    }
  }

  /// Releases ownership (used by Engine::spawn which manages lifetime).
  Handle release() { return std::exchange(handle_, {}); }
  Handle handle() const { return handle_; }

  // --- awaitable interface: `co_await task` starts it and suspends the
  //     caller until it completes. ---
  struct Awaiter {
    Handle handle;

    bool await_ready() const noexcept { return false; }

    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<> awaiting) noexcept {
      handle.promise().continuation = awaiting;
      return handle;  // symmetric transfer into the child task
    }

    T await_resume() {
      if (handle.promise().exception) {
        std::rethrow_exception(handle.promise().exception);
      }
      if constexpr (!std::is_void_v<T>) {
        return std::move(handle.promise().value());
      }
    }
  };

  Awaiter operator co_await() const& {
    CTESIM_EXPECTS(valid());
    return Awaiter{handle_};
  }

 private:
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }

  Handle handle_;
};

namespace detail {

template <typename T>
Task<T> Promise<T>::get_return_object() {
  return Task<T>(std::coroutine_handle<Promise<T>>::from_promise(*this));
}

inline Task<void> Promise<void>::get_return_object() {
  return Task<void>(std::coroutine_handle<Promise<void>>::from_promise(*this));
}

}  // namespace detail

}  // namespace ctesim::sim
