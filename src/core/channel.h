// Asynchronous FIFO channel between simulated processes.
//
// `push` never blocks (unbounded queue — timing is modelled by the layers
// above, not by backpressure here); `pop` suspends the caller until a value
// is available. A push with receivers waiting hands the value directly to
// the oldest waiter, so a later receiver can never steal an item from an
// earlier one — wakeup order is FIFO and deterministic.
#pragma once

#include <coroutine>
#include <deque>
#include <optional>
#include <utility>

#include "core/engine.h"

namespace ctesim::sim {

template <typename T>
class Channel {
 public:
  explicit Channel(Engine& engine) : engine_(&engine) {}
  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// Deliver a value; hands it to the oldest waiting receiver (resumed at
  /// the current simulated time) or queues it.
  void push(T value) {
    if (!waiters_.empty()) {
      Waiter* waiter = waiters_.front();
      waiters_.pop_front();
      waiter->value.emplace(std::move(value));
      const auto handle = waiter->handle;
      auto resume = [handle] { handle.resume(); };
      static_assert(Engine::Callback::fits_inline<decltype(resume)>,
                    "core must never schedule a spilling closure");
      engine_->schedule_in(0, std::move(resume));
      return;
    }
    items_.push_back(std::move(value));
  }

  bool empty() const { return items_.empty(); }
  std::size_t size() const { return items_.size(); }
  std::size_t waiting_receivers() const { return waiters_.size(); }

  /// Awaitable receive: `T v = co_await channel.pop();`
  auto pop() {
    struct [[nodiscard]] Awaiter {
      Channel& channel;
      Waiter waiter;

      bool await_ready() const noexcept {
        // Items can only be queued while no receiver waits, so a non-empty
        // queue means we may take the front immediately.
        return !channel.items_.empty();
      }

      void await_suspend(std::coroutine_handle<> h) {
        waiter.handle = h;
        channel.waiters_.push_back(&waiter);
      }

      T await_resume() {
        if (waiter.value.has_value()) return std::move(*waiter.value);
        CTESIM_EXPECTS(!channel.items_.empty());
        T value = std::move(channel.items_.front());
        channel.items_.pop_front();
        return value;
      }
    };
    return Awaiter{*this, Waiter{}};
  }

 private:
  struct Waiter {
    std::coroutine_handle<> handle;
    std::optional<T> value;
  };

  Engine* engine_;
  std::deque<T> items_;
  std::deque<Waiter*> waiters_;
};

}  // namespace ctesim::sim
