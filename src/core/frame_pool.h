// Size-bucketed free-list allocator for coroutine frames.
//
// Simulated processes are coroutines, and batch/simmpi studies spawn and
// retire them by the hundred thousand: spawn → a few resumes → destroy.
// Every frame otherwise costs one malloc + one free on the general-purpose
// allocator. The pool recycles frames by size class instead: after warm-up,
// frame allocation is a pointer pop and deallocation a pointer push — the
// allocation-counting test in tests/test_engine_alloc.cpp holds the
// steady-state spawn/resume/destroy cycle at zero heap allocations.
//
// Design:
//   - Power-of-two buckets from 64 B to 2 KiB (every ctesim process frame
//     measured today is 100–600 B); larger frames pass straight through to
//     ::operator new, counted in Stats::oversize.
//   - One pool per thread (thread_local). Engines are single-threaded and
//     the server runs one engine per worker thread, so there is no locking
//     on the hot path and TSan sees no shared state. A frame freed on a
//     different thread than it was allocated on (which ctesim never does
//     today) would simply migrate to the freeing thread's pool — safe,
//     because blocks are plain ::operator new memory either way.
//   - Task<T>'s promise operator new/delete (core/task.h) route every
//     coroutine frame here; nothing else needs to opt in.
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>

namespace ctesim::sim::frame_pool {

inline constexpr std::size_t kMinBlock = 64;    ///< bucket 0 block size
inline constexpr std::size_t kMaxBlock = 2048;  ///< largest pooled frame
inline constexpr std::size_t kBuckets = 6;      ///< 64,128,256,512,1024,2048

/// Per-thread pool counters — a test/diagnostic hook, not a control knob.
struct Stats {
  std::uint64_t pool_hits = 0;    ///< allocations served from a free list
  std::uint64_t pool_misses = 0;  ///< pooled sizes that had to call new
  std::uint64_t oversize = 0;     ///< frames beyond kMaxBlock (unpooled)
  std::uint64_t live = 0;         ///< pooled blocks currently handed out
  std::size_t free_blocks = 0;    ///< blocks parked across all free lists
};

namespace detail {

/// Bucket index for a frame of `size` bytes, or kBuckets if unpooled.
constexpr std::size_t bucket_of(std::size_t size) noexcept {
  std::size_t bucket = 0;
  std::size_t block = kMinBlock;
  while (block < size && bucket < kBuckets) {
    block <<= 1;
    ++bucket;
  }
  return bucket;
}

constexpr std::size_t block_size(std::size_t bucket) noexcept {
  return kMinBlock << bucket;
}

static_assert(bucket_of(1) == 0 && bucket_of(kMinBlock) == 0);
static_assert(bucket_of(kMinBlock + 1) == 1);
static_assert(bucket_of(kMaxBlock) == kBuckets - 1);
static_assert(bucket_of(kMaxBlock + 1) == kBuckets);

class Pool {
 public:
  Pool() = default;
  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

  ~Pool() { release_free_lists(); }

  void* allocate(std::size_t size) {
    const std::size_t bucket = bucket_of(size);
    if (bucket >= kBuckets) {
      ++stats_.oversize;
      return ::operator new(size);
    }
    ++stats_.live;
    if (FreeNode* node = free_[bucket]) {
      free_[bucket] = node->next;
      --stats_.free_blocks;
      ++stats_.pool_hits;
      node->~FreeNode();
      return node;
    }
    ++stats_.pool_misses;
    return ::operator new(block_size(bucket));
  }

  void deallocate(void* ptr, std::size_t size) noexcept {
    const std::size_t bucket = bucket_of(size);
    if (bucket >= kBuckets) {
      ::operator delete(ptr);
      return;
    }
    --stats_.live;
    free_[bucket] = ::new (ptr) FreeNode{free_[bucket]};
    ++stats_.free_blocks;
  }

  const Stats& stats() const noexcept { return stats_; }

  /// Return every parked block to the system (test hook; frames still in
  /// use are untouched — the pool never owns live memory).
  void release_free_lists() noexcept {
    for (std::size_t b = 0; b < kBuckets; ++b) {
      FreeNode* node = free_[b];
      free_[b] = nullptr;
      while (node != nullptr) {
        FreeNode* next = node->next;
        node->~FreeNode();
        ::operator delete(node, block_size(b));
        node = next;
      }
    }
    stats_.free_blocks = 0;
  }

 private:
  /// Freed blocks store the free-list link in their own first bytes; every
  /// bucket block is >= kMinBlock >= sizeof(FreeNode).
  struct FreeNode {
    FreeNode* next;
  };
  static_assert(sizeof(FreeNode) <= kMinBlock);

  FreeNode* free_[kBuckets] = {};
  Stats stats_;
};

inline Pool& local_pool() {
  thread_local Pool pool;
  return pool;
}

}  // namespace detail

inline void* allocate(std::size_t size) {
  return detail::local_pool().allocate(size);
}

inline void deallocate(void* ptr, std::size_t size) noexcept {
  detail::local_pool().deallocate(ptr, size);
}

/// This thread's pool counters.
inline Stats stats() { return detail::local_pool().stats(); }

/// Release this thread's parked blocks (test hook).
inline void release_free_lists() {
  detail::local_pool().release_free_lists();
}

}  // namespace ctesim::sim::frame_pool
