// Forwarding shim: sim::Time moved to util/time.h so that trace/ (which
// records event times but does not depend on the DES engine) sits below
// core/ in the subsystem layering (see tools/ctesim_lint/layers.txt).
// Engine-side code keeps including "core/time.h"; both spellings are the
// same header.
#pragma once

#include "util/time.h"  // IWYU pragma: export
