#include "core/engine.h"

#include <utility>

#include "trace/recorder.h"
#include "util/assert.h"
#include "util/check.h"

namespace ctesim::sim {

Engine::~Engine() {
  // Drop pending events (and the coroutine handles they capture) before the
  // member destruction order tears down the coroutine frames themselves.
  while (!queue_.empty()) queue_.pop();
}

void Engine::schedule_in(Time delay, std::function<void()> fn) {
  CTESIM_EXPECTS(delay >= 0);
  schedule_at(now_ + delay, std::move(fn));
}

void Engine::schedule_at(Time t, std::function<void()> fn) {
  CTESIM_EXPECTS(t >= now_);
  queue_.push(Event{t, next_seq_++, std::move(fn)});
}

void Engine::spawn(Task<> task) {
  CTESIM_EXPECTS(task.valid());
  processes_.push_back(std::move(task));
  auto handle = processes_.back().handle();
  schedule_in(0, [handle] { handle.resume(); });
}

void Engine::set_recorder(trace::Recorder* recorder,
                          std::uint64_t sample_interval) {
  CTESIM_EXPECTS(sample_interval >= 1);
  recorder_ = recorder;
  sample_interval_ = sample_interval;
}

void Engine::dispatch(Event&& event) {
  CTESIM_DCHECK(event.time >= now_,
                "simulated time must be monotone: event scheduled in the "
                "past reached the dispatcher");
  now_ = event.time;
  ++events_processed_;
  if (recorder_ && events_processed_ % sample_interval_ == 0) {
    recorder_->counter(trace::Track::global(), "core", "events_processed",
                       now_, static_cast<double>(events_processed_));
  }
  event.fn();
}

void Engine::check_failures() {
  for (const auto& process : processes_) {
    if (process.done()) process.rethrow_if_failed();
  }
}

Time Engine::run() {
  while (!queue_.empty()) {
    Event event = queue_.top();
    queue_.pop();
    dispatch(std::move(event));
  }
  check_failures();
  return now_;
}

bool Engine::run_until(Time limit) {
  CTESIM_EXPECTS(limit >= now_);
  while (!queue_.empty() && queue_.top().time <= limit) {
    Event event = queue_.top();
    queue_.pop();
    dispatch(std::move(event));
  }
  check_failures();
  const bool drained = queue_.empty();
  now_ = limit;
  return drained;
}

std::size_t Engine::unfinished_processes() const {
  std::size_t unfinished = 0;
  for (const auto& process : processes_) {
    if (!process.done()) ++unfinished;
  }
  return unfinished;
}

}  // namespace ctesim::sim
