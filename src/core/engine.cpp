#include "core/engine.h"

#include <algorithm>
#include <utility>

#include "trace/recorder.h"
#include "util/assert.h"
#include "util/check.h"

namespace ctesim::sim {

Engine::~Engine() {
  // Drop pending events (and the coroutine handles they capture) before the
  // member destruction order tears down the coroutine frames themselves.
  queue_.clear();
}

void Engine::spawn(Task<> task) {
  CTESIM_EXPECTS(task.valid());
  processes_.push_back(std::move(task));
  auto handle = processes_.back().handle();
  auto resume = [handle] { handle.resume(); };
  static_assert(Callback::fits_inline<decltype(resume)>,
                "core must never schedule a spilling closure");
  schedule_in(0, std::move(resume));
}

void Engine::set_recorder(trace::Recorder* recorder,
                          std::uint64_t sample_interval) {
  CTESIM_EXPECTS(sample_interval >= 1);
  recorder_ = recorder;
  sample_interval_ = sample_interval;
}

void Engine::dispatch(Time time, Callback& fn) {
  CTESIM_DCHECK(time >= now_,
                "simulated time must be monotone: event scheduled in the "
                "past reached the dispatcher");
  now_ = time;
  ++events_processed_;
  if (recorder_ && events_processed_ % sample_interval_ == 0) {
    recorder_->counter(trace::Track::global(), "core", "events_processed",
                       now_, static_cast<double>(events_processed_));
  }
  fn();
}

void Engine::check_failures() {
  for (const auto& process : processes_) {
    if (process.done()) process.rethrow_if_failed();
  }
}

void Engine::reap_sweep() {
  // Drop finished processes (frames go back to the frame pool); keep the
  // failed ones so check_failures() still rethrows in spawn order, exactly
  // as before reaping existed. remove_if is stable, so relative order —
  // and therefore which failure is rethrown first — is preserved.
  processes_.erase(
      std::remove_if(processes_.begin(), processes_.end(),
                     [](const Task<>& t) { return t.done() && !t.failed(); }),
      processes_.end());
  // Re-arm at 2x the surviving population: the sweep above is O(survivors),
  // so total reaping work stays linear in processes spawned — amortised
  // O(1) per process — while processes_ stays O(live), not O(ever spawned).
  reap_threshold_ =
      std::max(kMinReapThreshold, processes_.size() * 2);
}

Time Engine::run() {
  while (!queue_.empty()) {
    // pop_earliest moves the callback (inline storage and all) out of the
    // queue's slot slab; the old copy-then-pop via
    // std::priority_queue::top() cost a copy of a heap-allocated
    // std::function per dispatch. BM_ScheduleDispatch vs
    // BM_ScheduleDispatchLegacy (bench/engine_rate.cpp) keeps that
    // difference measured so it cannot silently regress.
    Time t;
    Callback fn = queue_.pop_earliest(t);
    dispatch(t, fn);
    reap_finished();
  }
  check_failures();
  return now_;
}

bool Engine::run_until(Time limit) {
  CTESIM_EXPECTS(limit >= now_);
  while (!queue_.empty() && queue_.top_time() <= limit) {
    Time t;
    Callback fn = queue_.pop_earliest(t);
    dispatch(t, fn);
    reap_finished();
  }
  check_failures();
  const bool drained = queue_.empty();
  now_ = limit;
  return drained;
}

std::size_t Engine::unfinished_processes() const {
  std::size_t unfinished = 0;
  for (const auto& process : processes_) {
    if (!process.done()) ++unfinished;
  }
  return unfinished;
}

}  // namespace ctesim::sim
