#include "io/filesystem.h"

#include <algorithm>

#include "util/check.h"

namespace ctesim::io {

FilesystemModel::FilesystemModel(FilesystemConfig config,
                                 const arch::InterconnectSpec& interconnect)
    : config_(config),
      injection_bw_(interconnect.link_bw * interconnect.eff_bw_factor) {
  CTESIM_EXPECTS(config_.osts >= 1);
  CTESIM_EXPECTS(config_.ost_bw > 0.0);
  CTESIM_EXPECTS(config_.default_stripe_count >= 1);
  CTESIM_EXPECTS(config_.metadata_latency >= 0.0);
  CTESIM_EXPECTS(injection_bw_ > 0.0);
}

double FilesystemModel::stripe_bw(int stripe_count) const {
  CTESIM_EXPECTS(stripe_count >= 1);
  return config_.ost_bw * std::min(stripe_count, config_.osts);
}

double FilesystemModel::serial_write_seconds(std::uint64_t bytes) const {
  // Gather into the writer (bounded by its NIC), then stream to the
  // file's default stripes (bounded by the slower of NIC and stripes).
  const double gather =
      static_cast<double>(bytes) / injection_bw_;
  const double drain =
      static_cast<double>(bytes) /
      std::min(injection_bw_, stripe_bw(config_.default_stripe_count));
  return config_.metadata_latency + gather + drain;
}

double FilesystemModel::parallel_write_seconds(std::uint64_t bytes,
                                               int writers) const {
  CTESIM_EXPECTS(writers >= 1);
  // Every writer pushes its slice; the pool of OSTs is the shared limit,
  // individual NICs only matter while writers are few.
  const double pool_bw = stripe_bw(config_.osts);
  const double injection = injection_bw_ * writers;
  return config_.metadata_latency +
         static_cast<double>(bytes) / std::min(pool_bw, injection);
}

FilesystemModel production_filesystem(const arch::MachineModel& machine) {
  // Mid-size production scratch: 16 OSTs x 1 GB/s. At this size WRF's
  // ~100 MB hourly frames cost well under a second each — matching the
  // paper's observation that I/O barely moves the totals.
  FilesystemConfig config;
  config.osts = 16;
  config.ost_bw = 1.0e9;
  config.default_stripe_count = 4;
  config.metadata_latency = 2.0e-3;
  return FilesystemModel(config, machine.interconnect);
}

}  // namespace ctesim::io
