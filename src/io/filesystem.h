// Parallel filesystem model (Lustre/FEFS-style): striped object storage
// targets behind a metadata server. Models the two write strategies that
// matter for the paper's WRF experiment (Fig. 16):
//   - gather-to-rank-0 serial write (what WRF does by default): the frame
//     funnels through one node's NIC, then streams to as many OSTs as the
//     stripe count covers;
//   - parallel (MPI-IO style) write: all nodes write their slice, striping
//     across every OST, metadata once.
#pragma once

#include <cstdint>

#include "arch/machine.h"

namespace ctesim::io {

struct FilesystemConfig {
  int osts = 8;                  ///< object storage targets
  double ost_bw = 0.5e9;         ///< sustained bytes/s per OST
  int default_stripe_count = 4;  ///< stripes for a newly created file
  double metadata_latency = 2.0e-3;  ///< open/create round trip, seconds
};

class FilesystemModel {
 public:
  FilesystemModel(FilesystemConfig config,
                  const arch::InterconnectSpec& interconnect);

  const FilesystemConfig& config() const { return config_; }

  /// Aggregate bandwidth a write striped over `stripe_count` OSTs can
  /// sustain (capped by the OST pool).
  double stripe_bw(int stripe_count) const;

  /// Serial frame write: gather `bytes` to one writer node over the
  /// interconnect, then stream to the file's stripes.
  double serial_write_seconds(std::uint64_t bytes) const;

  /// Parallel write from `writers` nodes, each contributing an equal
  /// slice, striped over all OSTs; injection is no bottleneck when many
  /// writers share the load.
  double parallel_write_seconds(std::uint64_t bytes, int writers) const;

 private:
  FilesystemConfig config_;
  double injection_bw_;  ///< one node's NIC bandwidth toward the FS
};

/// The filesystem of the paper's systems (GPFS/FEFS-class, sized so that
/// WRF's hourly frames cost "little", as Fig. 16 reports).
FilesystemModel production_filesystem(const arch::MachineModel& machine);

}  // namespace ctesim::io
