// NEMO proxy (Fig. 11): ocean model, BENCH configuration at ORCA1
// resolution (362 x 292 horizontal, 75 levels), MPI-only with 2D domain
// decomposition. Each time step sweeps many 3D fields (stencil dynamics,
// memory-heavy), exchanges 2D halos, and performs a few global reductions
// (e.g. solver/diagnostics). The paper reports total execution time; CTE
// needs >= 8 nodes for memory and its scaling flattens around 128 nodes.
#pragma once

#include "arch/machine.h"
#include "sampling/executor.h"
#include "sampling/plan.h"

namespace ctesim::trace {
class Recorder;
}

namespace ctesim::apps {

struct NemoConfig {
  int grid_x = 362;   ///< ORCA1 horizontal grid
  int grid_y = 292;
  int levels = 75;
  int steps = 1000;   ///< BENCH time steps reported
  // Per grid-point per step costs (tens of kernels over ~30 3D fields).
  double flops_per_point = 3250.0;
  double bytes_per_point = 1920.0;
  /// Kernel sweeps per step, each followed by a halo exchange (NEMO
  /// exchanges after every group of field updates).
  int kernels_per_step = 12;
  int reductions_per_step = 2;
  /// CPU cost of one MPI call in the 48-rank-per-node MPI-only regime
  /// (stack traversal, matching, progress). At tiny tiles this fixed cost
  /// is what flattens strong scaling (paper: "flattens at around 128
  /// nodes because of strong scalability limitations").
  double mpi_overhead_per_message = 5.5e-6;
  // Memory model: decomposed 3D state + per-rank replicated configuration
  // (sets the 8-node minimum on CTE-Arm with 48 ranks/node).
  double decomposed_bytes = 45e9;
  double replicated_bytes_per_rank = 0.548e9;
  /// Diagnostic-output cadence: every `diag_interval`-th step performs
  /// `diag_reductions` extra global reductions (tracer budgets, solver
  /// monitors). 0 disables — the legacy uniform-step behaviour — so the
  /// default figures stay byte-stable; enabling it gives the run a second
  /// phase the sampling subsystem can detect.
  int diag_interval = 0;
  int diag_reductions = 8;
  // --- simulation controls ---
  int sim_steps = 2;  ///< exact-mode window (steps simulated and scaled up)
  sampling::SamplingPlan sampling;
  /// Record per-rank compute/communication spans into this observability
  /// recorder (see src/trace/); nullptr disables tracing.
  trace::Recorder* recorder = nullptr;
};

struct NemoResult {
  int nodes = 0;
  bool fits_memory = false;
  double total_time = 0.0;  ///< full BENCH run (Fig. 11 y-axis)
  double time_per_step = 0.0;
  sampling::Outcome sampling;  ///< estimate detail (CI, phases, speedup)
};

int nemo_min_nodes(const arch::MachineModel& machine,
                   const NemoConfig& config = {});

NemoResult run_nemo(const arch::MachineModel& machine, int nodes,
                    const NemoConfig& config = {});

}  // namespace ctesim::apps
