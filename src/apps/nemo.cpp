#include "apps/nemo.h"

#include <cmath>
#include <cstdint>
#include <vector>

#include "apps/sampled_run.h"
#include "simmpi/world.h"
#include "util/check.h"

namespace ctesim::apps {

namespace {

/// 2D process grid px x py ~ proportional to the horizontal domain.
void choose_grid2d(int nranks, int* px, int* py) {
  int best = 1;
  for (int cand = 1; cand * cand <= nranks; ++cand) {
    if (nranks % cand == 0) best = cand;
  }
  *px = best;
  *py = nranks / best;
}

}  // namespace

int nemo_min_nodes(const arch::MachineModel& machine,
                   const NemoConfig& config) {
  for (int nodes = 1; nodes <= machine.num_nodes; ++nodes) {
    // MPI-only: 48 ranks per node, each replicating configuration data.
    const double per_node =
        config.decomposed_bytes / nodes +
        config.replicated_bytes_per_rank * machine.node.core_count();
    if (per_node <= machine.node.memory_gb() * 1e9) return nodes;
  }
  return machine.num_nodes + 1;
}

NemoResult run_nemo(const arch::MachineModel& machine, int nodes,
                    const NemoConfig& config) {
  CTESIM_EXPECTS(nodes >= 1 && nodes <= machine.num_nodes);
  NemoResult result;
  result.nodes = nodes;
  result.fits_memory = nodes >= nemo_min_nodes(machine, config);
  if (!result.fits_memory) return result;

  // MPI-only full population: one rank per core, as the paper runs NEMO.
  const int nranks = nodes * machine.node.core_count();
  int px = 1;
  int py = 1;
  choose_grid2d(nranks, &px, &py);
  const double local_x = static_cast<double>(config.grid_x) / px;
  const double local_y = static_cast<double>(config.grid_y) / py;
  const double points_local = local_x * local_y * config.levels;
  // Halo: one row/column of the local tile, all levels, 8 B, ~4 fields.
  const auto halo_bytes = static_cast<std::uint64_t>(
      (local_x + local_y) * config.levels * 8.0 * 4.0);

  const roofline::KernelSig dynamics_sig{
      .name = "nemo-dynamics",
      .cls = arch::KernelClass::kStencil,
      .flops_per_elem = config.flops_per_point,
      .bytes_per_elem = config.bytes_per_point,
      .vec_potential = 0.95,
      .overlap = 0.8};

  const auto is_diag_step = [&config](long long s) {
    return config.diag_interval > 0 &&
           s % config.diag_interval == config.diag_interval - 1;
  };

  sampling::StepProfile profile;
  profile.total_steps = config.steps;
  profile.exact_window = config.sim_steps;
  profile.signature = [&, is_diag_step](long long s) {
    sampling::StepSignature sig;
    sig.flops = points_local * config.flops_per_point;
    sig.bytes = points_local * config.bytes_per_point;
    sig.messages = 4.0 * config.kernels_per_step;
    sig.collectives = config.reductions_per_step;
    if (is_diag_step(s)) sig.collectives += config.diag_reductions;
    return sig;
  };

  const auto runner = [&](const std::vector<long long>& steps,
                          bool want_per_step) {
    mpi::WorldOptions options;
    options.machine = machine;
    options.compute_jitter = 0.02;
    options.seed = sampling::world_seed(
        2000 + static_cast<std::uint64_t>(nodes), config.sampling);
    options.recorder = config.recorder;
    mpi::World world(std::move(options),
                     mpi::Placement::per_core(machine.node, nranks));

    const double makespan =
        world.run([&, halo_bytes, px, py](mpi::Rank& rank) -> sim::Task<> {
          // 2D Cartesian neighbors (non-periodic, like the closed ORCA
          // domains).
          const int cx = rank.id() % px;
          const int cy = rank.id() / px;
          std::vector<int> neighbors;
          if (cx > 0) neighbors.push_back(rank.id() - 1);
          if (cx + 1 < px) neighbors.push_back(rank.id() + 1);
          if (cy > 0) neighbors.push_back(rank.id() - px);
          if (cy + 1 < py) neighbors.push_back(rank.id() + px);

          for (std::size_t i = 0; i < steps.size(); ++i) {
            if (want_per_step && i > 0 && steps[i] != steps[i - 1] + 1) {
              // Region start: align the ranks so skew left behind by an
              // unrelated sampled region does not bleed into this one.
              co_await rank.barrier();
            }
            const double t0 = rank.now_s();
            // Field-group sweeps, each ending in a halo exchange: this
            // interleaving is what makes the tiny-tile regime latency-bound
            // (the paper's flattening beyond ~128 CTE-Arm nodes).
            for (int k = 0; k < config.kernels_per_step; ++k) {
              co_await rank.compute(dynamics_sig,
                                    points_local / config.kernels_per_step);
              co_await rank.compute_seconds(
                  config.mpi_overhead_per_message * 2.0 *
                  static_cast<double>(neighbors.size()));
              co_await rank.exchange(neighbors, halo_bytes, /*tag=*/1);
            }
            int reductions = config.reductions_per_step;
            if (is_diag_step(steps[i])) reductions += config.diag_reductions;
            for (int r = 0; r < reductions; ++r) {
              co_await rank.allreduce(8);
            }
            const double dt = rank.now_s() - t0;
            rank.phase_add("step", dt);
            if (want_per_step) {
              rank.phase_add(sampling::step_key("step", i), dt);
            }
          }
          co_return;
        });
    return harvest_channels(world, profile.channels, steps.size(),
                            want_per_step, makespan);
  };

  result.sampling =
      sampling::run_plan(profile, config.sampling, runner, config.recorder);
  result.time_per_step = result.sampling.channel("step").mean_step_s;
  result.total_time = result.sampling.total_s;
  return result;
}

}  // namespace ctesim::apps
