// Alya proxy (Figs. 8/9/10): computational mechanics, TestCaseB input
// (132M-element sphere mesh), MPI-only, 20 time steps of which 19 are
// timed. Each time step is an Assembly phase (compute-intensive
// unstructured FEM element loop — vectorizable in principle, but indirect)
// followed by a Solver phase (CG: SpMV + dots + halo exchanges —
// communication and memory dominated). The paper reports the average time
// step and the per-phase times of the slowest process.
#pragma once

#include "arch/machine.h"
#include "sampling/executor.h"
#include "sampling/plan.h"

namespace ctesim::trace {
class Recorder;
}

namespace ctesim::apps {

struct AlyaConfig {
  // --- workload (TestCaseB) ---
  double elements = 132e6;
  double unknowns = 23e6;            ///< solver rows (mesh nodes)
  double nnz_per_row = 13.0;         ///< unstructured FEM stencil
  int solver_iters = 150;            ///< CG iterations per time step
  int reported_steps = 19;           ///< steps averaged in the paper
  // Assembly cost per element (Navier-Stokes-like element matrices).
  double assembly_flops_per_elem = 28000.0;
  double assembly_bytes_per_elem = 1400.0;
  // Solver per-row costs per CG iteration (SpMV + BLAS-1).
  double solver_flops_per_row = 36.0;
  double solver_bytes_per_row = 202.0;
  // Memory footprint: decomposed mesh data (sets the 12-node minimum on
  // CTE-Arm the paper reports) plus per-rank replicated data.
  double decomposed_bytes = 132e6 * 2670.0;
  double replicated_bytes_per_rank = 50e6;
  // --- simulation controls ---
  int sim_steps = 2;        ///< exact-mode window (time steps simulated)
  int sim_solver_iters = 40;  ///< CG iterations simulated per step
  sampling::SamplingPlan sampling;
  /// Record per-rank compute/communication spans into this observability
  /// recorder (see src/trace/); nullptr disables tracing.
  trace::Recorder* recorder = nullptr;
};

struct AlyaResult {
  int nodes = 0;
  bool fits_memory = false;
  double time_per_step = 0.0;      ///< average time step (Fig. 8)
  double assembly_per_step = 0.0;  ///< slowest process (Fig. 9)
  double solver_per_step = 0.0;    ///< slowest process (Fig. 10)
  sampling::Outcome sampling;      ///< estimate detail (CI, phases, speedup)
};

/// Minimum node count at which TestCaseB fits (12 on CTE-Arm).
int alya_min_nodes(const arch::MachineModel& machine,
                   const AlyaConfig& config = {});

/// Strong-scaling point on `nodes` full nodes (MPI-only population).
AlyaResult run_alya(const arch::MachineModel& machine, int nodes,
                    const AlyaConfig& config = {});

}  // namespace ctesim::apps
