#include "apps/gromacs.h"

#include <cmath>
#include <vector>

#include "simmpi/world.h"
#include "util/check.h"

namespace ctesim::apps {

GromacsResult run_gromacs(const arch::MachineModel& machine, int nranks,
                          const GromacsConfig& config) {
  CTESIM_EXPECTS(nranks >= 1);
  GromacsResult result;
  result.total_ranks = nranks;
  result.cores = nranks * config.threads_per_rank;

  const int cores_per_node = machine.node.core_count();
  const int ranks_per_node =
      result.cores <= cores_per_node
          ? nranks  // single-node study: all ranks share the node
          : config.ranks_per_node;
  result.nodes = (nranks + ranks_per_node - 1) / ranks_per_node;
  CTESIM_EXPECTS(result.nodes <= machine.num_nodes);

  mpi::WorldOptions options;
  options.machine = machine;
  options.compute_jitter = 0.02;
  options.seed = 3000 + static_cast<std::uint64_t>(nranks);
  mpi::World world(std::move(options),
                   mpi::Placement::hybrid(machine.node, nranks,
                                          ranks_per_node,
                                          config.threads_per_rank));

  const double imbalance =
      nranks == 16 ? config.imbalance_16_ranks : 1.0;
  const double atoms_local = config.atoms / nranks * imbalance;
  const double pairs_local = atoms_local * config.pairs_per_atom;
  const auto halo_bytes = static_cast<std::uint64_t>(
      std::pow(atoms_local, 2.0 / 3.0) * 6.0 *
      config.halo_bytes_per_surface_atom);

  const roofline::KernelSig nonbonded_sig{
      .name = "gmx-nonbonded",
      .cls = arch::KernelClass::kMdNonbonded,
      .flops_per_elem = 45.0,  // matches kernels/md.cpp's pair loop
      .bytes_per_elem = 9.0,
      .vec_potential = 0.95,
      .overlap = 0.7};
  const roofline::KernelSig bonded_sig{
      .name = "gmx-bonded",
      .cls = arch::KernelClass::kGeneric,
      .flops_per_elem = config.bonded_flops_per_atom,
      .bytes_per_elem = config.bonded_bytes_per_atom,
      .vec_potential = 0.6,
      .overlap = 0.6};
  const roofline::KernelSig search_sig{
      .name = "gmx-nsearch",
      .cls = arch::KernelClass::kGeneric,
      .flops_per_elem = config.search_flops_per_atom,
      .bytes_per_elem = 120.0,
      .vec_potential = 0.4,
      .overlap = 0.5};

  world.run([&, halo_bytes](mpi::Rank& rank) -> sim::Task<> {
    // DD neighbors on a ~3D grid of ranks.
    const int stride =
        std::max(1, static_cast<int>(std::round(std::cbrt(nranks))));
    std::vector<int> neighbors;
    for (int delta :
         {1, -1, stride, -stride, stride * stride, -stride * stride}) {
      const int nb = rank.id() + delta;
      if (nb >= 0 && nb < nranks && nb != rank.id()) neighbors.push_back(nb);
      if (static_cast<int>(neighbors.size()) == config.dd_neighbors) break;
    }

    for (int step = 0; step < config.sim_steps; ++step) {
      const double t0 = rank.now_s();
      if (step % config.nstlist == 0) {
        co_await rank.compute(search_sig, atoms_local);
      }
      // Positions out to DD neighbors.
      co_await rank.exchange(neighbors, halo_bytes, /*tag=*/1);
      co_await rank.compute(nonbonded_sig, pairs_local);
      co_await rank.compute(bonded_sig, atoms_local);
      // Forces back from DD neighbors.
      co_await rank.exchange(neighbors, halo_bytes, /*tag=*/2);
      // MPI stack cost of the many small messages per step.
      co_await rank.compute_seconds(
          config.mpi_overhead_per_message *
          (4.0 * static_cast<double>(neighbors.size()) + 2.0));
      // Energy/virial reduction (temperature & pressure coupling).
      co_await rank.allreduce(64);
      rank.phase_add("step", rank.now_s() - t0);
    }
    co_return;
  });

  result.time_per_step = world.phase_max("step") / config.sim_steps;
  const double steps_per_ns = 1e6 / config.timestep_fs;
  result.days_per_ns = result.time_per_step * steps_per_ns / 86400.0;
  return result;
}

}  // namespace ctesim::apps
