#include "apps/gromacs.h"

#include <cmath>
#include <cstdint>
#include <vector>

#include "apps/sampled_run.h"
#include "simmpi/world.h"
#include "util/check.h"

namespace ctesim::apps {

GromacsResult run_gromacs(const arch::MachineModel& machine, int nranks,
                          const GromacsConfig& config) {
  CTESIM_EXPECTS(nranks >= 1);
  GromacsResult result;
  result.total_ranks = nranks;
  result.cores = nranks * config.threads_per_rank;

  const int cores_per_node = machine.node.core_count();
  const int ranks_per_node =
      result.cores <= cores_per_node
          ? nranks  // single-node study: all ranks share the node
          : config.ranks_per_node;
  result.nodes = (nranks + ranks_per_node - 1) / ranks_per_node;
  CTESIM_EXPECTS(result.nodes <= machine.num_nodes);

  const double imbalance =
      nranks == 16 ? config.imbalance_16_ranks : 1.0;
  const double atoms_local = config.atoms / nranks * imbalance;
  const double pairs_local = atoms_local * config.pairs_per_atom;
  const auto halo_bytes = static_cast<std::uint64_t>(
      std::pow(atoms_local, 2.0 / 3.0) * 6.0 *
      config.halo_bytes_per_surface_atom);

  const roofline::KernelSig nonbonded_sig{
      .name = "gmx-nonbonded",
      .cls = arch::KernelClass::kMdNonbonded,
      .flops_per_elem = 45.0,  // matches kernels/md.cpp's pair loop
      .bytes_per_elem = 9.0,
      .vec_potential = 0.95,
      .overlap = 0.7};
  const roofline::KernelSig bonded_sig{
      .name = "gmx-bonded",
      .cls = arch::KernelClass::kGeneric,
      .flops_per_elem = config.bonded_flops_per_atom,
      .bytes_per_elem = config.bonded_bytes_per_atom,
      .vec_potential = 0.6,
      .overlap = 0.6};
  const roofline::KernelSig search_sig{
      .name = "gmx-nsearch",
      .cls = arch::KernelClass::kGeneric,
      .flops_per_elem = config.search_flops_per_atom,
      .bytes_per_elem = 120.0,
      .vec_potential = 0.4,
      .overlap = 0.5};

  // One nanosecond is the natural full-run horizon of the paper's
  // days-per-ns metric; the nstlist cadence (search every 10th step) is the
  // two-phase structure sampling detects.
  const double steps_per_ns = 1e6 / config.timestep_fs;
  sampling::StepProfile profile;
  profile.total_steps = static_cast<long long>(steps_per_ns);
  profile.exact_window = config.sim_steps;
  profile.signature = [&](long long s) {
    sampling::StepSignature sig;
    sig.flops = pairs_local * 45.0 +
                atoms_local * config.bonded_flops_per_atom;
    sig.bytes = pairs_local * 9.0 +
                atoms_local * config.bonded_bytes_per_atom;
    sig.messages = 2.0 * config.dd_neighbors;
    sig.collectives = 1.0;
    if (s % config.nstlist == 0) {
      sig.flops += atoms_local * config.search_flops_per_atom;
      sig.bytes += atoms_local * 120.0;
    }
    return sig;
  };

  const auto runner = [&](const std::vector<long long>& steps,
                          bool want_per_step) {
    mpi::WorldOptions options;
    options.machine = machine;
    options.compute_jitter = 0.02;
    options.seed = sampling::world_seed(
        3000 + static_cast<std::uint64_t>(nranks), config.sampling);
    options.recorder = config.recorder;
    mpi::World world(std::move(options),
                     mpi::Placement::hybrid(machine.node, nranks,
                                            ranks_per_node,
                                            config.threads_per_rank));

    const double makespan =
        world.run([&, halo_bytes](mpi::Rank& rank) -> sim::Task<> {
          // DD neighbors on a ~3D grid of ranks.
          const int stride =
              std::max(1, static_cast<int>(std::round(std::cbrt(nranks))));
          std::vector<int> neighbors;
          for (int delta :
               {1, -1, stride, -stride, stride * stride, -stride * stride}) {
            const int nb = rank.id() + delta;
            if (nb >= 0 && nb < nranks && nb != rank.id()) {
              neighbors.push_back(nb);
            }
            if (static_cast<int>(neighbors.size()) == config.dd_neighbors) {
              break;
            }
          }

          for (std::size_t i = 0; i < steps.size(); ++i) {
            if (want_per_step && i > 0 && steps[i] != steps[i - 1] + 1) {
              // Region start: align the ranks so skew left behind by an
              // unrelated sampled region does not bleed into this one.
              co_await rank.barrier();
            }
            const double t0 = rank.now_s();
            if (steps[i] % config.nstlist == 0) {
              co_await rank.compute(search_sig, atoms_local);
            }
            // Positions out to DD neighbors.
            co_await rank.exchange(neighbors, halo_bytes, /*tag=*/1);
            co_await rank.compute(nonbonded_sig, pairs_local);
            co_await rank.compute(bonded_sig, atoms_local);
            // Forces back from DD neighbors.
            co_await rank.exchange(neighbors, halo_bytes, /*tag=*/2);
            // MPI stack cost of the many small messages per step.
            co_await rank.compute_seconds(
                config.mpi_overhead_per_message *
                (4.0 * static_cast<double>(neighbors.size()) + 2.0));
            // Energy/virial reduction (temperature & pressure coupling).
            co_await rank.allreduce(64);
            const double dt = rank.now_s() - t0;
            rank.phase_add("step", dt);
            if (want_per_step) {
              rank.phase_add(sampling::step_key("step", i), dt);
            }
          }
          co_return;
        });
    return harvest_channels(world, profile.channels, steps.size(),
                            want_per_step, makespan);
  };

  result.sampling =
      sampling::run_plan(profile, config.sampling, runner, config.recorder);
  result.time_per_step = result.sampling.channel("step").mean_step_s;
  result.days_per_ns = result.time_per_step * steps_per_ns / 86400.0;
  return result;
}

}  // namespace ctesim::apps
