// OpenIFS proxy (Figs. 14/15): spectral numerical weather prediction.
// Each step: grid-point physics (branchy per-column Fortran, essentially
// scalar), spectral dynamics (FFT + Legendre transforms, the pattern of
// kernels/fft.h), and the transposition alltoalls between grid-point and
// spectral space. Single-node study uses TL255L91, multi-node TC0511L91
// (needs >= 32 CTE-Arm nodes for memory). Metric: seconds to simulate one
// forecast day.
#pragma once

#include "arch/machine.h"
#include "sampling/executor.h"
#include "sampling/plan.h"

namespace ctesim::trace {
class Recorder;
}

namespace ctesim::apps {

struct OpenIfsInput {
  const char* name = "TL255L91";
  double columns = 88838.0;   ///< reduced Gaussian grid columns
  int levels = 91;
  double decomposed_bytes = 8e9;
  int steps_per_day = 32;     ///< 2700 s time step at TL255
};

OpenIfsInput tl255l91();   ///< single-node input (Fig. 14)
OpenIfsInput tc0511l91();  ///< multi-node input (Fig. 15)

struct OpenIfsConfig {
  OpenIfsInput input = {};
  // Per column per level per step costs.
  double physics_flops = 3600.0;
  double physics_bytes = 140.0;
  double spectral_flops = 1500.0;
  double spectral_bytes = 450.0;
  int transpositions_per_step = 4;  ///< grid<->Fourier<->spectral and back
  double transposed_fields = 1.0;   ///< 3D fields moved per transposition
  double replicated_bytes_per_rank = 0.34e9;
  double mpi_overhead_per_message = 0.5e-6;
  /// Extra per-transposition setup cost on CTE-Arm multi-node runs: the
  /// only Tofu-capable MPI is Fujitsu's, whose alltoall path under the GNU
  /// toolchain is not tuned (the paper's "MPI restrictions" conclusion,
  /// Section VI item iii). Makes the multi-node gap wider than the
  /// single-node one at moderate scale, as in Figs. 14/15.
  double cte_transposition_setup = 4.0e-3;
  /// Full-radiation cadence: every `radiation_interval`-th step runs the
  /// radiation scheme (extra physics work, `radiation_physics_scale` times
  /// the regular column cost), as IFS does every few steps. 0 disables —
  /// the legacy uniform-step behaviour — keeping the default figures
  /// byte-stable; enabling it gives sampling a second phase to detect.
  int radiation_interval = 0;
  double radiation_physics_scale = 2.0;
  // --- simulation controls ---
  int sim_steps = 4;  ///< exact-mode window (steps simulated and scaled up)
  sampling::SamplingPlan sampling;
  /// Record per-rank spans + sampling counters; nullptr disables tracing.
  trace::Recorder* recorder = nullptr;
};

struct OpenIfsResult {
  int nodes = 0;
  int ranks = 0;
  bool fits_memory = false;
  double seconds_per_day = 0.0;  ///< the paper's y-axis
  sampling::Outcome sampling;    ///< estimate detail (CI, phases, speedup)
};

int openifs_min_nodes(const arch::MachineModel& machine,
                      const OpenIfsConfig& config);

/// Single-node study: `nranks` MPI ranks on one node (Fig. 14).
OpenIfsResult run_openifs_ranks(const arch::MachineModel& machine, int nranks,
                                const OpenIfsConfig& config = {});

/// Multi-node study: full nodes, 48 ranks each (Fig. 15).
OpenIfsResult run_openifs_nodes(const arch::MachineModel& machine, int nodes,
                                const OpenIfsConfig& config);

}  // namespace ctesim::apps
