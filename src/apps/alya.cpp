#include "apps/alya.h"

#include <cmath>
#include <cstdint>
#include <vector>

#include "apps/sampled_run.h"
#include "simmpi/world.h"
#include "util/check.h"

namespace ctesim::apps {

namespace {

/// Neighbor ranks of a 3D-ish unstructured decomposition: the mesh
/// partitioner (METIS) yields ~6 neighbors per subdomain.
std::vector<int> mesh_neighbors(int rank, int nranks) {
  const int stride =
      std::max(1, static_cast<int>(std::round(std::cbrt(nranks))));
  std::vector<int> neighbors;
  for (int delta : {1, -1, stride, -stride, stride * stride,
                    -stride * stride}) {
    const int nb = rank + delta;
    if (nb >= 0 && nb < nranks && nb != rank) neighbors.push_back(nb);
  }
  return neighbors;
}

}  // namespace

int alya_min_nodes(const arch::MachineModel& machine,
                   const AlyaConfig& config) {
  for (int nodes = 1; nodes <= machine.num_nodes; ++nodes) {
    const double per_node =
        config.decomposed_bytes / nodes +
        config.replicated_bytes_per_rank * machine.node.core_count();
    if (per_node <= machine.node.memory_gb() * 1e9) return nodes;
  }
  return machine.num_nodes + 1;
}

AlyaResult run_alya(const arch::MachineModel& machine, int nodes,
                    const AlyaConfig& config) {
  CTESIM_EXPECTS(nodes >= 1 && nodes <= machine.num_nodes);
  AlyaResult result;
  result.nodes = nodes;
  result.fits_memory = nodes >= alya_min_nodes(machine, config);
  if (!result.fits_memory) return result;

  const int nranks =
      mpi::Placement::per_domain(machine.node, nodes).num_ranks();
  const double elems_local = config.elements / nranks;
  const double rows_local = config.unknowns / nranks;
  // Halo surface of a ~cubic subdomain with ~6 interfaces, 8 B/unknown.
  const auto halo_bytes = static_cast<std::uint64_t>(
      8.0 * std::pow(rows_local, 2.0 / 3.0) * 6.0);

  const roofline::KernelSig assembly_sig{
      .name = "alya-assembly",
      .cls = arch::KernelClass::kFemAssembly,
      .flops_per_elem = config.assembly_flops_per_elem,
      .bytes_per_elem = config.assembly_bytes_per_elem,
      .vec_potential = 0.90,
      .overlap = 0.7};
  const roofline::KernelSig solver_sig{
      .name = "alya-solver-iter",
      .cls = arch::KernelClass::kSparseSolver,
      .flops_per_elem = config.solver_flops_per_row,
      .bytes_per_elem = config.solver_bytes_per_row,
      .vec_potential = 0.85,
      .overlap = 0.4};

  const double solver_scale =
      static_cast<double>(config.solver_iters) / config.sim_solver_iters;

  // Two channels per step, matching the paper's per-phase reporting: the
  // solver channel carries the CG-iteration subsampling scale so the
  // executor owns the multiply-out.
  sampling::StepProfile profile;
  profile.total_steps = config.reported_steps;
  profile.exact_window = config.sim_steps;
  profile.channels = {{"assembly", 1.0}, {"solver", solver_scale}};

  const auto runner = [&](const std::vector<long long>& steps,
                          bool want_per_step) {
    mpi::WorldOptions options;
    options.machine = machine;
    options.compute_jitter = 0.02;  // OS noise / partition imbalance
    options.seed = sampling::world_seed(
        1000 + static_cast<std::uint64_t>(nodes), config.sampling);
    options.recorder = config.recorder;
    mpi::World world(std::move(options),
                     mpi::Placement::per_domain(machine.node, nodes));

    const double makespan =
        world.run([&, halo_bytes](mpi::Rank& rank) -> sim::Task<> {
          const std::vector<int> neighbors =
              mesh_neighbors(rank.id(), nranks);
          for (std::size_t i = 0; i < steps.size(); ++i) {
            if (want_per_step && i > 0 && steps[i] != steps[i - 1] + 1) {
              // Region start: align the ranks so skew left behind by an
              // unrelated sampled region does not bleed into this one.
              co_await rank.barrier();
            }
            // --- Assembly phase ---
            double t0 = rank.now_s();
            co_await rank.compute(assembly_sig, elems_local);
            // Element contributions on subdomain interfaces are exchanged
            // once.
            co_await rank.exchange(neighbors, halo_bytes, /*tag=*/1);
            double dt = rank.now_s() - t0;
            rank.phase_add("assembly", dt);
            if (want_per_step) {
              rank.phase_add(sampling::step_key("assembly", i), dt);
            }

            // --- Solver phase: CG iterations ---
            t0 = rank.now_s();
            for (int iter = 0; iter < config.sim_solver_iters; ++iter) {
              co_await rank.compute(solver_sig, rows_local);
              co_await rank.exchange(neighbors, halo_bytes, /*tag=*/2);
              co_await rank.allreduce(16);  // two fused dot products
              co_await rank.allreduce(16);  // convergence check
            }
            dt = rank.now_s() - t0;
            rank.phase_add("solver", dt);
            if (want_per_step) {
              rank.phase_add(sampling::step_key("solver", i), dt);
            }
          }
          co_return;
        });
    return harvest_channels(world, profile.channels, steps.size(),
                            want_per_step, makespan);
  };

  result.sampling =
      sampling::run_plan(profile, config.sampling, runner, config.recorder);
  result.assembly_per_step = result.sampling.channel("assembly").mean_step_s;
  result.solver_per_step = result.sampling.channel("solver").mean_step_s;
  result.time_per_step = result.assembly_per_step + result.solver_per_step;
  return result;
}

}  // namespace ctesim::apps
