// WRF proxy (Fig. 16): mesoscale NWP, Iberian peninsula at 4 km
// resolution, 56 simulated hours, one output frame per simulated hour (54
// frames written). Each step: finite-difference dynamics (stencil sweeps
// over the 3D grid, the pattern of kernels/stencil.h) plus column physics
// (branchy, scalar); halo exchanges between sweeps. I/O gathers each
// frame to rank 0 and writes it; the paper finds runs with and without
// I/O nearly indistinguishable, with I/O-off slightly ahead.
#pragma once

#include "arch/machine.h"
#include "roofline/kernel.h"
#include "sampling/executor.h"
#include "sampling/plan.h"

namespace ctesim::trace {
class Recorder;
}

namespace ctesim::apps {

struct WrfConfig {
  int grid_x = 450;  ///< Iberia at 4 km
  int grid_y = 375;
  int levels = 45;
  int steps = 8400;        ///< 56 h at dt = 24 s
  int frames = 54;         ///< hourly output
  bool io_enabled = true;
  // Per-point per-step costs.
  double dynamics_flops_per_point = 2400.0;
  double dynamics_bytes_per_point = 1550.0;
  double physics_flops_per_point = 980.0;
  double physics_bytes_per_point = 110.0;
  int halo_exchanges_per_step = 6;
  /// Per-message MPI software cost for a reference 8 GFlop/s scalar core;
  /// the actual charge scales inversely with the machine's effective
  /// scalar speed (the MPI stack is scalar code, so A64FX pays ~2.4x).
  double mpi_overhead_per_message = 12.0e-6;
  // I/O: one frame per simulated hour, written through the parallel
  // filesystem model (io::FilesystemModel). Default: WRF's serial
  // gather-to-rank-0 writer; parallel_io switches to an MPI-IO-style
  // striped write (the obvious optimization the model lets you test).
  double frame_bytes_per_point = 13.0;  ///< ~3D + surface fields, packed
  bool parallel_io = false;
  /// Charge each frame write inside the step that produces it instead of
  /// the analytic end-of-run estimate. Gives the run an I/O-frame phase the
  /// sampling subsystem can detect (frame steps get a distinct
  /// StepSignature); off by default to keep the legacy figures byte-stable.
  bool io_in_step = false;
  // --- simulation controls ---
  int sim_steps = 2;  ///< exact-mode window (steps simulated and scaled up)
  sampling::SamplingPlan sampling;
  /// Record per-rank spans + sampling counters; nullptr disables tracing.
  trace::Recorder* recorder = nullptr;
};

struct WrfResult {
  int nodes = 0;
  double total_time = 0.0;     ///< elapsed for the 56 h run (Fig. 16)
  double time_per_step = 0.0;
  double io_time = 0.0;        ///< share of total spent writing frames
  sampling::Outcome sampling;  ///< estimate detail (CI, phases, speedup)
};

WrfResult run_wrf(const arch::MachineModel& machine, int nodes,
                  const WrfConfig& config = {});

/// The two per-step kernels of the WRF proxy as roofline signatures —
/// the same ones run_wrf() simulates, exposed so energy-attribution
/// studies (power::attribute_kernel) price exactly the simulated work.
roofline::KernelSig wrf_dynamics_kernel(const WrfConfig& config = {});
roofline::KernelSig wrf_physics_kernel(const WrfConfig& config = {});

}  // namespace ctesim::apps
