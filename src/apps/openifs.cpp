#include "apps/openifs.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "apps/sampled_run.h"
#include "simmpi/world.h"
#include "util/check.h"

namespace ctesim::apps {

OpenIfsInput tl255l91() { return OpenIfsInput{}; }

OpenIfsInput tc0511l91() {
  OpenIfsInput input;
  input.name = "TC0511L91";
  input.columns = 843490.0;
  input.levels = 91;
  // Sets the paper's 32-node minimum on CTE-Arm (48 ranks/node).
  input.decomposed_bytes = 500e9;
  input.steps_per_day = 96;  // 900 s time step at TCo511
  return input;
}

int openifs_min_nodes(const arch::MachineModel& machine,
                      const OpenIfsConfig& config) {
  for (int nodes = 1; nodes <= machine.num_nodes; ++nodes) {
    const double per_node =
        config.input.decomposed_bytes / nodes +
        config.replicated_bytes_per_rank * machine.node.core_count();
    if (per_node <= machine.node.memory_gb() * 1e9) return nodes;
  }
  return machine.num_nodes + 1;
}

namespace {

/// `actors` is the simulation granularity: the real MPI ranks of one actor
/// are aggregated (per-node actors for the multi-node study — the
/// transposition traffic that would stay inside a node is shared-memory
/// anyway). `real_ranks` drives the per-message software cost of the
/// alltoall, which is what limits OpenIFS strong scaling at full
/// population (48 ranks/node -> thousands of messages per transposition).
OpenIfsResult run(const arch::MachineModel& machine, int nodes, int actors,
                  int real_ranks, const OpenIfsConfig& config) {
  OpenIfsResult result;
  result.nodes = nodes;
  result.ranks = real_ranks;
  result.fits_memory = nodes >= openifs_min_nodes(machine, config);
  if (!result.fits_memory) return result;

  const int actors_per_node = (actors + nodes - 1) / nodes;
  // Each actor owns one core per real MPI rank it aggregates; in the
  // single-node study (actors == real ranks) that is one core each, and
  // unused cores stay idle exactly as in the paper's partial-population
  // runs.
  const int threads = std::max(1, real_ranks / actors);

  const OpenIfsInput& input = config.input;
  const double cells_local = input.columns * input.levels / actors;
  // One transposition moves the local share of the 3D state to all peers.
  const auto alltoall_bytes_per_pair = static_cast<std::uint64_t>(std::max(
      1.0, cells_local * 8.0 * config.transposed_fields / actors));
  // Software cost of the real per-rank message count behind one
  // transposition (every real rank matches real_ranks-1 messages), plus
  // the untuned Fujitsu-MPI alltoall setup on CTE-Arm in multi-node runs.
  double alltoall_overhead =
      config.mpi_overhead_per_message * static_cast<double>(real_ranks - 1);
  if (machine.node.core.uarch == arch::MicroArch::kA64fx && nodes > 1) {
    alltoall_overhead += config.cte_transposition_setup;
  }

  const roofline::KernelSig physics_sig{
      .name = "oifs-physics",
      .cls = arch::KernelClass::kPhysics,
      .flops_per_elem = config.physics_flops,
      .bytes_per_elem = config.physics_bytes,
      .vec_potential = 0.30,
      .overlap = 0.6};
  const roofline::KernelSig spectral_sig{
      .name = "oifs-spectral",
      .cls = arch::KernelClass::kSpectralTransform,
      .flops_per_elem = config.spectral_flops,
      .bytes_per_elem = config.spectral_bytes,
      .vec_potential = 0.85,
      .overlap = 0.6};

  const auto is_radiation_step = [&config](long long s) {
    return config.radiation_interval > 0 &&
           s % config.radiation_interval == 0;
  };

  sampling::StepProfile profile;
  profile.total_steps = input.steps_per_day;
  profile.exact_window = config.sim_steps;
  profile.signature = [&, is_radiation_step](long long s) {
    sampling::StepSignature sig;
    sig.flops =
        cells_local * (config.physics_flops + config.spectral_flops);
    sig.bytes =
        cells_local * (config.physics_bytes + config.spectral_bytes);
    sig.messages = static_cast<double>(config.transpositions_per_step) *
                   static_cast<double>(real_ranks - 1);
    sig.collectives = config.transpositions_per_step + 1.0;
    if (is_radiation_step(s)) {
      sig.flops +=
          cells_local * config.physics_flops * config.radiation_physics_scale;
    }
    return sig;
  };

  const auto runner = [&](const std::vector<long long>& steps,
                          bool want_per_step) {
    mpi::WorldOptions options;
    options.machine = machine;
    options.compute_jitter = 0.015;
    options.seed = sampling::world_seed(
        4000 + static_cast<std::uint64_t>(actors), config.sampling);
    options.recorder = config.recorder;
    mpi::World world(std::move(options),
                     mpi::Placement::hybrid(machine.node, actors,
                                            actors_per_node, threads));

    const double makespan = world.run(
        [&, alltoall_bytes_per_pair](mpi::Rank& rank) -> sim::Task<> {
          for (std::size_t i = 0; i < steps.size(); ++i) {
            if (want_per_step && i > 0 && steps[i] != steps[i - 1] + 1) {
              // Region start: align the ranks so skew left behind by an
              // unrelated sampled region does not bleed into this one.
              co_await rank.barrier();
            }
            const double t0 = rank.now_s();
            // Grid-point space: physics parameterizations, column by column.
            co_await rank.compute(physics_sig, cells_local);
            if (is_radiation_step(steps[i])) {
              co_await rank.compute(
                  physics_sig, cells_local * config.radiation_physics_scale);
            }
            // Spectral space: FFT + Legendre transforms.
            co_await rank.compute(spectral_sig, cells_local);
            // Transpositions between the spaces.
            for (int t = 0; t < config.transpositions_per_step; ++t) {
              co_await rank.compute_seconds(alltoall_overhead);
              co_await rank.alltoall(alltoall_bytes_per_pair);
            }
            co_await rank.allreduce(8);  // spectral norms / CFL diagnostics
            const double dt = rank.now_s() - t0;
            rank.phase_add("step", dt);
            if (want_per_step) {
              rank.phase_add(sampling::step_key("step", i), dt);
            }
          }
          co_return;
        });
    return harvest_channels(world, profile.channels, steps.size(),
                            want_per_step, makespan);
  };

  result.sampling =
      sampling::run_plan(profile, config.sampling, runner, config.recorder);
  const double step_time = result.sampling.channel("step").mean_step_s;
  result.seconds_per_day = step_time * input.steps_per_day;
  return result;
}

}  // namespace

OpenIfsResult run_openifs_ranks(const arch::MachineModel& machine, int nranks,
                                const OpenIfsConfig& config) {
  CTESIM_EXPECTS(nranks >= 1 && nranks <= machine.node.core_count());
  return run(machine, 1, nranks, nranks, config);
}

OpenIfsResult run_openifs_nodes(const arch::MachineModel& machine, int nodes,
                                const OpenIfsConfig& config) {
  CTESIM_EXPECTS(nodes >= 1 && nodes <= machine.num_nodes);
  // Per-node actors; the real population is 48 MPI ranks per node.
  return run(machine, nodes, nodes, nodes * machine.node.core_count(),
             config);
}

}  // namespace ctesim::apps
