// Shared glue between the app proxies and the sampling executor: every
// proxy's StepRunner builds a fresh World, replays its rank loop over the
// requested step indices, and hands the measured channels back through
// harvest_channels(). Keeping the harvest in one place means the
// "<channel>#<position>" per-step key convention (sampling::step_key) has
// exactly two clients: the rank loops that record it and this reader.
#pragma once

#include <cstddef>
#include <vector>

#include "sampling/executor.h"
#include "simmpi/world.h"

namespace ctesim::apps {

/// Collect a StepRunResult from a finished world: the legacy accumulated
/// phase_max per channel, plus — when the executor asked for per-step
/// resolution — every rank's seconds at every requested step, read from
/// the step_key() phases the rank loop recorded.
inline sampling::StepRunResult harvest_channels(
    const mpi::World& world,
    const std::vector<sampling::ChannelSpec>& channels,
    std::size_t num_steps, bool want_per_step, double makespan_s) {
  sampling::StepRunResult res;
  res.makespan_s = makespan_s;
  res.accum.reserve(channels.size());
  for (const sampling::ChannelSpec& ch : channels) {
    res.accum.push_back(world.phase_max(ch.name));
    if (want_per_step) {
      std::vector<std::vector<double>> per;
      per.reserve(num_steps);
      for (std::size_t i = 0; i < num_steps; ++i) {
        per.push_back(world.phase_times(sampling::step_key(ch.name, i)));
      }
      res.per_rank_step.push_back(std::move(per));
    }
  }
  return res;
}

}  // namespace ctesim::apps
