#include "apps/wrf.h"

#include <cmath>
#include <vector>

#include "io/filesystem.h"
#include "simmpi/world.h"
#include "util/check.h"

namespace ctesim::apps {

namespace {

void choose_grid2d(int nranks, int* px, int* py) {
  int best = 1;
  for (int cand = 1; cand * cand <= nranks; ++cand) {
    if (nranks % cand == 0) best = cand;
  }
  *px = best;
  *py = nranks / best;
}

}  // namespace

WrfResult run_wrf(const arch::MachineModel& machine, int nodes,
                  const WrfConfig& config) {
  CTESIM_EXPECTS(nodes >= 1 && nodes <= machine.num_nodes);
  WrfResult result;
  result.nodes = nodes;

  mpi::WorldOptions options;
  options.machine = machine;
  options.compute_jitter = 0.015;
  options.seed = 5000 + static_cast<std::uint64_t>(nodes);
  mpi::World world(std::move(options),
                   mpi::Placement::per_core(machine.node, nodes *
                                            machine.node.core_count()));

  const int nranks = world.num_ranks();
  const double mpi_overhead =
      (units::Flops{config.mpi_overhead_per_message * 8.0e9} /
       machine.node.core.effective_scalar_flops())
          .value();
  int px = 1;
  int py = 1;
  choose_grid2d(nranks, &px, &py);
  const double local_x = static_cast<double>(config.grid_x) / px;
  const double local_y = static_cast<double>(config.grid_y) / py;
  const double points_local = local_x * local_y * config.levels;
  const auto halo_bytes = static_cast<std::uint64_t>(
      (local_x + local_y) * config.levels * 8.0 * 3.0);

  const roofline::KernelSig dynamics_sig{
      .name = "wrf-dynamics",
      .cls = arch::KernelClass::kStencil,
      .flops_per_elem = config.dynamics_flops_per_point,
      .bytes_per_elem = config.dynamics_bytes_per_point,
      .vec_potential = 0.95,
      .overlap = 0.8};
  const roofline::KernelSig physics_sig{
      .name = "wrf-physics",
      .cls = arch::KernelClass::kPhysics,
      .flops_per_elem = config.physics_flops_per_point,
      .bytes_per_elem = config.physics_bytes_per_point,
      .vec_potential = 0.30,
      .overlap = 0.6};

  world.run([&, halo_bytes, px, py](mpi::Rank& rank) -> sim::Task<> {
    const int cx = rank.id() % px;
    const int cy = rank.id() / px;
    std::vector<int> neighbors;
    if (cx > 0) neighbors.push_back(rank.id() - 1);
    if (cx + 1 < px) neighbors.push_back(rank.id() + 1);
    if (cy > 0) neighbors.push_back(rank.id() - px);
    if (cy + 1 < py) neighbors.push_back(rank.id() + px);

    for (int step = 0; step < config.sim_steps; ++step) {
      const double t0 = rank.now_s();
      for (int k = 0; k < config.halo_exchanges_per_step; ++k) {
        co_await rank.compute(dynamics_sig,
                              points_local / config.halo_exchanges_per_step);
        co_await rank.compute_seconds(
            mpi_overhead * 2.0 * static_cast<double>(neighbors.size()));
        co_await rank.exchange(neighbors, halo_bytes, /*tag=*/1);
      }
      co_await rank.compute(physics_sig, points_local);
      rank.phase_add("step", rank.now_s() - t0);
    }
    co_return;
  });

  result.time_per_step = world.phase_max("step") / config.sim_steps;

  if (config.io_enabled) {
    const auto frame_bytes = static_cast<std::uint64_t>(
        static_cast<double>(config.grid_x) * config.grid_y * config.levels *
        config.frame_bytes_per_point);
    const io::FilesystemModel fs = io::production_filesystem(machine);
    const double per_frame =
        config.parallel_io
            ? fs.parallel_write_seconds(frame_bytes, nodes)
            : fs.serial_write_seconds(frame_bytes);
    result.io_time = per_frame * config.frames;
  }

  result.total_time =
      result.time_per_step * config.steps + result.io_time;
  return result;
}

}  // namespace ctesim::apps
