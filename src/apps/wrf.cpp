#include "apps/wrf.h"

#include <cmath>
#include <cstdint>
#include <vector>

#include "apps/sampled_run.h"
#include "io/filesystem.h"
#include "simmpi/world.h"
#include "util/check.h"

namespace ctesim::apps {

namespace {

void choose_grid2d(int nranks, int* px, int* py) {
  int best = 1;
  for (int cand = 1; cand * cand <= nranks; ++cand) {
    if (nranks % cand == 0) best = cand;
  }
  *px = best;
  *py = nranks / best;
}

}  // namespace

WrfResult run_wrf(const arch::MachineModel& machine, int nodes,
                  const WrfConfig& config) {
  CTESIM_EXPECTS(nodes >= 1 && nodes <= machine.num_nodes);
  WrfResult result;
  result.nodes = nodes;

  const int nranks = nodes * machine.node.core_count();
  const double mpi_overhead =
      (units::Flops{config.mpi_overhead_per_message * 8.0e9} /
       machine.node.core.effective_scalar_flops())
          .value();
  int px = 1;
  int py = 1;
  choose_grid2d(nranks, &px, &py);
  const double local_x = static_cast<double>(config.grid_x) / px;
  const double local_y = static_cast<double>(config.grid_y) / py;
  const double points_local = local_x * local_y * config.levels;
  const auto halo_bytes = static_cast<std::uint64_t>(
      (local_x + local_y) * config.levels * 8.0 * 3.0);

  const roofline::KernelSig dynamics_sig = wrf_dynamics_kernel(config);
  const roofline::KernelSig physics_sig = wrf_physics_kernel(config);

  // Frame cadence (hourly output): the last step of each interval writes.
  const auto frame_bytes = static_cast<std::uint64_t>(
      static_cast<double>(config.grid_x) * config.grid_y * config.levels *
      config.frame_bytes_per_point);
  const io::FilesystemModel fs = io::production_filesystem(machine);
  const double per_frame = config.parallel_io
                               ? fs.parallel_write_seconds(frame_bytes, nodes)
                               : fs.serial_write_seconds(frame_bytes);
  const long long frame_interval =
      config.frames > 0
          ? std::max<long long>(1, config.steps / config.frames)
          : 0;
  const bool frames_in_step = config.io_enabled && config.io_in_step &&
                              frame_interval > 0;
  const auto is_frame_step = [frame_interval, frames_in_step](long long s) {
    return frames_in_step && s % frame_interval == frame_interval - 1;
  };
  // Steps still re-absorbing the serial writer's rank-0 skew: their
  // measured time differs from a steady-state step even though their work
  // is identical, so they get their own sampling stratum (signature tag).
  // The window must reach at least plan.warmup past the frame — any
  // representative whose warmup region contains the frame step measures
  // with the skew in flight.
  const long long recovery =
      config.parallel_io
          ? 0
          : std::max<long long>(2, config.sampling.warmup);
  const auto is_recovery_step = [frame_interval, frames_in_step,
                                 recovery](long long s) {
    return frames_in_step && s >= frame_interval &&
           s % frame_interval < recovery;
  };

  sampling::StepProfile profile;
  profile.total_steps = config.steps;
  profile.exact_window = config.sim_steps;
  profile.signature = [&, is_frame_step](long long s) {
    sampling::StepSignature sig;
    sig.flops = points_local * (config.dynamics_flops_per_point +
                                config.physics_flops_per_point);
    sig.bytes = points_local * (config.dynamics_bytes_per_point +
                                config.physics_bytes_per_point);
    sig.messages = 4.0 * config.halo_exchanges_per_step;
    if (is_frame_step(s)) {
      sig.io_bytes = static_cast<double>(frame_bytes);
    }
    if (is_recovery_step(s)) sig.tag = 1.0;
    return sig;
  };

  const auto runner = [&](const std::vector<long long>& steps,
                          bool want_per_step) {
    mpi::WorldOptions options;
    options.machine = machine;
    options.compute_jitter = 0.015;
    options.seed = sampling::world_seed(
        5000 + static_cast<std::uint64_t>(nodes), config.sampling);
    options.recorder = config.recorder;
    mpi::World world(std::move(options),
                     mpi::Placement::per_core(machine.node, nranks));

    const double makespan =
        world.run([&, halo_bytes, px, py](mpi::Rank& rank) -> sim::Task<> {
          const int cx = rank.id() % px;
          const int cy = rank.id() / px;
          std::vector<int> neighbors;
          if (cx > 0) neighbors.push_back(rank.id() - 1);
          if (cx + 1 < px) neighbors.push_back(rank.id() + 1);
          if (cy > 0) neighbors.push_back(rank.id() - px);
          if (cy + 1 < py) neighbors.push_back(rank.id() + px);

          for (std::size_t i = 0; i < steps.size(); ++i) {
            if (want_per_step && i > 0 && steps[i] != steps[i - 1] + 1) {
              // Region start: align the ranks so skew left behind by an
              // unrelated sampled region does not bleed into this one.
              co_await rank.barrier();
            }
            const double t0 = rank.now_s();
            for (int k = 0; k < config.halo_exchanges_per_step; ++k) {
              co_await rank.compute(
                  dynamics_sig,
                  points_local / config.halo_exchanges_per_step);
              co_await rank.compute_seconds(
                  mpi_overhead * 2.0 * static_cast<double>(neighbors.size()));
              co_await rank.exchange(neighbors, halo_bytes, /*tag=*/1);
            }
            co_await rank.compute(physics_sig, points_local);
            if (is_frame_step(steps[i])) {
              // Frame write inside its step: WRF's serial writer gathers to
              // rank 0, the MPI-IO path charges every rank its stripe.
              if (config.parallel_io) {
                co_await rank.compute_seconds(per_frame);
              } else if (rank.id() == 0) {
                co_await rank.compute_seconds(per_frame);
              }
            }
            const double dt = rank.now_s() - t0;
            rank.phase_add("step", dt);
            if (want_per_step) {
              rank.phase_add(sampling::step_key("step", i), dt);
            }
          }
          co_return;
        });
    return harvest_channels(world, profile.channels, steps.size(),
                            want_per_step, makespan);
  };

  result.sampling =
      sampling::run_plan(profile, config.sampling, runner, config.recorder);
  result.time_per_step = result.sampling.channel("step").mean_step_s;

  if (config.io_enabled && !frames_in_step) {
    result.io_time = per_frame * config.frames;
  }
  result.total_time = result.sampling.total_s + result.io_time;
  return result;
}

roofline::KernelSig wrf_dynamics_kernel(const WrfConfig& config) {
  return {.name = "wrf-dynamics",
          .cls = arch::KernelClass::kStencil,
          .flops_per_elem = config.dynamics_flops_per_point,
          .bytes_per_elem = config.dynamics_bytes_per_point,
          .vec_potential = 0.95,
          .overlap = 0.8};
}

roofline::KernelSig wrf_physics_kernel(const WrfConfig& config) {
  return {.name = "wrf-physics",
          .cls = arch::KernelClass::kPhysics,
          .flops_per_elem = config.physics_flops_per_point,
          .bytes_per_elem = config.physics_bytes_per_point,
          .vec_potential = 0.30,
          .overlap = 0.6};
}

}  // namespace ctesim::apps
