// Gromacs proxy (Figs. 12/13): molecular dynamics, lignocellulose-rf input
// (3.3M atoms, reaction-field electrostatics — no PME/FFT, so short-range
// non-bonded pair forces dominate, exactly the pattern of the native
// kernel in kernels/md.h). Hybrid MPI+OpenMP with 6 threads per rank as
// the paper runs it. Metric: days to simulate one nanosecond.
//
// The paper observes an unexplained anomaly at 16 MPI processes on both
// machines, which disappears with 12 ranks x 8 threads; we reproduce it as
// a domain-decomposition imbalance of the 16-rank grid.
#pragma once

#include "arch/machine.h"
#include "sampling/executor.h"
#include "sampling/plan.h"

namespace ctesim::trace {
class Recorder;
}

namespace ctesim::apps {

struct GromacsConfig {
  double atoms = 3.3e6;       ///< lignocellulose-rf
  double pairs_per_atom = 300.0;  ///< rc = 1.2 nm neighborhood
  int threads_per_rank = 6;   ///< Gromacs-recommended layout in the paper
  int ranks_per_node = 8;     ///< 8 x 6 fills a 48-core node
  double timestep_fs = 2.0;
  // Per-atom non-pair work (bonded forces, integration, thermostat).
  double bonded_flops_per_atom = 400.0;
  double bonded_bytes_per_atom = 250.0;
  // Neighbor-list rebuild every nstlist steps (extra pair-search work).
  int nstlist = 10;
  double search_flops_per_atom = 1200.0;
  // DD communication: positions out, forces back, each step.
  int dd_neighbors = 6;
  double halo_bytes_per_surface_atom = 48.0;
  /// Load imbalance of the domain decomposition keyed by rank count; the
  /// 16-rank grid decomposes the triclinic box badly (paper Fig. 13).
  double imbalance_16_ranks = 1.55;
  double mpi_overhead_per_message = 20.0e-6;
  // --- simulation controls ---
  int sim_steps = 10;  ///< exact-mode window (one full nstlist cycle)
  sampling::SamplingPlan sampling;
  /// Record per-rank spans + sampling counters; nullptr disables tracing.
  trace::Recorder* recorder = nullptr;
};

struct GromacsResult {
  int total_ranks = 0;
  int cores = 0;
  int nodes = 0;
  double time_per_step = 0.0;
  double days_per_ns = 0.0;  ///< the paper's y-axis
  sampling::Outcome sampling;  ///< estimate detail (CI, phases, speedup)
};

/// Run with `nranks` MPI ranks x config.threads_per_rank threads.
/// Single-node study (Fig. 12): nranks * threads <= 48 -> one node.
/// Multi-node study (Fig. 13): config.ranks_per_node ranks per node.
GromacsResult run_gromacs(const arch::MachineModel& machine, int nranks,
                          const GromacsConfig& config = {});

}  // namespace ctesim::apps
